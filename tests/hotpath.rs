//! Hot-path equivalence suite: the batched entry points
//! (`MemorySystem::access_batch`, `VirtualSwitch::process_burst`,
//! `HaloEngine::dispatch_burst` via the HALO-blocking backend) must
//! produce exactly the outcomes and statistics of their scalar
//! equivalents, and the rewritten lock table / flat cache arrays must
//! satisfy the halo-check invariant auditor under churn.

use std::collections::HashMap;

use halo_nfv::accel::{AcceleratorConfig, HaloEngine};
use halo_nfv::check::audit_system;
use halo_nfv::classify::PacketHeader;
use halo_nfv::datapath::TableBackend;
use halo_nfv::mem::{AccessKind, AccessOutcome, Addr, CoreId, MachineConfig, MemorySystem};
use halo_nfv::sim::{Cycle, SplitMix64};
use halo_nfv::vswitch::{
    LookupBackend, MultiCoreConfig, MultiCoreDatapath, ScalingReport, SwitchConfig, VirtualSwitch,
};

/// A seeded mixed op stream over a working set large enough to exercise
/// L1 hits, LLC hits, DRAM fills, and capacity evictions.
fn op_stream(base: Addr, lines: u64, n: usize, seed: u64) -> Vec<(Addr, AccessKind)> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let a = base + (rng.next_u64() % lines) * 64;
            let kind = if rng.next_u64().is_multiple_of(4) {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            (a, kind)
        })
        .collect()
}

fn collect_counters(sys: &MemorySystem) -> Vec<(String, u64)> {
    sys.stats()
        .counters()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// `access_batch` must replay a 10k-op stream to byte-identical
/// outcomes and final statistics as the scalar `access` loop.
#[test]
fn access_batch_matches_scalar_stream() {
    let mk = || {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let base = sys.data_mut().alloc_lines(20_000 * 64);
        (sys, base)
    };
    let (mut scalar_sys, base_a) = mk();
    let (mut batch_sys, base_b) = mk();
    assert_eq!(base_a, base_b, "identical construction");
    let ops = op_stream(base_a, 20_000, 10_000, 0x0048_6F74_5061_7468);

    let mut scalar_out: Vec<AccessOutcome> = Vec::with_capacity(ops.len());
    let mut t = Cycle(0);
    for &(a, k) in &ops {
        let o = scalar_sys.access(CoreId(1), a, k, t);
        t = o.complete;
        scalar_out.push(o);
    }
    let scalar_final = t;

    let mut batch_out: Vec<AccessOutcome> = Vec::with_capacity(ops.len());
    // Uneven chunk sizes so batch boundaries land mid-stream.
    let mut tb = Cycle(0);
    for chunk in ops.chunks(257) {
        tb = batch_sys.access_batch(CoreId(1), chunk, tb, &mut batch_out);
    }

    assert_eq!(tb, scalar_final, "final completion cycle diverged");
    assert_eq!(batch_out.len(), scalar_out.len());
    for (i, (s, b)) in scalar_out.iter().zip(&batch_out).enumerate() {
        assert_eq!(
            (s.complete, s.level),
            (b.complete, b.level),
            "outcome {i} diverged"
        );
    }
    assert_eq!(
        collect_counters(&scalar_sys),
        collect_counters(&batch_sys),
        "final statistics diverged"
    );
}

fn build_switch(backend: LookupBackend) -> (MemorySystem, VirtualSwitch, Option<HaloEngine>) {
    let mut sys = MemorySystem::new(MachineConfig::small());
    let engine = match backend {
        LookupBackend::Software => None,
        _ => Some(HaloEngine::new(&sys, AcceleratorConfig::default())),
    };
    let mut vs = VirtualSwitch::new(&mut sys, CoreId(0), SwitchConfig::typical(5, backend));
    for id in 0..256u64 {
        let key = PacketHeader::synthetic(id).miniflow();
        vs.install_flow(&mut sys, &key, (id % 5) as usize, 0, id + 1)
            .unwrap();
    }
    vs.warm_tables(&mut sys);
    (sys, vs, engine)
}

fn packet_stream(n: usize, seed: u64) -> Vec<PacketHeader> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| PacketHeader::synthetic(rng.next_u64() % 300))
        .collect()
}

fn burst_equivalence(backend: LookupBackend) {
    let headers = packet_stream(400, 0xBEEF_0001);

    let (mut sys_s, mut vs_s, mut eng_s) = build_switch(backend);
    let mut scalar: Vec<(Option<u64>, Cycle)> = Vec::new();
    let mut t = Cycle(0);
    for h in &headers {
        let (action, done) = vs_s.process_packet(&mut sys_s, eng_s.as_mut(), h, t);
        scalar.push((action, done));
        t = done;
    }

    let (mut sys_b, mut vs_b, mut eng_b) = build_switch(backend);
    let mut burst: Vec<(Option<u64>, Cycle)> = Vec::new();
    let mut tb = Cycle(0);
    for chunk in headers.chunks(37) {
        tb = vs_b.process_burst(&mut sys_b, eng_b.as_mut(), chunk, tb, &mut burst);
    }

    assert_eq!(scalar, burst, "{backend:?}: per-packet outcomes diverged");
    assert_eq!(tb, t, "{backend:?}: final cycle diverged");
    let (cs, cb) = (vs_s.counters(), vs_b.counters());
    assert_eq!(
        (cs.packets, cs.emc_hits, cs.megaflow_hits, cs.misses),
        (cb.packets, cb.emc_hits, cb.megaflow_hits, cb.misses),
        "{backend:?}: switch counters diverged"
    );
    assert_eq!(
        vs_s.breakdown().total(),
        vs_b.breakdown().total(),
        "{backend:?}: cycle breakdown diverged"
    );
    assert_eq!(
        collect_counters(&sys_s),
        collect_counters(&sys_b),
        "{backend:?}: memory statistics diverged"
    );
}

/// `process_burst` over the software backend reproduces the scalar
/// packet loop exactly.
#[test]
fn process_burst_matches_scalar_software() {
    burst_equivalence(LookupBackend::Software);
}

/// `process_burst` + `dispatch_burst` over the HALO-blocking backend
/// (the `LOOKUP_B` MegaFlow walk) reproduces the scalar loop exactly.
#[test]
fn process_burst_matches_scalar_halo_blocking() {
    burst_equivalence(LookupBackend::HaloBlocking);
}

/// `process_burst` over the HALO non-blocking backend (`LOOKUP_NB`
/// dispatch plus `SNAPSHOT_READ` collection) reproduces the scalar loop
/// exactly.
#[test]
fn process_burst_matches_scalar_halo_nonblocking() {
    burst_equivalence(LookupBackend::HaloNonBlocking);
}

fn multicore_run(
    backend: LookupBackend,
    table_backend: TableBackend,
    tuples: usize,
) -> (ScalingReport, Vec<u64>, Vec<(String, u64)>) {
    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
    let mut cfg = MultiCoreConfig::new(4, tuples, 2_000, backend, 0xD1_5C0);
    cfg.table_backend = table_backend;
    let mut dp = MultiCoreDatapath::with_config(&mut sys, cfg);
    let e = match backend {
        LookupBackend::Software => None,
        _ => Some(&mut engine),
    };
    let report = dp.run(&mut sys, e, 500, 16);
    let per_core = dp.per_core_packets();
    (report, per_core, collect_counters(&sys))
}

/// Two identically-configured `MultiCoreDatapath` runs must agree on
/// every observable — per-core packet spread, aggregate report, and the
/// full memory-system statistics — for every backend combination,
/// including a tuple-space wide enough (12 masks) that the non-blocking
/// destination region spans multiple cache lines per core. Beyond the
/// three lookup strategies over the baseline cuckoo table, the matrix
/// covers both new exact-match backends (Cuckoo++ and EMOMA) under the
/// non-blocking path — five backend combinations in all.
#[test]
fn multicore_runs_are_deterministic_for_every_backend() {
    for (backend, table_backend) in [
        (LookupBackend::Software, TableBackend::Cuckoo),
        (LookupBackend::HaloBlocking, TableBackend::Cuckoo),
        (LookupBackend::HaloNonBlocking, TableBackend::Cuckoo),
        (LookupBackend::HaloNonBlocking, TableBackend::CuckooPlusPlus),
        (LookupBackend::HaloNonBlocking, TableBackend::Emoma),
    ] {
        let (ra, pa, ca) = multicore_run(backend, table_backend, 12);
        let (rb, pb, cb) = multicore_run(backend, table_backend, 12);
        let tag = format!("{backend:?}/{}", table_backend.name());
        assert_eq!(
            (ra.cores, ra.packets, ra.cycles, ra.dirty_transfers),
            (rb.cores, rb.packets, rb.cycles, rb.dirty_transfers),
            "{tag}: scaling report diverged between identical runs"
        );
        assert_eq!(pa, pb, "{tag}: per-core packet spread diverged");
        assert_eq!(ca, cb, "{tag}: memory statistics diverged");
        assert_eq!(pa.iter().sum::<u64>(), 500, "{tag}: packets lost");
    }
}

/// The scaling sweep (MultiCoreDatapath over software and HALO
/// non-blocking backends, with and without churn) must serialize
/// byte-identically whether run sequentially or with 4 parallel
/// workers: parallelism is a scheduling detail, never a result.
#[test]
fn scaling_sweep_identical_at_jobs_1_and_4() {
    use halo_bench::experiments::scaling;
    use halo_nfv::sim::SweepRunner;

    let seq = scaling::run_with(true, &SweepRunner::new("scaling", 1).quiet());
    let par = scaling::run_with(true, &SweepRunner::new("scaling", 4).quiet());
    assert_eq!(
        scaling::table(&seq).to_csv(),
        scaling::table(&par).to_csv(),
        "jobs=1 and jobs=4 scaling sweeps diverged"
    );
}

/// Churns the rewritten open-addressed hardware-lock table through the
/// `MemorySystem` API against a model map, auditing the lock-flag /
/// lock-orphan / lock-expired invariants after every step.
#[test]
fn lock_table_churn_agrees_with_model_and_auditor() {
    let mut sys = MemorySystem::new(MachineConfig::small());
    let base = sys.data_mut().alloc_lines(64 * 64);
    // A small resident set so capacity evictions never release locks
    // behind the model's back.
    let lines: Vec<_> = (0..64u64).map(|i| (base + i * 64).line()).collect();
    for i in 0..64u64 {
        sys.warm_llc(base + i * 64);
    }
    let mut model: HashMap<u64, u64> = HashMap::new();
    let mut rng = SplitMix64::new(0x10C5_0AD2);
    let mut now = Cycle(0);
    for step in 0..2_000 {
        now += halo_nfv::sim::Cycles(rng.next_u64() % 50);
        match rng.next_u64() % 4 {
            0 | 1 => {
                let line = lines[(rng.next_u64() % 64) as usize];
                let until = now + halo_nfv::sim::Cycles(rng.next_u64() % 500);
                sys.hw_lock(line, until);
                let e = model.entry(line.0).or_insert(0);
                *e = (*e).max(until.0);
            }
            2 => {
                sys.hw_unlock_expired(now);
                model.retain(|_, &mut rel| rel > now.0);
            }
            _ => {
                let idx = (rng.next_u64() % 64) as usize;
                sys.force_evict(base + idx as u64 * 64);
                model.remove(&lines[idx].0);
                sys.warm_llc(base + idx as u64 * 64); // restore residency
            }
        }
        let mut held: Vec<(u64, u64)> = sys.held_locks().map(|(l, c)| (l.0, c.0)).collect();
        let mut expect: Vec<(u64, u64)> = model.iter().map(|(&l, &r)| (l, r)).collect();
        held.sort_unstable();
        expect.sort_unstable();
        assert_eq!(held, expect, "lock table diverged from model at {step}");

        // The auditor's lock-expired invariant expects stale locks to be
        // swept before inspection.
        sys.hw_unlock_expired(now);
        model.retain(|_, &mut rel| rel > now.0);
        let violations = audit_system(&sys, now);
        assert!(
            violations.is_empty(),
            "auditor found violations at step {step}: {violations:?}"
        );
    }
}
