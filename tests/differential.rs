//! Tier-1 differential suite: every lookup structure (and the full
//! accelerator engine stack) replays SplitMix64-seeded op streams
//! against a trivially-correct model map; any divergence is shrunk to
//! a minimal trace and printed as seed + op list (see DESIGN.md §8 for
//! how to reproduce one). `--features slow-tests` scales the case
//! counts up; `--features audit` (or `HALO_AUDIT=1`) additionally runs
//! the invariant auditor after every op.

use halo_nfv::check::{
    buggy_cuckoo_driver, cuckoo_driver, cuckoo_pp_driver, emoma_driver, engine_driver,
    kvstore_driver, run_differential, run_fault_injection, sfh_driver, tcam_driver, FaultBackend,
    FaultConfig,
};
use halo_nfv::sim::point_seed;

const CASES: u64 = if cfg!(feature = "slow-tests") { 48 } else { 8 };
const OPS: usize = if cfg!(feature = "slow-tests") {
    600
} else {
    150
};

#[test]
fn cuckoo_agrees_with_oracle() {
    run_differential("differential.cuckoo", CASES, OPS, 2048, |ops| {
        cuckoo_driver(ops)
    })
    .unwrap_or_else(|t| panic!("{t}"));
}

/// Cuckoo++ must agree with the oracle through the same op streams,
/// with its per-bucket presence filters audited after every op (under
/// `--features audit`) and removed keys re-checked for single-probe
/// negative lookups inside the driver.
#[test]
fn cuckoo_pp_agrees_with_oracle() {
    run_differential("differential.cuckoo_pp", CASES, OPS, 2048, |ops| {
        cuckoo_pp_driver(ops)
    })
    .unwrap_or_else(|t| panic!("{t}"));
}

/// EMOMA must agree with the oracle while every single lookup — hit or
/// miss, mid-displacement or not — touches exactly one bucket line (the
/// driver asserts the probe count on every op).
#[test]
fn emoma_agrees_with_oracle() {
    run_differential("differential.emoma", CASES, OPS, 2048, |ops| {
        emoma_driver(ops)
    })
    .unwrap_or_else(|t| panic!("{t}"));
}

#[test]
fn sfh_agrees_with_oracle() {
    run_differential("differential.sfh", CASES, OPS, 2048, sfh_driver)
        .unwrap_or_else(|t| panic!("{t}"));
}

#[test]
fn kvstore_agrees_with_oracle() {
    run_differential("differential.kvstore", CASES, OPS, 1024, |ops| {
        kvstore_driver(ops)
    })
    .unwrap_or_else(|t| panic!("{t}"));
}

#[test]
fn tcam_agrees_with_oracle() {
    run_differential("differential.tcam", CASES, OPS, 1024, |ops| {
        tcam_driver(ops)
    })
    .unwrap_or_else(|t| panic!("{t}"));
}

/// The heavyweight target: every op checked through software lookup,
/// `LOOKUP_B`, `LOOKUP_NB`, and `SNAPSHOT_READ` simultaneously, so it
/// runs fewer, shorter cases than the table-only drivers.
#[test]
fn engine_agrees_with_oracle_on_all_lookup_paths() {
    let cases = if cfg!(feature = "slow-tests") { 12 } else { 4 };
    let ops = if cfg!(feature = "slow-tests") {
        250
    } else {
        100
    };
    run_differential("differential.engine", cases, ops, 1024, |ops| {
        engine_driver(ops)
    })
    .unwrap_or_else(|t| panic!("{t}"));
}

/// The ISSUE's acceptance scenario: a seeded schedule of adversarial
/// evictions, scoreboard-flooding bursts, and mid-displacement move
/// preemptions keeps agreeing with the oracle, provably exercises each
/// fault class, and leaves zero auditor violations behind.
#[test]
fn fault_injection_passes_auditor() {
    let seeds = if cfg!(feature = "slow-tests") { 6 } else { 2 };
    for s in 0..seeds {
        let cfg = FaultConfig {
            seed: point_seed("differential.fault", s),
            ..FaultConfig::default()
        };
        let report =
            run_fault_injection(&cfg).unwrap_or_else(|e| panic!("seed {:#x}: {e}", cfg.seed));
        assert!(report.forced_evictions > 0, "no evictions injected");
        assert!(report.stall_bursts > 0, "no stall bursts injected");
        assert!(
            report.scoreboard_stalls > 0,
            "bursts never stalled the scoreboard"
        );
        assert!(
            report.preempted_moves > 0,
            "no mid-move preemptions injected"
        );
        assert_eq!(
            report.violations,
            vec![],
            "auditor violations under seed {:#x}",
            cfg.seed
        );
    }
}

/// The fault schedule must hold for every exact-match backend: forced
/// evictions, stall bursts, and mid-move preemptions against Cuckoo++'s
/// presence filters and EMOMA's counting-Bloom steering leave zero
/// auditor violations, just like the baseline cuckoo table.
#[test]
fn fault_injection_passes_auditor_for_every_backend() {
    let seeds = if cfg!(feature = "slow-tests") { 3 } else { 1 };
    for (i, backend) in FaultBackend::all().into_iter().enumerate() {
        for s in 0..seeds {
            let cfg = FaultConfig {
                seed: point_seed("differential.fault.backends", i as u64 * 16 + s),
                backend,
                ..FaultConfig::default()
            };
            let report = run_fault_injection(&cfg)
                .unwrap_or_else(|e| panic!("{}, seed {:#x}: {e}", backend.name(), cfg.seed));
            assert!(
                report.forced_evictions > 0,
                "{}: no evictions injected",
                backend.name()
            );
            assert!(
                report.preempted_moves > 0,
                "{}: no mid-move preemptions injected",
                backend.name()
            );
            assert_eq!(
                report.violations,
                vec![],
                "{}: auditor violations under seed {:#x}",
                backend.name(),
                cfg.seed
            );
        }
    }
}

/// Parallelism must never change results: the same fig9 slice run at
/// one and four jobs produces byte-identical rows (ordered merge in
/// `SweepRunner`), both as raw cells and as the rendered table.
#[test]
fn fig9_small_slice_is_jobs_invariant() {
    use halo_bench::experiments::fig9;
    use halo_nfv::sim::SweepRunner;

    let a = fig9::run_small_slice(&SweepRunner::new("fig9-det-1", 1).quiet());
    let b = fig9::run_small_slice(&SweepRunner::new("fig9-det-4", 4).quiet());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.entries, y.entries);
        assert_eq!(x.occupancy.to_bits(), y.occupancy.to_bits());
        assert_eq!(x.approach, y.approach);
        assert_eq!(
            x.throughput.to_bits(),
            y.throughput.to_bits(),
            "{x:?} vs {y:?}"
        );
        assert_eq!(
            x.normalized.to_bits(),
            y.normalized.to_bits(),
            "{x:?} vs {y:?}"
        );
    }
    assert_eq!(fig9::table(&a).to_string(), fig9::table(&b).to_string());
}

/// The backend-ablation matrix must also be jobs-invariant: the same
/// small slice at one and four workers produces bit-identical cells
/// and an identical rendered table.
#[test]
fn ablation_backends_small_slice_is_jobs_invariant() {
    use halo_bench::experiments::ablation_backends;
    use halo_nfv::sim::SweepRunner;

    let a = ablation_backends::run_small_slice(&SweepRunner::new("abl-b-det-1", 1).quiet());
    let b = ablation_backends::run_small_slice(&SweepRunner::new("abl-b-det-4", 4).quiet());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.backend, y.backend);
        assert_eq!(x.strategy, y.strategy);
        assert_eq!(x.mix, y.mix);
        assert_eq!(
            x.throughput.to_bits(),
            y.throughput.to_bits(),
            "{x:?} vs {y:?}"
        );
        assert_eq!(
            x.mem_per_lookup.to_bits(),
            y.mem_per_lookup.to_bits(),
            "{x:?} vs {y:?}"
        );
    }
    assert_eq!(
        ablation_backends::table(&a).to_string(),
        ablation_backends::table(&b).to_string()
    );
}

/// Mutation smoke check: a deliberately broken cuckoo remove (clears
/// the bucket entry but leaks the slot and the length) must be caught
/// by the oracle and shrunk to a tiny replayable trace.
#[test]
fn mutation_is_caught_and_shrunk() {
    let trace = run_differential("differential.mutation", 4, 60, 64, |ops| {
        buggy_cuckoo_driver(ops)
    })
    .expect_err("the seeded bug must be caught");
    assert!(
        trace.ops.len() <= 20,
        "trace not minimal ({} ops):\n{trace}",
        trace.ops.len()
    );
    assert!(
        buggy_cuckoo_driver(&trace.ops).is_some(),
        "minimal trace must replay the failure"
    );
    assert_eq!(
        cuckoo_driver(&trace.ops),
        None,
        "the real table must pass the minimal trace"
    );
    let printed = trace.to_string();
    assert!(
        printed.contains("seed 0x"),
        "trace must print its seed: {printed}"
    );
}

/// Churn differential: the streaming traffic engine's arrival/expiry
/// stream (a large live set installed up front, then paired
/// insert/remove churn under skewed lookups) must agree with the
/// oracle on every exact-match backend, with each backend's invariant
/// auditor run at the epoch cadence inside the driver.
#[test]
fn churn_stream_agrees_with_oracle_on_every_backend() {
    use halo_nfv::check::run_churn_differential;
    use halo_nfv::datapath::TableBackend;
    let cases = if cfg!(feature = "slow-tests") { 12 } else { 3 };
    for backend in TableBackend::all() {
        run_churn_differential(
            &format!("differential.churn.{}", backend.name()),
            cases,
            256,
            700,
            1 << 11,
            backend,
        )
        .unwrap_or_else(|t| panic!("{}: {t}", backend.name()));
    }
}

/// Wildcard differential: range-rule churn and classification streams
/// (generated per ruleset shape, from exact-heavy MegaFlow state to a
/// port-span ACL mix) must agree with the linear-scan [`RangeOracle`]
/// on every wildcard backend — TSS prefix expansion and the RVH
/// range-vector hash — comparing `(priority, action)` winners and the
/// installed-rule census at the audit cadence.
///
/// [`RangeOracle`]: halo_nfv::check::RangeOracle
#[test]
fn wildcard_stream_agrees_with_range_oracle_on_every_backend() {
    use halo_nfv::check::run_wildcard_differential;
    use halo_nfv::nf::RulesetShape;
    let cases = if cfg!(feature = "slow-tests") { 8 } else { 2 };
    let events = if cfg!(feature = "slow-tests") {
        400
    } else {
        160
    };
    for shape in RulesetShape::all() {
        run_wildcard_differential(
            &format!("differential.wildcard.{}", shape.name()),
            cases,
            32,
            events,
            shape,
        )
        .unwrap_or_else(|t| panic!("{}: {t}", shape.name()));
    }
}

/// The wildcard-ablation matrix must be jobs-invariant too: the same
/// small slice at one and four workers produces bit-identical cells
/// and an identical rendered table.
#[test]
fn ablation_wildcard_small_slice_is_jobs_invariant() {
    use halo_bench::experiments::ablation_wildcard;
    use halo_nfv::sim::SweepRunner;

    let a = ablation_wildcard::run_small_slice(&SweepRunner::new("abl-w-det-1", 1).quiet());
    let b = ablation_wildcard::run_small_slice(&SweepRunner::new("abl-w-det-4", 4).quiet());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.backend, y.backend);
        assert_eq!(x.shape, y.shape);
        assert_eq!(x.strategy, y.strategy);
        assert_eq!(
            x.throughput.to_bits(),
            y.throughput.to_bits(),
            "{x:?} vs {y:?}"
        );
        assert_eq!(
            x.probes_per_lookup.to_bits(),
            y.probes_per_lookup.to_bits(),
            "{x:?} vs {y:?}"
        );
        assert_eq!(x.mem_bytes, y.mem_bytes);
    }
    assert_eq!(
        ablation_wildcard::table(&a).to_string(),
        ablation_wildcard::table(&b).to_string()
    );
}

/// The scale experiment's small slice merges identically at any
/// worker count — the property that lets `GOLDEN.sha256` pin the
/// `figures scale --quick` output.
#[test]
fn scale_small_slice_is_jobs_invariant() {
    use halo_bench::experiments::scale;
    use halo_nfv::sim::SweepRunner;

    let a = scale::run_small_slice(&SweepRunner::new("scale-det-1", 1).quiet());
    let b = scale::run_small_slice(&SweepRunner::new("scale-det-4", 4).quiet());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.flows, y.flows);
        assert_eq!(x.packets, y.packets);
        assert_eq!(x.misses, y.misses);
        assert_eq!((x.arrivals, x.expiries), (y.arrivals, y.expiries));
        assert_eq!(x.p99_classify, y.p99_classify);
        assert_eq!(
            x.hybrid_residency.to_bits(),
            y.hybrid_residency.to_bits(),
            "{x:?} vs {y:?}"
        );
    }
    assert_eq!(scale::table(&a).to_string(), scale::table(&b).to_string());
}
