//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.

use halo_nfv::classify::{
    distinct_masks, DecisionTree, PacketHeader, SearchMode, TupleSpace, WildcardMask,
};
use halo_nfv::kvstore::KvStore;
use halo_nfv::mem::{AccessKind, CoreId, MachineConfig, MemorySystem, SimMemory};
use halo_nfv::sim::{Cycle, Resource, SplitMix64};
use halo_nfv::tables::{CuckooTable, FlowKey, SfhTable};
use halo_nfv::tcam::{TcamEntry, TcamTable};
use proptest::prelude::*;
use std::collections::HashMap;

/// Operations for model-based testing of the cuckoo table.
#[derive(Debug, Clone)]
enum TableOp {
    Insert(u16, u64),
    Remove(u16),
    Lookup(u16),
    Move(u16),
}

fn table_op() -> impl Strategy<Value = TableOp> {
    prop_oneof![
        (any::<u16>(), any::<u64>()).prop_map(|(k, v)| TableOp::Insert(k, v)),
        any::<u16>().prop_map(TableOp::Remove),
        any::<u16>().prop_map(TableOp::Lookup),
        any::<u16>().prop_map(TableOp::Move),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cuckoo table behaves exactly like a HashMap under arbitrary
    /// interleavings of insert/remove/lookup/cuckoo-move.
    #[test]
    fn cuckoo_matches_hashmap_model(ops in proptest::collection::vec(table_op(), 1..300)) {
        let mut mem = SimMemory::new();
        let mut table = CuckooTable::create(&mut mem, 1 << 12, 13); // 32K slots
        let mut model: HashMap<u16, u64> = HashMap::new();
        for op in ops {
            match op {
                TableOp::Insert(k, v) => {
                    let key = FlowKey::synthetic(u64::from(k), 13);
                    // Plenty of headroom: inserts must succeed.
                    table.insert(&mut mem, &key, v).expect("table has room");
                    model.insert(k, v);
                }
                TableOp::Remove(k) => {
                    let key = FlowKey::synthetic(u64::from(k), 13);
                    let got = table.remove(&mut mem, &key);
                    prop_assert_eq!(got, model.remove(&k));
                }
                TableOp::Lookup(k) => {
                    let key = FlowKey::synthetic(u64::from(k), 13);
                    prop_assert_eq!(table.lookup(&mut mem, &key), model.get(&k).copied());
                }
                TableOp::Move(k) => {
                    let key = FlowKey::synthetic(u64::from(k), 13);
                    table.cuckoo_move(&mut mem, &key);
                    // A move must never change lookup results.
                    prop_assert_eq!(table.lookup(&mut mem, &key), model.get(&k).copied());
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
    }

    /// Every key a cuckoo insert accepted stays retrievable, even at
    /// very high fill where displacement chains get long.
    #[test]
    fn cuckoo_high_occupancy_no_loss(seed in any::<u64>()) {
        let mut mem = SimMemory::new();
        let mut table = CuckooTable::create(&mut mem, 64, 13); // 512 slots
        let mut rng = SplitMix64::new(seed);
        let mut accepted = Vec::new();
        for _ in 0..512 {
            let id = rng.next_u64() % 100_000;
            let key = FlowKey::synthetic(id, 13);
            if table.insert(&mut mem, &key, id).is_ok() {
                accepted.push((key, id));
            }
        }
        for (key, id) in &accepted {
            prop_assert_eq!(table.lookup(&mut mem, key), Some(*id));
        }
    }

    /// SFH and cuckoo agree on every key both accepted.
    #[test]
    fn sfh_agrees_with_cuckoo(ids in proptest::collection::vec(0u64..50_000, 1..200)) {
        let mut mem = SimMemory::new();
        let mut cuckoo = CuckooTable::create(&mut mem, 1 << 10, 13);
        let mut sfh = SfhTable::create(&mut mem, 1 << 12, 13);
        for &id in &ids {
            let key = FlowKey::synthetic(id, 13);
            let c = cuckoo.insert(&mut mem, &key, id).is_ok();
            let s = sfh.insert(&mut mem, &key, id).is_ok();
            if c && s {
                prop_assert_eq!(
                    cuckoo.lookup(&mut mem, &key),
                    sfh.lookup(&mut mem, &key)
                );
            }
        }
    }

    /// Tuple-space search equals the linear-scan oracle for arbitrary
    /// rule sets and probes (both FirstMatch and HighestPriority).
    #[test]
    fn tss_equals_linear_oracle(
        rules in proptest::collection::vec((0u64..5_000, 0usize..8, 0u16..8), 0..150),
        probes in proptest::collection::vec(0u64..5_000, 1..100),
        first_match in any::<bool>(),
    ) {
        let mut mem = SimMemory::new();
        let mode = if first_match { SearchMode::FirstMatch } else { SearchMode::HighestPriority };
        let mut tss = TupleSpace::new(&mut mem, distinct_masks(8), 256, mode);
        for (i, &(flow, tuple, prio)) in rules.iter().enumerate() {
            let key = PacketHeader::synthetic(flow).miniflow();
            let _ = tss.insert_rule(&mut mem, tuple, &key, prio, i as u64);
        }
        for &flow in &probes {
            let key = PacketHeader::synthetic(flow).miniflow();
            prop_assert_eq!(
                tss.classify(&mut mem, &key),
                tss.classify_linear(&mut mem, &key)
            );
        }
    }

    /// A TCAM with only exact entries behaves like a map; wildcard
    /// entries only ever *add* matches, never remove them.
    #[test]
    fn tcam_exact_entries_are_a_map(ids in proptest::collection::vec(0u64..1_000, 1..100)) {
        let mut tcam = TcamTable::new(2_048, 4);
        let mut model = HashMap::new();
        for &id in &ids {
            let key = FlowKey::synthetic(id, 13);
            if tcam.insert(TcamEntry::exact(key.as_bytes(), 1, id)).is_ok() {
                model.entry(id).or_insert(id);
            }
        }
        for &id in &ids {
            let key = FlowKey::synthetic(id, 13);
            prop_assert_eq!(tcam.lookup(key.as_bytes()), model.get(&id).copied());
        }
        // Adding a catch-all cannot shadow higher-priority exacts.
        let width = FlowKey::synthetic(0, 13).len();
        tcam.insert(TcamEntry::new(&vec![0u8; width], &vec![0u8; width], 0, u64::MAX))
            .unwrap();
        for &id in &ids {
            let key = FlowKey::synthetic(id, 13);
            prop_assert_eq!(tcam.lookup(key.as_bytes()), model.get(&id).copied());
        }
    }

    /// Masking is idempotent and monotone: applying a mask twice equals
    /// once, and masked keys of equal flows stay equal.
    #[test]
    fn mask_idempotent(flow in any::<u64>(), wild_src in any::<bool>(), wild_dst in any::<bool>()) {
        let mut mask = WildcardMask::exact();
        if wild_src { mask = mask.any_src_port(); }
        if wild_dst { mask = mask.any_dst_port(); }
        let key = PacketHeader::synthetic(flow).miniflow();
        let once = mask.apply(&key);
        let twice = mask.apply(&once);
        prop_assert_eq!(once, twice);
    }

    /// Timed memory accesses never corrupt data: whatever was written
    /// functionally reads back after arbitrary access sequences.
    #[test]
    fn timed_accesses_preserve_data(
        writes in proptest::collection::vec((0u64..64, any::<u64>()), 1..40),
        touches in proptest::collection::vec((0usize..4, 0u64..64), 0..60),
    ) {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let base = sys.data_mut().alloc_lines(64 * 64);
        let mut model = HashMap::new();
        for &(slot, value) in &writes {
            sys.data_mut().write_u64(base + slot * 64, value);
            model.insert(slot, value);
        }
        let mut t = Cycle(0);
        for &(core, slot) in &touches {
            let kind = if slot % 2 == 0 { AccessKind::Load } else { AccessKind::Store };
            let out = sys.access(CoreId(core), base + slot * 64, kind, t);
            prop_assert!(out.complete >= t);
            t = out.complete;
        }
        for (&slot, &value) in &model {
            prop_assert_eq!(sys.data_mut().read_u64(base + slot * 64), value);
        }
    }

    /// Resource reservations never overlap and never start before the
    /// request arrives.
    #[test]
    fn resource_reservations_are_causal(
        arrivals in proptest::collection::vec(0u64..10_000, 1..200),
        occupancy in 1u64..8,
    ) {
        let mut r = Resource::new("p", halo_nfv::sim::Cycles(occupancy), halo_nfv::sim::Cycles(occupancy));
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for &a in &arrivals {
            let done = r.serve(Cycle(a));
            let start = done.0 - occupancy;
            prop_assert!(start >= a, "service before arrival");
            spans.push((start, done.0));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlapping reservations {w:?}");
        }
    }

    /// The key-value store behaves like a HashMap under arbitrary
    /// set/get/delete interleavings.
    #[test]
    fn kvstore_matches_hashmap_model(
        ops in proptest::collection::vec((0u8..3, 0u16..64, 0u8..40), 1..120)
    ) {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let mut kv = KvStore::new(&mut sys, 4096);
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for (op, kid, vlen) in ops {
            let key = format!("key-{kid}").into_bytes();
            match op {
                0 => {
                    let value = vec![kid as u8; vlen as usize + 1];
                    kv.set(&mut sys, &key, &value).unwrap();
                    model.insert(key, value);
                }
                1 => {
                    prop_assert_eq!(kv.get(&mut sys, &key), model.get(&key).cloned());
                }
                _ => {
                    let existed = kv.delete(&mut sys, &key);
                    prop_assert_eq!(existed, model.remove(&key).is_some());
                }
            }
            prop_assert_eq!(kv.len(), model.len());
        }
    }

    /// Tree lookups agree with a sorted-map oracle for arbitrary key
    /// sets and probes.
    #[test]
    fn tree_matches_btreemap(
        inserts in proptest::collection::vec((0u64..5_000, any::<u64>()), 1..300),
        probes in proptest::collection::vec(0u64..5_000, 1..100),
    ) {
        use std::collections::BTreeMap;
        let mut mem = halo_nfv::mem::SimMemory::new();
        let entries: Vec<(FlowKey, u64)> = inserts
            .iter()
            .map(|&(id, v)| (FlowKey::synthetic(id, 16), v))
            .collect();
        let mut model: BTreeMap<FlowKey, u64> = BTreeMap::new();
        for (k, v) in &entries {
            model.insert(*k, *v);
        }
        let tree = DecisionTree::build(&mut mem, &entries);
        prop_assert_eq!(tree.len(), model.len());
        for &id in &probes {
            let k = FlowKey::synthetic(id, 16);
            prop_assert_eq!(tree.lookup(&mut mem, &k), model.get(&k).copied());
        }
    }

    /// The flow-register estimate is within a usable error bound in the
    /// calibrated range (up to 2x the bit count, several packets/flow).
    #[test]
    fn flow_register_error_bounded(flows in 1u64..64, seed in any::<u64>()) {
        use halo_nfv::accel::FlowRegister;
        let mut reg = FlowRegister::new(32);
        let mut rng = SplitMix64::new(seed);
        let hashes: Vec<u64> = (0..flows).map(|_| rng.next_u64()).collect();
        for _ in 0..8 {
            for &h in &hashes {
                reg.observe(h);
            }
        }
        if !reg.saturated() {
            let est = reg.estimate();
            // Single-trial linear counting over 32 bits: generous bound.
            prop_assert!((est - flows as f64).abs() <= 0.5 * flows as f64 + 4.0,
                "estimate {est} for {flows} flows");
        }
    }
}
