//! Property-based tests over the core data structures and invariants of
//! the reproduction.
//!
//! These used to run under `proptest`; that pulled a crates.io
//! dependency into every build, which broke the tier-1 verify on
//! network-restricted machines. They now drive the same properties from
//! the workspace's own [`SplitMix64`] with seeds derived via
//! [`point_seed`], so case generation is fully deterministic and
//! dependency-free. The default case count keeps `cargo test -q` fast;
//! build with `--features slow-tests` to multiply it.

use halo_nfv::classify::{
    distinct_masks, DecisionTree, PacketHeader, SearchMode, TupleSpace, WildcardMask,
};
use halo_nfv::kvstore::KvStore;
use halo_nfv::mem::{AccessKind, CoreId, MachineConfig, MemorySystem, SimMemory};
use halo_nfv::sim::{point_seed, Cycle, Cycles, Resource, SplitMix64};
use halo_nfv::tables::{CuckooTable, FlowKey, SfhTable};
use halo_nfv::tcam::{TcamEntry, TcamTable};
use std::collections::HashMap;

/// Cases per property: modest by default, paper-scale with the
/// `slow-tests` feature.
const CASES: u64 = if cfg!(feature = "slow-tests") { 64 } else { 12 };

/// One deterministic RNG per case of a named property.
fn case_rngs(property: &str) -> impl Iterator<Item = SplitMix64> + '_ {
    (0..CASES).map(move |i| SplitMix64::new(point_seed(property, i)))
}

/// Uniform length in `[lo, hi)`.
fn len_in(rng: &mut SplitMix64, lo: u64, hi: u64) -> usize {
    (lo + rng.below(hi - lo)) as usize
}

/// Operations for model-based testing of the cuckoo table.
#[derive(Debug, Clone, Copy)]
enum TableOp {
    Insert(u16, u64),
    Remove(u16),
    Lookup(u16),
    Move(u16),
}

fn table_op(rng: &mut SplitMix64) -> TableOp {
    let k = rng.next_u32() as u16;
    match rng.below(4) {
        0 => TableOp::Insert(k, rng.next_u64()),
        1 => TableOp::Remove(k),
        2 => TableOp::Lookup(k),
        _ => TableOp::Move(k),
    }
}

/// The cuckoo table behaves exactly like a HashMap under arbitrary
/// interleavings of insert/remove/lookup/cuckoo-move.
#[test]
fn cuckoo_matches_hashmap_model() {
    for mut rng in case_rngs("properties.cuckoo_model") {
        let ops = len_in(&mut rng, 1, 300);
        let mut mem = SimMemory::new();
        let mut table = CuckooTable::create(&mut mem, 1 << 12, 13); // 32K slots
        let mut model: HashMap<u16, u64> = HashMap::new();
        for _ in 0..ops {
            match table_op(&mut rng) {
                TableOp::Insert(k, v) => {
                    let key = FlowKey::synthetic(u64::from(k), 13);
                    // Plenty of headroom: inserts must succeed.
                    table.insert(&mut mem, &key, v).expect("table has room");
                    model.insert(k, v);
                }
                TableOp::Remove(k) => {
                    let key = FlowKey::synthetic(u64::from(k), 13);
                    let got = table.remove(&mut mem, &key);
                    assert_eq!(got, model.remove(&k));
                }
                TableOp::Lookup(k) => {
                    let key = FlowKey::synthetic(u64::from(k), 13);
                    assert_eq!(table.lookup(&mem, &key), model.get(&k).copied());
                }
                TableOp::Move(k) => {
                    let key = FlowKey::synthetic(u64::from(k), 13);
                    table.cuckoo_move(&mut mem, &key);
                    // A move must never change lookup results.
                    assert_eq!(table.lookup(&mem, &key), model.get(&k).copied());
                }
            }
            assert_eq!(table.len(), model.len());
        }
    }
}

/// Every key a cuckoo insert accepted stays retrievable, even at very
/// high fill where displacement chains get long.
#[test]
fn cuckoo_high_occupancy_no_loss() {
    for mut rng in case_rngs("properties.cuckoo_high_occupancy") {
        let mut mem = SimMemory::new();
        let mut table = CuckooTable::create(&mut mem, 64, 13); // 512 slots
        let mut accepted = Vec::new();
        for _ in 0..512 {
            let id = rng.next_u64() % 100_000;
            let key = FlowKey::synthetic(id, 13);
            if table.insert(&mut mem, &key, id).is_ok() {
                accepted.push((key, id));
            }
        }
        for (key, id) in &accepted {
            assert_eq!(table.lookup(&mem, key), Some(*id));
        }
    }
}

/// SFH and cuckoo agree on every key both accepted.
#[test]
fn sfh_agrees_with_cuckoo() {
    for mut rng in case_rngs("properties.sfh_vs_cuckoo") {
        let n = len_in(&mut rng, 1, 200);
        let ids: Vec<u64> = (0..n).map(|_| rng.below(50_000)).collect();
        let mut mem = SimMemory::new();
        let mut cuckoo = CuckooTable::create(&mut mem, 1 << 10, 13);
        let mut sfh = SfhTable::create(&mut mem, 1 << 12, 13);
        for &id in &ids {
            let key = FlowKey::synthetic(id, 13);
            let c = cuckoo.insert(&mut mem, &key, id).is_ok();
            let s = sfh.insert(&mut mem, &key, id).is_ok();
            if c && s {
                assert_eq!(cuckoo.lookup(&mem, &key), sfh.lookup(&mem, &key));
            }
        }
    }
}

/// Tuple-space search equals the linear-scan oracle for arbitrary rule
/// sets and probes (both FirstMatch and HighestPriority).
#[test]
fn tss_equals_linear_oracle() {
    for mut rng in case_rngs("properties.tss_oracle") {
        let nrules = len_in(&mut rng, 0, 150);
        let rules: Vec<(u64, usize, u16)> = (0..nrules)
            .map(|_| (rng.below(5_000), rng.below(8) as usize, rng.below(8) as u16))
            .collect();
        let nprobes = len_in(&mut rng, 1, 100);
        let probes: Vec<u64> = (0..nprobes).map(|_| rng.below(5_000)).collect();
        let mode = if rng.chance(0.5) {
            SearchMode::FirstMatch
        } else {
            SearchMode::HighestPriority
        };
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(&mut mem, distinct_masks(8), 256, mode);
        for (i, &(flow, tuple, prio)) in rules.iter().enumerate() {
            let key = PacketHeader::synthetic(flow).miniflow();
            let _ = tss.insert_rule(&mut mem, tuple, &key, prio, i as u64);
        }
        for &flow in &probes {
            let key = PacketHeader::synthetic(flow).miniflow();
            assert_eq!(tss.classify(&mem, &key), tss.classify_linear(&mem, &key));
        }
    }
}

/// A TCAM with only exact entries behaves like a map; wildcard entries
/// only ever *add* matches, never remove them.
#[test]
fn tcam_exact_entries_are_a_map() {
    for mut rng in case_rngs("properties.tcam_map") {
        let n = len_in(&mut rng, 1, 100);
        let ids: Vec<u64> = (0..n).map(|_| rng.below(1_000)).collect();
        let mut tcam = TcamTable::new(2_048, 4);
        let mut model = HashMap::new();
        for &id in &ids {
            let key = FlowKey::synthetic(id, 13);
            if tcam.insert(TcamEntry::exact(key.as_bytes(), 1, id)).is_ok() {
                model.entry(id).or_insert(id);
            }
        }
        for &id in &ids {
            let key = FlowKey::synthetic(id, 13);
            assert_eq!(tcam.lookup(key.as_bytes()), model.get(&id).copied());
        }
        // Adding a catch-all cannot shadow higher-priority exacts.
        let width = FlowKey::synthetic(0, 13).len();
        tcam.insert(TcamEntry::new(
            &vec![0u8; width],
            &vec![0u8; width],
            0,
            u64::MAX,
        ))
        .unwrap();
        for &id in &ids {
            let key = FlowKey::synthetic(id, 13);
            assert_eq!(tcam.lookup(key.as_bytes()), model.get(&id).copied());
        }
    }
}

/// Masking is idempotent: applying a mask twice equals once, for every
/// wildcard combination.
#[test]
fn mask_idempotent() {
    for mut rng in case_rngs("properties.mask_idempotent") {
        let flow = rng.next_u64();
        for (wild_src, wild_dst) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut mask = WildcardMask::exact();
            if wild_src {
                mask = mask.any_src_port();
            }
            if wild_dst {
                mask = mask.any_dst_port();
            }
            let key = PacketHeader::synthetic(flow).miniflow();
            let once = mask.apply(&key);
            let twice = mask.apply(&once);
            assert_eq!(once, twice);
        }
    }
}

/// Timed memory accesses never corrupt data: whatever was written
/// functionally reads back after arbitrary access sequences.
#[test]
fn timed_accesses_preserve_data() {
    for mut rng in case_rngs("properties.timed_accesses") {
        let nwrites = len_in(&mut rng, 1, 40);
        let writes: Vec<(u64, u64)> = (0..nwrites)
            .map(|_| (rng.below(64), rng.next_u64()))
            .collect();
        let ntouches = len_in(&mut rng, 0, 60);
        let touches: Vec<(usize, u64)> = (0..ntouches)
            .map(|_| (rng.below(4) as usize, rng.below(64)))
            .collect();
        let mut sys = MemorySystem::new(MachineConfig::small());
        let base = sys.data_mut().alloc_lines(64 * 64);
        let mut model = HashMap::new();
        for &(slot, value) in &writes {
            sys.data_mut().write_u64(base + slot * 64, value);
            model.insert(slot, value);
        }
        let mut t = Cycle(0);
        for &(core, slot) in &touches {
            let kind = if slot % 2 == 0 {
                AccessKind::Load
            } else {
                AccessKind::Store
            };
            let out = sys.access(CoreId(core), base + slot * 64, kind, t);
            assert!(out.complete >= t);
            t = out.complete;
        }
        for (&slot, &value) in &model {
            assert_eq!(sys.data_mut().read_u64(base + slot * 64), value);
        }
    }
}

/// Resource reservations never overlap and never start before the
/// request arrives.
#[test]
fn resource_reservations_are_causal() {
    for mut rng in case_rngs("properties.resource_causal") {
        let n = len_in(&mut rng, 1, 200);
        let arrivals: Vec<u64> = (0..n).map(|_| rng.below(10_000)).collect();
        let occupancy = 1 + rng.below(7);
        let mut r = Resource::new("p", Cycles(occupancy), Cycles(occupancy));
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for &a in &arrivals {
            let done = r.serve(Cycle(a));
            let start = done.0 - occupancy;
            assert!(start >= a, "service before arrival");
            spans.push((start, done.0));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping reservations {w:?}");
        }
    }
}

/// The key-value store behaves like a HashMap under arbitrary
/// set/get/delete interleavings.
#[test]
fn kvstore_matches_hashmap_model() {
    for mut rng in case_rngs("properties.kvstore_model") {
        let nops = len_in(&mut rng, 1, 120);
        let mut sys = MemorySystem::new(MachineConfig::small());
        let mut kv = KvStore::new(&mut sys, 4096);
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for _ in 0..nops {
            let op = rng.below(3);
            let kid = rng.below(64);
            let vlen = rng.below(40);
            let key = format!("key-{kid}").into_bytes();
            match op {
                0 => {
                    let value = vec![kid as u8; vlen as usize + 1];
                    kv.set(&mut sys, &key, &value).unwrap();
                    model.insert(key, value);
                }
                1 => {
                    assert_eq!(kv.get(&mut sys, &key), model.get(&key).cloned());
                }
                _ => {
                    let existed = kv.delete(&mut sys, &key);
                    assert_eq!(existed, model.remove(&key).is_some());
                }
            }
            assert_eq!(kv.len(), model.len());
        }
    }
}

/// Tree lookups agree with a sorted-map oracle for arbitrary key sets
/// and probes.
#[test]
fn tree_matches_btreemap() {
    use std::collections::BTreeMap;
    for mut rng in case_rngs("properties.tree_oracle") {
        let n = len_in(&mut rng, 1, 300);
        let inserts: Vec<(u64, u64)> = (0..n).map(|_| (rng.below(5_000), rng.next_u64())).collect();
        let nprobes = len_in(&mut rng, 1, 100);
        let probes: Vec<u64> = (0..nprobes).map(|_| rng.below(5_000)).collect();
        let mut mem = SimMemory::new();
        let entries: Vec<(FlowKey, u64)> = inserts
            .iter()
            .map(|&(id, v)| (FlowKey::synthetic(id, 16), v))
            .collect();
        let mut model: BTreeMap<FlowKey, u64> = BTreeMap::new();
        for (k, v) in &entries {
            model.insert(*k, *v);
        }
        let tree = DecisionTree::build(&mut mem, &entries);
        assert_eq!(tree.len(), model.len());
        for &id in &probes {
            let k = FlowKey::synthetic(id, 16);
            assert_eq!(tree.lookup(&mut mem, &k), model.get(&k).copied());
        }
    }
}

/// The flow-register estimate is within a usable error bound in the
/// calibrated range (up to 2x the bit count, several packets/flow).
#[test]
fn flow_register_error_bounded() {
    use halo_nfv::accel::FlowRegister;
    for mut rng in case_rngs("properties.flow_register") {
        let flows = 1 + rng.below(63);
        let mut reg = FlowRegister::new(32);
        let hashes: Vec<u64> = (0..flows).map(|_| rng.next_u64()).collect();
        for _ in 0..8 {
            for &h in &hashes {
                reg.observe(h);
            }
        }
        if !reg.saturated() {
            let est = reg.estimate();
            // Single-trial linear counting over 32 bits: generous bound.
            assert!(
                (est - flows as f64).abs() <= 0.5 * flows as f64 + 4.0,
                "estimate {est} for {flows} flows"
            );
        }
    }
}

/// Streaming Zipf rank-frequency: averaged per rank, every hotter
/// octave of ranks draws samples at least as often as the next colder
/// one, for exponents on both sides of the closed-form/binary-search
/// split inside [`StreamZipf`](halo_nfv::sim::StreamZipf).
#[test]
fn stream_zipf_rank_frequency_is_monotone() {
    use halo_nfv::sim::StreamZipf;
    for mut rng in case_rngs("properties.zipf_monotone") {
        let n = 1usize << (8 + rng.below(5)); // 256..4096 ranks
        let theta = 0.6 + rng.next_f64() * 0.8; // crosses theta = 1
        let z = StreamZipf::new(n, theta);
        let octaves = n.ilog2() as usize + 1;
        let mut counts = vec![0u64; octaves];
        const SAMPLES: u64 = 30_000;
        for _ in 0..SAMPLES {
            let r = z.sample(&mut rng);
            assert!(r < n, "rank {r} out of [0, {n})");
            counts[(r + 1).ilog2() as usize] += 1;
        }
        let per_rank: Vec<f64> = counts
            .iter()
            .enumerate()
            .map(|(b, &c)| {
                let lo = (1usize << b) - 1;
                let width = ((1usize << b).min(n - lo)).max(1);
                c as f64 / width as f64
            })
            .collect();
        for b in 0..octaves - 1 {
            // Only compare octaves with enough mass to be statistically
            // stable; the expected ratio between neighbours is 2^theta.
            if counts[b] >= 64 && counts[b + 1] >= 64 {
                assert!(
                    per_rank[b] > per_rank[b + 1],
                    "theta {theta:.2}, n {n}: octave {b} per-rank {} !> {}",
                    per_rank[b],
                    per_rank[b + 1]
                );
            }
        }
    }
}

/// Alpha sensitivity: raising the Zipf exponent strictly concentrates
/// mass on the top ranks (same RNG seed, same rank universe).
#[test]
fn stream_zipf_alpha_controls_skew() {
    use halo_nfv::sim::StreamZipf;
    for mut rng in case_rngs("properties.zipf_alpha") {
        let n = 4096;
        let seed = rng.next_u64();
        let top16 = |theta: f64| -> u64 {
            let z = StreamZipf::new(n, theta);
            let mut r = SplitMix64::new(seed);
            (0..20_000).filter(|_| z.sample(&mut r) < 16).count() as u64
        };
        let (flat, mid, steep) = (top16(0.2), top16(0.8), top16(1.3));
        assert!(
            flat < mid && mid < steep,
            "top-16 mass must grow with theta: {flat} / {mid} / {steep}"
        );
    }
}

/// Churn conservation: the streaming engine replaces expired flows in
/// place, so the live set never drifts from the configured flow count,
/// arrivals and expiries stay paired (at most one expiry in flight),
/// and every emitted packet belongs to the live set.
#[test]
fn streaming_churn_conserves_the_live_set() {
    use halo_nfv::datapath::TrafficEvent;
    use halo_nfv::nf::{StreamConfig, StreamingTrafficGen};
    for mut rng in case_rngs("properties.churn_conserve") {
        let flows = 64 + rng.below(700) as usize;
        let mut cfg = StreamConfig::churn(flows);
        cfg.churn_per_packet = rng.next_f64() * 0.3;
        let mut gen = StreamingTrafficGen::new(cfg, rng.next_u64());
        for _ in 0..1_500 {
            let ev = gen.next_event();
            if let TrafficEvent::Packet(f) = ev {
                assert!(gen.live_flows().contains(&f), "packet from dead flow {f}");
            }
            assert_eq!(gen.live_count(), flows, "live set drifted");
            let in_flight = gen.arrivals() - gen.expiries();
            assert!(in_flight <= 1, "unpaired churn: {in_flight} in flight");
        }
    }
}

/// Streaming sweeps are byte-identical at any `--jobs` level: a sweep
/// whose points each render a generator sub-stream merges to the same
/// text under one worker and many.
#[test]
fn streaming_sweeps_are_jobs_invariant() {
    use halo_nfv::nf::{StreamConfig, StreamingTrafficGen};
    use halo_nfv::sim::{SweepPoint, SweepRunner};

    #[derive(Debug, Clone, Copy)]
    struct StreamDigestPoint {
        flows: usize,
        seed: u64,
    }
    impl SweepPoint for StreamDigestPoint {
        type Row = String;
        fn run(&self) -> String {
            let mut gen = StreamingTrafficGen::new(StreamConfig::churn(self.flows), self.seed);
            (0..200).fold(String::new(), |mut s, _| {
                use std::fmt::Write;
                write!(s, "{:?};", gen.next_event()).unwrap();
                s
            })
        }
        fn label(&self) -> String {
            format!("stream/{}", self.flows)
        }
    }

    let points = || -> Vec<StreamDigestPoint> {
        (0..6)
            .map(|i| StreamDigestPoint {
                flows: 100 + 37 * i as usize,
                seed: point_seed("properties.stream_jobs", i),
            })
            .collect()
    };
    let a = SweepRunner::new("stream-jobs-1", 1).quiet().run(points());
    let b = SweepRunner::new("stream-jobs-4", 4).quiet().run(points());
    assert_eq!(a, b, "merged stream digests diverged across jobs levels");
}
