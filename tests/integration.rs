//! Cross-crate integration tests: exercise the whole stack (tables over
//! simulated memory, core model, accelerators, classification layers,
//! virtual switch, NFs) together.

use halo_nfv::accel::{AcceleratorConfig, HaloEngine, HybridClassifier, HybridConfig};
use halo_nfv::classify::{distinct_masks, PacketHeader, SearchMode, TupleSpace};
use halo_nfv::cpu::{build_sw_lookup, CoreModel, Scratch};
use halo_nfv::mem::{CoreId, MachineConfig, MemorySystem};
use halo_nfv::nf::{HashNf, HashNfKind, Scenario, TrafficGen};
use halo_nfv::sim::{Cycle, SplitMix64};
use halo_nfv::tables::{CuckooTable, FlowKey};
use halo_nfv::vswitch::{LookupBackend, SwitchConfig, VirtualSwitch};

/// Software and HALO paths must return identical lookup results over a
/// large randomized workload, while both report sane timing.
#[test]
fn software_and_halo_agree_functionally() {
    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut table = CuckooTable::with_capacity_for(sys.data_mut(), 5_000, 0.85, 13);
    let mut rng = SplitMix64::new(0xA11CE);
    let mut installed = Vec::new();
    for id in 0..5_000u64 {
        let key = FlowKey::synthetic(id, 13);
        table.insert(sys.data_mut(), &key, id * 3).unwrap();
        installed.push(key);
    }
    for a in table.all_lines().collect::<Vec<_>>() {
        sys.warm_llc(a);
    }
    let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
    let mut scratch = Scratch::new(&mut sys);
    scratch.warm(&mut sys, CoreId(0));
    let mut core = CoreModel::new(CoreId(1), sys.config());

    let mut t = Cycle(0);
    for i in 0..500 {
        // Mix hits and misses.
        let key = if i % 3 == 0 {
            FlowKey::synthetic(1_000_000 + i, 13)
        } else {
            installed[rng.below(installed.len() as u64) as usize]
        };
        let sw_trace = table.lookup_traced(sys.data_mut(), &key, true);
        let prog = build_sw_lookup(&sw_trace, &mut scratch, None);
        let sw_report = core.run(&prog, &mut sys, t);

        let (hw_result, done) = engine.lookup_b(&mut sys, CoreId(0), &table, &key, None, t);
        assert_eq!(sw_trace.result, hw_result, "divergence at iteration {i}");
        assert!(done > t);
        t = sw_report.finish.max(done);
    }
}

/// The vswitch forwards traffic correctly across all three backends and
/// the HALO backends spend fewer cycles classifying.
#[test]
fn vswitch_backends_agree_and_halo_is_faster() {
    let scenario = Scenario::ManyFlows {
        flows: 3_000,
        rules: 5,
    };
    let mut totals = Vec::new();
    for backend in [
        LookupBackend::Software,
        LookupBackend::HaloBlocking,
        LookupBackend::HaloNonBlocking,
    ] {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
        let mut cfg = SwitchConfig::typical(5, backend);
        cfg.megaflow_capacity = 1024;
        let mut vs = VirtualSwitch::new(&mut sys, CoreId(0), cfg);
        let gen = TrafficGen::new(scenario, 5);
        for (id, pkt) in gen.all_flows().enumerate() {
            vs.install_flow(&mut sys, &pkt.miniflow(), id % 5, 0, id as u64)
                .unwrap();
        }
        vs.warm_tables(&mut sys);
        let mut gen = TrafficGen::new(scenario, 77);
        let mut t = Cycle(0);
        for _ in 0..300 {
            let pkt = gen.next_packet();
            let expect = vs.classify_functional(&mut sys, &pkt).map(|m| m.action);
            let e = match backend {
                LookupBackend::Software => None,
                _ => Some(&mut engine),
            };
            let (action, done) = vs.process_packet(&mut sys, e, &pkt, t);
            // The EMC may answer before MegaFlow; either way the action
            // must match the rule table's functional answer.
            assert_eq!(action, expect, "backend {backend:?}");
            t = done;
        }
        assert_eq!(vs.counters().misses, 0);
        totals.push((backend, vs.cycles_per_packet()));
    }
    let sw = totals[0].1;
    let nb = totals[2].1;
    assert!(
        nb < sw,
        "HALO-NB ({nb:.0} cy/pkt) must beat software ({sw:.0} cy/pkt)"
    );
}

/// The hybrid classifier must never return a wrong value regardless of
/// the mode it is in, across a traffic pattern that forces switches.
#[test]
fn hybrid_mode_switches_preserve_correctness() {
    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
    let mut table = CuckooTable::with_capacity_for(sys.data_mut(), 2_048, 0.8, 13);
    for id in 0..2_048u64 {
        table
            .insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id + 7)
            .unwrap();
    }
    for a in table.all_lines().collect::<Vec<_>>() {
        sys.warm_llc(a);
    }
    let mut hybrid = HybridClassifier::new(&mut sys, CoreId(0), HybridConfig::default());
    let mut rng = SplitMix64::new(3);
    let mut t = Cycle(0);
    for phase in 0..4 {
        let universe = if phase % 2 == 0 { 6 } else { 2_048 };
        for _ in 0..400 {
            let id = rng.below(universe);
            let (v, done) = hybrid.lookup(
                &mut sys,
                &mut engine,
                &table,
                &FlowKey::synthetic(id, 13),
                t,
            );
            assert_eq!(v, Some(id + 7));
            t = done;
        }
    }
    assert!(
        hybrid.switches() >= 2,
        "traffic phases should force switches"
    );
}

/// Tuple-space search agrees with the linear-scan oracle when driven
/// through the vswitch's rule tables, end to end.
#[test]
fn tss_classification_matches_linear_oracle() {
    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut tss = TupleSpace::new(
        sys.data_mut(),
        distinct_masks(12),
        512,
        SearchMode::HighestPriority,
    );
    let mut rng = SplitMix64::new(8);
    for i in 0..600u64 {
        let pkt = PacketHeader::synthetic(rng.below(10_000));
        let tuple = (rng.below(12)) as usize;
        let prio = (rng.below(16)) as u16;
        let _ = tss.insert_rule(sys.data_mut(), tuple, &pkt.miniflow(), prio, i);
    }
    for id in 0..2_000u64 {
        let key = PacketHeader::synthetic(id).miniflow();
        assert_eq!(
            tss.classify(sys.data_mut(), &key),
            tss.classify_linear(sys.data_mut(), &key),
            "divergence for flow {id}"
        );
    }
}

/// Concurrent updates (cuckoo moves) must never make lookups fail —
/// with HALO's hardware locking the reader sees a consistent table.
#[test]
fn lookups_survive_concurrent_cuckoo_moves() {
    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut table = CuckooTable::with_capacity_for(sys.data_mut(), 2_000, 0.7, 13);
    for id in 0..2_000u64 {
        table
            .insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id)
            .unwrap();
    }
    for a in table.all_lines().collect::<Vec<_>>() {
        sys.warm_llc(a);
    }
    let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
    let mut rng = SplitMix64::new(13);
    let mut t = Cycle(0);
    for i in 0..600u64 {
        if i % 5 == 0 {
            let victim = FlowKey::synthetic(rng.below(2_000), 13);
            table.cuckoo_move(sys.data_mut(), &victim);
        }
        let id = rng.below(2_000);
        let (v, done) = engine.lookup_b(
            &mut sys,
            CoreId((i % 4) as usize),
            &table,
            &FlowKey::synthetic(id, 13),
            None,
            t,
        );
        assert_eq!(v, Some(id), "lost key {id} after moves");
        t = done;
    }
}

/// A hash-table NF keeps its functional behaviour whichever engine runs
/// its lookups, and its HALO runs are faster at every Table 3 size.
#[test]
fn hash_nfs_speed_up_without_breaking() {
    for kind in [HashNfKind::Nat, HashNfKind::PacketFilter] {
        let entries = kind.table3_sizes()[0];
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut nf = HashNf::new(&mut sys, CoreId(0), kind, entries, 99);
        nf.warm(&mut sys);
        let sw = nf.run_software(&mut sys, 64);

        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
        let mut nf = HashNf::new(&mut sys, CoreId(0), kind, entries, 99);
        nf.warm(&mut sys);
        let hw = nf.run_halo(&mut sys, &mut engine, 64);

        assert!(hw.cycles_per_packet < sw.cycles_per_packet, "{:?}", kind);
    }
}

/// Determinism: the same seed produces bit-identical experiment results.
#[test]
fn experiments_are_deterministic() {
    let run_once = || {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut table = CuckooTable::with_capacity_for(sys.data_mut(), 1_000, 0.8, 13);
        for id in 0..1_000u64 {
            table
                .insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id)
                .unwrap();
        }
        for a in table.all_lines().collect::<Vec<_>>() {
            sys.warm_llc(a);
        }
        let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
        let mut rng = SplitMix64::new(2024);
        let mut t = Cycle(0);
        for _ in 0..200 {
            let key = FlowKey::synthetic(rng.below(1_000), 13);
            let (_, done) = engine.lookup_b(&mut sys, CoreId(0), &table, &key, None, t);
            t = done;
        }
        t
    };
    assert_eq!(run_once(), run_once());
}

/// Regression for the hybrid-saturation bug: a 16-bit flow register
/// caps its linear-counting estimate at 16·ln 16 ≈ 44.4, *below* the
/// 64-flow threshold, so before the saturation check a DDoS-like flood
/// of never-repeating flows kept the controller pinned on the (losing)
/// software path. A sustained flood from the streaming engine must
/// drive the controller to HALO mode after the first window and keep
/// it there — software lookups bounded by that first window.
#[test]
fn ddos_flood_pins_the_hybrid_controller_on_halo() {
    use halo_nfv::accel::{HybridClassifier, HybridConfig, Mode};
    use halo_nfv::datapath::TrafficEvent;
    use halo_nfv::nf::{StreamConfig, StreamingTrafficGen};

    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
    let mut table = CuckooTable::create(sys.data_mut(), 1 << 9, 13);
    let installed = 1_000u64;
    for id in 0..installed {
        table
            .insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id)
            .unwrap();
    }
    let cfg = HybridConfig {
        flow_threshold: 64.0,
        window: 256,
        register_bits: 16, // saturates far below the threshold
    };
    let mut hybrid = HybridClassifier::new(&mut sys, CoreId(0), cfg);
    assert_eq!(hybrid.mode(), Mode::Software, "starts conservative");

    let mut gen = StreamingTrafficGen::new(StreamConfig::ddos_flood(installed as usize), 0xD0);
    let mut t = Cycle(0);
    let mut lookups = 0u64;
    while lookups < 2_048 {
        if let TrafficEvent::Packet(f) = gen.next_event() {
            let key = FlowKey::synthetic(f, 13);
            let (v, done) = hybrid.lookup(&mut sys, &mut engine, &table, &key, t);
            assert_eq!(v, None, "flood flows are never installed");
            t = done;
            lookups += 1;
            if lookups > cfg.window {
                assert_eq!(
                    hybrid.mode(),
                    Mode::Halo,
                    "flood must pin HALO after the first window (lookup {lookups})"
                );
            }
        }
    }
    assert!(gen.floods() >= 2_048, "every packet was a flood flow");
    let (sw, hw) = hybrid.split();
    assert!(
        sw <= cfg.window,
        "software lookups must be bounded by the first window: {sw}"
    );
    assert_eq!(sw + hw, 2_048);
    assert_eq!(hybrid.switches(), 1, "one switch, never back");
}
