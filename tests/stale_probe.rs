use halo_nfv::classify::{FieldRange, PacketHeader, RangeRule, SearchMode, FIELDS, MINIFLOW_LEN};
use halo_nfv::datapath::{TableBackend, WildcardBackend, WildcardTable};
use halo_nfv::mem::SimMemory;
use halo_nfv::tables::FlowKey;

fn rule(lo: u64, hi: u64, priority: u16, action: u64) -> RangeRule {
    let mut r = RangeRule::exact_flow(&PacketHeader::synthetic(1).miniflow(), priority, action);
    r.ranges[3] = FieldRange::span(lo, hi);
    r
}

#[test]
fn stale_covering_winner_after_removal() {
    for backend in WildcardBackend::all() {
        let mut mem = SimMemory::new();
        let mut w = backend.build(
            &mut mem,
            TableBackend::Cuckoo,
            &[],
            4096,
            SearchMode::HighestPriority,
        );
        let n = rule(1024, 2047, 9, 900);
        let wd = rule(1000, 1999, 2, 200);
        w.insert_range(&mut mem, &n).unwrap();
        w.insert_range(&mut mem, &wd).unwrap();
        assert_eq!(w.remove_range(&mut mem, &n), Some((9, 900)));
        let mut bytes = [0u8; MINIFLOW_LEN];
        bytes.copy_from_slice(wd.point_key().as_bytes());
        FIELDS[3].write(&mut bytes, 1_200);
        let key = FlowKey::from_bytes(&bytes);
        let m = w.classify(&mem, &key).expect("W still matches");
        assert_eq!(
            (m.priority, m.action),
            (2, 200),
            "{}: stale covering-winner entry",
            backend.name()
        );
    }
}
