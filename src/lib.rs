//! # halo-nfv
//!
//! A Rust reproduction of **HALO: Accelerating Flow Classification for
//! Scalable Packet Processing in NFV** (Yuan, Wang, Wang, Huang —
//! ISCA 2019).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`sim`] — deterministic simulation substrate (cycles, resources,
//!   RNG, stats).
//! * [`mem`] — the simulated memory hierarchy: NUCA LLC slices, CHA
//!   directory with HALO lock bits, interconnect, DRAM.
//! * [`cpu`] — the out-of-order core timing model and the Table-1
//!   software-lookup program builder.
//! * [`tables`] — DPDK-style cuckoo hash and single-function-hash flow
//!   tables over simulated memory.
//! * [`accel`] — **the paper's contribution**: per-CHA near-cache
//!   accelerators, the query distributor, the `LOOKUP_B` / `LOOKUP_NB` /
//!   `SNAPSHOT_READ` instruction primitives, the linear-counting flow
//!   register, and the hybrid HW/SW mode.
//! * [`tcam`] — TCAM and SRAM-TCAM baselines.
//! * [`classify`] — EMC, MegaFlow and OpenFlow tuple space search, and
//!   the §4.8 tree-index extension.
//! * [`datapath`] — the unified classification datapath: the
//!   [`LookupBackend`](datapath::LookupBackend) dispatch modes, the
//!   per-core [`LookupExecutor`](datapath::LookupExecutor), and the
//!   EMC → MegaFlow [`DatapathCore`](datapath::DatapathCore) stage every
//!   frontend drives.
//! * [`kvstore`] — a MemC3-style key-value store over the accelerated
//!   cuckoo index (§4.8).
//! * [`vswitch`] — the OVS-like layered datapath with per-packet cycle
//!   accounting.
//! * [`nf`] — network-function workload models and the IXIA-like
//!   traffic generator.
//! * [`power`] — analytical power/area models (Table 4).
//! * [`check`] — correctness tooling: the differential oracle with
//!   automatic trace shrinking, the cache/table invariant auditor, and
//!   the fault-injection harness (see DESIGN.md §8).
//!
//! # Quickstart
//!
//! ```
//! use halo_nfv::accel::{AcceleratorConfig, HaloEngine};
//! use halo_nfv::mem::{CoreId, MachineConfig, MemorySystem};
//! use halo_nfv::sim::Cycle;
//! use halo_nfv::tables::{CuckooTable, FlowKey};
//!
//! // Build a simulated 16-core server and a flow table in its memory.
//! let mut sys = MemorySystem::new(MachineConfig::default());
//! let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
//! let mut table = CuckooTable::create(sys.data_mut(), 1024, 13);
//! table.insert(sys.data_mut(), &FlowKey::synthetic(1, 13), 42).unwrap();
//!
//! // Issue a blocking near-cache lookup from core 0.
//! let (value, done) = engine.lookup_b(
//!     &mut sys, CoreId(0), &table, &FlowKey::synthetic(1, 13), None, Cycle(0));
//! assert_eq!(value, Some(42));
//! assert!(done > Cycle(0));
//! ```

#![warn(missing_docs)]

pub use halo_accel as accel;
pub use halo_check as check;
pub use halo_classify as classify;
pub use halo_cpu as cpu;
pub use halo_datapath as datapath;
pub use halo_kvstore as kvstore;
pub use halo_mem as mem;
pub use halo_nf as nf;
pub use halo_power as power;
pub use halo_sim as sim;
pub use halo_tables as tables;
pub use halo_tcam as tcam;
pub use halo_vswitch as vswitch;
