//! # halo-kvstore
//!
//! A MemC3-style in-memory key-value store over the HALO-accelerated
//! cuckoo index — the paper's §4.8 application beyond virtual switches:
//! "MemC3 applied exactly the same cuckoo hash table described in this
//! paper to memcached to achieve higher throughput. We believe HALO can
//! be easily integrated into the aforementioned applications."
//!
//! The store keeps a cuckoo *index* from 16-byte key digests to value
//! handles, and a log-structured *value heap* holding
//! `(key, value)` records in simulated memory. `GET` is one index
//! lookup (software or `LOOKUP_B`) plus the record read on the core;
//! `SET` appends a record and updates the index.
//!
//! # Examples
//!
//! ```
//! use halo_kvstore::KvStore;
//! use halo_mem::{MachineConfig, MemorySystem};
//!
//! let mut sys = MemorySystem::new(MachineConfig::small());
//! let mut kv = KvStore::new(&mut sys, 1024);
//! kv.set(&mut sys, b"user:42", b"alice").unwrap();
//! assert_eq!(kv.get(&mut sys, b"user:42"), Some(b"alice".to_vec()));
//! assert_eq!(kv.get(&mut sys, b"user:43"), None);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use halo_accel::HaloEngine;
use halo_cpu::Program;
use halo_datapath::{LookupBackend, LookupExecutor};
use halo_mem::{Addr, CoreId, MemorySystem, SimMemory, CACHE_LINE};
use halo_sim::Cycle;
use halo_tables::{hash_key, CuckooTable, FlowKey, TableFullError};
use std::fmt;

/// Width of the index key: a 16-byte digest of the full key.
const DIGEST_LEN: usize = 16;

/// Maximum key length accepted by the store.
pub const MAX_KEY: usize = 250; // memcached's limit

/// Maximum value length accepted by the store.
pub const MAX_VALUE: usize = 64 * 1024;

/// Errors returned by store mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// The cuckoo index found no room for the new key.
    IndexFull,
    /// Key or value exceeds the supported size.
    TooLarge,
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::IndexFull => write!(f, "key-value index full"),
            KvError::TooLarge => write!(f, "key or value too large"),
        }
    }
}

impl std::error::Error for KvError {}

impl From<TableFullError> for KvError {
    fn from(_: TableFullError) -> Self {
        KvError::IndexFull
    }
}

/// Timing report of a batch of timed operations.
#[derive(Debug, Clone, Copy)]
pub struct KvReport {
    /// Operations performed.
    pub ops: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Average cycles per operation.
    pub cycles_per_op: f64,
}

/// The key-value store.
#[derive(Debug)]
pub struct KvStore {
    index: CuckooTable,
    items: usize,
}

fn digest(key: &[u8]) -> FlowKey {
    let mut probe = [0u8; DIGEST_LEN];
    let head: &[u8] = if key.is_empty() {
        &[0]
    } else {
        &key[..key.len().min(64)]
    };
    let k = FlowKey::from_bytes(head);
    // Two independent 64-bit hashes make a 128-bit digest; for keys
    // longer than 64 bytes, fold the tail in.
    let mut h1 = hash_key(&k, 0xD1CE_5EED);
    let mut h2 = hash_key(&k, 0x0B5E_55ED);
    for chunk in key[key.len().min(64)..].chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        let v = u64::from_le_bytes(b);
        h1 = h1.rotate_left(31) ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h2 = h2.rotate_left(17) ^ v.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    }
    probe[..8].copy_from_slice(&h1.to_le_bytes());
    probe[8..].copy_from_slice(&h2.to_le_bytes());
    FlowKey::from_bytes(&probe)
}

/// Value-heap record layout: `key_len u16 | val_len u32 | key | value`.
fn record_size(key: &[u8], value: &[u8]) -> u64 {
    (6 + key.len() + value.len()) as u64
}

fn write_record(mem: &mut SimMemory, key: &[u8], value: &[u8]) -> Addr {
    let a = mem.alloc(record_size(key, value), 8);
    mem.write_u16(a, key.len() as u16);
    mem.write_u32(a + 2, value.len() as u32);
    mem.write_bytes(a + 6, key);
    mem.write_bytes(a + 6 + key.len() as u64, value);
    a
}

fn read_record(mem: &mut SimMemory, a: Addr) -> (Vec<u8>, Vec<u8>) {
    let klen = mem.read_u16(a) as usize;
    let vlen = mem.read_u32(a + 2) as usize;
    let mut key = vec![0u8; klen];
    mem.read_bytes(a + 6, &mut key);
    let mut val = vec![0u8; vlen];
    mem.read_bytes(a + 6 + klen as u64, &mut val);
    (key, val)
}

impl KvStore {
    /// Creates a store sized for about `capacity` items.
    pub fn new(sys: &mut MemorySystem, capacity: usize) -> Self {
        let index = CuckooTable::with_capacity_for(sys.data_mut(), capacity, 0.85, DIGEST_LEN);
        KvStore { index, items: 0 }
    }

    /// Number of stored items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// The underlying cuckoo index (e.g. for warming its lines).
    #[must_use]
    pub fn index(&self) -> &CuckooTable {
        &self.index
    }

    /// Stores `key -> value` (overwriting any previous value).
    ///
    /// # Errors
    ///
    /// [`KvError::TooLarge`] for oversized inputs, [`KvError::IndexFull`]
    /// when the cuckoo index has no room.
    pub fn set(&mut self, sys: &mut MemorySystem, key: &[u8], value: &[u8]) -> Result<(), KvError> {
        if key.is_empty() || key.len() > MAX_KEY || value.len() > MAX_VALUE {
            return Err(KvError::TooLarge);
        }
        let d = digest(key);
        let existed = self.index.lookup(sys.data_mut(), &d).is_some();
        // Log-structured heap: always append a fresh record (stale
        // records are garbage, reclaimed by compaction in a real store).
        let rec = write_record(sys.data_mut(), key, value);
        self.index.insert(sys.data_mut(), &d, rec.0)?;
        if !existed {
            self.items += 1;
        }
        Ok(())
    }

    /// Fetches `key`'s value (functional).
    #[must_use]
    pub fn get(&self, sys: &mut MemorySystem, key: &[u8]) -> Option<Vec<u8>> {
        let d = digest(key);
        let handle = self.index.lookup(sys.data_mut(), &d)?;
        let (k, v) = read_record(sys.data_mut(), Addr(handle));
        // Digest collision guard: verify the full key.
        (k == key).then_some(v)
    }

    /// Deletes `key`; returns whether it existed.
    pub fn delete(&mut self, sys: &mut MemorySystem, key: &[u8]) -> bool {
        let d = digest(key);
        if self.index.remove(sys.data_mut(), &d).is_some() {
            self.items -= 1;
            true
        } else {
            false
        }
    }

    /// Pre-loads the index and warms nothing else (records stream).
    pub fn warm_index(&self, sys: &mut MemorySystem) {
        for a in self.index.all_lines().collect::<Vec<_>>() {
            sys.warm_llc(a);
        }
    }

    /// Builds the core-side program that reads a value record of
    /// `value_len` bytes at `rec` (dependent line loads).
    fn record_read_program(rec: Addr, key_len: usize, value_len: usize) -> Program {
        let mut p = Program::new();
        let lines = (6 + key_len + value_len).div_ceil(CACHE_LINE as usize);
        let mut dep = None;
        for i in 0..lines {
            let deps: Vec<u32> = dep.into_iter().collect();
            let id = p.load(rec + (i as u64) * CACHE_LINE, &deps);
            if i == 0 {
                dep = Some(id); // header load gates the rest
            }
        }
        // memcpy-ish per-line work + key verification.
        for _ in 0..(lines * 4 + 8) {
            p.compute(1, &[]);
        }
        p
    }

    /// Timed GET with a software index lookup on `exec`'s core. Returns
    /// the value and the completion cycle.
    pub fn get_timed_sw(
        &self,
        sys: &mut MemorySystem,
        exec: &mut LookupExecutor,
        key: &[u8],
        at: Cycle,
    ) -> (Option<Vec<u8>>, Cycle) {
        let d = digest(key);
        let tr = self.index.lookup_traced(sys.data_mut(), &d, true);
        let mut t = exec.run_sw(sys, &tr, None, at);
        let value = match tr.result {
            Some(handle) => {
                let (k, v) = read_record(sys.data_mut(), Addr(handle));
                let read = Self::record_read_program(Addr(handle), k.len(), v.len());
                t = exec.run(&read, sys, t).finish;
                (k == key).then_some(v)
            }
            None => None,
        };
        (value, t)
    }

    /// Timed GET with a HALO `LOOKUP_B` index lookup; the value record is
    /// still read by the core through the returned handle.
    pub fn get_timed_halo(
        &self,
        sys: &mut MemorySystem,
        engine: &mut HaloEngine,
        exec: &mut LookupExecutor,
        key: &[u8],
        at: Cycle,
    ) -> (Option<Vec<u8>>, Cycle) {
        let d = digest(key);
        let (handle, mut t) = engine.lookup_b(sys, exec.core_id(), &self.index, &d, None, at);
        let value = match handle {
            Some(handle) => {
                let (k, v) = read_record(sys.data_mut(), Addr(handle));
                let read = Self::record_read_program(Addr(handle), k.len(), v.len());
                t = exec.run(&read, sys, t).finish;
                (k == key).then_some(v)
            }
            None => None,
        };
        (value, t)
    }

    /// Runs `n` timed GETs over keys produced by `keygen`, returning the
    /// report. `engine` selects the HALO path; `None` is software.
    pub fn bench_gets<F: FnMut(u64) -> Vec<u8>>(
        &self,
        sys: &mut MemorySystem,
        mut engine: Option<&mut HaloEngine>,
        core_id: CoreId,
        mut keygen: F,
        n: u64,
    ) -> KvReport {
        let mut exec = LookupExecutor::new(sys, core_id, LookupBackend::Software);
        exec.warm_scratch(sys);
        let mut t = Cycle(0);
        let start = t;
        for i in 0..n {
            let key = keygen(i);
            let (v, done) = match engine.as_deref_mut() {
                Some(e) => self.get_timed_halo(sys, e, &mut exec, &key, t),
                None => self.get_timed_sw(sys, &mut exec, &key, t),
            };
            debug_assert!(v.is_some(), "bench keys must exist");
            t = done;
        }
        let cycles = (t - start).0;
        KvReport {
            ops: n,
            cycles,
            cycles_per_op: cycles as f64 / n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_accel::AcceleratorConfig;
    use halo_mem::MachineConfig;

    fn setup() -> (MemorySystem, KvStore) {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let kv = KvStore::new(&mut sys, 4096);
        (sys, kv)
    }

    #[test]
    fn set_get_delete_roundtrip() {
        let (mut sys, mut kv) = setup();
        kv.set(&mut sys, b"alpha", b"1").unwrap();
        kv.set(&mut sys, b"beta", b"two").unwrap();
        assert_eq!(kv.get(&mut sys, b"alpha"), Some(b"1".to_vec()));
        assert_eq!(kv.get(&mut sys, b"beta"), Some(b"two".to_vec()));
        assert_eq!(kv.len(), 2);
        assert!(kv.delete(&mut sys, b"alpha"));
        assert!(!kv.delete(&mut sys, b"alpha"));
        assert_eq!(kv.get(&mut sys, b"alpha"), None);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn overwrite_updates_value() {
        let (mut sys, mut kv) = setup();
        kv.set(&mut sys, b"k", b"old").unwrap();
        kv.set(&mut sys, b"k", b"new-and-longer").unwrap();
        assert_eq!(kv.get(&mut sys, b"k"), Some(b"new-and-longer".to_vec()));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn large_values_span_lines() {
        let (mut sys, mut kv) = setup();
        let big = vec![0xAB; 4096];
        kv.set(&mut sys, b"big", &big).unwrap();
        assert_eq!(kv.get(&mut sys, b"big"), Some(big));
    }

    #[test]
    fn long_keys_supported() {
        let (mut sys, mut kv) = setup();
        let key = vec![7u8; 200];
        kv.set(&mut sys, &key, b"deep").unwrap();
        assert_eq!(kv.get(&mut sys, &key), Some(b"deep".to_vec()));
        // Similar but different long key misses.
        let mut other = key.clone();
        other[199] = 8;
        assert_eq!(kv.get(&mut sys, &other), None);
    }

    #[test]
    fn size_limits_enforced() {
        let (mut sys, mut kv) = setup();
        assert_eq!(
            kv.set(&mut sys, &vec![0u8; MAX_KEY + 1], b"v"),
            Err(KvError::TooLarge)
        );
        assert_eq!(
            kv.set(&mut sys, b"k", &vec![0u8; MAX_VALUE + 1]),
            Err(KvError::TooLarge)
        );
        assert_eq!(kv.set(&mut sys, b"", b"v"), Err(KvError::TooLarge));
    }

    #[test]
    fn halo_gets_match_software_and_are_faster() {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut kv = KvStore::new(&mut sys, 20_000);
        for i in 0..10_000u64 {
            kv.set(
                &mut sys,
                format!("key-{i}").as_bytes(),
                format!("value-{i}").as_bytes(),
            )
            .unwrap();
        }
        kv.warm_index(&mut sys);
        let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
        let sw = kv.bench_gets(
            &mut sys,
            None,
            CoreId(0),
            |i| format!("key-{}", i % 10_000).into_bytes(),
            100,
        );
        let hw = kv.bench_gets(
            &mut sys,
            Some(&mut engine),
            CoreId(1),
            |i| format!("key-{}", i % 10_000).into_bytes(),
            100,
        );
        assert!(
            hw.cycles_per_op < sw.cycles_per_op,
            "halo {} must beat software {}",
            hw.cycles_per_op,
            sw.cycles_per_op
        );
    }

    #[test]
    fn functional_get_consistency_with_timed_paths() {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let mut kv = KvStore::new(&mut sys, 512);
        for i in 0..200u64 {
            kv.set(&mut sys, format!("k{i}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
        let mut exec = LookupExecutor::new(&mut sys, CoreId(0), LookupBackend::Software);
        for i in (0..200u64).step_by(17) {
            let key = format!("k{i}");
            let expect = kv.get(&mut sys, key.as_bytes());
            let (sw, _) = kv.get_timed_sw(&mut sys, &mut exec, key.as_bytes(), Cycle(0));
            let (hw, _) =
                kv.get_timed_halo(&mut sys, &mut engine, &mut exec, key.as_bytes(), Cycle(0));
            assert_eq!(sw, expect);
            assert_eq!(hw, expect);
        }
    }
}
