//! The HALO engine: all per-CHA accelerators plus the query distributor
//! in the on-chip interconnect, exposed through the three instruction
//! primitives of §4.5 (`LOOKUP_B`, `LOOKUP_NB`, `SNAPSHOT_READ`).

use crate::accel::{AcceleratorConfig, HaloAccelerator, QueryOutcome};
use crate::flowreg::FlowRegister;
use halo_mem::{Addr, CoreId, MemorySystem, SliceId};
use halo_sim::{Cycle, Cycles, StatId, Stats};
use halo_tables::{hash_key, LookupTrace, SEED_PRIMARY};

/// How the query distributor picks an accelerator (§4.3 "query
/// dispatch"). The paper hashes the table address; the alternatives are
/// ablation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Hash the table (metadata) address — the paper's design: queries
    /// against different tables spread across accelerators.
    TableHash,
    /// Round-robin across accelerators regardless of table.
    RoundRobin,
    /// Hash the *key* so even single-table workloads spread.
    KeyHash,
}

/// Sentinel value stored to a non-blocking destination on a lookup miss
/// (distinct from 0, which means "pending").
pub const NB_MISS: u64 = u64::MAX;

/// Pipeline cost of issuing a blocking `LOOKUP_B` (decode + LSQ entry +
/// ring injection; the instruction serializes like an uncached load).
const ISSUE_OVERHEAD: Cycles = Cycles(8);

/// Cost of delivering a blocking result back into the core's register
/// file and waking the dependent instructions.
const RETURN_OVERHEAD: Cycles = Cycles(2);

/// Static per-slice op names so dispatch spans intern without
/// allocating (trace op names must be `&'static str`).
const SLICE_OPS: [&str; 16] = [
    "slice0", "slice1", "slice2", "slice3", "slice4", "slice5", "slice6", "slice7", "slice8",
    "slice9", "slice10", "slice11", "slice12", "slice13", "slice14", "slice15",
];

/// Trace op name for `slice` (slices past the static table collapse
/// into one overflow class; no modeled machine has that many).
#[inline]
fn slice_op(slice: usize) -> &'static str {
    SLICE_OPS.get(slice).copied().unwrap_or("slice_other")
}

/// A pending non-blocking lookup: where the result will appear and when.
#[derive(Debug, Clone, Copy)]
pub struct NbHandle {
    /// Destination address the accelerator will write.
    pub dest: Addr,
    /// When the issuing core's pipeline is free again (a store-like
    /// instruction: immediately after issue).
    pub issued: Cycle,
    /// When the result lands at `dest`.
    pub result_at: Cycle,
    /// The functional result (also encoded into `dest`'s memory).
    pub result: Option<u64>,
}

/// The full HALO engine: one accelerator per LLC slice plus the query
/// distributor.
///
/// # Examples
///
/// ```
/// use halo_accel::{AcceleratorConfig, DispatchPolicy, HaloEngine};
/// use halo_mem::{CoreId, MachineConfig, MemorySystem};
/// use halo_sim::Cycle;
/// use halo_tables::{CuckooTable, FlowKey};
///
/// let mut sys = MemorySystem::new(MachineConfig::small());
/// let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
/// let mut table = CuckooTable::create(sys.data_mut(), 64, 13);
/// let key = FlowKey::synthetic(3, 13);
/// table.insert(sys.data_mut(), &key, 30).unwrap();
///
/// let (value, done) = engine.lookup_b(&mut sys, CoreId(0), &table, &key, None, Cycle(0));
/// assert_eq!(value, Some(30));
/// assert!(done > Cycle(0));
/// ```
#[derive(Debug)]
pub struct HaloEngine {
    accels: Vec<HaloAccelerator>,
    flowregs: Vec<FlowRegister>,
    policy: DispatchPolicy,
    rr_next: usize,
    hop_latency: Cycles,
    stats: Stats,
    ids: EngineStatIds,
}

/// Pre-registered [`StatId`] handles for the engine's counters. The
/// per-slice dispatch counters live in a dense vector indexed by slice,
/// so the dispatch hot path neither formats a key string nor walks the
/// name registry.
#[derive(Debug)]
struct EngineStatIds {
    queries: StatId,
    snapshot_read: StatId,
    dispatch_slice: Vec<StatId>,
}

impl EngineStatIds {
    fn register(stats: &mut Stats, slices: usize) -> Self {
        EngineStatIds {
            queries: stats.counter_id("engine.queries"),
            snapshot_read: stats.counter_id("engine.snapshot_read"),
            dispatch_slice: (0..slices)
                .map(|s| stats.counter_id(&format!("engine.dispatch.slice{s}")))
                .collect(),
        }
    }
}

impl HaloEngine {
    /// Builds one accelerator per LLC slice of `sys`.
    #[must_use]
    pub fn new(sys: &MemorySystem, cfg: AcceleratorConfig) -> Self {
        let slices = sys.config().slices;
        let mut stats = Stats::new();
        let ids = EngineStatIds::register(&mut stats, slices);
        HaloEngine {
            accels: (0..slices)
                .map(|i| HaloAccelerator::new(SliceId(i), cfg.clone()))
                .collect(),
            flowregs: (0..slices).map(|_| FlowRegister::new(32)).collect(),
            policy: DispatchPolicy::TableHash,
            rr_next: 0,
            hop_latency: sys.config().hop_latency,
            stats,
            ids,
        }
    }

    /// Overrides the dispatch policy (ablation).
    pub fn set_policy(&mut self, policy: DispatchPolicy) {
        self.policy = policy;
    }

    /// The dispatch policy in effect.
    #[must_use]
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Engine statistics (queries, dispatch counts, per-level behaviour).
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The accelerators (read-only; for reporting).
    #[must_use]
    pub fn accelerators(&self) -> &[HaloAccelerator] {
        &self.accels
    }

    /// Total queries across accelerators.
    #[must_use]
    pub fn total_queries(&self) -> u64 {
        self.accels.iter().map(HaloAccelerator::queries).sum()
    }

    /// Sum of per-accelerator active-flow estimates for the current
    /// window.
    #[must_use]
    pub fn active_flow_estimate(&self) -> f64 {
        self.flowregs.iter().map(FlowRegister::estimate).sum()
    }

    /// Ends the flow-register window on every accelerator and returns
    /// the summed estimate.
    pub fn end_flow_window(&mut self) -> f64 {
        self.flowregs
            .iter_mut()
            .map(FlowRegister::estimate_and_reset)
            .sum()
    }

    fn pick(&mut self, table_addr: Addr, key_hash: u64) -> usize {
        let n = self.accels.len();
        match self.policy {
            DispatchPolicy::TableHash => {
                // Multiplicative mixing: table base addresses are
                // large, regularly spaced values, so a plain XOR-fold
                // would alias many tables onto one slice.
                let h = (table_addr.0 >> 6).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 48) as usize) % n
            }
            DispatchPolicy::RoundRobin => {
                let s = self.rr_next;
                self.rr_next = (self.rr_next + 1) % n;
                s
            }
            DispatchPolicy::KeyHash => (key_hash as usize) % n,
        }
    }

    fn dispatch_wire(&self, sys: &MemorySystem, core: CoreId, slice: usize) -> Cycles {
        Cycles(sys.hops(core, SliceId(slice)) * self.hop_latency.0)
    }

    /// Dispatches a prepared trace to the chosen accelerator; shared by
    /// the two lookup instructions and the tuple-space-search drivers.
    #[allow(clippy::too_many_arguments)] // mirrors the instruction operand list
    pub fn dispatch(
        &mut self,
        sys: &mut MemorySystem,
        core: CoreId,
        table_addr: Addr,
        trace: &LookupTrace,
        key_hash: u64,
        key_addr: Option<Addr>,
        dest: Option<Addr>,
        at: Cycle,
    ) -> QueryOutcome {
        let slice = self.pick(table_addr, key_hash);
        self.dispatch_for_slice(sys, core, slice, trace, key_hash, key_addr, dest, at)
    }

    /// Dispatches a dependent chain of blocking queries: each query
    /// issues `gap` cycles after the previous query's completion (the
    /// first at `at`). Returns the cycle `gap` past the last completion
    /// (`at` when `queries` is empty) — exactly the scalar
    /// [`dispatch`](Self::dispatch) loop, with the per-query dispatch
    /// overhead paid once per burst. This is the `LOOKUP_B` tuple-walk
    /// path of the vswitch MegaFlow search.
    pub fn dispatch_burst<'a>(
        &mut self,
        sys: &mut MemorySystem,
        core: CoreId,
        queries: impl IntoIterator<Item = (Addr, &'a LookupTrace, u64)>,
        gap: Cycles,
        at: Cycle,
    ) -> Cycle {
        let mut t = at;
        for (table_addr, trace, key_hash) in queries {
            let out = self.dispatch(sys, core, table_addr, trace, key_hash, None, None, t);
            t = out.complete + gap;
        }
        t
    }

    /// `LOOKUP_B`: blocking lookup. The core stalls until the result
    /// returns over the interconnect (load-like semantics). Returns the
    /// value and the cycle the core resumes.
    ///
    /// # Panics
    ///
    /// Panics if `table` does not live in simulated memory (its
    /// [`FlowTable::meta_addr`](halo_tables::FlowTable::meta_addr) is
    /// `None`) — there is no metadata line to dispatch against.
    pub fn lookup_b(
        &mut self,
        sys: &mut MemorySystem,
        core: CoreId,
        table: &dyn halo_tables::FlowTable,
        key: &halo_tables::FlowKey,
        key_addr: Option<Addr>,
        at: Cycle,
    ) -> (Option<u64>, Cycle) {
        let trace = table.lookup_traced(sys.data_mut(), key, false);
        let key_hash = hash_key(key, SEED_PRIMARY);
        let table_addr = table
            .meta_addr()
            .expect("HALO dispatch needs an in-memory table");
        let slice = self.pick(table_addr, key_hash);
        // A blocking lookup behaves like an uncacheable load: the core
        // pays a fixed issue/serialization cost before the query enters
        // the ring, and a writeback/wakeup cost when the result returns.
        let issued = at + ISSUE_OVERHEAD;
        let out =
            self.dispatch_for_slice(sys, core, slice, &trace, key_hash, key_addr, None, issued);
        // Result rides the ring back to the core.
        let back = self.dispatch_wire(sys, core, slice);
        let resume = out.complete + back + RETURN_OVERHEAD;
        if sys.trace_enabled() {
            sys.trace_span("engine", "LOOKUP_B", at, resume);
        }
        (out.result, resume)
    }

    /// `LOOKUP_NB`: non-blocking lookup. The core continues immediately
    /// (store-like semantics); the accelerator writes the result into
    /// `dest` when done (`value + 1`, or [`NB_MISS`] on miss; `0` while
    /// pending).
    ///
    /// # Panics
    ///
    /// Panics if `table` does not live in simulated memory (no metadata
    /// line to dispatch against).
    #[allow(clippy::too_many_arguments)] // mirrors the instruction operand list
    pub fn lookup_nb(
        &mut self,
        sys: &mut MemorySystem,
        core: CoreId,
        table: &dyn halo_tables::FlowTable,
        key: &halo_tables::FlowKey,
        key_addr: Option<Addr>,
        dest: Addr,
        at: Cycle,
    ) -> NbHandle {
        let trace = table.lookup_traced(sys.data_mut(), key, false);
        let key_hash = hash_key(key, SEED_PRIMARY);
        let table_addr = table
            .meta_addr()
            .expect("HALO dispatch needs an in-memory table");
        let slice = self.pick(table_addr, key_hash);
        sys.data_mut().write_u64(dest, 0); // pending marker
        let out =
            self.dispatch_for_slice(sys, core, slice, &trace, key_hash, key_addr, Some(dest), at);
        let encoded = match out.result {
            Some(v) => v.wrapping_add(1),
            None => NB_MISS,
        };
        sys.data_mut().write_u64(dest, encoded);
        if sys.trace_enabled() {
            sys.trace_span("engine", "LOOKUP_NB", at, out.complete);
        }
        NbHandle {
            dest,
            issued: at + Cycles(1),
            result_at: out.complete,
            result: out.result,
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the instruction operand list
    fn dispatch_for_slice(
        &mut self,
        sys: &mut MemorySystem,
        core: CoreId,
        slice: usize,
        trace: &LookupTrace,
        key_hash: u64,
        key_addr: Option<Addr>,
        dest: Option<Addr>,
        at: Cycle,
    ) -> QueryOutcome {
        self.stats.inc(self.ids.queries);
        self.stats.inc(self.ids.dispatch_slice[slice]);
        self.flowregs[slice].observe(key_hash);
        let arrive = at + self.dispatch_wire(sys, core, slice);
        let out = self.accels[slice].execute(sys, trace, key_addr, arrive, dest);
        if sys.trace_enabled() {
            // Dispatch-to-complete: wire hops + scoreboard queueing +
            // accelerator service, per slice.
            sys.trace_span("accel", slice_op(slice), at, out.complete);
        }
        out
    }

    /// `SNAPSHOT_READ`: coherence-neutral read of a destination line.
    /// Returns the stored word and the cycle it is available, leaving the
    /// line's ownership unchanged so the accelerator keeps writing to
    /// the LLC without bouncing.
    pub fn snapshot_read(
        &mut self,
        sys: &mut MemorySystem,
        core: CoreId,
        addr: Addr,
        at: Cycle,
    ) -> (u64, Cycle) {
        self.stats.inc(self.ids.snapshot_read);
        let out = sys.snapshot_read(core, addr, at);
        let v = sys.data_mut().read_u64(addr);
        if sys.trace_enabled() {
            sys.trace_span("engine", "SNAPSHOT_READ", at, out.complete);
        }
        (v, out.complete)
    }

    /// Decodes a non-blocking result word: `None` if still pending,
    /// `Some(None)` for a miss, `Some(Some(v))` for a hit.
    #[must_use]
    pub fn decode_nb(word: u64) -> Option<Option<u64>> {
        match word {
            0 => None,
            NB_MISS => Some(None),
            v => Some(Some(v - 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_mem::MachineConfig;
    use halo_tables::{CuckooTable, FlowKey};

    fn setup() -> (MemorySystem, HaloEngine, CuckooTable) {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let engine = HaloEngine::new(&sys, AcceleratorConfig::default());
        let mut table = CuckooTable::create(sys.data_mut(), 512, 13);
        for id in 0..1000u64 {
            table
                .insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id * 10)
                .unwrap();
        }
        for a in table.all_lines().collect::<Vec<_>>() {
            sys.warm_llc(a);
        }
        (sys, engine, table)
    }

    #[test]
    fn blocking_lookup_hit_and_miss() {
        let (mut sys, mut engine, table) = setup();
        let (v, t) = engine.lookup_b(
            &mut sys,
            CoreId(0),
            &table,
            &FlowKey::synthetic(5, 13),
            None,
            Cycle(0),
        );
        assert_eq!(v, Some(50));
        assert!(t > Cycle(0));
        let (miss, _) = engine.lookup_b(
            &mut sys,
            CoreId(0),
            &table,
            &FlowKey::synthetic(999_999, 13),
            None,
            Cycle(0),
        );
        assert_eq!(miss, None);
    }

    #[test]
    fn nonblocking_encodes_result_in_memory() {
        let (mut sys, mut engine, table) = setup();
        let dest = sys.data_mut().alloc_lines(64);
        let h = engine.lookup_nb(
            &mut sys,
            CoreId(0),
            &table,
            &FlowKey::synthetic(5, 13),
            None,
            dest,
            Cycle(0),
        );
        assert_eq!(h.result, Some(50));
        assert!(h.issued < h.result_at, "core must not block");
        let word = sys.data_mut().read_u64(dest);
        assert_eq!(HaloEngine::decode_nb(word), Some(Some(50)));
    }

    #[test]
    fn nonblocking_miss_marker() {
        let (mut sys, mut engine, table) = setup();
        let dest = sys.data_mut().alloc_lines(64);
        let h = engine.lookup_nb(
            &mut sys,
            CoreId(0),
            &table,
            &FlowKey::synthetic(5_000_000, 13),
            None,
            dest,
            Cycle(0),
        );
        assert_eq!(h.result, None);
        let word = sys.data_mut().read_u64(dest);
        assert_eq!(HaloEngine::decode_nb(word), Some(None));
        assert_eq!(HaloEngine::decode_nb(0), None);
    }

    /// Edge words of the `LOOKUP_NB` destination encoding: the all-zeros
    /// empty-slot/pending word, the all-ones miss sentinel, and values
    /// with lock-bit-like high-bit patterns, which are plain data to the
    /// decoder. Values up to `u64::MAX - 2` round-trip; `u64::MAX - 1`
    /// and `u64::MAX` are reserved by the encoding (they would collide
    /// with the miss and pending words).
    #[test]
    fn decode_nb_edge_words() {
        // Empty-slot / pending encoding.
        assert_eq!(HaloEngine::decode_nb(0), None);
        // All-ones = the miss sentinel.
        assert_eq!(HaloEngine::decode_nb(u64::MAX), Some(None));
        assert_eq!(HaloEngine::decode_nb(NB_MISS), Some(None));
        // Smallest and largest encodable hits.
        assert_eq!(HaloEngine::decode_nb(1), Some(Some(0)));
        assert_eq!(
            HaloEngine::decode_nb(u64::MAX - 1),
            Some(Some(u64::MAX - 2))
        );
        // High bits are value bits, not lock/status bits: words that look
        // like a set lock bit decode as ordinary values.
        assert_eq!(
            HaloEngine::decode_nb(0x8000_0000_0000_0000),
            Some(Some(0x7FFF_FFFF_FFFF_FFFF))
        );
        assert_eq!(
            HaloEngine::decode_nb(0x8000_0000_0000_0001),
            Some(Some(0x8000_0000_0000_0000))
        );
    }

    /// Every encodable value pattern survives the lookup_nb -> dest word
    /// -> decode_nb round trip, including all-ones-minus-reserved and
    /// high-bit patterns.
    #[test]
    fn nb_dest_word_round_trips_value_patterns() {
        let (mut sys, mut engine, mut table) = setup();
        let dest = sys.data_mut().alloc_lines(64);
        let key = FlowKey::synthetic(7_777, 13);
        for (i, &v) in [
            0u64,
            1,
            0x7FFF_FFFF_FFFF_FFFF,
            0x8000_0000_0000_0000,
            u64::MAX - 2, // largest encodable value
        ]
        .iter()
        .enumerate()
        {
            table.insert(sys.data_mut(), &key, v).unwrap();
            let h = engine.lookup_nb(
                &mut sys,
                CoreId(0),
                &table,
                &key,
                None,
                dest,
                Cycle(i as u64 * 1_000),
            );
            assert_eq!(h.result, Some(v));
            let word = sys.data_mut().read_u64(dest);
            assert_eq!(HaloEngine::decode_nb(word), Some(Some(v)), "value {v:#x}");
        }
    }

    /// `SNAPSHOT_READ` across the optimistic-lock version counter's
    /// wraparound: the counter rolls from u64::MAX to 0 on the next
    /// table write (no panic), and a reader snapshotting before/after
    /// still observes a change.
    #[test]
    fn snapshot_read_version_counter_wraparound() {
        let (mut sys, mut engine, mut table) = setup();
        let vaddr = table.version_addr();
        sys.data_mut().write_u64(vaddr, u64::MAX);
        let (before, t0) = engine.snapshot_read(&mut sys, CoreId(0), vaddr, Cycle(0));
        assert_eq!(before, u64::MAX);
        table
            .insert(sys.data_mut(), &FlowKey::synthetic(9_999, 13), 1)
            .unwrap();
        let (after, _) = engine.snapshot_read(&mut sys, CoreId(0), vaddr, t0);
        assert_eq!(after, 0, "version counter must wrap to 0");
        assert_ne!(before, after, "optimistic reader must see the change");
        // Snapshotting the counter never pulls it into the core's L1.
        assert!(!sys.in_l1(CoreId(0), vaddr));
    }

    #[test]
    fn table_hash_policy_is_sticky_per_table() {
        let (mut sys, mut engine, table) = setup();
        for id in 0..20u64 {
            engine.lookup_b(
                &mut sys,
                CoreId(0),
                &table,
                &FlowKey::synthetic(id, 13),
                None,
                Cycle(id * 500),
            );
        }
        // All queries to one table land on one accelerator.
        let active: Vec<_> = engine
            .accelerators()
            .iter()
            .filter(|a| a.queries() > 0)
            .collect();
        assert_eq!(active.len(), 1);
    }

    #[test]
    fn key_hash_policy_spreads_single_table() {
        let (mut sys, mut engine, table) = setup();
        engine.set_policy(DispatchPolicy::KeyHash);
        for id in 0..64u64 {
            engine.lookup_b(
                &mut sys,
                CoreId(0),
                &table,
                &FlowKey::synthetic(id, 13),
                None,
                Cycle(id * 500),
            );
        }
        let active = engine
            .accelerators()
            .iter()
            .filter(|a| a.queries() > 0)
            .count();
        assert!(active >= 3, "key hashing should use most accelerators");
    }

    #[test]
    fn round_robin_rotates() {
        let (mut sys, mut engine, table) = setup();
        engine.set_policy(DispatchPolicy::RoundRobin);
        for id in 0..8u64 {
            engine.lookup_b(
                &mut sys,
                CoreId(0),
                &table,
                &FlowKey::synthetic(id, 13),
                None,
                Cycle(id * 500),
            );
        }
        for a in engine.accelerators() {
            assert_eq!(a.queries(), 2, "4 slices x 2 rounds");
        }
    }

    #[test]
    fn snapshot_read_returns_value_without_ownership() {
        let (mut sys, mut engine, _table) = setup();
        let dest = sys.data_mut().alloc_lines(64);
        sys.data_mut().write_u64(dest, 77);
        sys.warm_llc(dest);
        let (v, t) = engine.snapshot_read(&mut sys, CoreId(0), dest, Cycle(0));
        assert_eq!(v, 77);
        assert!(t > Cycle(0));
        assert!(!sys.in_l1(CoreId(0), dest));
    }

    #[test]
    fn key_fetch_adds_latency() {
        let (mut sys, mut engine, table) = setup();
        let key = FlowKey::synthetic(5, 13);
        // Key bytes live in a packet buffer (LLC via DDIO).
        let key_addr = sys.data_mut().alloc_lines(64);
        sys.data_mut().write_bytes(key_addr, key.as_bytes());
        sys.dma_write(key_addr);
        // Warm the accelerator's metadata cache first so both measured
        // lookups take the steady-state path.
        engine.lookup_b(&mut sys, CoreId(0), &table, &key, None, Cycle(0));
        let (_, plain_done) =
            engine.lookup_b(&mut sys, CoreId(0), &table, &key, None, Cycle(10_000));
        let plain = plain_done - Cycle(10_000);
        let (v, fetch_done) = engine.lookup_b(
            &mut sys,
            CoreId(0),
            &table,
            &key,
            Some(key_addr),
            Cycle(20_000),
        );
        let with_fetch = fetch_done - Cycle(20_000);
        assert_eq!(v, Some(50));
        assert!(
            with_fetch > plain,
            "fetching the key ({with_fetch}) must cost more than an embedded key ({plain})"
        );
    }

    #[test]
    fn engine_counts_queries_and_spreads_stats() {
        let (mut sys, mut engine, table) = setup();
        for id in 0..10u64 {
            engine.lookup_b(
                &mut sys,
                CoreId(0),
                &table,
                &FlowKey::synthetic(id, 13),
                None,
                Cycle(id * 400),
            );
        }
        assert_eq!(engine.total_queries(), 10);
        assert_eq!(engine.stats().counter("engine.queries"), 10);
    }

    #[test]
    fn saturated_accelerator_stalls_excess_queries() {
        let (mut sys, mut engine, table) = setup();
        // Fire 40 queries at the same instant at one accelerator
        // (table-hash policy pins them to one slice).
        for id in 0..40u64 {
            engine.lookup_b(
                &mut sys,
                CoreId(0),
                &table,
                &FlowKey::synthetic(id, 13),
                None,
                Cycle(0),
            );
        }
        let stalls: u64 = engine
            .accelerators()
            .iter()
            .map(|a| a.scoreboard_stalls())
            .sum();
        assert!(stalls > 0, "40 simultaneous queries must exceed 10 slots");
    }

    /// With tracing on, the three instruction primitives and the
    /// per-slice dispatch each record spans under their own op class.
    #[test]
    fn tracing_attributes_instruction_op_classes() {
        let (mut sys, mut engine, table) = setup();
        sys.enable_tracing(4096);
        let key = FlowKey::synthetic(5, 13);
        engine.lookup_b(&mut sys, CoreId(0), &table, &key, None, Cycle(0));
        let dest = sys.data_mut().alloc_lines(64);
        engine.lookup_nb(&mut sys, CoreId(0), &table, &key, None, dest, Cycle(5_000));
        engine.snapshot_read(&mut sys, CoreId(0), dest, Cycle(10_000));

        let tr = sys.tracer();
        assert_eq!(
            tr.histogram("engine", "LOOKUP_B").map(|h| h.count()),
            Some(1)
        );
        assert_eq!(
            tr.histogram("engine", "LOOKUP_NB").map(|h| h.count()),
            Some(1)
        );
        assert_eq!(
            tr.histogram("engine", "SNAPSHOT_READ").map(|h| h.count()),
            Some(1)
        );
        // Both lookups dispatched to a slice (table-hash: same slice).
        let slice_spans: u64 = (0..16)
            .filter_map(|s| tr.histogram("accel", slice_op(s)))
            .map(|h| h.count())
            .sum();
        assert_eq!(slice_spans, 2);
        // The LOOKUP_B span covers issue overhead + service + return.
        let b = tr.histogram("engine", "LOOKUP_B").unwrap();
        assert!(b.max() > ISSUE_OVERHEAD.0 + RETURN_OVERHEAD.0);
    }

    #[test]
    fn flow_register_window_estimates() {
        let (mut sys, mut engine, table) = setup();
        for id in 0..30u64 {
            for _ in 0..3 {
                engine.lookup_b(
                    &mut sys,
                    CoreId(0),
                    &table,
                    &FlowKey::synthetic(id, 13),
                    None,
                    Cycle(0),
                );
            }
        }
        let est = engine.end_flow_window();
        assert!(est > 10.0 && est < 90.0, "estimate {est} for 30 flows");
        assert_eq!(engine.active_flow_estimate(), 0.0);
    }
}
