//! # halo-accel
//!
//! The paper's primary contribution: HALO's distributed near-cache
//! accelerators for flow-rule lookup.
//!
//! * [`HaloAccelerator`] — the per-CHA engine of Fig. 6 (scoreboard,
//!   pipelined hash unit, comparators, metadata cache), executing lookup
//!   traces against its local LLC slice.
//! * [`HaloEngine`] — all accelerators plus the query distributor in the
//!   on-chip interconnect, exposed through the three x86-64 instruction
//!   primitives of §4.5: [`HaloEngine::lookup_b`] (blocking),
//!   [`HaloEngine::lookup_nb`] (non-blocking, result stored to memory),
//!   and [`HaloEngine::snapshot_read`] (coherence-neutral result poll).
//! * [`FlowRegister`] — the linear-counting active-flow estimator (§4.6).
//! * [`HybridClassifier`] — the adaptive software/HALO mode switch.
//! * Hardware-assisted locking (§4.4) is implemented with the LLC line
//!   lock bits of [`halo_mem::MemorySystem`]; the accelerator pins every
//!   bucket/key-value line it touches until the query commits.
//!
//! # Examples
//!
//! ```
//! use halo_accel::{AcceleratorConfig, HaloEngine};
//! use halo_mem::{CoreId, MachineConfig, MemorySystem};
//! use halo_sim::Cycle;
//! use halo_tables::{CuckooTable, FlowKey};
//!
//! let mut sys = MemorySystem::new(MachineConfig::small());
//! let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
//! let mut table = CuckooTable::create(sys.data_mut(), 256, 13);
//! for id in 0..100 {
//!     table.insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id).unwrap();
//! }
//! let (v, _done) = engine.lookup_b(
//!     &mut sys, CoreId(0), &table, &FlowKey::synthetic(42, 13), None, Cycle(0));
//! assert_eq!(v, Some(42));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accel;
mod engine;
mod flowreg;
mod hybrid;
mod metadata;

pub use accel::{AcceleratorConfig, HaloAccelerator, QueryOutcome};
pub use engine::{DispatchPolicy, HaloEngine, NbHandle, NB_MISS};
pub use flowreg::FlowRegister;
pub use hybrid::{HybridClassifier, HybridConfig, Mode};
pub use metadata::{MetadataCache, METADATA_CACHE_TABLES};
