//! The linear-counting flow register (§4.6).
//!
//! A small bit array estimates the number of *active* flows in a time
//! window: each query sets bit `H mod S`; at the end of the window the
//! estimate is `n̂ ≈ m · ln(m / u)` where `m` is the array size and `u`
//! the number of unset bits (Whang et al., linear counting). The paper
//! shows a register can accurately estimate about 2x more flows than it
//! has bits (Fig. 8b), and uses a 32-bit array to drive the hybrid
//! HW/SW mode switch around the 64-flow crossover.

/// A linear-counting flow register.
///
/// # Examples
///
/// ```
/// use halo_accel::FlowRegister;
///
/// let mut reg = FlowRegister::new(32);
/// for flow in 0..10u64 {
///     reg.observe(flow.wrapping_mul(0x9E3779B97F4A7C15));
/// }
/// let est = reg.estimate();
/// assert!(est > 5.0 && est < 20.0, "estimate {est}");
/// ```
#[derive(Debug, Clone)]
pub struct FlowRegister {
    bits: Vec<bool>,
    set_count: usize,
    observations: u64,
}

impl FlowRegister {
    /// Creates a register with `m` bits.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "zero-size flow register");
        FlowRegister {
            bits: vec![false; m],
            set_count: 0,
            observations: 0,
        }
    }

    /// Number of bits in the array.
    #[must_use]
    pub fn size(&self) -> usize {
        self.bits.len()
    }

    /// Records one query whose primary hash value is `hash`.
    pub fn observe(&mut self, hash: u64) {
        self.observations += 1;
        let idx = (hash % self.bits.len() as u64) as usize;
        if !self.bits[idx] {
            self.bits[idx] = true;
            self.set_count += 1;
        }
    }

    /// Queries observed in the current window.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Number of unset bits `u`.
    #[must_use]
    pub fn unset(&self) -> usize {
        self.bits.len() - self.set_count
    }

    /// The linear-counting estimate `m * ln(m / u)`.
    ///
    /// When the array saturates (`u == 0`), the estimate is unreliable;
    /// this returns `m * ln(m)` (the largest expressible value). Note
    /// that for small arrays this cap can sit *below* a caller's flow
    /// threshold (16 bits give ≈44.4), so threshold comparisons must
    /// check [`saturated`](Self::saturated) first instead of relying on
    /// the numeric value to exceed the threshold.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        let m = self.bits.len() as f64;
        let u = self.unset() as f64;
        if u == 0.0 {
            m * m.ln()
        } else {
            m * (m / u).ln()
        }
    }

    /// Whether the array has saturated (every bit set).
    #[must_use]
    pub fn saturated(&self) -> bool {
        self.set_count == self.bits.len()
    }

    /// Ends the measurement window: returns the estimate and clears the
    /// array.
    pub fn estimate_and_reset(&mut self) -> f64 {
        let e = self.estimate();
        self.bits.iter_mut().for_each(|b| *b = false);
        self.set_count = 0;
        self.observations = 0;
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_sim::SplitMix64;

    /// Helper: feed `flows` distinct flows (multiple packets each) and
    /// return the estimate.
    fn estimate_for(flows: u64, bits: usize, seed: u64) -> f64 {
        let mut rng = SplitMix64::new(seed);
        let mut reg = FlowRegister::new(bits);
        let hashes: Vec<u64> = (0..flows).map(|_| rng.next_u64()).collect();
        // Several packets per flow, interleaved.
        for round in 0..8 {
            for h in &hashes {
                reg.observe(*h); // same hash per flow
                let _ = round;
            }
        }
        reg.estimate()
    }

    #[test]
    fn empty_register_estimates_zero() {
        let reg = FlowRegister::new(32);
        assert_eq!(reg.estimate(), 0.0);
        assert_eq!(reg.unset(), 32);
    }

    #[test]
    fn accurate_up_to_twice_the_bits() {
        // Fig 8b: an m-bit register tracks ~2m flows accurately.
        for &(flows, bits) in &[(16u64, 32usize), (32, 32), (60, 32), (100, 64)] {
            let mut errs = Vec::new();
            for seed in 0..20 {
                let est = estimate_for(flows, bits, seed);
                errs.push((est - flows as f64).abs() / flows as f64);
            }
            let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
            assert!(
                mean_err < 0.30,
                "{flows} flows / {bits} bits: mean error {mean_err}"
            );
        }
    }

    #[test]
    fn duplicate_packets_do_not_inflate() {
        let mut reg = FlowRegister::new(32);
        for _ in 0..1000 {
            reg.observe(0xABCD); // one flow, many packets
        }
        let est = reg.estimate();
        assert!(est < 2.0, "single flow estimated as {est}");
        assert_eq!(reg.observations(), 1000);
    }

    #[test]
    fn saturation_reports_large() {
        let mut rng = SplitMix64::new(1);
        let mut reg = FlowRegister::new(8);
        for _ in 0..10_000 {
            reg.observe(rng.next_u64());
        }
        assert!(reg.saturated());
        assert!(reg.estimate() > 8.0);
    }

    #[test]
    fn reset_clears_window() {
        let mut reg = FlowRegister::new(32);
        reg.observe(1);
        reg.observe(2);
        let e = reg.estimate_and_reset();
        assert!(e > 0.0);
        assert_eq!(reg.estimate(), 0.0);
        assert_eq!(reg.observations(), 0);
    }

    #[test]
    fn estimate_monotone_in_flows() {
        let few = estimate_for(8, 32, 7);
        let many = estimate_for(48, 32, 7);
        assert!(many > few);
    }
}
