//! Hybrid hardware/software execution (§4.6).
//!
//! When the active flow count is small, the whole working set fits in
//! the L1 cache and software lookups win (Fig. 9, leftmost sizes); when
//! it grows, the HALO path wins. The hybrid classifier watches the
//! linear-counting flow register and switches mode at a threshold
//! (64 flows in the paper's evaluation).

use crate::engine::HaloEngine;
use halo_cpu::{build_sw_lookup, CoreModel, Scratch};
use halo_mem::{Addr, CoreId, MemorySystem};
use halo_sim::Cycle;
use halo_tables::{hash_key, CuckooTable, FlowKey, SEED_PRIMARY};

/// Execution mode chosen by the hybrid controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Software cuckoo lookup on the core (small working sets).
    Software,
    /// HALO near-cache accelerator lookup.
    Halo,
}

/// Configuration of the hybrid controller.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// Active-flow threshold below which software mode is used (the
    /// paper's evaluation settles on 64 flows).
    pub flow_threshold: f64,
    /// Queries per measurement window.
    pub window: u64,
    /// Bits in the controller's linear-counting register (the paper's
    /// hardware register is 32-bit; smaller registers saturate earlier).
    pub register_bits: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            flow_threshold: 64.0,
            window: 256,
            register_bits: 32,
        }
    }
}

/// A classifier front-end that adaptively routes lookups to software or
/// to the HALO engine.
///
/// # Examples
///
/// ```
/// use halo_accel::{AcceleratorConfig, HaloEngine, HybridClassifier, HybridConfig, Mode};
/// use halo_mem::{CoreId, MachineConfig, MemorySystem};
/// use halo_sim::Cycle;
/// use halo_tables::{CuckooTable, FlowKey};
///
/// let mut sys = MemorySystem::new(MachineConfig::small());
/// let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
/// let mut table = CuckooTable::create(sys.data_mut(), 64, 13);
/// let key = FlowKey::synthetic(1, 13);
/// table.insert(sys.data_mut(), &key, 10).unwrap();
///
/// let mut hybrid = HybridClassifier::new(&mut sys, CoreId(0), HybridConfig::default());
/// assert_eq!(hybrid.mode(), Mode::Software); // starts conservative
/// let (v, _t) = hybrid.lookup(&mut sys, &mut engine, &table, &key, Cycle(0));
/// assert_eq!(v, Some(10));
/// ```
#[derive(Debug)]
pub struct HybridClassifier {
    core: CoreId,
    core_model: CoreModel,
    scratch: Scratch,
    cfg: HybridConfig,
    mode: Mode,
    /// Software-side linear counter (sized by `cfg.register_bits`). The
    /// register's own observation count doubles as the window position,
    /// so there is exactly one notion of "queries this window".
    reg: crate::flowreg::FlowRegister,
    switches: u64,
    sw_lookups: u64,
    hw_lookups: u64,
}

impl HybridClassifier {
    /// Creates a hybrid front-end bound to `core`.
    pub fn new(sys: &mut MemorySystem, core: CoreId, cfg: HybridConfig) -> Self {
        let scratch = Scratch::new(sys);
        scratch.warm(sys, core);
        HybridClassifier {
            core,
            core_model: CoreModel::new(core, sys.config()),
            scratch,
            cfg,
            mode: Mode::Software,
            reg: crate::flowreg::FlowRegister::new(cfg.register_bits),
            switches: 0,
            sw_lookups: 0,
            hw_lookups: 0,
        }
    }

    /// The currently selected mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Number of mode switches so far.
    #[must_use]
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// `(software lookups, HALO lookups)` executed.
    #[must_use]
    pub fn split(&self) -> (u64, u64) {
        (self.sw_lookups, self.hw_lookups)
    }

    /// Performs one lookup in the current mode, updating the flow
    /// register and re-evaluating the mode at window boundaries.
    /// Returns the value and the completion cycle.
    pub fn lookup(
        &mut self,
        sys: &mut MemorySystem,
        engine: &mut HaloEngine,
        table: &CuckooTable,
        key: &FlowKey,
        at: Cycle,
    ) -> (Option<u64>, Cycle) {
        let h = hash_key(key, SEED_PRIMARY);
        self.reg.observe(h);
        if self.reg.observations() >= self.cfg.window {
            // A saturated register means "at least as many flows as the
            // array can express" — its numeric estimate m·ln(m) can fall
            // *below* the threshold for small arrays (m=16 gives ~44.4
            // against the default 64), so check saturation first rather
            // than comparing the estimate.
            let saturated = self.reg.saturated();
            let est = self.reg.estimate_and_reset();
            let want = if saturated || est >= self.cfg.flow_threshold {
                Mode::Halo
            } else {
                Mode::Software
            };
            if want != self.mode {
                self.mode = want;
                self.switches += 1;
            }
        }
        match self.mode {
            Mode::Software => {
                self.sw_lookups += 1;
                let trace = table.lookup_traced(sys.data_mut(), key, true);
                let prog = build_sw_lookup(&trace, &mut self.scratch, None);
                let report = self.core_model.run(&prog, sys, at);
                (trace.result, report.finish)
            }
            Mode::Halo => {
                self.hw_lookups += 1;
                engine.lookup_b(sys, self.core, table, key, None, at)
            }
        }
    }

    /// Forces a mode (for experiments that pin the implementation).
    pub fn force_mode(&mut self, mode: Mode) {
        if mode != self.mode {
            self.mode = mode;
            self.switches += 1;
        }
    }

    /// Destination address pool base for scratch use (exposed for tests).
    #[must_use]
    pub fn scratch_base(&self) -> Addr {
        self.scratch.base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AcceleratorConfig;
    use halo_mem::MachineConfig;

    fn setup(flows: u64) -> (MemorySystem, HaloEngine, CuckooTable, Vec<FlowKey>) {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let engine = HaloEngine::new(&sys, AcceleratorConfig::default());
        let mut table = CuckooTable::with_capacity_for(sys.data_mut(), flows as usize, 0.8, 13);
        let keys: Vec<FlowKey> = (0..flows).map(|i| FlowKey::synthetic(i, 13)).collect();
        for (i, k) in keys.iter().enumerate() {
            table.insert(sys.data_mut(), k, i as u64).unwrap();
        }
        for a in table.all_lines().collect::<Vec<_>>() {
            sys.warm_llc(a);
        }
        (sys, engine, table, keys)
    }

    #[test]
    fn few_flows_stay_in_software_mode() {
        let (mut sys, mut engine, table, keys) = setup(8);
        let mut hy = HybridClassifier::new(&mut sys, CoreId(0), HybridConfig::default());
        let mut t = Cycle(0);
        for round in 0..100u64 {
            for k in &keys {
                let (_, done) = hy.lookup(&mut sys, &mut engine, &table, k, t);
                t = done;
            }
            let _ = round;
        }
        assert_eq!(hy.mode(), Mode::Software);
        assert_eq!(hy.split().1, 0, "no HALO lookups expected");
    }

    #[test]
    fn many_flows_switch_to_halo() {
        let (mut sys, mut engine, table, keys) = setup(512);
        let mut hy = HybridClassifier::new(&mut sys, CoreId(0), HybridConfig::default());
        let mut t = Cycle(0);
        for k in &keys {
            let (_, done) = hy.lookup(&mut sys, &mut engine, &table, k, t);
            t = done;
        }
        assert_eq!(hy.mode(), Mode::Halo);
        assert!(hy.switches() >= 1);
        assert!(hy.split().1 > 0);
    }

    #[test]
    fn lookups_stay_functionally_correct_across_switches() {
        let (mut sys, mut engine, table, keys) = setup(512);
        let mut hy = HybridClassifier::new(&mut sys, CoreId(0), HybridConfig::default());
        let mut t = Cycle(0);
        for (i, k) in keys.iter().enumerate() {
            let (v, done) = hy.lookup(&mut sys, &mut engine, &table, k, t);
            assert_eq!(v, Some(i as u64));
            t = done;
        }
    }

    /// Regression (saturation vs threshold): a 16-bit register's
    /// saturated estimate is 16·ln(16) ≈ 44.4, *below* the default
    /// 64-flow threshold. Before the saturation check, a window with far
    /// more flows than the register can express selected Software mode —
    /// exactly the regime where software lookups are slowest.
    #[test]
    fn saturated_small_register_forces_halo() {
        let (mut sys, mut engine, table, keys) = setup(512);
        let cfg = HybridConfig {
            register_bits: 16,
            ..HybridConfig::default()
        };
        // Confirm the premise: the saturated estimate is sub-threshold.
        let mut reg = crate::flowreg::FlowRegister::new(16);
        for i in 0..512u64 {
            reg.observe(hash_key(&FlowKey::synthetic(i, 13), SEED_PRIMARY));
        }
        assert!(reg.saturated());
        assert!(
            reg.estimate() < cfg.flow_threshold,
            "premise: saturated 16-bit estimate {} must sit below {}",
            reg.estimate(),
            cfg.flow_threshold
        );

        let mut hy = HybridClassifier::new(&mut sys, CoreId(0), cfg);
        let mut t = Cycle(0);
        for k in &keys {
            let (_, done) = hy.lookup(&mut sys, &mut engine, &table, k, t);
            t = done;
        }
        assert_eq!(
            hy.mode(),
            Mode::Halo,
            "saturation must mean 'many flows', not its numeric estimate"
        );
        assert!(hy.split().1 > 0, "HALO lookups expected after the switch");
    }

    /// Regression (window bookkeeping): the mode re-evaluates after
    /// *exactly* `window` lookups — the register's observation count is
    /// the only window position, so it cannot drift from the bits.
    #[test]
    fn mode_reevaluates_exactly_at_window_boundary() {
        let (mut sys, mut engine, table, keys) = setup(64);
        let cfg = HybridConfig {
            flow_threshold: 1.0, // any estimate >= 1 flips to Halo
            window: 8,
            ..HybridConfig::default()
        };
        let mut hy = HybridClassifier::new(&mut sys, CoreId(0), cfg);
        let mut t = Cycle(0);
        for k in keys.iter().take(7) {
            let (_, done) = hy.lookup(&mut sys, &mut engine, &table, k, t);
            t = done;
        }
        assert_eq!(hy.mode(), Mode::Software, "window not yet full at 7/8");
        assert_eq!(hy.switches(), 0);
        let (_, done) = hy.lookup(&mut sys, &mut engine, &table, &keys[7], t);
        t = done;
        assert_eq!(hy.mode(), Mode::Halo, "8th lookup closes the window");
        assert_eq!(hy.switches(), 1);
        // The next window starts empty: another 7 lookups stay put.
        for k in keys.iter().skip(8).take(7) {
            let (_, done) = hy.lookup(&mut sys, &mut engine, &table, k, t);
            t = done;
        }
        assert_eq!(hy.switches(), 1, "no re-evaluation mid-window");
    }

    #[test]
    fn force_mode_counts_as_switch() {
        let (mut sys, _engine, _table, _keys) = setup(8);
        let mut hy = HybridClassifier::new(&mut sys, CoreId(0), HybridConfig::default());
        hy.force_mode(Mode::Halo);
        assert_eq!(hy.mode(), Mode::Halo);
        assert_eq!(hy.switches(), 1);
        hy.force_mode(Mode::Halo);
        assert_eq!(hy.switches(), 1);
    }
}
