//! One HALO accelerator: the per-CHA lookup engine of Fig. 6.
//!
//! Each accelerator owns a scoreboard bounding its in-flight queries, a
//! fully pipelined hash unit, comparators, and a small metadata cache.
//! It executes lookup traces against the memory system *from its CHA*:
//! local-slice lines are reached over the short CHA-internal path,
//! remote lines over the interconnect — never through any core's
//! private caches, which is what eliminates the private-cache pollution
//! of Fig. 12.

use crate::metadata::{MetadataCache, METADATA_CACHE_TABLES};
use halo_mem::{AccessKind, Addr, HitLevel, LineAddr, MemorySystem, SliceId};
use halo_sim::{Cycle, Cycles, OutstandingWindow, Resource};
use halo_tables::{LookupTrace, TraceStep};

/// Tunable parameters of one accelerator (defaults follow §4.7).
#[derive(Debug, Clone)]
pub struct AcceleratorConfig {
    /// Maximum in-flight queries tracked by the scoreboard.
    pub scoreboard_depth: usize,
    /// Latency of the pipelined hash unit.
    pub hash_latency: Cycles,
    /// Latency of a signature/key comparator pass.
    pub compare_latency: Cycles,
    /// Number of tables the metadata cache holds.
    pub metadata_tables: usize,
    /// Whether the metadata cache is enabled (ablation knob).
    pub metadata_cache: bool,
    /// Whether the hardware lock bits are set during queries (§4.4).
    pub hardware_locking: bool,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            scoreboard_depth: 10,
            hash_latency: Cycles(3),
            compare_latency: Cycles(1),
            metadata_tables: METADATA_CACHE_TABLES,
            metadata_cache: true,
            hardware_locking: true,
        }
    }
}

/// Completion record of one accelerator query.
#[derive(Debug, Clone, Copy)]
pub struct QueryOutcome {
    /// Functional lookup result.
    pub result: Option<u64>,
    /// Cycle at which the accelerator finished (result in its result
    /// queue / written to the destination line).
    pub complete: Cycle,
    /// Memory steps that reached DRAM (for energy accounting).
    pub dram_steps: u64,
    /// Memory steps the accelerator performed in total.
    pub mem_steps: u64,
    /// Cycles spent waiting on memory (sum of access latencies on the
    /// query's serial chain) — the "data access" bar of Fig. 10.
    pub data_cycles: Cycles,
}

/// One per-CHA HALO accelerator.
#[derive(Debug)]
pub struct HaloAccelerator {
    slice: SliceId,
    cfg: AcceleratorConfig,
    scoreboard: OutstandingWindow,
    hash_unit: Resource,
    metadata: MetadataCache,
    queries: u64,
    busy_cycles: Cycles,
}

impl HaloAccelerator {
    /// Creates the accelerator attached to `slice`'s CHA.
    #[must_use]
    pub fn new(slice: SliceId, cfg: AcceleratorConfig) -> Self {
        let scoreboard = OutstandingWindow::new(cfg.scoreboard_depth);
        let hash_unit = Resource::pipelined("hash-unit", cfg.hash_latency);
        let metadata = MetadataCache::new(cfg.metadata_tables);
        HaloAccelerator {
            slice,
            cfg,
            scoreboard,
            hash_unit,
            metadata,
            queries: 0,
            busy_cycles: Cycles::ZERO,
        }
    }

    /// The LLC slice this accelerator sits next to.
    #[must_use]
    pub fn slice(&self) -> SliceId {
        self.slice
    }

    /// Queries executed so far.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Accumulated busy time (for utilization / energy reporting).
    #[must_use]
    pub fn busy_cycles(&self) -> Cycles {
        self.busy_cycles
    }

    /// Metadata-cache statistics `(hits, misses, invalidations)`.
    #[must_use]
    pub fn metadata_stats(&self) -> (u64, u64, u64) {
        self.metadata.stats()
    }

    /// Scoreboard stalls (queries that waited for a free slot).
    #[must_use]
    pub fn scoreboard_stalls(&self) -> u64 {
        self.scoreboard.stalls()
    }

    /// Handles a snoop invalidation of a metadata line (CV-bit protocol).
    pub fn snoop_metadata(&mut self, addr: Addr) -> bool {
        self.metadata.snoop_invalidate(addr)
    }

    /// Executes one lookup query arriving at this accelerator at
    /// `arrive`.
    ///
    /// * `trace` — the functional lookup steps (already computed against
    ///   the table).
    /// * `key_addr` — where the key bytes live; the accelerator fetches
    ///   them first (§4.3 step 1). `None` models a key embedded in the
    ///   query message.
    /// * `dest` — destination line for non-blocking queries; the result
    ///   is stored there (timed) instead of returned over the ring.
    pub fn execute(
        &mut self,
        sys: &mut MemorySystem,
        trace: &LookupTrace,
        key_addr: Option<Addr>,
        arrive: Cycle,
        dest: Option<Addr>,
    ) -> QueryOutcome {
        self.queries += 1;
        let start = self.scoreboard.acquire(arrive);
        let mut t = start;
        let mut dram_steps = 0u64;
        let mut mem_steps = 0u64;
        let mut data_cycles = Cycles::ZERO;
        let mut locked: Vec<LineAddr> = Vec::new();

        let mut access = |sys: &mut MemorySystem,
                          slice: SliceId,
                          addr: Addr,
                          kind: AccessKind,
                          at: Cycle|
         -> Cycle {
            let out = sys.accel_access(slice, addr, kind, at);
            if out.level == HitLevel::Dram {
                dram_steps += 1;
            }
            mem_steps += 1;
            data_cycles += out.complete - at;
            out.complete
        };

        // Step 1: fetch the key.
        if let Some(ka) = key_addr {
            t = access(sys, self.slice, ka, AccessKind::Load, t);
        }

        for step in &trace.steps {
            match *step {
                TraceStep::LoadMeta(a) => {
                    if self.cfg.metadata_cache && self.metadata.access(a) {
                        t += Cycles(1); // metadata-cache hit
                    } else {
                        if self.cfg.metadata_cache {
                            // Miss path already inserted the entry.
                        }
                        t = access(sys, self.slice, a, AccessKind::Load, t);
                    }
                }
                TraceStep::Hash => {
                    t = self.hash_unit.serve(t);
                }
                TraceStep::LoadBucket(a) | TraceStep::LoadKv(a) => {
                    t = access(sys, self.slice, a, AccessKind::Load, t);
                    if self.cfg.hardware_locking {
                        locked.push(a.line());
                    }
                }
                TraceStep::CompareSigs | TraceStep::CompareKey => {
                    t += self.cfg.compare_latency;
                }
                TraceStep::LoadKey(a) => {
                    t = access(sys, self.slice, a, AccessKind::Load, t);
                }
                TraceStep::SoftLock(_) => {
                    // Software locking is replaced by the hardware lock
                    // bit: no work on the accelerator path.
                }
                TraceStep::StoreResult(a) => {
                    t = access(sys, self.slice, a, AccessKind::Store, t);
                }
            }
        }

        // Result store for non-blocking queries not already in the trace.
        if let Some(d) = dest {
            t = access(sys, self.slice, d, AccessKind::Store, t);
        }

        // Hardware locking: the touched bucket/kv lines were pinned for
        // the duration of the query (release at completion).
        if self.cfg.hardware_locking {
            for line in locked {
                sys.hw_lock(line, t);
            }
        }

        self.scoreboard.commit(t);
        self.busy_cycles += t - start;
        QueryOutcome {
            result: trace.result,
            complete: t,
            dram_steps,
            mem_steps,
            data_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_mem::{CoreId, MachineConfig};
    use halo_tables::{CuckooTable, FlowKey};

    fn setup() -> (MemorySystem, CuckooTable) {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let mut table = CuckooTable::create(sys.data_mut(), 256, 13);
        for id in 0..500u64 {
            table
                .insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id)
                .unwrap();
        }
        for a in table.all_lines().collect::<Vec<_>>() {
            sys.warm_llc(a);
        }
        (sys, table)
    }

    #[test]
    fn query_returns_functional_result() {
        let (mut sys, table) = setup();
        let mut acc = HaloAccelerator::new(SliceId(0), AcceleratorConfig::default());
        let key = FlowKey::synthetic(7, 13);
        let tr = table.lookup_traced(sys.data_mut(), &key, false);
        let out = acc.execute(&mut sys, &tr, None, Cycle(0), None);
        assert_eq!(out.result, Some(7));
        assert!(out.complete > Cycle(0));
        assert!(out.mem_steps >= 2);
    }

    #[test]
    fn metadata_cache_hits_after_first_query() {
        let (mut sys, table) = setup();
        let mut acc = HaloAccelerator::new(SliceId(0), AcceleratorConfig::default());
        for id in 0..5u64 {
            let key = FlowKey::synthetic(id, 13);
            let tr = table.lookup_traced(sys.data_mut(), &key, false);
            acc.execute(&mut sys, &tr, None, Cycle(id * 1000), None);
        }
        let (hits, misses, _) = acc.metadata_stats();
        assert_eq!(misses, 1, "only the first query misses");
        assert_eq!(hits, 4);
    }

    #[test]
    fn llc_resident_query_is_fast() {
        let (mut sys, table) = setup();
        let mut acc = HaloAccelerator::new(SliceId(0), AcceleratorConfig::default());
        // Warm the metadata cache first.
        let k0 = FlowKey::synthetic(0, 13);
        let tr0 = table.lookup_traced(sys.data_mut(), &k0, false);
        acc.execute(&mut sys, &tr0, None, Cycle(0), None);

        let key = FlowKey::synthetic(7, 13);
        let tr = table.lookup_traced(sys.data_mut(), &key, false);
        let out = acc.execute(&mut sys, &tr, None, Cycle(10_000), None);
        let latency = (out.complete - Cycle(10_000)).0;
        // 2-4 near-cache accesses plus hash/compare: well under 150 cy.
        assert!(latency < 150, "accelerator latency {latency}");
    }

    #[test]
    fn scoreboard_limits_inflight() {
        let (mut sys, table) = setup();
        let cfg = AcceleratorConfig {
            scoreboard_depth: 2,
            ..AcceleratorConfig::default()
        };
        let mut acc = HaloAccelerator::new(SliceId(0), cfg);
        // Fire 10 queries at the same instant.
        for id in 0..10u64 {
            let key = FlowKey::synthetic(id, 13);
            let tr = table.lookup_traced(sys.data_mut(), &key, false);
            acc.execute(&mut sys, &tr, None, Cycle(0), None);
        }
        assert!(acc.scoreboard_stalls() > 0, "depth-2 scoreboard must stall");
    }

    #[test]
    fn hardware_locking_pins_lines() {
        let (mut sys, table) = setup();
        let mut acc = HaloAccelerator::new(SliceId(0), AcceleratorConfig::default());
        let key = FlowKey::synthetic(7, 13);
        let tr = table.lookup_traced(sys.data_mut(), &key, false);
        let out = acc.execute(&mut sys, &tr, None, Cycle(0), None);
        // A store to a touched bucket line issued mid-query must wait.
        let bucket = tr
            .steps
            .iter()
            .find_map(|s| match s {
                TraceStep::LoadBucket(a) => Some(*a),
                _ => None,
            })
            .unwrap();
        let w = sys.access(CoreId(0), bucket, AccessKind::Store, Cycle(0));
        assert!(
            w.complete >= out.complete,
            "store {:?} must wait for query completion {:?}",
            w.complete,
            out.complete
        );
    }

    #[test]
    fn locking_disabled_skips_lock_bits() {
        let (mut sys, table) = setup();
        let cfg = AcceleratorConfig {
            hardware_locking: false,
            ..AcceleratorConfig::default()
        };
        let mut acc = HaloAccelerator::new(SliceId(0), cfg);
        let key = FlowKey::synthetic(7, 13);
        let tr = table.lookup_traced(sys.data_mut(), &key, false);
        acc.execute(&mut sys, &tr, None, Cycle(0), None);
        assert_eq!(sys.stats().counter("hw_lock.set"), 0);
    }

    #[test]
    fn nonblocking_dest_store_is_timed() {
        let (mut sys, table) = setup();
        let mut acc = HaloAccelerator::new(SliceId(0), AcceleratorConfig::default());
        let dest = sys.data_mut().alloc_lines(64);
        let key = FlowKey::synthetic(7, 13);
        let tr = table.lookup_traced(sys.data_mut(), &key, false);
        let with_dest = acc.execute(&mut sys, &tr, None, Cycle(0), Some(dest));
        assert!(with_dest.mem_steps >= 3);
    }
}
