//! The per-accelerator metadata cache (§4.3).
//!
//! Each HALO accelerator caches the metadata of the 10 most recently
//! used hash tables (640 B), kept coherent with a core-valid (CV) bit in
//! the LLC snoop filter. Since table metadata almost never changes after
//! creation, snoops are rare; the win is that steady-state queries skip
//! the metadata fetch entirely.

use halo_mem::Addr;

/// Capacity of the metadata cache in tables (the paper's configuration).
pub const METADATA_CACHE_TABLES: usize = 10;

/// An LRU cache of table-metadata lines held inside one accelerator.
#[derive(Debug, Clone)]
pub struct MetadataCache {
    /// `(metadata line address, lru tick)`, at most `capacity` entries.
    entries: Vec<(Addr, u64)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl MetadataCache {
    /// Creates an empty cache for `capacity` tables.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        MetadataCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Looks up the metadata line at `addr`, inserting it on miss
    /// (evicting the LRU table). Returns `true` on hit.
    pub fn access(&mut self, addr: Addr) -> bool {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|(a, _)| *a == addr) {
            e.1 = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("cache full implies non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((addr, self.tick));
        false
    }

    /// Handles a snoop invalidation (a core wrote the metadata line, e.g.
    /// a table resize). Returns `true` if the line was present.
    pub fn snoop_invalidate(&mut self, addr: Addr) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(a, _)| *a != addr);
        let hit = self.entries.len() != before;
        if hit {
            self.invalidations += 1;
        }
        hit
    }

    /// Whether `addr`'s metadata is currently cached (no LRU update).
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        self.entries.iter().any(|(a, _)| *a == addr)
    }

    /// (hits, misses, snoop invalidations).
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.invalidations)
    }

    /// Number of tables currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for MetadataCache {
    fn default() -> Self {
        MetadataCache::new(METADATA_CACHE_TABLES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss() {
        let mut c = MetadataCache::default();
        assert!(!c.access(Addr(64)));
        assert!(c.access(Addr(64)));
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut c = MetadataCache::new(2);
        c.access(Addr(64));
        c.access(Addr(128));
        c.access(Addr(64)); // refresh 64; 128 becomes LRU
        c.access(Addr(192)); // evicts 128
        assert!(c.contains(Addr(64)));
        assert!(!c.contains(Addr(128)));
        assert!(c.contains(Addr(192)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn snoop_invalidation_removes() {
        let mut c = MetadataCache::default();
        c.access(Addr(64));
        assert!(c.snoop_invalidate(Addr(64)));
        assert!(!c.contains(Addr(64)));
        assert!(!c.snoop_invalidate(Addr(64)));
        assert_eq!(c.stats().2, 1);
    }

    #[test]
    fn default_capacity_is_ten_tables() {
        let mut c = MetadataCache::default();
        for i in 0..METADATA_CACHE_TABLES {
            c.access(Addr(64 * (i as u64 + 1)));
        }
        assert_eq!(c.len(), METADATA_CACHE_TABLES);
        assert!(!c.is_empty());
    }
}
