//! Churn differential: the streaming traffic engine's arrival/expiry
//! stream replayed against a `HashMap` oracle on every exact-match
//! backend.
//!
//! [`gen_ops`](crate::gen_ops)-based differentials exercise uniformly
//! random op mixes; real datapaths see something nastier — a large
//! live set installed up front, then a sustained stream of paired
//! inserts and removes (flow churn) interleaved with skewed lookups.
//! That shape drives cuckoo displacement chains through *occupied*
//! tables, reverses Cuckoo++ presence filters under remove pressure,
//! and re-homes EMOMA entries while their CBF steering is hot. The
//! churn driver replays exactly that stream, checks the oracle after
//! every op, and runs the backend's invariant auditor at a fixed epoch
//! cadence (plus a final audit), shrinking any failure with the same
//! ddmin pass as [`run_differential`](crate::run_differential).

use std::collections::HashMap;

use halo_datapath::{ExactTable, TableBackend, TrafficEvent};
use halo_mem::SimMemory;
use halo_nf::{StreamConfig, StreamingTrafficGen};
use halo_sim::point_seed;
use halo_tables::{FlowKey, FlowTable};

use crate::audit::{audit_cuckoo, audit_cuckoo_pp, audit_emoma};
use crate::oracle::{Op, KEY_LEN};
use crate::shrink::{shrink_ops, MinimalTrace};

/// Ops between invariant audits inside [`churn_driver`]. Final-state
/// audits run unconditionally on top of the cadence.
pub const AUDIT_EPOCH: usize = 64;

fn fold(flow: u64, key_space: u16) -> u16 {
    (flow % u64::from(key_space.max(1))) as u16
}

fn key(k: u16) -> FlowKey {
    FlowKey::synthetic(u64::from(k), KEY_LEN)
}

/// Runs the backend's own invariant auditor, whichever backend `t` is,
/// returning the first violation rendered as a message.
#[must_use]
pub fn audit_exact(t: &ExactTable, mem: &mut SimMemory) -> Option<String> {
    let violations = match t {
        ExactTable::Cuckoo(c) => audit_cuckoo(c, mem),
        ExactTable::CuckooPlusPlus(c) => audit_cuckoo_pp(c, mem),
        ExactTable::Emoma(e) => audit_emoma(e, mem),
    };
    violations.into_iter().next().map(|v| v.to_string())
}

/// Converts a churn-preset streaming run into a replayable op
/// sequence: the initial live set as inserts, then `events` generator
/// steps with arrivals as inserts, expiries as removes, and packets as
/// lookups. Flow ids are folded into a `key_space`-sized universe —
/// aliasing is fine because the table and the oracle see the identical
/// stream.
#[must_use]
pub fn churn_ops(flows: usize, events: usize, key_space: u16, seed: u64) -> Vec<Op> {
    let mut gen = StreamingTrafficGen::new(StreamConfig::churn(flows), seed);
    let mut ops: Vec<Op> = gen
        .live_flows()
        .iter()
        .map(|&f| Op::Insert(fold(f, key_space), f))
        .collect();
    for _ in 0..events {
        ops.push(match gen.next_event() {
            TrafficEvent::Arrival(f) => Op::Insert(fold(f, key_space), f),
            TrafficEvent::Expiry(f) => Op::Remove(fold(f, key_space)),
            TrafficEvent::Packet(f) => Op::Lookup(fold(f, key_space)),
        });
    }
    ops
}

/// Replays `ops` against a fresh `backend` table (sized for the whole
/// `key_space` at 75% occupancy, so honest inserts have headroom) and
/// a `HashMap` oracle, checking lookups, removes, and the length after
/// every op and auditing the backend's invariants every
/// [`AUDIT_EPOCH`] ops and at the end. Inserts the backend rejects
/// (e.g. an exhausted EMOMA cascade) are skipped in the model too,
/// unless the key is present — updates must succeed in place.
#[must_use]
pub fn churn_driver(backend: TableBackend, key_space: u16, ops: &[Op]) -> Option<String> {
    let mut mem = SimMemory::new();
    let mut t = backend.build(&mut mem, usize::from(key_space.max(16)), 0.75, KEY_LEN);
    let mut model: HashMap<u16, u64> = HashMap::new();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert(k, v) => {
                if t.insert(&mut mem, &key(k), v).is_ok() {
                    model.insert(k, v);
                } else if model.contains_key(&k) {
                    return Some(format!("op {i} ({op}): update of present key rejected"));
                }
            }
            Op::Remove(k) => {
                let got = t.remove(&mut mem, &key(k));
                let want = model.remove(&k);
                if got != want {
                    return Some(format!(
                        "op {i} ({op}): remove returned {got:?}, oracle says {want:?}"
                    ));
                }
            }
            Op::Lookup(k) | Op::Move(k) => {
                let got = t.lookup(&mem, &key(k));
                let want = model.get(&k).copied();
                if got != want {
                    return Some(format!(
                        "op {i} ({op}): lookup returned {got:?}, oracle says {want:?}"
                    ));
                }
            }
        }
        if t.len() != model.len() {
            return Some(format!(
                "op {i} ({op}): len {} diverged from oracle {}",
                t.len(),
                model.len()
            ));
        }
        if (i + 1) % AUDIT_EPOCH == 0 {
            if let Some(v) = audit_exact(&t, &mut mem) {
                return Some(format!("op {i} ({op}): epoch audit violation: {v}"));
            }
        }
    }
    audit_exact(&t, &mut mem).map(|v| format!("final audit: {v}"))
}

/// Runs `cases` churn differential cases of `flows` initial flows plus
/// `events` streaming steps (folded into `key_space` keys) against
/// `backend`, seeding case `i` with `point_seed(name, i)`. On the
/// first divergence the sequence is ddmin-shrunk and returned as a
/// [`MinimalTrace`], exactly like
/// [`run_differential`](crate::run_differential).
///
/// # Errors
///
/// Returns the shrunken counterexample if any case diverges.
pub fn run_churn_differential(
    name: &str,
    cases: u64,
    flows: usize,
    events: usize,
    key_space: u16,
    backend: TableBackend,
) -> Result<(), MinimalTrace> {
    for i in 0..cases {
        let seed = point_seed(name, i);
        let ops = churn_ops(flows, events, key_space, seed);
        let mut driver = |ops: &[Op]| churn_driver(backend, key_space, ops);
        if driver(&ops).is_some() {
            let (min_ops, error) = shrink_ops(&ops, &mut driver);
            return Err(MinimalTrace {
                seed,
                ops: min_ops,
                error,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_ops_start_with_the_live_set_and_pair_churn() {
        let flows = 100;
        let ops = churn_ops(flows, 600, 1 << 12, 7);
        assert!(ops[..flows].iter().all(|op| matches!(op, Op::Insert(..))));
        let inserts = ops[flows..]
            .iter()
            .filter(|op| matches!(op, Op::Insert(..)))
            .count();
        let removes = ops[flows..]
            .iter()
            .filter(|op| matches!(op, Op::Remove(..)))
            .count();
        assert_eq!(inserts, removes, "churn arrivals pair with expiries");
        assert!(inserts > 0, "600 steps at 5% churn should churn");
        assert_eq!(ops, churn_ops(flows, 600, 1 << 12, 7), "deterministic");
    }

    #[test]
    fn every_backend_survives_the_churn_suite() {
        for backend in TableBackend::all() {
            run_churn_differential(
                &format!("churn.{}", backend.name()),
                2,
                160,
                500,
                1 << 11,
                backend,
            )
            .unwrap_or_else(|t| panic!("{}: {t}", backend.name()));
        }
    }

    /// A deliberately broken replay — removes are applied to the model
    /// but only every other one reaches the table — must be caught by
    /// the oracle and shrink to a short trace.
    #[test]
    fn lossy_removes_are_caught_and_shrunk() {
        let lossy = |ops: &[Op]| -> Option<String> {
            let mut mem = SimMemory::new();
            let mut t = TableBackend::Cuckoo.build(&mut mem, 1 << 11, 0.75, KEY_LEN);
            let mut model: HashMap<u16, u64> = HashMap::new();
            let mut drop_toggle = false;
            for (i, &op) in ops.iter().enumerate() {
                match op {
                    Op::Insert(k, v) => {
                        let _ = t.insert(&mut mem, &key(k), v);
                        model.insert(k, v);
                    }
                    Op::Remove(k) => {
                        if drop_toggle {
                            t.remove(&mut mem, &key(k));
                        }
                        drop_toggle = !drop_toggle;
                        model.remove(&k);
                    }
                    Op::Lookup(k) | Op::Move(k) => {
                        if t.lookup(&mem, &key(k)) != model.get(&k).copied() {
                            return Some(format!("op {i}: lookup diverged"));
                        }
                    }
                }
                if t.len() != model.len() {
                    return Some(format!("op {i}: len diverged"));
                }
            }
            None
        };
        let seed = point_seed("churn.lossy", 0);
        let ops = churn_ops(64, 800, 256, seed);
        assert!(lossy(&ops).is_some(), "the planted bug must trip");
        let (min_ops, err) = shrink_ops(&ops, lossy);
        assert!(err.contains("diverged"), "unexpected error: {err}");
        assert!(
            min_ops.len() <= 6,
            "expected a short trace, got {} ops",
            min_ops.len()
        );
    }
}
