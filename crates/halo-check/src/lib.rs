//! # halo-check
//!
//! Correctness tooling for the HALO reproduction. gem5 gave the paper's
//! authors a correct memory system for free; this simulator must prove
//! its own, so `halo-check` supplies three layers:
//!
//! * **Differential oracle** ([`oracle`], [`run_differential`]) — a
//!   trivially-correct reference map driven by the same SplitMix64-seeded
//!   op stream as [`CuckooTable`](halo_tables::CuckooTable),
//!   [`SfhTable`](halo_tables::SfhTable),
//!   [`KvStore`](halo_kvstore::KvStore),
//!   [`TcamTable`](halo_tcam::TcamTable), and
//!   [`HaloEngine`](halo_accel::HaloEngine) (whose `lookup_b` /
//!   `lookup_nb` / `snapshot_read` paths must all agree with plain
//!   software lookup and the oracle after every op). Failing sequences
//!   are automatically shrunk to a minimal replayable trace printed as a
//!   seed plus an op list ([`MinimalTrace`]). The churn variant
//!   ([`run_churn_differential`]) replays the streaming traffic
//!   engine's arrival/expiry stream — the insert/remove pressure a
//!   real datapath sees — against the same oracle on every exact-match
//!   backend, auditing invariants every [`AUDIT_EPOCH`] ops. The
//!   wildcard variant ([`run_wildcard_differential`]) replays
//!   range-rule churn and classification streams against a linear-scan
//!   [`RangeOracle`] on every wildcard backend (TSS expansion and
//!   RVH), comparing `(priority, action)` winners.
//! * **Invariant auditor** ([`audit_system`], [`audit_cuckoo`],
//!   [`audit_table_placement`]) — walks
//!   [`MemorySystem`](halo_mem::MemorySystem)/cache state and the table
//!   layout, asserting the structural invariants the paper assumes:
//!   L1/L2/LLC inclusion, directory agreement, at most one owner per
//!   line, lock bits only on lines an in-flight accelerator op holds,
//!   cuckoo length/occupancy consistent with live entries, and every
//!   table line homed on the CHA slice the layout promises. Per-op
//!   auditing inside the harnesses sits behind the cheap `audit` cargo
//!   feature (or the `HALO_AUDIT` environment variable).
//! * **Fault injector** ([`run_fault_injection`]) — from a seeded
//!   schedule, forces adversarial evictions, accelerator-queue stalls,
//!   and mid-displacement cuckoo-move preemptions, then checks the
//!   oracle still agrees and the auditor finds zero violations — turning
//!   "atomicity via lock bit" from an asserted property into a tested
//!   one.
//!
//! # Examples
//!
//! ```
//! use halo_check::{cuckoo_driver, run_differential};
//!
//! run_differential("doc.cuckoo", 2, 60, 256, |ops| cuckoo_driver(ops))
//!     .expect("cuckoo agrees with the oracle");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod audit;
mod churn;
mod fault;
mod oracle;
mod shrink;
mod wildcard;

pub use audit::{
    audit_cuckoo, audit_cuckoo_pp, audit_emoma, audit_system, audit_table_placement, Violation,
};
pub use churn::{audit_exact, churn_driver, churn_ops, run_churn_differential, AUDIT_EPOCH};
pub use fault::{run_fault_injection, FaultBackend, FaultConfig, FaultReport, FaultTarget};
pub use oracle::{
    buggy_cuckoo_driver, cuckoo_driver, cuckoo_pp_driver, emoma_driver, engine_driver,
    flow_table_driver, gen_ops, kvstore_driver, sfh_driver, tcam_driver, Op, KEY_LEN,
};
pub use shrink::{run_differential, shrink_ops, MinimalTrace};
pub use wildcard::{
    run_wildcard_differential, wildcard_driver, wildcard_ops, RangeOracle, WildcardOp,
};

/// Whether per-op invariant auditing is active inside the harnesses:
/// compiled in with the `audit` cargo feature, or switched on at runtime
/// via a non-`0` `HALO_AUDIT` environment variable. Final-state audits
/// run unconditionally.
#[must_use]
pub fn audit_enabled() -> bool {
    cfg!(feature = "audit") || std::env::var_os("HALO_AUDIT").is_some_and(|v| v != "0")
}
