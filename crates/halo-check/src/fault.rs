//! The fault injector: a seeded adversarial schedule over the full
//! engine stack. Between ordinary table ops it forces cache evictions
//! of table lines (dropping lock bits and directory state the hard
//! way), floods a shallow accelerator scoreboard to provoke queue
//! stalls, and preempts two-phase cuckoo moves mid-displacement with
//! lookups and evictions — then requires that the differential oracle
//! still agrees and the invariant auditor finds nothing.
//!
//! The schedule is generic over [`FaultTarget`], so the same adversary
//! drives the baseline [`CuckooTable`], the presence-filtered
//! [`CuckooPlusPlusTable`], and the CBF-steered [`EmomaTable`] — each
//! with its own structure-specific auditor.

use halo_accel::{AcceleratorConfig, HaloEngine};
use halo_mem::{Addr, CoreId, MachineConfig, MemorySystem, SimMemory};
use halo_sim::{Cycle, Cycles, SplitMix64};
use halo_tables::{CuckooPlusPlusTable, CuckooTable, EmomaTable, FlowKey, FlowTable};
use std::collections::HashMap;

use crate::audit::{
    audit_cuckoo, audit_cuckoo_pp, audit_emoma, audit_system, audit_table_placement,
};
use crate::oracle::KEY_LEN;
use crate::{audit_enabled, Violation};

/// Which table implementation a fault-injection run targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultBackend {
    /// The baseline DPDK-style [`CuckooTable`].
    #[default]
    Cuckoo,
    /// [`CuckooPlusPlusTable`] with per-bucket presence filters.
    CuckooPlusPlus,
    /// [`EmomaTable`] with counting-Bloom-filter steering.
    Emoma,
}

impl FaultBackend {
    /// Every backend the injector can target.
    #[must_use]
    pub fn all() -> [FaultBackend; 3] {
        [
            FaultBackend::Cuckoo,
            FaultBackend::CuckooPlusPlus,
            FaultBackend::Emoma,
        ]
    }

    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultBackend::Cuckoo => "cuckoo",
            FaultBackend::CuckooPlusPlus => "cuckoo++",
            FaultBackend::Emoma => "emoma",
        }
    }
}

/// A table the fault injector can adversarially drive: the [`FlowTable`]
/// operations plus the backend's native two-phase move protocol and its
/// structure-specific invariant auditor.
pub trait FaultTarget: FlowTable {
    /// Token representing a move between `begin` and `commit`.
    type Pending;

    /// Starts a two-phase move of `key` toward its alternative bucket;
    /// `None` when the backend (legitimately) refuses.
    fn fault_move_begin(&mut self, mem: &mut SimMemory, key: &FlowKey) -> Option<Self::Pending>;

    /// Completes a move started by
    /// [`fault_move_begin`](Self::fault_move_begin).
    fn fault_move_commit(&mut self, mem: &mut SimMemory, mv: Self::Pending);

    /// The backend's structural auditor (empty on success).
    fn audit(&self, mem: &mut SimMemory) -> Vec<Violation>;
}

impl FaultTarget for CuckooTable {
    type Pending = halo_tables::PendingMove;

    fn fault_move_begin(&mut self, mem: &mut SimMemory, key: &FlowKey) -> Option<Self::Pending> {
        self.cuckoo_move_begin(mem, key)
    }

    fn fault_move_commit(&mut self, mem: &mut SimMemory, mv: Self::Pending) {
        self.cuckoo_move_commit(mem, mv);
    }

    fn audit(&self, mem: &mut SimMemory) -> Vec<Violation> {
        audit_cuckoo(self, mem)
    }
}

impl FaultTarget for CuckooPlusPlusTable {
    type Pending = halo_tables::PendingMovePp;

    fn fault_move_begin(&mut self, mem: &mut SimMemory, key: &FlowKey) -> Option<Self::Pending> {
        self.cuckoo_move_begin(mem, key)
    }

    fn fault_move_commit(&mut self, mem: &mut SimMemory, mv: Self::Pending) {
        self.cuckoo_move_commit(mem, mv);
    }

    fn audit(&self, mem: &mut SimMemory) -> Vec<Violation> {
        audit_cuckoo_pp(self, mem)
    }
}

impl FaultTarget for EmomaTable {
    type Pending = halo_tables::EmomaPendingMove;

    fn fault_move_begin(&mut self, mem: &mut SimMemory, key: &FlowKey) -> Option<Self::Pending> {
        self.move_begin(mem, key)
    }

    fn fault_move_commit(&mut self, mem: &mut SimMemory, mv: Self::Pending) {
        self.move_commit(mem, mv);
    }

    fn audit(&self, mem: &mut SimMemory) -> Vec<Violation> {
        audit_emoma(self, mem)
    }
}

/// Parameters of one fault-injection run. Everything is derived from
/// `seed`, so a report is reproducible from its config alone.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// SplitMix64 seed driving the whole schedule.
    pub seed: u64,
    /// Number of top-level schedule steps.
    pub ops: usize,
    /// Key universe size.
    pub key_space: u16,
    /// Per-step probability of force-evicting a random table line.
    pub evict_chance: f64,
    /// Lookups issued back-to-back at one cycle in a stall burst
    /// (against a scoreboard of depth 4, so bursts must stall).
    pub stall_burst: usize,
    /// Engine lookups run inside each preempted move window, between
    /// `fault_move_begin` and `fault_move_commit`.
    pub move_window: usize,
    /// Table implementation under attack.
    pub backend: FaultBackend,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            ops: 400,
            key_space: 512,
            evict_chance: 0.2,
            stall_burst: 24,
            move_window: 4,
            backend: FaultBackend::Cuckoo,
        }
    }
}

/// What a fault-injection run did and found.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Schedule steps executed.
    pub ops: usize,
    /// Table lines forcibly evicted (locks and residency dropped).
    pub forced_evictions: usize,
    /// Stall bursts issued.
    pub stall_bursts: usize,
    /// Scoreboard stalls the accelerators actually recorded.
    pub scoreboard_stalls: u64,
    /// Two-phase moves preempted by lookups/evictions mid-window.
    pub preempted_moves: usize,
    /// Invariant violations from the final audit (empty on success).
    pub violations: Vec<Violation>,
}

fn key(k: u16) -> FlowKey {
    FlowKey::synthetic(u64::from(k), KEY_LEN)
}

/// Runs the adversarial schedule described by `cfg` against the table
/// implementation `cfg.backend` selects.
///
/// # Errors
///
/// Returns a message naming the step and op if any lookup path
/// (software, `LOOKUP_B`, `LOOKUP_NB`, `SNAPSHOT_READ`) ever disagrees
/// with the model map, or if a per-op audit (when
/// [`audit_enabled`](crate::audit_enabled)) reports a violation.
/// Final-audit violations are returned in the report instead, so tests
/// can assert on them explicitly.
pub fn run_fault_injection(cfg: &FaultConfig) -> Result<FaultReport, String> {
    let mut sys = MemorySystem::new(MachineConfig::small());
    match cfg.backend {
        FaultBackend::Cuckoo => {
            let t = CuckooTable::create(sys.data_mut(), 1 << 9, KEY_LEN);
            run_fault_schedule(cfg, sys, t)
        }
        FaultBackend::CuckooPlusPlus => {
            let t = CuckooPlusPlusTable::create(sys.data_mut(), 1 << 9, KEY_LEN);
            run_fault_schedule(cfg, sys, t)
        }
        FaultBackend::Emoma => {
            let t = EmomaTable::create(sys.data_mut(), 1 << 9, KEY_LEN);
            run_fault_schedule(cfg, sys, t)
        }
    }
}

fn run_fault_schedule<T: FaultTarget>(
    cfg: &FaultConfig,
    mut sys: MemorySystem,
    mut t: T,
) -> Result<FaultReport, String> {
    let mut rng = SplitMix64::new(cfg.seed);
    let accel_cfg = AcceleratorConfig {
        scoreboard_depth: 4,
        ..AcceleratorConfig::default()
    };
    let mut engine = HaloEngine::new(&sys, accel_cfg);
    let table_lines: Vec<Addr> = t.warm_lines();
    let dest = sys.data_mut().alloc_lines(64);
    let mut model: HashMap<u16, u64> = HashMap::new();
    let mut now = Cycle(0);
    let cores = sys.config().cores;

    let mut report = FaultReport {
        ops: cfg.ops,
        forced_evictions: 0,
        stall_bursts: 0,
        scoreboard_stalls: 0,
        preempted_moves: 0,
        violations: Vec::new(),
    };

    for i in 0..cfg.ops {
        if rng.chance(cfg.evict_chance) {
            let victim = table_lines[rng.below(table_lines.len() as u64) as usize];
            sys.force_evict(victim);
            report.forced_evictions += 1;
        }

        let k = rng.below(u64::from(cfg.key_space)) as u16;
        match rng.below(10) {
            0..=2 => {
                let v = rng.below(1 << 40);
                // Backends with placement constraints (EMOMA's cascade
                // budget) may reject a fresh insert; the model skips it
                // too. Updates of present keys must always succeed.
                if t.insert(sys.data_mut(), &key(k), v).is_ok() {
                    model.insert(k, v);
                } else if model.contains_key(&k) {
                    return Err(format!("step {i}: update of present key {k} rejected"));
                }
            }
            3 => {
                let got = t.remove(sys.data_mut(), &key(k));
                let want = model.remove(&k);
                if got != want {
                    return Err(format!(
                        "step {i}: remove({k}) returned {got:?}, oracle says {want:?}"
                    ));
                }
            }
            4 => {
                // Queue stall burst: flood one cycle with blocking
                // lookups; the depth-4 scoreboard must stall, and every
                // result must still match the oracle.
                report.stall_bursts += 1;
                let mut done = now;
                for j in 0..cfg.stall_burst {
                    let bk = rng.below(u64::from(cfg.key_space)) as u16;
                    let (got, d) =
                        engine.lookup_b(&mut sys, CoreId(j % cores), &t, &key(bk), None, now);
                    let want = model.get(&bk).copied();
                    if got != want {
                        return Err(format!(
                            "step {i}: burst lookup({bk}) returned {got:?}, oracle says {want:?}"
                        ));
                    }
                    done = done.max(d);
                }
                now = done;
            }
            5 => {
                // Mid-displacement preemption: begin a two-phase move,
                // then hammer the moving key (and bystanders) through
                // the engine and optionally evict a table line before
                // committing. Only lookups may enter the window — the
                // hardware lock bit is what serializes writers on real
                // HALO.
                if let Some(mv) = t.fault_move_begin(sys.data_mut(), &key(k)) {
                    report.preempted_moves += 1;
                    for w in 0..cfg.move_window {
                        if rng.chance(0.5) {
                            let victim = table_lines[rng.below(table_lines.len() as u64) as usize];
                            sys.force_evict(victim);
                            report.forced_evictions += 1;
                        }
                        let probe = if w % 2 == 0 {
                            k
                        } else {
                            rng.below(u64::from(cfg.key_space)) as u16
                        };
                        let want = model.get(&probe).copied();
                        let sw = t.lookup(sys.data_mut(), &key(probe));
                        let (hw, d) = engine.lookup_b(
                            &mut sys,
                            CoreId(w % cores),
                            &t,
                            &key(probe),
                            None,
                            now,
                        );
                        if sw != want || hw != want {
                            return Err(format!(
                                "step {i}: mid-move lookup({probe}) sw {sw:?} hw {hw:?}, \
                                 oracle says {want:?}"
                            ));
                        }
                        now = d;
                    }
                    t.fault_move_commit(sys.data_mut(), mv);
                    let got = t.lookup(sys.data_mut(), &key(k));
                    let want = model.get(&k).copied();
                    if got != want {
                        return Err(format!(
                            "step {i}: post-commit lookup({k}) returned {got:?}, \
                             oracle says {want:?}"
                        ));
                    }
                }
            }
            _ => {
                let want = model.get(&k).copied();
                let (b, done_b) =
                    engine.lookup_b(&mut sys, CoreId(i % cores), &t, &key(k), None, now);
                let h =
                    engine.lookup_nb(&mut sys, CoreId(i % cores), &t, &key(k), None, dest, done_b);
                let (word, done_s) =
                    engine.snapshot_read(&mut sys, CoreId(i % cores), dest, h.result_at);
                if b != want || h.result != want || HaloEngine::decode_nb(word) != Some(want) {
                    return Err(format!(
                        "step {i}: lookup({k}) B {b:?} NB {:?} snapshot {:?}, oracle says {want:?}",
                        h.result,
                        HaloEngine::decode_nb(word)
                    ));
                }
                now = done_s.max(h.result_at);
            }
        }

        // Software cross-check after every step, faults and all.
        let sw = t.lookup(sys.data_mut(), &key(k));
        let want = model.get(&k).copied();
        if sw != want {
            return Err(format!(
                "step {i}: post-step lookup({k}) returned {sw:?}, oracle says {want:?}"
            ));
        }

        now += Cycles(8);
        sys.hw_unlock_expired(now);
        if audit_enabled() {
            if let Some(v) = audit_system(&sys, now)
                .into_iter()
                .chain(t.audit(sys.data_mut()))
                .next()
            {
                return Err(format!("step {i}: audit violation: {v}"));
            }
        }
    }

    sys.hw_unlock_expired(now);
    report.scoreboard_stalls = engine
        .accelerators()
        .iter()
        .map(halo_accel::HaloAccelerator::scoreboard_stalls)
        .sum();
    report.violations = audit_system(&sys, now);
    report.violations.extend(t.audit(sys.data_mut()));
    report.violations.extend(audit_table_placement(&t, &sys));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_sim::point_seed;

    #[test]
    fn default_schedule_survives_faults() {
        let cfg = FaultConfig {
            seed: point_seed("fault.smoke", 0),
            ops: 120,
            ..FaultConfig::default()
        };
        let report = run_fault_injection(&cfg).expect("oracle must agree under faults");
        assert!(report.forced_evictions > 0, "schedule never evicted");
        assert_eq!(report.violations, vec![], "auditor found violations");
    }

    #[test]
    fn every_backend_survives_faults() {
        for (i, backend) in FaultBackend::all().into_iter().enumerate() {
            let cfg = FaultConfig {
                seed: point_seed("fault.backends", i as u64),
                ops: 120,
                backend,
                ..FaultConfig::default()
            };
            let report = run_fault_injection(&cfg)
                .unwrap_or_else(|e| panic!("{} diverged under faults: {e}", backend.name()));
            assert!(
                report.forced_evictions > 0,
                "{} schedule never evicted",
                backend.name()
            );
            assert_eq!(
                report.violations,
                vec![],
                "auditor found violations on {}",
                backend.name()
            );
        }
    }

    #[test]
    fn report_is_reproducible_from_config() {
        let cfg = FaultConfig {
            seed: point_seed("fault.repro", 0),
            ops: 80,
            ..FaultConfig::default()
        };
        let a = run_fault_injection(&cfg).unwrap();
        let b = run_fault_injection(&cfg).unwrap();
        assert_eq!(a.forced_evictions, b.forced_evictions);
        assert_eq!(a.stall_bursts, b.stall_bursts);
        assert_eq!(a.preempted_moves, b.preempted_moves);
        assert_eq!(a.scoreboard_stalls, b.scoreboard_stalls);
    }
}
