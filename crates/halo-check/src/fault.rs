//! The fault injector: a seeded adversarial schedule over the full
//! engine stack. Between ordinary table ops it forces cache evictions
//! of table lines (dropping lock bits and directory state the hard
//! way), floods a shallow accelerator scoreboard to provoke queue
//! stalls, and preempts two-phase cuckoo moves mid-displacement with
//! lookups and evictions — then requires that the differential oracle
//! still agrees and the invariant auditor finds nothing.

use halo_accel::{AcceleratorConfig, HaloEngine};
use halo_mem::{Addr, CoreId, MachineConfig, MemorySystem};
use halo_sim::{Cycle, Cycles, SplitMix64};
use halo_tables::{CuckooTable, FlowKey};
use std::collections::HashMap;

use crate::audit::{audit_cuckoo, audit_system, audit_table_placement};
use crate::oracle::KEY_LEN;
use crate::{audit_enabled, Violation};

/// Parameters of one fault-injection run. Everything is derived from
/// `seed`, so a report is reproducible from its config alone.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// SplitMix64 seed driving the whole schedule.
    pub seed: u64,
    /// Number of top-level schedule steps.
    pub ops: usize,
    /// Key universe size.
    pub key_space: u16,
    /// Per-step probability of force-evicting a random table line.
    pub evict_chance: f64,
    /// Lookups issued back-to-back at one cycle in a stall burst
    /// (against a scoreboard of depth 4, so bursts must stall).
    pub stall_burst: usize,
    /// Engine lookups run inside each preempted move window, between
    /// `cuckoo_move_begin` and `cuckoo_move_commit`.
    pub move_window: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            ops: 400,
            key_space: 512,
            evict_chance: 0.2,
            stall_burst: 24,
            move_window: 4,
        }
    }
}

/// What a fault-injection run did and found.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Schedule steps executed.
    pub ops: usize,
    /// Table lines forcibly evicted (locks and residency dropped).
    pub forced_evictions: usize,
    /// Stall bursts issued.
    pub stall_bursts: usize,
    /// Scoreboard stalls the accelerators actually recorded.
    pub scoreboard_stalls: u64,
    /// Two-phase moves preempted by lookups/evictions mid-window.
    pub preempted_moves: usize,
    /// Invariant violations from the final audit (empty on success).
    pub violations: Vec<Violation>,
}

fn key(k: u16) -> FlowKey {
    FlowKey::synthetic(u64::from(k), KEY_LEN)
}

/// Runs the adversarial schedule described by `cfg`.
///
/// # Errors
///
/// Returns a message naming the step and op if any lookup path
/// (software, `LOOKUP_B`, `LOOKUP_NB`, `SNAPSHOT_READ`) ever disagrees
/// with the model map, or if a per-op audit (when
/// [`audit_enabled`](crate::audit_enabled)) reports a violation.
/// Final-audit violations are returned in the report instead, so tests
/// can assert on them explicitly.
pub fn run_fault_injection(cfg: &FaultConfig) -> Result<FaultReport, String> {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut sys = MemorySystem::new(MachineConfig::small());
    let accel_cfg = AcceleratorConfig {
        scoreboard_depth: 4,
        ..AcceleratorConfig::default()
    };
    let mut engine = HaloEngine::new(&sys, accel_cfg);
    let mut t = CuckooTable::create(sys.data_mut(), 1 << 9, KEY_LEN);
    let table_lines: Vec<Addr> = t.all_lines().collect();
    let dest = sys.data_mut().alloc_lines(64);
    let mut model: HashMap<u16, u64> = HashMap::new();
    let mut now = Cycle(0);
    let cores = sys.config().cores;

    let mut report = FaultReport {
        ops: cfg.ops,
        forced_evictions: 0,
        stall_bursts: 0,
        scoreboard_stalls: 0,
        preempted_moves: 0,
        violations: Vec::new(),
    };

    for i in 0..cfg.ops {
        if rng.chance(cfg.evict_chance) {
            let victim = table_lines[rng.below(table_lines.len() as u64) as usize];
            sys.force_evict(victim);
            report.forced_evictions += 1;
        }

        let k = rng.below(u64::from(cfg.key_space)) as u16;
        match rng.below(10) {
            0..=2 => {
                let v = rng.below(1 << 40);
                if t.insert(sys.data_mut(), &key(k), v).is_err() {
                    return Err(format!("step {i}: insert({k}) rejected with headroom"));
                }
                model.insert(k, v);
            }
            3 => {
                let got = t.remove(sys.data_mut(), &key(k));
                let want = model.remove(&k);
                if got != want {
                    return Err(format!(
                        "step {i}: remove({k}) returned {got:?}, oracle says {want:?}"
                    ));
                }
            }
            4 => {
                // Queue stall burst: flood one cycle with blocking
                // lookups; the depth-4 scoreboard must stall, and every
                // result must still match the oracle.
                report.stall_bursts += 1;
                let mut done = now;
                for j in 0..cfg.stall_burst {
                    let bk = rng.below(u64::from(cfg.key_space)) as u16;
                    let (got, d) =
                        engine.lookup_b(&mut sys, CoreId(j % cores), &t, &key(bk), None, now);
                    let want = model.get(&bk).copied();
                    if got != want {
                        return Err(format!(
                            "step {i}: burst lookup({bk}) returned {got:?}, oracle says {want:?}"
                        ));
                    }
                    done = done.max(d);
                }
                now = done;
            }
            5 => {
                // Mid-displacement preemption: begin a two-phase move,
                // then hammer the moving key (and bystanders) through
                // the engine and optionally evict a table line before
                // committing. Only lookups may enter the window — the
                // hardware lock bit is what serializes writers on real
                // HALO.
                if let Some(mv) = t.cuckoo_move_begin(sys.data_mut(), &key(k)) {
                    report.preempted_moves += 1;
                    for w in 0..cfg.move_window {
                        if rng.chance(0.5) {
                            let victim = table_lines[rng.below(table_lines.len() as u64) as usize];
                            sys.force_evict(victim);
                            report.forced_evictions += 1;
                        }
                        let probe = if w % 2 == 0 {
                            k
                        } else {
                            rng.below(u64::from(cfg.key_space)) as u16
                        };
                        let want = model.get(&probe).copied();
                        let sw = t.lookup(sys.data_mut(), &key(probe));
                        let (hw, d) = engine.lookup_b(
                            &mut sys,
                            CoreId(w % cores),
                            &t,
                            &key(probe),
                            None,
                            now,
                        );
                        if sw != want || hw != want {
                            return Err(format!(
                                "step {i}: mid-move lookup({probe}) sw {sw:?} hw {hw:?}, \
                                 oracle says {want:?}"
                            ));
                        }
                        now = d;
                    }
                    t.cuckoo_move_commit(sys.data_mut(), mv);
                    let got = t.lookup(sys.data_mut(), &key(k));
                    let want = model.get(&k).copied();
                    if got != want {
                        return Err(format!(
                            "step {i}: post-commit lookup({k}) returned {got:?}, \
                             oracle says {want:?}"
                        ));
                    }
                }
            }
            _ => {
                let want = model.get(&k).copied();
                let (b, done_b) =
                    engine.lookup_b(&mut sys, CoreId(i % cores), &t, &key(k), None, now);
                let h =
                    engine.lookup_nb(&mut sys, CoreId(i % cores), &t, &key(k), None, dest, done_b);
                let (word, done_s) =
                    engine.snapshot_read(&mut sys, CoreId(i % cores), dest, h.result_at);
                if b != want || h.result != want || HaloEngine::decode_nb(word) != Some(want) {
                    return Err(format!(
                        "step {i}: lookup({k}) B {b:?} NB {:?} snapshot {:?}, oracle says {want:?}",
                        h.result,
                        HaloEngine::decode_nb(word)
                    ));
                }
                now = done_s.max(h.result_at);
            }
        }

        // Software cross-check after every step, faults and all.
        let sw = t.lookup(sys.data_mut(), &key(k));
        let want = model.get(&k).copied();
        if sw != want {
            return Err(format!(
                "step {i}: post-step lookup({k}) returned {sw:?}, oracle says {want:?}"
            ));
        }

        now += Cycles(8);
        sys.hw_unlock_expired(now);
        if audit_enabled() {
            let found = audit_system(&sys, now);
            if let Some(v) = found.first() {
                return Err(format!("step {i}: audit violation: {v}"));
            }
        }
    }

    sys.hw_unlock_expired(now);
    report.scoreboard_stalls = engine
        .accelerators()
        .iter()
        .map(halo_accel::HaloAccelerator::scoreboard_stalls)
        .sum();
    report.violations = audit_system(&sys, now);
    report.violations.extend(audit_cuckoo(&t, sys.data_mut()));
    report.violations.extend(audit_table_placement(&t, &sys));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_sim::point_seed;

    #[test]
    fn default_schedule_survives_faults() {
        let cfg = FaultConfig {
            seed: point_seed("fault.smoke", 0),
            ops: 120,
            ..FaultConfig::default()
        };
        let report = run_fault_injection(&cfg).expect("oracle must agree under faults");
        assert!(report.forced_evictions > 0, "schedule never evicted");
        assert_eq!(report.violations, vec![], "auditor found violations");
    }

    #[test]
    fn report_is_reproducible_from_config() {
        let cfg = FaultConfig {
            seed: point_seed("fault.repro", 0),
            ops: 80,
            ..FaultConfig::default()
        };
        let a = run_fault_injection(&cfg).unwrap();
        let b = run_fault_injection(&cfg).unwrap();
        assert_eq!(a.forced_evictions, b.forced_evictions);
        assert_eq!(a.stall_bursts, b.stall_bursts);
        assert_eq!(a.preempted_moves, b.preempted_moves);
        assert_eq!(a.scoreboard_stalls, b.scoreboard_stalls);
    }
}
