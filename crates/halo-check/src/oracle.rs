//! The differential oracle: SplitMix64-seeded op streams replayed
//! against each target structure *and* a trivially-correct model map,
//! with agreement checked after every op.
//!
//! Each driver is a plain function from an op slice to an optional
//! divergence message, so the shrinker can re-run it on arbitrary
//! subsequences. Drivers build all state from scratch per call and are
//! fully deterministic.

use halo_accel::{AcceleratorConfig, HaloEngine};
use halo_kvstore::KvStore;
use halo_mem::{CoreId, MachineConfig, MemorySystem, SimMemory};
use halo_sim::{Cycle, Cycles, SplitMix64};
use halo_tables::{
    bucket_pair, hash_key, signature, CuckooPlusPlusTable, CuckooTable, EmomaTable, FlowKey,
    FlowTable, SfhTable, ENTRIES_PER_BUCKET, SEED_PRIMARY,
};
use halo_tcam::TcamTable;
use std::collections::HashMap;
use std::fmt;

use crate::audit::{
    audit_cuckoo, audit_cuckoo_pp, audit_emoma, audit_system, audit_table_placement,
};
use crate::audit_enabled;

/// Key length (bytes) of every generated flow key.
pub const KEY_LEN: usize = 13;

/// Values are generated below this bound so every value is encodable by
/// the `LOOKUP_NB` destination-word scheme (which reserves the all-ones
/// miss sentinel and the zero pending marker) and leaves headroom for
/// the TCAM driver's key-tagged action encoding.
const VALUE_BOUND: u64 = 1 << 40;

/// One operation of a differential test. The same stream drives every
/// target; structures without a native analogue degrade an op to a
/// lookup (e.g. `Move` on the SFH table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert or update `key -> value`.
    Insert(u16, u64),
    /// Remove the key (a lookup on remove-less targets).
    Remove(u16),
    /// Look the key up and compare with the oracle.
    Lookup(u16),
    /// Relocate the key's entry to its alternative bucket, then verify
    /// the lookup (cuckoo-backed targets; a plain lookup elsewhere).
    Move(u16),
}

impl Op {
    fn key_id(self) -> u16 {
        match self {
            Op::Insert(k, _) | Op::Remove(k) | Op::Lookup(k) | Op::Move(k) => k,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Insert(k, v) => write!(f, "Insert({k}, {v:#x})"),
            Op::Remove(k) => write!(f, "Remove({k})"),
            Op::Lookup(k) => write!(f, "Lookup({k})"),
            Op::Move(k) => write!(f, "Move({k})"),
        }
    }
}

/// Generates `n` ops over a `key_space`-sized key universe
/// (insert-biased so tables actually fill).
pub fn gen_ops(rng: &mut SplitMix64, n: usize, key_space: u16) -> Vec<Op> {
    (0..n)
        .map(|_| {
            let k = rng.below(u64::from(key_space.max(1))) as u16;
            match rng.below(8) {
                0..=2 => Op::Insert(k, rng.below(VALUE_BOUND)),
                3 => Op::Remove(k),
                4 => Op::Move(k),
                _ => Op::Lookup(k),
            }
        })
        .collect()
}

fn key(k: u16) -> FlowKey {
    FlowKey::synthetic(u64::from(k), KEY_LEN)
}

fn diverge(i: usize, op: Op, what: &str, got: impl fmt::Debug, want: impl fmt::Debug) -> String {
    format!("op {i} ({op}): {what} returned {got:?}, oracle says {want:?}")
}

/// Replays `ops` against a [`CuckooTable`] and a `HashMap` oracle,
/// checking lookup results, remove results, length, and free-list
/// accounting after every op. Returns the first divergence, if any.
#[must_use]
pub fn cuckoo_driver(ops: &[Op]) -> Option<String> {
    let mut mem = SimMemory::new();
    let mut t = CuckooTable::create(&mut mem, 1 << 10, KEY_LEN); // 8192 slots
    let mut model: HashMap<u16, u64> = HashMap::new();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert(k, v) => {
                if t.insert(&mut mem, &key(k), v).is_err() {
                    return Some(format!("op {i} ({op}): insert rejected with headroom"));
                }
                model.insert(k, v);
            }
            Op::Remove(k) => {
                let got = t.remove(&mut mem, &key(k));
                let want = model.remove(&k);
                if got != want {
                    return Some(diverge(i, op, "remove", got, want));
                }
            }
            Op::Lookup(k) | Op::Move(k) => {
                if matches!(op, Op::Move(_)) {
                    t.cuckoo_move(&mut mem, &key(k));
                }
                let got = t.lookup(&mem, &key(k));
                let want = model.get(&k).copied();
                if got != want {
                    return Some(diverge(i, op, "lookup", got, want));
                }
            }
        }
        if t.len() != model.len() {
            return Some(diverge(i, op, "len", t.len(), model.len()));
        }
        if t.len() + t.free_slots() != t.capacity() {
            return Some(format!(
                "op {i} ({op}): occupancy accounting broken: len {} + free {} != capacity {}",
                t.len(),
                t.free_slots(),
                t.capacity()
            ));
        }
    }
    if let Some(v) = audit_cuckoo(&t, &mut mem).into_iter().next() {
        return Some(format!("final audit: {v}"));
    }
    None
}

/// Replays `ops` against a [`CuckooPlusPlusTable`] and a `HashMap`
/// oracle: the [`flow_table_driver`] checks plus the native cuckoo
/// notions the trait cannot express — `Move` exercises the real
/// two-phase displacement, free-slot accounting is checked after every
/// op, negative lookups are spot-checked to take a **single** bucket
/// probe (the presence filter's whole point), and the filter-exactness
/// auditor runs per-op under [`audit_enabled`](crate::audit_enabled)
/// and always at the end.
#[must_use]
pub fn cuckoo_pp_driver(ops: &[Op]) -> Option<String> {
    let mut mem = SimMemory::new();
    let mut t = CuckooPlusPlusTable::create(&mut mem, 1 << 10, KEY_LEN); // 8192 slots
    let mut model: HashMap<u16, u64> = HashMap::new();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert(k, v) => {
                if t.insert(&mut mem, &key(k), v).is_err() {
                    return Some(format!("op {i} ({op}): insert rejected with headroom"));
                }
                model.insert(k, v);
            }
            Op::Remove(k) => {
                let got = t.remove(&mut mem, &key(k));
                let want = model.remove(&k);
                if got != want {
                    return Some(diverge(i, op, "remove", got, want));
                }
                // The satellite regression, continuously: once a key is
                // gone its negative lookup must cost one bucket probe.
                if want.is_some() {
                    let tr = t.lookup_traced(&mem, &key(k), false);
                    let probes = tr
                        .steps
                        .iter()
                        .filter(|s| matches!(s, halo_tables::TraceStep::LoadBucket(_)))
                        .count();
                    if tr.result.is_some() || probes != 1 {
                        return Some(format!(
                            "op {i} ({op}): removed key still hot: result {:?}, {probes} probes",
                            tr.result
                        ));
                    }
                }
            }
            Op::Lookup(k) | Op::Move(k) => {
                if matches!(op, Op::Move(_)) {
                    t.cuckoo_move(&mut mem, &key(k));
                }
                let got = t.lookup(&mem, &key(k));
                let want = model.get(&k).copied();
                if got != want {
                    return Some(diverge(i, op, "lookup", got, want));
                }
            }
        }
        if t.len() != model.len() {
            return Some(diverge(i, op, "len", t.len(), model.len()));
        }
        if t.len() + t.free_slots() != t.capacity() {
            return Some(format!(
                "op {i} ({op}): occupancy accounting broken: len {} + free {} != capacity {}",
                t.len(),
                t.free_slots(),
                t.capacity()
            ));
        }
        if audit_enabled() {
            if let Some(v) = audit_cuckoo_pp(&t, &mut mem).into_iter().next() {
                return Some(format!("op {i} ({op}): audit violation: {v}"));
            }
        }
    }
    if let Some(v) = audit_cuckoo_pp(&t, &mut mem).into_iter().next() {
        return Some(format!("final audit: {v}"));
    }
    None
}

/// Replays `ops` against an [`EmomaTable`] and a `HashMap` oracle.
/// `Move` exercises the steering-aware two-phase displacement (which
/// may legitimately refuse, e.g. when moving home would strand the key
/// CBF-positive); inserts that exhaust the cascade budget are skipped
/// in the model too, unless the key is present (updates must succeed in
/// place). Every positive lookup is required to take exactly **one**
/// bucket probe — the EMOMA property — and the steering/CBF/tracking
/// auditor runs per-op under [`audit_enabled`](crate::audit_enabled)
/// and always at the end.
#[must_use]
pub fn emoma_driver(ops: &[Op]) -> Option<String> {
    let mut mem = SimMemory::new();
    let mut t = EmomaTable::create(&mut mem, 1 << 10, KEY_LEN); // 8192 slots
    let mut model: HashMap<u16, u64> = HashMap::new();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert(k, v) => {
                if t.insert(&mut mem, &key(k), v).is_ok() {
                    model.insert(k, v);
                } else if model.contains_key(&k) {
                    return Some(format!("op {i} ({op}): update of present key rejected"));
                }
            }
            Op::Remove(k) => {
                let got = t.remove(&mut mem, &key(k));
                let want = model.remove(&k);
                if got != want {
                    return Some(diverge(i, op, "remove", got, want));
                }
            }
            Op::Lookup(k) | Op::Move(k) => {
                if matches!(op, Op::Move(_)) {
                    t.displace(&mut mem, &key(k));
                }
                let tr = t.lookup_traced(&mem, &key(k), false);
                let want = model.get(&k).copied();
                if tr.result != want {
                    return Some(diverge(i, op, "lookup", tr.result, want));
                }
                let probes = tr
                    .steps
                    .iter()
                    .filter(|s| matches!(s, halo_tables::TraceStep::LoadBucket(_)))
                    .count();
                if probes != 1 {
                    return Some(format!(
                        "op {i} ({op}): EMOMA lookup took {probes} bucket probes"
                    ));
                }
            }
        }
        if t.len() != model.len() {
            return Some(diverge(i, op, "len", t.len(), model.len()));
        }
        if t.len() + t.free_slots() != t.capacity() {
            return Some(format!(
                "op {i} ({op}): occupancy accounting broken: len {} + free {} != capacity {}",
                t.len(),
                t.free_slots(),
                t.capacity()
            ));
        }
        if audit_enabled() {
            if let Some(v) = audit_emoma(&t, &mut mem).into_iter().next() {
                return Some(format!("op {i} ({op}): audit violation: {v}"));
            }
        }
    }
    if let Some(v) = audit_emoma(&t, &mut mem).into_iter().next() {
        return Some(format!("final audit: {v}"));
    }
    None
}

/// Replays `ops` against any [`FlowTable`] implementation through the
/// trait alone, so one differential driver covers every table backend.
///
/// Semantics are degraded per the backend's capabilities, exactly as
/// the tuple space does: `Remove` becomes a lookup when
/// [`FlowTable::supports_remove`] is false, and `Move` (a cuckoo-only
/// notion) is always a lookup at the trait level. Inserts that fail on
/// a backend with limited headroom (e.g. an SFH bucket overflowing) are
/// skipped in the model too — unless the key is already present, in
/// which case an update must succeed in place.
#[must_use]
pub fn flow_table_driver<T: FlowTable>(
    mem: &mut SimMemory,
    table: &mut T,
    ops: &[Op],
) -> Option<String> {
    let mut model: HashMap<u16, u64> = HashMap::new();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert(k, v) => {
                if table.insert(mem, &key(k), v).is_ok() {
                    model.insert(k, v);
                } else if model.contains_key(&k) {
                    // A present key always updates in place.
                    return Some(format!("op {i} ({op}): update of present key rejected"));
                }
            }
            Op::Remove(k) if table.supports_remove() => {
                let got = table.remove(mem, &key(k));
                let want = model.remove(&k);
                if got != want {
                    return Some(diverge(i, op, "remove", got, want));
                }
            }
            Op::Remove(k) | Op::Lookup(k) | Op::Move(k) => {
                let got = table.lookup(mem, &key(k));
                let want = model.get(&k).copied();
                if got != want {
                    return Some(diverge(i, op, "lookup", got, want));
                }
            }
        }
        if table.len() != model.len() {
            return Some(diverge(i, op, "len", table.len(), model.len()));
        }
    }
    None
}

/// Replays `ops` against an [`SfhTable`] via [`flow_table_driver`]. The
/// SFH has no remove and no cuckoo move, so those ops degrade to
/// lookups; inserts a full bucket rejects are skipped in the oracle too.
#[must_use]
pub fn sfh_driver(ops: &[Op]) -> Option<String> {
    let mut mem = SimMemory::new();
    let mut t = SfhTable::create(&mut mem, 1 << 12, KEY_LEN);
    flow_table_driver(&mut mem, &mut t, ops)
}

/// Replays `ops` against a [`KvStore`] (cuckoo-indexed log store) with
/// 8-byte values derived from the op value.
#[must_use]
pub fn kvstore_driver(ops: &[Op]) -> Option<String> {
    let mut sys = MemorySystem::new(MachineConfig::small());
    let mut kv = KvStore::new(&mut sys, 4096);
    let mut model: HashMap<u16, u64> = HashMap::new();
    for (i, &op) in ops.iter().enumerate() {
        let kbytes = format!("k{}", op.key_id()).into_bytes();
        match op {
            Op::Insert(k, v) => {
                if let Err(e) = kv.set(&mut sys, &kbytes, &v.to_le_bytes()) {
                    return Some(format!("op {i} ({op}): set failed: {e:?}"));
                }
                model.insert(k, v);
            }
            Op::Remove(k) => {
                let got = kv.delete(&mut sys, &kbytes);
                let want = model.remove(&k).is_some();
                if got != want {
                    return Some(diverge(i, op, "delete", got, want));
                }
            }
            Op::Lookup(k) | Op::Move(k) => {
                let got = kv.get(&mut sys, &kbytes);
                let want = model.get(&k).map(|v| v.to_le_bytes().to_vec());
                if got != want {
                    return Some(diverge(i, op, "get", got, want));
                }
            }
        }
        if kv.len() != model.len() {
            return Some(diverge(i, op, "len", kv.len(), model.len()));
        }
    }
    None
}

/// Replays `ops` against a [`TcamTable`] via [`flow_table_driver`]:
/// the trait impl keeps one exact (all-ones-mask) entry per live key,
/// updating in place on re-insert and removing it on `Remove`.
#[must_use]
pub fn tcam_driver(ops: &[Op]) -> Option<String> {
    let mut mem = SimMemory::new();
    let mut t = TcamTable::new(1 << 16, 4);
    flow_table_driver(&mut mem, &mut t, ops)
}

/// Replays `ops` against the full [`HaloEngine`] stack over a
/// [`CuckooTable`] in a small simulated machine. After every op the
/// op's key is resolved four ways — plain software lookup, `LOOKUP_B`,
/// `LOOKUP_NB` (decoding the destination word), and `SNAPSHOT_READ` of
/// that word — and all four must agree with the oracle. A final
/// invariant audit always runs; with [`audit_enabled`](crate::audit_enabled)
/// the auditor also walks the machine after every op.
#[must_use]
pub fn engine_driver(ops: &[Op]) -> Option<String> {
    let mut sys = MemorySystem::new(MachineConfig::small());
    let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
    let mut t = CuckooTable::create(sys.data_mut(), 1 << 9, KEY_LEN); // 4096 slots
    let dest = sys.data_mut().alloc_lines(64);
    let mut model: HashMap<u16, u64> = HashMap::new();
    let mut now = Cycle(0);
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert(k, v) => {
                if t.insert(sys.data_mut(), &key(k), v).is_err() {
                    return Some(format!("op {i} ({op}): insert rejected with headroom"));
                }
                model.insert(k, v);
            }
            Op::Remove(k) => {
                let got = t.remove(sys.data_mut(), &key(k));
                let want = model.remove(&k);
                if got != want {
                    return Some(diverge(i, op, "remove", got, want));
                }
            }
            Op::Move(k) => {
                t.cuckoo_move(sys.data_mut(), &key(k));
            }
            Op::Lookup(_) => {}
        }

        let k = op.key_id();
        let fk = key(k);
        let want = model.get(&k).copied();
        let core = CoreId(i % sys.config().cores);

        let sw = t.lookup(sys.data_mut(), &fk);
        if sw != want {
            return Some(diverge(i, op, "software lookup", sw, want));
        }
        let (b, done_b) = engine.lookup_b(&mut sys, core, &t, &fk, None, now);
        if b != want {
            return Some(diverge(i, op, "LOOKUP_B", b, want));
        }
        if done_b <= now {
            return Some(format!("op {i} ({op}): LOOKUP_B completed acausally"));
        }
        let h = engine.lookup_nb(&mut sys, core, &t, &fk, None, dest, done_b);
        if h.result != want {
            return Some(diverge(i, op, "LOOKUP_NB", h.result, want));
        }
        let (word, done_s) = engine.snapshot_read(&mut sys, core, dest, h.result_at);
        if HaloEngine::decode_nb(word) != Some(want) {
            return Some(diverge(
                i,
                op,
                "SNAPSHOT_READ decode",
                HaloEngine::decode_nb(word),
                Some(want),
            ));
        }
        now = done_s.max(h.result_at) + Cycles(16);
        sys.hw_unlock_expired(now);

        if audit_enabled() {
            if let Some(v) = audit_system(&sys, now)
                .into_iter()
                .chain(audit_cuckoo(&t, sys.data_mut()))
                .next()
            {
                return Some(format!("op {i} ({op}): audit violation: {v}"));
            }
        }
    }
    sys.hw_unlock_expired(now);
    if let Some(v) = audit_system(&sys, now)
        .into_iter()
        .chain(audit_cuckoo(&t, sys.data_mut()))
        .chain(audit_table_placement(&t, &sys))
        .next()
    {
        return Some(format!("final audit violation: {v}"));
    }
    None
}

/// A deliberately broken cuckoo "implementation" for the mutation smoke
/// check: `Remove` clears the bucket entry directly through the layout
/// (as a buggy implementation would) without releasing the key-value
/// slot or fixing the length bookkeeping — exactly the occupancy-leak
/// bug class the oracle must catch and shrink to a tiny trace.
#[must_use]
pub fn buggy_cuckoo_driver(ops: &[Op]) -> Option<String> {
    let mut mem = SimMemory::new();
    let mut t = CuckooTable::create(&mut mem, 1 << 10, KEY_LEN);
    let mut model: HashMap<u16, u64> = HashMap::new();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert(k, v) => {
                if t.insert(&mut mem, &key(k), v).is_err() {
                    return Some(format!("op {i} ({op}): insert rejected with headroom"));
                }
                model.insert(k, v);
            }
            Op::Remove(k) => {
                // The bug: clear the entry, leak the slot and the length.
                let fk = key(k);
                let (b1, b2) = bucket_pair(&fk, t.meta().buckets);
                let sig = signature(hash_key(&fk, SEED_PRIMARY));
                'found: for b in [b1, b2] {
                    for e in 0..ENTRIES_PER_BUCKET {
                        let (s, idx) = t.meta().read_entry(&mem, b, e);
                        if s == sig && t.meta().read_kv_key(&mem, idx) == fk {
                            t.meta().clear_entry(&mut mem, b, e);
                            break 'found;
                        }
                    }
                }
                model.remove(&k);
            }
            Op::Lookup(k) | Op::Move(k) => {
                if matches!(op, Op::Move(_)) {
                    t.cuckoo_move(&mut mem, &key(k));
                }
                let got = t.lookup(&mem, &key(k));
                let want = model.get(&k).copied();
                if got != want {
                    return Some(diverge(i, op, "lookup", got, want));
                }
            }
        }
        if t.len() != model.len() {
            return Some(diverge(i, op, "len", t.len(), model.len()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_sim::point_seed;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let seed = point_seed("oracle.gen", 0);
        let a = gen_ops(&mut SplitMix64::new(seed), 50, 128);
        let b = gen_ops(&mut SplitMix64::new(seed), 50, 128);
        assert_eq!(a, b);
        let c = gen_ops(&mut SplitMix64::new(seed ^ 1), 50, 128);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn drivers_pass_a_quick_stream() {
        let mut rng = SplitMix64::new(point_seed("oracle.smoke", 0));
        let ops = gen_ops(&mut rng, 40, 64);
        assert_eq!(cuckoo_driver(&ops), None);
        assert_eq!(cuckoo_pp_driver(&ops), None);
        assert_eq!(emoma_driver(&ops), None);
        assert_eq!(sfh_driver(&ops), None);
        assert_eq!(tcam_driver(&ops), None);
    }

    /// The trait-level driver accepts every backend, including the
    /// cuckoo table (whose specialized driver additionally checks
    /// free-slot accounting and cuckoo moves).
    #[test]
    fn generic_driver_covers_the_cuckoo_backend() {
        let mut rng = SplitMix64::new(point_seed("oracle.generic", 0));
        let ops = gen_ops(&mut rng, 60, 64);
        let mut mem = SimMemory::new();
        let mut t = CuckooTable::create(&mut mem, 1 << 10, KEY_LEN);
        assert_eq!(flow_table_driver(&mut mem, &mut t, &ops), None);
    }

    #[test]
    fn buggy_driver_diverges_on_insert_then_remove() {
        let ops = [Op::Insert(3, 7), Op::Remove(3)];
        assert!(buggy_cuckoo_driver(&ops).is_some(), "leak must be caught");
        assert_eq!(cuckoo_driver(&ops), None, "real table must pass");
    }
}
