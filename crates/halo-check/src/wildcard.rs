//! Wildcard-backend differential: churn/flood streams of range rules
//! and classifications replayed against a linear-scan oracle on every
//! [`WildcardBackend`].
//!
//! The exact-match differentials validate one tuple's table; this
//! driver validates the whole wildcard seam — TSS prefix expansion
//! (max-priority covering entries under overlap) and RVH marker
//! tables (anchor-vector candidate lists) must both agree with a
//! priority-ordered linear scan on every insert, remove, and
//! classification. Backends are compared on `(priority, action)`, not
//! probe indices, since probe numbering is backend-private. Rulesets
//! come from [`halo_nf::generate_ruleset`] with unique priorities, so
//! backends cannot legally diverge on tie-breaks.

use std::fmt;

use halo_classify::{RangeRule, NUM_FIELDS};
use halo_datapath::{TableBackend, WildcardBackend, WildcardTable};
use halo_mem::SimMemory;
use halo_nf::{generate_ruleset, sample_point, RulesetShape};
use halo_sim::{point_seed, SplitMix64};
use halo_tables::FlowKey;

use crate::churn::AUDIT_EPOCH;
use crate::shrink::{shrink_ops, MinimalTrace};

/// One operation of a wildcard differential stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WildcardOp {
    /// Install (or replace) a range rule.
    Insert(RangeRule),
    /// Remove the rule with exactly these intervals.
    Remove(RangeRule),
    /// Classify a key and compare `(priority, action)` with the oracle.
    Classify(FlowKey),
}

impl fmt::Display for WildcardOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WildcardOp::Insert(r) => write!(f, "insert(prio {}, act {})", r.priority, r.action),
            WildcardOp::Remove(r) => write!(f, "remove(prio {}, act {})", r.priority, r.action),
            WildcardOp::Classify(k) => write!(f, "classify({:02x?})", &k.as_bytes()[..4]),
        }
    }
}

/// A linear-scan range-rule oracle: the slowest possible but obviously
/// correct wildcard classifier. Insertion order breaks priority ties
/// (first installed wins), matching the pinned backend tie-breaks —
/// though differential rulesets use unique priorities anyway.
#[derive(Debug, Default)]
pub struct RangeOracle {
    rules: Vec<RangeRule>,
}

impl RangeOracle {
    /// An empty oracle.
    #[must_use]
    pub fn new() -> Self {
        RangeOracle::default()
    }

    /// Live rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Installs `rule`, replacing in place the rule with identical
    /// intervals if one exists; returns what it replaced.
    pub fn insert(&mut self, rule: &RangeRule) -> Option<(u16, u64)> {
        if let Some(old) = self.rules.iter_mut().find(|r| r.ranges == rule.ranges) {
            let prev = (old.priority, old.action);
            *old = *rule;
            return Some(prev);
        }
        self.rules.push(*rule);
        None
    }

    /// Removes the rule with exactly `ranges`, returning its
    /// `(priority, action)` if it was installed.
    pub fn remove(
        &mut self,
        ranges: &[halo_classify::FieldRange; NUM_FIELDS],
    ) -> Option<(u16, u64)> {
        let i = self.rules.iter().position(|r| &r.ranges == ranges)?;
        let r = self.rules.remove(i);
        Some((r.priority, r.action))
    }

    /// The highest-priority matching rule's `(priority, action)`
    /// (earliest-installed on ties).
    #[must_use]
    pub fn classify(&self, key: &FlowKey) -> Option<(u16, u64)> {
        let mut best: Option<(u16, u64)> = None;
        for r in &self.rules {
            if r.matches(key) && best.is_none_or(|(p, _)| r.priority > p) {
                best = Some((r.priority, r.action));
            }
        }
        best
    }
}

/// Converts a ruleset churn run into a replayable wildcard op stream:
/// half the ruleset installed up front, then `events` steps mixing
/// classifications of in-rule points and far-off keys (flood misses)
/// with paired install/teardown churn over the remaining pool.
#[must_use]
pub fn wildcard_ops(
    shape: RulesetShape,
    rules: usize,
    events: usize,
    seed: u64,
) -> Vec<WildcardOp> {
    let pool = generate_ruleset(shape, rules, seed);
    let mut rng = SplitMix64::new(seed ^ 0xc2b2_ae3d_27d4_eb4f);
    let mut live: Vec<usize> = (0..pool.len() / 2).collect();
    let mut dead: Vec<usize> = (pool.len() / 2..pool.len()).collect();
    let mut ops: Vec<WildcardOp> = live.iter().map(|&i| WildcardOp::Insert(pool[i])).collect();
    for _ in 0..events {
        let roll = rng.below(100);
        if roll < 60 {
            // Classify: mostly points inside a live (or recently dead)
            // rule, sometimes a flood key far outside the ruleset.
            let key = if rng.chance(0.8) && !pool.is_empty() {
                let r = &pool[rng.below(pool.len() as u64) as usize];
                sample_point(r, &mut rng)
            } else {
                halo_classify::PacketHeader::synthetic(1 << 42 | rng.below(1 << 16)).miniflow()
            };
            ops.push(WildcardOp::Classify(key));
        } else if roll < 80 && !dead.is_empty() {
            let i = dead.swap_remove(rng.below(dead.len() as u64) as usize);
            ops.push(WildcardOp::Insert(pool[i]));
            live.push(i);
        } else if !live.is_empty() {
            let i = live.swap_remove(rng.below(live.len() as u64) as usize);
            ops.push(WildcardOp::Remove(pool[i]));
            dead.push(i);
        }
    }
    ops
}

/// Replays `ops` against a fresh `backend` wildcard table and the
/// [`RangeOracle`], comparing every insert's replacement, every
/// remove's return, every classification's `(priority, action)`, and
/// the live-rule count at [`AUDIT_EPOCH`] cadence and at the end.
#[must_use]
pub fn wildcard_driver(backend: WildcardBackend, ops: &[WildcardOp]) -> Option<String> {
    let mut mem = SimMemory::new();
    // No pre-declared masks: TSS grows tuples per expansion mask on
    // demand; RVH sizes its marker tables from the entry budget.
    let mut table = backend.build(
        &mut mem,
        TableBackend::Cuckoo,
        &[],
        4096,
        halo_classify::SearchMode::HighestPriority,
    );
    let mut oracle = RangeOracle::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            WildcardOp::Insert(r) => {
                let got = match table.insert_range(&mut mem, r) {
                    Ok(g) => g,
                    Err(e) => return Some(format!("op {i} ({op}): insert failed: {e}")),
                };
                let want = oracle.insert(r);
                if got != want {
                    return Some(format!(
                        "op {i} ({op}): insert replaced {got:?}, oracle says {want:?}"
                    ));
                }
            }
            WildcardOp::Remove(r) => {
                let got = table.remove_range(&mut mem, r);
                let want = oracle.remove(&r.ranges);
                if got != want {
                    return Some(format!(
                        "op {i} ({op}): remove returned {got:?}, oracle says {want:?}"
                    ));
                }
            }
            WildcardOp::Classify(key) => {
                let got = table.classify(&mem, key).map(|m| (m.priority, m.action));
                let want = oracle.classify(key);
                if got != want {
                    return Some(format!(
                        "op {i} ({op}): classified {got:?}, oracle says {want:?}"
                    ));
                }
            }
        }
        if (i + 1) % AUDIT_EPOCH == 0 && table.rules() != oracle.len() {
            return Some(format!(
                "op {i} ({op}): {} live rules diverged from oracle {}",
                table.rules(),
                oracle.len()
            ));
        }
    }
    if table.rules() != oracle.len() {
        return Some(format!(
            "final: {} live rules diverged from oracle {}",
            table.rules(),
            oracle.len()
        ));
    }
    None
}

/// Runs `cases` wildcard differential cases of `rules` pool rules plus
/// `events` churn/classify steps of the given `shape` against every
/// [`WildcardBackend`], seeding case `i` with `point_seed(name, i)`.
/// On the first divergence the sequence is ddmin-shrunk and returned
/// as a [`MinimalTrace`] over [`WildcardOp`]s.
///
/// # Errors
///
/// Returns the shrunken counterexample if any case diverges.
pub fn run_wildcard_differential(
    name: &str,
    cases: u64,
    rules: usize,
    events: usize,
    shape: RulesetShape,
) -> Result<(), MinimalTrace<WildcardOp>> {
    for backend in WildcardBackend::all() {
        for i in 0..cases {
            let seed = point_seed(&format!("{name}.{}", backend.name()), i);
            let ops = wildcard_ops(shape, rules, events, seed);
            let mut driver = |ops: &[WildcardOp]| wildcard_driver(backend, ops);
            if driver(&ops).is_some() {
                let (min_ops, error) = shrink_ops(&ops, &mut driver);
                return Err(MinimalTrace {
                    seed,
                    ops: min_ops,
                    error,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_classify::FieldRange;

    fn rule(prio: u16, action: u64, port_lo: u64, port_hi: u64) -> RangeRule {
        let mut ranges = [FieldRange::exact(0); NUM_FIELDS];
        for (i, r) in ranges.iter_mut().enumerate() {
            *r = FieldRange::any(i);
        }
        ranges[3] = FieldRange::span(port_lo, port_hi);
        RangeRule {
            ranges,
            priority: prio,
            action,
        }
    }

    #[test]
    fn oracle_resolves_overlaps_by_priority() {
        let mut o = RangeOracle::new();
        assert_eq!(o.insert(&rule(1, 10, 0, 9000)), None);
        assert_eq!(o.insert(&rule(5, 20, 4000, 5000)), None);
        let key = sample_point(&rule(0, 0, 4500, 4500), &mut SplitMix64::new(1));
        assert_eq!(o.classify(&key), Some((5, 20)));
        assert_eq!(o.remove(&rule(5, 20, 4000, 5000).ranges), Some((5, 20)));
        assert_eq!(o.classify(&key), Some((1, 10)));
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn oracle_replaces_in_place() {
        let mut o = RangeOracle::new();
        assert_eq!(o.insert(&rule(1, 10, 0, 100)), None);
        assert_eq!(o.insert(&rule(7, 11, 0, 100)), Some((1, 10)));
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn wildcard_ops_are_deterministic_and_start_live() {
        let a = wildcard_ops(RulesetShape::PortRange, 24, 200, 5);
        let b = wildcard_ops(RulesetShape::PortRange, 24, 200, 5);
        assert_eq!(a, b);
        assert!(a[..12].iter().all(|op| matches!(op, WildcardOp::Insert(_))));
        assert!(a.iter().any(|op| matches!(op, WildcardOp::Classify(_))));
        assert!(a.iter().any(|op| matches!(op, WildcardOp::Remove(_))));
    }

    #[test]
    fn every_shape_survives_the_wildcard_suite() {
        for shape in RulesetShape::all() {
            run_wildcard_differential(&format!("wildcard.{}", shape.name()), 2, 24, 160, shape)
                .unwrap_or_else(|t| panic!("{}: {t}", shape.name()));
        }
    }

    /// A planted bug — a driver that drops every other remove — must be
    /// caught and shrink to a short wildcard trace.
    #[test]
    fn lossy_wildcard_removes_shrink_small() {
        let lossy = |ops: &[WildcardOp]| -> Option<String> {
            let mut oracle = RangeOracle::new();
            let mut lossy_oracle = RangeOracle::new();
            let mut toggle = false;
            for (i, op) in ops.iter().enumerate() {
                match op {
                    WildcardOp::Insert(r) => {
                        oracle.insert(r);
                        lossy_oracle.insert(r);
                    }
                    WildcardOp::Remove(r) => {
                        oracle.remove(&r.ranges);
                        if toggle {
                            lossy_oracle.remove(&r.ranges);
                        }
                        toggle = !toggle;
                    }
                    WildcardOp::Classify(k) => {
                        if oracle.classify(k) != lossy_oracle.classify(k) {
                            return Some(format!("op {i}: classify diverged"));
                        }
                    }
                }
            }
            None
        };
        let ops = wildcard_ops(
            RulesetShape::AclMix,
            24,
            600,
            point_seed("wildcard.lossy", 0),
        );
        assert!(lossy(&ops).is_some(), "the planted bug must trip");
        let (min_ops, err) = shrink_ops(&ops, lossy);
        assert!(err.contains("diverged"), "unexpected error: {err}");
        // The toggle's parity makes removal order-sensitive, so ddmin
        // lands on a small local minimum rather than the 3-op ideal.
        assert!(min_ops.len() <= 8, "not minimal: {} ops", min_ops.len());
    }
}
