//! The invariant auditor: non-perturbing walks over the simulated
//! cache hierarchy and the table layout, asserting the structural
//! properties the paper's design leans on. Every check returns
//! [`Violation`]s instead of panicking so harnesses can fold audit
//! results into shrinkable divergence messages.

use halo_mem::{LineAddr, LineState, MemorySystem, SimMemory, SliceId};
use halo_sim::Cycle;
use halo_tables::{
    bucket_pair, hash_key, signature, CuckooPlusPlusTable, CuckooTable, EmomaTable, FlowTable,
    TableMeta, ENTRIES_PER_BUCKET, FILTER_SLOTS, SEED_PRIMARY,
};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One broken invariant found by an audit walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Short stable name of the invariant (e.g. `"inclusion"`).
    pub invariant: &'static str,
    /// Human-readable specifics: which line/bucket/core and how.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant `{}` violated: {}",
            self.invariant, self.detail
        )
    }
}

fn violation(invariant: &'static str, detail: String) -> Violation {
    Violation { invariant, detail }
}

/// Audits the coherence-structural invariants of a [`MemorySystem`]:
///
/// * **placement** — every LLC-resident line sits in its home slice's
///   array (static address interleaving, paper §3).
/// * **inclusion** — every L1/L2-resident line is also LLC-resident
///   (the inclusive-LLC model back-invalidation must maintain).
/// * **directory** — every private-cache holder has its sharer bit set
///   in the LLC directory. Sharer masks are conservatively stale (a
///   clean private eviction does not notify the LLC), so the check is
///   holders ⊆ sharers, never equality.
/// * **single-owner** — at most one core holds a line Modified.
/// * **lock-flag** — the per-line hardware lock bit agrees with the
///   lock table: a resident line is flagged iff an in-flight
///   accelerator op holds it.
/// * **lock-orphan** — no lock-table entry survives its line's
///   eviction ([`MemorySystem::force_evict`] and LLC replacement both
///   clear it).
/// * **lock-expired** — no lock is held past its release cycle; call
///   [`MemorySystem::hw_unlock_expired`] with `now` before auditing.
///
/// The walk uses read-only iterators and perturbs no LRU or counter
/// state, so it can run between every op of a harness.
#[must_use]
pub fn audit_system(sys: &MemorySystem, now: Cycle) -> Vec<Violation> {
    let mut out = Vec::new();
    let cfg = sys.config();

    // LLC pass: placement + a residency/directory/lock index for the
    // private-cache pass (built once; everything after is O(1) probes).
    let mut llc: HashMap<LineAddr, (usize, u64, bool)> = HashMap::new();
    for s in 0..cfg.slices {
        for m in sys.llc_slice_lines(SliceId(s)) {
            let home = sys.home_slice(m.line);
            if home.0 != s {
                out.push(violation(
                    "placement",
                    format!(
                        "line {:?} resident in slice {s}, homed on {}",
                        m.line, home.0
                    ),
                ));
            }
            if let Some((prev, _, _)) = llc.insert(m.line, (s, m.sharers, m.locked)) {
                out.push(violation(
                    "placement",
                    format!("line {:?} resident in slices {prev} and {s}", m.line),
                ));
            }
        }
    }

    // Private-cache pass: inclusion, directory, single-owner.
    let mut owner: HashMap<LineAddr, usize> = HashMap::new();
    for c in 0..cfg.cores {
        let core = halo_mem::CoreId(c);
        let levels: [(&str, Box<dyn Iterator<Item = &halo_mem::LineMeta>>); 2] = [
            ("L1", Box::new(sys.l1_lines(core))),
            ("L2", Box::new(sys.l2_lines(core))),
        ];
        for (level, lines) in levels {
            for m in lines {
                match llc.get(&m.line) {
                    None => out.push(violation(
                        "inclusion",
                        format!("core {c} {level} holds {:?} absent from the LLC", m.line),
                    )),
                    Some(&(_, sharers, _)) => {
                        if sharers & (1 << c) == 0 {
                            out.push(violation(
                                "directory",
                                format!(
                                    "core {c} {level} holds {:?} without its sharer bit",
                                    m.line
                                ),
                            ));
                        }
                    }
                }
                if m.state == LineState::Modified {
                    if let Some(&prev) = owner.get(&m.line) {
                        if prev != c {
                            out.push(violation(
                                "single-owner",
                                format!("line {:?} Modified in cores {prev} and {c}", m.line),
                            ));
                        }
                    } else {
                        owner.insert(m.line, c);
                    }
                }
            }
        }
    }

    // Lock pass: flags vs the lock table, orphans, and expiry.
    let locks: HashMap<LineAddr, Cycle> = sys.held_locks().collect();
    for (&line, &(slice, _, flagged)) in &llc {
        if flagged != locks.contains_key(&line) {
            out.push(violation(
                "lock-flag",
                format!(
                    "line {line:?} in slice {slice}: lock bit {flagged}, lock table {}",
                    locks.contains_key(&line)
                ),
            ));
        }
    }
    for (&line, &release) in &locks {
        if !llc.contains_key(&line) {
            out.push(violation(
                "lock-orphan",
                format!("lock on {line:?} outlived the line's LLC residency"),
            ));
        }
        if release <= now {
            out.push(violation(
                "lock-expired",
                format!("lock on {line:?} expired at {release:?}, now {now:?}"),
            ));
        }
    }
    out
}

/// Walks every live bucket entry of a cuckoo-family layout, checking
/// the invariants all variants share — **signature** (stored signature
/// matches the resident key, never the reserved `0`) and **bucket**
/// (the entry sits in one of the key's two candidate buckets) — and
/// returns the live entries as `(bucket, entry, kv_slot)` for the
/// caller's structure-specific checks.
fn walk_cuckoo_entries(
    meta: &TableMeta,
    mem: &mut SimMemory,
    out: &mut Vec<Violation>,
) -> Vec<(u64, usize, u32)> {
    let mut live = Vec::new();
    for b in 0..meta.buckets {
        for e in 0..ENTRIES_PER_BUCKET {
            let (sig, idx) = meta.read_entry(mem, b, e);
            if sig == 0 {
                continue;
            }
            live.push((b, e, idx));
            let key = meta.read_kv_key(mem, idx);
            let want = signature(hash_key(&key, SEED_PRIMARY));
            if sig != want {
                out.push(violation(
                    "signature",
                    format!("bucket {b} entry {e}: stored sig {sig:#x}, key hashes to {want:#x}"),
                ));
            }
            let (b1, b2) = bucket_pair(&key, meta.buckets);
            if b != b1 && b != b2 {
                out.push(violation(
                    "bucket",
                    format!("entry for key in bucket {b}, candidates are {b1}/{b2}"),
                ));
            }
        }
    }
    live
}

/// Shared bookkeeping checks over a cuckoo-family walk: **kv-aliased**
/// (no kv slot referenced twice, beyond the transient duplicates held
/// by in-flight two-phase moves) and **live-count** (live entries equal
/// `len` plus in-flight moves; `len + free == capacity`).
#[allow(clippy::too_many_arguments)] // a plain bag of counters
fn check_cuckoo_accounting(
    live: &[(u64, usize, u32)],
    len: usize,
    free_slots: usize,
    capacity: usize,
    moves_in_flight: usize,
    out: &mut Vec<Violation>,
) {
    let mut slot_refs: HashMap<u32, u32> = HashMap::new();
    for &(_, _, idx) in live {
        *slot_refs.entry(idx).or_insert(0) += 1;
    }
    let aliased = slot_refs.values().filter(|&&n| n > 1).count();
    if aliased > moves_in_flight {
        out.push(violation(
            "kv-aliased",
            format!(
                "{aliased} kv slots multiply referenced, only {moves_in_flight} moves in flight"
            ),
        ));
    }
    if live.len() != len + moves_in_flight {
        out.push(violation(
            "live-count",
            format!(
                "{} live entries, len {len} + {moves_in_flight} in-flight moves",
                live.len()
            ),
        ));
    }
    if len + free_slots != capacity {
        out.push(violation(
            "live-count",
            format!("len {len} + free {free_slots} != capacity {capacity}"),
        ));
    }
}

/// Audits a [`CuckooTable`]'s layout against its bookkeeping:
///
/// * **signature** — every live entry's stored signature matches its
///   key (and is never the reserved empty marker `0`).
/// * **bucket** — every live entry sits in one of its key's two
///   candidate buckets.
/// * **kv-aliased** — no two bucket entries reference the same
///   key-value slot, except the single transient duplicate a two-phase
///   [`cuckoo_move_begin`](CuckooTable::cuckoo_move_begin) holds.
/// * **live-count** — live bucket entries equal `len()` plus in-flight
///   moves, and `len() + free_slots() == capacity()`.
#[must_use]
pub fn audit_cuckoo(table: &CuckooTable, mem: &mut SimMemory) -> Vec<Violation> {
    let mut out = Vec::new();
    let live = walk_cuckoo_entries(table.meta(), mem, &mut out);
    check_cuckoo_accounting(
        &live,
        table.len(),
        table.free_slots(),
        table.capacity(),
        table.moves_in_flight(),
        &mut out,
    );
    out
}

/// Audits a [`CuckooPlusPlusTable`]: all the [`audit_cuckoo`] checks
/// plus **filter-exact** — every per-bucket presence-filter counter
/// must equal the number of keys whose primary bucket it is that are
/// currently stored in their secondary bucket. In-flight two-phase
/// moves perturb counters by one each (the filter is adjusted at
/// `begin`, the duplicate entry pair resolves at `commit`/`abort`), so
/// the check tolerates a total absolute drift of `moves_in_flight()`.
#[must_use]
pub fn audit_cuckoo_pp(table: &CuckooPlusPlusTable, mem: &mut SimMemory) -> Vec<Violation> {
    let mut out = Vec::new();
    let meta = *table.meta();
    let live = walk_cuckoo_entries(&meta, mem, &mut out);
    check_cuckoo_accounting(
        &live,
        table.len(),
        table.free_slots(),
        table.capacity(),
        table.moves_in_flight(),
        &mut out,
    );

    // Recompute every presence filter from the live entries. A pending
    // p->s move holds copies in both buckets; counting the secondary
    // copy matches the begin-time increment, while the extra primary
    // copy is invisible to the filter — but a pending s->p move's
    // secondary copy recomputes one above the already-decremented
    // filter, hence the in-flight tolerance on total drift.
    let mut expect: HashMap<(u64, usize), i64> = HashMap::new();
    let mut counted: HashSet<u32> = HashSet::new();
    for &(b, _, idx) in &live {
        let key = meta.read_kv_key(mem, idx);
        let (b1, _) = bucket_pair(&key, meta.buckets);
        if b != b1 && counted.insert(idx) {
            *expect
                .entry((b1, CuckooPlusPlusTable::filter_index(&key)))
                .or_insert(0) += 1;
        }
    }
    let mut drift = 0i64;
    for b in 0..meta.buckets {
        for fi in 0..FILTER_SLOTS {
            let got = i64::from(table.filter_count(mem, b, fi));
            let want = expect.get(&(b, fi)).copied().unwrap_or(0);
            if got != want {
                drift += (got - want).abs();
                if table.moves_in_flight() == 0 {
                    out.push(violation(
                        "filter-exact",
                        format!(
                            "bucket {b} filter slot {fi}: counter {got}, {want} displaced keys"
                        ),
                    ));
                }
            }
        }
    }
    if table.moves_in_flight() > 0 && drift > table.moves_in_flight() as i64 {
        out.push(violation(
            "filter-exact",
            format!(
                "total filter drift {drift} exceeds {} in-flight moves",
                table.moves_in_flight()
            ),
        ));
    }
    out
}

/// Audits an [`EmomaTable`]: all the cuckoo-family checks plus the
/// steering machinery —
///
/// * **residency** — the control-plane residency of every live kv slot
///   matches the bucket its entry actually sits in (the duplicate
///   entries of in-flight moves are tolerated, `moves_in_flight()`
///   mismatches at most);
/// * **steering** — every secondary-resident key is CBF-positive and
///   every primary-resident key CBF-negative, the invariant that makes
///   the single steered bucket access exact;
/// * **cbf-exact** — every counting-Bloom-filter counter equals the
///   number of contributions from secondary-resident keys;
/// * **tracked** — the per-counter lists of primary-resident slots
///   (the cascade-fixup candidates) match a recomputation from scratch.
#[must_use]
pub fn audit_emoma(table: &EmomaTable, mem: &mut SimMemory) -> Vec<Violation> {
    let mut out = Vec::new();
    let meta = *table.meta();
    let live = walk_cuckoo_entries(&meta, mem, &mut out);
    check_cuckoo_accounting(
        &live,
        table.len(),
        table.free_slots(),
        table.capacity(),
        table.moves_in_flight(),
        &mut out,
    );

    let mut residency_mismatches = 0usize;
    let mut slots: HashSet<u32> = HashSet::new();
    for &(b, e, idx) in &live {
        slots.insert(idx);
        let key = meta.read_kv_key(mem, idx);
        let (b1, _) = bucket_pair(&key, meta.buckets);
        let expect = if b == b1 { 1 } else { 2 };
        if table.slot_residency(idx) != expect {
            residency_mismatches += 1;
            if table.moves_in_flight() == 0 {
                out.push(violation(
                    "residency",
                    format!(
                        "bucket {b} entry {e} slot {idx}: residency {}, bucket implies {expect}",
                        table.slot_residency(idx)
                    ),
                ));
            }
        }
    }
    if residency_mismatches > table.moves_in_flight() {
        out.push(violation(
            "residency",
            format!(
                "{residency_mismatches} residency mismatches, only {} moves in flight",
                table.moves_in_flight()
            ),
        ));
    }

    // Steering + filter recomputation over distinct live slots (a
    // pending move's duplicate pair is one slot): residency is adjusted
    // at move `begin` together with the filter, so these are exact even
    // mid-move.
    let mut expect_cbf = vec![0u16; table.cbf_counters().len()];
    let mut expect_tracked: HashMap<usize, Vec<u32>> = HashMap::new();
    for &idx in &slots {
        let key = meta.read_kv_key(mem, idx);
        match table.slot_residency(idx) {
            2 => {
                if !table.cbf_positive(&key) {
                    out.push(violation(
                        "steering",
                        format!("secondary-resident slot {idx} is CBF-negative (stranded)"),
                    ));
                }
                for i in table.cbf_indices(&key) {
                    expect_cbf[i] += 1;
                }
            }
            1 => {
                if table.cbf_positive(&key) {
                    out.push(violation(
                        "steering",
                        format!("primary-resident slot {idx} is CBF-positive (stranded)"),
                    ));
                }
                for i in table.cbf_indices(&key) {
                    expect_tracked.entry(i).or_default().push(idx);
                }
            }
            r => out.push(violation(
                "residency",
                format!("live slot {idx} marked residency {r}"),
            )),
        }
    }
    if table.cbf_counters() != &expect_cbf[..] {
        let diffs = table
            .cbf_counters()
            .iter()
            .zip(&expect_cbf)
            .filter(|(a, b)| a != b)
            .count();
        out.push(violation(
            "cbf-exact",
            format!("{diffs} CBF counters diverge from the live-slot recomputation"),
        ));
    }
    for i in 0..table.cbf_counters().len() {
        let mut got: Vec<u32> = table.tracked_slots(i).to_vec();
        let mut want = expect_tracked.remove(&i).unwrap_or_default();
        got.sort_unstable();
        want.sort_unstable();
        if got != want {
            out.push(violation(
                "tracked",
                format!("counter {i}: tracked slots {got:?}, recomputation says {want:?}"),
            ));
        }
    }
    out
}

/// Audits that every line of `table` the LLC currently holds sits on
/// the CHA slice the address-interleaving promises — the property HALO
/// leans on to co-locate each accelerator with its slice's share of the
/// table (paper §3.2). Generic over [`FlowTable`] via
/// [`warm_lines`](FlowTable::warm_lines), so every backend is covered;
/// tables outside simulated memory report no lines and audit clean.
#[must_use]
pub fn audit_table_placement<T: FlowTable + ?Sized>(
    table: &T,
    sys: &MemorySystem,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut resident: HashMap<LineAddr, usize> = HashMap::new();
    for s in 0..sys.config().slices {
        for m in sys.llc_slice_lines(SliceId(s)) {
            resident.insert(m.line, s);
        }
    }
    for addr in table.warm_lines() {
        let line = addr.line();
        if let Some(&s) = resident.get(&line) {
            let home = sys.home_slice(line);
            if home.0 != s {
                out.push(violation(
                    "placement",
                    format!(
                        "table line {line:?} cached in slice {s}, promised to CHA {}",
                        home.0
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_mem::{AccessKind, Addr, CoreId, MachineConfig};
    use halo_sim::Cycles;
    use halo_tables::FlowKey;

    #[test]
    fn healthy_system_audits_clean() {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let mut now = Cycle(0);
        for i in 0..64u64 {
            let core = CoreId((i % 4) as usize);
            let kind = if i % 3 == 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let out = sys.access(core, Addr(i * 64), kind, now);
            now = out.complete + Cycles(1);
        }
        assert_eq!(audit_system(&sys, now), vec![]);
    }

    #[test]
    fn expired_lock_is_flagged_until_pruned() {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let out = sys.access(CoreId(0), Addr(0x40), AccessKind::Load, Cycle(0));
        sys.hw_lock(Addr(0x40).line(), out.complete + Cycles(10));
        assert_eq!(audit_system(&sys, out.complete), vec![]);
        let later = out.complete + Cycles(100);
        let found = audit_system(&sys, later);
        assert!(
            found.iter().any(|v| v.invariant == "lock-expired"),
            "missed expiry: {found:?}"
        );
        sys.hw_unlock_expired(later);
        assert_eq!(audit_system(&sys, later), vec![]);
    }

    #[test]
    fn cuckoo_audit_accepts_real_table_and_in_flight_move() {
        let mut mem = SimMemory::new();
        let mut t = CuckooTable::create(&mut mem, 1 << 6, 13);
        for i in 0..100u64 {
            t.insert(&mut mem, &FlowKey::synthetic(i, 13), i).unwrap();
        }
        assert_eq!(audit_cuckoo(&t, &mut mem), vec![]);
        let mv = t
            .cuckoo_move_begin(&mut mem, &FlowKey::synthetic(42, 13))
            .expect("movable key");
        assert_eq!(audit_cuckoo(&t, &mut mem), vec![], "transient dup allowed");
        t.cuckoo_move_commit(&mut mem, mv);
        assert_eq!(audit_cuckoo(&t, &mut mem), vec![]);
    }

    #[test]
    fn cuckoo_pp_audit_accepts_table_and_catches_stale_filter() {
        let mut mem = SimMemory::new();
        let mut t = CuckooPlusPlusTable::create(&mut mem, 1 << 6, 13);
        for i in 0..200u64 {
            t.insert(&mut mem, &FlowKey::synthetic(i, 13), i).unwrap();
        }
        assert_eq!(audit_cuckoo_pp(&t, &mut mem), vec![]);
        let mv = t
            .cuckoo_move_begin(&mut mem, &FlowKey::synthetic(42, 13))
            .expect("movable key");
        let mid = audit_cuckoo_pp(&t, &mut mem);
        assert_eq!(mid, vec![], "in-flight move must stay within tolerance");
        t.cuckoo_move_commit(&mut mem, mv);
        assert_eq!(audit_cuckoo_pp(&t, &mut mem), vec![]);
        // Corrupt one filter byte behind the table's back.
        let addr = t.meta().bucket_addr(3) + halo_tables::FILTER_OFF;
        let stale = mem.read_u8(addr);
        mem.write_u8(addr, stale.wrapping_add(1));
        let found = audit_cuckoo_pp(&t, &mut mem);
        assert!(
            found.iter().any(|v| v.invariant == "filter-exact"),
            "missed stale filter: {found:?}"
        );
    }

    #[test]
    fn emoma_audit_accepts_table_and_catches_stranded_key() {
        let mut mem = SimMemory::new();
        let mut t = EmomaTable::create(&mut mem, 1 << 6, 13);
        for i in 0..200u64 {
            t.insert(&mut mem, &FlowKey::synthetic(i, 13), i).unwrap();
        }
        assert_eq!(audit_emoma(&t, &mut mem), vec![]);
        // Displace a key, audit mid-move and after.
        let k = FlowKey::synthetic(42, 13);
        if let Some(mv) = t.move_begin(&mut mem, &k) {
            assert_eq!(audit_emoma(&t, &mut mem), vec![], "pending move tolerated");
            t.move_commit(&mut mem, mv);
        }
        assert_eq!(audit_emoma(&t, &mut mem), vec![]);
    }

    #[test]
    fn corrupted_signature_is_caught() {
        let mut mem = SimMemory::new();
        let mut t = CuckooTable::create(&mut mem, 1 << 6, 13);
        t.insert(&mut mem, &FlowKey::synthetic(5, 13), 5).unwrap();
        'corrupt: for b in 0..t.meta().buckets {
            for e in 0..ENTRIES_PER_BUCKET {
                let (sig, idx) = t.meta().read_entry(&mem, b, e);
                if sig != 0 {
                    t.meta().write_entry(&mut mem, b, e, sig ^ 0x5555, idx);
                    break 'corrupt;
                }
            }
        }
        let found = audit_cuckoo(&t, &mut mem);
        assert!(
            found.iter().any(|v| v.invariant == "signature"),
            "missed corruption: {found:?}"
        );
    }
}
