//! The invariant auditor: non-perturbing walks over the simulated
//! cache hierarchy and the table layout, asserting the structural
//! properties the paper's design leans on. Every check returns
//! [`Violation`]s instead of panicking so harnesses can fold audit
//! results into shrinkable divergence messages.

use halo_mem::{LineAddr, LineState, MemorySystem, SimMemory, SliceId};
use halo_sim::Cycle;
use halo_tables::{
    bucket_pair, hash_key, signature, CuckooTable, ENTRIES_PER_BUCKET, SEED_PRIMARY,
};
use std::collections::HashMap;
use std::fmt;

/// One broken invariant found by an audit walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Short stable name of the invariant (e.g. `"inclusion"`).
    pub invariant: &'static str,
    /// Human-readable specifics: which line/bucket/core and how.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant `{}` violated: {}",
            self.invariant, self.detail
        )
    }
}

fn violation(invariant: &'static str, detail: String) -> Violation {
    Violation { invariant, detail }
}

/// Audits the coherence-structural invariants of a [`MemorySystem`]:
///
/// * **placement** — every LLC-resident line sits in its home slice's
///   array (static address interleaving, paper §3).
/// * **inclusion** — every L1/L2-resident line is also LLC-resident
///   (the inclusive-LLC model back-invalidation must maintain).
/// * **directory** — every private-cache holder has its sharer bit set
///   in the LLC directory. Sharer masks are conservatively stale (a
///   clean private eviction does not notify the LLC), so the check is
///   holders ⊆ sharers, never equality.
/// * **single-owner** — at most one core holds a line Modified.
/// * **lock-flag** — the per-line hardware lock bit agrees with the
///   lock table: a resident line is flagged iff an in-flight
///   accelerator op holds it.
/// * **lock-orphan** — no lock-table entry survives its line's
///   eviction ([`MemorySystem::force_evict`] and LLC replacement both
///   clear it).
/// * **lock-expired** — no lock is held past its release cycle; call
///   [`MemorySystem::hw_unlock_expired`] with `now` before auditing.
///
/// The walk uses read-only iterators and perturbs no LRU or counter
/// state, so it can run between every op of a harness.
#[must_use]
pub fn audit_system(sys: &MemorySystem, now: Cycle) -> Vec<Violation> {
    let mut out = Vec::new();
    let cfg = sys.config();

    // LLC pass: placement + a residency/directory/lock index for the
    // private-cache pass (built once; everything after is O(1) probes).
    let mut llc: HashMap<LineAddr, (usize, u64, bool)> = HashMap::new();
    for s in 0..cfg.slices {
        for m in sys.llc_slice_lines(SliceId(s)) {
            let home = sys.home_slice(m.line);
            if home.0 != s {
                out.push(violation(
                    "placement",
                    format!(
                        "line {:?} resident in slice {s}, homed on {}",
                        m.line, home.0
                    ),
                ));
            }
            if let Some((prev, _, _)) = llc.insert(m.line, (s, m.sharers, m.locked)) {
                out.push(violation(
                    "placement",
                    format!("line {:?} resident in slices {prev} and {s}", m.line),
                ));
            }
        }
    }

    // Private-cache pass: inclusion, directory, single-owner.
    let mut owner: HashMap<LineAddr, usize> = HashMap::new();
    for c in 0..cfg.cores {
        let core = halo_mem::CoreId(c);
        let levels: [(&str, Box<dyn Iterator<Item = &halo_mem::LineMeta>>); 2] = [
            ("L1", Box::new(sys.l1_lines(core))),
            ("L2", Box::new(sys.l2_lines(core))),
        ];
        for (level, lines) in levels {
            for m in lines {
                match llc.get(&m.line) {
                    None => out.push(violation(
                        "inclusion",
                        format!("core {c} {level} holds {:?} absent from the LLC", m.line),
                    )),
                    Some(&(_, sharers, _)) => {
                        if sharers & (1 << c) == 0 {
                            out.push(violation(
                                "directory",
                                format!(
                                    "core {c} {level} holds {:?} without its sharer bit",
                                    m.line
                                ),
                            ));
                        }
                    }
                }
                if m.state == LineState::Modified {
                    if let Some(&prev) = owner.get(&m.line) {
                        if prev != c {
                            out.push(violation(
                                "single-owner",
                                format!("line {:?} Modified in cores {prev} and {c}", m.line),
                            ));
                        }
                    } else {
                        owner.insert(m.line, c);
                    }
                }
            }
        }
    }

    // Lock pass: flags vs the lock table, orphans, and expiry.
    let locks: HashMap<LineAddr, Cycle> = sys.held_locks().collect();
    for (&line, &(slice, _, flagged)) in &llc {
        if flagged != locks.contains_key(&line) {
            out.push(violation(
                "lock-flag",
                format!(
                    "line {line:?} in slice {slice}: lock bit {flagged}, lock table {}",
                    locks.contains_key(&line)
                ),
            ));
        }
    }
    for (&line, &release) in &locks {
        if !llc.contains_key(&line) {
            out.push(violation(
                "lock-orphan",
                format!("lock on {line:?} outlived the line's LLC residency"),
            ));
        }
        if release <= now {
            out.push(violation(
                "lock-expired",
                format!("lock on {line:?} expired at {release:?}, now {now:?}"),
            ));
        }
    }
    out
}

/// Audits a [`CuckooTable`]'s layout against its bookkeeping:
///
/// * **signature** — every live entry's stored signature matches its
///   key (and is never the reserved empty marker `0`).
/// * **bucket** — every live entry sits in one of its key's two
///   candidate buckets.
/// * **kv-aliased** — no two bucket entries reference the same
///   key-value slot, except the single transient duplicate a two-phase
///   [`cuckoo_move_begin`](CuckooTable::cuckoo_move_begin) holds.
/// * **live-count** — live bucket entries equal `len()` plus in-flight
///   moves, and `len() + free_slots() == capacity()`.
#[must_use]
pub fn audit_cuckoo(table: &CuckooTable, mem: &mut SimMemory) -> Vec<Violation> {
    let mut out = Vec::new();
    let meta = table.meta();
    let mut live = 0usize;
    let mut slot_refs: HashMap<u32, u32> = HashMap::new();
    for b in 0..meta.buckets {
        for e in 0..ENTRIES_PER_BUCKET {
            let (sig, idx) = meta.read_entry(mem, b, e);
            if sig == 0 {
                continue;
            }
            live += 1;
            *slot_refs.entry(idx).or_insert(0) += 1;
            let key = meta.read_kv_key(mem, idx);
            let want = signature(hash_key(&key, SEED_PRIMARY));
            if sig != want {
                out.push(violation(
                    "signature",
                    format!("bucket {b} entry {e}: stored sig {sig:#x}, key hashes to {want:#x}"),
                ));
            }
            let (b1, b2) = bucket_pair(&key, meta.buckets);
            if b != b1 && b != b2 {
                out.push(violation(
                    "bucket",
                    format!("entry for key in bucket {b}, candidates are {b1}/{b2}"),
                ));
            }
        }
    }
    let aliased = slot_refs.values().filter(|&&n| n > 1).count();
    if aliased > table.moves_in_flight() {
        out.push(violation(
            "kv-aliased",
            format!(
                "{aliased} kv slots multiply referenced, only {} moves in flight",
                table.moves_in_flight()
            ),
        ));
    }
    if live != table.len() + table.moves_in_flight() {
        out.push(violation(
            "live-count",
            format!(
                "{live} live entries, len {} + {} in-flight moves",
                table.len(),
                table.moves_in_flight()
            ),
        ));
    }
    if table.len() + table.free_slots() != table.capacity() {
        out.push(violation(
            "live-count",
            format!(
                "len {} + free {} != capacity {}",
                table.len(),
                table.free_slots(),
                table.capacity()
            ),
        ));
    }
    out
}

/// Audits that every line of `table` the LLC currently holds sits on
/// the CHA slice the address-interleaving promises — the property HALO
/// leans on to co-locate each accelerator with its slice's share of the
/// table (paper §3.2).
#[must_use]
pub fn audit_table_placement(table: &CuckooTable, sys: &MemorySystem) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut resident: HashMap<LineAddr, usize> = HashMap::new();
    for s in 0..sys.config().slices {
        for m in sys.llc_slice_lines(SliceId(s)) {
            resident.insert(m.line, s);
        }
    }
    for addr in table.all_lines() {
        let line = addr.line();
        if let Some(&s) = resident.get(&line) {
            let home = sys.home_slice(line);
            if home.0 != s {
                out.push(violation(
                    "placement",
                    format!(
                        "table line {line:?} cached in slice {s}, promised to CHA {}",
                        home.0
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_mem::{AccessKind, Addr, CoreId, MachineConfig};
    use halo_sim::Cycles;
    use halo_tables::FlowKey;

    #[test]
    fn healthy_system_audits_clean() {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let mut now = Cycle(0);
        for i in 0..64u64 {
            let core = CoreId((i % 4) as usize);
            let kind = if i % 3 == 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let out = sys.access(core, Addr(i * 64), kind, now);
            now = out.complete + Cycles(1);
        }
        assert_eq!(audit_system(&sys, now), vec![]);
    }

    #[test]
    fn expired_lock_is_flagged_until_pruned() {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let out = sys.access(CoreId(0), Addr(0x40), AccessKind::Load, Cycle(0));
        sys.hw_lock(Addr(0x40).line(), out.complete + Cycles(10));
        assert_eq!(audit_system(&sys, out.complete), vec![]);
        let later = out.complete + Cycles(100);
        let found = audit_system(&sys, later);
        assert!(
            found.iter().any(|v| v.invariant == "lock-expired"),
            "missed expiry: {found:?}"
        );
        sys.hw_unlock_expired(later);
        assert_eq!(audit_system(&sys, later), vec![]);
    }

    #[test]
    fn cuckoo_audit_accepts_real_table_and_in_flight_move() {
        let mut mem = SimMemory::new();
        let mut t = CuckooTable::create(&mut mem, 1 << 6, 13);
        for i in 0..100u64 {
            t.insert(&mut mem, &FlowKey::synthetic(i, 13), i).unwrap();
        }
        assert_eq!(audit_cuckoo(&t, &mut mem), vec![]);
        let mv = t
            .cuckoo_move_begin(&mut mem, &FlowKey::synthetic(42, 13))
            .expect("movable key");
        assert_eq!(audit_cuckoo(&t, &mut mem), vec![], "transient dup allowed");
        t.cuckoo_move_commit(&mut mem, mv);
        assert_eq!(audit_cuckoo(&t, &mut mem), vec![]);
    }

    #[test]
    fn corrupted_signature_is_caught() {
        let mut mem = SimMemory::new();
        let mut t = CuckooTable::create(&mut mem, 1 << 6, 13);
        t.insert(&mut mem, &FlowKey::synthetic(5, 13), 5).unwrap();
        'corrupt: for b in 0..t.meta().buckets {
            for e in 0..ENTRIES_PER_BUCKET {
                let (sig, idx) = t.meta().read_entry(&mut mem, b, e);
                if sig != 0 {
                    t.meta().write_entry(&mut mem, b, e, sig ^ 0x5555, idx);
                    break 'corrupt;
                }
            }
        }
        let found = audit_cuckoo(&t, &mut mem);
        assert!(
            found.iter().any(|v| v.invariant == "signature"),
            "missed corruption: {found:?}"
        );
    }
}
