//! Automatic shrinking of failing op sequences.
//!
//! When a driver reports a divergence, the raw generated sequence is
//! typically hundreds of ops of which only a handful matter. A
//! ddmin-style pass removes chunks (halving the chunk size down to
//! single ops) while the failure persists, producing a minimal trace
//! that replays deterministically and prints as a seed plus op list.

use crate::oracle::{gen_ops, Op};
use halo_sim::{point_seed, SplitMix64};
use std::fmt;

/// A shrunken, replayable counterexample from [`run_differential`]
/// (exact-match [`Op`] streams by default; the wildcard differential
/// instantiates it over [`WildcardOp`](crate::WildcardOp)).
#[derive(Debug, Clone)]
pub struct MinimalTrace<O = Op> {
    /// The SplitMix64 seed whose generated stream first failed (from
    /// [`point_seed`] over the suite name and case index).
    pub seed: u64,
    /// The minimal op subsequence that still reproduces the failure.
    pub ops: Vec<O>,
    /// The driver's divergence message on the minimal sequence.
    pub error: String,
}

impl<O: fmt::Display> fmt::Display for MinimalTrace<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "differential failure (seed {:#x}), minimal {}-op trace:",
            self.seed,
            self.ops.len()
        )?;
        for op in &self.ops {
            writeln!(f, "    {op}")?;
        }
        write!(f, "error: {}", self.error)
    }
}

/// Shrinks `ops` to a (locally) minimal subsequence on which `fails`
/// still returns a divergence, using ddmin-style chunk removal: try
/// deleting chunks of half the current length, halving the chunk size
/// on each full pass until single-op removal reaches a fixpoint.
/// Returns the minimal ops and the error they produce. Generic in the
/// op type so every driver vocabulary (exact-match [`Op`], wildcard
/// [`WildcardOp`](crate::WildcardOp)) shrinks the same way.
///
/// `fails` must be deterministic (every driver rebuilds its state from
/// scratch); it is called O(n log n) times for an n-op sequence.
///
/// # Panics
///
/// Panics if `fails(ops)` does not fail to begin with.
pub fn shrink_ops<O: Clone>(
    ops: &[O],
    mut fails: impl FnMut(&[O]) -> Option<String>,
) -> (Vec<O>, String) {
    let mut cur = ops.to_vec();
    let mut err = fails(&cur).expect("shrink_ops needs a failing sequence");
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < cur.len() {
            let mut candidate = Vec::with_capacity(cur.len().saturating_sub(chunk));
            candidate.extend_from_slice(&cur[..i]);
            candidate.extend_from_slice(&cur[(i + chunk).min(cur.len())..]);
            if let Some(e) = fails(&candidate) {
                cur = candidate;
                err = e;
                // Do not advance: the next chunk slid into position i.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    (cur, err)
}

/// Runs `cases` differential cases of `ops_per_case` generated ops over
/// a `key_space`-sized key universe against `driver`, seeding case `i`
/// with `point_seed(name, i)`. On the first divergence the sequence is
/// shrunk and returned as a [`MinimalTrace`]; reproducing it later only
/// needs the printed seed (regenerate with [`SplitMix64::new`] +
/// [`gen_ops`] and the same parameters) or the printed op list replayed
/// straight through the driver.
///
/// # Errors
///
/// Returns the shrunken counterexample if any case diverges.
pub fn run_differential(
    name: &str,
    cases: u64,
    ops_per_case: usize,
    key_space: u16,
    mut driver: impl FnMut(&[Op]) -> Option<String>,
) -> Result<(), MinimalTrace> {
    for i in 0..cases {
        let seed = point_seed(name, i);
        let ops = gen_ops(&mut SplitMix64::new(seed), ops_per_case, key_space);
        if driver(&ops).is_some() {
            let (min_ops, error) = shrink_ops(&ops, &mut driver);
            return Err(MinimalTrace {
                seed,
                ops: min_ops,
                error,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic bug: fails whenever the sequence contains
    /// `Remove(7)` after `Insert(7, _)` — minimal trace is exactly two
    /// ops regardless of how much noise surrounds them.
    fn synthetic(ops: &[Op]) -> Option<String> {
        let mut inserted = false;
        for op in ops {
            match op {
                Op::Insert(7, _) => inserted = true,
                Op::Remove(7) if inserted => return Some("leaked slot".into()),
                _ => {}
            }
        }
        None
    }

    #[test]
    fn shrinks_to_the_two_relevant_ops() {
        let mut rng = SplitMix64::new(point_seed("shrink.test", 0));
        let mut ops = gen_ops(&mut rng, 200, 16);
        ops.insert(50, Op::Insert(7, 1));
        ops.insert(150, Op::Remove(7));
        let (min_ops, err) = shrink_ops(&ops, synthetic);
        assert_eq!(min_ops, vec![Op::Insert(7, 1), Op::Remove(7)]);
        assert_eq!(err, "leaked slot");
    }

    #[test]
    fn passing_suite_returns_ok() {
        run_differential("shrink.pass", 3, 50, 32, |_| None).unwrap();
    }

    #[test]
    fn trace_prints_seed_and_ops() {
        let err = run_differential("shrink.fail", 20, 60, 8, synthetic)
            .expect_err("synthetic bug with key space 8 should trip quickly");
        let text = err.to_string();
        assert!(text.contains("seed 0x"), "missing seed: {text}");
        assert!(text.contains("error: leaked slot"), "missing error: {text}");
        assert!(err.ops.len() <= 2, "not minimal: {err}");
    }
}
