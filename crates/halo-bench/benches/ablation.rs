//! Wall-clock benches over the ablation studies (DESIGN.md §6).

use halo_bench::experiments::ablation;
use halo_bench::microbench::bench;

fn main() {
    bench("ablation/metadata_cache", ablation::metadata_cache);
    bench("ablation/scoreboard_depth", ablation::scoreboard_depth);
    bench("ablation/dispatch_policy", ablation::dispatch_policy);
}
