//! Criterion benches over the ablation studies (DESIGN.md §6).

use criterion::{criterion_group, criterion_main, Criterion};
use halo_bench::experiments::ablation;

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("metadata_cache", |b| {
        b.iter(|| std::hint::black_box(ablation::metadata_cache()))
    });
    g.bench_function("scoreboard_depth", |b| {
        b.iter(|| std::hint::black_box(ablation::scoreboard_depth()))
    });
    g.bench_function("dispatch_policy", |b| {
        b.iter(|| std::hint::black_box(ablation::dispatch_policy()))
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
