//! Wall-clock benches over the network-function workloads (Fig. 12/13
//! machinery).

use halo_accel::{AcceleratorConfig, HaloEngine};
use halo_bench::microbench::bench;
use halo_mem::{CoreId, MachineConfig, MemorySystem};
use halo_nf::{HashNf, HashNfKind};

fn main() {
    for kind in HashNfKind::all() {
        bench(&format!("hash_nf/software/{}", kind.name()), || {
            let mut sys = MemorySystem::new(MachineConfig::default());
            let mut nf = HashNf::new(&mut sys, CoreId(0), kind, 1_000, 1);
            nf.warm(&mut sys);
            nf.run_software(&mut sys, 30)
        });
        bench(&format!("hash_nf/halo/{}", kind.name()), || {
            let mut sys = MemorySystem::new(MachineConfig::default());
            let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
            let mut nf = HashNf::new(&mut sys, CoreId(0), kind, 1_000, 1);
            nf.warm(&mut sys);
            nf.run_halo(&mut sys, &mut engine, 30)
        });
    }
}
