//! Criterion benches over the network-function workloads (Fig. 12/13
//! machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use halo_accel::{AcceleratorConfig, HaloEngine};
use halo_mem::{CoreId, MachineConfig, MemorySystem};
use halo_nf::{HashNf, HashNfKind};

fn bench_nf(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_nf");
    g.sample_size(10);
    for kind in HashNfKind::all() {
        g.bench_with_input(
            BenchmarkId::new("software", kind.name()),
            &kind,
            |b, &k| {
                b.iter(|| {
                    let mut sys = MemorySystem::new(MachineConfig::default());
                    let mut nf = HashNf::new(&mut sys, CoreId(0), k, 1_000, 1);
                    nf.warm(&mut sys);
                    std::hint::black_box(nf.run_software(&mut sys, 30))
                });
            },
        );
        g.bench_with_input(BenchmarkId::new("halo", kind.name()), &kind, |b, &k| {
            b.iter(|| {
                let mut sys = MemorySystem::new(MachineConfig::default());
                let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
                let mut nf = HashNf::new(&mut sys, CoreId(0), k, 1_000, 1);
                nf.warm(&mut sys);
                std::hint::black_box(nf.run_halo(&mut sys, &mut engine, 30))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_nf);
criterion_main!(benches);
