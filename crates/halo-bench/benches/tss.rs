//! Wall-clock benches over tuple space search (Fig. 11's machinery).

use halo_bench::microbench::bench;

fn main() {
    bench("tuple_space_search/quick_sweep", || {
        halo_bench::experiments::fig11::run(true)
    });
}
