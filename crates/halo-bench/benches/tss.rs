//! Criterion benches over tuple space search (Fig. 11's machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use halo_bench::experiments::fig11;

fn bench_tss(c: &mut Criterion) {
    let mut g = c.benchmark_group("tuple_space_search");
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("quick_sweep"), |b| {
        b.iter(|| std::hint::black_box(fig11::run(true)));
    });
    g.finish();
}

criterion_group!(benches, bench_tss);
criterion_main!(benches);
