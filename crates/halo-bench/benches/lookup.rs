//! Criterion benches over the single-table lookup approaches (Fig. 9's
//! machinery). Wall time here is simulation cost; the simulated-cycle
//! results are produced by the `figures` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use halo_bench::experiments::harness::{Approach, SingleTableWorkload};

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("single_table_lookup");
    g.sample_size(10);
    for approach in Approach::all() {
        g.bench_with_input(
            BenchmarkId::from_parameter(approach.name()),
            &approach,
            |b, &a| {
                b.iter(|| {
                    let mut w = SingleTableWorkload::new(1 << 12, 0.5, 7);
                    std::hint::black_box(w.throughput(a, 50))
                });
            },
        );
    }
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    use halo_bench::experiments::extensions;
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    g.bench_function("kv_gets", |b| b.iter(|| std::hint::black_box(extensions::kv_gets())));
    g.bench_function("tree_lookup", |b| {
        b.iter(|| std::hint::black_box(extensions::tree_lookup()))
    });
    g.finish();
}

criterion_group!(benches, bench_lookup, bench_extensions);
criterion_main!(benches);
