//! Wall-clock benches over the single-table lookup approaches (Fig. 9's
//! machinery). Wall time here is simulation cost; the simulated-cycle
//! results are produced by the `figures` binary.

use halo_bench::experiments::harness::{Approach, SingleTableWorkload};
use halo_bench::microbench::bench;

fn main() {
    for approach in Approach::all() {
        bench(&format!("single_table_lookup/{}", approach.name()), || {
            let mut w = SingleTableWorkload::new(1 << 12, 0.5, 7);
            w.throughput(approach, 50)
        });
    }

    use halo_bench::experiments::extensions;
    bench("extensions/kv_gets", extensions::kv_gets);
    bench("extensions/tree_lookup", extensions::tree_lookup);
}
