//! Trace capture driver (`figures trace`).
//!
//! Runs a mixed classification workload with the [`halo_sim::Tracer`]
//! enabled — the only place in the harness where tracing is on — and
//! exports the span buffer as Chrome trace-event JSON
//! (`chrome://tracing` / Perfetto). The workload deliberately touches
//! every instrumented component: the vswitch pipeline phases, software
//! lookups on the core, all three accelerator instruction primitives,
//! and the memory hierarchy underneath them.

use halo_accel::{AcceleratorConfig, HaloEngine};
use halo_classify::PacketHeader;
use halo_mem::{CoreId, MachineConfig, MemorySystem};
use halo_sim::{Cycle, TextTable};
use halo_tables::{CuckooTable, FlowKey};
use halo_vswitch::{LookupBackend, SwitchConfig, VirtualSwitch};

/// Result of a trace capture: the exported JSON plus a human summary.
#[derive(Debug)]
pub struct TraceCapture {
    /// Chrome trace-event JSON document.
    pub chrome_json: String,
    /// Per-op-class latency percentile table.
    pub summary: String,
    /// Number of spans in the exported buffer.
    pub spans: usize,
    /// Distinct components that recorded spans.
    pub components: Vec<&'static str>,
}

/// Ring capacity for the capture. Memory-level spans are dense (one
/// per access), so the ring keeps the most recent ~65K spans and the
/// export records how many older ones were dropped; the histograms
/// behind the summary table always cover every span.
const CAPTURE_CAPACITY: usize = 1 << 16;

/// Runs the capture workload. `quick` shrinks the packet/lookup counts
/// ~8x for CI smoke; both modes exercise the same components.
#[must_use]
pub fn run(quick: bool) -> TraceCapture {
    let scale: u64 = if quick { 1 } else { 8 };
    let mut sys = MemorySystem::new(MachineConfig::small());
    sys.enable_tracing(CAPTURE_CAPACITY);
    let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());

    // --- Phase A: vswitch pipeline, software backend (core + mem). ----
    let flows = 64u64;
    let masks = 5usize;
    let cfg = SwitchConfig::typical(masks, LookupBackend::Software);
    let mut vs = VirtualSwitch::new(&mut sys, CoreId(0), cfg);
    let headers: Vec<PacketHeader> = (0..flows).map(PacketHeader::synthetic).collect();
    for (f, h) in headers.iter().enumerate() {
        vs.install_flow(&mut sys, &h.miniflow(), f % masks, 0, f as u64)
            .expect("tuple sized for flows");
    }
    vs.warm_tables(&mut sys);
    let burst: Vec<PacketHeader> = (0..200 * scale)
        .map(|i| headers[(i % flows) as usize])
        .collect();
    let mut results = Vec::with_capacity(burst.len());
    let mut t = vs.process_burst(&mut sys, None, &burst, Cycle(0), &mut results);

    // --- Phase B: vswitch pipeline, HALO blocking backend. ------------
    let cfg = SwitchConfig::typical(masks, LookupBackend::HaloBlocking);
    let mut vs_hw = VirtualSwitch::new(&mut sys, CoreId(1), cfg);
    for (f, h) in headers.iter().enumerate() {
        vs_hw
            .install_flow(&mut sys, &h.miniflow(), f % masks, 0, f as u64)
            .expect("tuple sized for flows");
    }
    vs_hw.warm_tables(&mut sys);
    results.clear();
    t = vs_hw.process_burst(&mut sys, Some(&mut engine), &burst, t, &mut results);

    // --- Phase C: standalone LOOKUP_B / LOOKUP_NB / SNAPSHOT_READ. ----
    let mut table = CuckooTable::create(sys.data_mut(), 512, 13);
    for id in 0..256u64 {
        table
            .insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id)
            .expect("table sized for keys");
    }
    for a in table.all_lines().collect::<Vec<_>>() {
        sys.warm_llc(a);
    }
    let dest = sys.data_mut().alloc_lines(64);
    for id in 0..64 * scale {
        let key = FlowKey::synthetic(id % 256, 13);
        let (_, done) = engine.lookup_b(&mut sys, CoreId(0), &table, &key, None, t);
        let h = engine.lookup_nb(&mut sys, CoreId(0), &table, &key, None, dest, done);
        let (_, snap_done) = engine.snapshot_read(&mut sys, CoreId(0), dest, h.result_at);
        t = snap_done;
    }

    let tracer = sys.tracer();
    let chrome_json = tracer.to_chrome_trace();
    let mut components: Vec<&'static str> = tracer.op_classes().map(|((c, _), _)| c).collect();
    components.sort_unstable();
    components.dedup();

    let mut tbl = TextTable::new(vec!["component", "op", "count", "p50", "p95", "p99", "max"]);
    for ((component, op), hist) in tracer.op_classes() {
        tbl.row(vec![
            component.to_string(),
            op.to_string(),
            hist.count().to_string(),
            hist.p50().to_string(),
            hist.p95().to_string(),
            hist.p99().to_string(),
            hist.max().to_string(),
        ]);
    }
    let mut summary = String::from("Trace capture: per-op-class simulated latency (cycles)\n");
    summary.push_str(&tbl.to_string());
    summary.push_str(&format!(
        "\nspans: {} (dropped: {})  components: {}\n",
        tracer.len(),
        tracer.dropped(),
        components.join(", ")
    ));

    TraceCapture {
        chrome_json,
        summary,
        spans: tracer.len(),
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_covers_all_instrumented_components() {
        let cap = run(true);
        for want in ["accel", "core", "engine", "mem", "vswitch"] {
            assert!(
                cap.components.contains(&want),
                "component {want} missing from {:?}",
                cap.components
            );
        }
        assert!(
            cap.spans > 100,
            "expected a dense capture, got {}",
            cap.spans
        );
        assert!(cap.chrome_json.contains("\"traceEvents\""));
        assert!(cap.chrome_json.contains("\"ph\":\"X\""));
        assert!(cap.summary.contains("LOOKUP_B"));
        assert!(cap.summary.contains("sw_lookup"));
    }
}
