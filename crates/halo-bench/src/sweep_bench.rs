//! Sequential-vs-parallel sweep benchmarking (`figures bench-sweep`).
//!
//! Runs representative experiment sweeps once with one worker and once
//! with `jobs` workers, checks the serialized outputs are byte-identical
//! (the sweep runner's ordered-merge guarantee), and reports wall-clock
//! times as a JSON document suitable for `BENCH_sweep.json`.

use std::time::Instant;

use crate::experiments::{fig11, fig9, scaling};
use halo_sim::SweepRunner;

/// One sequential-vs-parallel measurement.
#[derive(Debug, Clone)]
pub struct SweepBenchRow {
    /// Experiment name.
    pub experiment: &'static str,
    /// Sweep points executed.
    pub points: usize,
    /// Sequential (1 worker) wall-clock seconds.
    pub sequential_s: f64,
    /// Parallel (`jobs` workers) wall-clock seconds.
    pub parallel_s: f64,
    /// Whether the serialized rows of both runs are byte-identical.
    pub identical: bool,
}

impl SweepBenchRow {
    /// Sequential / parallel wall-clock ratio.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.parallel_s > 0.0 {
            self.sequential_s / self.parallel_s
        } else {
            0.0
        }
    }
}

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

fn bench_one(
    experiment: &'static str,
    jobs: usize,
    run: impl Fn(&SweepRunner) -> (String, usize),
) -> SweepBenchRow {
    let seq_runner = SweepRunner::new(experiment, 1).quiet();
    let par_runner = SweepRunner::new(experiment, jobs).quiet();
    let ((seq_out, points), sequential_s) = timed(|| run(&seq_runner));
    let ((par_out, _), parallel_s) = timed(|| run(&par_runner));
    SweepBenchRow {
        experiment,
        points,
        sequential_s,
        parallel_s,
        identical: seq_out == par_out,
    }
}

/// Runs the benchmark suite with `jobs` parallel workers.
#[must_use]
pub fn run(jobs: usize) -> Vec<SweepBenchRow> {
    vec![
        bench_one("fig9", jobs, |r| {
            let cells = fig9::run_with(true, r);
            let n = cells.len() / 5; // five approaches per point
            (fig9::table(&cells).to_csv(), n)
        }),
        bench_one("fig11", jobs, |r| {
            let pts = fig11::run_with(true, r);
            (fig11::table(&pts).to_csv(), pts.len())
        }),
        bench_one("scaling", jobs, |r| {
            let pts = scaling::run_with(true, r);
            (scaling::table(&pts).to_csv(), pts.len())
        }),
    ]
}

/// Serializes the rows as the `BENCH_sweep.json` document.
///
/// `host_parallelism` is what the host offers, `jobs` is what the
/// parallel runs were configured with, and `observed_parallelism` is
/// the peak number of points the sweep runner actually executed
/// simultaneously — on a host with fewer cores than `jobs`, that last
/// number is the honest bound on any reported speedup.
#[must_use]
pub fn to_json(rows: &[SweepBenchRow], jobs: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"sweep-runner sequential vs parallel\",\n");
    s.push_str(&halo_sim::ParallelismReport::capture(jobs).json_fields());
    s.push_str("  \"experiments\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"experiment\": \"{}\", \"points\": {}, \"sequential_s\": {:.4}, \
             \"parallel_s\": {:.4}, \"speedup\": {:.3}, \"byte_identical\": {}}}{}\n",
            r.experiment,
            r.points,
            r.sequential_s,
            r.parallel_s,
            r.speedup(),
            r.identical,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole determinism guarantee: a parallel sweep serializes
    /// byte-identically to a sequential one, for every ported sweep.
    #[test]
    fn parallel_sweeps_are_byte_identical_to_sequential() {
        for row in run(4) {
            assert!(
                row.identical,
                "{}: parallel output diverged from sequential",
                row.experiment
            );
            assert!(row.points > 0);
        }
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let rows = vec![SweepBenchRow {
            experiment: "fig9",
            points: 6,
            sequential_s: 2.0,
            parallel_s: 1.0,
            identical: true,
        }];
        let j = to_json(&rows, 4);
        assert!(j.contains("\"speedup\": 2.000"));
        assert!(j.contains("\"byte_identical\": true"));
        assert!(j.contains("\"jobs\": 4"));
        assert!(j.contains("\"host_parallelism\""));
        assert!(j.contains("\"observed_parallelism\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
