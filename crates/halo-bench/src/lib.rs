//! # halo-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! HALO paper's evaluation. Each experiment lives in its own module
//! under [`experiments`]; the `figures` binary drives them from the
//! command line (use `--jobs N` or `HALO_JOBS` to fan sweep points over
//! worker threads), and the plain-`main` benches under `benches/` wrap
//! the same entry points with wall-clock timing.
//!
//! | Paper result | Module | CLI |
//! |---|---|---|
//! | Fig. 3 (packet-processing breakdown) | [`experiments::fig3`] | `figures fig3` |
//! | Fig. 4 (cuckoo vs SFH cache behaviour) | [`experiments::fig4`] | `figures fig4` |
//! | Table 1 (instructions per lookup) | [`experiments::table1`] | `figures table1` |
//! | Fig. 8b (flow-register accuracy) | [`experiments::fig8b`] | `figures fig8b` |
//! | Fig. 9 (single-table lookup throughput) | [`experiments::fig9`] | `figures fig9` |
//! | Fig. 10 (lookup latency breakdown) | [`experiments::fig10`] | `figures fig10` |
//! | Fig. 11 (tuple space search scaling) | [`experiments::fig11`] | `figures fig11` |
//! | Fig. 12 (co-located NF interference) | [`experiments::fig12`] | `figures fig12` |
//! | Table 4 (power/area, energy efficiency) | [`experiments::table4`] | `figures table4` |
//! | Fig. 13 (hash-table NF speedups) | [`experiments::fig13`] | `figures fig13` |
//! | Ablations (DESIGN.md §6) | [`experiments::ablation`] | `figures ablation` |

#![warn(missing_docs)]

pub mod experiments;
pub mod hotpath_bench;
pub mod microbench;
pub mod parallel_bench;
pub mod sweep_bench;
pub mod trace_bench;
