//! Regenerates the HALO paper's tables and figures.
//!
//! ```text
//! figures [--full] [--quick] [--jobs N] [fig3|fig4|table1|fig8b|fig9|fig10|fig11|fig12|table4|fig13|scale|ablation|ablation-backends|ablation-wildcard|bench-sweep|bench-hotpath|bench-parallel|trace|all]
//! ```
//!
//! By default experiments run in "quick" mode (reduced sweep sizes,
//! identical shapes); pass `--full` for the paper-scale sweeps.
//!
//! Independent sweep points fan out over worker threads: `--jobs N`
//! (or the `HALO_JOBS` environment variable) sets the worker count,
//! defaulting to the host's available parallelism. Results are merged
//! in point order, so stdout is byte-identical at any jobs level;
//! progress and timing go to stderr.
//!
//! `figures bench-sweep` measures one sequential and one parallel run
//! of the ported sweeps and writes `BENCH_sweep.json`.
//!
//! `figures bench-hotpath [--quick]` measures simulator hot-path
//! throughput (accesses/sec and packets/sec) and writes
//! `BENCH_hotpath.json` — the tracked perf-trajectory datapoint.
//!
//! `figures bench-parallel [--quick]` times the epoch-parallel
//! executor (`MultiCoreDatapath::run_parallel`) at threads=1 vs
//! threads=N per simulated core count, checks byte-identity, and
//! writes `BENCH_parallel.json`.
//!
//! `figures trace [--quick]` runs a mixed classification workload with
//! the tracing sink enabled, prints per-op-class latency percentiles,
//! and writes `TRACE_halo.json` — a Chrome trace-event document
//! loadable in `chrome://tracing` or Perfetto.

use halo_bench::experiments as ex;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let quick = !full;
    let mut jobs_flag: Option<usize> = None;
    let mut which: Vec<&str> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            let v = it.next().and_then(|v| v.parse().ok());
            let Some(n) = v else {
                eprintln!("error: --jobs needs a positive integer");
                std::process::exit(2);
            };
            jobs_flag = Some(n);
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            let Ok(n) = v.parse() else {
                eprintln!("error: --jobs needs a positive integer");
                std::process::exit(2);
            };
            jobs_flag = Some(n);
        } else if !a.starts_with("--") {
            which.push(a.as_str());
        }
    }
    if let Some(n) = jobs_flag {
        // The experiment modules read HALO_JOBS when building their
        // runners; the flag is just a friendlier spelling of it. Set
        // before any sweep spawns (single-threaded here, hence safe).
        std::env::set_var(halo_sim::JOBS_ENV, n.max(1).to_string());
    }
    const KNOWN: [&str; 20] = [
        "bench-hotpath",
        "bench-parallel",
        "trace",
        "all",
        "table1",
        "fig3",
        "fig4",
        "fig8b",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "table4",
        "fig13",
        "scaling",
        "scale",
        "ablation-backends",
        "ablation-wildcard",
        "extensions",
        "bench-sweep",
    ];
    let known_with_ablation = |n: &str| n == "ablation" || KNOWN.contains(&n);
    if let Some(bad) = which.iter().find(|n| !known_with_ablation(n)) {
        eprintln!("error: unknown experiment '{bad}'");
        eprintln!(
            "usage: figures [--full] [--jobs N] [{} | ablation]...",
            KNOWN.join(" | ")
        );
        std::process::exit(2);
    }
    if which.contains(&"bench-hotpath") {
        // Quick mode (the CI smoke setting) via the dedicated flag;
        // `--full` already being the default here, `--quick` shrinks op
        // counts ~10x with identical profile shapes.
        let quick = args.iter().any(|a| a == "--quick");
        eprintln!(
            "bench-hotpath: measuring simulator throughput ({} mode)...",
            if quick { "quick" } else { "full" }
        );
        let rows = halo_bench::hotpath_bench::run(quick);
        for r in &rows {
            eprintln!(
                "  {}: {} {} in {:.2}s -> {:.0} {}/s",
                r.profile,
                r.ops,
                r.unit,
                r.wall_s,
                r.rate(),
                r.unit
            );
        }
        let json = halo_bench::hotpath_bench::to_json(&rows, quick);
        std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
        println!("{json}");
        if which.len() == 1 {
            return;
        }
    }
    if which.contains(&"trace") {
        let quick = args.iter().any(|a| a == "--quick");
        eprintln!(
            "trace: capturing spans from a mixed workload ({} mode)...",
            if quick { "quick" } else { "full" }
        );
        let cap = halo_bench::trace_bench::run(quick);
        eprintln!(
            "  {} spans from components: {}",
            cap.spans,
            cap.components.join(", ")
        );
        std::fs::write("TRACE_halo.json", &cap.chrome_json).expect("write TRACE_halo.json");
        println!("{}", cap.summary);
        if which.len() == 1 {
            return;
        }
    }
    if which.contains(&"bench-parallel") {
        let quick = args.iter().any(|a| a == "--quick");
        // Simulated cores fan out over real threads; cap at 4 so the
        // recorded configuration matches what a typical CI runner can
        // actually overlap, floor at 2 so even single-core hosts
        // exercise the cross-thread determinism path.
        let threads = halo_sim::default_jobs().clamp(2, 4);
        eprintln!(
            "bench-parallel: epoch executor threads=1 vs threads={threads} ({} mode)...",
            if quick { "quick" } else { "full" }
        );
        let rows = halo_bench::parallel_bench::run(quick, threads);
        for r in &rows {
            eprintln!(
                "  {} cores: {} packets, {:.2}s -> {:.2}s ({:.2}x), identical: {}",
                r.cores,
                r.packets,
                r.sequential_s,
                r.parallel_s,
                r.speedup(),
                r.identical
            );
            assert!(
                r.identical,
                "{} cores: parallel run diverged from threads=1",
                r.cores
            );
        }
        // The acceptance bar: an 8-simulated-core run at threads=4
        // must beat 1.5x — but only where the host can actually run 4
        // threads side by side (single-core runners skip with a note).
        let p = halo_sim::ParallelismReport::capture(threads);
        if p.can_assert_speedup(4) && threads >= 4 {
            let eight = rows
                .iter()
                .find(|r| r.cores == 8)
                .expect("core counts include 8");
            assert!(
                eight.speedup() >= 1.5,
                "host offers {} cores but the 8-core simulation sped up only {:.2}x at \
                 threads={threads}",
                p.host,
                eight.speedup()
            );
        } else {
            eprintln!("bench-parallel: {}", p.skip_note());
        }
        let json = halo_bench::parallel_bench::to_json(&rows, quick, threads);
        std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
        println!("{json}");
        if which.len() == 1 {
            return;
        }
    }
    if which.contains(&"bench-sweep") {
        let jobs = halo_sim::default_jobs();
        eprintln!("bench-sweep: sequential vs {jobs}-worker wall clock...");
        let rows = halo_bench::sweep_bench::run(jobs);
        for r in &rows {
            eprintln!(
                "  {}: {} points, {:.2}s -> {:.2}s ({:.2}x), identical: {}",
                r.experiment,
                r.points,
                r.sequential_s,
                r.parallel_s,
                r.speedup(),
                r.identical
            );
            assert!(r.identical, "{}: parallel output diverged", r.experiment);
        }
        // Speedup is only a meaningful assertion when the host can
        // actually run workers side by side; the shared gate also
        // checks the sweep runner really overlapped points.
        let p = halo_sim::ParallelismReport::capture(jobs);
        if p.can_assert_speedup(2) && p.observed >= 2 {
            let best = rows
                .iter()
                .map(halo_bench::sweep_bench::SweepBenchRow::speedup)
                .fold(0.0, f64::max);
            assert!(
                best > 1.05,
                "host offers {} cores and the runner overlapped {} points, \
                 yet the best sweep speedup was only {best:.2}x",
                p.host,
                p.observed
            );
        } else {
            eprintln!("bench-sweep: {}", p.skip_note());
        }
        let json = halo_bench::sweep_bench::to_json(&rows, jobs);
        std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
        println!("{json}");
        if which.len() == 1 {
            return;
        }
    }
    let all = which.is_empty() || which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);

    if want("table1") {
        println!("## Table 1 — instructions per software lookup\n");
        println!("{}", ex::table1::table());
    }
    if want("fig3") {
        println!("## Fig. 3 — packet-processing breakdown (cycles/packet)\n");
        println!("{}", ex::fig3::table(&ex::fig3::run(quick)));
    }
    if want("fig4") {
        println!("## Fig. 4 — cuckoo vs SFH cache behaviour\n");
        println!("{}", ex::fig4::table(&ex::fig4::run(quick)));
    }
    if want("fig8b") {
        println!("## Fig. 8b — flow-register accuracy\n");
        println!("{}", ex::fig8b::table(&ex::fig8b::run()));
    }
    if want("fig9") {
        println!("## Fig. 9 — single-table lookup throughput (lookups/kilocycle)\n");
        println!("{}", ex::fig9::table(&ex::fig9::run(quick)));
    }
    if want("fig10") {
        println!("## Fig. 10 — lookup latency breakdown\n");
        println!("{}", ex::fig10::table(&ex::fig10::run()));
    }
    if want("fig11") {
        println!("## Fig. 11 — tuple space search scaling\n");
        println!("{}", ex::fig11::table(&ex::fig11::run(quick)));
    }
    if want("fig12") {
        println!("## Fig. 12 — co-located NF interference\n");
        println!("{}", ex::fig12::table(&ex::fig12::run(quick)));
    }
    if want("table4") {
        println!("## Table 4 — power/area and energy efficiency\n");
        println!("{}", ex::table4::table(&ex::table4::run(quick)));
    }
    if want("fig13") {
        println!("## Fig. 13 — hash-table NF speedups with HALO\n");
        println!("{}", ex::fig13::table(&ex::fig13::run(quick)));
    }
    if want("scaling") {
        println!("## Scaling — multi-core datapath throughput\n");
        println!("{}", ex::scaling::table(&ex::scaling::run(quick)));
    }
    if want("scale") {
        let rows = ex::scale::run(quick);
        println!("## Scale — adversarial streaming workloads vs flow count\n");
        println!("{}", ex::scale::table(&rows));
        let json = ex::scale::to_json(&rows, quick, halo_sim::default_jobs());
        std::fs::write("SCALE_flows.json", &json).expect("write SCALE_flows.json");
    }
    if want("ablation-backends") {
        let cells = ex::ablation_backends::run(quick);
        println!("## Ablation — exact-match backend x lookup strategy\n");
        println!("{}", ex::ablation_backends::table(&cells));
        let json = ex::ablation_backends::to_json(&cells, quick);
        std::fs::write("ABLATION_backends.json", &json).expect("write ABLATION_backends.json");
    }
    if want("ablation-wildcard") {
        let cells = ex::ablation_wildcard::run(quick);
        println!("## Ablation — wildcard backend x ruleset shape x lookup strategy\n");
        println!("{}", ex::ablation_wildcard::table(&cells));
        let json = ex::ablation_wildcard::to_json(&cells, quick);
        std::fs::write("ABLATION_wildcard.json", &json).expect("write ABLATION_wildcard.json");
    }
    if want("extensions") {
        println!(
            "## Extension (§4.8) — tree-index lookup\n{}",
            ex::extensions::tree_lookup()
        );
        println!(
            "## Extension (§4.8) — MemC3-style key-value GETs\n{}",
            ex::extensions::kv_gets()
        );
        println!(
            "## Extension — update cost: cuckoo vs TCAM\n{}",
            ex::extensions::update_cost()
        );
    }
    if want("ablation") {
        println!(
            "## Ablation — metadata cache\n{}",
            ex::ablation::metadata_cache()
        );
        println!(
            "## Ablation — scoreboard depth\n{}",
            ex::ablation::scoreboard_depth()
        );
        println!(
            "## Ablation — dispatch policy\n{}",
            ex::ablation::dispatch_policy()
        );
        println!("## Ablation — locking\n{}", ex::ablation::locking());
        println!(
            "## Ablation — bulk software vs HALO\n{}",
            ex::ablation::bulk_software()
        );
        println!(
            "## Ablation — hybrid threshold\n{}",
            ex::ablation::hybrid_threshold()
        );
        println!(
            "## Ablation — hybrid controller in action\n{}",
            ex::ablation::hybrid_in_action()
        );
    }
}
