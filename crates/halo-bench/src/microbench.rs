//! Minimal wall-clock micro-benchmark driver.
//!
//! The `benches/` targets used to wrap Criterion; that pulled a
//! crates.io dependency into the workspace and broke offline builds, so
//! they now use this dependency-free driver instead: warm up once, run
//! a fixed number of iterations, print min/mean wall time. Simulated
//! cycle numbers (the paper's results) come from the `figures` binary —
//! wall time here only tracks simulation cost.

use std::time::{Duration, Instant};

/// Environment variable overriding the iteration count (default 5).
pub const ITERS_ENV: &str = "HALO_BENCH_ITERS";

/// Resolved iteration count.
#[must_use]
pub fn iterations() -> u32 {
    std::env::var(ITERS_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5)
}

/// Times `f` over [`iterations`] runs (after one warm-up) and prints
/// one result line: `name  min <t>  mean <t>  (<n> iters)`.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    std::hint::black_box(f()); // warm-up
    let iters = iterations();
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed();
        total += dt;
        min = min.min(dt);
    }
    let mean = total / iters;
    println!("{name:<40} min {min:>10.2?}  mean {mean:>10.2?}  ({iters} iters)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let mut calls = 0u32;
        bench("noop", || calls += 1);
        assert_eq!(calls, iterations() + 1, "warm-up plus timed iterations");
    }
}
