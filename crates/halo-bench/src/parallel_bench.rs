//! Epoch-parallel executor benchmark (`figures bench-parallel`).
//!
//! For each simulated core count, runs the multicore RSS/churn workload
//! once with `threads = 1` and once with `threads = N` through
//! [`MultiCoreDatapath::run_parallel`], checks that every observable
//! output — the [`ScalingReport`](halo_vswitch::ScalingReport), the
//! per-core packet counts, and the master system's full stats counter
//! set — is byte-identical (the epoch/barrier determinism guarantee),
//! and reports both wall-clock times as `BENCH_parallel.json`.
//!
//! Unlike `bench-sweep`, which overlaps *independent* simulation
//! points, this benchmark parallelizes a *single* simulation: the
//! simulated cores of one machine run on real OS threads inside
//! bounded windows and merge at epoch barriers (DESIGN.md §13).

use std::time::Instant;

use halo_mem::{MachineConfig, MemorySystem};
use halo_vswitch::{LookupBackend, MultiCoreConfig, MultiCoreDatapath};

/// One sequential-vs-parallel measurement at a fixed simulated core
/// count.
#[derive(Debug, Clone)]
pub struct ParallelBenchRow {
    /// Simulated PMD cores in the datapath.
    pub cores: usize,
    /// Packets processed per run.
    pub packets: u64,
    /// Host threads of the parallel run (the sequential run uses 1).
    pub threads: usize,
    /// `threads = 1` wall-clock seconds.
    pub sequential_s: f64,
    /// `threads = N` wall-clock seconds.
    pub parallel_s: f64,
    /// Whether both runs produced byte-identical reports, per-core
    /// packet counts, and master stats.
    pub identical: bool,
}

impl ParallelBenchRow {
    /// Sequential / parallel wall-clock ratio.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.parallel_s > 0.0 {
            self.sequential_s / self.parallel_s
        } else {
            0.0
        }
    }
}

/// Runs the workload once at `threads` host threads; returns a string
/// covering every observable output plus the wall-clock seconds of the
/// run itself (datapath construction excluded).
fn outcome(cores: usize, packets: u64, churn_every: u64, threads: usize) -> (String, f64) {
    let mut sys = MemorySystem::new(MachineConfig::default());
    let cfg = MultiCoreConfig::new(cores, 5, 2_000, LookupBackend::Software, 42);
    let mut dp = MultiCoreDatapath::with_config(&mut sys, cfg);
    let t0 = Instant::now();
    let r = dp.run_parallel(&mut sys, packets, churn_every, threads);
    let wall_s = t0.elapsed().as_secs_f64();
    let mut stats: Vec<(String, u64)> = sys
        .stats()
        .counters()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    stats.sort();
    (
        format!("{r:?} | {:?} | {stats:?}", dp.per_core_packets()),
        wall_s,
    )
}

/// Runs the benchmark at each simulated core count. `quick` is the CI
/// smoke setting (~10x fewer packets, one fewer core point, identical
/// shapes); core counts ascend so the JSON rows are monotone.
#[must_use]
pub fn run(quick: bool, threads: usize) -> Vec<ParallelBenchRow> {
    let core_counts: &[usize] = if quick { &[2, 4, 8] } else { &[2, 4, 8, 16] };
    let packets: u64 = if quick { 3_000 } else { 30_000 };
    // Churn ops run single-threaded between windows; spacing them well
    // past WINDOW_PKTS keeps windows wide enough to amortize the
    // per-window thread fan-out.
    let churn_every = packets / 4;
    core_counts
        .iter()
        .map(|&cores| {
            let (seq_out, sequential_s) = outcome(cores, packets, churn_every, 1);
            let (par_out, parallel_s) = outcome(cores, packets, churn_every, threads);
            ParallelBenchRow {
                cores,
                packets,
                threads,
                sequential_s,
                parallel_s,
                identical: seq_out == par_out,
            }
        })
        .collect()
}

/// Serializes the rows as the `BENCH_parallel.json` document, headed by
/// the shared [`halo_sim::ParallelismReport`] record (`jobs` here is
/// the thread count of the parallel runs).
#[must_use]
pub fn to_json(rows: &[ParallelBenchRow], quick: bool, threads: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"epoch executor threads=1 vs threads=N\",\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    s.push_str(&halo_sim::ParallelismReport::capture(threads).json_fields());
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"cores\": {}, \"packets\": {}, \"threads\": {}, \"sequential_s\": {:.4}, \
             \"parallel_s\": {:.4}, \"speedup\": {:.3}, \"byte_identical\": {}}}{}\n",
            r.cores,
            r.packets,
            r.threads,
            r.sequential_s,
            r.parallel_s,
            r.speedup(),
            r.identical,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature run of the real harness: ascending core counts, the
    /// determinism flag true at every point.
    #[test]
    fn rows_are_monotone_and_identical() {
        let rows: Vec<ParallelBenchRow> = [2, 4]
            .iter()
            .map(|&cores| {
                let (seq, sequential_s) = outcome(cores, 256, 64, 1);
                let (par, parallel_s) = outcome(cores, 256, 64, 2);
                ParallelBenchRow {
                    cores,
                    packets: 256,
                    threads: 2,
                    sequential_s,
                    parallel_s,
                    identical: seq == par,
                }
            })
            .collect();
        assert!(rows.windows(2).all(|w| w[0].cores < w[1].cores));
        for r in &rows {
            assert!(r.identical, "{}-core run diverged across threads", r.cores);
        }
        let j = to_json(&rows, true, 2);
        assert!(j.contains("\"byte_identical\": true"));
        assert!(j.contains("\"jobs\": 2"));
        assert!(j.contains("\"host_parallelism\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn speedup_handles_zero_wall() {
        let r = ParallelBenchRow {
            cores: 8,
            packets: 0,
            threads: 4,
            sequential_s: 1.0,
            parallel_s: 0.0,
            identical: true,
        };
        assert_eq!(r.speedup(), 0.0);
    }
}
