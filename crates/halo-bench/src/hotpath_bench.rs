//! Simulator hot-path microbenchmark (`figures bench-hotpath`).
//!
//! Measures how fast the *simulator itself* executes — accesses/sec
//! through [`MemorySystem::access_batch`] for working sets resident in
//! L1, LLC, and DRAM, plus packets/sec through the full vswitch
//! pipeline — and serializes the result as `BENCH_hotpath.json`, the
//! tracked perf-trajectory datapoint (see DESIGN.md §9).
//!
//! These numbers are host wall-clock throughput, not simulated-machine
//! throughput: every paper figure is produced by millions of calls
//! through this path, so this benchmark is the repo's iteration speed.

use std::time::Instant;

use halo_classify::PacketHeader;
use halo_cpu::{build_sw_lookup, build_sw_lookup_into, Program, Scratch};
use halo_mem::{AccessKind, Addr, CoreId, MachineConfig, MemorySystem, CACHE_LINE};
use halo_sim::{Cycle, LatencyHistogram, SplitMix64};
use halo_tables::{CuckooTable, FlowKey, LookupTrace};
use halo_vswitch::{LookupBackend, SwitchConfig, VirtualSwitch};

/// One measured hot-path profile.
#[derive(Debug, Clone)]
pub struct HotpathRow {
    /// Profile name (`l1`, `llc`, `dram`, `swprog_alloc`,
    /// `swprog_reuse`, `vswitch`).
    pub profile: &'static str,
    /// Unit of the rate (`accesses`, `programs`, or `packets`).
    pub unit: &'static str,
    /// Operations executed in the timed section.
    pub ops: u64,
    /// Wall-clock seconds of the timed section.
    pub wall_s: f64,
    /// Median per-op *simulated* latency (cycles), from an untimed
    /// sampling pass over the same op stream (log2-bucket resolution).
    pub p50_cyc: u64,
    /// 95th-percentile per-op simulated latency (cycles).
    pub p95_cyc: u64,
    /// 99th-percentile per-op simulated latency (cycles).
    pub p99_cyc: u64,
}

impl HotpathRow {
    /// Operations per wall-clock second.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.ops as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// Size of one `access_batch` burst. Large enough to amortize the
/// per-batch setup, small enough to keep the op buffer L1-resident on
/// the host.
const BATCH: usize = 256;

/// Builds a deterministic access stream over a working set of `lines`
/// cache lines starting at `base`: a SplitMix64-scrambled walk with one
/// store per eight ops.
fn build_ops(base: Addr, lines: u64, n: usize, seed: u64) -> Vec<(Addr, AccessKind)> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let line = rng.next_u64() % lines;
            let kind = if i % 8 == 7 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            (base + line * CACHE_LINE, kind)
        })
        .collect()
}

/// Runs one memory profile: warm the working set once, then time `ops`
/// chained accesses through the batched entry point.
fn mem_profile(profile: &'static str, lines: u64, ops: u64, seed: u64) -> HotpathRow {
    let mut sys = MemorySystem::new(MachineConfig::default());
    let base = sys.data_mut().alloc_lines(lines * CACHE_LINE);
    // Warm-up pass: stream the working set once so the timed section
    // measures the steady-state residency the profile is named after.
    let mut t = Cycle(0);
    for i in 0..lines {
        t = sys
            .access(CoreId(0), base + i * CACHE_LINE, AccessKind::Load, t)
            .complete;
    }
    sys.clear_stats();

    // A few distinct batches so successive rounds do not replay one
    // address sequence verbatim; the timed loop itself is allocation-free.
    let streams: Vec<Vec<(Addr, AccessKind)>> = (0..8)
        .map(|i| build_ops(base, lines, BATCH, seed ^ (i as u64) << 32))
        .collect();
    let mut out = Vec::with_capacity(BATCH);
    let rounds = ops / BATCH as u64;
    let mut round_start = t;
    let t0 = Instant::now();
    for round in 0..rounds {
        out.clear();
        round_start = t;
        t = sys.access_batch(CoreId(0), &streams[(round % 8) as usize], t, &mut out);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    // Per-access simulated latencies, post hoc from the outcomes the
    // final timed round already produced (`out` survives the loop).
    // Bucketing after the fact keeps the percentile bookkeeping out of
    // the timed section, and the samples are genuine steady-state
    // accesses — a replay pass would hit lines the loop just warmed.
    let mut hist = LatencyHistogram::new();
    let mut prev = round_start;
    for o in &out {
        hist.record((o.complete - prev).0);
        prev = o.complete;
    }
    HotpathRow {
        profile,
        unit: "accesses",
        ops: rounds * BATCH as u64,
        wall_s,
        p50_cyc: hist.p50(),
        p95_cyc: hist.p95(),
        p99_cyc: hist.p99(),
    }
}

/// Runs the vswitch profile: a software-backend switch processing a
/// synthetic packet stream through [`VirtualSwitch::process_burst`].
fn vswitch_profile(packets: u64) -> HotpathRow {
    let flows = 256u64;
    let masks = 5usize;
    let mut sys = MemorySystem::new(MachineConfig::small());
    let cfg = SwitchConfig::typical(masks, LookupBackend::Software);
    let mut vs = VirtualSwitch::new(&mut sys, CoreId(0), cfg);
    let headers: Vec<PacketHeader> = (0..flows).map(PacketHeader::synthetic).collect();
    for (f, h) in headers.iter().enumerate() {
        vs.install_flow(&mut sys, &h.miniflow(), f % masks, 0, f as u64)
            .expect("tuple sized for flows");
    }
    vs.warm_tables(&mut sys);

    let burst: Vec<PacketHeader> = (0..packets)
        .map(|i| headers[(i % flows) as usize])
        .collect();
    let mut results = Vec::with_capacity(burst.len());
    let t0 = Instant::now();
    vs.process_burst(&mut sys, None, &burst, Cycle(0), &mut results);
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(results.len(), burst.len());
    // Per-packet simulated latency, post hoc from the completion cycles
    // the timed run already produced (packets run back-to-back, so each
    // packet's cost is the delta between consecutive completions).
    let mut hist = LatencyHistogram::new();
    let mut prev = Cycle(0);
    for &(_, done) in &results {
        hist.record((done - prev).0);
        prev = done;
    }
    HotpathRow {
        profile: "vswitch",
        unit: "packets",
        ops: packets,
        wall_s,
        p50_cyc: hist.p50(),
        p95_cyc: hist.p95(),
        p99_cyc: hist.p99(),
    }
}

/// Measures software-lookup *program construction* throughput over a
/// pool of real cuckoo probe traces. `reuse = false` is the "before"
/// row: one freshly allocated [`Program`] per packet, which is what the
/// vswitch megaflow phase — the dominant phase of the PR-4 six-phase
/// breakdown — did before the pooled buffer landed. `reuse = true` is
/// the "after" row: [`build_sw_lookup_into`] refilling one long-lived
/// buffer, the path `LookupExecutor::run_sw` takes now. The pair pins
/// the micro-pass's win in `BENCH_hotpath.json`.
fn swprog_profile(profile: &'static str, reuse: bool, ops: u64) -> HotpathRow {
    let mut sys = MemorySystem::new(MachineConfig::small());
    let mut table = CuckooTable::create(sys.data_mut(), 64, 13);
    for id in 0..128u64 {
        let _ = table.insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id);
    }
    let mut scratch = Scratch::new(&mut sys);
    // A mix of hits and misses (ids past 128 were never inserted), so
    // the trace pool spans the probe shapes the datapath really builds.
    let traces: Vec<LookupTrace> = (0..192u64)
        .map(|id| table.lookup_traced(sys.data(), &FlowKey::synthetic(id, 13), true))
        .collect();
    let mut buf = Program::with_label("sw_lookup");
    let mut uops = 0u64;
    let t0 = Instant::now();
    for i in 0..ops {
        let trace = &traces[(i % traces.len() as u64) as usize];
        if reuse {
            build_sw_lookup_into(trace, &mut scratch, None, &mut buf);
            uops += buf.len() as u64;
        } else {
            let p = build_sw_lookup(trace, &mut scratch, None);
            uops += p.len() as u64;
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    assert!(uops > 0, "program construction produced no uops");
    HotpathRow {
        profile,
        unit: "programs",
        ops,
        wall_s,
        // Host-side construction work: there is no simulated latency to
        // sample, so the percentile columns are zero by definition.
        p50_cyc: 0,
        p95_cyc: 0,
        p99_cyc: 0,
    }
}

/// Runs the full benchmark. `quick` shrinks op counts ~10x (the CI
/// smoke setting); profiles and shapes are identical in both modes.
#[must_use]
pub fn run(quick: bool) -> Vec<HotpathRow> {
    let scale = if quick { 1 } else { 10 };
    // Working sets sized against MachineConfig::default(): 32 KB L1
    // (512 lines), 1 MB L2, 32 MB LLC.
    vec![
        // Half the L1: every access after warm-up is an L1 hit.
        mem_profile("l1", 256, 2_000_000 * scale, 0x1EAF),
        // 4 MB: 4x the L2, 1/8 of the LLC — the LLC-resident regime the
        // paper's tables live in, and the tentpole's >=2x target.
        mem_profile("llc", 65_536, 400_000 * scale, 0x11C),
        // 64 MB: 2x the LLC; the probe path plus eviction/back-inval.
        mem_profile("dram", 1_048_576, 150_000 * scale, 0xD7A8),
        // Before/after pair for the vswitch micro-pass: per-packet
        // program allocation vs the pooled builder buffer.
        swprog_profile("swprog_alloc", false, 200_000 * scale),
        swprog_profile("swprog_reuse", true, 200_000 * scale),
        vswitch_profile(2_000 * scale),
    ]
}

/// Serializes rows as the `BENCH_hotpath.json` document.
#[must_use]
pub fn to_json(rows: &[HotpathRow], quick: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"simulator hot-path throughput\",\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    s.push_str("  \"profiles\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"profile\": \"{}\", \"unit\": \"{}\", \"ops\": {}, \"wall_s\": {:.4}, \
             \"rate_per_s\": {:.0}, \"p50_cyc\": {}, \"p95_cyc\": {}, \"p99_cyc\": {}}}{}\n",
            r.profile,
            r.unit,
            r.ops,
            r.wall_s,
            r.rate(),
            r.p50_cyc,
            r.p95_cyc,
            r.p99_cyc,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_all_profiles() {
        // Tiny op counts: this is a smoke test of the harness shape,
        // not a measurement.
        let rows = vec![
            mem_profile("l1", 64, 2_048, 1),
            swprog_profile("swprog_alloc", false, 512),
            swprog_profile("swprog_reuse", true, 512),
            vswitch_profile(16),
        ];
        assert!(rows.iter().all(|r| r.ops > 0));
        let j = to_json(&rows, true);
        assert!(j.contains("\"profile\": \"l1\""));
        assert!(j.contains("\"profile\": \"swprog_alloc\""));
        assert!(j.contains("\"profile\": \"swprog_reuse\""));
        assert!(j.contains("\"profile\": \"vswitch\""));
        assert!(j.contains("\"p50_cyc\""));
        assert!(j.contains("\"p95_cyc\""));
        assert!(j.contains("\"p99_cyc\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn percentiles_are_ordered_and_plausible() {
        // An L1-resident stream: every sampled access is a cheap hit,
        // so the spread between p50 and p99 stays tight and nonzero.
        let r = mem_profile("l1", 64, 2_048, 7);
        assert!(r.p50_cyc > 0);
        assert!(r.p50_cyc <= r.p95_cyc && r.p95_cyc <= r.p99_cyc);
        let v = vswitch_profile(32);
        assert!(v.p50_cyc > 0, "per-packet cycles must be nonzero");
        assert!(v.p50_cyc <= v.p99_cyc);
    }

    #[test]
    fn rate_handles_zero_wall() {
        let r = HotpathRow {
            profile: "x",
            unit: "accesses",
            ops: 10,
            wall_s: 0.0,
            p50_cyc: 0,
            p95_cyc: 0,
            p99_cyc: 0,
        };
        assert_eq!(r.rate(), 0.0);
    }
}
