//! Fig. 13: throughput improvement of hash-table-based network
//! functions (NAT, prads, packet filter) with HALO, across the Table 3
//! entry counts.

use halo_accel::{AcceleratorConfig, HaloEngine};
use halo_mem::{CoreId, MachineConfig, MemorySystem};
use halo_nf::{HashNf, HashNfKind};
use halo_sim::{fmt_f64, TextTable};

/// One Fig. 13 bar.
#[derive(Debug, Clone, Copy)]
pub struct Fig13Row {
    /// The NF.
    pub nf: HashNfKind,
    /// Table entries / rules (Table 3 configuration).
    pub entries: usize,
    /// Software cycles per packet.
    pub sw_cycles_per_packet: f64,
    /// HALO cycles per packet.
    pub halo_cycles_per_packet: f64,
    /// Throughput speedup (software / HALO).
    pub speedup: f64,
}

/// Runs the study over every Table 3 configuration.
#[must_use]
pub fn run(quick: bool) -> Vec<Fig13Row> {
    let packets: u64 = if quick { 60 } else { 250 };
    let mut out = Vec::new();
    for nf in HashNfKind::all() {
        let mut sizes: Vec<usize> = nf
            .table3_sizes()
            .iter()
            .map(|&e| if quick { e.min(10_000) } else { e })
            .collect();
        sizes.dedup();
        for &entries in &sizes {
            let mut sys = MemorySystem::new(MachineConfig::default());
            let mut w = HashNf::new(&mut sys, CoreId(0), nf, entries, 21);
            w.warm(&mut sys);
            let sw = w.run_software(&mut sys, packets);

            let mut sys = MemorySystem::new(MachineConfig::default());
            let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
            let mut w = HashNf::new(&mut sys, CoreId(0), nf, entries, 21);
            w.warm(&mut sys);
            let hw = w.run_halo(&mut sys, &mut engine, packets);

            out.push(Fig13Row {
                nf,
                entries,
                sw_cycles_per_packet: sw.cycles_per_packet,
                halo_cycles_per_packet: hw.cycles_per_packet,
                speedup: sw.cycles_per_packet / hw.cycles_per_packet,
            });
        }
    }
    out
}

/// Formats like the paper's Fig. 13.
#[must_use]
pub fn table(rows: &[Fig13Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "NF",
        "entries",
        "software cy/pkt",
        "HALO cy/pkt",
        "speedup",
    ]);
    for r in rows {
        t.row(vec![
            r.nf.name().to_string(),
            r.entries.to_string(),
            fmt_f64(r.sw_cycles_per_packet),
            fmt_f64(r.halo_cycles_per_packet),
            format!("{}x", fmt_f64(r.speedup)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nfs_speed_up_in_the_paper_band() {
        let rows = run(true);
        // Quick mode caps table sizes, deduplicating some Table 3 rows.
        assert!(rows.len() >= 7);
        for r in &rows {
            // Paper: 2.3x - 2.7x. Allow a generous band around it.
            assert!(
                r.speedup > 1.4,
                "{} @ {}: speedup {} too low",
                r.nf.name(),
                r.entries,
                r.speedup
            );
            assert!(
                r.speedup < 6.0,
                "{} @ {}: speedup {} implausibly high",
                r.nf.name(),
                r.entries,
                r.speedup
            );
        }
    }
}
