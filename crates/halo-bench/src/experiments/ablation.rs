//! Ablation studies for the design choices DESIGN.md calls out:
//! metadata cache, scoreboard depth, dispatch policy, hardware locking,
//! and the hybrid-mode threshold.
//!
//! Every study is a sweep of independent configurations, so each
//! configuration runs as one [`SweepPoint`] on the shared runner; rows
//! come back in configuration order, keeping the printed tables
//! byte-identical at any `--jobs` level.

use halo_accel::{AcceleratorConfig, DispatchPolicy, HaloEngine, HybridClassifier, HybridConfig};
use halo_cpu::{build_sw_lookup, CoreModel, Scratch};
use halo_mem::{AccessKind, CoreId, MachineConfig, MemorySystem};
use halo_sim::{fmt_f64, point_seed, Cycle, Cycles, FnPoint, SplitMix64, SweepRunner, TextTable};
use halo_tables::{CuckooTable, FlowKey};

fn build_table(sys: &mut MemorySystem, flows: usize) -> CuckooTable {
    let mut table = CuckooTable::with_capacity_for(sys.data_mut(), flows, 0.8, 13);
    for id in 0..flows as u64 {
        let _ = table.insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id);
    }
    let lines: Vec<_> = table.all_lines().collect();
    for a in lines {
        sys.warm_llc(a);
    }
    table
}

/// Boxed row-producing point used by studies whose configurations need
/// heterogeneous closures.
type RowPoint = FnPoint<Box<dyn Fn() -> Vec<String> + Send + 'static>>;

fn sweep_rows(name: &str, points: Vec<RowPoint>, headers: Vec<&str>) -> TextTable {
    let rows = SweepRunner::from_env(name).run(points);
    let mut t = TextTable::new(headers);
    for r in rows {
        t.row(r);
    }
    t
}

/// Metadata cache on/off: average blocking-lookup latency.
#[must_use]
pub fn metadata_cache() -> TextTable {
    let points: Vec<RowPoint> = [true, false]
        .iter()
        .enumerate()
        .map(|(i, &enabled)| {
            let seed = point_seed("ablation.metadata_cache", i as u64);
            let f: Box<dyn Fn() -> Vec<String> + Send> = Box::new(move || {
                let mut sys = MemorySystem::new(MachineConfig::default());
                let table = build_table(&mut sys, 20_000);
                let cfg = AcceleratorConfig {
                    metadata_cache: enabled,
                    ..AcceleratorConfig::default()
                };
                let mut engine = HaloEngine::new(&sys, cfg);
                let mut rng = SplitMix64::new(seed);
                let mut total = 0u64;
                let mut t0 = Cycle(0);
                const N: u64 = 200;
                for _ in 0..N {
                    let key = FlowKey::synthetic(rng.below(20_000), 13);
                    let (_, done) = engine.lookup_b(&mut sys, CoreId(0), &table, &key, None, t0);
                    total += (done - t0).0;
                    t0 = done;
                }
                vec![
                    if enabled { "on (10 tables)" } else { "off" }.into(),
                    fmt_f64(total as f64 / N as f64),
                ]
            });
            FnPoint::new(
                format!("metadata cache {}", if enabled { "on" } else { "off" }),
                f,
            )
        })
        .collect();
    sweep_rows(
        "ablation.metadata_cache",
        points,
        vec!["metadata cache", "avg LOOKUP_B latency (cy)"],
    )
}

/// Scoreboard depth sweep: non-blocking batch throughput.
#[must_use]
pub fn scoreboard_depth() -> TextTable {
    let points: Vec<RowPoint> = [1usize, 2, 10, 32]
        .iter()
        .enumerate()
        .map(|(i, &depth)| {
            let seed = point_seed("ablation.scoreboard_depth", i as u64);
            let f: Box<dyn Fn() -> Vec<String> + Send> = Box::new(move || {
                let mut sys = MemorySystem::new(MachineConfig::default());
                let table = build_table(&mut sys, 20_000);
                let cfg = AcceleratorConfig {
                    scoreboard_depth: depth,
                    ..AcceleratorConfig::default()
                };
                let mut engine = HaloEngine::new(&sys, cfg);
                let dest = sys.data_mut().alloc_lines(64);
                let mut rng = SplitMix64::new(seed);
                let start = Cycle(0);
                let mut t0 = start;
                const N: u64 = 400;
                let mut done_total = 0u64;
                while done_total < N {
                    let batch = 8.min(N - done_total);
                    let mut batch_done = t0;
                    for i in 0..batch {
                        let key = FlowKey::synthetic(rng.below(20_000), 13);
                        let h = engine.lookup_nb(
                            &mut sys,
                            CoreId(0),
                            &table,
                            &key,
                            None,
                            dest + i * 8,
                            t0 + Cycles(i),
                        );
                        batch_done = batch_done.max(h.result_at);
                    }
                    let (_, snap) = engine.snapshot_read(&mut sys, CoreId(0), dest, batch_done);
                    t0 = snap;
                    done_total += batch;
                }
                vec![
                    depth.to_string(),
                    fmt_f64(crate::experiments::harness::kilo_throughput(N, t0 - start)),
                ]
            });
            FnPoint::new(format!("scoreboard depth {depth}"), f)
        })
        .collect();
    sweep_rows(
        "ablation.scoreboard_depth",
        points,
        vec!["scoreboard depth", "NB throughput (lookups/kcy)"],
    )
}

/// Dispatch policy comparison on a multi-table workload.
#[must_use]
pub fn dispatch_policy() -> TextTable {
    let policies = [
        ("table-hash (paper)", DispatchPolicy::TableHash),
        ("round-robin", DispatchPolicy::RoundRobin),
        ("key-hash", DispatchPolicy::KeyHash),
    ];
    let points: Vec<RowPoint> = policies
        .iter()
        .enumerate()
        .map(|(i, &(name, policy))| {
            let seed = point_seed("ablation.dispatch_policy", i as u64);
            let f: Box<dyn Fn() -> Vec<String> + Send> = Box::new(move || {
                let mut sys = MemorySystem::new(MachineConfig::default());
                // Ten tables, queries spread across them (a tuple-space-like
                // multi-table pattern).
                let tables: Vec<CuckooTable> =
                    (0..10).map(|_| build_table(&mut sys, 2_000)).collect();
                let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
                engine.set_policy(policy);
                let mut rng = SplitMix64::new(seed);
                let start = Cycle(0);
                let mut finish = start;
                const N: u64 = 400;
                for i in 0..N {
                    let table = &tables[(i % 10) as usize];
                    let key = FlowKey::synthetic(rng.below(2_000), 13);
                    let tr = table.lookup_traced(sys.data_mut(), &key, false);
                    let h = halo_tables::hash_key(&key, halo_tables::SEED_PRIMARY);
                    let out = engine.dispatch(
                        &mut sys,
                        CoreId(0),
                        table.meta_addr(),
                        &tr,
                        h,
                        None,
                        None,
                        start + Cycles(i * 2), // steady 0.5 queries/cycle offered
                    );
                    finish = finish.max(out.complete);
                }
                let used = engine
                    .accelerators()
                    .iter()
                    .filter(|a| a.queries() > 0)
                    .count();
                vec![
                    name.into(),
                    fmt_f64(crate::experiments::harness::kilo_throughput(
                        N,
                        finish - start,
                    )),
                    used.to_string(),
                ]
            });
            FnPoint::new(name, f)
        })
        .collect();
    sweep_rows(
        "ablation.dispatch_policy",
        points,
        vec!["dispatch policy", "throughput (lookups/kcy)", "accels used"],
    )
}

/// Hardware lock bit vs software optimistic locking under a concurrent
/// writer.
#[must_use]
pub fn locking() -> TextTable {
    let sw_seed = point_seed("ablation.locking", 0);
    let hw_seed = point_seed("ablation.locking", 1);

    // Software locking: reader pays the version-check instructions.
    let software: Box<dyn Fn() -> Vec<String> + Send> = Box::new(move || {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut table = build_table(&mut sys, 5_000);
        let mut scratch = Scratch::new(&mut sys);
        scratch.warm(&mut sys, CoreId(0));
        let mut core = CoreModel::new(CoreId(0), sys.config());
        let mut rng = SplitMix64::new(sw_seed);
        let mut total = 0u64;
        let mut t0 = Cycle(0);
        const N: u64 = 150;
        for i in 0..N {
            // A concurrent writer relocates entries now and then.
            if i % 8 == 0 {
                let victim = FlowKey::synthetic(rng.below(5_000), 13);
                table.cuckoo_move(sys.data_mut(), &victim);
            }
            let key = FlowKey::synthetic(rng.below(5_000), 13);
            let tr = table.lookup_traced(sys.data_mut(), &key, true);
            let prog = build_sw_lookup(&tr, &mut scratch, None);
            let r = core.run(&prog, &mut sys, t0);
            total += (r.finish - r.start).0;
            t0 = r.finish;
        }
        vec![
            "software optimistic".into(),
            fmt_f64(total as f64 / N as f64),
        ]
    });

    // Hardware lock bit: the accelerator pins lines; a concurrent
    // writer's stores stall on the lock instead of the reader paying
    // per-lookup instructions.
    let hardware: Box<dyn Fn() -> Vec<String> + Send> = Box::new(move || {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut table = build_table(&mut sys, 5_000);
        let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
        let mut rng = SplitMix64::new(hw_seed);
        let mut total = 0u64;
        let mut t0 = Cycle(0);
        const N: u64 = 150;
        for i in 0..N {
            if i % 8 == 0 {
                let victim = FlowKey::synthetic(rng.below(5_000), 13);
                // Writer core issues its stores (they respect the lock bits).
                let (b1, _) = halo_tables::bucket_pair(&victim, table.meta().buckets);
                let addr = table.meta().bucket_addr(b1);
                sys.access(CoreId(1), addr, AccessKind::Store, t0);
                table.cuckoo_move(sys.data_mut(), &victim);
            }
            let key = FlowKey::synthetic(rng.below(5_000), 13);
            let (_, done) = engine.lookup_b(&mut sys, CoreId(0), &table, &key, None, t0);
            total += (done - t0).0;
            t0 = done;
        }
        vec![
            "HALO hardware lock bit".into(),
            fmt_f64(total as f64 / N as f64),
        ]
    });

    sweep_rows(
        "ablation.locking",
        vec![
            FnPoint::new("software optimistic", software),
            FnPoint::new("hardware lock bit", hardware),
        ],
        vec!["locking scheme", "avg lookup latency (cy)"],
    )
}

/// Hybrid-mode threshold sweep: where does the SW/HALO crossover sit?
#[must_use]
pub fn hybrid_threshold() -> TextTable {
    let points: Vec<RowPoint> = [8usize, 32, 64, 256, 4096]
        .iter()
        .enumerate()
        .map(|(i, &flows)| {
            let seed = point_seed("ablation.hybrid_threshold", i as u64);
            let f: Box<dyn Fn() -> Vec<String> + Send> = Box::new(move || {
                // Software path with the table warm in private caches.
                let mut sys = MemorySystem::new(MachineConfig::default());
                let mut table = CuckooTable::with_capacity_for(sys.data_mut(), flows, 0.8, 13);
                for id in 0..flows as u64 {
                    let _ = table.insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id);
                }
                for a in table.all_lines().collect::<Vec<_>>() {
                    // Small working sets stay private-cache resident in steady
                    // state; larger ones realistically live in the LLC (the
                    // rest of the datapath competes for L1/L2).
                    if flows <= 256 {
                        sys.warm_private(CoreId(0), a);
                    } else {
                        sys.warm_llc(a);
                    }
                }
                let mut scratch = Scratch::new(&mut sys);
                scratch.warm(&mut sys, CoreId(0));
                let mut core = CoreModel::new(CoreId(0), sys.config());
                let mut rng = SplitMix64::new(seed);
                let mut sw_total = 0u64;
                let mut t0 = Cycle(0);
                const N: u64 = 150;
                for _ in 0..N {
                    let key = FlowKey::synthetic(rng.below(flows as u64), 13);
                    let tr = table.lookup_traced(sys.data_mut(), &key, true);
                    let prog = build_sw_lookup(&tr, &mut scratch, None);
                    let r = core.run(&prog, &mut sys, t0);
                    sw_total += (r.finish - r.start).0;
                    t0 = r.finish;
                }
                let sw = sw_total as f64 / N as f64;

                let mut sys = MemorySystem::new(MachineConfig::default());
                let table2 = build_table(&mut sys, flows);
                let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
                let mut rng = SplitMix64::new(seed);
                let mut hw_total = 0u64;
                let mut t0 = Cycle(0);
                for _ in 0..N {
                    let key = FlowKey::synthetic(rng.below(flows as u64), 13);
                    let (_, done) = engine.lookup_b(&mut sys, CoreId(0), &table2, &key, None, t0);
                    hw_total += (done - t0).0;
                    t0 = done;
                }
                let hw = hw_total as f64 / N as f64;
                vec![
                    flows.to_string(),
                    fmt_f64(sw),
                    fmt_f64(hw),
                    if sw < hw { "software" } else { "HALO" }.into(),
                ]
            });
            FnPoint::new(format!("{flows} flows"), f)
        })
        .collect();
    sweep_rows(
        "ablation.hybrid_threshold",
        points,
        vec!["flows", "software cy/lookup", "HALO cy/lookup", "faster"],
    )
}

/// Hybrid controller in action: lookups split between modes as the flow
/// count crosses the threshold.
#[must_use]
pub fn hybrid_in_action() -> TextTable {
    let points: Vec<RowPoint> = [16usize, 1024]
        .iter()
        .enumerate()
        .map(|(i, &flows)| {
            let seed = point_seed("ablation.hybrid_in_action", i as u64);
            let f: Box<dyn Fn() -> Vec<String> + Send> = Box::new(move || {
                let mut sys = MemorySystem::new(MachineConfig::default());
                let mut table = CuckooTable::with_capacity_for(sys.data_mut(), flows, 0.8, 13);
                for id in 0..flows as u64 {
                    let _ = table.insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id);
                }
                for a in table.all_lines().collect::<Vec<_>>() {
                    sys.warm_llc(a);
                }
                let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
                let mut hybrid =
                    HybridClassifier::new(&mut sys, CoreId(0), HybridConfig::default());
                let mut rng = SplitMix64::new(seed);
                let mut t0 = Cycle(0);
                for _ in 0..1200u64 {
                    let key = FlowKey::synthetic(rng.below(flows as u64), 13);
                    let (_, done) = hybrid.lookup(&mut sys, &mut engine, &table, &key, t0);
                    t0 = done;
                }
                let (sw, hw) = hybrid.split();
                vec![
                    flows.to_string(),
                    sw.to_string(),
                    hw.to_string(),
                    format!("{:?}", hybrid.mode()),
                ]
            });
            FnPoint::new(format!("{flows} flows"), f)
        })
        .collect();
    sweep_rows(
        "ablation.hybrid_in_action",
        points,
        vec!["flows", "sw lookups", "halo lookups", "final mode"],
    )
}

/// Optimized-software fairness check: DPDK's bulk lookup API
/// (`rte_hash_lookup_bulk`, software pipelining for MLP) vs scalar
/// software vs HALO non-blocking, on an LLC-resident table.
#[must_use]
pub fn bulk_software() -> TextTable {
    const FLOWS: usize = 20_000;
    const N: u64 = 320;
    let scalar_seed = point_seed("ablation.bulk_software", 0);
    let bulk_seed = point_seed("ablation.bulk_software", 1);
    let nb_seed = point_seed("ablation.bulk_software", 2);

    // Scalar software.
    let scalar: Box<dyn Fn() -> Vec<String> + Send> = Box::new(move || {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let table = build_table(&mut sys, FLOWS);
        let mut scratch = Scratch::new(&mut sys);
        scratch.warm(&mut sys, CoreId(0));
        let mut core = CoreModel::new(CoreId(0), sys.config());
        let mut rng = SplitMix64::new(scalar_seed);
        let start = Cycle(0);
        let mut t0 = start;
        for _ in 0..N {
            let key = FlowKey::synthetic(rng.below(FLOWS as u64), 13);
            let tr = table.lookup_traced(sys.data_mut(), &key, true);
            let prog = build_sw_lookup(&tr, &mut scratch, None);
            t0 = core.run(&prog, &mut sys, t0).finish;
        }
        vec![
            "software (scalar)".into(),
            fmt_f64(crate::experiments::harness::kilo_throughput(N, t0 - start)),
        ]
    });

    // Bulk software (bursts of 8).
    let bulk: Box<dyn Fn() -> Vec<String> + Send> = Box::new(move || {
        use halo_cpu::build_sw_lookup_bulk;
        let mut sys = MemorySystem::new(MachineConfig::default());
        let table = build_table(&mut sys, FLOWS);
        let mut scratch = Scratch::new(&mut sys);
        scratch.warm(&mut sys, CoreId(0));
        let mut core = CoreModel::new(CoreId(0), sys.config());
        let mut rng = SplitMix64::new(bulk_seed);
        let start = Cycle(0);
        let mut t0 = start;
        let mut done = 0u64;
        while done < N {
            let burst = 8.min(N - done);
            let traces: Vec<_> = (0..burst)
                .map(|_| {
                    let key = FlowKey::synthetic(rng.below(FLOWS as u64), 13);
                    table.lookup_traced(sys.data_mut(), &key, true)
                })
                .collect();
            let refs: Vec<&halo_tables::LookupTrace> = traces.iter().collect();
            let prog = build_sw_lookup_bulk(&refs, &mut scratch);
            t0 = core.run(&prog, &mut sys, t0).finish;
            done += burst;
        }
        vec![
            "software (bulk x8)".into(),
            fmt_f64(crate::experiments::harness::kilo_throughput(N, t0 - start)),
        ]
    });

    // HALO non-blocking (bursts of 8).
    let halo_nb: Box<dyn Fn() -> Vec<String> + Send> = Box::new(move || {
        let mut w = crate::experiments::harness::SingleTableWorkload::new(1 << 15, 0.6, nb_seed);
        let thr = w.throughput(crate::experiments::harness::Approach::HaloNonBlocking, N);
        vec!["HALO non-blocking".into(), fmt_f64(thr)]
    });

    sweep_rows(
        "ablation.bulk_software",
        vec![
            FnPoint::new("software scalar", scalar),
            FnPoint::new("software bulk", bulk),
            FnPoint::new("HALO non-blocking", halo_nb),
        ],
        vec!["approach", "throughput (lookups/kcy)"],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_cache_helps() {
        let t = metadata_cache();
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().skip(1).collect();
        let on: f64 = lines[0].split(',').nth(1).unwrap().parse().unwrap();
        let off: f64 = lines[1].split(',').nth(1).unwrap().parse().unwrap();
        assert!(on < off, "metadata cache on ({on}) must beat off ({off})");
    }

    #[test]
    fn deeper_scoreboard_helps_throughput() {
        let t = scoreboard_depth();
        let csv = t.to_csv();
        let vals: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(
            vals[2] > vals[0],
            "depth 10 ({}) must beat depth 1 ({})",
            vals[2],
            vals[0]
        );
    }

    #[test]
    fn table_hash_spreads_multi_table_load() {
        let t = dispatch_policy();
        let csv = t.to_csv();
        let used: Vec<u64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(2).unwrap().parse().unwrap())
            .collect();
        assert!(used[0] > 1, "table-hash must use several accelerators");
        assert!(used[1] >= used[0], "round-robin uses at least as many");
    }

    #[test]
    fn bulk_software_helps_but_halo_still_wins() {
        let t = bulk_software();
        let csv = t.to_csv();
        let vals: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(
            vals[1] > vals[0],
            "bulk {} must beat scalar {}",
            vals[1],
            vals[0]
        );
        assert!(
            vals[2] > vals[1],
            "HALO {} must beat bulk {}",
            vals[2],
            vals[1]
        );
    }

    #[test]
    fn hybrid_crossover_exists() {
        let t = hybrid_threshold();
        let csv = t.to_csv();
        let winners: Vec<String> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(3).unwrap().to_string())
            .collect();
        assert_eq!(winners[0], "software", "8 flows should favor software");
        assert_eq!(
            winners.last().unwrap(),
            "HALO",
            "4096 flows should favor HALO"
        );
    }
}
