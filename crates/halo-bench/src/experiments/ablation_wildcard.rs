//! Wildcard-backend ablation: tuple space search (prefix expansion)
//! against the RVH range-vector hash, crossed with the three lookup
//! strategies (software, `LOOKUP_B`, `LOOKUP_NB`) over rulesets of
//! increasing range-heaviness.
//!
//! TSS keys every rule by its mask, so an exact-heavy MegaFlow ruleset
//! collapses into one tuple — one probe per classification — while a
//! port-span ACL explodes into a tuple per prefix-width combination.
//! RVH partitions the fields into [`RVH_VECTORS`](halo_classify::RVH_VECTORS)
//! fixed vectors and probes exactly that many marker tables regardless
//! of ruleset shape, trading a small constant floor for immunity to
//! range-driven tuple explosion. The figure reports probes per lookup,
//! bucket lines loaded, table footprint, and throughput under each
//! HALO strategy, so the crossover is visible end to end.

use crate::experiments::ablation_backends::Strategy;
use crate::experiments::harness::kilo_throughput;
use halo_accel::{AcceleratorConfig, HaloEngine};
use halo_classify::SearchMode;
use halo_datapath::{
    LookupBackend, LookupExecutor, NbRegion, TableBackend, WildcardBackend, WildcardMatcher,
    WildcardTable,
};
use halo_mem::{CoreId, MachineConfig, MemorySystem, CACHE_LINE};
use halo_nf::{generate_ruleset, ruleset_traffic, RulesetShape};
use halo_sim::{fmt_f64, point_seed, Cycle, SweepPoint, SweepRunner, TextTable};
use halo_tables::{FlowKey, TraceStep};

/// One measured cell of the backend × shape × strategy matrix.
#[derive(Debug, Clone, Copy)]
pub struct WildcardCell {
    /// Which wildcard classifier.
    pub backend: WildcardBackend,
    /// Which ruleset shape.
    pub shape: RulesetShape,
    /// Which lookup strategy.
    pub strategy: Strategy,
    /// Classifications per kilocycle.
    pub throughput: f64,
    /// Probes (tuple or vector lookups) per classification.
    pub probes_per_lookup: f64,
    /// Bucket lines loaded per classification, summed over probes.
    pub buckets_per_lookup: f64,
    /// Table footprint in simulated-memory bytes.
    pub mem_bytes: u64,
    /// Installed rule count (after replacement collapsing).
    pub rules: u64,
}

impl Strategy {
    /// The [`LookupExecutor`] backend this strategy dispatches to.
    fn lookup_backend(self) -> LookupBackend {
        match self {
            Strategy::Software => LookupBackend::Software,
            Strategy::HaloBlocking => LookupBackend::HaloBlocking,
            Strategy::HaloNonBlocking => LookupBackend::HaloNonBlocking,
        }
    }
}

/// A workload over one runtime-selected wildcard backend: a generated
/// ruleset installed through [`WildcardTable::insert_range`], probed
/// with a 70%-hit traffic mix sampled inside the rules.
struct WildcardWorkload {
    sys: MemorySystem,
    table: WildcardMatcher,
    keys: Vec<FlowKey>,
}

impl WildcardWorkload {
    fn new(
        backend: WildcardBackend,
        shape: RulesetShape,
        rules: usize,
        lookups: usize,
        capacity: usize,
        seed: u64,
    ) -> Self {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let ruleset = generate_ruleset(shape, rules, seed);
        let mut table = backend.build(
            sys.data_mut(),
            TableBackend::Cuckoo,
            &[],
            capacity,
            SearchMode::HighestPriority,
        );
        for rule in &ruleset {
            table
                .insert_range(sys.data_mut(), rule)
                .expect("generated ruleset fits the table");
        }
        for a in table.memory_lines() {
            sys.warm_llc(a);
        }
        let keys = ruleset_traffic(&ruleset, lookups, 0.7, seed ^ 0x5ca1_ab1e);
        WildcardWorkload { sys, table, keys }
    }

    /// Trace-level metrics over the key stream: probes and bucket-line
    /// loads per classification. Traced classifications only read the
    /// simulated data array, so the cache model stays warm.
    fn metrics(&mut self) -> (f64, f64) {
        let (mut probes, mut buckets) = (0u64, 0u64);
        for key in &self.keys {
            let (_, traces) = self.table.classify_traced(self.sys.data_mut(), key, false);
            probes += traces.len() as u64;
            buckets += traces
                .iter()
                .flat_map(|(_, tr)| tr.steps.iter())
                .filter(|s| matches!(s, TraceStep::LoadBucket(_)))
                .count() as u64;
        }
        let n = self.keys.len().max(1) as f64;
        (probes as f64 / n, buckets as f64 / n)
    }

    /// Times the full key stream under one strategy: the functional
    /// probes come from [`WildcardTable::classify_traced`], the cycle
    /// cost from [`LookupExecutor::search`] — the same pricing path the
    /// datapath frontends use.
    fn throughput(&mut self, strategy: Strategy) -> f64 {
        let backend = strategy.lookup_backend();
        let mut exec = LookupExecutor::new(&mut self.sys, CoreId(0), backend);
        exec.warm_scratch(&mut self.sys);
        if backend == LookupBackend::HaloNonBlocking {
            let nb = NbRegion::allocate(self.sys.data_mut(), self.table.probes().max(1));
            exec = exec.with_nb_region(nb);
        }
        let mut engine = (backend != LookupBackend::Software)
            .then(|| HaloEngine::new(&self.sys, AcceleratorConfig::default()));
        let software = backend == LookupBackend::Software;
        let start = Cycle(0);
        let mut t = start;
        for key in &self.keys {
            let (_, probes) = self
                .table
                .classify_traced(self.sys.data_mut(), key, software);
            t = exec.search(&mut self.sys, engine.as_mut(), &self.table, key, &probes, t);
        }
        kilo_throughput(self.keys.len() as u64, t - start)
    }
}

/// One sweep point: a (backend, shape) pair measuring all three
/// strategies plus the trace-level metrics, every pass over a fresh
/// identically-seeded workload so the key streams match.
#[derive(Debug, Clone, Copy)]
struct WildcardPoint {
    backend: WildcardBackend,
    shape: RulesetShape,
    rules: usize,
    lookups: usize,
    capacity: usize,
    seed: u64,
}

impl SweepPoint for WildcardPoint {
    type Row = Vec<WildcardCell>;

    fn run(&self) -> Vec<WildcardCell> {
        let build = || {
            WildcardWorkload::new(
                self.backend,
                self.shape,
                self.rules,
                self.lookups,
                self.capacity,
                self.seed,
            )
        };
        let mut probe_w = build();
        let (probes, buckets) = probe_w.metrics();
        let mem_bytes = probe_w.table.memory_lines().len() as u64 * CACHE_LINE;
        let rules = probe_w.table.rules() as u64;
        Strategy::all()
            .into_iter()
            .map(|strategy| {
                let mut w = build();
                WildcardCell {
                    backend: self.backend,
                    shape: self.shape,
                    strategy,
                    throughput: w.throughput(strategy),
                    probes_per_lookup: probes,
                    buckets_per_lookup: buckets,
                    mem_bytes,
                    rules,
                }
            })
            .collect()
    }

    fn label(&self) -> String {
        format!("{} / {}", self.backend.name(), self.shape.name())
    }
}

fn points(rules: usize, lookups: usize, capacity: usize) -> Vec<WildcardPoint> {
    let mut out = Vec::new();
    for backend in WildcardBackend::all() {
        for shape in RulesetShape::all() {
            out.push(WildcardPoint {
                backend,
                shape,
                rules,
                lookups,
                capacity,
                seed: point_seed("ablation-wildcard", out.len() as u64),
            });
        }
    }
    out
}

/// Runs the matrix on an explicit runner (see [`run`] for the default).
#[must_use]
pub fn run_with(quick: bool, runner: &SweepRunner) -> Vec<WildcardCell> {
    let (rules, lookups, capacity) = if quick {
        (48, 160, 1 << 10)
    } else {
        (224, 600, 1 << 12)
    };
    runner
        .run(points(rules, lookups, capacity))
        .into_iter()
        .flatten()
        .collect()
}

/// A tiny deterministic slice (16 rules, 40 lookups) for the tier-1
/// jobs-invariance guard; same point/merge path as the full matrix.
#[must_use]
pub fn run_small_slice(runner: &SweepRunner) -> Vec<WildcardCell> {
    runner
        .run(points(16, 40, 1 << 9))
        .into_iter()
        .flatten()
        .collect()
}

/// Runs the matrix with the default parallelism (`HALO_JOBS`, then host
/// cores).
#[must_use]
pub fn run(quick: bool) -> Vec<WildcardCell> {
    run_with(quick, &SweepRunner::from_env("ablation-wildcard"))
}

/// Formats the matrix: one row per (backend, shape), one throughput
/// column per strategy, then the trace-level metrics and footprint.
#[must_use]
pub fn table(cells: &[WildcardCell]) -> TextTable {
    let mut t = TextTable::new(vec![
        "backend",
        "ruleset",
        "Software",
        "HALO-B",
        "HALO-NB",
        "probes/lookup",
        "buckets/lookup",
        "table KiB",
    ]);
    let mut i = 0;
    while i < cells.len() {
        let group = &cells[i..(i + 3).min(cells.len())];
        let mut row = vec![
            group[0].backend.name().to_string(),
            group[0].shape.name().to_string(),
        ];
        for c in group {
            row.push(fmt_f64(c.throughput));
        }
        row.push(fmt_f64(group[0].probes_per_lookup));
        row.push(fmt_f64(group[0].buckets_per_lookup));
        row.push(format!("{}", group[0].mem_bytes / 1024));
        t.row(row);
        i += 3;
    }
    t
}

/// Serializes the matrix as a small JSON document (the CI bench-smoke
/// artifact `ABLATION_wildcard.json`).
#[must_use]
pub fn to_json(cells: &[WildcardCell], quick: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"experiment\": \"ablation-wildcard\",\n  \"mode\": \"{}\",\n  \"cells\": [\n",
        if quick { "quick" } else { "full" }
    ));
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"backend\": \"{}\", \"ruleset\": \"{}\", \"strategy\": \"{}\", \
             \"throughput\": {:.6}, \"probes_per_lookup\": {:.6}, \
             \"buckets_per_lookup\": {:.6}, \"mem_bytes\": {}, \"rules\": {}}}{}\n",
            c.backend.name(),
            c.shape.name(),
            c.strategy.name(),
            c.throughput,
            c.probes_per_lookup,
            c.buckets_per_lookup,
            c.mem_bytes,
            c.rules,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_sim::SweepRunner;

    fn quick_cells() -> Vec<WildcardCell> {
        run_with(true, &SweepRunner::new("ablation-wildcard-test", 2).quiet())
    }

    /// The ISSUE's acceptance shapes: on the range-heavy mixes RVH
    /// probes fewer tuples (and loads fewer bucket lines) per lookup
    /// than TSS prefix expansion, while exact-heavy rulesets keep TSS
    /// at its single-tuple best case.
    #[test]
    fn quick_matrix_shapes() {
        let cells = quick_cells();
        assert_eq!(cells.len(), 2 * 3 * 3, "backend x shape x strategy");
        let get = |b: WildcardBackend, s: RulesetShape| {
            cells
                .iter()
                .find(|c| c.backend == b && c.shape == s)
                .copied()
                .expect("cell present")
        };
        for shape in [RulesetShape::PortRange, RulesetShape::AclMix] {
            let tss = get(WildcardBackend::Tss, shape);
            let rvh = get(WildcardBackend::Rvh, shape);
            assert!(
                rvh.probes_per_lookup < tss.probes_per_lookup,
                "{}: RVH {} probes should beat TSS {}",
                shape.name(),
                rvh.probes_per_lookup,
                tss.probes_per_lookup
            );
            assert!(
                rvh.buckets_per_lookup < tss.buckets_per_lookup,
                "{}: RVH bucket loads should beat TSS",
                shape.name()
            );
        }
        let tss_exact = get(WildcardBackend::Tss, RulesetShape::ExactHeavy);
        assert!(
            (tss_exact.probes_per_lookup - 1.0).abs() < 1e-9,
            "exact-heavy TSS collapses to one tuple, got {}",
            tss_exact.probes_per_lookup
        );
        for c in &cells {
            assert!(
                c.throughput > 0.0,
                "{}/{}/{}: non-positive throughput",
                c.backend.name(),
                c.shape.name(),
                c.strategy.name()
            );
            assert!(c.mem_bytes > 0 && c.rules > 0);
        }
    }

    /// JSON round-trips the cell count and names every backend and
    /// shape.
    #[test]
    fn json_covers_matrix() {
        let cells = run_small_slice(&SweepRunner::new("ablation-wildcard-json", 1).quiet());
        let json = to_json(&cells, true);
        for b in WildcardBackend::all() {
            assert!(json.contains(b.name()), "missing {}", b.name());
        }
        for s in RulesetShape::all() {
            assert!(json.contains(s.name()), "missing {}", s.name());
        }
        assert_eq!(json.matches("\"strategy\"").count(), cells.len());
    }
}
