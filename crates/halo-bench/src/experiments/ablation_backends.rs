//! Backend ablation: the three exact-match table implementations
//! (baseline cuckoo, Cuckoo++, EMOMA) crossed with the three lookup
//! strategies (software, `LOOKUP_B`, `LOOKUP_NB`) over hit-heavy and
//! miss-heavy key mixes.
//!
//! The figure isolates where each backend's memory-access-pattern
//! change pays off: Cuckoo++'s presence filters only help on misses
//! (they kill the secondary probe), EMOMA's counting-Bloom steering
//! helps on every lookup (exactly one bucket line, hit or miss), and
//! the strategies scale those savings by how much of the walk the
//! accelerator overlaps.

use crate::experiments::harness::kilo_throughput;
use halo_accel::{AcceleratorConfig, HaloEngine};
use halo_cpu::{build_sw_lookup, CoreModel, Scratch};
use halo_datapath::TableBackend;
use halo_mem::{CoreId, MachineConfig, MemorySystem};
use halo_sim::{fmt_f64, point_seed, SplitMix64, SweepPoint, SweepRunner, TextTable};
use halo_tables::{FlowKey, FlowTable, TraceStep};

/// The two key mixes of the ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// 90% lookups of installed keys, 10% misses.
    HitHeavy,
    /// 10% lookups of installed keys, 90% misses.
    MissHeavy,
}

impl Mix {
    /// Both mixes, hit-heavy first.
    #[must_use]
    pub fn all() -> [Mix; 2] {
        [Mix::HitHeavy, Mix::MissHeavy]
    }

    /// Display label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mix::HitHeavy => "hit-heavy",
            Mix::MissHeavy => "miss-heavy",
        }
    }

    /// Miss probability in percent.
    #[must_use]
    pub fn miss_pct(self) -> u64 {
        match self {
            Mix::HitHeavy => 10,
            Mix::MissHeavy => 90,
        }
    }
}

/// The three lookup strategies compared (TCAMs carry no table backend,
/// so the full five-approach palette of Fig. 9 does not apply here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Software cuckoo walk on a core model.
    Software,
    /// HALO `LOOKUP_B`.
    HaloBlocking,
    /// HALO `LOOKUP_NB` + `SNAPSHOT_READ` in batches of 8.
    HaloNonBlocking,
}

impl Strategy {
    /// All three, software first.
    #[must_use]
    pub fn all() -> [Strategy; 3] {
        [
            Strategy::Software,
            Strategy::HaloBlocking,
            Strategy::HaloNonBlocking,
        ]
    }

    /// Display label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Software => "Software",
            Strategy::HaloBlocking => "HALO-B",
            Strategy::HaloNonBlocking => "HALO-NB",
        }
    }
}

/// One measured cell of the backend × strategy × mix matrix.
#[derive(Debug, Clone, Copy)]
pub struct BackendCell {
    /// Which exact-match implementation.
    pub backend: TableBackend,
    /// Which lookup strategy.
    pub strategy: Strategy,
    /// Which key mix.
    pub mix: Mix,
    /// Lookups per kilocycle.
    pub throughput: f64,
    /// Modeled memory accesses (meta, bucket, and key-value line
    /// touches) per lookup, from the table's own trace.
    pub mem_per_lookup: f64,
    /// Bucket lines loaded per positive lookup.
    pub buckets_per_hit: f64,
    /// Bucket lines loaded per negative lookup.
    pub buckets_per_miss: f64,
}

/// A workload over one runtime-selected backend: `entries`-slot table
/// filled to 75%, probed with a seeded hit/miss key stream.
struct BackendWorkload {
    sys: MemorySystem,
    table: halo_datapath::ExactTable,
    installed: u64,
    miss_pct: u64,
    rng: SplitMix64,
}

impl BackendWorkload {
    fn new(backend: TableBackend, entries: u64, mix: Mix, seed: u64) -> Self {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let target = (entries * 3 / 4).max(1);
        let mut table = backend.build(sys.data_mut(), target as usize, 0.75, 13);
        let mut installed = 0;
        for id in 0..target {
            if table
                .insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id)
                .is_ok()
            {
                installed += 1;
            } else {
                break;
            }
        }
        for a in table.all_lines() {
            sys.warm_llc(a);
        }
        BackendWorkload {
            sys,
            table,
            installed,
            miss_pct: mix.miss_pct(),
            rng: SplitMix64::new(seed ^ 0xBAC),
        }
    }

    /// Next key of the mix: installed with probability `1 - miss_pct`,
    /// otherwise an id far past everything ever inserted.
    fn next_key(&mut self) -> (FlowKey, bool) {
        let miss = self.rng.below(100) < self.miss_pct;
        let id = if miss {
            (1 << 40) + self.rng.below(1 << 20)
        } else {
            self.rng.below(self.installed.max(1))
        };
        (FlowKey::synthetic(id, 13), !miss)
    }

    /// Trace-level metrics over `n` lookups: memory accesses per lookup
    /// and bucket loads split by hit/miss. Traced lookups only read the
    /// simulated data array, so this leaves the cache model untouched.
    fn metrics(&mut self, n: u64) -> (f64, f64, f64) {
        let (mut mem, mut hb, mut mb, mut hits, mut misses) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for _ in 0..n {
            let (key, expect_hit) = self.next_key();
            let tr = self.table.lookup_traced(self.sys.data_mut(), &key, false);
            let buckets = tr
                .steps
                .iter()
                .filter(|s| matches!(s, TraceStep::LoadBucket(_)))
                .count() as u64;
            mem += tr.steps.iter().filter(|s| s.addr().is_some()).count() as u64;
            if expect_hit {
                hits += 1;
                hb += buckets;
            } else {
                misses += 1;
                mb += buckets;
            }
        }
        let per = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        (per(mem, n), per(hb, hits), per(mb, misses))
    }

    fn throughput(&mut self, strategy: Strategy, n: u64) -> f64 {
        match strategy {
            Strategy::Software => self.run_software(n),
            Strategy::HaloBlocking => self.run_halo_b(n),
            Strategy::HaloNonBlocking => self.run_halo_nb(n),
        }
    }

    fn run_software(&mut self, n: u64) -> f64 {
        let mut scratch = Scratch::new(&mut self.sys);
        scratch.warm(&mut self.sys, CoreId(0));
        let mut core = CoreModel::new(CoreId(0), self.sys.config());
        let start = halo_sim::Cycle(0);
        let mut t = start;
        for _ in 0..n {
            let (key, _) = self.next_key();
            let tr = self.table.lookup_traced(self.sys.data_mut(), &key, true);
            let prog = build_sw_lookup(&tr, &mut scratch, None);
            t = core.run(&prog, &mut self.sys, t).finish;
        }
        kilo_throughput(n, t - start)
    }

    fn run_halo_b(&mut self, n: u64) -> f64 {
        let mut engine = HaloEngine::new(&self.sys, AcceleratorConfig::default());
        let start = halo_sim::Cycle(0);
        let mut t = start;
        for _ in 0..n {
            let (key, expect_hit) = self.next_key();
            let (r, done) = engine.lookup_b(&mut self.sys, CoreId(0), &self.table, &key, None, t);
            debug_assert_eq!(r.is_some(), expect_hit);
            t = done;
        }
        kilo_throughput(n, t - start)
    }

    fn run_halo_nb(&mut self, n: u64) -> f64 {
        let mut engine = HaloEngine::new(&self.sys, AcceleratorConfig::default());
        let dest = self.sys.data_mut().alloc_lines(64);
        let start = halo_sim::Cycle(0);
        let mut t = start;
        let mut done_total = 0u64;
        while done_total < n {
            let batch = 8.min(n - done_total);
            let mut batch_done = t;
            for i in 0..batch {
                let (key, _) = self.next_key();
                let h = engine.lookup_nb(
                    &mut self.sys,
                    CoreId(0),
                    &self.table,
                    &key,
                    None,
                    dest + i * 8,
                    t + halo_sim::Cycles(i),
                );
                batch_done = batch_done.max(h.result_at);
            }
            let (_, snap) = engine.snapshot_read(&mut self.sys, CoreId(0), dest, batch_done);
            t = snap;
            done_total += batch;
        }
        kilo_throughput(n, t - start)
    }
}

/// One sweep point: a (backend, mix) pair measuring all three
/// strategies plus the trace-level metrics, every pass over a fresh
/// identically-seeded workload so the key streams match.
#[derive(Debug, Clone, Copy)]
struct BackendPoint {
    backend: TableBackend,
    mix: Mix,
    entries: u64,
    lookups: u64,
    seed: u64,
}

impl SweepPoint for BackendPoint {
    type Row = Vec<BackendCell>;

    fn run(&self) -> Vec<BackendCell> {
        let (mem, bh, bm) = BackendWorkload::new(self.backend, self.entries, self.mix, self.seed)
            .metrics(self.lookups);
        Strategy::all()
            .into_iter()
            .map(|strategy| {
                let mut w = BackendWorkload::new(self.backend, self.entries, self.mix, self.seed);
                BackendCell {
                    backend: self.backend,
                    strategy,
                    mix: self.mix,
                    throughput: w.throughput(strategy, self.lookups),
                    mem_per_lookup: mem,
                    buckets_per_hit: bh,
                    buckets_per_miss: bm,
                }
            })
            .collect()
    }

    fn label(&self) -> String {
        format!("{} / {}", self.backend.name(), self.mix.name())
    }
}

fn points(entries: u64, lookups: u64) -> Vec<BackendPoint> {
    let mut out = Vec::new();
    for backend in TableBackend::all() {
        for mix in Mix::all() {
            out.push(BackendPoint {
                backend,
                mix,
                entries,
                lookups,
                seed: point_seed("ablation-backends", out.len() as u64),
            });
        }
    }
    out
}

/// Runs the matrix on an explicit runner (see [`run`] for the default).
#[must_use]
pub fn run_with(quick: bool, runner: &SweepRunner) -> Vec<BackendCell> {
    let entries = if quick { 1 << 12 } else { 1 << 15 };
    let lookups = if quick { 300 } else { 1000 };
    runner
        .run(points(entries, lookups))
        .into_iter()
        .flatten()
        .collect()
}

/// A tiny deterministic slice (2^8 entries, 60 lookups) for the tier-1
/// jobs-invariance guard; same point/merge path as the full matrix.
#[must_use]
pub fn run_small_slice(runner: &SweepRunner) -> Vec<BackendCell> {
    runner
        .run(points(1 << 8, 60))
        .into_iter()
        .flatten()
        .collect()
}

/// Runs the matrix with the default parallelism (`HALO_JOBS`, then host
/// cores).
#[must_use]
pub fn run(quick: bool) -> Vec<BackendCell> {
    run_with(quick, &SweepRunner::from_env("ablation-backends"))
}

/// Formats the matrix: one row per (backend, mix), one throughput
/// column per strategy, then the trace-level access metrics.
#[must_use]
pub fn table(cells: &[BackendCell]) -> TextTable {
    let mut t = TextTable::new(vec![
        "backend",
        "mix",
        "Software",
        "HALO-B",
        "HALO-NB",
        "mem/lookup",
        "buckets/hit",
        "buckets/miss",
    ]);
    let mut i = 0;
    while i < cells.len() {
        let group = &cells[i..(i + 3).min(cells.len())];
        let mut row = vec![
            group[0].backend.name().to_string(),
            group[0].mix.name().to_string(),
        ];
        for c in group {
            row.push(fmt_f64(c.throughput));
        }
        row.push(fmt_f64(group[0].mem_per_lookup));
        row.push(fmt_f64(group[0].buckets_per_hit));
        row.push(fmt_f64(group[0].buckets_per_miss));
        t.row(row);
        i += 3;
    }
    t
}

/// Serializes the matrix as a small JSON document (the CI bench-smoke
/// artifact `ABLATION_backends.json`).
#[must_use]
pub fn to_json(cells: &[BackendCell], quick: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"experiment\": \"ablation-backends\",\n  \"mode\": \"{}\",\n  \"cells\": [\n",
        if quick { "quick" } else { "full" }
    ));
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"backend\": \"{}\", \"strategy\": \"{}\", \"mix\": \"{}\", \
             \"throughput\": {:.6}, \"mem_per_lookup\": {:.6}, \
             \"buckets_per_hit\": {:.6}, \"buckets_per_miss\": {:.6}}}{}\n",
            c.backend.name(),
            c.strategy.name(),
            c.mix.name(),
            c.throughput,
            c.mem_per_lookup,
            c.buckets_per_hit,
            c.buckets_per_miss,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_sim::SweepRunner;

    fn quick_cells() -> Vec<BackendCell> {
        run_with(true, &SweepRunner::new("ablation-backends-test", 2).quiet())
    }

    /// The ISSUE's acceptance shapes: Cuckoo++ performs fewer modeled
    /// memory accesses than baseline cuckoo on the miss-heavy mix, and
    /// EMOMA loads exactly one bucket line per positive lookup.
    #[test]
    fn quick_matrix_shapes() {
        let cells = quick_cells();
        assert_eq!(cells.len(), 3 * 2 * 3, "backend x mix x strategy");
        let get = |b: TableBackend, m: Mix| {
            cells
                .iter()
                .find(|c| c.backend == b && c.mix == m)
                .copied()
                .expect("cell present")
        };
        let cuckoo = get(TableBackend::Cuckoo, Mix::MissHeavy);
        let pp = get(TableBackend::CuckooPlusPlus, Mix::MissHeavy);
        assert!(
            pp.mem_per_lookup < cuckoo.mem_per_lookup,
            "cuckoo++ {} should beat cuckoo {} on miss-heavy accesses",
            pp.mem_per_lookup,
            cuckoo.mem_per_lookup
        );
        assert!(
            pp.buckets_per_miss < cuckoo.buckets_per_miss,
            "cuckoo++ must filter secondary probes on misses"
        );
        for mix in Mix::all() {
            let emoma = get(TableBackend::Emoma, mix);
            assert!(
                (emoma.buckets_per_hit - 1.0).abs() < 1e-9,
                "EMOMA {} buckets per hit on {}",
                emoma.buckets_per_hit,
                mix.name()
            );
            assert!(
                (emoma.buckets_per_miss - 1.0).abs() < 1e-9,
                "EMOMA {} buckets per miss on {}",
                emoma.buckets_per_miss,
                mix.name()
            );
        }
        for c in &cells {
            assert!(
                c.throughput > 0.0,
                "{}/{}/{}: non-positive throughput",
                c.backend.name(),
                c.strategy.name(),
                c.mix.name()
            );
        }
    }

    /// JSON round-trips the cell count and names every backend.
    #[test]
    fn json_covers_matrix() {
        let cells = run_small_slice(&SweepRunner::new("ablation-backends-json", 1).quiet());
        let json = to_json(&cells, true);
        for b in TableBackend::all() {
            assert!(json.contains(b.name()), "missing {}", b.name());
        }
        assert_eq!(json.matches("\"strategy\"").count(), cells.len());
    }
}
