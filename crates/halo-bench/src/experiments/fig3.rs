//! Fig. 3: per-packet cycle breakdown of software packet processing in
//! the virtual switch across the five traffic configurations.

use halo_mem::{CoreId, MachineConfig, MemorySystem};
use halo_nf::{fig3_configs, TrafficGen};
use halo_sim::{fmt_f64, Cycle, TextTable};
use halo_vswitch::{Breakdown, LookupBackend, SwitchConfig, VirtualSwitch};

/// One Fig. 3 bar.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Configuration label.
    pub name: &'static str,
    /// Average cycles per packet.
    pub cycles_per_packet: f64,
    /// Per-phase breakdown totals.
    pub breakdown: Breakdown,
    /// Fraction of time in flow classification (EMC + MegaFlow).
    pub classification_fraction: f64,
}

/// Runs the characterization. `quick` processes fewer packets and
/// shrinks the largest flow counts.
#[must_use]
pub fn run(quick: bool) -> Vec<Fig3Row> {
    let packets: u64 = if quick { 400 } else { 2000 };
    let mut out = Vec::new();
    for (name, scenario) in fig3_configs() {
        let flows = if quick {
            scenario.flows().min(20_000)
        } else {
            scenario.flows()
        };
        let rules = scenario.rules();
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut cfg = SwitchConfig::typical(rules, LookupBackend::Software);
        cfg.megaflow_capacity = flows.div_ceil(rules).max(1024);
        let mut vs = VirtualSwitch::new(&mut sys, CoreId(0), cfg);
        for id in 0..flows as u64 {
            let key = halo_classify::PacketHeader::synthetic(id).miniflow();
            vs.install_flow(&mut sys, &key, (id % rules as u64) as usize, 0, id)
                .expect("tuple capacity sized for flows");
        }
        // Steady-state warm start: the EMC already holds its capacity's
        // worth of flows (the hottest ranks under Zipf traffic).
        for id in 0..(flows as u64).min(8_192) {
            let key = halo_classify::PacketHeader::synthetic(id).miniflow();
            vs.prime_emc(&mut sys, &key, id);
        }
        vs.warm_tables(&mut sys);

        let mut gen = TrafficGen::new(scenario, 1234);
        let mut t = Cycle(0);
        for _ in 0..packets {
            let mut pkt = gen.next_packet();
            // Scale the flow id into the installed range for quick mode.
            if quick {
                pkt = halo_classify::PacketHeader::synthetic(gen.next_flow() % flows as u64);
            }
            let (_, done) = vs.process_packet(&mut sys, None, &pkt, t);
            t = done;
        }
        out.push(Fig3Row {
            name,
            cycles_per_packet: vs.cycles_per_packet(),
            breakdown: *vs.breakdown(),
            classification_fraction: vs.breakdown().classification_fraction(),
        });
    }
    out
}

/// Formats the rows like the paper's stacked-bar figure.
#[must_use]
pub fn table(rows: &[Fig3Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "configuration",
        "cycles/pkt",
        "io",
        "preproc",
        "emc",
        "megaflow",
        "other",
        "classification%",
    ]);
    for r in rows {
        let n = |c: halo_sim::Cycles| {
            fmt_f64(c.0 as f64 / (r.breakdown.total().0 as f64 / r.cycles_per_packet))
        };
        t.row(vec![
            r.name.to_string(),
            fmt_f64(r.cycles_per_packet),
            n(r.breakdown.io),
            n(r.breakdown.preproc),
            n(r.breakdown.emc),
            n(r.breakdown.megaflow),
            n(r.breakdown.other),
            format!("{}%", fmt_f64(100.0 * r.classification_fraction)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_and_classification_share_grow_with_flows() {
        let rows = run(true);
        assert_eq!(rows.len(), 5);
        // Cycles per packet increase from the small-flow to the
        // many-flow/many-rule configurations (paper: 340 -> 993).
        assert!(
            rows[4].cycles_per_packet > 1.5 * rows[0].cycles_per_packet,
            "no growth: {} -> {}",
            rows[0].cycles_per_packet,
            rows[4].cycles_per_packet
        );
        // Classification share grows and dominates at the high end
        // (paper: 30.9% -> 77.8%).
        assert!(
            rows[4].classification_fraction > rows[0].classification_fraction,
            "classification share must grow"
        );
        assert!(
            rows[4].classification_fraction > 0.5,
            "classification should dominate at 20 rules: {}",
            rows[4].classification_fraction
        );
        assert!(
            rows[0].classification_fraction > 0.15,
            "even small configs classify: {}",
            rows[0].classification_fraction
        );
    }
}
