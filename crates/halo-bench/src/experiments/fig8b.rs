//! Fig. 8b: accuracy of the linear-counting flow register — estimated
//! vs actual flow counts for different bit-array sizes.

use halo_accel::FlowRegister;
use halo_sim::{fmt_f64, SplitMix64, TextTable};

/// One Fig. 8b point.
#[derive(Debug, Clone, Copy)]
pub struct Fig8bPoint {
    /// Bit-array size.
    pub bits: usize,
    /// True number of distinct flows fed.
    pub flows: u64,
    /// Mean estimate across trials.
    pub estimate: f64,
    /// Mean relative error.
    pub rel_error: f64,
}

/// Runs the accuracy sweep: register sizes 16/32/64 bits against flow
/// counts up to 4x the bit count.
#[must_use]
pub fn run() -> Vec<Fig8bPoint> {
    const TRIALS: u64 = 30;
    let mut out = Vec::new();
    for &bits in &[16usize, 32, 64] {
        for mult in [0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0] {
            let flows = ((bits as f64) * mult).round().max(1.0) as u64;
            let mut est_sum = 0.0;
            let mut err_sum = 0.0;
            for trial in 0..TRIALS {
                let mut rng = SplitMix64::new(0xF1_0B ^ trial);
                let hashes: Vec<u64> = (0..flows).map(|_| rng.next_u64()).collect();
                let mut reg = FlowRegister::new(bits);
                // Several packets per flow, interleaved.
                for _ in 0..6 {
                    for &h in &hashes {
                        reg.observe(h);
                    }
                }
                let e = reg.estimate();
                est_sum += e;
                err_sum += (e - flows as f64).abs() / flows as f64;
            }
            out.push(Fig8bPoint {
                bits,
                flows,
                estimate: est_sum / TRIALS as f64,
                rel_error: err_sum / TRIALS as f64,
            });
        }
    }
    out
}

/// Formats the sweep.
#[must_use]
pub fn table(points: &[Fig8bPoint]) -> TextTable {
    let mut t = TextTable::new(vec!["bits", "flows", "mean estimate", "mean rel. error"]);
    for p in points {
        t.row(vec![
            p.bits.to_string(),
            p.flows.to_string(),
            fmt_f64(p.estimate),
            format!("{}%", fmt_f64(100.0 * p.rel_error)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_track_twice_their_bits() {
        let pts = run();
        // Paper (Fig 8b): a register accurately estimates ~2x more flows
        // than its bit count.
        for p in pts.iter().filter(|p| p.flows <= 2 * p.bits as u64) {
            assert!(
                p.rel_error < 0.35,
                "{} bits / {} flows: error {}",
                p.bits,
                p.flows,
                p.rel_error
            );
        }
        // Far beyond 2x, accuracy degrades (saturation).
        let worst = pts
            .iter()
            .filter(|p| p.flows >= 4 * p.bits as u64)
            .map(|p| p.rel_error)
            .fold(0.0, f64::max);
        let best_in_range = pts
            .iter()
            .filter(|p| p.flows <= p.bits as u64)
            .map(|p| p.rel_error)
            .fold(0.0, f64::max);
        assert!(
            worst > best_in_range,
            "saturated registers should be less accurate"
        );
    }
}
