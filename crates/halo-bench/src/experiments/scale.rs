//! Scale figure: classification latency and hybrid-mode residency as
//! the concurrent-flow count sweeps 10^4 → 10^6+.
//!
//! Three adversarial streaming workloads (steady Zipf, churn, DDoS
//! flood — [`StreamConfig`] presets) drive the multi-core datapath
//! through [`MultiCoreDatapath::run_stream`] while the tracing sink
//! records per-packet `datapath/classify` spans; each point reports the
//! p50/p99 classify cycles, the miss rate, and — from a separate
//! single-core run — how much of the traffic the hybrid controller
//! routes to the HALO engine (its "residency"). The streaming engine
//! costs O(1) per packet regardless of flow count, which is what makes
//! the 10^6-flow tail of the full sweep tractable.

use halo_accel::{AcceleratorConfig, HaloEngine, HybridClassifier, HybridConfig, Mode};
use halo_datapath::TrafficEvent;
use halo_mem::{CoreId, MachineConfig, MemorySystem};
use halo_nf::{StreamConfig, StreamingTrafficGen};
use halo_sim::{fmt_f64, point_seed, Cycle, SweepPoint, SweepRunner, TextTable};
use halo_tables::{CuckooTable, FlowKey, ENTRIES_PER_BUCKET};
use halo_vswitch::{LookupBackend, MultiCoreConfig, MultiCoreDatapath};

/// The three streaming workloads of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Fixed live set, Zipf(0.99) popularity.
    Steady,
    /// Same skew plus ~5% arrival/expiry churn per step.
    Churn,
    /// Every packet a fresh, never-installed flow (pure DDoS).
    Flood,
}

impl Workload {
    /// All three, steady first.
    #[must_use]
    pub fn all() -> [Workload; 3] {
        [Workload::Steady, Workload::Churn, Workload::Flood]
    }

    /// Display label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Workload::Steady => "steady",
            Workload::Churn => "churn",
            Workload::Flood => "flood",
        }
    }

    /// The streaming preset for this workload at `flows` live flows.
    #[must_use]
    pub fn config(self, flows: usize) -> StreamConfig {
        match self {
            Workload::Steady => StreamConfig::steady(flows),
            Workload::Churn => StreamConfig::churn(flows),
            Workload::Flood => StreamConfig::ddos_flood(flows),
        }
    }
}

/// One measured point of the workload × flow-count sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScaleRow {
    /// Which streaming workload.
    pub workload: Workload,
    /// Live (concurrent) flows in the generator and the rule set.
    pub flows: usize,
    /// Packets classified by the datapath run.
    pub packets: u64,
    /// Datapath misses (flood flows are never installed).
    pub misses: u64,
    /// Flow arrivals applied to the shared tables.
    pub arrivals: u64,
    /// Flow expiries applied to the shared tables.
    pub expiries: u64,
    /// Median `datapath/classify` span, cycles.
    pub p50_classify: u64,
    /// 99th-percentile `datapath/classify` span, cycles.
    pub p99_classify: u64,
    /// Datapath packets per kilocycle.
    pub throughput: f64,
    /// Fraction of hybrid-controller lookups routed to the HALO engine.
    pub hybrid_residency: f64,
    /// Hybrid-controller mode at the end of its run.
    pub hybrid_mode: &'static str,
    /// Entries actually installed in the hybrid run's exact-match
    /// table: `min(flows, 2^14)` — the cap that keeps the 10^6-flow
    /// points cheap.
    pub installed_exact: u64,
    /// Whether `installed_exact` was truncated below `flows`. Recorded
    /// in the JSON so capped configurations are visible, not implied.
    pub exact_capped: bool,
}

/// A (workload, flows) cell: a traced multi-core streaming run for the
/// latency columns plus a single-core hybrid-controller run for the
/// residency columns.
#[derive(Debug, Clone, Copy)]
struct ScalePoint {
    workload: Workload,
    flows: usize,
    steps: u64,
    seed: u64,
}

impl ScalePoint {
    fn datapath_run(&self) -> (u64, u64, u64, u64, u64, u64, f64) {
        let mut gen = StreamingTrafficGen::new(self.workload.config(self.flows), self.seed);
        let mut sys = MemorySystem::new(MachineConfig::default());
        // Histograms count every span even after the ring wraps, so a
        // small ring keeps memory flat across the 10^6-flow points.
        sys.enable_tracing(1 << 10);
        let cfg = MultiCoreConfig::new(4, 8, self.flows, LookupBackend::Software, self.seed ^ 0xD0);
        let mut dp = MultiCoreDatapath::with_config(&mut sys, cfg);
        let events: Vec<TrafficEvent> = (0..self.steps).map(|_| gen.next_event()).collect();
        let r = dp.run_stream(&mut sys, None, events);
        let hist = sys
            .tracer()
            .histogram("datapath", "classify")
            .expect("streaming run must record classify spans");
        (
            r.packets,
            r.misses,
            r.arrivals,
            r.expiries,
            hist.p50(),
            hist.p99(),
            r.throughput_per_kcy,
        )
    }

    fn hybrid_run(&self) -> (f64, &'static str, u64, bool) {
        let mut gen =
            StreamingTrafficGen::new(self.workload.config(self.flows), self.seed ^ 0x5EED);
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
        // The exact-match table holds the hottest ranks; capping it
        // keeps the 10^6-flow points cheap without changing what the
        // flow register sees (it observes raw key hashes).
        let target = self.flows.min(1 << 14) as u64;
        let buckets = (target * 4 / 3 / ENTRIES_PER_BUCKET as u64)
            .next_power_of_two()
            .max(16);
        let mut table = CuckooTable::create(sys.data_mut(), buckets, 13);
        let mut installed = 0u64;
        for id in 0..target {
            if table
                .insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id)
                .is_err()
            {
                break;
            }
            installed += 1;
        }
        let mut hybrid = HybridClassifier::new(&mut sys, CoreId(0), HybridConfig::default());
        let lookups = self.steps.min(2_048);
        let mut t = Cycle(0);
        let mut done = 0;
        while done < lookups {
            if let TrafficEvent::Packet(f) = gen.next_event() {
                let key = FlowKey::synthetic(f, 13);
                let (_, at) = hybrid.lookup(&mut sys, &mut engine, &table, &key, t);
                t = at;
                done += 1;
            }
        }
        let (sw, hw) = hybrid.split();
        let residency = hw as f64 / (sw + hw).max(1) as f64;
        let mode = match hybrid.mode() {
            Mode::Software => "software",
            Mode::Halo => "halo",
        };
        (residency, mode, installed, installed < self.flows as u64)
    }
}

impl SweepPoint for ScalePoint {
    type Row = ScaleRow;

    fn run(&self) -> ScaleRow {
        let (packets, misses, arrivals, expiries, p50, p99, throughput) = self.datapath_run();
        let (hybrid_residency, hybrid_mode, installed_exact, exact_capped) = self.hybrid_run();
        ScaleRow {
            workload: self.workload,
            flows: self.flows,
            packets,
            misses,
            arrivals,
            expiries,
            p50_classify: p50,
            p99_classify: p99,
            throughput,
            hybrid_residency,
            hybrid_mode,
            installed_exact,
            exact_capped,
        }
    }

    fn label(&self) -> String {
        format!("{} / {} flows", self.workload.name(), self.flows)
    }
}

fn points(flow_counts: &[usize], steps: u64) -> Vec<ScalePoint> {
    let mut out = Vec::new();
    for &flows in flow_counts {
        for workload in Workload::all() {
            out.push(ScalePoint {
                workload,
                flows,
                steps,
                seed: point_seed("scale", out.len() as u64),
            });
        }
    }
    out
}

/// Runs the sweep on an explicit runner (see [`run`] for the default).
#[must_use]
pub fn run_with(quick: bool, runner: &SweepRunner) -> Vec<ScaleRow> {
    let (flow_counts, steps): (&[usize], u64) = if quick {
        (&[2_000, 16_000], 1_200)
    } else {
        (&[10_000, 100_000, 1_000_000], 20_000)
    };
    runner.run(points(flow_counts, steps))
}

/// A tiny deterministic slice for the tier-1 jobs-invariance guard;
/// same point/merge path as the full sweep.
#[must_use]
pub fn run_small_slice(runner: &SweepRunner) -> Vec<ScaleRow> {
    runner.run(points(&[400, 1_600], 260))
}

/// Runs the sweep with the default parallelism (`HALO_JOBS`, then host
/// cores).
#[must_use]
pub fn run(quick: bool) -> Vec<ScaleRow> {
    run_with(quick, &SweepRunner::from_env("scale"))
}

/// Formats the sweep: one row per (workload, flows).
#[must_use]
pub fn table(rows: &[ScaleRow]) -> TextTable {
    let mut t = TextTable::new(vec![
        "workload",
        "flows",
        "packets",
        "miss%",
        "churn",
        "p50 classify",
        "p99 classify",
        "pkts/kcy",
        "HW residency",
        "mode",
    ]);
    for r in rows {
        t.row(vec![
            r.workload.name().to_string(),
            r.flows.to_string(),
            r.packets.to_string(),
            fmt_f64(100.0 * r.misses as f64 / (r.packets.max(1)) as f64),
            format!("{}+{}-", r.arrivals, r.expiries),
            r.p50_classify.to_string(),
            r.p99_classify.to_string(),
            fmt_f64(r.throughput),
            fmt_f64(r.hybrid_residency),
            r.hybrid_mode.to_string(),
        ]);
    }
    t
}

/// Serializes the sweep as a small JSON document (the CI bench-smoke
/// artifact `SCALE_flows.json`). The parallelism header is the shared
/// [`halo_sim::ParallelismReport`] record every bench JSON carries;
/// `installed_exact`/`exact_capped` make the hybrid run's 2^14
/// exact-table cap visible instead of implied.
#[must_use]
pub fn to_json(rows: &[ScaleRow], quick: bool, jobs: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"experiment\": \"scale\",\n  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    s.push_str(&halo_sim::ParallelismReport::capture(jobs).json_fields());
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"flows\": {}, \"packets\": {}, \"misses\": {}, \
             \"arrivals\": {}, \"expiries\": {}, \"p50_classify\": {}, \"p99_classify\": {}, \
             \"throughput_per_kcy\": {:.6}, \"hybrid_residency\": {:.6}, \
             \"hybrid_mode\": \"{}\", \"installed_exact\": {}, \"exact_capped\": {}}}{}\n",
            r.workload.name(),
            r.flows,
            r.packets,
            r.misses,
            r.arrivals,
            r.expiries,
            r.p50_classify,
            r.p99_classify,
            r.throughput,
            r.hybrid_residency,
            r.hybrid_mode,
            r.installed_exact,
            r.exact_capped,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_sim::SweepRunner;

    /// The quick sweep covers the full workload × flow-count matrix
    /// with sane shapes: floods miss (their flows are never installed),
    /// steady traffic mostly hits, churn applies arrivals and expiries,
    /// and the flood's hybrid controller ends pinned on the HALO path.
    #[test]
    fn quick_sweep_shapes() {
        let rows = run_with(true, &SweepRunner::new("scale-test", 2).quiet());
        assert_eq!(rows.len(), 2 * 3, "flow counts x workloads");
        for r in &rows {
            assert!(r.packets > 0, "{}: no packets", r.workload.name());
            assert!(r.p99_classify >= r.p50_classify);
            assert!(r.p50_classify > 0, "{}: empty histogram", r.workload.name());
            assert!(r.throughput > 0.0);
            match r.workload {
                Workload::Steady => {
                    assert_eq!(r.misses, 0, "steady flows are all installed");
                    assert_eq!(r.arrivals + r.expiries, 0);
                }
                Workload::Churn => {
                    assert!(r.arrivals > 0, "churn must insert");
                    assert!(r.expiries > 0, "churn must remove");
                }
                Workload::Flood => {
                    assert_eq!(r.misses, r.packets, "flood flows never match");
                    assert_eq!(
                        r.hybrid_mode, "halo",
                        "a saturating flood must pin the HALO path"
                    );
                    assert!(r.hybrid_residency > 0.5);
                }
            }
        }
    }

    /// The merged row order is deterministic and independent of the
    /// worker count — the property `GOLDEN.sha256` pins.
    #[test]
    fn small_slice_is_jobs_invariant() {
        let a = run_small_slice(&SweepRunner::new("scale-j1", 1).quiet());
        let b = run_small_slice(&SweepRunner::new("scale-j4", 4).quiet());
        // The parallelism header (jobs, host, observed peak) varies
        // with worker count and process history by design, so it is
        // excluded from the comparison — the shared header keeps every
        // such field on a `parallelism`-bearing line precisely so this
        // one filter strips it all.
        let render = |rows: &[ScaleRow], jobs: usize| {
            let json: String = to_json(rows, true, jobs)
                .lines()
                .filter(|l| !l.contains("parallelism"))
                .collect::<Vec<_>>()
                .join("\n");
            format!("{}\n{json}", table(rows))
        };
        assert_eq!(render(&a, 1), render(&b, 4));
    }

    /// JSON names every workload and carries the parallelism fields.
    #[test]
    fn json_covers_sweep() {
        let rows = run_small_slice(&SweepRunner::new("scale-json", 1).quiet());
        let json = to_json(&rows, true, 1);
        for w in Workload::all() {
            assert!(json.contains(w.name()), "missing {}", w.name());
        }
        assert!(json.contains("\"jobs\": 1"));
        assert!(json.contains("\"host_parallelism\""));
        assert!(json.contains("\"observed_parallelism\""));
        assert_eq!(json.matches("\"workload\"").count(), rows.len());
        assert_eq!(json.matches("\"installed_exact\"").count(), rows.len());
    }

    /// The hybrid run's exact-table cap is reported, not implied: the
    /// small slice sits under 2^14 flows, so nothing is capped and the
    /// installed count matches the configured flow count.
    #[test]
    fn small_slice_reports_uncapped_exact_table() {
        let rows = run_small_slice(&SweepRunner::new("scale-cap", 1).quiet());
        for r in &rows {
            assert!(!r.exact_capped, "{} @ {} flows", r.workload.name(), r.flows);
            assert_eq!(r.installed_exact, r.flows as u64);
        }
        let capped = ScaleRow {
            flows: 1_000_000,
            installed_exact: 1 << 14,
            exact_capped: true,
            ..rows[0]
        };
        let json = to_json(&[capped], false, 2);
        assert!(json.contains("\"installed_exact\": 16384, \"exact_capped\": true"));
    }
}
