//! Fig. 9: single hash-table lookup throughput across table sizes and
//! occupancy rates, for all five approaches, normalized to software.

use crate::experiments::harness::{Approach, SingleTableWorkload};
use halo_sim::{fmt_f64, point_seed, SweepPoint, SweepRunner, TextTable};

/// One measured cell of Fig. 9.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Cell {
    /// Table capacity in entries.
    pub entries: u64,
    /// Fill fraction.
    pub occupancy: f64,
    /// The approach measured.
    pub approach: Approach,
    /// Lookups per kilocycle.
    pub throughput: f64,
    /// Throughput normalized to software at the same size/occupancy.
    pub normalized: f64,
}

/// One sweep point: a (size, occupancy) group measuring all five
/// approaches over the same workload seed, so normalization to the
/// group's software throughput stays fair.
#[derive(Debug, Clone, Copy)]
struct Fig9Point {
    entries: u64,
    occupancy: f64,
    lookups: u64,
    seed: u64,
}

impl SweepPoint for Fig9Point {
    type Row = Vec<Fig9Cell>;

    fn run(&self) -> Vec<Fig9Cell> {
        let mut out = Vec::with_capacity(5);
        let mut sw_thr = 0.0;
        for approach in Approach::all() {
            let mut w = SingleTableWorkload::new(self.entries, self.occupancy, self.seed);
            let thr = w.throughput(approach, self.lookups);
            if approach == Approach::Software {
                sw_thr = thr;
            }
            out.push(Fig9Cell {
                entries: self.entries,
                occupancy: self.occupancy,
                approach,
                throughput: thr,
                normalized: if sw_thr > 0.0 { thr / sw_thr } else { 0.0 },
            });
        }
        out
    }

    fn label(&self) -> String {
        format!(
            "2^{} entries, {}% full",
            self.entries.trailing_zeros(),
            (self.occupancy * 100.0) as u32
        )
    }
}

/// Runs the sweep on an explicit runner (see [`run`] for the default).
#[must_use]
pub fn run_with(quick: bool, runner: &SweepRunner) -> Vec<Fig9Cell> {
    // Full mode tops out at 2^21 entries (~150 MB of table, already
    // 5x the 32 MB LLC, i.e. deep in the paper's partially-cached
    // regime); the paper's 2^24 point costs ~15M inserts per approach
    // and adds no new cache regime — raise the constant if you want it.
    let sizes: Vec<u64> = if quick {
        vec![1 << 3, 1 << 6, 1 << 9, 1 << 12, 1 << 15, 1 << 18]
    } else {
        vec![1 << 3, 1 << 6, 1 << 9, 1 << 12, 1 << 15, 1 << 18, 1 << 21]
    };
    let lookups: u64 = if quick { 300 } else { 1000 };
    let mut points = Vec::new();
    for &entries in &sizes {
        // Sweep occupancy at a representative mid size; elsewhere use
        // the paper's common 50% fill to bound runtime.
        let occupancies: &[f64] = if entries == 1 << 12 && !quick {
            &[0.25, 0.5, 0.75, 0.9]
        } else if quick {
            &[0.5]
        } else {
            &[0.25, 0.9]
        };
        for &occ in occupancies {
            points.push(Fig9Point {
                entries,
                occupancy: occ,
                lookups,
                seed: point_seed("fig9", points.len() as u64),
            });
        }
    }
    runner.run(points).into_iter().flatten().collect()
}

/// A tiny deterministic slice of the sweep (2^3..2^9 entries at 50%
/// fill, 60 lookups each) for the tier-1 `SweepRunner` determinism
/// guard: it exercises the same point/merge path as the full sweep but
/// completes in well under a second, so it can be run at several job
/// counts and compared byte-for-byte.
#[must_use]
pub fn run_small_slice(runner: &SweepRunner) -> Vec<Fig9Cell> {
    let points: Vec<Fig9Point> = [1u64 << 3, 1 << 6, 1 << 9]
        .iter()
        .enumerate()
        .map(|(i, &entries)| Fig9Point {
            entries,
            occupancy: 0.5,
            lookups: 60,
            seed: point_seed("fig9", i as u64),
        })
        .collect();
    runner.run(points).into_iter().flatten().collect()
}

/// Runs the sweep with the default parallelism (`HALO_JOBS`, then host
/// cores). `quick` restricts table sizes to <= 2^18 entries and fewer
/// lookups (the full sweep reaches the paper's 2^24).
#[must_use]
pub fn run(quick: bool) -> Vec<Fig9Cell> {
    run_with(quick, &SweepRunner::from_env("fig9"))
}

/// Formats the sweep as a table (one row per size/occupancy, one column
/// per approach, normalized to software — the paper's presentation).
#[must_use]
pub fn table(cells: &[Fig9Cell]) -> TextTable {
    let mut t = TextTable::new(vec![
        "entries",
        "occupancy",
        "Software",
        "HALO-B",
        "HALO-NB",
        "TCAM",
        "SRAM-TCAM",
    ]);
    let mut i = 0;
    while i < cells.len() {
        let group = &cells[i..(i + 5).min(cells.len())];
        let mut row = vec![
            format!("2^{}", group[0].entries.trailing_zeros()),
            format!("{}%", (group[0].occupancy * 100.0) as u32),
        ];
        for c in group {
            row.push(format!(
                "{} ({}x)",
                fmt_f64(c.throughput),
                fmt_f64(c.normalized)
            ));
        }
        t.row(row);
        i += 5;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick sweep reproduces the paper's qualitative claims:
    /// HALO 2-4x software on LLC-resident tables; software competitive
    /// at tiny tables; TCAM fastest everywhere.
    #[test]
    fn quick_sweep_shapes() {
        let cells = run(true);
        let get = |entries: u64, a: Approach| {
            cells
                .iter()
                .find(|c| c.entries == entries && c.approach == a)
                .copied()
                .expect("cell present")
        };
        // Large LLC-resident table: HALO wins clearly.
        let hb = get(1 << 15, Approach::HaloBlocking);
        assert!(
            hb.normalized > 1.8,
            "HALO-B at 2^15 only {}x",
            hb.normalized
        );
        assert!(hb.normalized < 6.0, "HALO-B implausible {}x", hb.normalized);
        // Tiny table: software within 40% of HALO (paper: software wins
        // below ~10 entries).
        let tiny = get(1 << 3, Approach::HaloBlocking);
        assert!(
            tiny.normalized < 1.6,
            "software should be competitive at 8 entries: {}x",
            tiny.normalized
        );
        // TCAM is the fastest approach at every size.
        for &e in &[1u64 << 3, 1 << 9, 1 << 15] {
            let tc = get(e, Approach::Tcam).throughput;
            for a in [
                Approach::Software,
                Approach::HaloBlocking,
                Approach::HaloNonBlocking,
            ] {
                assert!(tc >= get(e, a).throughput, "TCAM not fastest at {e}");
            }
        }
        // Non-blocking vs blocking for single-table lookups: the paper
        // reports NB <= 5.3% worse because its cores saturate the
        // accelerator in both modes; our single-core issue model lets
        // NB overlap queries, so NB lands modestly ahead instead
        // (documented divergence in EXPERIMENTS.md).
        let nb = get(1 << 15, Approach::HaloNonBlocking);
        let ratio = nb.throughput / hb.throughput;
        assert!(ratio > 0.8 && ratio < 5.5, "NB/B ratio {ratio} out of band");
    }
}
