//! Fig. 11: tuple space search throughput for 5/10/15/20 tuples of 1024
//! megaflow entries each, normalized to the software implementation.

use halo_accel::{AcceleratorConfig, HaloEngine};
use halo_classify::{distinct_masks, PacketHeader, SearchMode, TupleSpace};
use halo_cpu::{build_sw_lookup, CoreModel, Scratch};
use halo_mem::{CoreId, MachineConfig, MemorySystem};
use halo_sim::{
    fmt_f64, point_seed, Cycle, Cycles, SplitMix64, SweepPoint, SweepRunner, TextTable,
};
use halo_tcam::{TcamEntry, TcamTable};

/// One Fig. 11 data point.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Point {
    /// Number of megaflow tuples.
    pub tuples: usize,
    /// Software classifications per kilocycle.
    pub software: f64,
    /// HALO blocking, normalized to software.
    pub halo_b: f64,
    /// HALO non-blocking, normalized to software.
    pub halo_nb: f64,
    /// TCAM, normalized to software.
    pub tcam: f64,
}

/// Entries per tuple (§5.2).
pub const ENTRIES_PER_TUPLE: usize = 1024;

struct TssWorkload {
    sys: MemorySystem,
    tss: TupleSpace,
    rng: SplitMix64,
    flows: u64,
    tuples: usize,
}

impl TssWorkload {
    fn new(tuples: usize, seed: u64) -> Self {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut tss = TupleSpace::new(
            sys.data_mut(),
            distinct_masks(tuples),
            ENTRIES_PER_TUPLE,
            SearchMode::FirstMatch,
        );
        // 1024 megaflows per tuple; flow f is installed in tuple f % T,
        // so matches land uniformly across tuples (the average search
        // probes (T+1)/2 tuples).
        let flows = (tuples * ENTRIES_PER_TUPLE / 2) as u64;
        for f in 0..flows {
            let key = PacketHeader::synthetic(f).miniflow();
            let tuple = (f % tuples as u64) as usize;
            tss.insert_rule(sys.data_mut(), tuple, &key, 0, f)
                .expect("tuple sized for its share");
        }
        for t in tss.tuples() {
            for a in t.table().all_lines().collect::<Vec<_>>() {
                sys.warm_llc(a);
            }
        }
        TssWorkload {
            sys,
            tss,
            rng: SplitMix64::new(seed),
            flows,
            tuples,
        }
    }

    fn next_key(&mut self) -> halo_tables::FlowKey {
        PacketHeader::synthetic(self.rng.below(self.flows)).miniflow()
    }

    fn run_software(&mut self, n: u64) -> f64 {
        let mut scratch = Scratch::new(&mut self.sys);
        scratch.warm(&mut self.sys, CoreId(0));
        let mut core = CoreModel::new(CoreId(0), self.sys.config());
        let start = Cycle(0);
        let mut t = start;
        for _ in 0..n {
            let key = self.next_key();
            let (m, probes) = self.tss.classify_traced(self.sys.data_mut(), &key, true);
            debug_assert!(m.is_some());
            for (_, tr) in &probes {
                let prog = build_sw_lookup(tr, &mut scratch, None);
                t = core.run(&prog, &mut self.sys, t).finish;
            }
        }
        crate::experiments::harness::kilo_throughput(n, t - start)
    }

    fn run_halo(&mut self, n: u64, blocking: bool) -> f64 {
        let mut engine = HaloEngine::new(&self.sys, AcceleratorConfig::default());
        let start = Cycle(0);
        let mut t = start;
        for _ in 0..n {
            let key = self.next_key();
            let (m, probes) = self.tss.classify_traced(self.sys.data_mut(), &key, false);
            debug_assert!(m.is_some());
            if blocking {
                // Serialized LOOKUP_B per probed tuple.
                for (i, tr) in &probes {
                    let table_addr = self.tss.tuples()[*i].table().meta_addr();
                    let h = halo_tables::hash_key(&key, halo_tables::SEED_PRIMARY) ^ (*i as u64);
                    let out =
                        engine.dispatch(&mut self.sys, CoreId(0), table_addr, tr, h, None, None, t);
                    t = out.complete + Cycles(4);
                }
            } else {
                unreachable!("non-blocking uses run_halo_nb_pipelined");
            }
        }
        crate::experiments::harness::kilo_throughput(n, t - start)
    }

    /// Non-blocking tuple space search with classification pipelining:
    /// the core streams `LOOKUP_NB` queries for successive packets
    /// without waiting, keeping up to [`Self::NB_WINDOW`] classifications
    /// in flight (bounded by destination lines / LSQ entries), and polls
    /// each with one `SNAPSHOT_READ`. This is the regime of the paper's
    /// throughput measurement: the 23.4x scaling comes from queries of
    /// *different* packets overlapping across accelerators.
    fn run_halo_nb_pipelined(&mut self, n: u64) -> f64 {
        const NB_WINDOW: usize = 4;
        let mut engine = HaloEngine::new(&self.sys, AcceleratorConfig::default());
        let dest = self.sys.data_mut().alloc_lines(64 * NB_WINDOW as u64);
        let start = Cycle(0);
        let mut issue = start;
        // Snapshot-completion times of in-flight classifications.
        let mut window: Vec<Cycle> = Vec::new();
        let mut finish = start;
        for c in 0..n {
            // Respect the window: wait for the oldest classification.
            if window.len() >= NB_WINDOW {
                let oldest = window.remove(0);
                issue = issue.max(oldest);
            }
            let key = self.next_key();
            // Non-blocking probes all tuples (no early exit: results
            // arrive asynchronously).
            let mut batch_done = issue;
            for (i, tuple) in self.tss.tuples().iter().enumerate() {
                let masked = tuple.mask().apply(&key);
                let tr = tuple
                    .table()
                    .lookup_traced(self.sys.data_mut(), &masked, false);
                let table_addr = tuple.table().meta_addr();
                let h = halo_tables::hash_key(&key, halo_tables::SEED_PRIMARY) ^ (i as u64);
                let slot_line = (c as usize % NB_WINDOW) as u64;
                let out = engine.dispatch(
                    &mut self.sys,
                    CoreId(0),
                    table_addr,
                    &tr,
                    h,
                    None,
                    Some(halo_mem::Addr(dest.0 + slot_line * 64 + (i as u64 % 8) * 8)),
                    issue + Cycles(i as u64),
                );
                batch_done = batch_done.max(out.complete);
            }
            // The core moves on after issuing (1 cycle per LOOKUP_NB);
            // the snapshot poll for this classification completes later.
            issue += Cycles(self.tuples as u64 + 1);
            let (_, snap) = engine.snapshot_read(
                &mut self.sys,
                CoreId(0),
                halo_mem::Addr(dest.0 + ((c as usize % NB_WINDOW) as u64) * 64),
                batch_done,
            );
            window.push(snap);
            finish = finish.max(snap);
        }
        crate::experiments::harness::kilo_throughput(n, finish - start)
    }

    fn run_tcam(&mut self, n: u64) -> f64 {
        // A TCAM holds all rules of all tuples with masks; one wildcard
        // match per classification.
        let mut tcam = TcamTable::new(self.flows as usize + 1, 4);
        for f in 0..self.flows {
            let key = PacketHeader::synthetic(f).miniflow();
            let tuple = (f % self.tuples as u64) as usize;
            let mask = self.tss.tuples()[tuple].mask().as_bytes().to_vec();
            let masked = self.tss.tuples()[tuple].mask().apply(&key);
            let _ = tcam.insert(TcamEntry::new(masked.as_bytes(), &mask, 0, f));
        }
        let start = Cycle(0);
        let mut t = start;
        for _ in 0..n {
            let key = self.next_key();
            let (_, done) = tcam.lookup_timed(key.as_bytes(), t + Cycles(20));
            t = done + Cycles(20);
        }
        crate::experiments::harness::kilo_throughput(n, t - start)
    }
}

/// One sweep point: a tuple count measured across all four approaches
/// over the same workload seed.
#[derive(Debug, Clone, Copy)]
struct Fig11Sweep {
    tuples: usize,
    lookups: u64,
    seed: u64,
}

impl SweepPoint for Fig11Sweep {
    type Row = Fig11Point;

    fn run(&self) -> Fig11Point {
        let (tuples, n, seed) = (self.tuples, self.lookups, self.seed);
        let sw = TssWorkload::new(tuples, seed).run_software(n);
        let hb = TssWorkload::new(tuples, seed).run_halo(n, true);
        let hnb = TssWorkload::new(tuples, seed).run_halo_nb_pipelined(n);
        let tc = TssWorkload::new(tuples, seed).run_tcam(n);
        Fig11Point {
            tuples,
            software: sw,
            halo_b: hb / sw,
            halo_nb: hnb / sw,
            tcam: tc / sw,
        }
    }

    fn label(&self) -> String {
        format!("{} tuples", self.tuples)
    }
}

/// Runs Fig. 11 on an explicit runner (see [`run`] for the default).
#[must_use]
pub fn run_with(quick: bool, runner: &SweepRunner) -> Vec<Fig11Point> {
    let n: u64 = if quick { 80 } else { 300 };
    let points: Vec<Fig11Sweep> = [5usize, 10, 15, 20]
        .iter()
        .enumerate()
        .map(|(i, &tuples)| Fig11Sweep {
            tuples,
            lookups: n,
            seed: point_seed("fig11", i as u64),
        })
        .collect();
    runner.run(points)
}

/// Runs Fig. 11 for the paper's tuple counts with default parallelism.
#[must_use]
pub fn run(quick: bool) -> Vec<Fig11Point> {
    run_with(quick, &SweepRunner::from_env("fig11"))
}

/// Formats the points like the paper's figure (normalized to software).
#[must_use]
pub fn table(points: &[Fig11Point]) -> TextTable {
    let mut t = TextTable::new(vec![
        "tuples",
        "Software (lookups/kcy)",
        "HALO-B (x)",
        "HALO-NB (x)",
        "TCAM (x)",
    ]);
    for p in points {
        t.row(vec![
            p.tuples.to_string(),
            fmt_f64(p.software),
            fmt_f64(p.halo_b),
            fmt_f64(p.halo_nb),
            fmt_f64(p.tcam),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonblocking_scales_with_tuple_count() {
        let pts = run(true);
        assert_eq!(pts.len(), 4);
        // NB speedup grows with tuples and is large at 20 tuples
        // (paper: up to 23.4x).
        assert!(
            pts[3].halo_nb > pts[0].halo_nb,
            "NB not scaling: {} vs {}",
            pts[3].halo_nb,
            pts[0].halo_nb
        );
        assert!(
            pts[3].halo_nb > 6.0,
            "NB at 20 tuples only {}x",
            pts[3].halo_nb
        );
        // Blocking mode's gain is limited (serialized dispatches).
        assert!(
            pts[3].halo_b < pts[3].halo_nb,
            "blocking {} must trail non-blocking {}",
            pts[3].halo_b,
            pts[3].halo_nb
        );
        // TCAM stays fastest.
        for p in &pts {
            assert!(
                p.tcam >= p.halo_nb * 0.9,
                "TCAM should lead at {} tuples",
                p.tuples
            );
        }
    }
}
