//! Fig. 12: performance interference of co-running network functions
//! with the virtual switch on the same SMT core — throughput drop (a)
//! and L1D miss-rate increase (b), software vs HALO classification.

use halo_nf::{colocation_experiment, ComputeNfKind, SwitchImpl};
use halo_sim::{fmt_f64, TextTable};

/// One Fig. 12 measurement.
#[derive(Debug, Clone, Copy)]
pub struct Fig12Row {
    /// The co-located NF.
    pub nf: ComputeNfKind,
    /// Flows handled by the switch sibling.
    pub flows: usize,
    /// Switch implementation.
    pub imp: SwitchImpl,
    /// NF throughput drop in [0, 1).
    pub drop: f64,
    /// L1D miss-ratio increase (fraction points).
    pub l1_miss_increase: f64,
}

/// Runs the study (paper: 1K / 10K / 100K flows x {ACL, Snort, mTCP}).
#[must_use]
pub fn run(quick: bool) -> Vec<Fig12Row> {
    let flows: &[usize] = if quick {
        &[1_000, 20_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let packets: u64 = if quick { 120 } else { 300 };
    let mut out = Vec::new();
    for &nf in &ComputeNfKind::all() {
        for &f in flows {
            for imp in [SwitchImpl::Software, SwitchImpl::Halo] {
                let r = colocation_experiment(nf, f, imp, packets, 11);
                out.push(Fig12Row {
                    nf,
                    flows: f,
                    imp,
                    drop: r.throughput_drop(),
                    l1_miss_increase: r.l1_miss_increase(),
                });
            }
        }
    }
    out
}

/// Formats both panels of Fig. 12.
#[must_use]
pub fn table(rows: &[Fig12Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "NF",
        "flows",
        "switch impl",
        "throughput drop",
        "L1D miss increase",
    ]);
    for r in rows {
        t.row(vec![
            r.nf.name().to_string(),
            r.flows.to_string(),
            match r.imp {
                SwitchImpl::Software => "software".into(),
                SwitchImpl::Halo => "HALO".into(),
            },
            format!("{}%", fmt_f64(100.0 * r.drop)),
            format!("{}pp", fmt_f64(100.0 * r.l1_miss_increase)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halo_interferes_far_less_than_software() {
        let rows = run(true);
        for nf in ComputeNfKind::all() {
            let sw_max = rows
                .iter()
                .filter(|r| r.nf == nf && r.imp == SwitchImpl::Software)
                .map(|r| r.drop)
                .fold(0.0, f64::max);
            let halo_max = rows
                .iter()
                .filter(|r| r.nf == nf && r.imp == SwitchImpl::Halo)
                .map(|r| r.drop)
                .fold(0.0, f64::max);
            // Paper: software 17-26% drop, HALO < 3.2%.
            assert!(
                sw_max > 0.03,
                "{}: software switch should visibly hurt ({sw_max})",
                nf.name()
            );
            assert!(
                halo_max < sw_max,
                "{}: HALO drop {halo_max} must be below software {sw_max}",
                nf.name()
            );
            assert!(
                halo_max < 0.12,
                "{}: HALO drop {halo_max} too large",
                nf.name()
            );
        }
    }
}
