//! One module per reproduced table/figure, plus shared machinery.

pub mod ablation;
pub mod ablation_backends;
pub mod ablation_wildcard;
pub mod extensions;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig3;
pub mod fig4;
pub mod fig8b;
pub mod fig9;
pub mod harness;
pub mod scale;
pub mod scaling;
pub mod table1;
pub mod table4;
