//! The paper's §4.8 "general applicability" extensions, measured:
//! tree-index traversal, a MemC3-style key-value store, and the
//! TCAM-update-cost comparison the introduction motivates.

use halo_accel::{AcceleratorConfig, HaloEngine};
use halo_classify::DecisionTree;
use halo_cpu::{build_sw_lookup, CoreModel, Scratch};
use halo_kvstore::KvStore;
use halo_mem::{CoreId, MachineConfig, MemorySystem};
use halo_sim::{fmt_f64, Cycle, SplitMix64, TextTable};
use halo_tables::{CuckooTable, FlowKey};
use halo_tcam::{TcamEntry, TcamTable};

/// Tree-index lookup latency, software vs HALO, across index sizes.
#[must_use]
pub fn tree_lookup() -> TextTable {
    let mut t = TextTable::new(vec![
        "keys",
        "depth",
        "software (cy/lookup)",
        "HALO (cy/lookup)",
        "speedup",
    ]);
    // Sizes chosen so the index is LLC-resident (the paper's premise);
    // private-cache-resident trees favor software, as Fig. 9's tiny
    // tables do.
    for keys in [50_000u64, 100_000, 400_000] {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let entries: Vec<(FlowKey, u64)> =
            (0..keys).map(|i| (FlowKey::synthetic(i, 16), i)).collect();
        let tree = DecisionTree::build(sys.data_mut(), &entries);
        for a in tree.all_lines().collect::<Vec<_>>() {
            sys.warm_llc(a);
        }
        let mut rng = SplitMix64::new(3);
        const N: u64 = 150;

        // Software walk on core 0.
        let mut core = CoreModel::new(CoreId(0), sys.config());
        let mut scratch = Scratch::new(&mut sys);
        scratch.warm(&mut sys, CoreId(0));
        let mut t0 = Cycle(0);
        let mut sw_total = 0u64;
        for _ in 0..N {
            let key = FlowKey::synthetic(rng.below(keys), 16);
            let tr = tree.lookup_traced(sys.data_mut(), &key);
            debug_assert!(tr.result.is_some());
            let prog = build_sw_lookup(&tr, &mut scratch, None);
            let r = core.run(&prog, &mut sys, t0);
            sw_total += (r.finish - r.start).0;
            t0 = r.finish;
        }
        let sw = sw_total as f64 / N as f64;

        // HALO walk: the whole node chain executes at the accelerator.
        let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
        let mut rng = SplitMix64::new(3);
        let mut t0 = Cycle(0);
        let mut hw_total = 0u64;
        for _ in 0..N {
            let key = FlowKey::synthetic(rng.below(keys), 16);
            let tr = tree.lookup_traced(sys.data_mut(), &key);
            let h = halo_tables::hash_key(&key, halo_tables::SEED_PRIMARY);
            let out = engine.dispatch(
                &mut sys,
                CoreId(0),
                tree.base_addr(),
                &tr,
                h,
                None,
                None,
                t0,
            );
            hw_total += (out.complete - t0).0;
            t0 = out.complete;
        }
        let hw = hw_total as f64 / N as f64;
        t.row(vec![
            keys.to_string(),
            tree.depth().to_string(),
            fmt_f64(sw),
            fmt_f64(hw),
            format!("{}x", fmt_f64(sw / hw)),
        ]);
    }
    t
}

/// MemC3-style key-value GET throughput, software vs HALO index lookups,
/// across value sizes.
#[must_use]
pub fn kv_gets() -> TextTable {
    let mut t = TextTable::new(vec![
        "objects",
        "value bytes",
        "software (cy/GET)",
        "HALO (cy/GET)",
        "speedup",
    ]);
    for &(objects, vsize) in &[(10_000usize, 64usize), (10_000, 512), (50_000, 64)] {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut kv = KvStore::new(&mut sys, objects * 2);
        let value = vec![0x5Au8; vsize];
        for i in 0..objects {
            kv.set(&mut sys, format!("obj:{i}").as_bytes(), &value)
                .expect("capacity");
        }
        kv.warm_index(&mut sys);
        let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
        const N: u64 = 120;
        let sw = kv.bench_gets(
            &mut sys,
            None,
            CoreId(0),
            |i| format!("obj:{}", (i * 37) % objects as u64).into_bytes(),
            N,
        );
        let hw = kv.bench_gets(
            &mut sys,
            Some(&mut engine),
            CoreId(1),
            |i| format!("obj:{}", (i * 37) % objects as u64).into_bytes(),
            N,
        );
        t.row(vec![
            objects.to_string(),
            vsize.to_string(),
            fmt_f64(sw.cycles_per_op),
            fmt_f64(hw.cycles_per_op),
            format!("{}x", fmt_f64(sw.cycles_per_op / hw.cycles_per_op)),
        ]);
    }
    t
}

/// Update cost: cuckoo-hash inserts are cheap and local; TCAM inserts
/// shuffle priority-ordered entries (§1: "expensive and inflexible
/// update operations").
#[must_use]
pub fn update_cost() -> TextTable {
    let mut t = TextTable::new(vec![
        "structure",
        "entries",
        "updates",
        "entry moves / displacements",
        "moves per update",
    ]);
    const ENTRIES: usize = 8_192;
    const UPDATES: u64 = 1_000;

    // Cuckoo: count displacement-induced writes via the version counter.
    {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut table = CuckooTable::with_capacity_for(sys.data_mut(), ENTRIES, 0.9, 13);
        for id in 0..ENTRIES as u64 {
            let _ = table.insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id);
        }
        // Updates: remove + reinsert random keys at 90% occupancy.
        let mut rng = SplitMix64::new(5);
        let mut moves = 0u64;
        for _ in 0..UPDATES {
            let id = rng.below(ENTRIES as u64);
            let key = FlowKey::synthetic(id, 13);
            table.remove(sys.data_mut(), &key);
            let before = sys.data_mut().read_u64(table.version_addr());
            let _ = table.insert(sys.data_mut(), &key, id);
            let after = sys.data_mut().read_u64(table.version_addr());
            // Each insert bumps the version once; extra bumps would be
            // displacement chains (BFS keeps them rare).
            moves += after.saturating_sub(before + 1);
        }
        t.row(vec![
            "cuckoo hash".into(),
            ENTRIES.to_string(),
            UPDATES.to_string(),
            moves.to_string(),
            fmt_f64(moves as f64 / UPDATES as f64),
        ]);
    }

    // TCAM: priority-ordered insertion shifts entries.
    {
        let mut tcam = TcamTable::new(ENTRIES + UPDATES as usize, 4);
        let mut rng = SplitMix64::new(5);
        for i in 0..ENTRIES as u64 {
            let prio = (rng.below(1024)) as u32;
            let key = FlowKey::synthetic(i, 13);
            tcam.insert(TcamEntry::exact(key.as_bytes(), prio, i))
                .unwrap();
        }
        let before = tcam.update_moves();
        for i in 0..UPDATES {
            let prio = (rng.below(1024)) as u32;
            let key = FlowKey::synthetic(1_000_000 + i, 13);
            tcam.insert(TcamEntry::exact(key.as_bytes(), prio, i))
                .unwrap();
        }
        let moves = tcam.update_moves() - before;
        t.row(vec![
            "TCAM (priority-ordered)".into(),
            ENTRIES.to_string(),
            UPDATES.to_string(),
            moves.to_string(),
            fmt_f64(moves as f64 / UPDATES as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(t: &TextTable, row: usize, col: usize) -> String {
        t.to_csv()
            .lines()
            .nth(row + 1)
            .unwrap()
            .split(',')
            .nth(col)
            .unwrap()
            .to_string()
    }

    #[test]
    fn halo_accelerates_tree_walks() {
        let t = tree_lookup();
        // LLC-resident trees must clearly benefit; allow the smallest
        // (partially L2-resident) to be near parity.
        let last: f64 = col(&t, t.len() - 1, 4)
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(last > 1.3, "largest tree speedup {last}");
        for row in 0..t.len() {
            let speedup: f64 = col(&t, row, 4).trim_end_matches('x').parse().unwrap();
            assert!(speedup > 0.8, "tree row {row}: speedup {speedup}");
        }
    }

    #[test]
    fn halo_accelerates_kv_gets() {
        let t = kv_gets();
        for row in 0..t.len() {
            let speedup: f64 = col(&t, row, 4).trim_end_matches('x').parse().unwrap();
            assert!(speedup > 1.1, "kv row {row}: speedup {speedup}");
        }
    }

    #[test]
    fn tcam_updates_cost_orders_of_magnitude_more_moves() {
        let t = update_cost();
        let cuckoo: f64 = col(&t, 0, 4).parse().unwrap();
        let tcam: f64 = col(&t, 1, 4).parse().unwrap();
        assert!(
            tcam > 100.0 * cuckoo.max(0.01),
            "TCAM {tcam} vs cuckoo {cuckoo} moves/update"
        );
    }
}
