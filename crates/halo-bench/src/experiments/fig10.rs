//! Fig. 10: latency breakdown of one hash-table lookup — computing,
//! data access, and locking — for software vs HALO, with the accessed
//! entries resident in LLC or in DRAM.

use halo_accel::{AcceleratorConfig, HaloEngine};
use halo_cpu::{build_sw_lookup, CoreModel, Scratch};
use halo_mem::{CoreId, MachineConfig, MemorySystem};
use halo_sim::{fmt_f64, point_seed, Cycle, SplitMix64, SweepPoint, SweepRunner, TextTable};
use halo_tables::{CuckooTable, FlowKey};

/// One bar of Fig. 10.
#[derive(Debug, Clone, Copy)]
pub struct Fig10Bar {
    /// Configuration label.
    pub name: &'static str,
    /// Cycles spent computing (hash, compares, non-memory overhead).
    pub compute: f64,
    /// Cycles waiting on table data.
    pub data: f64,
    /// Cycles attributable to locking.
    pub locking: f64,
}

impl Fig10Bar {
    /// Total lookup latency.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.compute + self.data + self.locking
    }
}

const N: u64 = 150;

fn avg_sw_latency(flows: usize, warm_llc: bool, locking: bool, seed: u64) -> f64 {
    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut table = CuckooTable::with_capacity_for(sys.data_mut(), flows, 0.8, 13);
    for id in 0..flows as u64 {
        let _ = table.insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id);
    }
    if warm_llc {
        for a in table.all_lines().collect::<Vec<_>>() {
            sys.warm_llc(a);
        }
    }
    let mut scratch = Scratch::new(&mut sys);
    scratch.warm(&mut sys, CoreId(0));
    let mut core = CoreModel::new(CoreId(0), sys.config());
    let mut rng = SplitMix64::new(seed);
    let mut total = 0u64;
    let mut t = Cycle(0);
    for _ in 0..N {
        let key = FlowKey::synthetic(rng.below(flows as u64), 13);
        let tr = table.lookup_traced(sys.data_mut(), &key, locking);
        let prog = build_sw_lookup(&tr, &mut scratch, None);
        if !warm_llc {
            // DRAM case: evict the table from everywhere between
            // lookups so each access pays the full memory latency.
            sys.flush_all();
            scratch.warm(&mut sys, CoreId(0));
        }
        let r = core.run(&prog, &mut sys, t);
        total += (r.finish - r.start).0;
        t = r.finish;
    }
    total as f64 / N as f64
}

/// Software compute-only proxy: the same lookup program run against a
/// *small* table resident in the core's private caches — the data-access
/// cost collapses to L1 hits, leaving the compute component. (The
/// compute work per lookup is table-size independent.)
fn sw_compute_proxy(_flows: usize, seed: u64) -> f64 {
    let flows = 400usize; // fits L1/L2 comfortably
    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut table = CuckooTable::with_capacity_for(sys.data_mut(), flows, 0.8, 13);
    for id in 0..flows as u64 {
        let _ = table.insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id);
    }
    for a in table.all_lines().collect::<Vec<_>>() {
        sys.warm_private(CoreId(0), a);
    }
    let mut scratch = Scratch::new(&mut sys);
    scratch.warm(&mut sys, CoreId(0));
    let mut core = CoreModel::new(CoreId(0), sys.config());
    let mut rng = SplitMix64::new(seed);
    let mut total = 0u64;
    let mut t = Cycle(0);
    for _ in 0..N {
        let key = FlowKey::synthetic(rng.below(flows as u64), 13);
        let tr = table.lookup_traced(sys.data_mut(), &key, false);
        let prog = build_sw_lookup(&tr, &mut scratch, None);
        let r = core.run(&prog, &mut sys, t);
        total += (r.finish - r.start).0;
        t = r.finish;
    }
    total as f64 / N as f64
}

/// Returns `(avg total latency, avg data-access cycles)` for HALO
/// blocking lookups; the compute/dispatch component is the remainder.
fn avg_halo_latency(flows: usize, warm_llc: bool, seed: u64) -> (f64, f64) {
    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut table = CuckooTable::with_capacity_for(sys.data_mut(), flows, 0.8, 13);
    for id in 0..flows as u64 {
        let _ = table.insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id);
    }
    if warm_llc {
        for a in table.all_lines().collect::<Vec<_>>() {
            sys.warm_llc(a);
        }
    }
    let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
    let mut rng = SplitMix64::new(seed);
    let mut total = 0u64;
    let mut data = 0u64;
    let mut t = Cycle(0);
    for _ in 0..N {
        let key = FlowKey::synthetic(rng.below(flows as u64), 13);
        if !warm_llc {
            sys.flush_all();
        }
        let trace = table.lookup_traced(sys.data_mut(), &key, false);
        let h = halo_tables::hash_key(&key, halo_tables::SEED_PRIMARY);
        let out = engine.dispatch(
            &mut sys,
            CoreId(0),
            table.meta_addr(),
            &trace,
            h,
            None,
            None,
            t,
        );
        total += (out.complete - t).0;
        data += out.data_cycles.0;
        t = out.complete;
    }
    (total as f64 / N as f64, data as f64 / N as f64)
}

/// One of the seven independent latency measurements behind the four
/// bars. Each returns `(total, data)` cycles; the software measurements
/// have no separable data component, so `data` is 0 there.
#[derive(Debug, Clone, Copy)]
enum Fig10Meas {
    /// Software lookup latency with the given residency and locking.
    Software { warm_llc: bool, locking: bool },
    /// Software compute-only proxy (tiny private-cache-resident table).
    SoftwareCompute,
    /// HALO blocking lookup latency with the given residency.
    Halo { warm_llc: bool },
}

#[derive(Debug, Clone, Copy)]
struct Fig10PointSpec {
    meas: Fig10Meas,
    flows: usize,
    seed: u64,
}

impl SweepPoint for Fig10PointSpec {
    type Row = (f64, f64);

    fn run(&self) -> (f64, f64) {
        match self.meas {
            Fig10Meas::Software { warm_llc, locking } => (
                avg_sw_latency(self.flows, warm_llc, locking, self.seed),
                0.0,
            ),
            Fig10Meas::SoftwareCompute => (sw_compute_proxy(self.flows, self.seed), 0.0),
            Fig10Meas::Halo { warm_llc } => avg_halo_latency(self.flows, warm_llc, self.seed),
        }
    }

    fn label(&self) -> String {
        format!("{:?}", self.meas)
    }
}

/// Runs the four-bar breakdown on an explicit runner. Flow count chosen
/// so the table is comfortably LLC-resident (the DRAM bars flush caches
/// instead).
#[must_use]
pub fn run_with(runner: &SweepRunner) -> Vec<Fig10Bar> {
    const FLOWS: usize = 20_000;
    let measurements = [
        Fig10Meas::Software {
            warm_llc: true,
            locking: true,
        },
        Fig10Meas::Software {
            warm_llc: true,
            locking: false,
        },
        Fig10Meas::SoftwareCompute,
        Fig10Meas::Software {
            warm_llc: false,
            locking: true,
        },
        Fig10Meas::Software {
            warm_llc: false,
            locking: false,
        },
        Fig10Meas::Halo { warm_llc: true },
        Fig10Meas::Halo { warm_llc: false },
    ];
    let points: Vec<Fig10PointSpec> = measurements
        .iter()
        .enumerate()
        .map(|(i, &meas)| Fig10PointSpec {
            meas,
            flows: FLOWS,
            seed: point_seed("fig10", i as u64),
        })
        .collect();
    let rows = runner.run(points);
    let (sw_llc_lock, sw_llc_nolock, sw_compute) = (rows[0].0, rows[1].0, rows[2].0);
    let (sw_dram_lock, sw_dram_nolock) = (rows[3].0, rows[4].0);
    let (halo_llc, halo_llc_data) = rows[5];
    let (halo_dram, halo_dram_data) = rows[6];

    let sw_llc_locking = (sw_llc_lock - sw_llc_nolock).max(0.0);
    let sw_dram_locking = (sw_dram_lock - sw_dram_nolock).max(0.0);
    vec![
        Fig10Bar {
            name: "Software (LLC)",
            compute: sw_compute.min(sw_llc_lock),
            data: (sw_llc_nolock - sw_compute).max(0.0),
            locking: sw_llc_locking,
        },
        Fig10Bar {
            name: "HALO (LLC)",
            compute: (halo_llc - halo_llc_data).max(0.0),
            data: halo_llc_data,
            locking: 0.0,
        },
        Fig10Bar {
            name: "Software (DRAM)",
            compute: sw_compute.min(sw_dram_lock),
            data: (sw_dram_nolock - sw_compute).max(0.0),
            locking: sw_dram_locking,
        },
        Fig10Bar {
            name: "HALO (DRAM)",
            compute: (halo_dram - halo_dram_data).max(0.0),
            data: halo_dram_data,
            locking: 0.0,
        },
    ]
}

/// Runs the four-bar breakdown with default parallelism.
#[must_use]
pub fn run() -> Vec<Fig10Bar> {
    run_with(&SweepRunner::from_env("fig10"))
}

/// Formats like the paper's Fig. 10 (normalized to Software-LLC).
#[must_use]
pub fn table(bars: &[Fig10Bar]) -> TextTable {
    let base = bars.first().map_or(1.0, |b| b.total()).max(1e-9);
    let mut t = TextTable::new(vec![
        "configuration",
        "compute(cy)",
        "data(cy)",
        "locking(cy)",
        "total(cy)",
        "normalized",
    ]);
    for b in bars {
        t.row(vec![
            b.name.to_string(),
            fmt_f64(b.compute),
            fmt_f64(b.data),
            fmt_f64(b.locking),
            fmt_f64(b.total()),
            fmt_f64(b.total() / base),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_shapes_match_paper() {
        let bars = run();
        let sw_llc = &bars[0];
        let halo_llc = &bars[1];
        let sw_dram = &bars[2];
        let halo_dram = &bars[3];

        // HALO reduces total latency in the LLC case.
        assert!(
            halo_llc.total() < 0.7 * sw_llc.total(),
            "HALO-LLC {} vs SW-LLC {}",
            halo_llc.total(),
            sw_llc.total()
        );
        // Near-cache data access is several times cheaper than the
        // core path (paper: 4.1x from LLC).
        assert!(
            sw_llc.data / halo_llc.data.max(1.0) > 2.0,
            "LLC data {} vs {}",
            sw_llc.data,
            halo_llc.data
        );
        // DRAM residency hurts both, HALO less (paper: 1.6x faster).
        assert!(sw_dram.total() > sw_llc.total());
        assert!(halo_dram.total() > halo_llc.total());
        assert!(
            halo_dram.total() < sw_dram.total(),
            "HALO-DRAM {} vs SW-DRAM {}",
            halo_dram.total(),
            sw_dram.total()
        );
        // Software pays a locking component; HALO pays none.
        assert!(sw_llc.locking >= 0.0);
        assert!(halo_llc.locking == 0.0 && halo_dram.locking == 0.0);
        // HALO removes a large share of the compute (paper: 48.1% of
        // the instruction work is data access + simple arithmetic).
        assert!(halo_llc.compute < 0.5 * sw_llc.compute);
    }
}
