//! Table 4: power and area of hardware flow-classification approaches,
//! plus the HALO-vs-TCAM energy-efficiency ratio of §6.4.

use crate::experiments::harness::{Approach, SingleTableWorkload};
use halo_power::{
    halo_total, sram_tcam_model, tcam_capacity_for_rules, tcam_model, PowerArea, TCAM_TABLE4,
};
use halo_sim::{fmt_f64, TextTable, CORE_HZ};

/// The Table 4 rows plus derived efficiency numbers.
#[derive(Debug, Clone)]
pub struct Table4Result {
    /// `(label, model)` rows.
    pub rows: Vec<(String, PowerArea)>,
    /// Measured HALO throughput (queries/s at 2.1 GHz).
    pub halo_qps: f64,
    /// Assumed TCAM throughput (one match pipeline, queries/s).
    pub tcam_qps: f64,
    /// HALO / TCAM(1MB) energy-efficiency ratio.
    pub efficiency_ratio: f64,
}

/// Runs the analysis; throughputs are measured on a 100 K-entry table.
#[must_use]
pub fn run(quick: bool) -> Table4Result {
    let mut rows = Vec::new();
    for &(cap, ..) in &TCAM_TABLE4 {
        rows.push((format!("TCAM {}KB", cap >> 10), tcam_model(cap)));
    }
    rows.push(("SRAM-TCAM 1MB".to_string(), sram_tcam_model(1 << 20)));
    rows.push(("HALO (16 accels)".to_string(), halo_total(16)));

    // Measure chip-level HALO throughput on a large LLC-resident
    // table: the key-hash dispatch spreads queries over all 16
    // accelerators (the aggregate capacity the energy comparison is
    // about; a realistic NFV deployment runs one table per service and
    // fills the chip the same way).
    let entries: u64 = if quick { 1 << 14 } else { 1 << 17 };
    let n = if quick { 400 } else { 1600 };
    let mut w = SingleTableWorkload::new(entries, 0.8, 77);
    let halo_kcy = w.throughput_chip_level(n);
    let halo_qps = halo_kcy / 1000.0 * CORE_HZ as f64;
    let mut w = SingleTableWorkload::new(entries, 0.8, 77);
    let tcam_kcy = w.throughput(Approach::Tcam, n);
    let tcam_qps = tcam_kcy / 1000.0 * CORE_HZ as f64;

    let rules = 100_000u64;
    let tcam = tcam_model(tcam_capacity_for_rules(rules));
    let halo = halo_total(16);
    let efficiency_ratio = halo.queries_per_joule(halo_qps) / tcam.queries_per_joule(tcam_qps);

    Table4Result {
        rows,
        halo_qps,
        tcam_qps,
        efficiency_ratio,
    }
}

/// Formats like the paper's Table 4 plus the efficiency line.
#[must_use]
pub fn table(r: &Table4Result) -> TextTable {
    let mut t = TextTable::new(vec![
        "solution",
        "area (tiles)",
        "static (mW)",
        "dynamic (nJ/query)",
    ]);
    for (label, m) in &r.rows {
        t.row(vec![
            label.clone(),
            format!("{:.3}", m.area_tiles),
            fmt_f64(m.static_mw),
            format!("{:.2}", m.dynamic_nj_per_query),
        ]);
    }
    t.row(vec![
        format!(
            "HALO vs TCAM(1MB) efficiency: {}x",
            fmt_f64(r.efficiency_ratio)
        ),
        format!("HALO {:.0} Mq/s", r.halo_qps / 1e6),
        format!("TCAM {:.0} Mq/s", r.tcam_qps / 1e6),
        String::new(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_ratio_in_paper_band() {
        let r = run(true);
        // Paper: up to 48.2x more energy-efficient than TCAM.
        assert!(
            r.efficiency_ratio > 3.0 && r.efficiency_ratio < 120.0,
            "ratio {} out of band",
            r.efficiency_ratio
        );
        assert!(r.halo_qps > 1e6);
        // The printed table carries all six rows.
        assert_eq!(r.rows.len(), 6);
        // HALO's area stays a trivial fraction of the chip.
        let halo = &r.rows[5].1;
        assert!(halo.area_tiles < 0.2);
    }
}
