//! Table 1: instruction count and mix of a single software cuckoo
//! lookup.

use halo_cpu::{build_sw_lookup, Scratch, UopKind};
use halo_mem::{MachineConfig, MemorySystem};
use halo_sim::{fmt_f64, TextTable};
use halo_tables::{CuckooTable, FlowKey};

/// Measured instruction mix of one software lookup.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// Total micro-ops per lookup.
    pub instructions: usize,
    /// Fraction of loads.
    pub load_frac: f64,
    /// Fraction of stores.
    pub store_frac: f64,
    /// Fraction of arithmetic + control (computes).
    pub other_frac: f64,
}

/// Runs the Table 1 measurement.
#[must_use]
pub fn run() -> Table1Row {
    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut table = CuckooTable::create(sys.data_mut(), 1024, 13);
    for id in 0..1000u64 {
        table
            .insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id)
            .expect("sized for 1000");
    }
    let mut scratch = Scratch::new(&mut sys);
    // Average over many lookups (trace shape varies with sig matches).
    let mut total = 0usize;
    let mut loads = 0usize;
    let mut stores = 0usize;
    const N: u64 = 200;
    for id in 0..N {
        let tr = table.lookup_traced(sys.data_mut(), &FlowKey::synthetic(id, 13), true);
        let prog = build_sw_lookup(&tr, &mut scratch, None);
        total += prog.len();
        for u in prog.uops() {
            match u.kind {
                UopKind::Load { .. } => loads += 1,
                UopKind::Store { .. } => stores += 1,
                UopKind::Compute { .. } => {}
            }
        }
    }
    let n = N as usize;
    let instructions = total / n;
    let load_frac = loads as f64 / total as f64;
    let store_frac = stores as f64 / total as f64;
    Table1Row {
        instructions,
        load_frac,
        store_frac,
        other_frac: 1.0 - load_frac - store_frac,
    }
}

/// Formats the result like the paper's Table 1.
#[must_use]
pub fn table() -> TextTable {
    let r = run();
    let mut t = TextTable::new(vec![
        "solution",
        "#instructions/lookup",
        "memory (load/store)",
        "arith+others",
    ]);
    t.row(vec![
        "OVS/Cuckoo hash".into(),
        r.instructions.to_string(),
        format!(
            "{}% ({}%/{}%)",
            fmt_f64(100.0 * (r.load_frac + r.store_frac)),
            fmt_f64(100.0 * r.load_frac),
            fmt_f64(100.0 * r.store_frac)
        ),
        format!("{}%", fmt_f64(100.0 * r.other_frac)),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table1() {
        let r = run();
        // Paper: ~210 instructions; 36.2% load, 11.8% store.
        assert!(
            (200..=225).contains(&r.instructions),
            "instructions {}",
            r.instructions
        );
        assert!((r.load_frac - 0.362).abs() < 0.03, "loads {}", r.load_frac);
        assert!(
            (r.store_frac - 0.118).abs() < 0.03,
            "stores {}",
            r.store_frac
        );
    }
}
