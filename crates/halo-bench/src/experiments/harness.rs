//! Shared experiment machinery: the five lookup approaches of §5.1
//! driven over a single hash table, plus common setup helpers.

use halo_accel::{AcceleratorConfig, DispatchPolicy, HaloEngine};
use halo_cpu::{build_sw_lookup, CoreModel, Scratch};
use halo_mem::{CoreId, MachineConfig, MemorySystem};
use halo_sim::{Cycle, Cycles, SplitMix64};
use halo_tables::{CuckooTable, FlowKey};
use halo_tcam::{SramTcam, TcamEntry, TcamTable};

/// The five compared configurations (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// DPDK `rte_hash` software cuckoo lookup.
    Software,
    /// HALO `LOOKUP_B`.
    HaloBlocking,
    /// HALO `LOOKUP_NB` + `SNAPSHOT_READ` in batches of 8.
    HaloNonBlocking,
    /// Ternary CAM.
    Tcam,
    /// SRAM-emulated TCAM.
    SramTcam,
}

impl Approach {
    /// All five, in the paper's presentation order.
    #[must_use]
    pub fn all() -> [Approach; 5] {
        [
            Approach::Software,
            Approach::HaloBlocking,
            Approach::HaloNonBlocking,
            Approach::Tcam,
            Approach::SramTcam,
        ]
    }

    /// Display label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Approach::Software => "Software",
            Approach::HaloBlocking => "HALO-B",
            Approach::HaloNonBlocking => "HALO-NB",
            Approach::Tcam => "TCAM",
            Approach::SramTcam => "SRAM-TCAM",
        }
    }
}

/// Round-trip latency from a core to the (off-LLC but on-chip) TCAM
/// block, added to each TCAM match (the TCAM is not free to reach).
const TCAM_REACH: Cycles = Cycles(20);

/// A single-table lookup workload: `entries`-slot cuckoo table filled to
/// `occupancy`, probed with uniformly random installed keys.
#[derive(Debug)]
pub struct SingleTableWorkload {
    /// The memory system (tables installed and warmed into the LLC).
    pub sys: MemorySystem,
    /// The flow table.
    pub table: CuckooTable,
    /// Keys actually installed.
    pub installed: u64,
    rng: SplitMix64,
}

impl SingleTableWorkload {
    /// Builds the workload. `entries` is the table's slot capacity.
    #[must_use]
    pub fn new(entries: u64, occupancy: f64, seed: u64) -> Self {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let buckets = (entries / 8).max(1).next_power_of_two();
        let mut table = CuckooTable::create(sys.data_mut(), buckets, 13);
        let target = ((entries as f64) * occupancy) as u64;
        let mut installed = 0;
        for id in 0..target {
            if table
                .insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id)
                .is_ok()
            {
                installed += 1;
            } else {
                break;
            }
        }
        // Warm-up (§5.2: 10 K warm-up lookups): make the table
        // LLC-resident to the extent it fits.
        for a in table.all_lines().collect::<Vec<_>>() {
            sys.warm_llc(a);
        }
        SingleTableWorkload {
            sys,
            table,
            installed,
            rng: SplitMix64::new(seed ^ 0xF16),
        }
    }

    /// A random installed key.
    pub fn next_key(&mut self) -> FlowKey {
        FlowKey::synthetic(self.rng.below(self.installed.max(1)), 13)
    }

    /// Measures throughput in lookups per kilocycle for `approach` over
    /// `n` lookups.
    pub fn throughput(&mut self, approach: Approach, n: u64) -> f64 {
        match approach {
            Approach::Software => self.run_software(n),
            Approach::HaloBlocking => self.run_halo_b(n),
            Approach::HaloNonBlocking => self.run_halo_nb(n),
            Approach::Tcam => self.run_tcam(n, false),
            Approach::SramTcam => self.run_tcam(n, true),
        }
    }

    fn run_software(&mut self, n: u64) -> f64 {
        let mut scratch = Scratch::new(&mut self.sys);
        scratch.warm(&mut self.sys, CoreId(0));
        let mut core = CoreModel::new(CoreId(0), self.sys.config());
        let start = Cycle(0);
        let mut t = start;
        for _ in 0..n {
            let key = self.next_key();
            let tr = self.table.lookup_traced(self.sys.data_mut(), &key, true);
            let prog = build_sw_lookup(&tr, &mut scratch, None);
            t = core.run(&prog, &mut self.sys, t).finish;
        }
        kilo_throughput(n, t - start)
    }

    fn run_halo_b(&mut self, n: u64) -> f64 {
        let mut engine = HaloEngine::new(&self.sys, AcceleratorConfig::default());
        let start = Cycle(0);
        let mut t = start;
        for _ in 0..n {
            let key = self.next_key();
            let (r, done) = engine.lookup_b(&mut self.sys, CoreId(0), &self.table, &key, None, t);
            debug_assert!(r.is_some());
            t = done;
        }
        kilo_throughput(n, t - start)
    }

    fn run_halo_nb(&mut self, n: u64) -> f64 {
        let mut engine = HaloEngine::new(&self.sys, AcceleratorConfig::default());
        let dest = self.sys.data_mut().alloc_lines(64);
        let start = Cycle(0);
        let mut t = start;
        let mut done_total = 0u64;
        while done_total < n {
            let batch = 8.min(n - done_total);
            let mut batch_done = t;
            for i in 0..batch {
                let key = self.next_key();
                let h = engine.lookup_nb(
                    &mut self.sys,
                    CoreId(0),
                    &self.table,
                    &key,
                    None,
                    dest + i * 8,
                    t + Cycles(i), // one issue per cycle
                );
                batch_done = batch_done.max(h.result_at);
            }
            // One SNAPSHOT_READ collects the whole destination line.
            let (_, snap) = engine.snapshot_read(&mut self.sys, CoreId(0), dest, batch_done);
            t = snap;
            done_total += batch;
        }
        kilo_throughput(n, t - start)
    }

    /// Chip-level non-blocking throughput: queries issued from eight
    /// cores with the key-hash dispatch spreading them across every
    /// accelerator — the aggregate lookup capacity of the whole chip
    /// (used by the Table 4 energy-efficiency comparison).
    pub fn throughput_chip_level(&mut self, n: u64) -> f64 {
        let mut engine = engine_with_policy(&self.sys, DispatchPolicy::KeyHash);
        let cores = 8u64;
        let dest = self.sys.data_mut().alloc_lines(64 * cores);
        let start = Cycle(0);
        let mut finish = start;
        for i in 0..n {
            let key = self.next_key();
            let core = CoreId((i % cores) as usize);
            // Each core sustains one LOOKUP_NB every other cycle.
            let issue = start + Cycles(2 * (i / cores));
            let h = engine.lookup_nb(
                &mut self.sys,
                core,
                &self.table,
                &key,
                None,
                dest + (i % (8 * cores)) * 8,
                issue,
            );
            finish = finish.max(h.result_at);
        }
        kilo_throughput(n, finish - start)
    }

    fn run_tcam(&mut self, n: u64, sram: bool) -> f64 {
        // Mirror the installed keys into the TCAM (assumed big enough —
        // §6.1's assumption, priced separately by halo-power).
        let mut tcam = TcamTable::new(self.installed as usize + 1, 4);
        let mut stcam = SramTcam::new(self.installed as usize + 1, 4, 2);
        for id in 0..self.installed {
            let key = FlowKey::synthetic(id, 13);
            let e = TcamEntry::exact(key.as_bytes(), 0, id);
            if sram {
                stcam.insert(e).unwrap();
            } else {
                tcam.insert(e).unwrap();
            }
        }
        // TCAM match pipelines are streaming: the core posts queries
        // through an MMIO queue (one every few cycles, bounded by the
        // uncore write path) and results flow back `reach + match +
        // reach` later, so throughput is issue-bound, not latency-bound.
        let start = Cycle(0);
        let mut last_done = start;
        for i in 0..n {
            let key = self.next_key();
            let issue = start + Cycles(6 * i);
            let (r, done) = if sram {
                stcam.lookup_timed(key.as_bytes(), issue + TCAM_REACH)
            } else {
                tcam.lookup_timed(key.as_bytes(), issue + TCAM_REACH)
            };
            debug_assert!(r.is_some());
            last_done = last_done.max(done + TCAM_REACH);
        }
        kilo_throughput(n, last_done - start)
    }
}

/// Lookups per kilocycle.
#[must_use]
pub fn kilo_throughput(n: u64, elapsed: Cycles) -> f64 {
    if elapsed.0 == 0 {
        0.0
    } else {
        1000.0 * n as f64 / elapsed.0 as f64
    }
}

/// Builds a HALO engine with the key-spreading policy used for
/// single-table scaling studies (ablation only; the paper's default is
/// table-address hashing).
#[must_use]
pub fn engine_with_policy(sys: &MemorySystem, policy: DispatchPolicy) -> HaloEngine {
    let mut e = HaloEngine::new(sys, AcceleratorConfig::default());
    e.set_policy(policy);
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_installs_to_occupancy() {
        let w = SingleTableWorkload::new(1 << 10, 0.5, 1);
        let expect = (1 << 10) / 2;
        assert!(
            w.installed >= expect * 95 / 100,
            "installed {}",
            w.installed
        );
    }

    #[test]
    fn all_approaches_produce_positive_throughput() {
        for a in Approach::all() {
            let mut w = SingleTableWorkload::new(1 << 9, 0.5, 1);
            let thr = w.throughput(a, 60);
            assert!(thr > 0.0, "{} throughput {thr}", a.name());
        }
    }

    #[test]
    fn halo_beats_software_on_llc_resident_table() {
        let mut w = SingleTableWorkload::new(1 << 14, 0.5, 1);
        let sw = w.throughput(Approach::Software, 150);
        let mut w = SingleTableWorkload::new(1 << 14, 0.5, 1);
        let hb = w.throughput(Approach::HaloBlocking, 150);
        assert!(
            hb > 1.5 * sw,
            "HALO-B {hb} should clearly beat software {sw}"
        );
        assert!(hb < 8.0 * sw, "speedup implausibly high: {}", hb / sw);
    }

    #[test]
    fn tcam_is_fastest() {
        let mut w = SingleTableWorkload::new(1 << 12, 0.5, 1);
        let tc = w.throughput(Approach::Tcam, 150);
        let mut w = SingleTableWorkload::new(1 << 12, 0.5, 1);
        let hb = w.throughput(Approach::HaloBlocking, 150);
        assert!(tc > hb, "TCAM {tc} must beat HALO-B {hb}");
    }
}
