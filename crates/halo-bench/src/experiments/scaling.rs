//! Multi-core datapath scaling (the paper's "scalable packet
//! processing" claim): aggregate classification throughput as PMD
//! threads grow from 1 to 16 over a shared MegaFlow layer, software vs
//! HALO non-blocking, with and without rule churn from a revalidator.

use halo_accel::{AcceleratorConfig, HaloEngine};
use halo_mem::{MachineConfig, MemorySystem};
use halo_sim::{fmt_f64, point_seed, SweepPoint, SweepRunner, TextTable};
use halo_vswitch::{LookupBackend, MultiCoreDatapath, ScalingReport};

/// One scaling data point.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// PMD threads.
    pub cores: usize,
    /// Lookup backend.
    pub backend: LookupBackend,
    /// Rule-churn interval (0 = none).
    pub churn: u64,
    /// The measured report.
    pub report: ScalingReport,
}

fn measure(
    cores: usize,
    backend: LookupBackend,
    packets: u64,
    churn: u64,
    seed: u64,
) -> ScalingReport {
    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
    let mut dp = MultiCoreDatapath::new(&mut sys, cores, 5, 4_000, backend, seed);
    let e = match backend {
        LookupBackend::Software => None,
        _ => Some(&mut engine),
    };
    dp.run(&mut sys, e, packets, churn)
}

/// One sweep point: a (cores, backend, churn) configuration with its
/// own simulated machine (each `MultiCoreDatapath` run is independent).
#[derive(Debug, Clone, Copy)]
struct ScalingSweep {
    cores: usize,
    backend: LookupBackend,
    churn: u64,
    packets: u64,
    seed: u64,
}

impl SweepPoint for ScalingSweep {
    type Row = ScalingPoint;

    fn run(&self) -> ScalingPoint {
        ScalingPoint {
            cores: self.cores,
            backend: self.backend,
            churn: self.churn,
            report: measure(
                self.cores,
                self.backend,
                self.packets,
                self.churn,
                self.seed,
            ),
        }
    }

    fn label(&self) -> String {
        format!(
            "{} cores, {:?}, churn {}",
            self.cores, self.backend, self.churn
        )
    }
}

/// Runs the scaling sweep on an explicit runner.
#[must_use]
pub fn run_with(quick: bool, runner: &SweepRunner) -> Vec<ScalingPoint> {
    let packets: u64 = if quick { 400 } else { 1500 };
    let core_counts: &[usize] = if quick { &[1, 4, 8] } else { &[1, 2, 4, 8, 16] };
    let mut points = Vec::new();
    for &cores in core_counts {
        for backend in [LookupBackend::Software, LookupBackend::HaloNonBlocking] {
            for churn in [0u64, 16] {
                points.push(ScalingSweep {
                    cores,
                    backend,
                    churn,
                    packets,
                    seed: point_seed("scaling", points.len() as u64),
                });
            }
        }
    }
    runner.run(points)
}

/// Runs the scaling sweep with default parallelism.
#[must_use]
pub fn run(quick: bool) -> Vec<ScalingPoint> {
    run_with(quick, &SweepRunner::from_env("scaling"))
}

/// Formats the sweep.
#[must_use]
pub fn table(points: &[ScalingPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "cores",
        "backend",
        "churn",
        "throughput (pkts/kcy)",
        "dirty transfers",
    ]);
    for p in points {
        t.row(vec![
            p.cores.to_string(),
            format!("{:?}", p.backend),
            if p.churn == 0 {
                "none".into()
            } else {
                format!("1/{}", p.churn)
            },
            fmt_f64(p.report.throughput_per_kcy),
            p.report.dirty_transfers.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_shapes() {
        let pts = run(true);
        let get = |cores: usize, backend: LookupBackend, churn: u64| {
            pts.iter()
                .find(|p| p.cores == cores && p.backend == backend && p.churn == churn)
                .copied()
                .expect("point present")
        };
        // Both backends scale with cores.
        let sw1 = get(1, LookupBackend::Software, 0).report.throughput_per_kcy;
        let sw8 = get(8, LookupBackend::Software, 0).report.throughput_per_kcy;
        assert!(sw8 > 3.0 * sw1, "software should scale: {sw1} -> {sw8}");
        let nb1 = get(1, LookupBackend::HaloNonBlocking, 0)
            .report
            .throughput_per_kcy;
        let nb8 = get(8, LookupBackend::HaloNonBlocking, 0)
            .report
            .throughput_per_kcy;
        assert!(nb8 > 3.0 * nb1, "HALO should scale: {nb1} -> {nb8}");
        // HALO leads at every core count.
        for &c in &[1usize, 4, 8] {
            let sw = get(c, LookupBackend::Software, 0).report.throughput_per_kcy;
            let nb = get(c, LookupBackend::HaloNonBlocking, 0)
                .report
                .throughput_per_kcy;
            assert!(nb > sw, "HALO must lead at {c} cores: {nb} vs {sw}");
        }
        // Churn generates coherence traffic for the software datapath.
        let calm = get(8, LookupBackend::Software, 0).report.dirty_transfers;
        let churny = get(8, LookupBackend::Software, 16).report.dirty_transfers;
        assert!(churny >= calm, "churn traffic: {churny} vs {calm}");
    }
}
