//! Fig. 4: cache behaviour of cuckoo hash vs a single-function hash
//! (SFH) table — L2/LLC misses per kilo-load and the stall-cycle ratio
//! as the flow count grows.

use halo_cpu::{build_sw_lookup, CoreModel, Scratch};
use halo_mem::{CoreId, MachineConfig, MemorySystem};
use halo_sim::{fmt_f64, Cycle, SplitMix64, TextTable};
use halo_tables::{CuckooTable, FlowKey, SfhTable};

/// Table kind under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// 8-way cuckoo hash (DPDK default).
    Cuckoo,
    /// Single-function hash.
    Sfh,
}

/// One Fig. 4 measurement.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Row {
    /// Which table.
    pub kind: TableKind,
    /// Installed flows.
    pub flows: usize,
    /// L2 misses per kilo-load.
    pub l2_mpkl: f64,
    /// LLC misses per kilo-load.
    pub llc_mpkl: f64,
    /// Fraction of execution stalled on L2/LLC misses.
    pub stall_ratio: f64,
    /// Table footprint in bytes.
    pub footprint: u64,
}

fn measure(kind: TableKind, flows: usize, lookups: u64, seed: u64) -> Fig4Row {
    let mut sys = MemorySystem::new(MachineConfig::default());
    enum T {
        C(CuckooTable),
        S(SfhTable),
    }
    let table = match kind {
        TableKind::Cuckoo => {
            let mut t = CuckooTable::with_capacity_for(sys.data_mut(), flows, 0.9, 13);
            for id in 0..flows as u64 {
                let _ = t.insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id);
            }
            T::C(t)
        }
        TableKind::Sfh => {
            let mut t = SfhTable::with_capacity_for(sys.data_mut(), flows, 13);
            for id in 0..flows as u64 {
                let _ = t.insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id);
            }
            T::S(t)
        }
    };
    let footprint = match &table {
        T::C(t) => t.footprint(),
        T::S(t) => t.footprint(),
    };
    // Warm by streaming the table once through the cache hierarchy (the
    // steady state after §5.2's warm-up lookups): larger-than-LLC
    // tables self-evict, exactly as on real hardware.
    {
        let lines: Vec<_> = match &table {
            T::C(t) => t.all_lines().collect(),
            T::S(t) => t.all_lines().collect(),
        };
        for a in lines {
            sys.warm_llc(a);
        }
    }
    let mut scratch = Scratch::new(&mut sys);
    scratch.warm(&mut sys, CoreId(0));
    let mut core = CoreModel::new(CoreId(0), sys.config());
    sys.clear_stats();

    let mut rng = SplitMix64::new(seed);
    let mut t = Cycle(0);
    let start = t;
    let mut stall = 0u64;
    for _ in 0..lookups {
        let key = FlowKey::synthetic(rng.below(flows as u64), 13);
        let tr = match &table {
            T::C(tab) => tab.lookup_traced(sys.data_mut(), &key, true),
            T::S(tab) => tab.lookup_traced(sys.data_mut(), &key),
        };
        let prog = build_sw_lookup(&tr, &mut scratch, None);
        let r = core.run(&prog, &mut sys, t);
        stall += r.mem.l2llc_miss_penalty.0;
        t = r.finish;
    }
    let loads = sys.stats().counter("mem.load").max(1);
    let l2_miss = sys.stats().counter("l2.miss");
    let llc_miss = sys.stats().counter("llc.miss");
    let total = (t - start).0.max(1);
    Fig4Row {
        kind,
        flows,
        l2_mpkl: 1000.0 * l2_miss as f64 / loads as f64,
        llc_mpkl: 1000.0 * llc_miss as f64 / loads as f64,
        stall_ratio: (stall as f64 / total as f64).min(1.0),
        footprint,
    }
}

/// Runs the sweep (paper: 1 K – 4 M flows; quick mode caps at 200 K).
#[must_use]
pub fn run(quick: bool) -> Vec<Fig4Row> {
    let sizes: Vec<usize> = if quick {
        vec![1_000, 10_000, 100_000, 200_000]
    } else {
        vec![1_000, 10_000, 100_000, 1_000_000, 4_000_000]
    };
    let lookups = if quick { 400 } else { 1500 };
    let mut out = Vec::new();
    for &flows in &sizes {
        out.push(measure(TableKind::Cuckoo, flows, lookups, 5));
        // SFH is capped at 1M flows: its table footprint is ~5-8x
        // cuckoo's (0.6 GB at 1M, 2.3 GB at 4M) and its LLC divergence
        // is already total by 100K flows (the paper's observation).
        if flows <= 1_000_000 {
            out.push(measure(TableKind::Sfh, flows, lookups, 5));
        }
    }
    out
}

/// Formats like the paper's Fig. 4.
#[must_use]
pub fn table(rows: &[Fig4Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "table",
        "flows",
        "footprint(MB)",
        "L2 MPKL",
        "LLC MPKL",
        "stall ratio",
    ]);
    for r in rows {
        t.row(vec![
            match r.kind {
                TableKind::Cuckoo => "cuckoo".into(),
                TableKind::Sfh => "SFH".into(),
            },
            r.flows.to_string(),
            fmt_f64(r.footprint as f64 / (1024.0 * 1024.0)),
            fmt_f64(r.l2_mpkl),
            fmt_f64(r.llc_mpkl),
            fmt_f64(r.stall_ratio),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sfh_misses_llc_earlier_than_cuckoo() {
        let rows = run(true);
        let get = |k: TableKind, flows: usize| {
            rows.iter()
                .find(|r| r.kind == k && r.flows == flows)
                .copied()
                .unwrap()
        };
        // At 100K flows the SFH table has outgrown the LLC while cuckoo
        // still mostly fits (paper's central observation).
        let c = get(TableKind::Cuckoo, 100_000);
        let s = get(TableKind::Sfh, 100_000);
        assert!(s.footprint > 2 * c.footprint, "SFH must waste space");
        assert!(
            s.llc_mpkl > c.llc_mpkl,
            "SFH LLC MPKL {} must exceed cuckoo {}",
            s.llc_mpkl,
            c.llc_mpkl
        );
        assert!(
            s.stall_ratio > c.stall_ratio,
            "SFH stalls {} must exceed cuckoo {}",
            s.stall_ratio,
            c.stall_ratio
        );
        // Small tables barely miss for either kind.
        let c1k = get(TableKind::Cuckoo, 1_000);
        assert!(c1k.llc_mpkl < c.llc_mpkl + 50.0);
    }
}
