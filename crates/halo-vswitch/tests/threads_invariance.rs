//! Threads-invariance of the epoch-parallel runners: `threads = 1` and
//! `threads = N` must produce byte-identical reports, per-core packet
//! counts, and master stats — the whole point of the deterministic
//! epoch/barrier scheme. The quick checks here always run; the full
//! backend × stream matrix runs under the `slow-tests` feature (the
//! deep CI job).

use halo_datapath::{TableBackend, TrafficEvent};
use halo_mem::{MachineConfig, MemorySystem};
use halo_nf::{StreamConfig, StreamingTrafficGen};
use halo_vswitch::{LookupBackend, MultiCoreConfig, MultiCoreDatapath};

/// Every stats counter, sorted by name — a deterministic fingerprint of
/// the master system's observable counter state.
fn stats_fingerprint(sys: &MemorySystem) -> String {
    let mut rows: Vec<(String, u64)> = sys
        .stats()
        .counters()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    rows.sort();
    format!("{rows:?}")
}

fn datapath(table_backend: TableBackend, cores: usize) -> (MemorySystem, MultiCoreDatapath) {
    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut cfg = MultiCoreConfig::new(cores, 5, 2_000, LookupBackend::Software, 42);
    cfg.table_backend = table_backend;
    let dp = MultiCoreDatapath::with_config(&mut sys, cfg);
    (sys, dp)
}

/// Runs the RSS/churn workload and returns every observable output as
/// one comparable string.
fn scaling_outcome(table_backend: TableBackend, threads: usize, churn: u64) -> String {
    let (mut sys, mut dp) = datapath(table_backend, 4);
    let r = dp.run_parallel(&mut sys, 600, churn, threads);
    format!(
        "{r:?} | {:?} | {}",
        dp.per_core_packets(),
        stats_fingerprint(&sys)
    )
}

/// Runs a streaming workload and returns every observable output as
/// one comparable string.
fn stream_outcome(table_backend: TableBackend, threads: usize, cfg: StreamConfig) -> String {
    let (mut sys, mut dp) = datapath(table_backend, 4);
    let mut traffic = StreamingTrafficGen::new(cfg, 7);
    let events: Vec<TrafficEvent> = (0..800).map(|_| traffic.next_event()).collect();
    let r = dp.run_stream_parallel(&mut sys, events, threads);
    format!(
        "{r:?} | {:?} | {}",
        dp.per_core_packets(),
        stats_fingerprint(&sys)
    )
}

#[test]
fn scaling_run_is_threads_invariant() {
    let one = scaling_outcome(TableBackend::Cuckoo, 1, 50);
    for threads in [2, 4] {
        assert_eq!(
            one,
            scaling_outcome(TableBackend::Cuckoo, threads, 50),
            "threads=1 vs threads={threads} diverged"
        );
    }
}

#[test]
fn churn_stream_is_threads_invariant() {
    let one = stream_outcome(TableBackend::Cuckoo, 1, StreamConfig::churn(2_000));
    let four = stream_outcome(TableBackend::Cuckoo, 4, StreamConfig::churn(2_000));
    assert_eq!(one, four);
}

#[test]
fn flood_stream_is_threads_invariant() {
    let one = stream_outcome(TableBackend::Cuckoo, 1, StreamConfig::ddos_flood(2_000));
    let four = stream_outcome(TableBackend::Cuckoo, 4, StreamConfig::ddos_flood(2_000));
    assert_eq!(one, four);
}

/// At every window barrier the master system must satisfy all of
/// halo-check's memory-system invariants (placement, inclusion,
/// directory, single-owner, lock hygiene) — the merged state is a real
/// coherent state, not just a matching byte pattern.
#[test]
fn barriers_leave_master_state_audit_clean() {
    use halo_sim::Cycle;
    let (mut sys, mut dp) = datapath(TableBackend::Cuckoo, 4);
    let mut barriers = 0u64;
    let mut hook = |s: &MemorySystem| {
        let violations = halo_check::audit_system(s, Cycle(0));
        assert!(
            violations.is_empty(),
            "barrier audit failed: {violations:?}"
        );
        barriers += 1;
    };
    dp.run_parallel_with(&mut sys, 600, 50, 4, &mut hook);
    assert!(barriers >= 12, "expected a barrier per churn window");
}

/// The full differential matrix: every exact-match backend, both churn
/// and flood streams plus the RSS/churn workload, threads 1 vs 2 vs 4.
#[cfg(feature = "slow-tests")]
#[test]
fn all_backends_and_streams_are_threads_invariant() {
    for backend in TableBackend::all() {
        let base = scaling_outcome(backend, 1, 25);
        for threads in [2, 4] {
            assert_eq!(
                base,
                scaling_outcome(backend, threads, 25),
                "{} scaling run diverged at threads={threads}",
                backend.name()
            );
        }
        for (label, cfg) in [
            ("churn", StreamConfig::churn(2_000)),
            ("flood", StreamConfig::ddos_flood(2_000)),
        ] {
            let one = stream_outcome(backend, 1, cfg);
            for threads in [2, 4] {
                assert_eq!(
                    one,
                    stream_outcome(backend, threads, cfg),
                    "{} {label} stream diverged at threads={threads}",
                    backend.name()
                );
            }
        }
    }
}
