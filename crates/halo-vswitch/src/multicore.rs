//! A multi-core datapath: several polling threads share one MegaFlow
//! tuple space (the §3.4 setting — shared tables, core-to-core
//! coherence traffic, software locking) while keeping per-core EMCs,
//! exactly like OVS-DPDK PMD threads.
//!
//! Each PMD thread is one [`DatapathCore`] — the same EMC → MegaFlow →
//! backend-dispatch stage the single-core switch runs — so the two
//! datapaths cannot drift apart behaviorally. Per-core EMC probes
//! always run in software (they are tiny and private); only the shared
//! MegaFlow search is offloaded to HALO.
//!
//! Used by the scalability experiment: aggregate classification
//! throughput as the datapath grows from 1 to 16 cores, software vs
//! HALO lookups, with optional rule churn from a revalidator thread.

use halo_accel::HaloEngine;
use halo_classify::{distinct_masks, Emc, PacketHeader, SearchMode, WildcardMask};
use halo_datapath::{
    DatapathCore, LookupExecutor, NbRegion, TableBackend, TrafficEvent, WildcardBackend,
    WildcardMatcher, WildcardTable,
};
use halo_mem::{CoreId, EpochCore, MemorySystem, WindowOutcome, CACHE_LINE};
use halo_sim::{Cycle, SplitMix64};
use halo_tables::{hash_key, SEED_PRIMARY};

use crate::pipeline::LookupBackend;

/// Configuration of a multi-core datapath.
#[derive(Debug, Clone)]
pub struct MultiCoreConfig {
    /// PMD (poll-mode-driver) threads.
    pub cores: usize,
    /// Shared MegaFlow tuples.
    pub tuples: usize,
    /// Flow rules spread across the tuples.
    pub flows: usize,
    /// Backend for the shared MegaFlow search (per-core EMC probes
    /// always run in software).
    pub backend: LookupBackend,
    /// Exact-match implementation backing every MegaFlow tuple
    /// (baseline cuckoo by default, preserving historical figures).
    pub table_backend: TableBackend,
    /// Wildcard-table implementation of the shared MegaFlow layer
    /// (tuple space search by default, preserving historical figures).
    pub wildcard_backend: WildcardBackend,
    /// Seed of the packet-arrival stream.
    pub seed: u64,
    /// Promote MegaFlow hits into the per-core EMC (OVS behaviour;
    /// on by default, matching the single-core switch).
    pub emc_promotion: bool,
}

impl MultiCoreConfig {
    /// The standard configuration used by [`MultiCoreDatapath::new`].
    #[must_use]
    pub fn new(
        cores: usize,
        tuples: usize,
        flows: usize,
        backend: LookupBackend,
        seed: u64,
    ) -> Self {
        MultiCoreConfig {
            cores,
            tuples,
            flows,
            backend,
            table_backend: TableBackend::Cuckoo,
            wildcard_backend: WildcardBackend::default(),
            seed,
            emc_promotion: true,
        }
    }
}

/// One PMD thread's private state: its datapath core plus bookkeeping.
#[derive(Debug)]
struct PmdThread {
    dp: DatapathCore,
    clock: Cycle,
    packets: u64,
}

/// A multi-core OVS-DPDK-style datapath over a shared MegaFlow layer.
///
/// # Examples
///
/// ```
/// use halo_mem::{MachineConfig, MemorySystem};
/// use halo_vswitch::{LookupBackend, MultiCoreDatapath};
///
/// let mut sys = MemorySystem::new(MachineConfig::default());
/// let mut dp = MultiCoreDatapath::new(&mut sys, 4, 5, 2_000, LookupBackend::Software, 7);
/// let report = dp.run(&mut sys, None, 400, 0);
/// assert_eq!(report.packets, 400);
/// assert!(report.throughput_per_kcy > 0.0);
/// ```
#[derive(Debug)]
pub struct MultiCoreDatapath {
    pmds: Vec<PmdThread>,
    megaflow: WildcardMatcher,
    /// MegaFlow mask list; rules placed by `flow % masks.len()`.
    masks: Vec<WildcardMask>,
    flows: u64,
    rng: SplitMix64,
}

/// Aggregate result of a streaming (event-driven) multi-core run.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamReport {
    /// Datapath threads used.
    pub cores: usize,
    /// Packets classified.
    pub packets: u64,
    /// Packets no layer matched (flood flows, rejected installs).
    pub misses: u64,
    /// Rules installed by flow arrivals.
    pub arrivals: u64,
    /// Rules torn down by flow expiries.
    pub expiries: u64,
    /// Arrival installs the tuple's table refused (capacity pressure
    /// under displacement storms — counted, not fatal, like OVS
    /// upcall drops).
    pub rejected_installs: u64,
    /// Wall-clock cycles (max over core clocks).
    pub cycles: u64,
    /// Aggregate packets per kilocycle.
    pub throughput_per_kcy: f64,
    /// Remote-dirty cache-line transfers observed (coherence traffic).
    pub dirty_transfers: u64,
}

/// Aggregate result of a multi-core run.
#[derive(Debug, Clone, Copy)]
pub struct ScalingReport {
    /// Datapath threads used.
    pub cores: usize,
    /// Packets classified in total.
    pub packets: u64,
    /// Wall-clock cycles (max over core clocks).
    pub cycles: u64,
    /// Aggregate packets per kilocycle.
    pub throughput_per_kcy: f64,
    /// Remote-dirty cache-line transfers observed (coherence traffic).
    pub dirty_transfers: u64,
}

// The scaling sweep runs whole `MultiCoreDatapath` experiments on
// worker threads, so the datapath (and the report it produces) must be
// `Send`. All state is owned values — `Vec`s, `SplitMix64`, the tuple
// space over plain simulated memory — with no interior mutability or
// shared handles; this assertion keeps it that way.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<MultiCoreDatapath>();
    assert_send::<ScalingReport>();
    assert_send::<StreamReport>();
    // The parallel epoch runner additionally shares the datapath's
    // tuple space immutably across worker threads and moves per-core
    // window jobs onto them, so the datapath must also be `Sync` and
    // the jobs `Send`.
    assert_sync::<MultiCoreDatapath>();
    assert_sync::<ScalingReport>();
    assert_sync::<StreamReport>();
    assert_send::<WindowJob<'static>>();
};

/// Packets per epoch window when nothing else bounds one sooner (a
/// churn point or a control-plane event). Any fixed value yields the
/// same observable results at every thread count; this one bounds the
/// per-window event-log memory while keeping barrier overhead small.
const WINDOW_PKTS: usize = 1024;

/// One core's work for one epoch window: its memory-system shard, its
/// PMD state, and the flows RSS assigned to it this window.
struct WindowJob<'a> {
    shard: EpochCore<'a>,
    pmd: &'a mut PmdThread,
    flows: Vec<u64>,
}

/// Runs one core's window to completion: every packet classified
/// against the core's private shard, clock and counters advancing
/// locally. Pure in the shared state — identical inputs give identical
/// outcomes no matter which OS thread evaluates it. Returns the
/// outcome to merge plus how many packets matched.
fn exec_window(job: WindowJob<'_>, megaflow: &WildcardMatcher) -> (WindowOutcome, u64) {
    let WindowJob {
        mut shard,
        pmd,
        flows,
    } = job;
    let mut matched = 0u64;
    for &flow in &flows {
        let key = PacketHeader::synthetic(flow).miniflow();
        pmd.packets += 1;
        let out = pmd
            .dp
            .classify_epoch(&mut shard, megaflow, &key, None, pmd.clock);
        pmd.clock = out.done;
        if out.action.is_some() {
            matched += 1;
        }
    }
    (shard.finish(), matched)
}

impl MultiCoreDatapath {
    /// Builds a datapath with `cores` PMD threads over `tuples` shared
    /// MegaFlow tuples holding `flows` rules.
    ///
    /// # Panics
    ///
    /// Panics if `cores` exceeds the machine's core count.
    pub fn new(
        sys: &mut MemorySystem,
        cores: usize,
        tuples: usize,
        flows: usize,
        backend: LookupBackend,
        seed: u64,
    ) -> Self {
        Self::with_config(
            sys,
            MultiCoreConfig::new(cores, tuples, flows, backend, seed),
        )
    }

    /// Builds a datapath from a full [`MultiCoreConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores` exceeds the machine's core count.
    pub fn with_config(sys: &mut MemorySystem, cfg: MultiCoreConfig) -> Self {
        let MultiCoreConfig {
            cores,
            tuples,
            flows,
            backend,
            table_backend,
            wildcard_backend,
            seed,
            emc_promotion,
        } = cfg;
        assert!(cores <= sys.config().cores, "not enough cores");
        // Same per-tuple sizing `TupleSpace::new` uses for the cuckoo
        // baseline, applied to whichever backend the config selects.
        let entries_per_tuple = flows / tuples + 512;
        let masks = distinct_masks(tuples);
        let mut megaflow = wildcard_backend.build(
            sys.data_mut(),
            table_backend,
            &masks,
            entries_per_tuple,
            SearchMode::FirstMatch,
        );
        for f in 0..flows as u64 {
            let key = PacketHeader::synthetic(f).miniflow();
            megaflow
                .insert_masked(
                    sys.data_mut(),
                    &masks[(f % tuples as u64) as usize],
                    &key,
                    0,
                    f,
                )
                .expect("tuple sized for its share");
        }
        for a in megaflow.memory_lines() {
            sys.warm_llc(a);
        }
        let parts: Vec<(LookupExecutor, Emc)> = (0..cores)
            .map(|c| {
                let core = CoreId(c);
                let exec = LookupExecutor::new(sys, core, backend);
                exec.warm_scratch(sys);
                let emc = Emc::new(sys.data_mut(), 1024);
                (exec, emc)
            })
            .collect();
        // One NB destination block, carved into per-core regions each
        // sized for the full probe-slot count, so concurrent lookups
        // never alias — neither across cores nor across a core's own
        // probes.
        let lines_per_core = NbRegion::lines_for(megaflow.probes().max(tuples));
        let nb_base = sys
            .data_mut()
            .alloc_lines(lines_per_core * CACHE_LINE * cores as u64);
        let slots_per_core = (lines_per_core as usize) * NbRegion::SLOTS_PER_LINE;
        let pmds = parts
            .into_iter()
            .enumerate()
            .map(|(p, (exec, emc))| {
                let nb = NbRegion::from_raw(
                    nb_base + p as u64 * lines_per_core * CACHE_LINE,
                    slots_per_core,
                );
                PmdThread {
                    dp: DatapathCore::new(
                        exec.with_nb_region(nb),
                        Some(emc),
                        LookupBackend::Software,
                        emc_promotion,
                    ),
                    clock: Cycle::ZERO,
                    packets: 0,
                }
            })
            .collect();
        MultiCoreDatapath {
            pmds,
            megaflow,
            masks,
            flows: flows as u64,
            rng: SplitMix64::new(seed),
        }
    }

    /// Number of PMD threads.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.pmds.len()
    }

    /// Classifies one packet on PMD `p` starting at its local clock.
    /// Returns whether any layer matched.
    fn classify_one(
        &mut self,
        sys: &mut MemorySystem,
        engine: Option<&mut HaloEngine>,
        p: usize,
        flow: u64,
    ) -> bool {
        let key = PacketHeader::synthetic(flow).miniflow();
        let pmd = &mut self.pmds[p];
        pmd.packets += 1;
        let out = pmd
            .dp
            .classify(sys, engine, &self.megaflow, &key, None, pmd.clock);
        pmd.clock = out.done;
        out.action.is_some()
    }

    /// Runs `packets` packets spread across the PMDs by flow hash (RSS),
    /// with a revalidator relocating a rule every `churn_every` packets
    /// (0 disables churn). Returns the aggregate report.
    pub fn run(
        &mut self,
        sys: &mut MemorySystem,
        mut engine: Option<&mut HaloEngine>,
        packets: u64,
        churn_every: u64,
    ) -> ScalingReport {
        let dirty_before = sys.stats().counter("llc.dirty_snoop");
        for i in 0..packets {
            let flow = self.rng.below(self.flows);
            // RSS: flow hash picks the PMD, so one flow stays on one core.
            let p = (hash_key(&PacketHeader::synthetic(flow).miniflow(), SEED_PRIMARY)
                % self.pmds.len() as u64) as usize;
            if churn_every > 0 && i % churn_every == 0 {
                // The revalidator (a writer on another core) updates the
                // shared tables: timed stores to every tuple's version
                // line invalidate the readers' copies — the core-to-core
                // coherence cost of §3.4.
                let wcore = CoreId(sys.config().cores - 1);
                for ti in 0..self.megaflow.probes() {
                    if let Some(va) = self.megaflow.probe_version_addr(ti) {
                        let at = self.pmds[p].clock;
                        sys.access(wcore, va, halo_mem::AccessKind::Store, at);
                    }
                }
            }
            self.classify_one(sys, engine.as_deref_mut(), p, flow);
        }
        let cycles = self
            .pmds
            .iter()
            .map(|p| p.clock.0)
            .max()
            .unwrap_or(0)
            .max(1);
        ScalingReport {
            cores: self.pmds.len(),
            packets,
            cycles,
            throughput_per_kcy: 1000.0 * packets as f64 / cycles as f64,
            dirty_transfers: sys.stats().counter("llc.dirty_snoop") - dirty_before,
        }
    }

    /// Which mask a flow's rule is installed under (the same
    /// `flow % tuples` placement
    /// [`with_config`](MultiCoreDatapath::with_config) used for the
    /// initial rule set).
    fn tuple_of(&self, flow: u64) -> usize {
        (flow % self.masks.len() as u64) as usize
    }

    /// A timed revalidator store to the version line of the probe slot
    /// serving tuple `ti` — the core-to-core coherence cost every table
    /// write carries in §3.4.
    fn revalidate(&mut self, sys: &mut MemorySystem, ti: usize, at: Cycle) {
        let wcore = CoreId(sys.config().cores - 1);
        let slot = ti % self.megaflow.probes().max(1);
        if let Some(va) = self.megaflow.probe_version_addr(slot) {
            sys.access(wcore, va, halo_mem::AccessKind::Store, at);
        }
    }

    /// Runs a streaming workload: packets are classified exactly as in
    /// [`run`](MultiCoreDatapath::run) (RSS by flow hash), while
    /// arrival/expiry events drive the control plane — rule inserts and
    /// removes on the shared MegaFlow tables (cuckoo displacement,
    /// Cuckoo++ filter reversal, EMOMA re-homing under churn), per-core
    /// EMC invalidation on expiry, and revalidator version-line stores
    /// for the coherence traffic every table write implies.
    ///
    /// Events come from any iterator — typically a
    /// `StreamingTrafficGen` from `halo-nf` mapped through
    /// `next_event` — so the datapath stays decoupled from the
    /// generator. Cost per event is O(1) in the live-flow count.
    pub fn run_stream(
        &mut self,
        sys: &mut MemorySystem,
        mut engine: Option<&mut HaloEngine>,
        events: impl IntoIterator<Item = TrafficEvent>,
    ) -> StreamReport {
        let dirty_before = sys.stats().counter("llc.dirty_snoop");
        let mut r = StreamReport {
            cores: self.pmds.len(),
            ..StreamReport::default()
        };
        for ev in events {
            match ev {
                TrafficEvent::Packet(flow) => {
                    let p = (hash_key(&PacketHeader::synthetic(flow).miniflow(), SEED_PRIMARY)
                        % self.pmds.len() as u64) as usize;
                    let hit = self.classify_one(sys, engine.as_deref_mut(), p, flow);
                    r.packets += 1;
                    if !hit {
                        r.misses += 1;
                    }
                }
                TrafficEvent::Arrival(flow) => {
                    let key = PacketHeader::synthetic(flow).miniflow();
                    let ti = self.tuple_of(flow);
                    let at = self.front(); // control plane acts "now"
                    if self
                        .megaflow
                        .insert_masked(sys.data_mut(), &self.masks[ti], &key, 0, flow)
                        .is_err()
                    {
                        r.rejected_installs += 1;
                    }
                    self.revalidate(sys, ti, at);
                    r.arrivals += 1;
                }
                TrafficEvent::Expiry(flow) => {
                    let key = PacketHeader::synthetic(flow).miniflow();
                    let ti = self.tuple_of(flow);
                    let at = self.front();
                    self.megaflow
                        .remove_masked(sys.data_mut(), &self.masks[ti], &key);
                    // A torn-down rule's cached exact match must die with
                    // it on every core, or stale actions keep matching.
                    for pmd in &mut self.pmds {
                        pmd.dp.invalidate(sys.data_mut(), &key);
                    }
                    self.revalidate(sys, ti, at);
                    r.expiries += 1;
                }
            }
        }
        r.cycles = self
            .pmds
            .iter()
            .map(|p| p.clock.0)
            .max()
            .unwrap_or(0)
            .max(1);
        r.throughput_per_kcy = 1000.0 * r.packets as f64 / r.cycles as f64;
        r.dirty_transfers = sys.stats().counter("llc.dirty_snoop") - dirty_before;
        r
    }

    /// The most advanced PMD clock (the streaming control plane's "now").
    fn front(&self) -> Cycle {
        Cycle(self.pmds.iter().map(|p| p.clock.0).max().unwrap_or(0))
    }

    /// Per-PMD packet counts (for load-balance checks).
    #[must_use]
    pub fn per_core_packets(&self) -> Vec<u64> {
        self.pmds.iter().map(|p| p.packets).collect()
    }

    /// Preconditions of the epoch-parallel runners. HALO engines and
    /// span tracing both mutate state shared across cores mid-window,
    /// so parallel execution is software-only and untraced; callers
    /// needing either stay on the classic [`run`](Self::run) /
    /// [`run_stream`](Self::run_stream) paths.
    fn assert_epoch_capable(&self, sys: &MemorySystem) {
        assert!(
            !sys.trace_enabled(),
            "epoch-parallel runs cannot record spans; disable tracing"
        );
        for pmd in &self.pmds {
            assert_eq!(
                pmd.dp.exec().backend(),
                LookupBackend::Software,
                "epoch-parallel execution is software-only"
            );
        }
    }

    /// Executes one epoch window: splits the memory system into
    /// per-core shards, runs every PMD's packet share (on `threads` OS
    /// threads when more than one), and merges the outcomes back in
    /// fixed core order. Returns how many packets matched.
    ///
    /// Worker assignment is pure scheduling: each job reads only the
    /// frozen master snapshot and its own private state, and the merge
    /// is single-threaded in ascending core order, so the post-merge
    /// state is byte-identical at every `threads` value.
    fn run_window(
        pmds: &mut [PmdThread],
        megaflow: &WildcardMatcher,
        sys: &mut MemorySystem,
        batch: &[(u64, usize)],
        threads: usize,
    ) -> u64 {
        let cores = pmds.len();
        let mut per_core: Vec<Vec<u64>> = vec![Vec::new(); cores];
        for &(flow, p) in batch {
            per_core[p].push(flow);
        }
        let shards = sys.epoch_split(cores);
        let mut jobs: Vec<WindowJob> = shards
            .into_iter()
            .zip(pmds.iter_mut())
            .zip(per_core)
            .map(|((shard, pmd), flows)| WindowJob { shard, pmd, flows })
            .collect();
        let mut outcomes = Vec::with_capacity(cores);
        let mut matched = 0u64;
        if threads <= 1 {
            for job in jobs {
                let (o, m) = exec_window(job, megaflow);
                outcomes.push(o);
                matched += m;
            }
        } else {
            let per = jobs.len().div_ceil(threads);
            std::thread::scope(|s| {
                let mut handles = Vec::new();
                while !jobs.is_empty() {
                    let take = per.min(jobs.len());
                    let bucket: Vec<WindowJob> = jobs.drain(..take).collect();
                    handles.push(s.spawn(move || {
                        bucket
                            .into_iter()
                            .map(|j| exec_window(j, megaflow))
                            .collect::<Vec<_>>()
                    }));
                }
                for h in handles {
                    for (o, m) in h.join().expect("window worker panicked") {
                        outcomes.push(o);
                        matched += m;
                    }
                }
            });
        }
        sys.epoch_merge(outcomes);
        matched
    }

    /// [`run`](Self::run)'s workload under the epoch-parallel executor:
    /// the same RSS packet schedule and revalidator churn, with packets
    /// executed in bounded windows on `threads` OS threads. Windows
    /// break exactly at churn points, so every revalidator store is
    /// applied between windows against the merged master state.
    ///
    /// The result is byte-identical for every `threads` value
    /// (`threads = 1` runs the same windows inline); it is its own
    /// deterministic interleaving, not required to match the classic
    /// per-packet interleaving of [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if a HALO backend is configured or tracing is enabled —
    /// see [`run`](Self::run) for those.
    pub fn run_parallel(
        &mut self,
        sys: &mut MemorySystem,
        packets: u64,
        churn_every: u64,
        threads: usize,
    ) -> ScalingReport {
        self.run_parallel_with(sys, packets, churn_every, threads, &mut |_| {})
    }

    /// [`run_parallel`](Self::run_parallel) with a barrier hook: after
    /// every window merge the hook observes the master system in a
    /// fully consistent state (no window in flight), where invariant
    /// auditors can run.
    pub fn run_parallel_with(
        &mut self,
        sys: &mut MemorySystem,
        packets: u64,
        churn_every: u64,
        threads: usize,
        barrier_hook: &mut dyn FnMut(&MemorySystem),
    ) -> ScalingReport {
        self.assert_epoch_capable(sys);
        let dirty_before = sys.stats().counter("llc.dirty_snoop");
        // The same RSS draws as `run`, precomputed so that window
        // partitioning cannot perturb the flow sequence (and the RNG
        // ends in the same state).
        let schedule: Vec<(u64, usize)> = (0..packets)
            .map(|_| {
                let flow = self.rng.below(self.flows);
                let p = (hash_key(&PacketHeader::synthetic(flow).miniflow(), SEED_PRIMARY)
                    % self.pmds.len() as u64) as usize;
                (flow, p)
            })
            .collect();
        let mut i = 0usize;
        while i < schedule.len() {
            if churn_every > 0 && (i as u64).is_multiple_of(churn_every) {
                // The same revalidator stores `run` issues before
                // packet i, at the merged clock of packet i's PMD.
                let p = schedule[i].1;
                let wcore = CoreId(sys.config().cores - 1);
                for ti in 0..self.megaflow.probes() {
                    if let Some(va) = self.megaflow.probe_version_addr(ti) {
                        let at = self.pmds[p].clock;
                        sys.access(wcore, va, halo_mem::AccessKind::Store, at);
                    }
                }
            }
            let mut end = (i + WINDOW_PKTS).min(schedule.len());
            if let Some(chunk) = (i as u64).checked_div(churn_every) {
                let next_churn = (chunk + 1) * churn_every;
                end = end.min(next_churn as usize);
            }
            Self::run_window(
                &mut self.pmds,
                &self.megaflow,
                sys,
                &schedule[i..end],
                threads,
            );
            barrier_hook(sys);
            i = end;
        }
        let cycles = self
            .pmds
            .iter()
            .map(|p| p.clock.0)
            .max()
            .unwrap_or(0)
            .max(1);
        ScalingReport {
            cores: self.pmds.len(),
            packets,
            cycles,
            throughput_per_kcy: 1000.0 * packets as f64 / cycles as f64,
            dirty_transfers: sys.stats().counter("llc.dirty_snoop") - dirty_before,
        }
    }

    /// Flushes the pending packet window of a streaming parallel run.
    fn flush_stream_window(
        &mut self,
        sys: &mut MemorySystem,
        batch: &mut Vec<(u64, usize)>,
        threads: usize,
        r: &mut StreamReport,
        barrier_hook: &mut dyn FnMut(&MemorySystem),
    ) {
        if batch.is_empty() {
            return;
        }
        let matched = Self::run_window(&mut self.pmds, &self.megaflow, sys, batch, threads);
        barrier_hook(sys);
        r.packets += batch.len() as u64;
        r.misses += batch.len() as u64 - matched;
        batch.clear();
    }

    /// [`run_stream`](Self::run_stream)'s workload under the
    /// epoch-parallel executor: maximal runs of packet events execute
    /// as bounded windows on `threads` OS threads; every control-plane
    /// event (arrival, expiry) is applied between windows against the
    /// merged master state, exactly as the classic path applies it.
    /// Byte-identical for every `threads` value.
    ///
    /// # Panics
    ///
    /// Panics if a HALO backend is configured or tracing is enabled.
    pub fn run_stream_parallel(
        &mut self,
        sys: &mut MemorySystem,
        events: impl IntoIterator<Item = TrafficEvent>,
        threads: usize,
    ) -> StreamReport {
        self.run_stream_parallel_with(sys, events, threads, &mut |_| {})
    }

    /// [`run_stream_parallel`](Self::run_stream_parallel) with a
    /// barrier hook, called after every window merge on the consistent
    /// master state.
    pub fn run_stream_parallel_with(
        &mut self,
        sys: &mut MemorySystem,
        events: impl IntoIterator<Item = TrafficEvent>,
        threads: usize,
        barrier_hook: &mut dyn FnMut(&MemorySystem),
    ) -> StreamReport {
        self.assert_epoch_capable(sys);
        let dirty_before = sys.stats().counter("llc.dirty_snoop");
        let mut r = StreamReport {
            cores: self.pmds.len(),
            ..StreamReport::default()
        };
        let mut batch: Vec<(u64, usize)> = Vec::with_capacity(WINDOW_PKTS);
        for ev in events {
            match ev {
                TrafficEvent::Packet(flow) => {
                    let p = (hash_key(&PacketHeader::synthetic(flow).miniflow(), SEED_PRIMARY)
                        % self.pmds.len() as u64) as usize;
                    batch.push((flow, p));
                    if batch.len() >= WINDOW_PKTS {
                        self.flush_stream_window(sys, &mut batch, threads, &mut r, barrier_hook);
                    }
                }
                TrafficEvent::Arrival(flow) => {
                    self.flush_stream_window(sys, &mut batch, threads, &mut r, barrier_hook);
                    let key = PacketHeader::synthetic(flow).miniflow();
                    let ti = self.tuple_of(flow);
                    let at = self.front();
                    if self
                        .megaflow
                        .insert_masked(sys.data_mut(), &self.masks[ti], &key, 0, flow)
                        .is_err()
                    {
                        r.rejected_installs += 1;
                    }
                    self.revalidate(sys, ti, at);
                    r.arrivals += 1;
                }
                TrafficEvent::Expiry(flow) => {
                    self.flush_stream_window(sys, &mut batch, threads, &mut r, barrier_hook);
                    let key = PacketHeader::synthetic(flow).miniflow();
                    let ti = self.tuple_of(flow);
                    let at = self.front();
                    self.megaflow
                        .remove_masked(sys.data_mut(), &self.masks[ti], &key);
                    for pmd in &mut self.pmds {
                        pmd.dp.invalidate(sys.data_mut(), &key);
                    }
                    self.revalidate(sys, ti, at);
                    r.expiries += 1;
                }
            }
        }
        self.flush_stream_window(sys, &mut batch, threads, &mut r, barrier_hook);
        r.cycles = self
            .pmds
            .iter()
            .map(|p| p.clock.0)
            .max()
            .unwrap_or(0)
            .max(1);
        r.throughput_per_kcy = 1000.0 * r.packets as f64 / r.cycles as f64;
        r.dirty_transfers = sys.stats().counter("llc.dirty_snoop") - dirty_before;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_accel::AcceleratorConfig;
    use halo_mem::MachineConfig;

    fn throughput(cores: usize, backend: LookupBackend, churn: u64) -> ScalingReport {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
        let mut dp = MultiCoreDatapath::new(&mut sys, cores, 5, 2_000, backend, 42);
        let e = match backend {
            LookupBackend::Software => None,
            _ => Some(&mut engine),
        };
        dp.run(&mut sys, e, 600, churn)
    }

    #[test]
    fn more_cores_more_throughput() {
        let one = throughput(1, LookupBackend::Software, 0);
        let four = throughput(4, LookupBackend::Software, 0);
        assert!(
            four.throughput_per_kcy > 2.0 * one.throughput_per_kcy,
            "4 cores ({}) should roughly quadruple 1 core ({})",
            four.throughput_per_kcy,
            one.throughput_per_kcy
        );
    }

    #[test]
    fn halo_nb_scales_better_than_software() {
        let sw = throughput(8, LookupBackend::Software, 0);
        let nb = throughput(8, LookupBackend::HaloNonBlocking, 0);
        assert!(
            nb.throughput_per_kcy > sw.throughput_per_kcy,
            "HALO-NB {} must beat software {} at 8 cores",
            nb.throughput_per_kcy,
            sw.throughput_per_kcy
        );
    }

    #[test]
    fn rss_spreads_flows_across_cores() {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut dp = MultiCoreDatapath::new(&mut sys, 8, 5, 2_000, LookupBackend::Software, 42);
        dp.run(&mut sys, None, 800, 0);
        let counts = dp.per_core_packets();
        assert_eq!(counts.iter().sum::<u64>(), 800);
        for &c in &counts {
            assert!(c > 30, "imbalanced RSS: {counts:?}");
        }
    }

    #[test]
    fn churn_generates_coherence_traffic() {
        let calm = throughput(4, LookupBackend::Software, 0);
        let churny = throughput(4, LookupBackend::Software, 10);
        assert!(
            churny.dirty_transfers + 20 > calm.dirty_transfers,
            "churn should raise dirty transfers: {} vs {}",
            churny.dirty_transfers,
            calm.dirty_transfers
        );
        // Writers slow the datapath down (coherence + lock retries).
        assert!(churny.throughput_per_kcy <= calm.throughput_per_kcy * 1.05);
    }

    /// The multi-core datapath honors the EMC promotion policy — it
    /// used to promote unconditionally, silently diverging from the
    /// single-core switch whenever promotion was disabled.
    #[test]
    fn emc_promotion_flag_gates_the_multicore_path() {
        let run = |promote: bool| {
            let mut sys = MemorySystem::new(MachineConfig::default());
            let mut cfg = MultiCoreConfig::new(4, 5, 2_000, LookupBackend::Software, 42);
            cfg.emc_promotion = promote;
            let mut dp = MultiCoreDatapath::with_config(&mut sys, cfg);
            dp.run(&mut sys, None, 600, 0)
        };
        let promoted = run(true);
        let unpromoted = run(false);
        // Without promotion every repeat packet walks MegaFlow again,
        // so the run must take strictly longer.
        assert!(
            unpromoted.cycles > promoted.cycles,
            "promotion off ({}) must cost more cycles than on ({})",
            unpromoted.cycles,
            promoted.cycles
        );
        // The default config keeps the historical always-promote shape.
        assert!(MultiCoreConfig::new(1, 1, 1, LookupBackend::Software, 0).emc_promotion);
    }

    /// Every exact-match backend drives the multicore datapath to
    /// completion, with churn exercising the shared version lines.
    #[test]
    fn every_table_backend_classifies() {
        for table_backend in TableBackend::all() {
            let mut sys = MemorySystem::new(MachineConfig::default());
            let mut cfg = MultiCoreConfig::new(4, 5, 2_000, LookupBackend::Software, 42);
            cfg.table_backend = table_backend;
            let mut dp = MultiCoreDatapath::with_config(&mut sys, cfg);
            let report = dp.run(&mut sys, None, 400, 50);
            assert_eq!(report.packets, 400, "{}", table_backend.name());
            assert!(
                report.throughput_per_kcy > 0.0,
                "{} made no progress",
                table_backend.name()
            );
        }
    }

    /// The wildcard backend is a runtime config choice for the shared
    /// MegaFlow layer too: RVH classifies the same flows and survives
    /// streaming churn.
    #[test]
    fn rvh_wildcard_backend_runs_multicore() {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut cfg = MultiCoreConfig::new(4, 5, 2_000, LookupBackend::Software, 42);
        cfg.wildcard_backend = WildcardBackend::Rvh;
        let mut dp = MultiCoreDatapath::with_config(&mut sys, cfg);
        let report = dp.run(&mut sys, None, 400, 50);
        assert_eq!(report.packets, 400);
        assert!(report.throughput_per_kcy > 0.0);
        let churn = vec![
            TrafficEvent::Expiry(3),
            TrafficEvent::Packet(3),
            TrafficEvent::Arrival(5_000),
            TrafficEvent::Packet(5_000),
        ];
        let r = dp.run_stream(&mut sys, None, churn);
        assert_eq!(r.misses, 1, "expired flow misses; the newborn hits");
    }

    /// The streaming entry point applies arrivals/expiries to the
    /// shared tables: an expired flow stops matching (no stale EMC
    /// entry either), an arrived flow starts matching.
    #[test]
    fn stream_events_churn_the_rule_set() {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut dp = MultiCoreDatapath::new(&mut sys, 2, 5, 1_000, LookupBackend::Software, 7);
        // Warm flow 3 into an EMC, expire it, then look it up again.
        let warm = vec![TrafficEvent::Packet(3), TrafficEvent::Packet(3)];
        let r = dp.run_stream(&mut sys, None, warm);
        assert_eq!(r.packets, 2);
        assert_eq!(r.misses, 0, "installed flow must match");
        let churn = vec![
            TrafficEvent::Expiry(3),
            TrafficEvent::Packet(3),
            TrafficEvent::Arrival(5_000),
            TrafficEvent::Packet(5_000),
        ];
        let r = dp.run_stream(&mut sys, None, churn);
        assert_eq!(r.arrivals, 1);
        assert_eq!(r.expiries, 1);
        assert_eq!(
            r.misses, 1,
            "exactly the expired flow misses; the newborn hits"
        );
        assert!(r.dirty_transfers > 0, "table writes imply coherence");
    }

    /// Streaming works over every exact-match backend, including the
    /// remove-heavy paths (Cuckoo++ filter reversal, EMOMA re-homing).
    #[test]
    fn stream_churns_every_backend() {
        for table_backend in TableBackend::all() {
            let mut sys = MemorySystem::new(MachineConfig::default());
            let mut cfg = MultiCoreConfig::new(4, 5, 1_000, LookupBackend::Software, 42);
            cfg.table_backend = table_backend;
            let mut dp = MultiCoreDatapath::with_config(&mut sys, cfg);
            let mut rng = SplitMix64::new(9);
            let mut next_id = 1_000u64;
            let mut events = Vec::new();
            for _ in 0..200 {
                events.push(TrafficEvent::Packet(rng.below(1_000)));
                if rng.chance(0.2) {
                    events.push(TrafficEvent::Arrival(next_id));
                    events.push(TrafficEvent::Expiry(rng.below(1_000)));
                    next_id += 1;
                }
            }
            let r = dp.run_stream(&mut sys, None, events);
            assert_eq!(r.packets, 200, "{}", table_backend.name());
            assert_eq!(r.arrivals, r.expiries, "{}", table_backend.name());
            assert_eq!(r.rejected_installs, 0, "{}", table_backend.name());
            assert!(r.throughput_per_kcy > 0.0, "{}", table_backend.name());
        }
    }

    /// Non-blocking destination slots must not alias when a search can
    /// probe more than eight tuples (one cache line's worth of result
    /// words). The old hard-coded `slot % 8` arithmetic made probe 8+
    /// overwrite probe 0's destination word.
    #[test]
    fn nb_dest_region_survives_more_than_eight_tuples() {
        let tuples = 12;
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
        let mut dp = MultiCoreDatapath::new(
            &mut sys,
            2,
            tuples,
            2_400,
            LookupBackend::HaloNonBlocking,
            9,
        );
        let report = dp.run(&mut sys, Some(&mut engine), 400, 0);
        assert_eq!(report.packets, 400);
        assert!(report.throughput_per_kcy > 0.0);
    }
}
