//! A multi-core datapath: several polling threads share one MegaFlow
//! tuple space (the §3.4 setting — shared tables, core-to-core
//! coherence traffic, software locking) while keeping per-core EMCs,
//! exactly like OVS-DPDK PMD threads.
//!
//! Used by the scalability experiment: aggregate classification
//! throughput as the datapath grows from 1 to 16 cores, software vs
//! HALO lookups, with optional rule churn from a revalidator thread.

use halo_accel::HaloEngine;
use halo_classify::{distinct_masks, Emc, PacketHeader, SearchMode, TupleSpace};
use halo_cpu::{build_sw_lookup, CoreModel, Scratch};
use halo_mem::{CoreId, MemorySystem};
use halo_sim::{Cycle, Cycles, SplitMix64};
use halo_tables::{hash_key, SEED_PRIMARY};

use crate::pipeline::LookupBackend;

/// One PMD (poll-mode-driver) thread's private state.
#[derive(Debug)]
struct PmdThread {
    core: CoreId,
    core_model: CoreModel,
    scratch: Scratch,
    emc: Emc,
    clock: Cycle,
    packets: u64,
}

/// A multi-core OVS-DPDK-style datapath over a shared MegaFlow layer.
///
/// # Examples
///
/// ```
/// use halo_mem::{MachineConfig, MemorySystem};
/// use halo_vswitch::{LookupBackend, MultiCoreDatapath};
///
/// let mut sys = MemorySystem::new(MachineConfig::default());
/// let mut dp = MultiCoreDatapath::new(&mut sys, 4, 5, 2_000, LookupBackend::Software, 7);
/// let report = dp.run(&mut sys, None, 400, 0);
/// assert_eq!(report.packets, 400);
/// assert!(report.throughput_per_kcy > 0.0);
/// ```
#[derive(Debug)]
pub struct MultiCoreDatapath {
    pmds: Vec<PmdThread>,
    megaflow: TupleSpace,
    backend: LookupBackend,
    flows: u64,
    rng: SplitMix64,
    nb_dest: halo_mem::Addr,
}

/// Aggregate result of a multi-core run.
#[derive(Debug, Clone, Copy)]
pub struct ScalingReport {
    /// Datapath threads used.
    pub cores: usize,
    /// Packets classified in total.
    pub packets: u64,
    /// Wall-clock cycles (max over core clocks).
    pub cycles: u64,
    /// Aggregate packets per kilocycle.
    pub throughput_per_kcy: f64,
    /// Remote-dirty cache-line transfers observed (coherence traffic).
    pub dirty_transfers: u64,
}

// The scaling sweep runs whole `MultiCoreDatapath` experiments on
// worker threads, so the datapath (and the report it produces) must be
// `Send`. All state is owned values — `Vec`s, `SplitMix64`, the tuple
// space over plain simulated memory — with no interior mutability or
// shared handles; this assertion keeps it that way.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<MultiCoreDatapath>();
    assert_send::<ScalingReport>();
};

impl MultiCoreDatapath {
    /// Builds a datapath with `cores` PMD threads over `tuples` shared
    /// MegaFlow tuples holding `flows` rules.
    ///
    /// # Panics
    ///
    /// Panics if `cores` exceeds the machine's core count.
    pub fn new(
        sys: &mut MemorySystem,
        cores: usize,
        tuples: usize,
        flows: usize,
        backend: LookupBackend,
        seed: u64,
    ) -> Self {
        assert!(cores <= sys.config().cores, "not enough cores");
        let mut megaflow = TupleSpace::new(
            sys.data_mut(),
            distinct_masks(tuples),
            flows / tuples + 512,
            SearchMode::FirstMatch,
        );
        for f in 0..flows as u64 {
            let key = PacketHeader::synthetic(f).miniflow();
            megaflow
                .insert_rule(sys.data_mut(), (f % tuples as u64) as usize, &key, 0, f)
                .expect("tuple sized for its share");
        }
        for t in megaflow.tuples() {
            for a in t.table().all_lines().collect::<Vec<_>>() {
                sys.warm_llc(a);
            }
        }
        let pmds = (0..cores)
            .map(|c| {
                let core = CoreId(c);
                let scratch = Scratch::new(sys);
                scratch.warm(sys, core);
                let emc = Emc::new(sys.data_mut(), 1024);
                PmdThread {
                    core,
                    core_model: CoreModel::new(core, sys.config()),
                    scratch,
                    emc,
                    clock: Cycle::ZERO,
                    packets: 0,
                }
            })
            .collect();
        let nb_dest = sys.data_mut().alloc_lines(64 * cores as u64);
        MultiCoreDatapath {
            pmds,
            megaflow,
            backend,
            flows: flows as u64,
            rng: SplitMix64::new(seed),
            nb_dest,
        }
    }

    /// Number of PMD threads.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.pmds.len()
    }

    /// Classifies one packet on PMD `p` starting at its local clock.
    fn classify_one(
        &mut self,
        sys: &mut MemorySystem,
        engine: Option<&mut HaloEngine>,
        p: usize,
        flow: u64,
    ) {
        let key = PacketHeader::synthetic(flow).miniflow();
        let pmd = &mut self.pmds[p];
        let t0 = pmd.clock;
        pmd.packets += 1;

        // Per-core EMC probe (always software: it is tiny and private).
        let emc_trace = pmd.emc.lookup_traced(sys.data_mut(), &key);
        let prog = build_sw_lookup(&emc_trace, &mut pmd.scratch, None);
        let mut t = pmd.core_model.run(&prog, sys, t0).finish;
        if emc_trace.result.is_some() {
            pmd.clock = t;
            return;
        }

        // Shared MegaFlow search.
        let (m, probes) = self.megaflow.classify_traced(
            sys.data_mut(),
            &key,
            self.backend == LookupBackend::Software,
        );
        match self.backend {
            LookupBackend::Software => {
                for (_, tr) in &probes {
                    let prog = build_sw_lookup(tr, &mut pmd.scratch, None);
                    t = pmd.core_model.run(&prog, sys, t).finish;
                }
            }
            LookupBackend::HaloBlocking | LookupBackend::HaloNonBlocking => {
                let engine = engine.expect("HALO backend needs an engine");
                let blocking = self.backend == LookupBackend::HaloBlocking;
                let mut done = t;
                for (slot, (i, tr)) in probes.iter().enumerate() {
                    let table_addr = self.megaflow.tuples()[*i].table().meta_addr();
                    let h = hash_key(&key, SEED_PRIMARY) ^ (*i as u64);
                    let dest = if blocking {
                        None
                    } else {
                        Some(self.nb_dest + (p as u64) * 64 + (slot as u64 % 8) * 8)
                    };
                    let out = engine.dispatch(
                        sys,
                        pmd.core,
                        table_addr,
                        tr,
                        h,
                        None,
                        dest,
                        if blocking {
                            done
                        } else {
                            t + Cycles(slot as u64)
                        },
                    );
                    if blocking {
                        done = out.complete + Cycles(4);
                    } else {
                        done = done.max(out.complete);
                    }
                }
                if !blocking && !probes.is_empty() {
                    let (_, snap) =
                        engine.snapshot_read(sys, pmd.core, self.nb_dest + (p as u64) * 64, done);
                    done = snap;
                }
                t = done;
            }
        }
        if let Some(hit) = m {
            pmd.emc.insert(sys.data_mut(), &key, hit.action);
        }
        pmd.clock = t;
    }

    /// Runs `packets` packets spread across the PMDs by flow hash (RSS),
    /// with a revalidator relocating a rule every `churn_every` packets
    /// (0 disables churn). Returns the aggregate report.
    pub fn run(
        &mut self,
        sys: &mut MemorySystem,
        mut engine: Option<&mut HaloEngine>,
        packets: u64,
        churn_every: u64,
    ) -> ScalingReport {
        let dirty_before = sys.stats().counter("llc.dirty_snoop");
        for i in 0..packets {
            let flow = self.rng.below(self.flows);
            // RSS: flow hash picks the PMD, so one flow stays on one core.
            let p = (hash_key(&PacketHeader::synthetic(flow).miniflow(), SEED_PRIMARY)
                % self.pmds.len() as u64) as usize;
            if churn_every > 0 && i % churn_every == 0 {
                // The revalidator (a writer on another core) updates the
                // shared tables: timed stores to every tuple's version
                // line invalidate the readers' copies — the core-to-core
                // coherence cost of §3.4.
                let wcore = CoreId(sys.config().cores - 1);
                for ti in 0..self.megaflow.tuples().len() {
                    let va = self.megaflow.tuples()[ti].table().version_addr();
                    let at = self.pmds[p].clock;
                    sys.access(wcore, va, halo_mem::AccessKind::Store, at);
                }
            }
            self.classify_one(sys, engine.as_deref_mut(), p, flow);
        }
        let cycles = self
            .pmds
            .iter()
            .map(|p| p.clock.0)
            .max()
            .unwrap_or(0)
            .max(1);
        ScalingReport {
            cores: self.pmds.len(),
            packets,
            cycles,
            throughput_per_kcy: 1000.0 * packets as f64 / cycles as f64,
            dirty_transfers: sys.stats().counter("llc.dirty_snoop") - dirty_before,
        }
    }

    /// Per-PMD packet counts (for load-balance checks).
    #[must_use]
    pub fn per_core_packets(&self) -> Vec<u64> {
        self.pmds.iter().map(|p| p.packets).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_accel::AcceleratorConfig;
    use halo_mem::MachineConfig;

    fn throughput(cores: usize, backend: LookupBackend, churn: u64) -> ScalingReport {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
        let mut dp = MultiCoreDatapath::new(&mut sys, cores, 5, 2_000, backend, 42);
        let e = match backend {
            LookupBackend::Software => None,
            _ => Some(&mut engine),
        };
        dp.run(&mut sys, e, 600, churn)
    }

    #[test]
    fn more_cores_more_throughput() {
        let one = throughput(1, LookupBackend::Software, 0);
        let four = throughput(4, LookupBackend::Software, 0);
        assert!(
            four.throughput_per_kcy > 2.0 * one.throughput_per_kcy,
            "4 cores ({}) should roughly quadruple 1 core ({})",
            four.throughput_per_kcy,
            one.throughput_per_kcy
        );
    }

    #[test]
    fn halo_nb_scales_better_than_software() {
        let sw = throughput(8, LookupBackend::Software, 0);
        let nb = throughput(8, LookupBackend::HaloNonBlocking, 0);
        assert!(
            nb.throughput_per_kcy > sw.throughput_per_kcy,
            "HALO-NB {} must beat software {} at 8 cores",
            nb.throughput_per_kcy,
            sw.throughput_per_kcy
        );
    }

    #[test]
    fn rss_spreads_flows_across_cores() {
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut dp = MultiCoreDatapath::new(&mut sys, 8, 5, 2_000, LookupBackend::Software, 42);
        dp.run(&mut sys, None, 800, 0);
        let counts = dp.per_core_packets();
        assert_eq!(counts.iter().sum::<u64>(), 800);
        for &c in &counts {
            assert!(c > 30, "imbalanced RSS: {counts:?}");
        }
    }

    #[test]
    fn churn_generates_coherence_traffic() {
        let calm = throughput(4, LookupBackend::Software, 0);
        let churny = throughput(4, LookupBackend::Software, 10);
        assert!(
            churny.dirty_transfers + 20 > calm.dirty_transfers,
            "churn should raise dirty transfers: {} vs {}",
            churny.dirty_transfers,
            calm.dirty_transfers
        );
        // Writers slow the datapath down (coherence + lock retries).
        assert!(churny.throughput_per_kcy <= calm.throughput_per_kcy * 1.05);
    }
}
