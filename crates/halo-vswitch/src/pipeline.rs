//! The OVS-style software datapath: packet IO → pre-processing →
//! EMC → MegaFlow → (OpenFlow), with per-phase cycle accounting.
//!
//! This is the workload of the paper's characterization (§3, Fig. 3) and
//! the system HALO plugs into. The classification stage itself (EMC +
//! MegaFlow + backend dispatch) is the shared [`DatapathCore`] from
//! `halo-datapath`; this module wraps it with packet IO, the pipeline
//! phase accounting, and the OpenFlow slow path.

use halo_accel::HaloEngine;
use halo_classify::{
    Emc, PacketHeader, RangeRule, RuleError, RuleMatch, SearchMode, TupleSpace, WildcardMask,
};
use halo_cpu::Program;
use halo_datapath::{
    DatapathCore, LookupExecutor, NbRegion, TableBackend, WildcardBackend, WildcardError,
    WildcardMatcher, WildcardTable,
};
use halo_mem::{Addr, CoreId, MemorySystem, CACHE_LINE};
use halo_sim::{Cycle, Cycles};
use halo_tables::FlowKey;

pub use halo_datapath::LookupBackend;

/// Per-phase cycle totals (the Fig. 3 breakdown).
#[derive(Debug, Clone, Copy, Default)]
pub struct Breakdown {
    /// Packet transmission / reception / queueing.
    pub io: Cycles,
    /// Header extraction (miniflow).
    pub preproc: Cycles,
    /// EMC lookup.
    pub emc: Cycles,
    /// MegaFlow tuple space search.
    pub megaflow: Cycles,
    /// OpenFlow slow-path search + MegaFlow rule installation (upcalls).
    pub openflow: Cycles,
    /// Everything else (action execution, bookkeeping).
    pub other: Cycles,
}

impl Breakdown {
    /// Sum of all phases.
    #[must_use]
    pub fn total(&self) -> Cycles {
        self.io + self.preproc + self.emc + self.megaflow + self.openflow + self.other
    }

    /// Fraction of time spent in flow classification (EMC + MegaFlow).
    #[must_use]
    pub fn classification_fraction(&self) -> f64 {
        let t = self.total().0;
        if t == 0 {
            0.0
        } else {
            (self.emc + self.megaflow + self.openflow).0 as f64 / t as f64
        }
    }

    /// Accumulates another breakdown into this one (e.g. summing the
    /// per-core datapath threads of a multi-core switch).
    pub fn add(&mut self, other: &Breakdown) {
        self.io += other.io;
        self.preproc += other.preproc;
        self.emc += other.emc;
        self.megaflow += other.megaflow;
        self.openflow += other.openflow;
        self.other += other.other;
    }
}

/// Configuration of the virtual switch instance.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// EMC slots (power of two); 0 disables the EMC layer.
    pub emc_entries: usize,
    /// Wildcard masks of the MegaFlow layer (one tuple each).
    pub megaflow_masks: Vec<WildcardMask>,
    /// Rule capacity per MegaFlow tuple.
    pub megaflow_capacity: usize,
    /// Which backend performs the lookups.
    pub backend: LookupBackend,
    /// Which wildcard-table implementation backs the MegaFlow layer
    /// (tuple space search or range-vector hashing).
    pub wildcard_backend: WildcardBackend,
    /// Promote MegaFlow hits into the EMC (OVS behaviour).
    pub emc_promotion: bool,
    /// Enable the OpenFlow slow-path layer: MegaFlow misses fall
    /// through to a priority search over the full rule set, and the
    /// winning rule is installed back into the MegaFlow layer (the
    /// upcall of Fig. 2a). Disabled by default: the paper notes the
    /// OpenFlow layer is seldom accessed in practice (§3.1).
    pub openflow: bool,
    /// Rule capacity per OpenFlow tuple (when `openflow` is on).
    pub openflow_capacity: usize,
}

impl SwitchConfig {
    /// A typical OVS configuration with `masks` MegaFlow tuples.
    #[must_use]
    pub fn typical(masks: usize, backend: LookupBackend) -> Self {
        SwitchConfig {
            emc_entries: 8192,
            megaflow_masks: halo_classify::distinct_masks(masks),
            megaflow_capacity: 1024,
            backend,
            wildcard_backend: WildcardBackend::default(),
            emc_promotion: true,
            openflow: false,
            openflow_capacity: 4096,
        }
    }
}

/// Counters of where packets were classified.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwitchCounters {
    /// Packets processed.
    pub packets: u64,
    /// Hits in the EMC layer.
    pub emc_hits: u64,
    /// Hits in the MegaFlow layer.
    pub megaflow_hits: u64,
    /// Packets resolved by the OpenFlow slow path (upcalls).
    pub openflow_hits: u64,
    /// Packets matching no rule.
    pub misses: u64,
}

/// Fixed cycle cost of installing an upcall-resolved rule into the
/// MegaFlow layer (flow_add bookkeeping in the revalidator).
const UPCALL_INSTALL_CYCLES: u64 = 600;

/// Ring of packet-buffer lines (NIC RX descriptors, delivered by DDIO
/// into the LLC).
#[derive(Debug)]
struct PacketRing {
    base: Addr,
    slots: u64,
    next: u64,
}

impl PacketRing {
    const SLOTS: u64 = 64;

    fn new(sys: &mut MemorySystem) -> Self {
        let base = sys.data_mut().alloc_lines(Self::SLOTS * CACHE_LINE);
        PacketRing {
            base,
            slots: Self::SLOTS,
            next: 0,
        }
    }

    /// Returns the buffer for the next received packet, DDIO-delivering
    /// it into the LLC.
    fn receive(&mut self, sys: &mut MemorySystem, header: &PacketHeader) -> Addr {
        let a = self.base + (self.next % self.slots) * CACHE_LINE;
        self.next += 1;
        sys.data_mut().write_bytes(a, header.miniflow().as_bytes());
        sys.dma_write(a);
        a
    }
}

/// An OVS-like virtual switch bound to one core.
///
/// # Examples
///
/// ```
/// use halo_vswitch::{LookupBackend, SwitchConfig, VirtualSwitch};
/// use halo_classify::PacketHeader;
/// use halo_mem::{CoreId, MachineConfig, MemorySystem};
/// use halo_sim::Cycle;
///
/// let mut sys = MemorySystem::new(MachineConfig::small());
/// let cfg = SwitchConfig::typical(5, LookupBackend::Software);
/// let mut vs = VirtualSwitch::new(&mut sys, CoreId(0), cfg);
/// let pkt = PacketHeader::synthetic(1);
/// vs.install_flow(&mut sys, &pkt.miniflow(), 2, 0, 99).unwrap();
/// let (action, _done) = vs.process_packet(&mut sys, None, &pkt, Cycle(0));
/// assert_eq!(action, Some(99));
/// ```
#[derive(Debug)]
pub struct VirtualSwitch {
    dp: DatapathCore,
    megaflow: WildcardMatcher,
    /// MegaFlow mask list, indexed by the `tuple_idx` of the install
    /// API (and of OpenFlow rule matches during upcalls).
    masks: Vec<WildcardMask>,
    openflow: Option<TupleSpace>,
    ring: PacketRing,
    breakdown: Breakdown,
    counters: SwitchCounters,
}

impl VirtualSwitch {
    /// Builds the switch and its tables in `sys`'s memory.
    pub fn new(sys: &mut MemorySystem, core: CoreId, cfg: SwitchConfig) -> Self {
        let exec = LookupExecutor::new(sys, core, cfg.backend);
        exec.warm_scratch(sys);
        let emc = if cfg.emc_entries > 0 {
            Some(Emc::new(sys.data_mut(), cfg.emc_entries))
        } else {
            None
        };
        let nmasks = cfg.megaflow_masks.len();
        let megaflow = cfg.wildcard_backend.build(
            sys.data_mut(),
            TableBackend::Cuckoo,
            &cfg.megaflow_masks,
            cfg.megaflow_capacity,
            SearchMode::FirstMatch,
        );
        let openflow = if cfg.openflow {
            Some(TupleSpace::new(
                sys.data_mut(),
                cfg.megaflow_masks.clone(),
                cfg.openflow_capacity,
                SearchMode::HighestPriority,
            ))
        } else {
            None
        };
        let ring = PacketRing::new(sys);
        // NB destination lines, sized so a search probing every probe
        // slot still gets one result word per in-flight lookup.
        let nb = NbRegion::allocate(sys.data_mut(), megaflow.probes().max(nmasks));
        let exec = exec.with_nb_region(nb);
        VirtualSwitch {
            dp: DatapathCore::new(exec, emc, cfg.backend, cfg.emc_promotion),
            megaflow,
            masks: cfg.megaflow_masks,
            openflow,
            ring,
            breakdown: Breakdown::default(),
            counters: SwitchCounters::default(),
        }
    }

    /// The MegaFlow wildcard table (for inspection).
    #[must_use]
    pub fn megaflow(&self) -> &WildcardMatcher {
        &self.megaflow
    }

    /// Accumulated per-phase cycles.
    #[must_use]
    pub fn breakdown(&self) -> &Breakdown {
        &self.breakdown
    }

    /// Classification counters.
    #[must_use]
    pub fn counters(&self) -> &SwitchCounters {
        &self.counters
    }

    /// Average cycles per packet so far.
    #[must_use]
    pub fn cycles_per_packet(&self) -> f64 {
        if self.counters.packets == 0 {
            0.0
        } else {
            self.breakdown.total().0 as f64 / self.counters.packets as f64
        }
    }

    /// Installs a flow rule under the mask of MegaFlow tuple
    /// `tuple_idx`, returning the `(priority, action)` it replaced if
    /// the masked key was already installed.
    ///
    /// # Errors
    ///
    /// [`WildcardError::UnknownMask`] when `tuple_idx` names no
    /// configured mask (or the active backend cannot represent it),
    /// otherwise the backend's insertion error (full table or an
    /// action outside the 48-bit encodable range).
    pub fn install_flow(
        &mut self,
        sys: &mut MemorySystem,
        key: &FlowKey,
        tuple_idx: usize,
        priority: u16,
        action: u64,
    ) -> Result<Option<(u16, u64)>, WildcardError> {
        let mask = self
            .masks
            .get(tuple_idx)
            .ok_or(WildcardError::UnknownMask)?;
        self.megaflow
            .insert_masked(sys.data_mut(), mask, key, priority, action)
    }

    /// Installs a per-field range rule into the MegaFlow layer.
    ///
    /// # Errors
    ///
    /// [`WildcardError::UnsupportedRanges`] when the active backend has
    /// no range representation; otherwise as [`Self::install_flow`].
    pub fn install_range_rule(
        &mut self,
        sys: &mut MemorySystem,
        rule: &RangeRule,
    ) -> Result<Option<(u16, u64)>, WildcardError> {
        self.megaflow.insert_range(sys.data_mut(), rule)
    }

    /// Installs a rule into the OpenFlow slow-path layer, returning the
    /// `(priority, action)` it replaced, if any.
    ///
    /// # Errors
    ///
    /// Propagates [`RuleError`].
    ///
    /// # Panics
    ///
    /// Panics if the switch was built without the OpenFlow layer.
    pub fn install_openflow_rule(
        &mut self,
        sys: &mut MemorySystem,
        key: &FlowKey,
        tuple_idx: usize,
        priority: u16,
        action: u64,
    ) -> Result<Option<(u16, u64)>, RuleError> {
        self.openflow
            .as_mut()
            .expect("switch built without the OpenFlow layer")
            .insert_rule(sys.data_mut(), tuple_idx, key, priority, action)
    }

    /// Pre-installs `key -> action` into the EMC (steady-state warm
    /// start: in a long-running switch the EMC already holds the
    /// hottest flows; without this, short measurement windows see only
    /// cold-start misses).
    pub fn prime_emc(&mut self, sys: &mut MemorySystem, key: &FlowKey, action: u64) {
        self.dp.prime(sys.data_mut(), key, action);
    }

    /// Pre-loads all switch tables into the LLC (warm start, as after
    /// the 10 K warm-up lookups of §5.2).
    pub fn warm_tables(&self, sys: &mut MemorySystem) {
        if let Some(emc) = self.dp.emc() {
            for a in emc.all_lines().collect::<Vec<_>>() {
                sys.warm_llc(a);
            }
        }
        for a in self.megaflow.memory_lines() {
            sys.warm_llc(a);
        }
        if let Some(of) = &self.openflow {
            for t in of.tuples() {
                for a in t.table().all_lines().collect::<Vec<_>>() {
                    sys.warm_llc(a);
                }
            }
        }
    }

    /// Filler program for the fixed pipeline phases: `uops` micro-ops
    /// with a sprinkling of buffer loads.
    fn phase_program(&mut self, loads: &[Addr], uops: usize) -> Program {
        let mut p = Program::new();
        for &a in loads {
            p.load(a, &[]);
        }
        let scratch = self.dp.exec_mut().scratch_mut();
        let n_loads = (uops / 5).saturating_sub(loads.len());
        for _ in 0..n_loads {
            p.load(scratch.next(), &[]);
        }
        for _ in 0..(uops - uops / 5 - loads.len().min(uops)) {
            p.compute(1, &[]);
        }
        p
    }

    /// Processes one packet. `engine` must be provided for the HALO
    /// backends. Returns the matched action (if any) and the completion
    /// cycle.
    ///
    /// # Panics
    ///
    /// Panics if a HALO backend is configured but `engine` is `None`.
    pub fn process_packet(
        &mut self,
        sys: &mut MemorySystem,
        engine: Option<&mut HaloEngine>,
        header: &PacketHeader,
        at: Cycle,
    ) -> (Option<u64>, Cycle) {
        self.counters.packets += 1;
        let key = header.miniflow();

        // --- Packet IO (RX + queueing): DDIO delivery + driver work. ---
        let buf = self.ring.receive(sys, header);
        let io_prog = self.phase_program(&[buf], 440);
        let r = self.dp.exec_mut().run(&io_prog, sys, at);
        let mut t = r.finish;
        self.breakdown.io += r.duration();
        if sys.trace_enabled() {
            sys.trace_span("vswitch", "io", at, t);
        }

        // --- Pre-processing: miniflow extraction over the header. ------
        let pre_start = t;
        let pre_prog = self.phase_program(&[buf], 170);
        let r = self.dp.exec_mut().run(&pre_prog, sys, t);
        t = r.finish;
        self.breakdown.preproc += r.duration();
        if sys.trace_enabled() {
            sys.trace_span("vswitch", "preproc", pre_start, t);
        }

        // --- Classification: EMC → MegaFlow via the shared core. --------
        let out = self
            .dp
            .classify(sys, engine, &self.megaflow, &key, Some(buf), t);
        let mut action = out.action;
        if let Some(done) = out.emc_done {
            self.breakdown.emc += done - t;
            if sys.trace_enabled() {
                sys.trace_span("vswitch", "emc", t, done);
            }
            t = done;
        }
        if out.emc_hit {
            self.counters.emc_hits += 1;
        } else {
            let done = out.megaflow_done.expect("MegaFlow searched on EMC miss");
            self.breakdown.megaflow += done - t;
            if sys.trace_enabled() {
                sys.trace_span("vswitch", "megaflow", t, done);
            }
            t = done;
            if out.megaflow.is_some() {
                self.counters.megaflow_hits += 1;
            } else if let Some(openflow) = &self.openflow {
                // --- OpenFlow slow path (upcall): a priority search over
                // every tuple, then install the winning rule into the
                // MegaFlow layer so later packets of the flow stay fast.
                let (of_match, of_probes) = openflow.classify_traced(
                    sys.data_mut(),
                    &key,
                    self.dp.exec().backend() == LookupBackend::Software,
                );
                let mut tt = t;
                // The slow path always runs in software (OVS upcalls are
                // handler-thread work), plus a fixed rule-install cost.
                for (_, tr) in &of_probes {
                    tt = self.dp.exec_mut().run_sw(sys, tr, None, tt);
                }
                if let Some(hit) = of_match {
                    self.counters.openflow_hits += 1;
                    action = Some(hit.action);
                    // Install the resolved flow into MegaFlow (the
                    // revalidator's handiwork), modeled as a fixed
                    // upcall/installation overhead.
                    let _ = self.megaflow.insert_masked(
                        sys.data_mut(),
                        &self.masks[hit.tuple],
                        &key,
                        0,
                        hit.action,
                    );
                    tt += Cycles(UPCALL_INSTALL_CYCLES);
                    self.dp.promote(sys.data_mut(), &key, hit.action);
                } else {
                    self.counters.misses += 1;
                }
                self.breakdown.openflow += tt - t;
                if sys.trace_enabled() {
                    sys.trace_span("vswitch", "openflow", t, tt);
                }
                t = tt;
            } else {
                self.counters.misses += 1;
            }
        }

        // --- Action execution + bookkeeping. ------------------------------
        let other_start = t;
        let other_prog = self.phase_program(&[], 140);
        let r = self.dp.exec_mut().run(&other_prog, sys, t);
        self.breakdown.other += r.duration();
        t = r.finish;
        if sys.trace_enabled() {
            sys.trace_span("vswitch", "other", other_start, t);
        }

        (action, t)
    }

    /// Processes a burst of packets back-to-back: each packet starts at
    /// the previous packet's completion cycle (the first at `at`).
    /// Appends one `(action, completion)` pair per packet to `out` and
    /// returns the completion cycle of the last packet.
    ///
    /// Produces exactly the outcomes, counters, and breakdown of the
    /// equivalent scalar loop over [`process_packet`]
    /// (Self::process_packet); the batched entry point exists so bulk
    /// drivers (benchmarks, the multi-core datapath) pay per-burst
    /// instead of per-packet dispatch overhead.
    pub fn process_burst(
        &mut self,
        sys: &mut MemorySystem,
        mut engine: Option<&mut HaloEngine>,
        headers: &[PacketHeader],
        at: Cycle,
        out: &mut Vec<(Option<u64>, Cycle)>,
    ) -> Cycle {
        out.reserve(headers.len());
        let mut t = at;
        for h in headers {
            let (action, done) = self.process_packet(sys, engine.as_deref_mut(), h, t);
            out.push((action, done));
            t = done;
        }
        t
    }

    /// Classifies without timing (functional check / oracle).
    #[must_use]
    pub fn classify_functional(
        &self,
        sys: &mut MemorySystem,
        header: &PacketHeader,
    ) -> Option<RuleMatch> {
        self.megaflow.classify(sys.data_mut(), &header.miniflow())
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use halo_mem::MachineConfig;

    /// With tracing on, every packet contributes one span per pipeline
    /// phase, and the phase histograms sum to the breakdown totals.
    #[test]
    fn tracing_records_per_phase_spans() {
        let mut sys = MemorySystem::new(MachineConfig::small());
        sys.enable_tracing(1 << 12);
        let cfg = SwitchConfig::typical(5, LookupBackend::Software);
        let mut vs = VirtualSwitch::new(&mut sys, CoreId(0), cfg);
        let pkt = PacketHeader::synthetic(1);
        vs.install_flow(&mut sys, &pkt.miniflow(), 2, 0, 99)
            .unwrap();
        let mut t = Cycle(0);
        for _ in 0..4 {
            let (action, done) = vs.process_packet(&mut sys, None, &pkt, t);
            assert_eq!(action, Some(99));
            t = done;
        }
        let tr = sys.tracer();
        for phase in ["io", "preproc", "emc", "other"] {
            let h = tr
                .histogram("vswitch", phase)
                .unwrap_or_else(|| panic!("missing {phase} spans"));
            assert_eq!(h.count(), 4, "{phase}: one span per packet");
        }
        // Only the first packet misses the EMC and searches MegaFlow;
        // the hit is then promoted, so later packets stop at the EMC.
        assert_eq!(
            tr.histogram("vswitch", "megaflow").map(|h| h.count()),
            Some(1)
        );
        // Phase spans cover the whole packet: phases are contiguous in
        // `t`, so the summed span durations equal the breakdown total.
        let spanned: u64 = ["io", "preproc", "emc", "megaflow", "other"]
            .iter()
            .map(|p| tr.histogram("vswitch", p).unwrap().sum())
            .sum();
        assert_eq!(spanned, vs.breakdown().total().0);
    }
}
