//! # halo-vswitch
//!
//! An OVS-like virtual-switch datapath over the simulated machine: the
//! layered EMC → MegaFlow pipeline of Fig. 2a with per-phase cycle
//! accounting (packet IO, pre-processing, EMC lookup, MegaFlow lookup,
//! other — the Fig. 3 breakdown), and pluggable lookup backends:
//! software (DPDK-style), HALO blocking, and HALO non-blocking.
//!
//! # Examples
//!
//! ```
//! use halo_classify::PacketHeader;
//! use halo_mem::{CoreId, MachineConfig, MemorySystem};
//! use halo_sim::Cycle;
//! use halo_vswitch::{LookupBackend, SwitchConfig, VirtualSwitch};
//!
//! let mut sys = MemorySystem::new(MachineConfig::small());
//! let mut vs = VirtualSwitch::new(
//!     &mut sys, CoreId(0), SwitchConfig::typical(5, LookupBackend::Software));
//! let pkt = PacketHeader::synthetic(9);
//! vs.install_flow(&mut sys, &pkt.miniflow(), 0, 0, 7).unwrap();
//! vs.warm_tables(&mut sys);
//! let (action, done) = vs.process_packet(&mut sys, None, &pkt, Cycle(0));
//! assert_eq!(action, Some(7));
//! assert!(done > Cycle(0));
//! assert!(vs.breakdown().total().0 > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod multicore;
mod pipeline;

pub use halo_datapath::{WildcardBackend, WildcardError, WildcardMatcher, WildcardTable};
pub use multicore::{MultiCoreConfig, MultiCoreDatapath, ScalingReport, StreamReport};
pub use pipeline::{Breakdown, LookupBackend, SwitchConfig, SwitchCounters, VirtualSwitch};

#[cfg(test)]
mod tests {
    use super::*;
    use halo_accel::{AcceleratorConfig, HaloEngine};
    use halo_classify::PacketHeader;
    use halo_mem::{CoreId, MachineConfig, MemorySystem};
    use halo_sim::Cycle;

    fn setup(backend: LookupBackend, flows: u64) -> (MemorySystem, VirtualSwitch, HaloEngine) {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let engine = HaloEngine::new(&sys, AcceleratorConfig::default());
        let mut cfg = SwitchConfig::typical(5, backend);
        cfg.megaflow_capacity = (flows as usize).max(64);
        cfg.emc_entries = 256; // small EMC so many-flow configs overflow it
        let mut vs = VirtualSwitch::new(&mut sys, CoreId(0), cfg);
        for id in 0..flows {
            let pkt = PacketHeader::synthetic(id);
            vs.install_flow(&mut sys, &pkt.miniflow(), (id % 5) as usize, 0, id)
                .unwrap();
        }
        vs.warm_tables(&mut sys);
        (sys, vs, engine)
    }

    #[test]
    fn packets_classify_to_installed_actions() {
        let (mut sys, mut vs, _e) = setup(LookupBackend::Software, 50);
        let mut t = Cycle(0);
        for id in 0..50 {
            let pkt = PacketHeader::synthetic(id);
            let (action, done) = vs.process_packet(&mut sys, None, &pkt, t);
            assert_eq!(action, Some(id), "wrong action for flow {id}");
            t = done;
        }
        assert_eq!(vs.counters().packets, 50);
        assert_eq!(vs.counters().misses, 0);
    }

    #[test]
    fn unknown_packet_misses() {
        let (mut sys, mut vs, _e) = setup(LookupBackend::Software, 10);
        let pkt = PacketHeader::synthetic(1_000_000);
        let (action, _) = vs.process_packet(&mut sys, None, &pkt, Cycle(0));
        assert_eq!(action, None);
        assert_eq!(vs.counters().misses, 1);
    }

    #[test]
    fn emc_promotion_catches_repeat_flows() {
        let (mut sys, mut vs, _e) = setup(LookupBackend::Software, 10);
        let pkt = PacketHeader::synthetic(3);
        let (_, t1) = vs.process_packet(&mut sys, None, &pkt, Cycle(0));
        assert_eq!(vs.counters().emc_hits, 0);
        let (_, _t2) = vs.process_packet(&mut sys, None, &pkt, t1);
        assert_eq!(vs.counters().emc_hits, 1, "second packet must hit EMC");
    }

    /// With promotion disabled, repeat packets keep walking MegaFlow —
    /// the flag must gate the single-core path exactly like the
    /// multi-core one.
    #[test]
    fn emc_promotion_flag_gates_the_pipeline() {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let mut cfg = SwitchConfig::typical(5, LookupBackend::Software);
        cfg.emc_promotion = false;
        let mut vs = VirtualSwitch::new(&mut sys, CoreId(0), cfg);
        let pkt = PacketHeader::synthetic(3);
        vs.install_flow(&mut sys, &pkt.miniflow(), 3, 0, 9).unwrap();
        let (_, t1) = vs.process_packet(&mut sys, None, &pkt, Cycle(0));
        let _ = vs.process_packet(&mut sys, None, &pkt, t1);
        assert_eq!(vs.counters().emc_hits, 0, "promotion off: EMC stays empty");
        assert_eq!(vs.counters().megaflow_hits, 2);
    }

    #[test]
    fn breakdown_phases_all_nonzero() {
        let (mut sys, mut vs, _e) = setup(LookupBackend::Software, 20);
        let mut t = Cycle(0);
        for id in 0..20 {
            let (_, done) = vs.process_packet(&mut sys, None, &PacketHeader::synthetic(id), t);
            t = done;
        }
        let b = vs.breakdown();
        assert!(b.io.0 > 0 && b.preproc.0 > 0 && b.emc.0 > 0 && b.other.0 > 0);
        assert!(b.megaflow.0 > 0, "first-seen flows must hit MegaFlow");
        assert!(b.classification_fraction() > 0.1);
        assert!(vs.cycles_per_packet() > 100.0);
    }

    #[test]
    fn halo_backends_are_functionally_identical_to_software() {
        for backend in [LookupBackend::HaloBlocking, LookupBackend::HaloNonBlocking] {
            let (mut sys, mut vs, mut engine) = setup(backend, 30);
            let mut t = Cycle(0);
            for id in 0..30 {
                let pkt = PacketHeader::synthetic(id);
                let (action, done) = vs.process_packet(&mut sys, Some(&mut engine), &pkt, t);
                assert_eq!(action, Some(id), "{backend:?} wrong action for {id}");
                t = done;
            }
        }
    }

    /// The wildcard backend is a runtime config choice: the switch
    /// classifies identically with the RVH matcher behind the MegaFlow
    /// seam, and range rules install directly through the switch.
    #[test]
    fn rvh_backend_drives_the_switch() {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let mut cfg = SwitchConfig::typical(5, LookupBackend::Software);
        cfg.wildcard_backend = WildcardBackend::Rvh;
        cfg.emc_entries = 256;
        let mut vs = VirtualSwitch::new(&mut sys, CoreId(0), cfg);
        for id in 0..40u64 {
            let pkt = PacketHeader::synthetic(id);
            vs.install_flow(&mut sys, &pkt.miniflow(), (id % 5) as usize, 0, id)
                .unwrap();
        }
        vs.warm_tables(&mut sys);
        assert_eq!(vs.megaflow().name(), "rvh");
        assert_eq!(vs.megaflow().rules(), 40);
        let mut t = Cycle(0);
        for id in 0..40 {
            let pkt = PacketHeader::synthetic(id);
            let (action, done) = vs.process_packet(&mut sys, None, &pkt, t);
            assert_eq!(action, Some(id), "rvh wrong action for flow {id}");
            t = done;
        }
        assert_eq!(vs.counters().misses, 0);
        // A port-range rule installs straight through the switch API.
        use halo_classify::{FieldRange, RangeRule};
        let mut ranges = [FieldRange::any(0); halo_classify::NUM_FIELDS];
        for (f, r) in ranges.iter_mut().enumerate() {
            *r = FieldRange::any(f);
        }
        ranges[2] = FieldRange::span(1000, 2000);
        let rule = RangeRule {
            ranges,
            priority: 9,
            action: 77,
        };
        assert_eq!(vs.install_range_rule(&mut sys, &rule).unwrap(), None);
        assert_eq!(vs.megaflow().rules(), 41);
    }

    #[test]
    fn halo_nonblocking_beats_software_on_many_tuples() {
        // With all 5 tuples probed per miss, the non-blocking backend
        // should spend fewer cycles in MegaFlow than software.
        let (mut sys_sw, mut vs_sw, _e) = setup(LookupBackend::Software, 200);
        let mut t = Cycle(0);
        for id in 0..200 {
            let (_, done) =
                vs_sw.process_packet(&mut sys_sw, None, &PacketHeader::synthetic(id), t);
            t = done;
        }
        let (mut sys_nb, mut vs_nb, mut engine) = setup(LookupBackend::HaloNonBlocking, 200);
        let mut t = Cycle(0);
        for id in 0..200 {
            let (_, done) = vs_nb.process_packet(
                &mut sys_nb,
                Some(&mut engine),
                &PacketHeader::synthetic(id),
                t,
            );
            t = done;
        }
        assert!(
            vs_nb.breakdown().megaflow.0 < vs_sw.breakdown().megaflow.0,
            "HALO-NB megaflow {} should beat software {}",
            vs_nb.breakdown().megaflow,
            vs_sw.breakdown().megaflow
        );
    }
}

#[cfg(test)]
mod openflow_tests {
    use super::*;
    use halo_classify::PacketHeader;
    use halo_mem::{CoreId, MachineConfig, MemorySystem};
    use halo_sim::Cycle;

    fn switch_with_openflow() -> (MemorySystem, VirtualSwitch) {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let mut cfg = SwitchConfig::typical(4, LookupBackend::Software);
        cfg.openflow = true;
        cfg.emc_entries = 256;
        let mut vs = VirtualSwitch::new(&mut sys, CoreId(0), cfg);
        // Rules exist only in the OpenFlow layer: MegaFlow starts empty.
        for id in 0..50u64 {
            let pkt = PacketHeader::synthetic(id);
            vs.install_openflow_rule(&mut sys, &pkt.miniflow(), (id % 4) as usize, 3, 500 + id)
                .unwrap();
        }
        vs.warm_tables(&mut sys);
        (sys, vs)
    }

    #[test]
    fn upcall_resolves_and_installs_megaflow_rule() {
        let (mut sys, mut vs) = switch_with_openflow();
        let pkt = PacketHeader::synthetic(7);
        // First packet: EMC miss -> MegaFlow miss -> OpenFlow hit.
        let (action, t1) = vs.process_packet(&mut sys, None, &pkt, Cycle(0));
        assert_eq!(action, Some(507));
        assert_eq!(vs.counters().openflow_hits, 1);
        assert_eq!(vs.counters().megaflow_hits, 0);
        assert!(vs.breakdown().openflow.0 > 0, "upcall must be accounted");

        // Second packet of the same flow: resolved by the fast path.
        let (action, _t2) = vs.process_packet(&mut sys, None, &pkt, t1);
        assert_eq!(action, Some(507));
        assert_eq!(vs.counters().openflow_hits, 1, "no second upcall");
        assert!(vs.counters().emc_hits + vs.counters().megaflow_hits >= 1);
    }

    #[test]
    fn openflow_picks_highest_priority() {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let mut cfg = SwitchConfig::typical(4, LookupBackend::Software);
        cfg.openflow = true;
        cfg.emc_entries = 0; // force the layered search
        let mut vs = VirtualSwitch::new(&mut sys, CoreId(0), cfg);
        let pkt = PacketHeader::synthetic(3);
        vs.install_openflow_rule(&mut sys, &pkt.miniflow(), 0, 1, 10)
            .unwrap();
        vs.install_openflow_rule(&mut sys, &pkt.miniflow(), 2, 9, 20)
            .unwrap();
        let (action, _) = vs.process_packet(&mut sys, None, &pkt, Cycle(0));
        assert_eq!(action, Some(20), "higher priority must win");
    }

    #[test]
    fn true_miss_still_counts_with_openflow_enabled() {
        let (mut sys, mut vs) = switch_with_openflow();
        let pkt = PacketHeader::synthetic(999_999);
        let (action, _) = vs.process_packet(&mut sys, None, &pkt, Cycle(0));
        assert_eq!(action, None);
        assert_eq!(vs.counters().misses, 1);
    }

    #[test]
    fn upcalls_are_much_slower_than_fast_path() {
        let (mut sys, mut vs) = switch_with_openflow();
        let pkt = PacketHeader::synthetic(11);
        let (_, t1) = vs.process_packet(&mut sys, None, &pkt, Cycle(0));
        let first = t1.0;
        let (_, t2) = vs.process_packet(&mut sys, None, &pkt, t1);
        let second = t2.0 - t1.0;
        assert!(
            first > 2 * second,
            "upcall packet ({first}) should dwarf fast-path packet ({second})"
        );
    }
}
