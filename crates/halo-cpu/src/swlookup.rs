//! Software hash-table lookup as an x86-64 micro-op program.
//!
//! Table 1 of the paper profiles a single DPDK cuckoo lookup at ~210
//! instructions: 36.2% loads, 11.8% stores, 21.0% arithmetic, 30.9%
//! others (control flow etc.). Only a handful of those loads touch the
//! table itself; the rest hit stack/packet-local state that stays in L1.
//! [`build_sw_lookup`] reproduces exactly this mix around the *real*
//! table accesses recorded in a [`LookupTrace`], so the core model prices
//! software lookups with both the right instruction count and the right
//! cache behaviour.

use crate::uop::{Program, UopId};
use halo_mem::{Addr, CoreId, MemorySystem, CACHE_LINE};
use halo_tables::{LookupTrace, TraceStep};

/// Instruction budget of one software lookup (Table 1).
pub const SW_LOOKUP_INSTRUCTIONS: usize = 210;
/// Load fraction of the budget.
pub const SW_LOAD_FRACTION: f64 = 0.362;
/// Store fraction of the budget.
pub const SW_STORE_FRACTION: f64 = 0.118;
/// Arithmetic fraction of the budget.
pub const SW_ARITH_FRACTION: f64 = 0.210;

/// A per-thread scratch region modeling the stack and packet-local
/// working set: a few cache lines cycled round-robin, so after warm-up
/// every access is an L1 hit (unless a co-runner evicts them — which is
/// exactly the interference effect of Fig. 12).
#[derive(Debug, Clone)]
pub struct Scratch {
    base: Addr,
    lines: u64,
    cursor: u64,
}

impl Scratch {
    /// Number of scratch lines per thread (a realistic stack frame +
    /// packet working set; 16 lines = 1 KiB).
    pub const LINES: u64 = 16;

    /// Allocates a scratch region in `sys`'s memory.
    pub fn new(sys: &mut MemorySystem) -> Self {
        let base = sys.data_mut().alloc_lines(Self::LINES * CACHE_LINE);
        Scratch {
            base,
            lines: Self::LINES,
            cursor: 0,
        }
    }

    /// Pre-loads every scratch line into `core`'s private caches.
    pub fn warm(&self, sys: &mut MemorySystem, core: CoreId) {
        for i in 0..self.lines {
            sys.warm_private(core, self.base + i * CACHE_LINE);
        }
    }

    /// The next scratch address (round-robin over lines, staggered
    /// within the line so consecutive uses differ).
    #[allow(clippy::should_implement_trait)] // not an Iterator: never ends, no Item
    pub fn next(&mut self) -> Addr {
        let line = self.cursor % self.lines;
        let off = (self.cursor / self.lines * 8) % CACHE_LINE;
        self.cursor += 1;
        self.base + line * CACHE_LINE + off
    }

    /// Base address of the region.
    #[must_use]
    pub fn base(&self) -> Addr {
        self.base
    }
}

/// Builds the micro-op program for one software lookup.
///
/// * `trace` — the table accesses the lookup performs (from
///   [`halo_tables::CuckooTable::lookup_traced`] or the SFH equivalent).
/// * `scratch` — the thread's stack/local region for filler accesses.
/// * `key_addr` — where the key bytes live (packet buffer); `None` if the
///   key is already in registers.
///
/// The returned program contains [`SW_LOOKUP_INSTRUCTIONS`] micro-ops in
/// the measured mix (plus or minus rounding), with the dataflow spine
/// `key → hash → bucket → signature compare → key-value → key compare`
/// serialized exactly as the algorithm requires.
pub fn build_sw_lookup(
    trace: &LookupTrace,
    scratch: &mut Scratch,
    key_addr: Option<Addr>,
) -> Program {
    let mut p = Program::with_label("sw_lookup");
    build_sw_lookup_into(trace, scratch, key_addr, &mut p);
    p
}

/// Builds the same program as [`build_sw_lookup`] into a caller-owned
/// buffer, so per-packet hot paths can reuse one allocation across
/// lookups. The buffer is cleared first; its label is set to
/// `"sw_lookup"`.
pub fn build_sw_lookup_into(
    trace: &LookupTrace,
    scratch: &mut Scratch,
    key_addr: Option<Addr>,
    p: &mut Program,
) {
    p.clear();
    p.set_label("sw_lookup");
    let budget_loads = (SW_LOOKUP_INSTRUCTIONS as f64 * SW_LOAD_FRACTION).round() as usize;
    let budget_stores = (SW_LOOKUP_INSTRUCTIONS as f64 * SW_STORE_FRACTION).round() as usize;
    let budget_arith = (SW_LOOKUP_INSTRUCTIONS as f64 * SW_ARITH_FRACTION).round() as usize;
    let budget_other = SW_LOOKUP_INSTRUCTIONS - budget_loads - budget_stores - budget_arith;

    let mut loads = 0usize;
    let mut stores = 0usize;
    let mut arith = 0usize;
    let mut other = 0usize;

    // --- Prologue: function entry, packet bookkeeping (filler). -------
    let mut prologue_last: Vec<UopId> = Vec::new();
    for _ in 0..10 {
        let id = p.load(scratch.next(), &[]);
        loads += 1;
        prologue_last.push(id);
    }
    for _ in 0..6 {
        p.store(scratch.next(), &[]);
        stores += 1;
    }
    for _ in 0..14 {
        p.compute(1, &[]);
        other += 1;
    }

    // --- Key fetch. ----------------------------------------------------
    let key_dep: Vec<UopId> = match key_addr {
        Some(a) => {
            let id = p.load(a, &[]);
            loads += 1;
            vec![id]
        }
        None => prologue_last.clone(),
    };

    // --- Walk the trace, building the dataflow spine. ------------------
    let mut last: Vec<UopId> = key_dep.clone();
    let mut hash_done: Vec<UopId> = Vec::new();
    for step in &trace.steps {
        match *step {
            TraceStep::LoadMeta(a) => {
                // Metadata is read early and independently of the key.
                let id = p.load(a, &[]);
                loads += 1;
                last.push(id);
            }
            TraceStep::SoftLock(a) => {
                // Optimistic-lock version check: the version load is
                // followed by an acquire fence that serializes the
                // pipeline (the 13.1% locking overhead of §3.4).
                let v = p.load(a, &[]);
                loads += 1;
                let fence = p.compute(6, &[v]);
                arith += 1;
                let b = p.compute(1, &[fence]); // branch on version
                other += 1;
                last.push(b);
            }
            TraceStep::Hash => {
                // A serial mix chain over the key words: ~12 dependent
                // multiply/xor/shift stages.
                let mut h = p.compute(3, &last);
                arith += 1;
                for i in 0..11 {
                    let lat = if i % 3 == 0 { 3 } else { 1 };
                    h = p.compute(lat, &[h]);
                    arith += 1;
                }
                hash_done = vec![h];
                last = vec![h];
            }
            TraceStep::LoadBucket(a) => {
                // Bucket fetches depend on the hash, not on each other:
                // DPDK prefetches both candidate buckets.
                let dep = if hash_done.is_empty() {
                    &last
                } else {
                    &hash_done
                };
                let id = p.load(a, dep);
                loads += 1;
                last = vec![id];
            }
            TraceStep::CompareSigs => {
                // SIMD signature compare + mask extraction + branch.
                let c1 = p.compute(1, &last);
                let c2 = p.compute(1, &[c1]);
                arith += 2;
                let br = p.compute(1, &[c2]);
                other += 1;
                last = vec![br];
            }
            TraceStep::LoadKv(a) => {
                let id = p.load(a, &last);
                loads += 1;
                last = vec![id];
            }
            TraceStep::CompareKey => {
                let c1 = p.compute(1, &last);
                let c2 = p.compute(1, &[c1]);
                arith += 2;
                let br = p.compute(1, &[c2]);
                other += 1;
                last = vec![br];
            }
            TraceStep::LoadKey(a) => {
                let id = p.load(a, &[]);
                loads += 1;
                last.push(id);
            }
            TraceStep::StoreResult(a) => {
                p.store(a, &last);
                stores += 1;
            }
        }
    }

    // --- Epilogue + filler to reach the measured mix. -------------------
    // Remaining loads/stores hit the scratch region (stack spills,
    // table-handle fields, rte_mbuf bookkeeping); remaining arithmetic
    // and control flow execute independently alongside.
    while loads < budget_loads {
        p.load(scratch.next(), &[]);
        loads += 1;
    }
    while stores < budget_stores {
        p.store(scratch.next(), &[]);
        stores += 1;
    }
    while arith < budget_arith {
        p.compute(1, &[]);
        arith += 1;
    }
    while other < budget_other {
        p.compute(1, &[]);
        other += 1;
    }
    // Result epilogue: a couple of dependent ops after the spine.
    let fin = p.compute(1, &last);
    p.store(scratch.next(), &[fin]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_mem::MachineConfig;
    use halo_tables::{CuckooTable, FlowKey};

    fn traced_lookup(locking: bool) -> (MemorySystem, LookupTrace, Scratch) {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let mut table = CuckooTable::create(sys.data_mut(), 256, 13);
        for id in 0..100 {
            table
                .insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id)
                .unwrap();
        }
        let tr = table.lookup_traced(sys.data_mut(), &FlowKey::synthetic(5, 13), locking);
        let scratch = Scratch::new(&mut sys);
        (sys, tr, scratch)
    }

    #[test]
    fn program_matches_table1_mix() {
        let (_sys, tr, mut scratch) = traced_lookup(true);
        let p = build_sw_lookup(&tr, &mut scratch, None);
        let (l, s, c) = p.mix();
        let total = p.len();
        // Within a few uops of the 210 budget (epilogue adds 2).
        assert!(
            (SW_LOOKUP_INSTRUCTIONS..=SW_LOOKUP_INSTRUCTIONS + 8).contains(&total),
            "total {total}"
        );
        let lf = l as f64 / total as f64;
        let sf = s as f64 / total as f64;
        let cf = c as f64 / total as f64;
        assert!((lf - SW_LOAD_FRACTION).abs() < 0.03, "load frac {lf}");
        assert!((sf - SW_STORE_FRACTION).abs() < 0.03, "store frac {sf}");
        // computes = arithmetic + others
        assert!((cf - (1.0 - SW_LOAD_FRACTION - SW_STORE_FRACTION)).abs() < 0.04);
    }

    #[test]
    fn spine_contains_real_table_addresses() {
        let (_sys, tr, mut scratch) = traced_lookup(false);
        let p = build_sw_lookup(&tr, &mut scratch, None);
        let table_addrs: Vec<_> = tr.addresses().collect();
        let prog_addrs: Vec<_> = p
            .uops()
            .iter()
            .filter_map(|u| match u.kind {
                crate::uop::UopKind::Load { addr } => Some(addr),
                _ => None,
            })
            .collect();
        for a in table_addrs {
            assert!(prog_addrs.contains(&a), "missing table access {a}");
        }
    }

    #[test]
    fn scratch_round_robins_within_bounds() {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let mut s = Scratch::new(&mut sys);
        let base = s.base();
        for _ in 0..100 {
            let a = s.next();
            assert!(a.0 >= base.0);
            assert!(a.0 < base.0 + Scratch::LINES * CACHE_LINE);
        }
    }

    #[test]
    fn locking_trace_is_longer() {
        let (_sys, tr_plain, mut s1) = traced_lookup(false);
        let (_sys2, tr_lock, mut s2) = traced_lookup(true);
        let p_plain = build_sw_lookup(&tr_plain, &mut s1, None);
        let p_lock = build_sw_lookup(&tr_lock, &mut s2, None);
        // Same budget, but the locking variant has more *real* (version
        // line) loads in its spine.
        let real = |p: &Program, tr: &LookupTrace| {
            let addrs: Vec<_> = tr.addresses().collect();
            p.uops()
                .iter()
                .filter(|u| match u.kind {
                    crate::uop::UopKind::Load { addr } => addrs.contains(&addr),
                    _ => false,
                })
                .count()
        };
        assert!(real(&p_lock, &tr_lock) > real(&p_plain, &tr_plain));
    }
}

/// Builds a DPDK-style *bulk* lookup program: `traces` lookups software-
/// pipelined so that each lookup's bucket/kv fetches are prefetched
/// while the previous lookups compute (`rte_hash_lookup_bulk`). The
/// program issues all hash chains first, then all bucket loads (which
/// can miss concurrently, bounded by the MSHRs), then the key-value
/// probes — trading instruction count for memory-level parallelism.
pub fn build_sw_lookup_bulk(traces: &[&LookupTrace], scratch: &mut Scratch) -> Program {
    let mut p = Program::with_label("sw_lookup_bulk");
    // Shared prologue (function entry, loop setup).
    for _ in 0..8 {
        p.load(scratch.next(), &[]);
    }
    for _ in 0..10 {
        p.compute(1, &[]);
    }

    // Stage 1: hash every key (independent chains overlap on the ALUs).
    let mut hash_ids: Vec<UopId> = Vec::with_capacity(traces.len());
    for _ in traces {
        let mut h = p.compute(3, &[]);
        for i in 0..11 {
            let lat = if i % 3 == 0 { 3 } else { 1 };
            h = p.compute(lat, &[h]);
        }
        hash_ids.push(h);
    }

    // Stage 2: prefetch + load every lookup's bucket lines (independent
    // across lookups -> MLP).
    let mut bucket_ids: Vec<Vec<UopId>> = Vec::with_capacity(traces.len());
    for (li, tr) in traces.iter().enumerate() {
        let mut ids = Vec::new();
        for step in &tr.steps {
            if let TraceStep::LoadBucket(a) = *step {
                ids.push(p.load(a, &[hash_ids[li]]));
            }
        }
        bucket_ids.push(ids);
    }

    // Stage 3: signature compares + key-value probes per lookup.
    for (li, tr) in traces.iter().enumerate() {
        let mut last: Vec<UopId> = bucket_ids[li].clone();
        for step in &tr.steps {
            match *step {
                TraceStep::CompareSigs | TraceStep::CompareKey => {
                    let c = p.compute(1, &last);
                    let b = p.compute(1, &[c]);
                    last = vec![b];
                }
                TraceStep::LoadKv(a) => {
                    let id = p.load(a, &last);
                    last = vec![id];
                }
                TraceStep::SoftLock(a) => {
                    let v = p.load(a, &[]);
                    let f = p.compute(6, &[v]);
                    last.push(f);
                }
                TraceStep::LoadMeta(a) => {
                    p.load(a, &[]);
                }
                _ => {}
            }
        }
        // Result store per lookup.
        p.store(scratch.next(), &last);
    }

    // Per-lookup loop bookkeeping (smaller than the scalar path's
    // per-call overhead: that is the point of the bulk API).
    for _ in 0..traces.len() * 20 {
        p.compute(1, &[]);
    }
    for _ in 0..traces.len() * 6 {
        p.load(scratch.next(), &[]);
    }
    p
}

#[cfg(test)]
mod bulk_tests {
    use super::*;
    use halo_mem::{MachineConfig, MemorySystem};
    use halo_tables::CuckooTable;

    #[test]
    fn bulk_beats_scalar_on_llc_resident_tables() {
        use crate::core::CoreModel;
        use halo_mem::CoreId;
        use halo_sim::Cycle;
        use halo_tables::FlowKey;

        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut table = CuckooTable::with_capacity_for(sys.data_mut(), 20_000, 0.8, 13);
        for id in 0..20_000u64 {
            let _ = table.insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id);
        }
        for a in table.all_lines().collect::<Vec<_>>() {
            sys.warm_llc(a);
        }
        let mut scratch = Scratch::new(&mut sys);
        scratch.warm(&mut sys, CoreId(0));
        let mut core = CoreModel::new(CoreId(0), sys.config());

        // Scalar: 8 sequential lookups.
        let mut t = Cycle(0);
        let start = t;
        for id in 0..8u64 {
            let tr = table.lookup_traced(sys.data_mut(), &FlowKey::synthetic(id * 7, 13), true);
            let prog = build_sw_lookup(&tr, &mut scratch, None);
            t = core.run(&prog, &mut sys, t).finish;
        }
        let scalar = (t - start).0;

        // Bulk: the same 8 in one pipelined program.
        let traces: Vec<_> = (0..8u64)
            .map(|id| table.lookup_traced(sys.data_mut(), &FlowKey::synthetic(id * 7, 13), true))
            .collect();
        let refs: Vec<&LookupTrace> = traces.iter().collect();
        let prog = build_sw_lookup_bulk(&refs, &mut scratch);
        let r = core.run(&prog, &mut sys, Cycle(0));
        let bulk = (r.finish - r.start).0;

        assert!(
            bulk * 10 < scalar * 9,
            "bulk ({bulk}) should beat 8 scalar lookups ({scalar}) by >10%"
        );
        // Results unchanged.
        for tr in &traces {
            assert!(tr.result.is_some());
        }
    }
}
