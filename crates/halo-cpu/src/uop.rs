//! Micro-op programs: small dependency DAGs of compute and memory
//! operations, the unit of work the core model schedules.

use halo_mem::Addr;

/// Index of a micro-op within its [`Program`].
pub type UopId = u32;

/// The operation a micro-op performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopKind {
    /// An ALU/branch/other non-memory operation with a fixed execution
    /// latency (1 for simple ALU, 3–5 for multiplies).
    Compute {
        /// Execution latency in cycles.
        latency: u64,
    },
    /// A load from simulated memory.
    Load {
        /// The byte address read.
        addr: Addr,
    },
    /// A store to simulated memory.
    Store {
        /// The byte address written.
        addr: Addr,
    },
}

/// One micro-op: an operation plus the set of earlier micro-ops whose
/// results it consumes.
#[derive(Debug, Clone)]
pub struct Uop {
    /// What the op does.
    pub kind: UopKind,
    /// Data dependencies (indices of earlier uops in the same program).
    pub deps: Vec<UopId>,
}

/// A dependency DAG of micro-ops in program order.
///
/// # Examples
///
/// ```
/// use halo_cpu::Program;
/// use halo_mem::Addr;
///
/// let mut p = Program::new();
/// let k = p.load(Addr(64), &[]);
/// let h = p.compute(3, &[k]);     // hash depends on the key load
/// let b = p.load(Addr(128), &[h]); // bucket fetch depends on the hash
/// let _ = p.compute(1, &[b]);
/// assert_eq!(p.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Program {
    uops: Vec<Uop>,
    /// Trace label: the op-class name spans recorded for this program
    /// carry (static so the tracer can intern it without allocating).
    label: &'static str,
}

impl Default for Program {
    fn default() -> Self {
        Program {
            uops: Vec::new(),
            label: "program",
        }
    }
}

impl Program {
    /// Creates an empty program.
    #[must_use]
    pub fn new() -> Self {
        Program::default()
    }

    /// Creates an empty program with a trace label.
    #[must_use]
    pub fn with_label(label: &'static str) -> Self {
        Program {
            uops: Vec::new(),
            label,
        }
    }

    /// Sets the trace label.
    pub fn set_label(&mut self, label: &'static str) {
        self.label = label;
    }

    /// Empties the program while keeping its uop allocation, so a caller
    /// can rebuild into the same buffer on every packet without touching
    /// the allocator. The label is preserved.
    pub fn clear(&mut self) {
        self.uops.clear();
    }

    /// The trace label spans for this program are recorded under.
    #[must_use]
    pub fn label(&self) -> &'static str {
        self.label
    }

    fn push(&mut self, kind: UopKind, deps: &[UopId]) -> UopId {
        let id = self.uops.len() as UopId;
        for &d in deps {
            assert!(d < id, "dependency on a later uop");
        }
        self.uops.push(Uop {
            kind,
            deps: deps.to_vec(),
        });
        id
    }

    /// Appends a compute uop.
    pub fn compute(&mut self, latency: u64, deps: &[UopId]) -> UopId {
        self.push(UopKind::Compute { latency }, deps)
    }

    /// Appends a load uop.
    pub fn load(&mut self, addr: Addr, deps: &[UopId]) -> UopId {
        self.push(UopKind::Load { addr }, deps)
    }

    /// Appends a store uop.
    pub fn store(&mut self, addr: Addr, deps: &[UopId]) -> UopId {
        self.push(UopKind::Store { addr }, deps)
    }

    /// Appends every uop of `other`, shifting its dependencies, and makes
    /// its roots depend on `after` (sequencing two logical operations).
    /// Returns the id of `other`'s last uop (or `after`'s last element /
    /// 0-sized fallback if `other` is empty).
    pub fn append(&mut self, other: &Program, after: &[UopId]) -> Option<UopId> {
        let base = self.uops.len() as UopId;
        for uop in &other.uops {
            let mut deps: Vec<UopId> = uop.deps.iter().map(|d| d + base).collect();
            if uop.deps.is_empty() {
                deps.extend_from_slice(after);
            }
            self.uops.push(Uop {
                kind: uop.kind,
                deps,
            });
        }
        if other.uops.is_empty() {
            None
        } else {
            Some(self.uops.len() as UopId - 1)
        }
    }

    /// The micro-ops in program order.
    #[must_use]
    pub fn uops(&self) -> &[Uop] {
        &self.uops
    }

    /// Number of micro-ops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Counts of (loads, stores, computes).
    #[must_use]
    pub fn mix(&self) -> (usize, usize, usize) {
        let mut l = 0;
        let mut s = 0;
        let mut c = 0;
        for u in &self.uops {
            match u.kind {
                UopKind::Load { .. } => l += 1,
                UopKind::Store { .. } => s += 1,
                UopKind::Compute { .. } => c += 1,
            }
        }
        (l, s, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_mix() {
        let mut p = Program::new();
        let a = p.load(Addr(64), &[]);
        let b = p.compute(1, &[a]);
        p.store(Addr(128), &[b]);
        assert_eq!(p.mix(), (1, 1, 1));
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "dependency on a later uop")]
    fn forward_dependency_rejected() {
        let mut p = Program::new();
        p.compute(1, &[5]);
    }

    #[test]
    fn append_rebases_dependencies() {
        let mut head = Program::new();
        let root = head.compute(1, &[]);
        let mut tail = Program::new();
        let t0 = tail.load(Addr(64), &[]);
        tail.compute(1, &[t0]);
        let last = head.append(&tail, &[root]).unwrap();
        assert_eq!(last, 2);
        // tail's root now depends on head's root.
        assert_eq!(head.uops()[1].deps, vec![root]);
        // tail's second op depends on the rebased first.
        assert_eq!(head.uops()[2].deps, vec![1]);
    }

    #[test]
    fn append_empty_returns_none() {
        let mut head = Program::new();
        head.compute(1, &[]);
        assert!(head.append(&Program::new(), &[0]).is_none());
    }
}
