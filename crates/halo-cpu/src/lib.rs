//! # halo-cpu
//!
//! The out-of-order core timing model of the HALO reproduction: micro-op
//! dependency DAGs ([`Program`]), a bounded-window list scheduler
//! ([`CoreModel`]) honoring issue width, ROB/LQ/SQ occupancy and MSHR
//! limits (Table 2 of the paper), and [`build_sw_lookup`], which turns a
//! table [`halo_tables::LookupTrace`] into the ~210-instruction x86
//! program that Table 1 measures for a DPDK cuckoo lookup.
//!
//! # Examples
//!
//! ```
//! use halo_cpu::{build_sw_lookup, CoreModel, Scratch};
//! use halo_mem::{CoreId, MachineConfig, MemorySystem};
//! use halo_sim::Cycle;
//! use halo_tables::{CuckooTable, FlowKey};
//!
//! let mut sys = MemorySystem::new(MachineConfig::small());
//! let mut table = CuckooTable::create(sys.data_mut(), 256, 13);
//! let key = FlowKey::synthetic(1, 13);
//! table.insert(sys.data_mut(), &key, 42).unwrap();
//!
//! let trace = table.lookup_traced(sys.data_mut(), &key, true);
//! let mut scratch = Scratch::new(&mut sys);
//! scratch.warm(&mut sys, CoreId(0));
//! let prog = build_sw_lookup(&trace, &mut scratch, None);
//!
//! let mut core = CoreModel::new(CoreId(0), sys.config());
//! let report = core.run(&prog, &mut sys, Cycle(0));
//! assert!(report.duration().0 > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod core;
mod swlookup;
mod uop;

pub use crate::core::{CoreModel, ExecReport, MemProfile};
pub use swlookup::{
    build_sw_lookup, build_sw_lookup_bulk, build_sw_lookup_into, Scratch, SW_ARITH_FRACTION,
    SW_LOAD_FRACTION, SW_LOOKUP_INSTRUCTIONS, SW_STORE_FRACTION,
};
pub use uop::{Program, Uop, UopId, UopKind};
