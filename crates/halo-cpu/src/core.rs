//! The out-of-order core timing model.
//!
//! A bounded-window list scheduler: micro-ops issue in dataflow order
//! subject to (a) issue width, (b) the reorder-buffer window, (c)
//! load/store-queue occupancy, and (d) per-core MSHRs for cache misses.
//! This captures the two effects the paper's arguments rest on — memory
//! -level parallelism for independent loads, and serialization of
//! dependent pointer chases — without simulating a full pipeline.

use crate::uop::{Program, UopKind};
use halo_mem::{AccessKind, CoreId, CoreMem, HitLevel};
use halo_sim::{Cycle, Cycles, OutstandingWindow};

/// Per-level access counters plus attributed stall cycles.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemProfile {
    /// Loads+stores satisfied by L1.
    pub l1: u64,
    /// ... by L2.
    pub l2: u64,
    /// ... by LLC (clean).
    pub llc: u64,
    /// ... by LLC after a remote dirty snoop.
    pub llc_dirty: u64,
    /// ... by DRAM.
    pub dram: u64,
    /// Excess cycles (beyond an L1 hit) spent on accesses that missed L2,
    /// i.e. the L2/LLC-miss penalty the paper's Fig. 4 attributes stalls
    /// to. Upper bound: the OoO window hides part of this in practice.
    pub l2llc_miss_penalty: Cycles,
}

impl MemProfile {
    fn note(&mut self, level: HitLevel, excess: Cycles, l1_lat: Cycles) {
        match level {
            HitLevel::L1 => self.l1 += 1,
            HitLevel::L2 => self.l2 += 1,
            HitLevel::Llc => self.llc += 1,
            HitLevel::LlcRemoteDirty => self.llc_dirty += 1,
            HitLevel::Dram => self.dram += 1,
        }
        // L2 hits cost little; count only genuine L2-miss penalty.
        if level > HitLevel::L2 {
            self.l2llc_miss_penalty += excess - l1_lat.min(excess);
        }
    }

    /// Total memory operations profiled.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.l1 + self.l2 + self.llc + self.llc_dirty + self.dram
    }
}

/// Result of executing one program.
#[derive(Debug, Clone, Copy)]
pub struct ExecReport {
    /// Cycle the first uop issued.
    pub start: Cycle,
    /// Cycle the last uop completed.
    pub finish: Cycle,
    /// Memory behaviour.
    pub mem: MemProfile,
    /// Number of retired micro-ops.
    pub retired: u64,
}

impl ExecReport {
    /// Wall-clock duration of the program.
    #[must_use]
    pub fn duration(&self) -> Cycles {
        self.finish - self.start
    }
}

/// An out-of-order core executing [`Program`]s against a
/// [`halo_mem::MemorySystem`] (or any other [`CoreMem`] context, such as
/// an epoch-window core).
///
/// # Examples
///
/// ```
/// use halo_cpu::{CoreModel, Program};
/// use halo_mem::{CoreId, MachineConfig, MemorySystem};
/// use halo_sim::Cycle;
///
/// let mut sys = MemorySystem::new(MachineConfig::small());
/// let buf = sys.data_mut().alloc_lines(64);
/// let mut core = CoreModel::new(CoreId(0), sys.config());
/// let mut p = Program::new();
/// let x = p.load(buf, &[]);
/// p.compute(1, &[x]);
/// let report = core.run(&p, &mut sys, Cycle(0));
/// assert!(report.finish > Cycle(0));
/// assert_eq!(report.retired, 2);
/// ```
#[derive(Debug)]
pub struct CoreModel {
    core: CoreId,
    issue_width: usize,
    rob: usize,
    lq: usize,
    sq: usize,
    mshr: OutstandingWindow,
    /// Monotonic local clock: a core cannot issue a new program before
    /// its previous one finished issuing (programs on the same hardware
    /// thread serialize at retire).
    ready_at: Cycle,
    /// Scratch reused across [`run`](Self::run) calls so the scheduler
    /// allocates nothing per program (the vswitch runs three programs
    /// per packet).
    completion: Vec<Cycle>,
    load_times: Vec<Cycle>,
    store_times: Vec<Cycle>,
}

impl CoreModel {
    /// Creates a core model for `core` using `cfg`'s pipeline limits.
    #[must_use]
    pub fn new(core: CoreId, cfg: &halo_mem::MachineConfig) -> Self {
        CoreModel {
            core,
            issue_width: cfg.issue_width,
            rob: cfg.rob,
            lq: cfg.lq,
            sq: cfg.sq,
            mshr: OutstandingWindow::new(cfg.mshrs),
            ready_at: Cycle::ZERO,
            completion: Vec::new(),
            load_times: Vec::new(),
            store_times: Vec::new(),
        }
    }

    /// The core this model drives.
    #[must_use]
    pub fn id(&self) -> CoreId {
        self.core
    }

    /// The core's local ready time (end of its last program).
    #[must_use]
    pub fn ready_at(&self) -> Cycle {
        self.ready_at
    }

    /// Resets the local clock (between independent experiments).
    pub fn reset(&mut self) {
        self.ready_at = Cycle::ZERO;
        self.mshr.reset();
    }

    /// Executes `prog` starting no earlier than `at`, returning the
    /// timing report. The core's local clock advances to the finish time.
    ///
    /// Generic over [`CoreMem`], so the same scheduler drives the classic
    /// [`halo_mem::MemorySystem`] and a per-thread
    /// [`halo_mem::EpochCore`] shard identically.
    pub fn run<S: CoreMem>(&mut self, prog: &Program, sys: &mut S, at: Cycle) -> ExecReport {
        let base = at.max(self.ready_at);
        let n = prog.len();
        self.completion.clear();
        self.completion.reserve(n);
        let mut mem_prof = MemProfile::default();
        let l1_lat = sys.config().l1_latency;

        // Sliding windows: uop i cannot issue before uop i-rob completed
        // (ROB full), nor before the (i_l - lq)'th load completed, etc.
        self.load_times.clear();
        self.store_times.clear();
        let mut last_finish = base;
        let mut first_issue: Option<Cycle> = None;

        for (i, uop) in prog.uops().iter().enumerate() {
            // Dataflow readiness.
            let mut ready = base;
            for &d in &uop.deps {
                ready = ready.max(self.completion[d as usize]);
            }
            // ROB window.
            if i >= self.rob {
                ready = ready.max(self.completion[i - self.rob]);
            }
            // Issue bandwidth: at most issue_width uops per cycle,
            // approximated by a fixed program-order pacing floor.
            let pace = base + Cycles((i / self.issue_width) as u64);
            ready = ready.max(pace);

            let done = match uop.kind {
                UopKind::Compute { latency } => ready + Cycles(latency),
                UopKind::Load { addr } => {
                    if self.load_times.len() >= self.lq {
                        let idx = self.load_times.len() - self.lq;
                        ready = ready.max(self.load_times[idx]);
                    }
                    let issue = self.mshr.acquire(ready);
                    let out = sys.access(self.core, addr, AccessKind::Load, issue);
                    self.mshr.commit(out.complete);
                    mem_prof.note(out.level, out.complete - issue, l1_lat);
                    self.load_times.push(out.complete);
                    out.complete
                }
                UopKind::Store { addr } => {
                    if self.store_times.len() >= self.sq {
                        let idx = self.store_times.len() - self.sq;
                        ready = ready.max(self.store_times[idx]);
                    }
                    let issue = self.mshr.acquire(ready);
                    let out = sys.access(self.core, addr, AccessKind::Store, issue);
                    self.mshr.commit(out.complete);
                    mem_prof.note(out.level, out.complete - issue, l1_lat);
                    self.store_times.push(out.complete);
                    out.complete
                }
            };
            if first_issue.is_none() {
                first_issue = Some(ready);
            }
            self.completion.push(done);
            last_finish = last_finish.max(done);
        }

        self.ready_at = last_finish;
        if sys.trace_enabled() {
            sys.trace_span("core", prog.label(), base, last_finish);
        }
        ExecReport {
            start: first_issue.unwrap_or(base),
            finish: last_finish,
            mem: mem_prof,
            retired: n as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_mem::MachineConfig;
    use halo_mem::MemorySystem;

    fn setup() -> (MemorySystem, CoreModel) {
        let sys = MemorySystem::new(MachineConfig::small());
        let core = CoreModel::new(CoreId(0), sys.config());
        (sys, core)
    }

    #[test]
    fn independent_loads_overlap() {
        let (mut sys, mut core) = setup();
        // Warm two lines into the LLC, not private caches.
        let a = sys.data_mut().alloc_lines(64);
        let b = sys.data_mut().alloc_lines(64);
        sys.warm_llc(a);
        sys.warm_llc(b);

        let mut par = Program::new();
        par.load(a, &[]);
        par.load(b, &[]);
        let r_par = core.run(&par, &mut sys, Cycle(0));

        let mut sys2 = MemorySystem::new(MachineConfig::small());
        let a2 = sys2.data_mut().alloc_lines(64);
        let b2 = sys2.data_mut().alloc_lines(64);
        sys2.warm_llc(a2);
        sys2.warm_llc(b2);
        let mut core2 = CoreModel::new(CoreId(0), sys2.config());
        let mut seq = Program::new();
        let x = seq.load(a2, &[]);
        seq.load(b2, &[x]);
        let r_seq = core2.run(&seq, &mut sys2, Cycle(0));

        assert!(
            r_par.duration().0 < r_seq.duration().0,
            "parallel {} should beat serial {}",
            r_par.duration(),
            r_seq.duration()
        );
    }

    #[test]
    fn compute_chain_latency_adds_up() {
        let (mut sys, mut core) = setup();
        let mut p = Program::new();
        let mut last = p.compute(3, &[]);
        for _ in 0..9 {
            last = p.compute(3, &[last]);
        }
        let r = core.run(&p, &mut sys, Cycle(0));
        assert!(
            r.duration().0 >= 30,
            "10 chained 3-cycle ops: {}",
            r.duration()
        );
    }

    #[test]
    fn issue_width_paces_independent_compute() {
        let (mut sys, mut core) = setup();
        let mut p = Program::new();
        for _ in 0..400 {
            p.compute(1, &[]);
        }
        let r = core.run(&p, &mut sys, Cycle(0));
        // 400 independent 1-cycle ops on a 4-wide core: >= 100 cycles.
        assert!(r.duration().0 >= 100);
        assert!(r.duration().0 <= 120, "pacing too slow: {}", r.duration());
    }

    #[test]
    fn mem_profile_counts_levels() {
        let (mut sys, mut core) = setup();
        let a = sys.data_mut().alloc_lines(64);
        let mut p = Program::new();
        let x = p.load(a, &[]); // cold: DRAM
        p.load(a, &[x]); // second: L1
        let r = core.run(&p, &mut sys, Cycle(0));
        assert_eq!(r.mem.dram, 1);
        assert_eq!(r.mem.l1, 1);
        assert_eq!(r.mem.total(), 2);
        assert!(r.mem.l2llc_miss_penalty.0 > 0);
    }

    #[test]
    fn core_clock_advances_between_programs() {
        let (mut sys, mut core) = setup();
        let mut p = Program::new();
        p.compute(5, &[]);
        let r1 = core.run(&p, &mut sys, Cycle(0));
        let r2 = core.run(&p, &mut sys, Cycle(0));
        assert!(r2.finish >= r1.finish);
        assert_eq!(core.ready_at(), r2.finish);
        core.reset();
        assert_eq!(core.ready_at(), Cycle::ZERO);
    }

    #[test]
    fn tracing_records_labeled_core_spans() {
        let (mut sys, mut core) = setup();
        sys.enable_tracing(1024);
        let mut p = Program::with_label("unit_prog");
        p.compute(5, &[]);
        let r = core.run(&p, &mut sys, Cycle(0));
        let h = sys
            .tracer()
            .histogram("core", "unit_prog")
            .expect("core span recorded under the program label");
        assert_eq!(h.count(), 1);
        // Span runs from the issue base (cycle 0 here) to the finish.
        assert_eq!(h.max(), r.finish.0);
        // Unlabeled programs fall back to the default label.
        let mut q = Program::new();
        q.compute(1, &[]);
        core.run(&q, &mut sys, Cycle(0));
        assert!(sys.tracer().histogram("core", "program").is_some());
    }

    #[test]
    fn mshr_limit_serializes_excess_misses() {
        let mut cfg = MachineConfig::small();
        cfg.mshrs = 2;
        let mut sys = MemorySystem::new(cfg);
        let mut core = CoreModel::new(CoreId(0), sys.config());
        // 8 independent cold loads with only 2 MSHRs.
        let mut p = Program::new();
        let base = sys.data_mut().alloc_lines(64 * 64);
        for i in 0..8u64 {
            p.load(base + i * 64, &[]);
        }
        let r = core.run(&p, &mut sys, Cycle(0));
        // With 2 MSHRs, 8 DRAM misses need >= 4 serial DRAM round trips.
        let dram = sys.config().dram_latency.0;
        assert!(
            r.duration().0 >= 3 * dram,
            "MSHR limit not enforced: {}",
            r.duration()
        );
    }
}
