//! Wildcard-table backend selection: the [`WildcardTable`] seam the
//! MegaFlow/OpenFlow layer sits behind, mirroring what
//! [`FlowTable`](halo_tables::FlowTable) did for exact match.
//!
//! Every wildcard backend answers the same questions — install/remove a
//! masked or range rule, classify a key, expose the traced probes and
//! the per-probe table addresses HALO dispatch needs — so the datapath
//! ([`crate::LookupExecutor::search`], [`crate::DatapathCore`]), the
//! vswitch, and the multicore PMD loop can select the wildcard
//! implementation at runtime exactly the way
//! [`TableBackend`](crate::TableBackend)/[`ExactTable`](crate::ExactTable)
//! selects exact-match backends:
//!
//! * [`WildcardBackend::Tss`] — tuple space search ([`TssRangeTable`]
//!   wrapping a [`TupleSpace`]): one hash probe per distinct mask;
//!   range rules are installed via prefix expansion
//!   ([`RangeRule::tss_expansion`]), so range-heavy rulesets multiply
//!   both the mask count and the entry count.
//! * [`WildcardBackend::Rvh`] — range-vector hashing ([`RvhTable`]):
//!   a constant [`RVH_VECTORS`](halo_classify::RVH_VECTORS) marker
//!   probes per classification regardless of ruleset shape.
//!
//! Adding a backend means implementing [`WildcardTable`] and adding a
//! [`WildcardBackend`] variant — see DESIGN.md §14.

use std::collections::HashMap;

use halo_classify::{
    FieldRange, PrefixRule, RangeRule, RuleError, RuleMatch, RvhTable, SearchMode, Tuple,
    TupleSpace, WildcardMask, MINIFLOW_LEN, NUM_FIELDS,
};
use halo_mem::{Addr, SimMemory};
use halo_tables::{FlowKey, FlowTable, LookupTrace, TableFullError};

use crate::backend::{ExactTable, TableBackend};

/// Why a wildcard-rule operation failed. The table is unchanged in
/// every case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WildcardError {
    /// The action does not fit the 48-bit encodable range.
    ActionRange(halo_classify::ActionRangeError),
    /// A backing table cannot place the rule.
    Full(TableFullError),
    /// A masked insert named a mask no tuple carries (the tuple space
    /// fixes its masks at construction).
    UnknownMask,
    /// The backend cannot express this rule form (e.g. range rules on a
    /// plain tuple space without expansion support).
    UnsupportedRanges,
}

impl std::fmt::Display for WildcardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WildcardError::ActionRange(e) => write!(f, "{e}"),
            WildcardError::Full(_) => write!(f, "wildcard table full"),
            WildcardError::UnknownMask => write!(f, "no tuple carries this mask"),
            WildcardError::UnsupportedRanges => {
                write!(f, "backend cannot express range rules")
            }
        }
    }
}

impl std::error::Error for WildcardError {}

impl From<RuleError> for WildcardError {
    fn from(e: RuleError) -> Self {
        match e {
            RuleError::ActionRange(a) => WildcardError::ActionRange(a),
            RuleError::Full(t) => WildcardError::Full(t),
        }
    }
}

impl From<TableFullError> for WildcardError {
    fn from(e: TableFullError) -> Self {
        WildcardError::Full(e)
    }
}

/// An object-safe wildcard classification table: the MegaFlow/OpenFlow
/// slot every backend plugs into.
///
/// Rules arrive in two forms — `(mask, key)` pairs (the native tuple
/// space vocabulary) and [`RangeRule`]s (per-field intervals) — and a
/// backend may support either or both. Classification resolves on
/// (priority desc, then the backend's pinned deterministic tie-break);
/// differential drivers use unique priorities so backends cannot
/// legally diverge.
pub trait WildcardTable: std::fmt::Debug {
    /// Stable backend name (figure rows and JSON).
    fn name(&self) -> &'static str;

    /// Number of installed rules.
    fn rules(&self) -> usize;

    /// Hash probes a single classification performs (the tuple count
    /// for TSS, the vector count for RVH).
    fn probes(&self) -> usize;

    /// Installs a masked rule, returning the `(priority, action)` it
    /// replaced if the masked key was already installed.
    ///
    /// # Errors
    ///
    /// [`WildcardError::UnknownMask`] if no probe slot carries `mask`,
    /// [`WildcardError::ActionRange`] / [`WildcardError::Full`] from
    /// the backing table. The table is unchanged on error.
    fn insert_masked(
        &mut self,
        mem: &mut SimMemory,
        mask: &WildcardMask,
        key: &FlowKey,
        priority: u16,
        action: u64,
    ) -> Result<Option<(u16, u64)>, WildcardError>;

    /// Removes the masked rule, returning its `(priority, action)` if
    /// it was installed.
    fn remove_masked(
        &mut self,
        mem: &mut SimMemory,
        mask: &WildcardMask,
        key: &FlowKey,
    ) -> Option<(u16, u64)>;

    /// Installs a range rule, returning the `(priority, action)` of the
    /// identically-shaped rule it replaced, if any.
    ///
    /// # Errors
    ///
    /// [`WildcardError::UnsupportedRanges`] for backends without a
    /// range representation; otherwise as [`Self::insert_masked`].
    fn insert_range(
        &mut self,
        mem: &mut SimMemory,
        rule: &RangeRule,
    ) -> Result<Option<(u16, u64)>, WildcardError>;

    /// Removes the range rule with exactly these intervals, returning
    /// its `(priority, action)` if it was installed.
    fn remove_range(&mut self, mem: &mut SimMemory, rule: &RangeRule) -> Option<(u16, u64)>;

    /// Functional classification.
    fn classify(&self, mem: &SimMemory, key: &FlowKey) -> Option<RuleMatch> {
        self.classify_traced(mem, key, false).0
    }

    /// Classification returning the per-probe lookup traces actually
    /// performed, in probe order — the contract
    /// [`crate::LookupExecutor::search`] prices.
    fn classify_traced(
        &self,
        mem: &SimMemory,
        key: &FlowKey,
        software_locking: bool,
    ) -> (Option<RuleMatch>, Vec<(usize, LookupTrace)>);

    /// The dispatchable metadata-line address of probe slot `probe`
    /// (what HALO's `RAX` implicit operand holds). `None` when the slot
    /// has no in-memory table.
    fn probe_meta_addr(&self, probe: usize) -> Option<Addr>;

    /// The optimistic-lock version counter of probe slot `probe`, when
    /// the backing table models one.
    fn probe_version_addr(&self, probe: usize) -> Option<Addr>;

    /// Every simulated-memory line the table occupies (LLC warming and
    /// footprint accounting).
    fn memory_lines(&self) -> Vec<Addr>;
}

impl<T: FlowTable> WildcardTable for TupleSpace<T> {
    fn name(&self) -> &'static str {
        "tss"
    }

    fn rules(&self) -> usize {
        self.total_rules()
    }

    fn probes(&self) -> usize {
        self.tuples().len()
    }

    fn insert_masked(
        &mut self,
        mem: &mut SimMemory,
        mask: &WildcardMask,
        key: &FlowKey,
        priority: u16,
        action: u64,
    ) -> Result<Option<(u16, u64)>, WildcardError> {
        let idx = self
            .tuple_with_mask(mask)
            .ok_or(WildcardError::UnknownMask)?;
        Ok(self.insert_rule(mem, idx, key, priority, action)?)
    }

    fn remove_masked(
        &mut self,
        mem: &mut SimMemory,
        mask: &WildcardMask,
        key: &FlowKey,
    ) -> Option<(u16, u64)> {
        let idx = self.tuple_with_mask(mask)?;
        self.remove_rule(mem, idx, key)
    }

    fn insert_range(
        &mut self,
        _mem: &mut SimMemory,
        _rule: &RangeRule,
    ) -> Result<Option<(u16, u64)>, WildcardError> {
        Err(WildcardError::UnsupportedRanges)
    }

    fn remove_range(&mut self, _mem: &mut SimMemory, _rule: &RangeRule) -> Option<(u16, u64)> {
        None
    }

    fn classify_traced(
        &self,
        mem: &SimMemory,
        key: &FlowKey,
        software_locking: bool,
    ) -> (Option<RuleMatch>, Vec<(usize, LookupTrace)>) {
        TupleSpace::classify_traced(self, mem, key, software_locking)
    }

    fn probe_meta_addr(&self, probe: usize) -> Option<Addr> {
        self.tuples().get(probe).and_then(|t| t.table().meta_addr())
    }

    fn probe_version_addr(&self, probe: usize) -> Option<Addr> {
        self.tuples()
            .get(probe)
            .and_then(|t| t.table().version_addr())
    }

    fn memory_lines(&self) -> Vec<Addr> {
        self.tuples()
            .iter()
            .flat_map(|t| t.table().warm_lines())
            .collect()
    }
}

/// Tuple space search with range-rule support via prefix expansion.
///
/// Masked rules pass straight through to the wrapped [`TupleSpace`].
/// A [`RangeRule`] is decomposed into aligned prefixes per field and
/// cross-producted ([`RangeRule::tss_expansion`]); each expansion
/// element is installed in the tuple carrying its mask (created on
/// first use, the way OVS grows MegaFlow tuples). Because expansion
/// regions of different rules overlap, every installed entry carries
/// the *maximum-priority* shadow rule fully covering that entry's
/// region — sound and complete under [`SearchMode::HighestPriority`],
/// since each matching rule's own expansion covers every key it
/// matches.
///
/// Mixing masked-rule and range-rule APIs on one instance is not
/// supported (the shadow bookkeeping only tracks range rules); the
/// drivers use one vocabulary per table, as the vswitch does.
#[derive(Debug)]
pub struct TssRangeTable {
    space: TupleSpace<ExactTable>,
    backend: TableBackend,
    entries_per_tuple: usize,
    /// Every installed range rule, in insertion order (stable indices —
    /// removal leaves `None`).
    shadow: Vec<Option<RangeRule>>,
    live_ranges: usize,
    /// Owner refcount per installed expansion entry: how many live
    /// rules' expansions contain it. An entry exists in the tuple
    /// tables iff it has at least one owner, and its value is the
    /// covering winner — so removing a rule hands an entry down to the
    /// rules still owning it instead of leaking it as a stale match.
    entries: HashMap<(WildcardMask, FlowKey), usize>,
}

impl TssRangeTable {
    /// Builds a range-capable tuple space with one tuple per mask in
    /// `masks` (each sized for `entries_per_tuple` rules of the chosen
    /// exact-match backend); further tuples grow on demand as range
    /// expansions introduce new masks.
    #[must_use]
    pub fn with_masks(
        mem: &mut SimMemory,
        backend: TableBackend,
        masks: &[WildcardMask],
        entries_per_tuple: usize,
        mode: SearchMode,
    ) -> Self {
        let tuples = masks
            .iter()
            .map(|mask| {
                Tuple::from_parts(
                    mask.clone(),
                    backend.build(mem, entries_per_tuple, 0.85, MINIFLOW_LEN),
                )
            })
            .collect();
        TssRangeTable {
            space: TupleSpace::from_tuples(tuples, mode),
            backend,
            entries_per_tuple,
            shadow: Vec::new(),
            live_ranges: 0,
            entries: HashMap::new(),
        }
    }

    /// The wrapped tuple space, read-only.
    #[must_use]
    pub fn space(&self) -> &TupleSpace<ExactTable> {
        &self.space
    }

    /// The exact-match backend backing each tuple.
    #[must_use]
    pub fn exact_backend(&self) -> TableBackend {
        self.backend
    }

    /// The tuple carrying `mask`, created if absent.
    fn ensure_tuple(&mut self, mem: &mut SimMemory, mask: &WildcardMask) -> usize {
        if let Some(i) = self.space.tuple_with_mask(mask) {
            return i;
        }
        let table = self
            .backend
            .build(mem, self.entries_per_tuple, 0.85, MINIFLOW_LEN);
        self.space
            .push_tuple(Tuple::from_parts(mask.clone(), table))
    }

    /// The highest-priority live shadow rule covering `region` (ties to
    /// the earliest-installed rule).
    fn winner_for(&self, region: &[FieldRange; NUM_FIELDS]) -> Option<(u16, u64)> {
        let mut best: Option<RangeRule> = None;
        for rule in self.shadow.iter().flatten() {
            if rule.covers(region) && best.is_none_or(|b| rule.priority > b.priority) {
                best = Some(*rule);
            }
        }
        best.map(|r| (r.priority, r.action))
    }

    /// Re-derives the table entry for one registered expansion element:
    /// installs the covering winner's `(priority, action)`.
    fn refresh_element(
        &mut self,
        mem: &mut SimMemory,
        p: &PrefixRule,
    ) -> Result<(), WildcardError> {
        let idx = self.ensure_tuple(mem, &p.mask);
        let (priority, action) = self
            .winner_for(&p.region)
            .expect("a live owner always covers its own element");
        self.space
            .insert_rule(mem, idx, &p.key, priority, action)
            .map(|_| ())
            .map_err(WildcardError::from)
    }

    /// Releases one ownership of an expansion element: drops the table
    /// entry outright when no live rule's expansion contains it
    /// anymore, otherwise re-derives its winner.
    fn release_element(&mut self, mem: &mut SimMemory, p: &PrefixRule) {
        let key = (p.mask.clone(), p.key);
        let owners = self.entries.get_mut(&key).expect("releasing a live entry");
        *owners -= 1;
        if *owners == 0 {
            self.entries.remove(&key);
            if let Some(idx) = self.space.tuple_with_mask(&p.mask) {
                self.space.remove_rule(mem, idx, &p.key);
            }
        } else {
            // Surviving owners cover the region, so refresh cannot
            // fail: the slot already exists and is overwritten in
            // place.
            let _ = self.refresh_element(mem, p);
        }
    }

    /// The index of the live shadow rule with exactly these ranges.
    fn find_shadow(&self, ranges: &[FieldRange; NUM_FIELDS]) -> Option<usize> {
        self.shadow
            .iter()
            .position(|s| s.is_some_and(|r| r.ranges == *ranges))
    }
}

impl WildcardTable for TssRangeTable {
    fn name(&self) -> &'static str {
        "tss"
    }

    fn rules(&self) -> usize {
        if self.live_ranges > 0 {
            self.live_ranges
        } else {
            self.space.total_rules()
        }
    }

    fn probes(&self) -> usize {
        self.space.tuples().len()
    }

    fn insert_masked(
        &mut self,
        mem: &mut SimMemory,
        mask: &WildcardMask,
        key: &FlowKey,
        priority: u16,
        action: u64,
    ) -> Result<Option<(u16, u64)>, WildcardError> {
        let idx = self
            .space
            .tuple_with_mask(mask)
            .ok_or(WildcardError::UnknownMask)?;
        Ok(self.space.insert_rule(mem, idx, key, priority, action)?)
    }

    fn remove_masked(
        &mut self,
        mem: &mut SimMemory,
        mask: &WildcardMask,
        key: &FlowKey,
    ) -> Option<(u16, u64)> {
        let idx = self.space.tuple_with_mask(mask)?;
        self.space.remove_rule(mem, idx, key)
    }

    fn insert_range(
        &mut self,
        mem: &mut SimMemory,
        rule: &RangeRule,
    ) -> Result<Option<(u16, u64)>, WildcardError> {
        halo_classify::try_encode_rule(rule.priority, rule.action)
            .map_err(RuleError::from)
            .map_err(WildcardError::from)?;
        if let Some(i) = self.find_shadow(&rule.ranges) {
            // Identical shape: replace in place (same expansion, same
            // ownerships), then refresh every element — the winner may
            // have changed.
            let old = self.shadow[i].expect("found shadow is live");
            self.shadow[i] = Some(*rule);
            for p in rule.tss_expansion() {
                self.refresh_element(mem, &p)?;
            }
            return Ok(Some((old.priority, old.action)));
        }
        self.shadow.push(Some(*rule));
        self.live_ranges += 1;
        let expansion = rule.tss_expansion();
        for (done, p) in expansion.iter().enumerate() {
            *self.entries.entry((p.mask.clone(), p.key)).or_insert(0) += 1;
            if let Err(e) = self.refresh_element(mem, p) {
                // Unwind: drop the rule and release the ownerships
                // already taken, so the invariant (entry = covering
                // winner, refcounted by live owners) holds again.
                self.shadow.pop();
                self.live_ranges -= 1;
                for q in &expansion[..=done] {
                    self.release_element(mem, q);
                }
                return Err(e);
            }
        }
        Ok(None)
    }

    fn remove_range(&mut self, mem: &mut SimMemory, rule: &RangeRule) -> Option<(u16, u64)> {
        let i = self.find_shadow(&rule.ranges)?;
        let old = self.shadow[i].take().expect("found shadow is live");
        self.live_ranges -= 1;
        for p in old.tss_expansion() {
            self.release_element(mem, &p);
        }
        Some((old.priority, old.action))
    }

    fn classify_traced(
        &self,
        mem: &SimMemory,
        key: &FlowKey,
        software_locking: bool,
    ) -> (Option<RuleMatch>, Vec<(usize, LookupTrace)>) {
        self.space.classify_traced(mem, key, software_locking)
    }

    fn probe_meta_addr(&self, probe: usize) -> Option<Addr> {
        self.space
            .tuples()
            .get(probe)
            .and_then(|t| t.table().meta_addr())
    }

    fn probe_version_addr(&self, probe: usize) -> Option<Addr> {
        self.space
            .tuples()
            .get(probe)
            .and_then(|t| FlowTable::version_addr(t.table()))
    }

    fn memory_lines(&self) -> Vec<Addr> {
        self.space
            .tuples()
            .iter()
            .flat_map(|t| t.table().warm_lines())
            .collect()
    }
}

impl WildcardTable for RvhTable {
    fn name(&self) -> &'static str {
        "rvh"
    }

    fn rules(&self) -> usize {
        self.len()
    }

    fn probes(&self) -> usize {
        RvhTable::probes(self)
    }

    fn insert_masked(
        &mut self,
        mem: &mut SimMemory,
        mask: &WildcardMask,
        key: &FlowKey,
        priority: u16,
        action: u64,
    ) -> Result<Option<(u16, u64)>, WildcardError> {
        // RVH has no mask vocabulary of its own: prefix masks convert
        // losslessly to ranges.
        let rule = RangeRule::from_masked_key(mask, key, priority, action)
            .ok_or(WildcardError::UnknownMask)?;
        Ok(RvhTable::insert(self, mem, &rule)?)
    }

    fn remove_masked(
        &mut self,
        mem: &mut SimMemory,
        mask: &WildcardMask,
        key: &FlowKey,
    ) -> Option<(u16, u64)> {
        let rule = RangeRule::from_masked_key(mask, key, 0, 0)?;
        RvhTable::remove(self, mem, &rule.ranges)
    }

    fn insert_range(
        &mut self,
        mem: &mut SimMemory,
        rule: &RangeRule,
    ) -> Result<Option<(u16, u64)>, WildcardError> {
        Ok(RvhTable::insert(self, mem, rule)?)
    }

    fn remove_range(&mut self, mem: &mut SimMemory, rule: &RangeRule) -> Option<(u16, u64)> {
        RvhTable::remove(self, mem, &rule.ranges)
    }

    fn classify_traced(
        &self,
        mem: &SimMemory,
        key: &FlowKey,
        software_locking: bool,
    ) -> (Option<RuleMatch>, Vec<(usize, LookupTrace)>) {
        RvhTable::classify_traced(self, mem, key, software_locking)
    }

    fn probe_meta_addr(&self, probe: usize) -> Option<Addr> {
        RvhTable::probe_meta_addr(self, probe)
    }

    fn probe_version_addr(&self, probe: usize) -> Option<Addr> {
        RvhTable::probe_version_addr(self, probe)
    }

    fn memory_lines(&self) -> Vec<Addr> {
        RvhTable::memory_lines(self)
    }
}

/// Which wildcard-table implementation backs the MegaFlow/OpenFlow
/// layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WildcardBackend {
    /// Tuple space search (the OVS baseline; ranges via expansion).
    #[default]
    Tss,
    /// Range-vector hashing (constant marker probes).
    Rvh,
}

impl WildcardBackend {
    /// Every selectable backend, in ablation order.
    #[must_use]
    pub fn all() -> [WildcardBackend; 2] {
        [WildcardBackend::Tss, WildcardBackend::Rvh]
    }

    /// Stable display name (figure rows and JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WildcardBackend::Tss => "tss",
            WildcardBackend::Rvh => "rvh",
        }
    }

    /// Builds a wildcard table of this backend: one tuple per mask of
    /// `entries_per_tuple` exact-backend entries for TSS, marker tables
    /// sized for the same total rule budget for RVH.
    #[must_use]
    pub fn build(
        self,
        mem: &mut SimMemory,
        exact: TableBackend,
        masks: &[WildcardMask],
        entries_per_tuple: usize,
        mode: SearchMode,
    ) -> WildcardMatcher {
        match self {
            WildcardBackend::Tss => WildcardMatcher::Tss(TssRangeTable::with_masks(
                mem,
                exact,
                masks,
                entries_per_tuple,
                mode,
            )),
            WildcardBackend::Rvh => WildcardMatcher::Rvh(Box::new(RvhTable::with_capacity(
                mem,
                entries_per_tuple * masks.len().max(1),
            ))),
        }
    }
}

/// A runtime-selected wildcard table: the concrete backend behind one
/// enum so configs carry a [`WildcardBackend`] instead of a type
/// parameter. Implements [`WildcardTable`] by delegation.
#[derive(Debug)]
pub enum WildcardMatcher {
    /// Tuple space search with range expansion.
    Tss(TssRangeTable),
    /// Range-vector hash (boxed: its fixed vector array dwarfs the
    /// TSS variant).
    Rvh(Box<RvhTable>),
}

impl WildcardMatcher {
    /// Which backend this matcher is.
    #[must_use]
    pub fn backend(&self) -> WildcardBackend {
        match self {
            WildcardMatcher::Tss(_) => WildcardBackend::Tss,
            WildcardMatcher::Rvh(_) => WildcardBackend::Rvh,
        }
    }

    /// The wrapped tuple space, when this is the TSS backend (the
    /// vswitch's functional-check and warm paths use it directly).
    #[must_use]
    pub fn as_tss(&self) -> Option<&TupleSpace<ExactTable>> {
        match self {
            WildcardMatcher::Tss(t) => Some(t.space()),
            WildcardMatcher::Rvh(_) => None,
        }
    }
}

impl WildcardTable for WildcardMatcher {
    fn name(&self) -> &'static str {
        match self {
            WildcardMatcher::Tss(t) => t.name(),
            WildcardMatcher::Rvh(t) => WildcardTable::name(t.as_ref()),
        }
    }

    fn rules(&self) -> usize {
        match self {
            WildcardMatcher::Tss(t) => WildcardTable::rules(t),
            WildcardMatcher::Rvh(t) => WildcardTable::rules(t.as_ref()),
        }
    }

    fn probes(&self) -> usize {
        match self {
            WildcardMatcher::Tss(t) => WildcardTable::probes(t),
            WildcardMatcher::Rvh(t) => WildcardTable::probes(t.as_ref()),
        }
    }

    fn insert_masked(
        &mut self,
        mem: &mut SimMemory,
        mask: &WildcardMask,
        key: &FlowKey,
        priority: u16,
        action: u64,
    ) -> Result<Option<(u16, u64)>, WildcardError> {
        match self {
            WildcardMatcher::Tss(t) => t.insert_masked(mem, mask, key, priority, action),
            WildcardMatcher::Rvh(t) => t.insert_masked(mem, mask, key, priority, action),
        }
    }

    fn remove_masked(
        &mut self,
        mem: &mut SimMemory,
        mask: &WildcardMask,
        key: &FlowKey,
    ) -> Option<(u16, u64)> {
        match self {
            WildcardMatcher::Tss(t) => t.remove_masked(mem, mask, key),
            WildcardMatcher::Rvh(t) => t.remove_masked(mem, mask, key),
        }
    }

    fn insert_range(
        &mut self,
        mem: &mut SimMemory,
        rule: &RangeRule,
    ) -> Result<Option<(u16, u64)>, WildcardError> {
        match self {
            WildcardMatcher::Tss(t) => t.insert_range(mem, rule),
            WildcardMatcher::Rvh(t) => WildcardTable::insert_range(t.as_mut(), mem, rule),
        }
    }

    fn remove_range(&mut self, mem: &mut SimMemory, rule: &RangeRule) -> Option<(u16, u64)> {
        match self {
            WildcardMatcher::Tss(t) => t.remove_range(mem, rule),
            WildcardMatcher::Rvh(t) => WildcardTable::remove_range(t.as_mut(), mem, rule),
        }
    }

    fn classify_traced(
        &self,
        mem: &SimMemory,
        key: &FlowKey,
        software_locking: bool,
    ) -> (Option<RuleMatch>, Vec<(usize, LookupTrace)>) {
        match self {
            WildcardMatcher::Tss(t) => t.classify_traced(mem, key, software_locking),
            WildcardMatcher::Rvh(t) => {
                WildcardTable::classify_traced(t.as_ref(), mem, key, software_locking)
            }
        }
    }

    fn probe_meta_addr(&self, probe: usize) -> Option<Addr> {
        match self {
            WildcardMatcher::Tss(t) => WildcardTable::probe_meta_addr(t, probe),
            WildcardMatcher::Rvh(t) => WildcardTable::probe_meta_addr(t.as_ref(), probe),
        }
    }

    fn probe_version_addr(&self, probe: usize) -> Option<Addr> {
        match self {
            WildcardMatcher::Tss(t) => WildcardTable::probe_version_addr(t, probe),
            WildcardMatcher::Rvh(t) => WildcardTable::probe_version_addr(t.as_ref(), probe),
        }
    }

    fn memory_lines(&self) -> Vec<Addr> {
        match self {
            WildcardMatcher::Tss(t) => WildcardTable::memory_lines(t),
            WildcardMatcher::Rvh(t) => WildcardTable::memory_lines(t.as_ref()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_classify::{distinct_masks, PacketHeader, FIELDS};

    fn range_rule(id: u64, lo: u64, hi: u64, priority: u16, action: u64) -> RangeRule {
        let mut rule =
            RangeRule::exact_flow(&PacketHeader::synthetic(id).miniflow(), priority, action);
        rule.ranges[3] = FieldRange::span(lo, hi);
        rule
    }

    /// Both backends build through the selector, accept both rule
    /// vocabularies (prefix-mask rules convert for RVH), and classify
    /// identically on unique-priority rules.
    #[test]
    fn both_backends_serve_both_vocabularies() {
        for backend in WildcardBackend::all() {
            let mut mem = SimMemory::new();
            let masks = distinct_masks(4);
            let mut w = backend.build(
                &mut mem,
                TableBackend::Cuckoo,
                &masks,
                256,
                SearchMode::HighestPriority,
            );
            assert_eq!(w.backend(), backend);
            let pkt = PacketHeader::synthetic(5);
            let key = pkt.miniflow();
            assert_eq!(
                w.insert_masked(&mut mem, &masks[1], &key, 3, 30).unwrap(),
                None,
                "{}",
                backend.name()
            );
            let hit = w
                .classify(&mem, &key)
                .unwrap_or_else(|| panic!("{}: no match", backend.name()));
            assert_eq!((hit.priority, hit.action), (3, 30));
            // Masked replacement reports the incumbent.
            assert_eq!(
                w.insert_masked(&mut mem, &masks[1], &key, 4, 40).unwrap(),
                Some((3, 30))
            );
            assert_eq!(w.remove_masked(&mut mem, &masks[1], &key), Some((4, 40)));
            assert_eq!(w.classify(&mem, &key), None);
            // Range rules.
            let rule = range_rule(5, 1_000, 1_999, 7, 70);
            assert_eq!(w.insert_range(&mut mem, &rule).unwrap(), None);
            assert_eq!(
                w.classify(&mem, &rule.point_key()).map(|m| m.action),
                Some(70)
            );
            assert_eq!(w.remove_range(&mut mem, &rule), Some((7, 70)));
            assert_eq!(w.classify(&mem, &rule.point_key()), None);
            assert_eq!(WildcardTable::rules(&w), 0);
        }
    }

    /// Overlapping range rules resolve by priority on both backends —
    /// including after the higher-priority rule is removed (the TSS
    /// expansion's covering-winner bookkeeping must re-expose the
    /// shadowed rule).
    #[test]
    fn overlap_resolution_survives_removal() {
        for backend in WildcardBackend::all() {
            let mut mem = SimMemory::new();
            let mut w = backend.build(
                &mut mem,
                TableBackend::Cuckoo,
                &distinct_masks(2),
                512,
                SearchMode::HighestPriority,
            );
            let wide = range_rule(9, 0, 65_535, 2, 200);
            let narrow = {
                let mut r = wide;
                r.ranges[3] = FieldRange::span(1_000, 1_099);
                r.priority = 8;
                r.action = 800;
                r
            };
            w.insert_range(&mut mem, &wide).unwrap();
            w.insert_range(&mut mem, &narrow).unwrap();
            let mut bytes = [0u8; MINIFLOW_LEN];
            bytes.copy_from_slice(wide.point_key().as_bytes());
            FIELDS[3].write(&mut bytes, 1_050);
            let key = FlowKey::from_bytes(&bytes);
            assert_eq!(
                w.classify(&mem, &key).map(|m| m.action),
                Some(800),
                "{}: narrow high-priority wins",
                backend.name()
            );
            assert_eq!(w.remove_range(&mut mem, &narrow), Some((8, 800)));
            assert_eq!(
                w.classify(&mem, &key).map(|m| m.action),
                Some(200),
                "{}: wide rule re-exposed after removal",
                backend.name()
            );
            // Removing the last covering rule must not leave stale
            // entries from the earlier overlap behind.
            assert_eq!(w.remove_range(&mut mem, &wide), Some((2, 200)));
            assert_eq!(
                w.classify(&mem, &key),
                None,
                "{}: no rule left, no match",
                backend.name()
            );
            assert_eq!(WildcardTable::rules(&w), 0);
        }
    }

    /// The trait impl for a plain `TupleSpace` is behaviorally identical
    /// to its inherent methods — the seam the datapath genericized over
    /// must not change what default-configured frontends observe.
    #[test]
    fn tuple_space_trait_impl_is_transparent() {
        let mut mem = SimMemory::new();
        let masks = distinct_masks(4);
        let mut tss = TupleSpace::new(&mut mem, masks.clone(), 256, SearchMode::FirstMatch);
        let key = PacketHeader::synthetic(2).miniflow();
        tss.insert_rule(&mut mem, 2, &key, 0, 11).unwrap();
        let (inherent, inherent_probes) = TupleSpace::classify_traced(&tss, &mem, &key, true);
        let dt: &dyn WildcardTable = &tss;
        let (via, via_probes) = dt.classify_traced(&mem, &key, true);
        assert_eq!(inherent, via);
        assert_eq!(inherent_probes.len(), via_probes.len());
        for ((i, a), (j, b)) in inherent_probes.iter().zip(&via_probes) {
            assert_eq!(i, j);
            assert_eq!(a.result, b.result);
            assert_eq!(a.steps, b.steps);
        }
        assert_eq!(
            dt.probe_meta_addr(2),
            FlowTable::meta_addr(tss.tuples()[2].table()),
            "dispatch address must match the legacy tuple_addr path"
        );
        assert_eq!(dt.probes(), 4);
        assert_eq!(
            tss.insert_range(&mut mem, &range_rule(1, 0, 9, 1, 1)),
            Err(WildcardError::UnsupportedRanges),
            "plain tuple spaces have no range vocabulary"
        );
    }

    /// Range-heavy rulesets need far fewer probes on RVH than on TSS:
    /// the headline claim the ablation figure quantifies.
    #[test]
    fn rvh_probes_fewer_buckets_on_ranges() {
        let mut mem = SimMemory::new();
        let mut tss = WildcardBackend::Tss.build(
            &mut mem,
            TableBackend::Cuckoo,
            &[],
            512,
            SearchMode::HighestPriority,
        );
        let mut rvh = WildcardBackend::Rvh.build(
            &mut mem,
            TableBackend::Cuckoo,
            &[],
            512,
            SearchMode::HighestPriority,
        );
        for id in 0..40u64 {
            let rule = range_rule(id, 1_000 + id * 13, 1_700 + id * 29, id as u16, id);
            tss.insert_range(&mut mem, &rule).unwrap();
            rvh.insert_range(&mut mem, &rule).unwrap();
        }
        assert!(
            WildcardTable::probes(&rvh) < WildcardTable::probes(&tss),
            "rvh {} probes vs tss {}",
            WildcardTable::probes(&rvh),
            WildcardTable::probes(&tss)
        );
        // And they agree functionally (unique priorities).
        for id in 0..40u64 {
            let key = range_rule(id, 1_000 + id * 13, 1_700 + id * 29, id as u16, id).point_key();
            assert_eq!(
                tss.classify(&mem, &key).map(|m| (m.priority, m.action)),
                rvh.classify(&mem, &key).map(|m| (m.priority, m.action)),
                "flow {id}"
            );
        }
    }

    /// A masked insert for a mask no tuple carries is a typed error on
    /// TSS and converts transparently on RVH.
    #[test]
    fn unknown_mask_behaviour_per_backend() {
        let mut mem = SimMemory::new();
        let masks = distinct_masks(2);
        let key = PacketHeader::synthetic(1).miniflow();
        let foreign = distinct_masks(8)[7].clone();
        let mut tss = WildcardBackend::Tss.build(
            &mut mem,
            TableBackend::Cuckoo,
            &masks,
            64,
            SearchMode::FirstMatch,
        );
        assert_eq!(
            tss.insert_masked(&mut mem, &foreign, &key, 1, 1),
            Err(WildcardError::UnknownMask)
        );
        let mut rvh = WildcardBackend::Rvh.build(
            &mut mem,
            TableBackend::Cuckoo,
            &masks,
            64,
            SearchMode::FirstMatch,
        );
        assert_eq!(
            rvh.insert_masked(&mut mem, &foreign, &key, 1, 1).unwrap(),
            None,
            "prefix masks always convert to ranges"
        );
        assert_eq!(rvh.classify(&mem, &key).map(|m| m.action), Some(1));
    }
}
