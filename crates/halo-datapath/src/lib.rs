//! # halo-datapath
//!
//! The one classification datapath every frontend drives.
//!
//! Before this crate existed the EMC → MegaFlow → backend-dispatch
//! sequence was implemented four times — in the single-core virtual
//! switch, the multi-core PMD datapath, the key-value store, and the
//! NF workloads — with slightly diverging behavior (EMC promotion
//! policy, non-blocking destination-slot arithmetic). It is now layered
//! as:
//!
//! * [`LookupBackend`] — *how* a lookup executes: software on the core,
//!   HALO `LOOKUP_B` (blocking), or HALO `LOOKUP_NB` + `SNAPSHOT_READ`
//!   (non-blocking).
//! * [`NbRegion`] — the per-core destination lines `LOOKUP_NB` results
//!   land in, sized from the number of tuples that may be probed so
//!   slots never alias.
//! * [`LookupExecutor`] — one core's lookup machinery: the
//!   [`CoreModel`], its scratch working set, and the backend dispatch
//!   logic ([`LookupExecutor::run_sw`] for software replay,
//!   [`LookupExecutor::search`] for the full tuple-space walk).
//! * [`DatapathCore`] — the per-core classification stage: EMC probe →
//!   MegaFlow search → promotion, generic over any [`WildcardTable`]
//!   backend.
//! * [`TableBackend`] / [`ExactTable`] — runtime selection of the
//!   exact-match implementation (baseline cuckoo, Cuckoo++ presence
//!   filters, EMOMA CBF steering) behind one dispatch enum, so configs
//!   name a backend instead of growing a type parameter.
//! * [`WildcardBackend`] / [`WildcardMatcher`] — the same runtime
//!   selection for the wildcard (MegaFlow/OpenFlow) layer behind the
//!   object-safe [`WildcardTable`] seam: tuple space search or
//!   range-vector hashing ([`halo_classify::RvhTable`]).
//!
//! The timing contract is strict: for identical inputs the executor
//! reproduces cycle-for-cycle the access streams of the paths it
//! replaced, so figure outputs are byte-identical across the refactor.
//!
//! # Examples
//!
//! ```
//! use halo_classify::{distinct_masks, Emc, PacketHeader, SearchMode, TupleSpace};
//! use halo_datapath::{DatapathCore, LookupBackend, LookupExecutor};
//! use halo_mem::{CoreId, MachineConfig, MemorySystem};
//! use halo_sim::Cycle;
//!
//! let mut sys = MemorySystem::new(MachineConfig::small());
//! let exec = LookupExecutor::new(&mut sys, CoreId(0), LookupBackend::Software);
//! let emc = Emc::new(sys.data_mut(), 1024);
//! let mut megaflow = TupleSpace::new(
//!     sys.data_mut(),
//!     distinct_masks(4),
//!     256,
//!     SearchMode::FirstMatch,
//! );
//! let key = PacketHeader::synthetic(7).miniflow();
//! megaflow.insert_rule(sys.data_mut(), 1, &key, 0, 42).unwrap();
//! let mut dp = DatapathCore::new(exec, Some(emc), LookupBackend::Software, true);
//! let out = dp.classify(&mut sys, None, &megaflow, &key, None, Cycle(0));
//! assert_eq!(out.action, Some(42));
//! assert!(!out.emc_hit); // first packet: EMC cold, MegaFlow hit
//! let again = dp.classify(&mut sys, None, &megaflow, &key, None, out.done);
//! assert!(again.emc_hit); // promoted
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod wildcard;

pub use backend::{ExactTable, TableBackend};
pub use wildcard::{TssRangeTable, WildcardBackend, WildcardError, WildcardMatcher, WildcardTable};

use halo_accel::HaloEngine;
use halo_classify::{Emc, RuleMatch};
use halo_cpu::{build_sw_lookup_into, CoreModel, ExecReport, Program, Scratch};
use halo_mem::{Addr, CoreId, CoreMem, MemCtx, MemorySystem, SimMemory, CACHE_LINE};
use halo_sim::{Cycle, Cycles};
use halo_tables::{hash_key, FlowKey, LookupTrace, SEED_PRIMARY};

/// How flow-classification lookups execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupBackend {
    /// DPDK-style software lookups on the core (the baseline).
    Software,
    /// HALO `LOOKUP_B`: the core blocks per lookup.
    HaloBlocking,
    /// HALO `LOOKUP_NB`: all tuple lookups issued at once, results
    /// polled with one `SNAPSHOT_READ` per destination line.
    HaloNonBlocking,
}

/// Cycles between a `LOOKUP_B` completion and the core observing the
/// result (register writeback + pipeline restart).
const BLOCKING_RESUME: Cycles = Cycles(4);

/// One event of a streaming traffic workload.
///
/// Streaming generators (the million-flow adversarial engine in
/// `halo-nf`) emit these; streaming consumers (the multi-core datapath's
/// `run_stream`) apply them. The enum lives here — the layer both sides
/// already depend on — so producers and consumers stay decoupled.
///
/// Flow ids are opaque `u64`s; `PacketHeader::synthetic(flow)` turns one
/// into a concrete header/key wherever a packet is materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficEvent {
    /// A packet of flow `flow` arrives and must be classified.
    Packet(u64),
    /// Flow `flow` starts: the control plane installs its rule
    /// (insert pressure on the MegaFlow tables).
    Arrival(u64),
    /// Flow `flow` ends: its rule is torn down (remove pressure, EMC
    /// invalidation, coherence traffic from the revalidator).
    Expiry(u64),
}

impl TrafficEvent {
    /// The flow id the event concerns.
    #[must_use]
    pub fn flow(self) -> u64 {
        match self {
            TrafficEvent::Packet(f) | TrafficEvent::Arrival(f) | TrafficEvent::Expiry(f) => f,
        }
    }
}

/// Destination lines for non-blocking lookups.
///
/// Each in-flight `LOOKUP_NB` writes its result into one 8-byte slot;
/// eight slots share a cache line. The region is sized from the number
/// of lookups a single search may have in flight (the tuple-space mask
/// count), so slot addresses never alias — the old per-core pipelines
/// hard-coded a single line (`slot % 8`), which silently corrupted
/// `SNAPSHOT_READ` results whenever more than eight tuples were probed.
#[derive(Debug, Clone, Copy)]
pub struct NbRegion {
    base: Addr,
    slots: usize,
}

impl NbRegion {
    /// Destination-result slots per cache line.
    pub const SLOTS_PER_LINE: usize = (CACHE_LINE / 8) as usize;

    /// Cache lines needed for `slots` concurrent lookups (at least one).
    #[must_use]
    pub fn lines_for(slots: usize) -> u64 {
        (slots as u64).div_ceil(Self::SLOTS_PER_LINE as u64).max(1)
    }

    /// Allocates a region big enough for `slots` concurrent lookups.
    #[must_use]
    pub fn allocate(mem: &mut SimMemory, slots: usize) -> Self {
        let lines = Self::lines_for(slots);
        let base = mem.alloc_lines(lines * CACHE_LINE);
        NbRegion {
            base,
            slots: (lines as usize) * Self::SLOTS_PER_LINE,
        }
    }

    /// Wraps an already-allocated slice of lines (multi-core datapaths
    /// carve one allocation into per-core regions).
    #[must_use]
    pub fn from_raw(base: Addr, slots: usize) -> Self {
        NbRegion { base, slots }
    }

    /// Base address of the region (the first destination line).
    #[must_use]
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Concurrent lookups this region can hold without aliasing.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of cache lines in the region.
    #[must_use]
    pub fn lines(&self) -> u64 {
        Self::lines_for(self.slots)
    }

    /// Destination address of result slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` exceeds the region — an aliased destination
    /// word would silently corrupt another in-flight lookup's result.
    #[must_use]
    pub fn dest(&self, slot: usize) -> Addr {
        assert!(
            slot < self.slots,
            "NB destination slot {slot} outside region of {} slots",
            self.slots
        );
        self.base
            + (slot / Self::SLOTS_PER_LINE) as u64 * CACHE_LINE
            + (slot % Self::SLOTS_PER_LINE) as u64 * 8
    }

    /// Address of the `idx`-th cache line of the region.
    #[must_use]
    pub fn line(&self, idx: u64) -> Addr {
        self.base + idx * CACHE_LINE
    }
}

/// One core's lookup machinery: core model, scratch working set, and
/// the backend dispatch logic shared by every datapath frontend.
#[derive(Debug)]
pub struct LookupExecutor {
    core: CoreId,
    core_model: CoreModel,
    scratch: Scratch,
    backend: LookupBackend,
    nb: Option<NbRegion>,
    /// Reusable program buffer: `run_sw` rebuilds the ~210-uop lookup
    /// program in place instead of allocating one per packet.
    prog_buf: Program,
}

impl LookupExecutor {
    /// Builds an executor on `core`: allocates its scratch working set
    /// (but does not warm it — call [`Self::warm_scratch`] for a warm
    /// start) and a fresh core model.
    #[must_use]
    pub fn new(sys: &mut MemorySystem, core: CoreId, backend: LookupBackend) -> Self {
        let scratch = Scratch::new(sys);
        LookupExecutor {
            core,
            core_model: CoreModel::new(core, sys.config()),
            scratch,
            backend,
            nb: None,
            prog_buf: Program::with_label("sw_lookup"),
        }
    }

    /// Pre-loads the scratch working set into this core's caches.
    pub fn warm_scratch(&self, sys: &mut MemorySystem) {
        self.scratch.warm(sys, self.core);
    }

    /// Attaches the non-blocking destination region (required before
    /// running [`LookupBackend::HaloNonBlocking`] searches).
    #[must_use]
    pub fn with_nb_region(mut self, nb: NbRegion) -> Self {
        self.nb = Some(nb);
        self
    }

    /// The backend this executor dispatches to.
    #[must_use]
    pub fn backend(&self) -> LookupBackend {
        self.backend
    }

    /// The core this executor runs on.
    #[must_use]
    pub fn core_id(&self) -> CoreId {
        self.core
    }

    /// When the core model retires its last in-flight instruction.
    #[must_use]
    pub fn ready_at(&self) -> Cycle {
        self.core_model.ready_at()
    }

    /// The scratch working set (for building filler programs).
    pub fn scratch_mut(&mut self) -> &mut Scratch {
        &mut self.scratch
    }

    /// The attached non-blocking destination region, if any.
    #[must_use]
    pub fn nb_region(&self) -> Option<&NbRegion> {
        self.nb.as_ref()
    }

    /// Runs an arbitrary program on this core starting at `at`. Generic
    /// over the memory context so the same executor serves the classic
    /// sequential [`MemorySystem`] and an epoch-window shard.
    pub fn run<S: CoreMem>(&mut self, prog: &Program, sys: &mut S, at: Cycle) -> ExecReport {
        self.core_model.run(prog, sys, at)
    }

    /// Replays one lookup trace in software on the core: builds the
    /// standard lookup program (hash + probes + compares, with the key
    /// loaded from `key_addr` when given) into the executor's reusable
    /// buffer and times it. Returns the finish cycle.
    pub fn run_sw<S: CoreMem>(
        &mut self,
        sys: &mut S,
        trace: &LookupTrace,
        key_addr: Option<Addr>,
        at: Cycle,
    ) -> Cycle {
        build_sw_lookup_into(trace, &mut self.scratch, key_addr, &mut self.prog_buf);
        self.core_model.run(&self.prog_buf, sys, at).finish
    }

    /// Times a full wildcard search whose functional probes are
    /// already recorded in `probes` (from
    /// [`WildcardTable::classify_traced`]). Dispatches per the
    /// executor's backend:
    ///
    /// * [`LookupBackend::Software`] — each probe replayed sequentially
    ///   on the core.
    /// * [`LookupBackend::HaloBlocking`] — a burst of `LOOKUP_B`s, the
    ///   core blocking on each.
    /// * [`LookupBackend::HaloNonBlocking`] — every probe issued
    ///   back-to-back as `LOOKUP_NB` into a distinct [`NbRegion`] slot,
    ///   then one `SNAPSHOT_READ` per touched destination line.
    ///
    /// Returns the cycle the search result is in hand.
    ///
    /// # Panics
    ///
    /// Panics if a HALO backend is configured but `engine` is `None`,
    /// or if the non-blocking backend runs without an [`NbRegion`]
    /// large enough for `probes`.
    pub fn search<W: WildcardTable + ?Sized>(
        &mut self,
        sys: &mut MemorySystem,
        engine: Option<&mut HaloEngine>,
        space: &W,
        key: &FlowKey,
        probes: &[(usize, LookupTrace)],
        at: Cycle,
    ) -> Cycle {
        match self.backend {
            LookupBackend::Software => {
                let mut t = at;
                for (_, tr) in probes {
                    t = self.run_sw(sys, tr, None, t);
                }
                t
            }
            LookupBackend::HaloBlocking => {
                let engine = engine.expect("HALO backend needs an engine");
                let base_hash = hash_key(key, SEED_PRIMARY);
                engine.dispatch_burst(
                    sys,
                    self.core,
                    probes
                        .iter()
                        .map(|(i, tr)| (Self::probe_addr(space, *i), tr, base_hash ^ (*i as u64))),
                    BLOCKING_RESUME,
                    at,
                )
            }
            LookupBackend::HaloNonBlocking => {
                let engine = engine.expect("HALO backend needs an engine");
                let nb = self.nb.expect("non-blocking backend needs an NbRegion");
                // Issue every probed tuple at once (one per cycle);
                // results land in distinct destination words.
                let mut finish = at;
                for (slot, (i, tr)) in probes.iter().enumerate() {
                    let h = hash_key(key, SEED_PRIMARY) ^ (*i as u64);
                    let out = engine.dispatch(
                        sys,
                        self.core,
                        Self::probe_addr(space, *i),
                        tr,
                        h,
                        None,
                        Some(nb.dest(slot)),
                        at + Cycles(slot as u64),
                    );
                    finish = finish.max(out.complete);
                }
                // One SNAPSHOT_READ per destination line written.
                let lines = (probes.len() as u64).div_ceil(NbRegion::SLOTS_PER_LINE as u64);
                for l in 0..lines {
                    let (_, snap) = engine.snapshot_read(sys, self.core, nb.line(l), finish);
                    finish = snap;
                }
                finish
            }
        }
    }

    /// The dispatchable table address of probe slot `i` of `space`.
    ///
    /// # Panics
    ///
    /// Panics for backends without in-memory metadata (e.g. TCAM).
    fn probe_addr<W: WildcardTable + ?Sized>(space: &W, i: usize) -> Addr {
        space
            .probe_meta_addr(i)
            .expect("HALO dispatch needs an in-memory table")
    }
}

/// What one [`DatapathCore::classify`] call did and when.
#[derive(Debug, Clone, Copy)]
pub struct ClassifyOutcome {
    /// The matched action, if any layer hit.
    pub action: Option<u64>,
    /// The packet hit in the EMC (MegaFlow never searched).
    pub emc_hit: bool,
    /// The MegaFlow match, when the search ran and hit.
    pub megaflow: Option<RuleMatch>,
    /// Completion cycle of the EMC probe (None when the EMC layer is
    /// disabled).
    pub emc_done: Option<Cycle>,
    /// Completion cycle of the MegaFlow search (None on EMC hit).
    pub megaflow_done: Option<Cycle>,
    /// Cycle the classification result is in hand.
    pub done: Cycle,
}

/// The per-core classification stage: EMC probe → MegaFlow tuple-space
/// search → EMC promotion, over any [`FlowTable`] backend.
///
/// The single-core virtual switch, the multi-core PMD datapath, and the
/// NF workloads all drive this one implementation; only what surrounds
/// it (packet IO, upcalls, extra per-packet work) differs per frontend.
#[derive(Debug)]
pub struct DatapathCore {
    exec: LookupExecutor,
    emc: Option<Emc>,
    emc_backend: LookupBackend,
    emc_promotion: bool,
}

impl DatapathCore {
    /// Builds the stage from its parts. `emc_backend` may differ from
    /// the executor's search backend: multi-core datapaths probe their
    /// tiny private EMCs in software even when MegaFlow lookups are
    /// offloaded to HALO.
    #[must_use]
    pub fn new(
        exec: LookupExecutor,
        emc: Option<Emc>,
        emc_backend: LookupBackend,
        emc_promotion: bool,
    ) -> Self {
        DatapathCore {
            exec,
            emc,
            emc_backend,
            emc_promotion,
        }
    }

    /// The lookup executor (for filler programs and custom dispatch).
    pub fn exec_mut(&mut self) -> &mut LookupExecutor {
        &mut self.exec
    }

    /// The lookup executor, read-only.
    #[must_use]
    pub fn exec(&self) -> &LookupExecutor {
        &self.exec
    }

    /// The EMC layer, if enabled.
    #[must_use]
    pub fn emc(&self) -> Option<&Emc> {
        self.emc.as_ref()
    }

    /// Whether MegaFlow hits are promoted into the EMC.
    #[must_use]
    pub fn emc_promotion(&self) -> bool {
        self.emc_promotion
    }

    /// Pre-installs `key -> action` into the EMC regardless of the
    /// promotion policy (steady-state warm start).
    pub fn prime<M: MemCtx>(&mut self, mem: &mut M, key: &FlowKey, action: u64) {
        if let Some(emc) = &mut self.emc {
            emc.insert(mem, key, action);
        }
    }

    /// Promotes `key -> action` into the EMC if the policy allows it
    /// (used by slow-path upcalls, which install resolved flows through
    /// the same gate as MegaFlow hits).
    pub fn promote<M: MemCtx>(&mut self, mem: &mut M, key: &FlowKey, action: u64) {
        if self.emc_promotion {
            self.prime(mem, key, action);
        }
    }

    /// Drops `key` from the EMC, if cached — called on flow expiry so a
    /// torn-down rule's exact match cannot outlive the rule. Returns
    /// whether an entry was invalidated.
    pub fn invalidate<M: MemCtx>(&mut self, mem: &mut M, key: &FlowKey) -> bool {
        self.emc
            .as_mut()
            .is_some_and(|emc| emc.invalidate(mem, key))
    }

    /// Classifies one packet: EMC probe (skipped when disabled), then —
    /// on miss — the MegaFlow search via the executor's backend, then
    /// promotion of the hit per the policy. `key_addr` is the packet
    /// buffer the software EMC probe reloads the key from (None when
    /// the key is in registers).
    ///
    /// # Panics
    ///
    /// Panics if a HALO backend is configured but `engine` is `None`.
    pub fn classify<W: WildcardTable + ?Sized>(
        &mut self,
        sys: &mut MemorySystem,
        mut engine: Option<&mut HaloEngine>,
        megaflow: &W,
        key: &FlowKey,
        key_addr: Option<Addr>,
        at: Cycle,
    ) -> ClassifyOutcome {
        let mut t = at;
        let mut emc_done = None;

        if let Some(emc) = &self.emc {
            let trace = emc.lookup_traced(sys.data_mut(), key);
            let done = match self.emc_backend {
                LookupBackend::Software => self.exec.run_sw(sys, &trace, key_addr, t),
                LookupBackend::HaloBlocking | LookupBackend::HaloNonBlocking => {
                    let engine = engine.as_deref_mut().expect("HALO backend needs an engine");
                    let h = hash_key(key, SEED_PRIMARY);
                    let out = engine.dispatch(
                        sys,
                        self.exec.core,
                        emc.base_addr(),
                        &trace,
                        h,
                        None,
                        None,
                        t,
                    );
                    out.complete + BLOCKING_RESUME
                }
            };
            emc_done = Some(done);
            t = done;
            if let Some(v) = trace.result {
                sys.trace_span("datapath", "classify", at, t);
                return ClassifyOutcome {
                    action: Some(v),
                    emc_hit: true,
                    megaflow: None,
                    emc_done,
                    megaflow_done: None,
                    done: t,
                };
            }
        }

        let (m, probes) = megaflow.classify_traced(
            sys.data_mut(),
            key,
            self.exec.backend == LookupBackend::Software,
        );
        let done = self.exec.search(sys, engine, megaflow, key, &probes, t);
        if let Some(hit) = &m {
            self.promote(sys.data_mut(), key, hit.action);
        }
        sys.trace_span("datapath", "classify", at, done);
        ClassifyOutcome {
            action: m.as_ref().map(|h| h.action),
            emc_hit: false,
            megaflow: m,
            emc_done,
            megaflow_done: Some(done),
            done,
        }
    }

    /// Classifies one packet against any [`CoreMem`] context — the
    /// classic sequential [`MemorySystem`] or one epoch-window shard
    /// ([`halo_mem::EpochCore`]). Software backend only: HALO engine
    /// dispatch mutates shared accelerator state and stays on the
    /// classic [`Self::classify`] path.
    ///
    /// The EMC probe and promotion go through the context's own byte
    /// store (the window's copy-on-write delta in epoch mode, so
    /// per-core EMC updates stay private until the barrier); the
    /// MegaFlow tables are read from the frozen master snapshot
    /// ([`CoreMem::base`]) — control-plane writes only happen between
    /// windows, so the snapshot is exact.
    ///
    /// # Panics
    ///
    /// Panics if either the search backend or the EMC backend is not
    /// [`LookupBackend::Software`].
    pub fn classify_epoch<S: CoreMem, W: WildcardTable + ?Sized>(
        &mut self,
        sys: &mut S,
        megaflow: &W,
        key: &FlowKey,
        key_addr: Option<Addr>,
        at: Cycle,
    ) -> ClassifyOutcome {
        assert_eq!(
            self.exec.backend,
            LookupBackend::Software,
            "epoch classification is software-only"
        );
        assert_eq!(
            self.emc_backend,
            LookupBackend::Software,
            "epoch classification is software-only"
        );
        let mut t = at;
        let mut emc_done = None;

        if let Some(emc) = &self.emc {
            let trace = emc.lookup_traced(sys.data_mut(), key);
            let done = self.exec.run_sw(sys, &trace, key_addr, t);
            emc_done = Some(done);
            t = done;
            if let Some(v) = trace.result {
                sys.trace_span("datapath", "classify", at, t);
                return ClassifyOutcome {
                    action: Some(v),
                    emc_hit: true,
                    megaflow: None,
                    emc_done,
                    megaflow_done: None,
                    done: t,
                };
            }
        }

        let (m, probes) = megaflow.classify_traced(sys.base(), key, true);
        let mut done = t;
        for (_, tr) in &probes {
            done = self.exec.run_sw(sys, tr, None, done);
        }
        if let Some(hit) = &m {
            self.promote(sys.data_mut(), key, hit.action);
        }
        sys.trace_span("datapath", "classify", at, done);
        ClassifyOutcome {
            action: m.as_ref().map(|h| h.action),
            emc_hit: false,
            megaflow: m,
            emc_done,
            megaflow_done: Some(done),
            done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_classify::{distinct_masks, PacketHeader, SearchMode, TupleSpace};
    use halo_mem::MachineConfig;

    #[test]
    fn nb_region_slots_never_alias() {
        let mut mem = SimMemory::new();
        let nb = NbRegion::allocate(&mut mem, 12);
        assert_eq!(nb.lines(), 2);
        assert_eq!(nb.slots(), 16);
        let dests: Vec<Addr> = (0..12).map(|s| nb.dest(s)).collect();
        for (i, a) in dests.iter().enumerate() {
            for (j, b) in dests.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "slots {i} and {j} alias at {a:?}");
                }
            }
        }
        // Slot 11 sits on the second line — the old `slot % 8` single
        // line arithmetic would have put it on top of slot 3.
        assert_eq!(nb.dest(11), nb.line(1) + 3 * 8);
    }

    #[test]
    #[should_panic(expected = "outside region")]
    fn nb_region_rejects_out_of_range_slots() {
        let mut mem = SimMemory::new();
        let nb = NbRegion::allocate(&mut mem, 5);
        let _ = nb.dest(8);
    }

    #[test]
    fn one_line_region_matches_legacy_layout() {
        let mut mem = SimMemory::new();
        let nb = NbRegion::allocate(&mut mem, 5);
        assert_eq!(nb.lines(), 1);
        for s in 0..8 {
            assert_eq!(nb.dest(s), nb.base() + (s as u64 % 8) * 8);
        }
    }

    /// The datapath core promotes MegaFlow hits into the EMC only when
    /// the policy says so.
    #[test]
    fn promotion_policy_is_respected() {
        for promote in [true, false] {
            let mut sys = MemorySystem::new(MachineConfig::small());
            let exec = LookupExecutor::new(&mut sys, CoreId(0), LookupBackend::Software);
            let emc = Emc::new(sys.data_mut(), 1024);
            let mut megaflow = TupleSpace::new(
                sys.data_mut(),
                distinct_masks(4),
                256,
                SearchMode::FirstMatch,
            );
            let key = PacketHeader::synthetic(3).miniflow();
            megaflow.insert_rule(sys.data_mut(), 2, &key, 0, 7).unwrap();
            let mut dp = DatapathCore::new(exec, Some(emc), LookupBackend::Software, promote);
            let first = dp.classify(&mut sys, None, &megaflow, &key, None, Cycle(0));
            assert_eq!(first.action, Some(7));
            assert!(!first.emc_hit);
            let second = dp.classify(&mut sys, None, &megaflow, &key, None, first.done);
            assert_eq!(second.action, Some(7));
            assert_eq!(
                second.emc_hit, promote,
                "promotion={promote} must gate the EMC hit"
            );
        }
    }

    /// With tracing enabled every classify call records one
    /// `("datapath", "classify")` span — EMC hits and MegaFlow walks
    /// alike — whose latency matches the outcome's cycle delta.
    #[test]
    fn classify_records_latency_spans_when_traced() {
        let mut sys = MemorySystem::new(MachineConfig::small());
        sys.enable_tracing(1024);
        let exec = LookupExecutor::new(&mut sys, CoreId(0), LookupBackend::Software);
        let emc = Emc::new(sys.data_mut(), 1024);
        let mut megaflow = TupleSpace::new(
            sys.data_mut(),
            distinct_masks(4),
            256,
            SearchMode::FirstMatch,
        );
        let key = PacketHeader::synthetic(3).miniflow();
        megaflow.insert_rule(sys.data_mut(), 2, &key, 0, 7).unwrap();
        let mut dp = DatapathCore::new(exec, Some(emc), LookupBackend::Software, true);
        let mut t = Cycle(0);
        for _ in 0..10 {
            t = dp.classify(&mut sys, None, &megaflow, &key, None, t).done;
        }
        let h = sys
            .tracer()
            .histogram("datapath", "classify")
            .expect("classify spans recorded");
        assert_eq!(h.count(), 10);
        assert!(h.p99() > 0, "classify latency cannot be zero cycles");
    }

    /// Expiring a flow drops its EMC entry: the next packet walks
    /// MegaFlow again instead of hitting a stale cached action.
    #[test]
    fn invalidate_evicts_promoted_flows() {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let exec = LookupExecutor::new(&mut sys, CoreId(0), LookupBackend::Software);
        let emc = Emc::new(sys.data_mut(), 1024);
        let mut megaflow = TupleSpace::new(
            sys.data_mut(),
            distinct_masks(4),
            256,
            SearchMode::FirstMatch,
        );
        let key = PacketHeader::synthetic(3).miniflow();
        megaflow.insert_rule(sys.data_mut(), 2, &key, 0, 7).unwrap();
        let mut dp = DatapathCore::new(exec, Some(emc), LookupBackend::Software, true);
        let first = dp.classify(&mut sys, None, &megaflow, &key, None, Cycle(0));
        assert!(dp.invalidate(sys.data_mut(), &key), "promoted entry gone");
        megaflow.remove_rule(sys.data_mut(), 2, &key);
        let after = dp.classify(&mut sys, None, &megaflow, &key, None, first.done);
        assert!(!after.emc_hit, "stale EMC entry survived expiry");
        assert_eq!(after.action, None, "expired flow must miss everywhere");
    }
}
