//! Exact-match table backend selection: one enum to name the available
//! implementations and one dispatch table ([`ExactTable`]) so datapaths
//! can be configured with a backend at runtime without becoming generic
//! over it.
//!
//! The three backends model three points in the lookup
//! memory-access-pattern design space:
//!
//! * [`TableBackend::Cuckoo`] — the DPDK `rte_hash` baseline: negative
//!   lookups probe both candidate buckets.
//! * [`TableBackend::CuckooPlusPlus`] — per-bucket presence filters
//!   (Le Scouarnec's Cuckoo++) kill the secondary probe on negatives.
//! * [`TableBackend::Emoma`] — an on-chip counting Bloom filter
//!   (EMOMA) steers every lookup, hit or miss, to a single bucket.

use halo_mem::{Addr, SimMemory};
use halo_tables::{
    CuckooPlusPlusTable, CuckooTable, EmomaTable, FlowKey, FlowTable, LookupTrace, TableFullError,
};

/// Which exact-match table implementation backs a flow table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableBackend {
    /// DPDK-style cuckoo hashing (the baseline everywhere).
    #[default]
    Cuckoo,
    /// Cuckoo++ per-bucket presence filters.
    CuckooPlusPlus,
    /// EMOMA counting-Bloom-filter steering.
    Emoma,
}

impl TableBackend {
    /// Every selectable backend, in ablation order.
    #[must_use]
    pub fn all() -> [TableBackend; 3] {
        [
            TableBackend::Cuckoo,
            TableBackend::CuckooPlusPlus,
            TableBackend::Emoma,
        ]
    }

    /// Stable display name (used in figure rows and JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TableBackend::Cuckoo => "cuckoo",
            TableBackend::CuckooPlusPlus => "cuckoo++",
            TableBackend::Emoma => "emoma",
        }
    }

    /// Builds a table of this backend sized for `flows` entries at
    /// `occupancy`, with the same sizing arithmetic for every variant
    /// (so ablations compare equal-capacity tables).
    ///
    /// # Panics
    ///
    /// Panics if `occupancy` is not in `(0, 1]` or `key_len` is out of
    /// range.
    #[must_use]
    pub fn build(
        self,
        mem: &mut SimMemory,
        flows: usize,
        occupancy: f64,
        key_len: usize,
    ) -> ExactTable {
        match self {
            TableBackend::Cuckoo => ExactTable::Cuckoo(CuckooTable::with_capacity_for(
                mem, flows, occupancy, key_len,
            )),
            TableBackend::CuckooPlusPlus => ExactTable::CuckooPlusPlus(
                CuckooPlusPlusTable::with_capacity_for(mem, flows, occupancy, key_len),
            ),
            TableBackend::Emoma => ExactTable::Emoma(EmomaTable::with_capacity_for(
                mem, flows, occupancy, key_len,
            )),
        }
    }
}

/// A runtime-selected exact-match table: the concrete backend behind
/// one enum so configs can carry a [`TableBackend`] instead of a type
/// parameter. Implements [`FlowTable`] by delegation; the inherent
/// [`version_addr`](ExactTable::version_addr) /
/// [`all_lines`](ExactTable::all_lines) accessors keep the non-optional
/// signatures the cuckoo-specific call sites rely on.
#[derive(Debug)]
pub enum ExactTable {
    /// Baseline cuckoo table.
    Cuckoo(CuckooTable),
    /// Cuckoo++ with presence filters.
    CuckooPlusPlus(CuckooPlusPlusTable),
    /// EMOMA with CBF steering.
    Emoma(EmomaTable),
}

impl ExactTable {
    /// Which backend this table is.
    #[must_use]
    pub fn backend(&self) -> TableBackend {
        match self {
            ExactTable::Cuckoo(_) => TableBackend::Cuckoo,
            ExactTable::CuckooPlusPlus(_) => TableBackend::CuckooPlusPlus,
            ExactTable::Emoma(_) => TableBackend::Emoma,
        }
    }

    /// Address of the optimistic-lock version counter (every exact
    /// backend models one).
    #[must_use]
    pub fn version_addr(&self) -> Addr {
        match self {
            ExactTable::Cuckoo(t) => t.version_addr(),
            ExactTable::CuckooPlusPlus(t) => t.version_addr(),
            ExactTable::Emoma(t) => t.version_addr(),
        }
    }

    /// All memory lines of the table (for LLC warming).
    #[must_use]
    pub fn all_lines(&self) -> Vec<Addr> {
        match self {
            ExactTable::Cuckoo(t) => t.all_lines().collect(),
            ExactTable::CuckooPlusPlus(t) => t.all_lines().collect(),
            ExactTable::Emoma(t) => t.all_lines().collect(),
        }
    }
}

impl FlowTable for ExactTable {
    fn meta_addr(&self) -> Option<Addr> {
        match self {
            ExactTable::Cuckoo(t) => FlowTable::meta_addr(t),
            ExactTable::CuckooPlusPlus(t) => FlowTable::meta_addr(t),
            ExactTable::Emoma(t) => FlowTable::meta_addr(t),
        }
    }

    fn len(&self) -> usize {
        match self {
            ExactTable::Cuckoo(t) => FlowTable::len(t),
            ExactTable::CuckooPlusPlus(t) => FlowTable::len(t),
            ExactTable::Emoma(t) => FlowTable::len(t),
        }
    }

    fn capacity(&self) -> usize {
        match self {
            ExactTable::Cuckoo(t) => FlowTable::capacity(t),
            ExactTable::CuckooPlusPlus(t) => FlowTable::capacity(t),
            ExactTable::Emoma(t) => FlowTable::capacity(t),
        }
    }

    fn insert(
        &mut self,
        mem: &mut SimMemory,
        key: &FlowKey,
        value: u64,
    ) -> Result<(), TableFullError> {
        match self {
            ExactTable::Cuckoo(t) => t.insert(mem, key, value),
            ExactTable::CuckooPlusPlus(t) => t.insert(mem, key, value),
            ExactTable::Emoma(t) => t.insert(mem, key, value),
        }
    }

    fn remove(&mut self, mem: &mut SimMemory, key: &FlowKey) -> Option<u64> {
        match self {
            ExactTable::Cuckoo(t) => t.remove(mem, key),
            ExactTable::CuckooPlusPlus(t) => t.remove(mem, key),
            ExactTable::Emoma(t) => t.remove(mem, key),
        }
    }

    fn lookup_traced(&self, mem: &SimMemory, key: &FlowKey, software_locking: bool) -> LookupTrace {
        match self {
            ExactTable::Cuckoo(t) => t.lookup_traced(mem, key, software_locking),
            ExactTable::CuckooPlusPlus(t) => t.lookup_traced(mem, key, software_locking),
            ExactTable::Emoma(t) => t.lookup_traced(mem, key, software_locking),
        }
    }

    fn warm_lines(&self) -> Vec<Addr> {
        self.all_lines()
    }

    fn version_addr(&self) -> Option<Addr> {
        Some(ExactTable::version_addr(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_tables::TraceStep;

    /// Every backend builds through the selector, round-trips the same
    /// key set, and exposes the inherent accessors the datapaths use.
    #[test]
    fn every_backend_builds_and_serves() {
        let mut mem = SimMemory::new();
        for backend in TableBackend::all() {
            let mut t = backend.build(&mut mem, 500, 0.85, 13);
            assert_eq!(t.backend(), backend);
            for id in 0..500u64 {
                t.insert(&mut mem, &FlowKey::synthetic(id, 13), id)
                    .unwrap_or_else(|e| panic!("{}: insert {id}: {e:?}", backend.name()));
            }
            for id in 0..500u64 {
                assert_eq!(
                    t.lookup(&mem, &FlowKey::synthetic(id, 13)),
                    Some(id),
                    "{} lost key {id}",
                    backend.name()
                );
            }
            assert!(!t.all_lines().is_empty());
            assert_eq!(FlowTable::version_addr(&t), Some(t.version_addr()));
        }
    }

    /// The dispatch enum is transparent: the trace an [`ExactTable`]
    /// produces is byte-identical to the wrapped table's own.
    #[test]
    fn dispatch_is_trace_transparent() {
        let mut mem = SimMemory::new();
        let mut raw = CuckooTable::with_capacity_for(&mut mem, 100, 0.85, 13);
        let k = FlowKey::synthetic(7, 13);
        raw.insert(&mut mem, &k, 7).unwrap();
        let direct = raw.lookup_traced(&mem, &k, true);
        let wrapped = ExactTable::Cuckoo(raw);
        let via = wrapped.lookup_traced(&mem, &k, true);
        assert_eq!(direct.result, via.result);
        assert_eq!(direct.steps, via.steps);
    }

    /// The backends differ exactly where the papers say they do: on a
    /// miss, baseline cuckoo loads two buckets, Cuckoo++ and EMOMA one.
    #[test]
    fn miss_cost_ranks_backends() {
        let mut mem = SimMemory::new();
        let miss = FlowKey::synthetic(99_999, 13);
        let loads = |t: &ExactTable, mem: &mut SimMemory| {
            t.lookup_traced(mem, &miss, false)
                .steps
                .iter()
                .filter(|s| matches!(s, TraceStep::LoadBucket(_)))
                .count()
        };
        let mut tables: Vec<ExactTable> = TableBackend::all()
            .into_iter()
            .map(|b| b.build(&mut mem, 500, 0.85, 13))
            .collect();
        for t in &mut tables {
            for id in 0..200u64 {
                t.insert(&mut mem, &FlowKey::synthetic(id, 13), id).unwrap();
            }
        }
        assert_eq!(loads(&tables[0], &mut mem), 2, "cuckoo probes both");
        assert_eq!(loads(&tables[1], &mut mem), 1, "cuckoo++ filtered");
        assert_eq!(loads(&tables[2], &mut mem), 1, "emoma steered");
    }
}
