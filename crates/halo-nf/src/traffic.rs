//! IXIA-like synthetic traffic generation (§3.1, §3.2).
//!
//! The paper drives its characterization with a hardware traffic
//! generator emitting 64 B UDP packets over three representative data-
//! center scenarios (five configurations). Since virtual switches only
//! look at headers, the generator produces [`PacketHeader`] streams with
//! controlled flow counts, rule counts, and popularity skew.

use halo_classify::PacketHeader;
use halo_sim::{SplitMix64, Zipf};

/// The three scenario shapes of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Overlay networks: many flows encapsulated under few headers, so
    /// the total flow count is small (< 100 K).
    SmallFlows {
        /// Number of distinct flows.
        flows: usize,
    },
    /// Routing to many containers: many flows, few rules (wildcard
    /// patterns), uniform popularity.
    ManyFlows {
        /// Number of distinct flows.
        flows: usize,
        /// Number of wildcard patterns (MegaFlow tuples).
        rules: usize,
    },
    /// Gateway / top-of-rack: many flows and a set of hot rules with
    /// skewed popularity.
    ManyFlowsHotRules {
        /// Number of distinct flows.
        flows: usize,
        /// Number of wildcard patterns.
        rules: usize,
    },
}

impl Scenario {
    /// Distinct flows in the scenario.
    #[must_use]
    pub fn flows(&self) -> usize {
        match *self {
            Scenario::SmallFlows { flows }
            | Scenario::ManyFlows { flows, .. }
            | Scenario::ManyFlowsHotRules { flows, .. } => flows,
        }
    }

    /// MegaFlow tuple count (wildcard patterns).
    #[must_use]
    pub fn rules(&self) -> usize {
        match *self {
            Scenario::SmallFlows { .. } => 1,
            Scenario::ManyFlows { rules, .. } | Scenario::ManyFlowsHotRules { rules, .. } => rules,
        }
    }

    /// Popularity skew: hot-rule scenarios use a Zipf exponent of ~0.99
    /// (data-center heavy hitters); the others are uniform.
    #[must_use]
    pub fn zipf_theta(&self) -> f64 {
        match self {
            Scenario::ManyFlowsHotRules { .. } => 0.99,
            _ => 0.0,
        }
    }

    /// Upgrades the scenario to the streaming engine: same flow count
    /// and skew as [`TrafficGen`], but event-based and composable with
    /// churn, elephant/mice, and flood knobs via
    /// [`StreamConfig`](crate::StreamConfig).
    #[must_use]
    pub fn streaming(&self, seed: u64) -> crate::StreamingTrafficGen {
        crate::StreamingTrafficGen::new(crate::StreamConfig::from_scenario(self), seed)
    }
}

/// The five Fig. 3 configurations, scaled to simulation-friendly flow
/// counts (the paper uses 10 K–1 M; a 10:1 scale preserves every
/// EMC/LLC capacity relationship because the simulated caches are
/// Table-2 sized and the EMC is 8 K entries).
#[must_use]
pub fn fig3_configs() -> Vec<(&'static str, Scenario)> {
    vec![
        ("4K flows", Scenario::SmallFlows { flows: 4_000 }),
        ("20K flows", Scenario::SmallFlows { flows: 20_000 }),
        (
            "40K flows / 5 rules",
            Scenario::ManyFlows {
                flows: 40_000,
                rules: 5,
            },
        ),
        (
            "100K flows / 10 rules",
            Scenario::ManyFlows {
                flows: 100_000,
                rules: 10,
            },
        ),
        (
            "100K flows / 20 hot rules",
            Scenario::ManyFlowsHotRules {
                flows: 100_000,
                rules: 20,
            },
        ),
    ]
}

/// A deterministic packet stream over a scenario.
///
/// # Examples
///
/// ```
/// use halo_nf::{Scenario, TrafficGen};
///
/// let mut gen = TrafficGen::new(Scenario::SmallFlows { flows: 100 }, 42);
/// let a = gen.next_packet();
/// let b = gen.next_packet();
/// assert_ne!(a, b); // (almost surely) different flows
/// ```
#[derive(Debug)]
pub struct TrafficGen {
    scenario: Scenario,
    rng: SplitMix64,
    zipf: Option<Zipf>,
    generated: u64,
}

impl TrafficGen {
    /// Creates a generator for `scenario` with a fixed `seed`.
    #[must_use]
    pub fn new(scenario: Scenario, seed: u64) -> Self {
        let theta = scenario.zipf_theta();
        let zipf = if theta > 0.0 {
            Some(Zipf::new(scenario.flows(), theta))
        } else {
            None
        };
        TrafficGen {
            scenario,
            rng: SplitMix64::new(seed),
            zipf,
            generated: 0,
        }
    }

    /// The scenario being generated.
    #[must_use]
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Packets generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// The flow id of the next packet.
    pub fn next_flow(&mut self) -> u64 {
        self.generated += 1;
        match &self.zipf {
            Some(z) => z.sample(&mut self.rng) as u64,
            None => self.rng.below(self.scenario.flows() as u64),
        }
    }

    /// The next packet header.
    pub fn next_packet(&mut self) -> PacketHeader {
        PacketHeader::synthetic(self.next_flow())
    }

    /// Enumerates every distinct flow of the scenario (for rule
    /// installation).
    pub fn all_flows(&self) -> impl Iterator<Item = PacketHeader> {
        (0..self.scenario.flows() as u64).map(PacketHeader::synthetic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let s = Scenario::ManyFlows {
            flows: 1000,
            rules: 5,
        };
        let mut a = TrafficGen::new(s, 7);
        let mut b = TrafficGen::new(s, 7);
        for _ in 0..100 {
            assert_eq!(a.next_packet(), b.next_packet());
        }
    }

    #[test]
    fn flows_within_bounds() {
        let mut g = TrafficGen::new(Scenario::SmallFlows { flows: 50 }, 1);
        for _ in 0..1000 {
            assert!(g.next_flow() < 50);
        }
        assert_eq!(g.generated(), 1000);
    }

    #[test]
    fn hot_rules_scenario_is_skewed() {
        let mut g = TrafficGen::new(
            Scenario::ManyFlowsHotRules {
                flows: 10_000,
                rules: 20,
            },
            2,
        );
        let mut top100 = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            if g.next_flow() < 100 {
                top100 += 1;
            }
        }
        // Zipf(0.99): top-1% of flows take far more than 1% of packets.
        assert!(top100 > N / 20, "not skewed: {top100}");
    }

    #[test]
    fn uniform_scenario_is_not_skewed() {
        let mut g = TrafficGen::new(
            Scenario::ManyFlows {
                flows: 10_000,
                rules: 5,
            },
            2,
        );
        let mut top100 = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            if g.next_flow() < 100 {
                top100 += 1;
            }
        }
        assert!(top100 < N / 50, "unexpectedly skewed: {top100}");
    }

    #[test]
    fn fig3_has_five_increasing_configs() {
        let configs = fig3_configs();
        assert_eq!(configs.len(), 5);
        for w in configs.windows(2) {
            assert!(w[0].1.flows() <= w[1].1.flows());
        }
        assert_eq!(configs[4].1.rules(), 20);
    }

    #[test]
    fn all_flows_enumerates_exactly() {
        let g = TrafficGen::new(Scenario::SmallFlows { flows: 10 }, 1);
        assert_eq!(g.all_flows().count(), 10);
    }

    #[test]
    fn streaming_bridge_stays_within_the_scenario_flow_set() {
        let mut g = Scenario::SmallFlows { flows: 100 }.streaming(1);
        for _ in 0..500 {
            let h = g.next_packet();
            assert_eq!(h.miniflow().len(), 16);
        }
        assert_eq!(g.live_count(), 100, "no churn in the plain bridge");
    }
}
