//! Range-heavy ruleset generation for the wildcard-backend ablation.
//!
//! Tuple space search keys every rule by one mask, so a ruleset of
//! exact flows costs one tuple per mask shape. Real ACL/gateway rule
//! sets instead carry per-field *ranges* (port spans, address blocks),
//! which TSS can only express by prefix expansion — the RVH backend
//! (arXiv:1909.07159) targets exactly that gap. This module generates
//! deterministic rulesets along that spectrum, plus hit/miss traffic
//! for them, so the `ablation-wildcard` experiment and the halo-check
//! differential drivers share one vocabulary.
//!
//! Every generated ruleset has **unique priorities** (backends must
//! agree on the winner without relying on tie-break conventions) and
//! port spans are kept small enough (≤ 1 K values) that TSS expansion
//! stays tractable.

use halo_classify::{FieldRange, PacketHeader, RangeRule, FIELDS, NUM_FIELDS};
use halo_sim::SplitMix64;
use halo_tables::FlowKey;

/// Field indices into [`FIELDS`] (miniflow layout).
const SRC_IP: usize = 0;
const DST_IP: usize = 1;
const SRC_PORT: usize = 2;
const DST_PORT: usize = 3;
const PROTO: usize = 4;
const IN_PORT: usize = 5;
const VLAN: usize = 6;

/// The shape of a generated ruleset: how range-heavy it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RulesetShape {
    /// Every rule pins all seven fields exactly (the MegaFlow steady
    /// state); the best case for tuple space search.
    ExactHeavy,
    /// Firewall-style rules: exact endpoints, a destination-port span
    /// per rule (service ranges), wildcarded remainder.
    PortRange,
    /// A gateway ACL mix: one third exact five-tuples, one third port
    /// spans, one third address-block rules with port spans — several
    /// rules share endpoints so priorities decide overlaps.
    AclMix,
}

impl RulesetShape {
    /// Every shape, in ablation order (least to most range-heavy).
    #[must_use]
    pub fn all() -> [RulesetShape; 3] {
        [
            RulesetShape::ExactHeavy,
            RulesetShape::PortRange,
            RulesetShape::AclMix,
        ]
    }

    /// Stable display name (figure rows and JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RulesetShape::ExactHeavy => "exact-heavy",
            RulesetShape::PortRange => "port-range",
            RulesetShape::AclMix => "acl-mix",
        }
    }
}

/// All-wildcard rule body to specialize per shape.
fn any_ranges() -> [FieldRange; NUM_FIELDS] {
    let mut ranges = [FieldRange::exact(0); NUM_FIELDS];
    for (i, r) in ranges.iter_mut().enumerate() {
        *r = FieldRange::any(i);
    }
    ranges
}

/// A destination-port span for rule `i`: a power-of-two aligned block
/// of 16–1024 ports (aligned blocks expand to a single prefix, so the
/// TSS expansion factor stays bounded), plus the occasional unaligned
/// span to exercise multi-prefix decomposition.
fn port_span(rng: &mut SplitMix64) -> FieldRange {
    let width = 4 + (rng.below(7) as u32); // 16..=1024 ports
    let size = 1u64 << width;
    let lo = rng.below((1 << 16) / size) * size;
    if rng.chance(0.25) {
        // Unaligned: trim both ends so decomposition emits several
        // prefixes (still ≤ 2·16−2 per field).
        let trim = 1 + rng.below(size / 4);
        FieldRange::span(lo + trim, lo + size - 1 - trim.min(size / 4))
    } else {
        FieldRange::span(lo, lo + size - 1)
    }
}

/// Generates `rules` deterministic range rules of the given shape.
///
/// Priorities are unique (descending from `rules`), actions are the
/// rule index, and every rule is satisfiable. Rules of the ACL mix
/// deliberately overlap on shared endpoints.
///
/// # Panics
///
/// Panics if `rules` does not fit the 16-bit priority space.
#[must_use]
pub fn generate_ruleset(shape: RulesetShape, rules: usize, seed: u64) -> Vec<RangeRule> {
    assert!(rules < u16::MAX as usize, "priority space is 16-bit");
    let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut out = Vec::with_capacity(rules);
    for i in 0..rules {
        let priority = (rules - i) as u16;
        let action = i as u64;
        let rule = match shape {
            RulesetShape::ExactHeavy => {
                let key = PacketHeader::synthetic(i as u64).miniflow();
                RangeRule::exact_flow(&key, priority, action)
            }
            RulesetShape::PortRange => {
                let mut ranges = any_ranges();
                ranges[SRC_IP] = FieldRange::exact(0x0a00_0000 | i as u64);
                ranges[DST_IP] = FieldRange::exact(0x0a80_0000 | i as u64);
                ranges[DST_PORT] = port_span(&mut rng);
                ranges[PROTO] = FieldRange::exact(if rng.chance(0.5) { 6 } else { 17 });
                RangeRule {
                    ranges,
                    priority,
                    action,
                }
            }
            RulesetShape::AclMix => {
                let mut ranges = any_ranges();
                // A quarter of the address space is shared, so rules
                // overlap and priorities pick winners.
                let host = (i % (rules / 4 + 1)) as u64;
                match i % 3 {
                    0 => {
                        let key = PacketHeader::synthetic(host).miniflow();
                        let mut r = RangeRule::exact_flow(&key, priority, action);
                        r.ranges[VLAN] = FieldRange::exact(i as u64 & 0xfff);
                        r
                    }
                    1 => {
                        ranges[DST_IP] = FieldRange::exact(0x0a80_0000 | host);
                        ranges[DST_PORT] = port_span(&mut rng);
                        ranges[SRC_PORT] = port_span(&mut rng);
                        RangeRule {
                            ranges,
                            priority,
                            action,
                        }
                    }
                    _ => {
                        // An aligned /24-style source block.
                        let block = (0x0a00_0000 | (host << 8)) & !0xff;
                        ranges[SRC_IP] = FieldRange::span(block, block | 0xff);
                        ranges[DST_PORT] = port_span(&mut rng);
                        ranges[IN_PORT] = FieldRange::exact(i as u64 & 0x7f);
                        RangeRule {
                            ranges,
                            priority,
                            action,
                        }
                    }
                }
            }
        };
        out.push(rule);
    }
    out
}

/// A uniformly random key inside `rule`'s hyperrectangle (guaranteed
/// hit for that rule, though a higher-priority overlap may still win).
#[must_use]
pub fn sample_point(rule: &RangeRule, rng: &mut SplitMix64) -> FlowKey {
    let mut bytes = [0u8; halo_classify::MINIFLOW_LEN];
    for (i, f) in FIELDS.iter().enumerate() {
        let r = rule.ranges[i];
        let v = r.lo + rng.below(r.hi - r.lo + 1);
        f.write(&mut bytes, v);
    }
    FlowKey::from_bytes(&bytes)
}

/// A deterministic traffic mix over a ruleset: `hit_fraction` of keys
/// are sampled inside a uniformly chosen rule, the rest from flow ids
/// far outside the installed space (mostly misses).
#[must_use]
pub fn ruleset_traffic(
    rules: &[RangeRule],
    packets: usize,
    hit_fraction: f64,
    seed: u64,
) -> Vec<FlowKey> {
    let mut rng = SplitMix64::new(seed);
    (0..packets)
        .map(|_| {
            if !rules.is_empty() && rng.chance(hit_fraction) {
                let r = &rules[rng.below(rules.len() as u64) as usize];
                sample_point(r, &mut rng)
            } else {
                PacketHeader::synthetic(1 << 40 | rng.below(1 << 20)).miniflow()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rulesets_are_deterministic_and_unique_priority() {
        for shape in RulesetShape::all() {
            let a = generate_ruleset(shape, 64, 9);
            let b = generate_ruleset(shape, 64, 9);
            assert_eq!(a.len(), 64);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.ranges, y.ranges, "{}", shape.name());
                assert_eq!(x.priority, y.priority);
            }
            let mut prios: Vec<u16> = a.iter().map(|r| r.priority).collect();
            prios.sort_unstable();
            prios.dedup();
            assert_eq!(prios.len(), 64, "{}: duplicate priorities", shape.name());
        }
    }

    #[test]
    fn sampled_points_hit_their_rule() {
        let mut rng = SplitMix64::new(3);
        for shape in RulesetShape::all() {
            for rule in generate_ruleset(shape, 40, 11) {
                for _ in 0..4 {
                    let key = sample_point(&rule, &mut rng);
                    assert!(rule.matches(&key), "{}: sampled miss", shape.name());
                }
            }
        }
    }

    #[test]
    fn port_spans_stay_bounded() {
        for shape in [RulesetShape::PortRange, RulesetShape::AclMix] {
            for rule in generate_ruleset(shape, 128, 5) {
                for f in [SRC_PORT, DST_PORT] {
                    let r = rule.ranges[f];
                    // A full-domain field is a single wildcard prefix;
                    // only proper spans threaten the expansion factor.
                    assert!(
                        r.is_any(f) || r.hi - r.lo < 1024,
                        "{}: span too wide",
                        shape.name()
                    );
                }
            }
        }
    }

    #[test]
    fn exact_heavy_rules_have_no_ranges() {
        for rule in generate_ruleset(RulesetShape::ExactHeavy, 32, 1) {
            assert!(rule.ranges.iter().all(FieldRange::is_exact));
        }
    }

    #[test]
    fn traffic_mix_hits_and_misses() {
        let rules = generate_ruleset(RulesetShape::PortRange, 64, 7);
        let keys = ruleset_traffic(&rules, 400, 0.8, 13);
        let hits = keys
            .iter()
            .filter(|k| rules.iter().any(|r| r.matches(k)))
            .count();
        assert!(hits > 200, "hit fraction not honored: {hits}");
        assert!(hits < 400, "misses must exist: {hits}");
    }
}
