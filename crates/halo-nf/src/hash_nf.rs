//! Hash-table-based network functions: NAT, prads, and the IP packet
//! filter (§6.5, Fig. 13, Table 3).
//!
//! Each of these NFs is dominated by a hash-table lookup per packet
//! (address translation, asset records, filter rules) plus light
//! per-packet processing — exactly the pattern HALO's generic lookup
//! instructions accelerate.

use halo_accel::HaloEngine;
use halo_cpu::Program;
use halo_datapath::{LookupBackend, LookupExecutor, NbRegion};
use halo_mem::{CoreId, MemorySystem};
use halo_sim::SplitMix64;
use halo_tables::{CuckooTable, FlowKey};

/// Which hash-table NF to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashNfKind {
    /// DPDK-based NAT: exact-match translation table.
    Nat,
    /// prads passive asset detection: asset-record table.
    Prads,
    /// Hash-table-based IP packet filter.
    PacketFilter,
}

impl HashNfKind {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HashNfKind::Nat => "NAT",
            HashNfKind::Prads => "prads",
            HashNfKind::PacketFilter => "PacketFilter",
        }
    }

    /// The Table 3 configurations (entry/rule counts) for this NF.
    #[must_use]
    pub fn table3_sizes(self) -> [usize; 3] {
        match self {
            HashNfKind::Nat | HashNfKind::Prads => [1_000, 10_000, 100_000],
            HashNfKind::PacketFilter => [100, 1_000, 10_000],
        }
    }

    /// Lookups per packet (NAT does two: LAN->WAN map + reverse check;
    /// prads one asset probe; the filter one rule probe).
    #[must_use]
    pub fn lookups_per_packet(self) -> usize {
        match self {
            HashNfKind::Nat => 2,
            HashNfKind::Prads | HashNfKind::PacketFilter => 1,
        }
    }

    /// Non-lookup per-packet work `(loads, stores, compute)`.
    ///
    /// Calibrated so the lookup share of each NF's per-packet time
    /// matches the speedups of Fig. 13 (2.3x-2.7x): NAT rewrites
    /// headers and fixes checksums, prads updates asset records, the
    /// filter only renders a verdict.
    #[must_use]
    pub fn extra_mix(self) -> (usize, usize, usize) {
        match self {
            HashNfKind::Nat => (12, 8, 700),
            HashNfKind::Prads => (6, 4, 330),
            HashNfKind::PacketFilter => (4, 1, 420),
        }
    }

    /// All three kinds.
    #[must_use]
    pub fn all() -> [HashNfKind; 3] {
        [HashNfKind::Nat, HashNfKind::Prads, HashNfKind::PacketFilter]
    }
}

/// Report of a hash-NF run.
#[derive(Debug, Clone, Copy)]
pub struct HashNfReport {
    /// Packets processed.
    pub packets: u64,
    /// Total cycles elapsed.
    pub cycles: u64,
    /// Average cycles per packet.
    pub cycles_per_packet: f64,
}

/// An instantiated hash-table NF.
///
/// # Examples
///
/// ```
/// use halo_mem::{CoreId, MachineConfig, MemorySystem};
/// use halo_nf::{HashNf, HashNfKind};
///
/// let mut sys = MemorySystem::new(MachineConfig::small());
/// let mut nf = HashNf::new(&mut sys, CoreId(0), HashNfKind::Nat, 1_000, 7);
/// nf.warm(&mut sys);
/// let report = nf.run_software(&mut sys, 100);
/// assert_eq!(report.packets, 100);
/// assert!(report.cycles_per_packet > 0.0);
/// ```
#[derive(Debug)]
pub struct HashNf {
    kind: HashNfKind,
    exec: LookupExecutor,
    table: CuckooTable,
    entries: usize,
    rng: SplitMix64,
}

impl HashNf {
    /// Key length used by these NFs (IPv4 5-tuple).
    pub const KEY_LEN: usize = 13;

    /// Builds the NF with `entries` installed table entries.
    pub fn new(
        sys: &mut MemorySystem,
        core: CoreId,
        kind: HashNfKind,
        entries: usize,
        seed: u64,
    ) -> Self {
        let mut table =
            CuckooTable::with_capacity_for(sys.data_mut(), entries, 0.85, Self::KEY_LEN);
        for id in 0..entries as u64 {
            table
                .insert(sys.data_mut(), &FlowKey::synthetic(id, Self::KEY_LEN), id)
                .expect("sized for the entry count");
        }
        let exec = LookupExecutor::new(sys, core, LookupBackend::Software);
        exec.warm_scratch(sys);
        HashNf {
            kind,
            exec,
            table,
            entries,
            rng: SplitMix64::new(seed),
        }
    }

    /// The NF kind.
    #[must_use]
    pub fn kind(&self) -> HashNfKind {
        self.kind
    }

    /// Installed table entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// The NF's lookup table.
    #[must_use]
    pub fn table(&self) -> &CuckooTable {
        &self.table
    }

    /// Pre-loads the table into the LLC.
    pub fn warm(&self, sys: &mut MemorySystem) {
        for a in self.table.all_lines().collect::<Vec<_>>() {
            sys.warm_llc(a);
        }
    }

    fn extra_program(&mut self) -> Program {
        let (loads, stores, compute) = self.kind.extra_mix();
        let scratch = self.exec.scratch_mut();
        let mut p = Program::new();
        for _ in 0..loads {
            p.load(scratch.next(), &[]);
        }
        for _ in 0..stores {
            p.store(scratch.next(), &[]);
        }
        for _ in 0..compute {
            p.compute(1, &[]);
        }
        p
    }

    fn next_key(&mut self) -> FlowKey {
        FlowKey::synthetic(self.rng.below(self.entries as u64), Self::KEY_LEN)
    }

    /// Runs `packets` packets with software lookups.
    pub fn run_software(&mut self, sys: &mut MemorySystem, packets: u64) -> HashNfReport {
        let start = self.exec.ready_at();
        let mut t = start;
        for _ in 0..packets {
            for _ in 0..self.kind.lookups_per_packet() {
                let key = self.next_key();
                let tr = self.table.lookup_traced(sys.data_mut(), &key, true);
                debug_assert!(tr.result.is_some());
                t = self.exec.run_sw(sys, &tr, None, t);
            }
            let extra = self.extra_program();
            t = self.exec.run(&extra, sys, t).finish;
        }
        let cycles = (t - start).0;
        HashNfReport {
            packets,
            cycles,
            cycles_per_packet: cycles as f64 / packets as f64,
        }
    }

    /// Runs `packets` packets with HALO non-blocking lookups, processed
    /// in DPDK-style bursts of 8: the burst's lookups are dispatched
    /// together, the per-packet processing overlaps with the in-flight
    /// queries, and a single `SNAPSHOT_READ` per burst collects the
    /// destination cache line.
    pub fn run_halo(
        &mut self,
        sys: &mut MemorySystem,
        engine: &mut HaloEngine,
        packets: u64,
    ) -> HashNfReport {
        const BURST: u64 = 8;
        let start = self.exec.ready_at();
        let mut t = start;
        // Two destination lines: a burst of 8 packets issues at most 16
        // non-blocking lookups (NAT does two per packet).
        let nb = NbRegion::from_raw(sys.data_mut().alloc_lines(128), 16);
        let mut remaining = packets;
        while remaining > 0 {
            let burst = BURST.min(remaining);
            remaining -= burst;
            let mut lookups_done = t;
            let mut slot = 0u64;
            for _ in 0..burst {
                for _ in 0..self.kind.lookups_per_packet() {
                    let key = self.next_key();
                    let h = engine.lookup_nb(
                        sys,
                        self.exec.core_id(),
                        &self.table,
                        &key,
                        None,
                        nb.dest((slot % 16) as usize),
                        t + halo_sim::Cycles(slot), // ~1 issue/cycle
                    );
                    debug_assert!(h.result.is_some());
                    lookups_done = lookups_done.max(h.result_at);
                    slot += 1;
                }
            }
            // Per-packet processing overlaps with the in-flight lookups.
            let mut extra_done = t;
            for _ in 0..burst {
                let extra = self.extra_program();
                extra_done = self.exec.run(&extra, sys, extra_done).finish;
            }
            // One snapshot read per burst to collect results.
            let (_, snap) = engine.snapshot_read(
                sys,
                self.exec.core_id(),
                nb.base(),
                lookups_done.max(extra_done),
            );
            t = snap;
        }
        let cycles = (t - start).0;
        HashNfReport {
            packets,
            cycles,
            cycles_per_packet: cycles as f64 / packets as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_accel::AcceleratorConfig;
    use halo_mem::MachineConfig;

    #[test]
    fn software_run_reports_sane_numbers() {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let mut nf = HashNf::new(&mut sys, CoreId(0), HashNfKind::PacketFilter, 1_000, 1);
        nf.warm(&mut sys);
        let r = nf.run_software(&mut sys, 50);
        assert_eq!(r.packets, 50);
        assert!(r.cycles_per_packet > 50.0);
    }

    #[test]
    fn halo_beats_software_on_every_kind() {
        for kind in HashNfKind::all() {
            let mut sys = MemorySystem::new(MachineConfig::small());
            let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
            let mut nf = HashNf::new(&mut sys, CoreId(0), kind, 10_000, 1);
            nf.warm(&mut sys);
            let sw = nf.run_software(&mut sys, 80);

            let mut sys2 = MemorySystem::new(MachineConfig::small());
            let mut nf2 = HashNf::new(&mut sys2, CoreId(0), kind, 10_000, 1);
            nf2.warm(&mut sys2);
            let hw = nf2.run_halo(&mut sys2, &mut engine, 80);

            assert!(
                hw.cycles_per_packet < sw.cycles_per_packet,
                "{}: halo {} >= sw {}",
                kind.name(),
                hw.cycles_per_packet,
                sw.cycles_per_packet
            );
        }
    }

    #[test]
    fn nat_does_two_lookups() {
        assert_eq!(HashNfKind::Nat.lookups_per_packet(), 2);
        assert_eq!(HashNfKind::Prads.lookups_per_packet(), 1);
    }

    #[test]
    fn table3_sizes_match_paper() {
        assert_eq!(HashNfKind::Nat.table3_sizes(), [1_000, 10_000, 100_000]);
        assert_eq!(
            HashNfKind::PacketFilter.table3_sizes(),
            [100, 1_000, 10_000]
        );
    }
}
