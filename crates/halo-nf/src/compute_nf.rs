//! Compute-intensive network functions (ACL, Snort, mTCP) — the
//! co-runners of the interference study (§6.3, Fig. 12, Table 3).
//!
//! For Fig. 12 what matters about these NFs is their *cache behaviour*:
//! each has a hot private working set (rule tries, pattern tables,
//! connection state) that lives in L1/L2 when the NF runs alone and gets
//! evicted when a software virtual switch shares the core via SMT. The
//! models reproduce exactly that: per-packet kernels with a fixed
//! instruction mix over a configurable working set.

use halo_cpu::{CoreModel, ExecReport, Program};
use halo_mem::{Addr, CoreId, MemorySystem, CACHE_LINE};
use halo_sim::{Cycle, SplitMix64};

/// Which compute-intensive NF to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeNfKind {
    /// DPDK access-control list: trie walks over a compact ruleset.
    Acl,
    /// Snort intrusion detection: pattern-matching tables.
    Snort,
    /// mTCP user-level TCP stack: per-connection state.
    Mtcp,
}

impl ComputeNfKind {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ComputeNfKind::Acl => "ACL",
            ComputeNfKind::Snort => "Snort",
            ComputeNfKind::Mtcp => "mTCP",
        }
    }

    /// Working-set size in cache lines (ACL: compact trie ~24 KB;
    /// Snort: large pattern tables ~96 KB; mTCP: connection state
    /// ~48 KB).
    #[must_use]
    pub fn working_set_lines(self) -> u64 {
        match self {
            ComputeNfKind::Acl => 384,
            ComputeNfKind::Snort => 1536,
            ComputeNfKind::Mtcp => 768,
        }
    }

    /// `(loads, stores, compute)` micro-ops per packet.
    #[must_use]
    pub fn mix(self) -> (usize, usize, usize) {
        match self {
            ComputeNfKind::Acl => (24, 2, 150),
            ComputeNfKind::Snort => (40, 4, 260),
            ComputeNfKind::Mtcp => (28, 10, 190),
        }
    }

    /// All three kinds.
    #[must_use]
    pub fn all() -> [ComputeNfKind; 3] {
        [
            ComputeNfKind::Acl,
            ComputeNfKind::Snort,
            ComputeNfKind::Mtcp,
        ]
    }
}

/// An instantiated compute-intensive NF bound to a core.
///
/// # Examples
///
/// ```
/// use halo_mem::{CoreId, MachineConfig, MemorySystem};
/// use halo_nf::{ComputeNf, ComputeNfKind};
/// use halo_sim::Cycle;
///
/// let mut sys = MemorySystem::new(MachineConfig::small());
/// let mut nf = ComputeNf::new(&mut sys, CoreId(1), ComputeNfKind::Acl, 42);
/// nf.warm(&mut sys);
/// let report = nf.process_packet(&mut sys, Cycle(0));
/// assert!(report.duration().0 > 0);
/// ```
#[derive(Debug)]
pub struct ComputeNf {
    kind: ComputeNfKind,
    core: CoreId,
    core_model: CoreModel,
    ws_base: Addr,
    ws_lines: u64,
    rng: SplitMix64,
    packets: u64,
}

impl ComputeNf {
    /// Allocates the NF's working set and binds it to `core`.
    pub fn new(sys: &mut MemorySystem, core: CoreId, kind: ComputeNfKind, seed: u64) -> Self {
        let ws_lines = kind.working_set_lines();
        let ws_base = sys.data_mut().alloc_lines(ws_lines * CACHE_LINE);
        ComputeNf {
            kind,
            core,
            core_model: CoreModel::new(core, sys.config()),
            ws_base,
            ws_lines,
            rng: SplitMix64::new(seed),
            packets: 0,
        }
    }

    /// The NF kind.
    #[must_use]
    pub fn kind(&self) -> ComputeNfKind {
        self.kind
    }

    /// Packets processed.
    #[must_use]
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Pre-loads the working set into the core's private caches (the NF
    /// running alone in steady state).
    pub fn warm(&self, sys: &mut MemorySystem) {
        for i in 0..self.ws_lines {
            sys.warm_private(self.core, self.ws_base + i * CACHE_LINE);
        }
    }

    /// Builds the per-packet kernel: dependent walk over random
    /// working-set lines (trie descent / pattern probes) plus compute.
    fn packet_program(&mut self) -> Program {
        let (loads, stores, compute) = self.kind.mix();
        let mut p = Program::new();
        // A short dependent chain (trie walk), then independent probes.
        let chain_len = loads / 3;
        let mut last = None;
        for _ in 0..chain_len {
            let a = self.ws_base + self.rng.below(self.ws_lines) * CACHE_LINE;
            let deps: Vec<u32> = last.into_iter().collect();
            last = Some(p.load(a, &deps));
        }
        for _ in chain_len..loads {
            let a = self.ws_base + self.rng.below(self.ws_lines) * CACHE_LINE;
            p.load(a, &[]);
        }
        for _ in 0..stores {
            let a = self.ws_base + self.rng.below(self.ws_lines) * CACHE_LINE;
            p.store(a, &[]);
        }
        for _ in 0..compute {
            p.compute(1, &[]);
        }
        p
    }

    /// Processes one packet; returns the execution report.
    pub fn process_packet(&mut self, sys: &mut MemorySystem, at: Cycle) -> ExecReport {
        self.packets += 1;
        let prog = self.packet_program();
        self.core_model.run(&prog, sys, at)
    }

    /// L1D hit/miss counters of this NF's core (shared with any SMT
    /// sibling — which is the point of Fig. 12b).
    #[must_use]
    pub fn l1_hit_miss(&self, sys: &MemorySystem) -> (u64, u64) {
        sys.l1_hit_miss(self.core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_mem::MachineConfig;

    #[test]
    fn warm_nf_mostly_hits_private_caches() {
        // Table-2-sized machine: ACL's 24 KB working set fits L1+L2.
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut nf = ComputeNf::new(&mut sys, CoreId(0), ComputeNfKind::Acl, 1);
        nf.warm(&mut sys);
        sys.clear_stats();
        let mut t = Cycle(0);
        for _ in 0..50 {
            let r = nf.process_packet(&mut sys, t);
            t = r.finish;
        }
        let stats = sys.stats();
        let llc = stats.counter("llc.hit") + stats.counter("llc.miss");
        let l1 = stats.counter("l1d.hit");
        assert!(
            l1 > 10 * llc.max(1),
            "warm NF should stay in private caches: {l1} L1 hits vs {llc} LLC probes"
        );
    }

    #[test]
    fn snort_is_heavier_than_acl() {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let mut acl = ComputeNf::new(&mut sys, CoreId(0), ComputeNfKind::Acl, 1);
        let mut snort = ComputeNf::new(&mut sys, CoreId(1), ComputeNfKind::Snort, 1);
        acl.warm(&mut sys);
        snort.warm(&mut sys);
        let mut ta = Cycle(0);
        let mut ts = Cycle(0);
        for _ in 0..20 {
            ta = acl.process_packet(&mut sys, ta).finish;
            ts = snort.process_packet(&mut sys, ts).finish;
        }
        assert!(ts > ta, "snort {ts} should take longer than acl {ta}");
    }

    #[test]
    fn packet_counter_advances() {
        let mut sys = MemorySystem::new(MachineConfig::small());
        let mut nf = ComputeNf::new(&mut sys, CoreId(0), ComputeNfKind::Mtcp, 1);
        nf.process_packet(&mut sys, Cycle(0));
        nf.process_packet(&mut sys, Cycle(0));
        assert_eq!(nf.packets(), 2);
    }

    #[test]
    fn kinds_expose_names_and_mixes() {
        for k in ComputeNfKind::all() {
            assert!(!k.name().is_empty());
            let (l, s, c) = k.mix();
            assert!(l > 0 && c > 0 && s < l);
            assert!(k.working_set_lines() > 0);
        }
    }
}
