//! # halo-nf
//!
//! Network-function workloads and traffic generation for the HALO
//! evaluation:
//!
//! * [`TrafficGen`] / [`Scenario`] — the IXIA-like synthetic packet
//!   source with the five Fig. 3 configurations
//!   ([`fig3_configs`]).
//! * [`StreamingTrafficGen`] / [`StreamConfig`] — the million-flow
//!   adversarial streaming engine: Zipf skew over a churning live set,
//!   elephant/mice mixes, and DDoS floods, all O(1) per packet.
//! * [`ComputeNf`] — ACL / Snort / mTCP models for the co-location
//!   interference study (Fig. 12).
//! * [`HashNf`] — NAT / prads / packet-filter models, the hash-table-
//!   dominated NFs HALO accelerates end to end (Fig. 13, Table 3).
//! * [`colocation_experiment`] — the SMT co-run harness measuring NF
//!   throughput loss and L1D pollution under a software or HALO switch
//!   sibling.
//!
//! # Examples
//!
//! ```
//! use halo_nf::{fig3_configs, TrafficGen};
//!
//! let (name, scenario) = fig3_configs()[0];
//! let mut gen = TrafficGen::new(scenario, 7);
//! let pkt = gen.next_packet();
//! assert!(!name.is_empty());
//! assert_eq!(pkt.miniflow().len(), 16);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod colocate;
mod compute_nf;
mod hash_nf;
mod rulesets;
mod streaming;
mod traffic;

pub use colocate::{colocation_experiment, ColocationReport, SwitchImpl};
pub use compute_nf::{ComputeNf, ComputeNfKind};
pub use hash_nf::{HashNf, HashNfKind, HashNfReport};
pub use rulesets::{generate_ruleset, ruleset_traffic, sample_point, RulesetShape};
pub use streaming::{StreamConfig, StreamingTrafficGen};
pub use traffic::{fig3_configs, Scenario, TrafficGen};
