//! Co-location interference between a virtual-switch thread and a
//! network function sharing a core via SMT (§6.3, Fig. 12).
//!
//! Following the paper's methodology, the switch sibling is an emulated
//! switching process: a loop of MegaFlow tuple-space classifications.
//! In software mode each classification executes several full
//! ~210-instruction lookups on the shared core — dragging tuple tables
//! through the shared L1/L2. In HALO mode each lookup is one
//! instruction-slot dispatch to the near-cache accelerators, leaving
//! the private caches to the NF.

use crate::compute_nf::{ComputeNf, ComputeNfKind};
use halo_accel::HaloEngine;
use halo_classify::{distinct_masks, PacketHeader, SearchMode, TupleSpace};
use halo_cpu::MemProfile;
use halo_datapath::{LookupBackend, LookupExecutor};
use halo_mem::{CoreId, MemorySystem};
use halo_sim::{Cycle, Cycles, SplitMix64};

/// Which implementation the switch sibling uses for its lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchImpl {
    /// Full software cuckoo lookups on the shared core.
    Software,
    /// HALO near-cache lookups (one instruction per lookup).
    Halo,
}

/// Result of one co-location run.
#[derive(Debug, Clone, Copy)]
pub struct ColocationReport {
    /// NF cycles/packet running alone.
    pub solo_cycles_per_packet: f64,
    /// NF cycles/packet with the switch sibling.
    pub co_cycles_per_packet: f64,
    /// The NF's own L1D miss ratio running alone.
    pub solo_l1_miss_ratio: f64,
    /// The NF's own L1D miss ratio with the switch sibling.
    pub co_l1_miss_ratio: f64,
}

impl ColocationReport {
    /// Relative NF throughput drop caused by co-location, in `[0, 1)`.
    #[must_use]
    pub fn throughput_drop(&self) -> f64 {
        1.0 - self.solo_cycles_per_packet / self.co_cycles_per_packet
    }

    /// Increase in the NF's L1D miss ratio (fraction points).
    #[must_use]
    pub fn l1_miss_increase(&self) -> f64 {
        self.co_l1_miss_ratio - self.solo_l1_miss_ratio
    }
}

/// Number of MegaFlow tuples the emulated switch classifies against.
const SWITCH_TUPLES: usize = 10;

/// The switch sibling thread: an emulated datapath classifying flows
/// against a tuple space.
#[derive(Debug)]
struct SwitchThread {
    exec: LookupExecutor,
    tss: TupleSpace,
    flows: u64,
    rng: SplitMix64,
    imp: SwitchImpl,
}

impl SwitchThread {
    fn new(sys: &mut MemorySystem, core: CoreId, flows: usize, imp: SwitchImpl, seed: u64) -> Self {
        let mut tss = TupleSpace::new(
            sys.data_mut(),
            distinct_masks(SWITCH_TUPLES),
            flows / SWITCH_TUPLES + 512,
            SearchMode::FirstMatch,
        );
        for f in 0..flows as u64 {
            let key = PacketHeader::synthetic(f).miniflow();
            tss.insert_rule(
                sys.data_mut(),
                (f % SWITCH_TUPLES as u64) as usize,
                &key,
                0,
                f,
            )
            .expect("tuple sized for its share");
        }
        for t in tss.tuples() {
            for a in t.table().all_lines().collect::<Vec<_>>() {
                sys.warm_llc(a);
            }
        }
        // The sibling's scratch stays cold: its working set competes
        // with the NF for the shared private caches.
        let exec = LookupExecutor::new(sys, core, LookupBackend::Software);
        SwitchThread {
            exec,
            tss,
            flows: flows as u64,
            rng: SplitMix64::new(seed),
            imp,
        }
    }

    /// Runs one classification starting at `at`; returns its finish time.
    fn step(&mut self, sys: &mut MemorySystem, engine: &mut HaloEngine, at: Cycle) -> Cycle {
        let key = PacketHeader::synthetic(self.rng.below(self.flows)).miniflow();
        match self.imp {
            SwitchImpl::Software => {
                let (_, probes) = self.tss.classify_traced(sys.data_mut(), &key, true);
                let mut t = at;
                for (_, tr) in &probes {
                    t = self.exec.run_sw(sys, tr, None, t);
                }
                t
            }
            SwitchImpl::Halo => {
                // All probed tuples dispatched non-blocking; the sibling
                // thread consumes a few issue slots and one destination
                // line on the shared core (the per-query instruction
                // footprint of LOOKUP_NB + SNAPSHOT_READ).
                let core = self.exec.core_id();
                let (_, probes) = self.tss.classify_traced(sys.data_mut(), &key, false);
                let mut issue = halo_cpu::Program::new();
                for _ in 0..probes.len() + 1 {
                    issue.compute(1, &[]);
                }
                let lk = issue.load(self.exec.scratch_mut().next(), &[]);
                issue.compute(1, &[lk]);
                let issued = self.exec.run(&issue, sys, at).finish;
                let mut done = issued;
                for (slot, (i, tr)) in probes.iter().enumerate() {
                    let table_addr = self.tss.tuples()[*i].table().meta_addr();
                    let h = halo_tables::hash_key(&key, halo_tables::SEED_PRIMARY) ^ (*i as u64);
                    let out = engine.dispatch(
                        sys,
                        core,
                        table_addr,
                        tr,
                        h,
                        None,
                        None,
                        at + Cycles(slot as u64),
                    );
                    done = done.max(out.complete);
                }
                done
            }
        }
    }
}

fn miss_ratio(p: &MemProfile) -> f64 {
    let total = p.total().max(1);
    1.0 - p.l1 as f64 / total as f64
}

/// Runs the Fig. 12 experiment: NF `kind` co-located with a switch
/// sibling classifying `flows` flows using `imp` lookups, measured over
/// `packets` NF packets. Deterministic in `seed`.
pub fn colocation_experiment(
    kind: ComputeNfKind,
    flows: usize,
    imp: SwitchImpl,
    packets: u64,
    seed: u64,
) -> ColocationReport {
    use halo_accel::AcceleratorConfig;
    use halo_mem::MachineConfig;

    let core = CoreId(0);

    // --- Solo run. ------------------------------------------------------
    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut nf = ComputeNf::new(&mut sys, core, kind, seed);
    nf.warm(&mut sys);
    let mut t = Cycle(0);
    let start = t;
    let mut solo_mem = MemProfile::default();
    for _ in 0..packets {
        let r = nf.process_packet(&mut sys, t);
        accumulate(&mut solo_mem, &r.mem);
        t = r.finish;
    }
    let solo_cpp = (t - start).0 as f64 / packets as f64;

    // --- Co-located run (same core: SMT siblings share L1/L2). ----------
    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
    let mut nf = ComputeNf::new(&mut sys, core, kind, seed);
    let mut switch = SwitchThread::new(&mut sys, core, flows, imp, seed ^ 0xD15F);
    nf.warm(&mut sys);
    let mut t_nf = Cycle(0);
    let mut t_sw = Cycle(0);
    let start = t_nf;
    let mut co_mem = MemProfile::default();
    for _ in 0..packets {
        // The switch sibling keeps pace with the NF's clock.
        while t_sw < t_nf {
            t_sw = switch.step(&mut sys, &mut engine, t_sw);
        }
        let r = nf.process_packet(&mut sys, t_nf);
        accumulate(&mut co_mem, &r.mem);
        t_nf = r.finish;
    }
    let co_cpp = (t_nf - start).0 as f64 / packets as f64;

    ColocationReport {
        solo_cycles_per_packet: solo_cpp,
        co_cycles_per_packet: co_cpp,
        solo_l1_miss_ratio: miss_ratio(&solo_mem),
        co_l1_miss_ratio: miss_ratio(&co_mem),
    }
}

fn accumulate(into: &mut MemProfile, from: &MemProfile) {
    into.l1 += from.l1;
    into.l2 += from.l2;
    into.llc += from.llc;
    into.llc_dirty += from.llc_dirty;
    into.dram += from.dram;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_switch_degrades_nf() {
        let r = colocation_experiment(ComputeNfKind::Acl, 10_000, SwitchImpl::Software, 80, 1);
        assert!(
            r.throughput_drop() > 0.05,
            "software co-run must hurt: drop {}",
            r.throughput_drop()
        );
        assert!(
            r.l1_miss_increase() > 0.0,
            "L1 pollution expected: {} -> {}",
            r.solo_l1_miss_ratio,
            r.co_l1_miss_ratio
        );
    }

    #[test]
    fn halo_switch_is_nearly_harmless() {
        let sw = colocation_experiment(ComputeNfKind::Acl, 10_000, SwitchImpl::Software, 80, 1);
        let hw = colocation_experiment(ComputeNfKind::Acl, 10_000, SwitchImpl::Halo, 80, 1);
        assert!(
            hw.throughput_drop() < sw.throughput_drop(),
            "halo drop {} must be below software drop {}",
            hw.throughput_drop(),
            sw.throughput_drop()
        );
        assert!(
            hw.throughput_drop() < 0.10,
            "halo drop {}",
            hw.throughput_drop()
        );
        assert!(
            hw.l1_miss_increase() < sw.l1_miss_increase(),
            "halo must pollute less: {} vs {}",
            hw.l1_miss_increase(),
            sw.l1_miss_increase()
        );
    }

    #[test]
    fn report_arithmetic() {
        let r = ColocationReport {
            solo_cycles_per_packet: 80.0,
            co_cycles_per_packet: 100.0,
            solo_l1_miss_ratio: 0.02,
            co_l1_miss_ratio: 0.10,
        };
        assert!((r.throughput_drop() - 0.2).abs() < 1e-12);
        assert!((r.l1_miss_increase() - 0.08).abs() < 1e-12);
    }
}
