//! The streaming adversarial traffic engine: million-flow workloads
//! with O(1) per-packet cost.
//!
//! [`TrafficGen`](crate::TrafficGen) replays the paper's five Table-3
//! shapes over a *fixed* flow set. This module generates the regime
//! ROADMAP item 2 calls for — the one where HALO's value is actually
//! decided (and where the PR-4 FlowRegister saturation bug lived):
//!
//! * **Zipfian popularity** with configurable α over the *live* flow
//!   set, sampled in O(1) via [`StreamZipf`] (no CDF rebuild, no
//!   O(flows) scan, ever);
//! * **flow churn** — paired arrival/expiry events that drive
//!   insert/remove pressure (cuckoo displacement storms, Cuckoo++
//!   filter reversal, EMOMA re-homing) while conserving the live count;
//! * **elephant/mice mixes** — a small pinned hot set taking a fixed
//!   share of packets over a uniform mouse tail;
//! * **DDoS floods** — never-repeating short flows that thrash the EMC
//!   and saturate the hybrid classifier's flow register.
//!
//! The generator emits [`TrafficEvent`]s, not packets: consumers that
//! own tables (the multi-core datapath's `run_stream`, the `halo-check`
//! churn oracle) apply arrivals/expiries as inserts/removes so the
//! tables track the generator's live set exactly.
//!
//! # O(1) per packet, by construction
//!
//! Live flows sit in a `Vec` ordered hottest-first: Zipf rank *r* maps
//! to `live[r]`. Arrivals push to the cold end; expiries pick a uniform
//! victim and `swap_remove` it. Every packet costs one ranked sample
//! plus one index — no allocation, no scan, independent of the live
//! count. (The `swap_remove` permutes one rank per expiry; popularity
//! stays Zipf-shaped in aggregate, and the rank-frequency property
//! tests pin the churn-free ordering exactly.)

use crate::traffic::Scenario;
use halo_classify::PacketHeader;
use halo_datapath::TrafficEvent;
use halo_sim::{SplitMix64, StreamZipf};

/// Configuration of a [`StreamingTrafficGen`].
///
/// Compose scenarios by mixing the knobs; the constructors cover the
/// four adversarial presets the scale figure sweeps.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Initial live (concurrent) flows.
    pub flows: usize,
    /// Zipf exponent of flow popularity (0 = uniform, 0.99 = the
    /// paper's data-center skew).
    pub theta: f64,
    /// Probability that a generator step emits a paired
    /// arrival + expiry instead of a packet (0 disables churn). The
    /// pairing conserves the live-flow count, so table capacity and
    /// sampler state stay bounded at any stream length.
    pub churn_per_packet: f64,
    /// Size of the pinned elephant set (0 disables the mix).
    pub elephants: usize,
    /// Probability a packet comes from the elephant set (uniform within
    /// it) rather than the Zipf-ranked tail.
    pub elephant_share: f64,
    /// Probability a packet belongs to a brand-new, never-repeating
    /// flood flow that is *not* installed in any table (1.0 = pure
    /// DDoS).
    pub flood_share: f64,
}

impl StreamConfig {
    /// Steady state: a fixed live set under the paper's 0.99 skew.
    #[must_use]
    pub fn steady(flows: usize) -> Self {
        StreamConfig {
            flows,
            theta: 0.99,
            churn_per_packet: 0.0,
            elephants: 0,
            elephant_share: 0.0,
            flood_share: 0.0,
        }
    }

    /// Churn: skewed traffic with ~5% of steps replacing a live flow —
    /// sustained insert/remove pressure on the exact-match backends.
    #[must_use]
    pub fn churn(flows: usize) -> Self {
        StreamConfig {
            churn_per_packet: 0.05,
            ..StreamConfig::steady(flows)
        }
    }

    /// Elephant/mice: a tiny hot set takes 90% of packets; the rest is
    /// a uniform mouse tail over the live set.
    #[must_use]
    pub fn elephant_mice(flows: usize) -> Self {
        StreamConfig {
            theta: 0.0,
            elephants: 16.max(flows / 1000),
            elephant_share: 0.9,
            ..StreamConfig::steady(flows)
        }
    }

    /// DDoS flood: every packet is a fresh, never-repeating flow on top
    /// of the installed live set — the EMC-thrashing, register-
    /// saturating regime of the PR-4 bug.
    #[must_use]
    pub fn ddos_flood(flows: usize) -> Self {
        StreamConfig {
            flood_share: 1.0,
            ..StreamConfig::steady(flows)
        }
    }

    /// The streaming equivalent of a Table-3 [`Scenario`]: same flow
    /// count and skew, no churn and no flood.
    #[must_use]
    pub fn from_scenario(scenario: &Scenario) -> Self {
        StreamConfig {
            theta: scenario.zipf_theta(),
            ..StreamConfig::steady(scenario.flows())
        }
    }

    fn validate(&self) {
        assert!(self.flows > 0, "streaming over zero flows");
        for (name, p) in [
            ("churn_per_packet", self.churn_per_packet),
            ("elephant_share", self.elephant_share),
            ("flood_share", self.flood_share),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} out of [0,1]: {p}");
        }
        assert!(
            self.theta >= 0.0 && self.theta.is_finite(),
            "invalid zipf exponent"
        );
    }
}

/// A deterministic, unbounded stream of [`TrafficEvent`]s over a
/// churning flow population.
///
/// # Examples
///
/// ```
/// use halo_datapath::TrafficEvent;
/// use halo_nf::{StreamConfig, StreamingTrafficGen};
///
/// let mut gen = StreamingTrafficGen::new(StreamConfig::churn(1000), 42);
/// let mut packets = 0;
/// for _ in 0..100 {
///     if let TrafficEvent::Packet(flow) = gen.next_event() {
///         packets += 1;
///         let _ = flow;
///     }
/// }
/// assert!(packets > 0);
/// // Conservation: arrivals and expiries balance the live count.
/// assert_eq!(
///     gen.live_count() as u64,
///     1000 + gen.arrivals() - gen.expiries()
/// );
/// ```
#[derive(Debug)]
pub struct StreamingTrafficGen {
    cfg: StreamConfig,
    rng: SplitMix64,
    /// Live flow ids, hottest-first: Zipf rank `r` reads `live[r]`.
    live: Vec<u64>,
    zipf: StreamZipf,
    /// An expiry queued behind the arrival it pairs with (at most one).
    pending: Option<TrafficEvent>,
    /// Next fresh flow id; monotone, never reused — arrivals and flood
    /// flows share the sequence so every id names one flow, ever.
    next_id: u64,
    arrivals: u64,
    expiries: u64,
    floods: u64,
    packets: u64,
}

impl StreamingTrafficGen {
    /// Creates a generator: flows `0..cfg.flows` start live (matching
    /// consumers that pre-install that id range as rules).
    ///
    /// # Panics
    ///
    /// Panics if the config is out of range (zero flows, probabilities
    /// outside `[0, 1]`, bad exponent).
    #[must_use]
    pub fn new(cfg: StreamConfig, seed: u64) -> Self {
        cfg.validate();
        StreamingTrafficGen {
            cfg,
            rng: SplitMix64::new(seed),
            live: (0..cfg.flows as u64).collect(),
            zipf: StreamZipf::new(cfg.flows, cfg.theta),
            pending: None,
            next_id: cfg.flows as u64,
            arrivals: 0,
            expiries: 0,
            floods: 0,
            packets: 0,
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Currently live flows (ids, hottest rank first).
    #[must_use]
    pub fn live_flows(&self) -> &[u64] {
        &self.live
    }

    /// Number of currently live flows.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Flow arrivals emitted so far.
    #[must_use]
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Flow expiries emitted so far.
    #[must_use]
    pub fn expiries(&self) -> u64 {
        self.expiries
    }

    /// Never-repeating flood packets emitted so far.
    #[must_use]
    pub fn floods(&self) -> u64 {
        self.floods
    }

    /// Packets emitted so far (flood packets included).
    #[must_use]
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// The next event of the stream. Cost is O(1) in the live-flow
    /// count: one ranked sample plus constant bookkeeping.
    ///
    /// Churn steps emit an [`TrafficEvent::Arrival`] immediately
    /// followed (next call) by the paired [`TrafficEvent::Expiry`], so
    /// consumers see the insert before the remove and the live count
    /// they maintain never dips.
    pub fn next_event(&mut self) -> TrafficEvent {
        if let Some(e) = self.pending.take() {
            return e;
        }
        if self.cfg.churn_per_packet > 0.0 && self.rng.chance(self.cfg.churn_per_packet) {
            let born = self.next_id;
            self.next_id += 1;
            let victim = self.rng.below(self.live.len() as u64) as usize;
            let dead = self.live[victim];
            // The newborn takes the victim's rank slot: O(1), and the
            // expected popularity of a slot is preserved across churn.
            self.live[victim] = born;
            self.arrivals += 1;
            self.expiries += 1;
            self.pending = Some(TrafficEvent::Expiry(dead));
            return TrafficEvent::Arrival(born);
        }
        TrafficEvent::Packet(self.next_flow())
    }

    /// The flow id of the next packet (flood, elephant, or Zipf tail).
    fn next_flow(&mut self) -> u64 {
        self.packets += 1;
        if self.cfg.flood_share > 0.0 && self.rng.chance(self.cfg.flood_share) {
            self.floods += 1;
            let id = self.next_id;
            self.next_id += 1;
            return id; // never enters `live`: by construction unrepeatable
        }
        if self.cfg.elephants > 0 && self.rng.chance(self.cfg.elephant_share) {
            let herd = self.cfg.elephants.min(self.live.len()) as u64;
            return self.live[self.rng.below(herd) as usize];
        }
        if self.zipf.len() != self.live.len() {
            self.zipf.resize(self.live.len());
        }
        self.live[self.zipf.sample(&mut self.rng)]
    }

    /// Skips non-packet events and returns the next packet's header —
    /// for consumers without tables to keep in sync (e.g. the hybrid
    /// classifier's flow register, which only sees packets).
    pub fn next_packet(&mut self) -> PacketHeader {
        loop {
            if let TrafficEvent::Packet(flow) = self.next_event() {
                return PacketHeader::synthetic(flow);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_stream_is_packets_only_and_live() {
        let mut g = StreamingTrafficGen::new(StreamConfig::steady(500), 1);
        for _ in 0..2_000 {
            match g.next_event() {
                TrafficEvent::Packet(f) => assert!(f < 500, "unknown flow {f}"),
                e => panic!("steady stream emitted {e:?}"),
            }
        }
        assert_eq!(g.live_count(), 500);
        assert_eq!(g.arrivals() + g.expiries() + g.floods(), 0);
    }

    #[test]
    fn churn_pairs_arrivals_with_expiries_in_order() {
        let mut g = StreamingTrafficGen::new(StreamConfig::churn(200), 2);
        let mut expect_expiry_of: Option<u64> = None;
        let mut churned = 0;
        for _ in 0..5_000 {
            match g.next_event() {
                TrafficEvent::Arrival(f) => {
                    assert!(expect_expiry_of.is_none(), "arrival inside a pair");
                    assert!(f >= 200, "arrivals must be fresh ids");
                    expect_expiry_of = Some(f);
                }
                TrafficEvent::Expiry(dead) => {
                    let born = expect_expiry_of.take().expect("unpaired expiry");
                    assert_ne!(dead, born, "a flow expired at birth");
                    churned += 1;
                }
                TrafficEvent::Packet(_) => {
                    assert!(expect_expiry_of.is_none(), "packet split a churn pair");
                }
            }
        }
        assert!(churned > 50, "churn never triggered: {churned}");
        assert_eq!(g.live_count(), 200, "paired churn conserves the count");
    }

    #[test]
    fn flood_flows_never_repeat() {
        let mut g = StreamingTrafficGen::new(StreamConfig::ddos_flood(64), 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3_000 {
            if let TrafficEvent::Packet(f) = g.next_event() {
                assert!(f >= 64, "flood packet from the live set");
                assert!(seen.insert(f), "flood flow {f} repeated");
            }
        }
        assert_eq!(g.floods(), 3_000);
    }

    #[test]
    fn elephants_take_their_share() {
        let cfg = StreamConfig::elephant_mice(10_000);
        let mut g = StreamingTrafficGen::new(cfg, 4);
        let herd = cfg.elephants as u64;
        let mut hot = 0u64;
        const N: u64 = 10_000;
        for _ in 0..N {
            if let TrafficEvent::Packet(f) = g.next_event() {
                if f < herd {
                    hot += 1;
                }
            }
        }
        // 90% nominal share, wide tolerance: uniform would give ~0.16%.
        assert!(hot > N * 8 / 10, "elephant share too small: {hot}/{N}");
        assert!(hot < N, "mice starved entirely");
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mk = |seed| {
            let mut g = StreamingTrafficGen::new(StreamConfig::churn(300), seed);
            (0..1_000).map(|_| g.next_event()).collect::<Vec<_>>()
        };
        assert_eq!(mk(7), mk(7), "same seed, same stream");
        assert_ne!(mk(7), mk(8), "different seed, different stream");
    }

    #[test]
    fn scenario_bridge_preserves_shape() {
        let s = Scenario::ManyFlowsHotRules {
            flows: 5_000,
            rules: 20,
        };
        let cfg = StreamConfig::from_scenario(&s);
        assert_eq!(cfg.flows, 5_000);
        assert!((cfg.theta - 0.99).abs() < 1e-12);
        assert_eq!(cfg.flood_share, 0.0);
        let mut g = StreamingTrafficGen::new(cfg, 5);
        let h = g.next_packet();
        assert_eq!(h.miniflow().len(), 16);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn bad_share_is_rejected() {
        let cfg = StreamConfig {
            flood_share: 1.5,
            ..StreamConfig::steady(10)
        };
        let _ = StreamingTrafficGen::new(cfg, 0);
    }
}
