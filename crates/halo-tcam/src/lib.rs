//! # halo-tcam
//!
//! Functional and timing models of ternary content-addressable memory
//! (TCAM) and its SRAM-emulated variant — the "fastest but expensive"
//! baselines the paper compares HALO against (§5.1, §6.1, §6.4).
//!
//! A TCAM matches a search key against *every* stored entry in parallel;
//! each entry is a `(value, care-mask, priority)` triple where mask bits
//! of 0 are wildcards. Lookups complete in a few clock cycles regardless
//! of occupancy; the cost is enormous static power and die area
//! (quantified by `halo-power`). Updates, in contrast, are expensive:
//! priority ordering forces entry shuffling (§1).
//!
//! # Examples
//!
//! ```
//! use halo_tcam::{TcamEntry, TcamTable};
//!
//! let mut tcam = TcamTable::new(64, 4);
//! // Match any key whose first byte is 0x0a (rest wildcarded).
//! tcam.insert(TcamEntry::new(&[0x0a, 0, 0, 0], &[0xff, 0, 0, 0], 10, 77)).unwrap();
//! assert_eq!(tcam.lookup(&[0x0a, 1, 2, 3]), Some(77));
//! assert_eq!(tcam.lookup(&[0x0b, 1, 2, 3]), None);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use halo_sim::{Cycle, Cycles, Resource};
use std::fmt;

/// One ternary rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcamEntry {
    value: Vec<u8>,
    mask: Vec<u8>,
    /// Higher wins when multiple entries match.
    priority: u32,
    /// The action/result returned on match.
    action: u64,
}

impl TcamEntry {
    /// Builds an entry; `mask` bits of 0 are "don't care".
    ///
    /// # Panics
    ///
    /// Panics if `value` and `mask` lengths differ or are empty.
    #[must_use]
    pub fn new(value: &[u8], mask: &[u8], priority: u32, action: u64) -> Self {
        assert_eq!(value.len(), mask.len(), "value/mask length mismatch");
        assert!(!value.is_empty(), "empty TCAM entry");
        TcamEntry {
            value: value.iter().zip(mask).map(|(v, m)| v & m).collect(),
            mask: mask.to_vec(),
            priority,
            action,
        }
    }

    /// An exact-match entry (mask all ones).
    #[must_use]
    pub fn exact(value: &[u8], priority: u32, action: u64) -> Self {
        TcamEntry::new(value, &vec![0xff; value.len()], priority, action)
    }

    /// Whether `key` matches this entry (key may be longer; extra bytes
    /// are ignored, matching how rules cover header prefixes).
    #[must_use]
    pub fn matches(&self, key: &[u8]) -> bool {
        if key.len() < self.value.len() {
            return false;
        }
        self.value
            .iter()
            .zip(&self.mask)
            .zip(key)
            .all(|((v, m), k)| k & m == *v)
    }

    /// The entry's priority.
    #[must_use]
    pub fn priority(&self) -> u32 {
        self.priority
    }

    /// The entry's action value.
    #[must_use]
    pub fn action(&self) -> u64 {
        self.action
    }

    /// Entry width in bytes.
    #[must_use]
    pub fn width(&self) -> usize {
        self.value.len()
    }
}

/// Error: the TCAM array is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcamFullError;

impl fmt::Display for TcamFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TCAM array full")
    }
}

impl std::error::Error for TcamFullError {}

/// A TCAM array: fully parallel ternary match with priority resolution.
#[derive(Debug)]
pub struct TcamTable {
    entries: Vec<TcamEntry>,
    capacity: usize,
    port: Resource,
    lookups: u64,
    /// Entry moves performed by updates (the expensive part of TCAM
    /// management, §1 / [67]).
    update_moves: u64,
}

impl TcamTable {
    /// Creates a TCAM holding up to `capacity` entries with a
    /// `lookup_latency`-cycle match (paper: "a few clock cycles").
    #[must_use]
    pub fn new(capacity: usize, lookup_latency: u64) -> Self {
        TcamTable {
            entries: Vec::new(),
            capacity,
            port: Resource::pipelined("tcam", Cycles(lookup_latency)),
            lookups: 0,
            update_moves: 0,
        }
    }

    /// Installed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups performed (for energy accounting).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Entry moves caused by priority-ordered insertion.
    #[must_use]
    pub fn update_moves(&self) -> u64 {
        self.update_moves
    }

    /// Inserts an entry, keeping the array sorted by descending priority
    /// (physical order = match precedence in real TCAMs, so insertion
    /// shifts lower-priority entries — counted in
    /// [`update_moves`](Self::update_moves)).
    ///
    /// # Errors
    ///
    /// Returns [`TcamFullError`] when at capacity.
    pub fn insert(&mut self, entry: TcamEntry) -> Result<(), TcamFullError> {
        if self.entries.len() >= self.capacity {
            return Err(TcamFullError);
        }
        let pos = self
            .entries
            .partition_point(|e| e.priority >= entry.priority);
        self.update_moves += (self.entries.len() - pos) as u64;
        self.entries.insert(pos, entry);
        Ok(())
    }

    /// Functional lookup: the highest-priority matching action.
    pub fn lookup(&mut self, key: &[u8]) -> Option<u64> {
        self.lookups += 1;
        self.entries
            .iter()
            .find(|e| e.matches(key))
            .map(|e| e.action)
    }

    /// Timed lookup: result plus completion cycle (pipelined, so
    /// back-to-back lookups sustain one per cycle).
    pub fn lookup_timed(&mut self, key: &[u8], at: Cycle) -> (Option<u64>, Cycle) {
        let r = self.lookup(key);
        (r, self.port.serve(at))
    }

    /// Removes all entries matching `action`; returns how many.
    pub fn remove_action(&mut self, action: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.action != action);
        before - self.entries.len()
    }

    /// Non-counting functional match: the highest-priority matching
    /// action without bumping the lookup energy counter. The immutable
    /// probe behind the [`FlowTable`](halo_tables::FlowTable) facade.
    #[must_use]
    pub fn match_key(&self, key: &[u8]) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.matches(key))
            .map(|e| e.action)
    }

    /// Removes the exact-match entry for `key` (mask all ones, value ==
    /// `key`), returning its action if one was installed.
    pub fn remove_exact(&mut self, key: &[u8]) -> Option<u64> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.value == key && e.mask.iter().all(|&m| m == 0xff))?;
        Some(self.entries.remove(pos).action)
    }
}

/// The TCAM as an exact-match [`FlowTable`] backend: flows are installed
/// as all-ones-mask entries at priority 0, so the array doubles as the
/// EMC/MegaFlow slot in backend comparisons (§6.4). The TCAM lives
/// outside simulated memory, so traces carry no memory steps and there
/// is nothing for the accelerator to dispatch against
/// (`meta_addr() == None`).
impl halo_tables::FlowTable for TcamTable {
    fn meta_addr(&self) -> Option<halo_mem::Addr> {
        None
    }

    fn len(&self) -> usize {
        TcamTable::len(self)
    }

    fn capacity(&self) -> usize {
        TcamTable::capacity(self)
    }

    fn insert(
        &mut self,
        _mem: &mut halo_mem::SimMemory,
        key: &halo_tables::FlowKey,
        value: u64,
    ) -> Result<(), halo_tables::TableFullError> {
        if self.remove_exact(key.as_bytes()).is_none() && self.entries.len() >= self.capacity {
            return Err(halo_tables::TableFullError);
        }
        self.insert(TcamEntry::exact(key.as_bytes(), 0, value))
            .map_err(|_| halo_tables::TableFullError)
    }

    fn remove(
        &mut self,
        _mem: &mut halo_mem::SimMemory,
        key: &halo_tables::FlowKey,
    ) -> Option<u64> {
        self.remove_exact(key.as_bytes())
    }

    fn lookup_traced(
        &self,
        _mem: &halo_mem::SimMemory,
        key: &halo_tables::FlowKey,
        _software_locking: bool,
    ) -> halo_tables::LookupTrace {
        halo_tables::LookupTrace {
            result: self.match_key(key.as_bytes()),
            steps: Vec::new(),
        }
    }

    fn warm_lines(&self) -> Vec<halo_mem::Addr> {
        Vec::new()
    }
}

/// An SRAM-emulated TCAM (Z-TCAM style, [75–77]): the rule set is
/// partitioned into sub-tables held in SRAM blocks searched in a short
/// pipeline. Functionally identical to TCAM; slightly higher latency,
/// substantially lower power/area (see `halo-power`).
#[derive(Debug)]
pub struct SramTcam {
    inner: TcamTable,
    stages: u64,
}

impl SramTcam {
    /// Creates an SRAM-TCAM with `capacity` entries, a `base_latency`
    /// match stage, and `stages` pipeline stages (lookup latency =
    /// `base_latency * stages`).
    #[must_use]
    pub fn new(capacity: usize, base_latency: u64, stages: u64) -> Self {
        SramTcam {
            inner: TcamTable::new(capacity, base_latency * stages),
            stages,
        }
    }

    /// Pipeline depth.
    #[must_use]
    pub fn stages(&self) -> u64 {
        self.stages
    }

    /// Installed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no entries are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Lookups performed.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.inner.lookups()
    }

    /// Inserts an entry.
    ///
    /// # Errors
    ///
    /// Returns [`TcamFullError`] when at capacity.
    pub fn insert(&mut self, entry: TcamEntry) -> Result<(), TcamFullError> {
        self.inner.insert(entry)
    }

    /// Functional lookup.
    pub fn lookup(&mut self, key: &[u8]) -> Option<u64> {
        self.inner.lookup(key)
    }

    /// Timed lookup.
    pub fn lookup_timed(&mut self, key: &[u8], at: Cycle) -> (Option<u64>, Cycle) {
        self.inner.lookup_timed(key, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_wildcard_matching() {
        let mut t = TcamTable::new(16, 4);
        t.insert(TcamEntry::exact(&[1, 2, 3, 4], 5, 100)).unwrap();
        t.insert(TcamEntry::new(&[1, 0, 0, 0], &[0xff, 0, 0, 0], 1, 200))
            .unwrap();
        // Exact entry wins on its key (higher priority).
        assert_eq!(t.lookup(&[1, 2, 3, 4]), Some(100));
        // Wildcard catches the rest of the 1.x.x.x space.
        assert_eq!(t.lookup(&[1, 9, 9, 9]), Some(200));
        assert_eq!(t.lookup(&[2, 2, 3, 4]), None);
    }

    #[test]
    fn priority_resolution_prefers_higher() {
        let mut t = TcamTable::new(16, 4);
        t.insert(TcamEntry::new(&[1, 0], &[0xff, 0], 1, 10))
            .unwrap();
        t.insert(TcamEntry::new(&[1, 2], &[0xff, 0xff], 9, 20))
            .unwrap();
        assert_eq!(t.lookup(&[1, 2]), Some(20));
    }

    #[test]
    fn insertion_order_does_not_affect_result() {
        let mk = |order: &[usize]| {
            let entries = [
                TcamEntry::new(&[1, 0], &[0xff, 0], 1, 10),
                TcamEntry::new(&[1, 2], &[0xff, 0xff], 9, 20),
                TcamEntry::new(&[0, 0], &[0, 0], 0, 30),
            ];
            let mut t = TcamTable::new(16, 4);
            for &i in order {
                t.insert(entries[i].clone()).unwrap();
            }
            t.lookup(&[1, 2])
        };
        assert_eq!(mk(&[0, 1, 2]), mk(&[2, 1, 0]));
        assert_eq!(mk(&[1, 0, 2]), Some(20));
    }

    #[test]
    fn update_moves_accumulate() {
        let mut t = TcamTable::new(16, 4);
        // Insert ascending priorities: each insert shifts all others.
        for p in 0..8 {
            t.insert(TcamEntry::exact(&[p as u8], p, u64::from(p)))
                .unwrap();
        }
        assert!(t.update_moves() > 0, "priority inserts must shuffle");
    }

    #[test]
    fn capacity_enforced() {
        let mut t = TcamTable::new(2, 4);
        t.insert(TcamEntry::exact(&[1], 0, 1)).unwrap();
        t.insert(TcamEntry::exact(&[2], 0, 2)).unwrap();
        assert_eq!(t.insert(TcamEntry::exact(&[3], 0, 3)), Err(TcamFullError));
    }

    #[test]
    fn lookup_latency_constant_and_pipelined() {
        let mut t = TcamTable::new(1024, 4);
        for i in 0..100u64 {
            t.insert(TcamEntry::exact(&i.to_le_bytes(), 0, i)).unwrap();
        }
        let (_, t1) = t.lookup_timed(&0u64.to_le_bytes(), Cycle(0));
        let (_, t2) = t.lookup_timed(&1u64.to_le_bytes(), Cycle(0));
        assert_eq!(t1, Cycle(4));
        assert_eq!(t2, Cycle(5), "pipelined: next result one cycle later");
    }

    #[test]
    fn sram_tcam_matches_tcam_functionally() {
        let mut a = TcamTable::new(64, 4);
        let mut b = SramTcam::new(64, 4, 2);
        for p in 0..10u32 {
            let e = TcamEntry::new(&[p as u8, 0], &[0xff, 0], p, u64::from(p) * 7);
            a.insert(e.clone()).unwrap();
            b.insert(e).unwrap();
        }
        for k in 0..20u8 {
            assert_eq!(a.lookup(&[k, 3]), b.lookup(&[k, 3]));
        }
        // But SRAM-TCAM is slower per lookup.
        let (_, ta) = a.lookup_timed(&[1, 1], Cycle(0));
        let (_, tb) = b.lookup_timed(&[1, 1], Cycle(0));
        assert!(tb > ta);
    }

    #[test]
    fn remove_action_deletes() {
        let mut t = TcamTable::new(16, 4);
        t.insert(TcamEntry::exact(&[1], 0, 42)).unwrap();
        t.insert(TcamEntry::exact(&[2], 0, 42)).unwrap();
        assert_eq!(t.remove_action(42), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn tcam_is_a_flow_table() {
        use halo_tables::{FlowKey, FlowTable};
        let mut mem = halo_mem::SimMemory::new();
        let mut t = TcamTable::new(4, 4);
        let k = FlowKey::synthetic(7, 13);
        let dyn_probe = |t: &TcamTable, mem: &mut halo_mem::SimMemory, k: &FlowKey| {
            let dt: &dyn FlowTable = t;
            dt.lookup_traced(mem, k, true)
        };
        assert_eq!(dyn_probe(&t, &mut mem, &k).result, None);
        FlowTable::insert(&mut t, &mut mem, &k, 11).unwrap();
        // Update in place: no second entry, new value.
        FlowTable::insert(&mut t, &mut mem, &k, 12).unwrap();
        assert_eq!(TcamTable::len(&t), 1);
        let tr = dyn_probe(&t, &mut mem, &k);
        assert_eq!(tr.result, Some(12));
        assert!(tr.steps.is_empty(), "TCAM is not in simulated memory");
        assert_eq!(t.lookups(), 0, "trait probes must not count energy");
        assert_eq!(FlowTable::remove(&mut t, &mut mem, &k), Some(12));
        assert!(t.is_empty());
        // Capacity still enforced for distinct keys.
        for id in 0..4u64 {
            FlowTable::insert(&mut t, &mut mem, &FlowKey::synthetic(id, 13), id).unwrap();
        }
        assert!(FlowTable::insert(&mut t, &mut mem, &FlowKey::synthetic(9, 13), 9).is_err());
    }

    #[test]
    fn short_key_never_matches() {
        let mut t = TcamTable::new(16, 4);
        t.insert(TcamEntry::exact(&[1, 2, 3, 4], 0, 1)).unwrap();
        assert_eq!(t.lookup(&[1, 2]), None);
    }
}
