//! # halo-power
//!
//! Analytical on-die power and area models for the hardware flow
//! classification approaches the paper compares in §6.4 / Table 4.
//!
//! The paper derives these numbers with McPAT and CACTI plus the
//! Agrawal–Sherwood TCAM model; here the same quantities are produced by
//! a calibrated analytical model:
//!
//! * **TCAM** — calibrated to the paper's four Table-4 points
//!   (1 KB … 1 MB), log-log interpolated in between (TCAM power grows
//!   super-linearly with capacity because match-line energy scales with
//!   rows x width).
//! * **SRAM-TCAM** — ~45% less power and ~57% less area than TCAM of
//!   equal capacity (§6.4, following Z-TCAM).
//! * **HALO** — a fixed, tiny per-accelerator budget: 0.012 tiles,
//!   97.2 mW static, 1.76 nJ/query.
//!
//! # Examples
//!
//! ```
//! use halo_power::{halo_accelerator_model, tcam_model};
//!
//! let tcam_1mb = tcam_model(1 << 20);
//! let halo = halo_accelerator_model();
//! assert!(tcam_1mb.static_mw / halo.static_mw > 100.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// Power and area budget of one hardware block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerArea {
    /// Die area in "tiles" (the paper's unit: one tile = one core +
    /// private caches + LLC slice footprint).
    pub area_tiles: f64,
    /// Static (leakage) power in milliwatts.
    pub static_mw: f64,
    /// Dynamic energy per query in nanojoules.
    pub dynamic_nj_per_query: f64,
}

impl PowerArea {
    /// Total energy in joules for running `queries` lookups over
    /// `seconds` of wall-clock time.
    #[must_use]
    pub fn energy_joules(&self, seconds: f64, queries: f64) -> f64 {
        self.static_mw * 1e-3 * seconds + self.dynamic_nj_per_query * 1e-9 * queries
    }

    /// Queries per joule at a sustained `queries_per_sec` rate — the
    /// energy-efficiency metric behind the paper's "48.2x" claim.
    #[must_use]
    pub fn queries_per_joule(&self, queries_per_sec: f64) -> f64 {
        let watts = self.static_mw * 1e-3 + self.dynamic_nj_per_query * 1e-9 * queries_per_sec;
        queries_per_sec / watts
    }

    /// Scales the block by an integer count (e.g. 16 HALO accelerators).
    #[must_use]
    pub fn scaled(&self, n: u32) -> PowerArea {
        PowerArea {
            area_tiles: self.area_tiles * f64::from(n),
            static_mw: self.static_mw * f64::from(n),
            dynamic_nj_per_query: self.dynamic_nj_per_query,
        }
    }
}

/// The paper's Table 4 calibration points for TCAM:
/// `(capacity bytes, area tiles, static mW, dynamic nJ/query)`.
pub const TCAM_TABLE4: [(u64, f64, f64, f64); 4] = [
    (1 << 10, 0.001, 71.1, 0.04),
    (10 * (1 << 10), 0.066, 235.3, 0.37),
    (100 * (1 << 10), 1.044, 3850.5, 13.84),
    (1 << 20, 9.343, 26733.1, 84.82),
];

/// Per-accelerator HALO budget (Table 4).
#[must_use]
pub fn halo_accelerator_model() -> PowerArea {
    PowerArea {
        area_tiles: 0.012,
        static_mw: 97.2,
        dynamic_nj_per_query: 1.76,
    }
}

/// Whole-chip HALO budget for `slices` accelerators.
#[must_use]
pub fn halo_total(slices: u32) -> PowerArea {
    halo_accelerator_model().scaled(slices)
}

fn loglog_interp(capacity: f64, points: &[(f64, f64)]) -> f64 {
    debug_assert!(points.len() >= 2);
    let x = capacity.ln();
    // Clamp outside the calibrated range by extending the end segments.
    let seg = points
        .windows(2)
        .find(|w| capacity <= w[1].0)
        .unwrap_or(&points[points.len() - 2..]);
    let (x0, y0) = (seg[0].0.ln(), seg[0].1.ln());
    let (x1, y1) = (seg[1].0.ln(), seg[1].1.ln());
    let t = (x - x0) / (x1 - x0);
    (y0 + t * (y1 - y0)).exp()
}

/// TCAM power/area for an arbitrary capacity in bytes, interpolating the
/// Table 4 calibration points on a log-log scale.
///
/// # Panics
///
/// Panics if `capacity_bytes == 0`.
#[must_use]
pub fn tcam_model(capacity_bytes: u64) -> PowerArea {
    assert!(capacity_bytes > 0, "zero-capacity TCAM");
    let c = capacity_bytes as f64;
    let area: Vec<(f64, f64)> = TCAM_TABLE4.iter().map(|p| (p.0 as f64, p.1)).collect();
    let stat: Vec<(f64, f64)> = TCAM_TABLE4.iter().map(|p| (p.0 as f64, p.2)).collect();
    let dyn_: Vec<(f64, f64)> = TCAM_TABLE4.iter().map(|p| (p.0 as f64, p.3)).collect();
    PowerArea {
        area_tiles: loglog_interp(c, &area),
        static_mw: loglog_interp(c, &stat),
        dynamic_nj_per_query: loglog_interp(c, &dyn_),
    }
}

/// SRAM-TCAM: same functional capacity, ~45% lower power and ~57% lower
/// area than TCAM (§6.4).
#[must_use]
pub fn sram_tcam_model(capacity_bytes: u64) -> PowerArea {
    let t = tcam_model(capacity_bytes);
    PowerArea {
        area_tiles: t.area_tiles * (1.0 - 0.57),
        static_mw: t.static_mw * (1.0 - 0.45),
        dynamic_nj_per_query: t.dynamic_nj_per_query * (1.0 - 0.45),
    }
}

/// TCAM capacity (bytes) needed to store `rules` 5-tuple rules. The
/// paper notes 1 MB holds ~100 K 5-tuple rules, i.e. ~10 B/rule
/// (13 B key + mask, TCAM-encoded).
#[must_use]
pub fn tcam_capacity_for_rules(rules: u64) -> u64 {
    (rules * (1 << 20) / 100_000).max(1 << 10)
}

/// Energy-efficiency ratio of HALO (at `halo_qps`) versus a TCAM sized
/// for `rules` rules (at `tcam_qps`): how many times more queries per
/// joule HALO delivers.
#[must_use]
pub fn halo_vs_tcam_efficiency(slices: u32, halo_qps: f64, rules: u64, tcam_qps: f64) -> f64 {
    let halo = halo_total(slices).queries_per_joule(halo_qps);
    let tcam = tcam_model(tcam_capacity_for_rules(rules)).queries_per_joule(tcam_qps);
    halo / tcam
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_points_are_exact() {
        for &(cap, area, stat, dynq) in &TCAM_TABLE4 {
            let m = tcam_model(cap);
            assert!((m.area_tiles - area).abs() / area < 1e-9, "area at {cap}");
            assert!((m.static_mw - stat).abs() / stat < 1e-9, "static at {cap}");
            assert!(
                (m.dynamic_nj_per_query - dynq).abs() / dynq < 1e-9,
                "dynamic at {cap}"
            );
        }
    }

    #[test]
    fn interpolation_is_monotone() {
        let mut last = 0.0;
        for kb in [1u64, 2, 5, 10, 50, 100, 500, 1024] {
            let m = tcam_model(kb << 10);
            assert!(m.static_mw > last, "non-monotone at {kb}KB");
            last = m.static_mw;
        }
    }

    #[test]
    fn sram_tcam_discounts_match_paper() {
        let t = tcam_model(1 << 20);
        let s = sram_tcam_model(1 << 20);
        assert!((s.static_mw / t.static_mw - 0.55).abs() < 1e-9);
        assert!((s.area_tiles / t.area_tiles - 0.43).abs() < 1e-9);
    }

    #[test]
    fn halo_area_is_trivial_fraction() {
        // 16 accelerators: ~0.19 tiles on a 16-tile chip = ~1.2% (§6.4).
        let total = halo_total(16);
        assert!((total.area_tiles - 0.192).abs() < 1e-9);
        assert!(total.area_tiles / 16.0 < 0.02);
    }

    #[test]
    fn halo_beats_tcam_efficiency_by_large_factor() {
        // 100K rules => 1MB TCAM. Assume TCAM sustains 2.1 G lookups/s
        // (1/cycle) and HALO 16 accelerators sustain ~1 lookup / 40cy
        // each ~= 840 M/s.
        let ratio = halo_vs_tcam_efficiency(16, 840e6, 100_000, 2.1e9);
        assert!(
            ratio > 5.0 && ratio < 100.0,
            "efficiency ratio {ratio} out of plausible band (paper: up to 48.2x)"
        );
    }

    #[test]
    fn energy_accounting() {
        let m = halo_accelerator_model();
        // 1 second at zero queries: static only.
        let e = m.energy_joules(1.0, 0.0);
        assert!((e - 0.0972).abs() < 1e-9);
        // Adding queries adds dynamic energy.
        assert!(m.energy_joules(1.0, 1e9) > e);
    }

    #[test]
    fn capacity_for_rules_scales() {
        assert_eq!(tcam_capacity_for_rules(100_000), 1 << 20);
        assert!(tcam_capacity_for_rules(10) >= 1 << 10);
        assert!(tcam_capacity_for_rules(1_000_000) > tcam_capacity_for_rules(100_000));
    }

    #[test]
    fn scaled_multiplies_static_not_dynamic() {
        let one = halo_accelerator_model();
        let four = one.scaled(4);
        assert!((four.static_mw - 4.0 * one.static_mw).abs() < 1e-9);
        assert!((four.dynamic_nj_per_query - one.dynamic_nj_per_query).abs() < 1e-12);
    }
}
