//! The Exact Match Cache (EMC): the first, fastest layer of the OVS
//! datapath (Fig. 2a).
//!
//! The EMC is a small direct-mapped-with-ways cache of full (unmasked)
//! miniflow keys. It performs a single table probe with no wildcard
//! masking; on a hit the packet skips the tuple space search entirely.
//! Its limited size means it only helps when the active flow set is
//! small — the effect visible in the paper's Fig. 3 breakdown.

use crate::packet::MINIFLOW_LEN;
use halo_mem::{Addr, MemCtx, SimMemory, CACHE_LINE};
use halo_tables::{hash_key, FlowKey, LookupTrace, TraceStep, SEED_PRIMARY};

/// Default EMC capacity in entries (OVS's `EM_FLOW_HASH_ENTRIES` = 8192).
pub const EMC_DEFAULT_ENTRIES: usize = 8192;

/// Ways probed per EMC lookup (OVS probes 2 candidate positions).
pub const EMC_WAYS: usize = 2;

/// The exact-match cache, laid out in simulated memory as an array of
/// 64-byte slots (`key bytes | valid | value`), one slot per line.
///
/// # Examples
///
/// ```
/// use halo_classify::Emc;
/// use halo_mem::SimMemory;
/// use halo_tables::FlowKey;
///
/// let mut mem = SimMemory::new();
/// let mut emc = Emc::new(&mut mem, 1024);
/// let k = FlowKey::synthetic(5, 16);
/// emc.insert(&mut mem, &k, 42);
/// assert_eq!(emc.lookup(&mut mem, &k), Some(42));
/// ```
#[derive(Debug)]
pub struct Emc {
    base: Addr,
    entries: usize,
    insertions: u64,
    replacements: u64,
}

impl Emc {
    const VALID_OFF: u64 = 48;
    const VALUE_OFF: u64 = 56;

    /// Creates an EMC with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or smaller than
    /// [`EMC_WAYS`].
    pub fn new(mem: &mut SimMemory, entries: usize) -> Self {
        assert!(entries.is_power_of_two() && entries >= EMC_WAYS);
        let base = mem.alloc_lines(entries as u64 * CACHE_LINE);
        Emc {
            base,
            entries,
            insertions: 0,
            replacements: 0,
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Base address of the slot array (used as the EMC's "table address"
    /// when dispatching EMC lookups to HALO accelerators).
    #[must_use]
    pub fn base_addr(&self) -> Addr {
        self.base
    }

    /// Bytes the EMC occupies.
    #[must_use]
    pub fn footprint(&self) -> u64 {
        self.entries as u64 * CACHE_LINE
    }

    /// `(insertions, replacements)` so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.insertions, self.replacements)
    }

    fn slot_addr(&self, idx: usize) -> Addr {
        self.base + idx as u64 * CACHE_LINE
    }

    fn candidate_slots(&self, key: &FlowKey) -> [usize; EMC_WAYS] {
        let h = hash_key(key, SEED_PRIMARY);
        let m = self.entries as u64;
        [(h % m) as usize, ((h >> 32) % m) as usize]
    }

    fn slot_matches<M: MemCtx>(&self, mem: &M, idx: usize, key: &FlowKey) -> bool {
        let a = self.slot_addr(idx);
        if mem.read_u8(a + Self::VALID_OFF) == 0 {
            return false;
        }
        let mut buf = [0u8; MINIFLOW_LEN];
        mem.read_bytes(a, &mut buf);
        buf == key.as_bytes()[..MINIFLOW_LEN.min(key.len())] && key.len() == MINIFLOW_LEN
    }

    /// Functional lookup.
    #[must_use]
    pub fn lookup<M: MemCtx>(&self, mem: &M, key: &FlowKey) -> Option<u64> {
        self.lookup_traced(mem, key).result
    }

    /// Lookup with the recorded access trace: hash, then probe up to two
    /// slot lines with key compares.
    #[must_use]
    pub fn lookup_traced<M: MemCtx>(&self, mem: &M, key: &FlowKey) -> LookupTrace {
        let mut steps = vec![TraceStep::Hash];
        let mut result = None;
        for idx in self.candidate_slots(key) {
            steps.push(TraceStep::LoadKv(self.slot_addr(idx)));
            steps.push(TraceStep::CompareKey);
            if self.slot_matches(mem, idx, key) {
                result = Some(mem.read_u64(self.slot_addr(idx) + Self::VALUE_OFF));
                break;
            }
        }
        LookupTrace { result, steps }
    }

    /// Inserts `key -> value`, overwriting one of the two candidate slots
    /// (an empty one if available, else the first — OVS's probabilistic
    /// replacement simplified to deterministic).
    pub fn insert<M: MemCtx>(&mut self, mem: &mut M, key: &FlowKey, value: u64) {
        assert_eq!(key.len(), MINIFLOW_LEN, "EMC keys are full miniflows");
        self.insertions += 1;
        let slots = self.candidate_slots(key);
        // Prefer a matching slot (update), then an empty one.
        let mut target = None;
        for &idx in &slots {
            if self.slot_matches(mem, idx, key) {
                target = Some(idx);
                break;
            }
        }
        if target.is_none() {
            for &idx in &slots {
                if mem.read_u8(self.slot_addr(idx) + Self::VALID_OFF) == 0 {
                    target = Some(idx);
                    break;
                }
            }
        }
        let idx = target.unwrap_or_else(|| {
            self.replacements += 1;
            slots[0]
        });
        let a = self.slot_addr(idx);
        mem.write_bytes(a, key.as_bytes());
        mem.write_u8(a + Self::VALID_OFF, 1);
        mem.write_u64(a + Self::VALUE_OFF, value);
    }

    /// Invalidates the slot holding `key`, if any — the per-flow
    /// analogue of [`clear`](Emc::clear) used when a single MegaFlow
    /// rule expires (flow churn) and its cached exact match must not
    /// outlive it. Returns whether a slot was invalidated.
    pub fn invalidate<M: MemCtx>(&mut self, mem: &mut M, key: &FlowKey) -> bool {
        for idx in self.candidate_slots(key) {
            if self.slot_matches(mem, idx, key) {
                mem.write_u8(self.slot_addr(idx) + Self::VALID_OFF, 0);
                return true;
            }
        }
        false
    }

    /// Invalidates every slot (e.g. on rule-table changes).
    pub fn clear<M: MemCtx>(&mut self, mem: &mut M) {
        for i in 0..self.entries {
            mem.write_u8(self.slot_addr(i) + Self::VALID_OFF, 0);
        }
    }

    /// All cache lines of the EMC array (for warming experiments).
    pub fn all_lines(&self) -> impl Iterator<Item = Addr> + '_ {
        (0..self.entries).map(|i| self.slot_addr(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketHeader;

    fn key(id: u64) -> FlowKey {
        PacketHeader::synthetic(id).miniflow()
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut mem = SimMemory::new();
        let mut emc = Emc::new(&mut mem, 256);
        emc.insert(&mut mem, &key(1), 11);
        emc.insert(&mut mem, &key(2), 22);
        assert_eq!(emc.lookup(&mem, &key(1)), Some(11));
        assert_eq!(emc.lookup(&mem, &key(2)), Some(22));
        assert_eq!(emc.lookup(&mem, &key(3)), None);
    }

    #[test]
    fn update_overwrites_value() {
        let mut mem = SimMemory::new();
        let mut emc = Emc::new(&mut mem, 256);
        emc.insert(&mut mem, &key(1), 11);
        emc.insert(&mut mem, &key(1), 99);
        assert_eq!(emc.lookup(&mem, &key(1)), Some(99));
    }

    #[test]
    fn small_emc_evicts_under_pressure() {
        let mut mem = SimMemory::new();
        let mut emc = Emc::new(&mut mem, 16);
        for id in 0..200 {
            emc.insert(&mut mem, &key(id), id);
        }
        let (_, repl) = emc.stats();
        assert!(repl > 0, "pressure must cause replacements");
        // At most `entries` keys can still hit.
        let mut hits = 0;
        for id in 0..200 {
            if emc.lookup(&mem, &key(id)) == Some(id) {
                hits += 1;
            }
        }
        assert!(hits <= 16);
        assert!(hits > 0);
    }

    #[test]
    fn trace_probes_at_most_two_lines() {
        let mut mem = SimMemory::new();
        let mut emc = Emc::new(&mut mem, 256);
        emc.insert(&mut mem, &key(1), 11);
        let tr = emc.lookup_traced(&mem, &key(1));
        let loads = tr
            .steps
            .iter()
            .filter(|s| matches!(s, TraceStep::LoadKv(_)))
            .count();
        assert!((1..=EMC_WAYS).contains(&loads));
        let miss = emc.lookup_traced(&mem, &key(77));
        let miss_loads = miss
            .steps
            .iter()
            .filter(|s| matches!(s, TraceStep::LoadKv(_)))
            .count();
        assert_eq!(miss_loads, EMC_WAYS);
    }

    #[test]
    fn invalidate_hits_one_flow_only() {
        let mut mem = SimMemory::new();
        let mut emc = Emc::new(&mut mem, 256);
        emc.insert(&mut mem, &key(1), 11);
        emc.insert(&mut mem, &key(2), 22);
        assert!(emc.invalidate(&mut mem, &key(1)));
        assert_eq!(emc.lookup(&mem, &key(1)), None);
        assert_eq!(emc.lookup(&mem, &key(2)), Some(22), "bystander kept");
        assert!(!emc.invalidate(&mut mem, &key(1)), "already gone");
        assert!(!emc.invalidate(&mut mem, &key(99)), "never cached");
    }

    #[test]
    fn clear_invalidates_everything() {
        let mut mem = SimMemory::new();
        let mut emc = Emc::new(&mut mem, 64);
        for id in 0..32 {
            emc.insert(&mut mem, &key(id), id);
        }
        emc.clear(&mut mem);
        for id in 0..32 {
            assert_eq!(emc.lookup(&mem, &key(id)), None);
        }
    }

    #[test]
    fn default_size_matches_ovs() {
        let mut mem = SimMemory::new();
        let emc = Emc::new(&mut mem, EMC_DEFAULT_ENTRIES);
        assert_eq!(emc.entries(), 8192);
        assert_eq!(emc.footprint(), 8192 * 64);
    }
}
