//! Packet headers and miniflow extraction.
//!
//! The virtual switch only examines packet *headers* (the paper's
//! footnote 1: payload size is irrelevant), so packets are modeled as
//! parsed header structs. `miniflow()` produces the canonical key bytes
//! the classification layers match on, mirroring OVS's miniflow
//! extraction during packet pre-processing.

use halo_tables::FlowKey;

/// Width in bytes of the canonical miniflow key.
pub const MINIFLOW_LEN: usize = 16;

/// A parsed packet header (IPv4 5-tuple plus the metadata fields OVS
/// matches on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketHeader {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub proto: u8,
    /// Ingress (virtual) port the packet arrived on.
    pub in_port: u8,
    /// VLAN id (0 = untagged).
    pub vlan: u16,
}

impl PacketHeader {
    /// A canonical UDP test packet for flow `id` (deterministic and
    /// injective in `id`).
    #[must_use]
    pub fn synthetic(id: u64) -> Self {
        PacketHeader {
            src_ip: 0x0A00_0000 | (id as u32 & 0x00FF_FFFF),
            dst_ip: 0xC0A8_0000 | ((id >> 24) as u32 & 0xFFFF),
            src_port: 1024 + (id % 60_000) as u16,
            dst_port: 53 + ((id / 7) % 1000) as u16,
            proto: 17,
            in_port: (id % 8) as u8,
            vlan: 0,
        }
    }

    /// Extracts the canonical [`MINIFLOW_LEN`]-byte miniflow key.
    #[must_use]
    pub fn miniflow(&self) -> FlowKey {
        let mut b = [0u8; MINIFLOW_LEN];
        b[0..4].copy_from_slice(&self.src_ip.to_be_bytes());
        b[4..8].copy_from_slice(&self.dst_ip.to_be_bytes());
        b[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        b[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        b[12] = self.proto;
        b[13] = self.in_port;
        b[14..16].copy_from_slice(&self.vlan.to_be_bytes());
        FlowKey::from_bytes(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miniflow_is_deterministic_and_full_width() {
        let h = PacketHeader::synthetic(42);
        assert_eq!(h.miniflow(), h.miniflow());
        assert_eq!(h.miniflow().len(), MINIFLOW_LEN);
    }

    #[test]
    fn distinct_ids_give_distinct_miniflows() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for id in 0..100_000u64 {
            assert!(
                seen.insert(PacketHeader::synthetic(id).miniflow()),
                "collision at id {id}"
            );
        }
    }

    #[test]
    fn field_layout_in_key() {
        let h = PacketHeader {
            src_ip: 0x01020304,
            dst_ip: 0x05060708,
            src_port: 0x1122,
            dst_port: 0x3344,
            proto: 6,
            in_port: 2,
            vlan: 0x0101,
        };
        let k = h.miniflow();
        assert_eq!(&k.as_bytes()[0..4], &[1, 2, 3, 4]);
        assert_eq!(k.as_bytes()[12], 6);
        assert_eq!(&k.as_bytes()[14..16], &[1, 1]);
    }
}
