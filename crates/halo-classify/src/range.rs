//! Range rules: per-field interval matching over the miniflow.
//!
//! Tuple space search expresses wildcarding as a bitmask per tuple,
//! which handles prefixes but not arbitrary intervals — a firewall rule
//! like `dst_port in 1024..=2047` has no single `(value, mask)` form.
//! [`RangeRule`] represents a rule as one inclusive interval per
//! miniflow field. Two consumers exist:
//!
//! * [`RangeRule::tss_expansion`] decomposes each interval into maximal
//!   aligned prefixes and cross-products them, giving the classic
//!   TSS-compatible (but potentially explosive) encoding.
//! * The RVH backend ([`crate::RvhTable`]) stores the rule whole and
//!   range-checks candidates after a hash-vector probe.
//!
//! Every [`WildcardMask`]-style prefix rule converts losslessly via
//! [`RangeRule::from_masked_key`], so the range form is a strict
//! superset of what the tuple space can express.

use crate::mask::WildcardMask;
use crate::packet::MINIFLOW_LEN;
use halo_tables::FlowKey;

/// Number of matchable miniflow fields.
pub const NUM_FIELDS: usize = 7;

/// One miniflow field: a named byte span interpreted big-endian.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpec {
    /// Stable field name (figure rows, shrunk-trace dumps).
    pub name: &'static str,
    /// Byte offset within the miniflow.
    pub offset: usize,
    /// Width in bytes (1..=4).
    pub width: usize,
}

/// The miniflow field layout (must mirror `PacketHeader::miniflow`).
pub const FIELDS: [FieldSpec; NUM_FIELDS] = [
    FieldSpec {
        name: "src_ip",
        offset: 0,
        width: 4,
    },
    FieldSpec {
        name: "dst_ip",
        offset: 4,
        width: 4,
    },
    FieldSpec {
        name: "src_port",
        offset: 8,
        width: 2,
    },
    FieldSpec {
        name: "dst_port",
        offset: 10,
        width: 2,
    },
    FieldSpec {
        name: "proto",
        offset: 12,
        width: 1,
    },
    FieldSpec {
        name: "in_port",
        offset: 13,
        width: 1,
    },
    FieldSpec {
        name: "vlan",
        offset: 14,
        width: 2,
    },
];

impl FieldSpec {
    /// Largest representable value for this field.
    #[must_use]
    pub fn max_value(&self) -> u64 {
        if self.width >= 8 {
            u64::MAX
        } else {
            (1u64 << (self.width * 8)) - 1
        }
    }

    /// Reads this field from a miniflow key (big-endian).
    ///
    /// # Panics
    ///
    /// Panics if `key` is shorter than the miniflow layout.
    #[must_use]
    pub fn extract(&self, key: &FlowKey) -> u64 {
        let bytes = key.as_bytes();
        assert!(bytes.len() >= self.offset + self.width, "key too short");
        bytes[self.offset..self.offset + self.width]
            .iter()
            .fold(0u64, |acc, &b| (acc << 8) | u64::from(b))
    }

    /// Writes `value` into this field of a miniflow byte buffer
    /// (big-endian; high bytes beyond the field width are dropped).
    pub fn write(&self, bytes: &mut [u8; MINIFLOW_LEN], value: u64) {
        for i in 0..self.width {
            let shift = 8 * (self.width - 1 - i);
            bytes[self.offset + i] = ((value >> shift) & 0xFF) as u8;
        }
    }
}

/// An inclusive interval `[lo, hi]` over one field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldRange {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl FieldRange {
    /// A range matching exactly one value.
    #[must_use]
    pub fn exact(v: u64) -> Self {
        FieldRange { lo: v, hi: v }
    }

    /// An inclusive interval.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn span(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "inverted range {lo}..={hi}");
        FieldRange { lo, hi }
    }

    /// The full domain of field `field` (wildcard).
    #[must_use]
    pub fn any(field: usize) -> Self {
        FieldRange {
            lo: 0,
            hi: FIELDS[field].max_value(),
        }
    }

    /// Whether `v` lies inside the interval.
    #[must_use]
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether `other` lies entirely inside this interval.
    #[must_use]
    pub fn covers(&self, other: &FieldRange) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether the interval pins a single value.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether the interval spans field `field`'s whole domain.
    #[must_use]
    pub fn is_any(&self, field: usize) -> bool {
        self.lo == 0 && self.hi == FIELDS[field].max_value()
    }
}

/// A classification rule: one inclusive interval per miniflow field,
/// plus the priority/action pair the table layers already encode.
///
/// Two rules with identical `ranges` describe the *same* match
/// condition; inserting the second replaces the first (mirroring masked
/// key collision in the tuple space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RangeRule {
    /// Per-field intervals, indexed like [`FIELDS`].
    pub ranges: [FieldRange; NUM_FIELDS],
    /// Match priority (higher wins).
    pub priority: u16,
    /// Action value (must fit in 48 bits for table encoding).
    pub action: u64,
}

impl RangeRule {
    /// An exact-match rule pinning every field to `key`'s values.
    ///
    /// # Panics
    ///
    /// Panics if `key` is shorter than the miniflow layout.
    #[must_use]
    pub fn exact_flow(key: &FlowKey, priority: u16, action: u64) -> Self {
        let mut ranges = [FieldRange::exact(0); NUM_FIELDS];
        for (i, f) in FIELDS.iter().enumerate() {
            ranges[i] = FieldRange::exact(f.extract(key));
        }
        RangeRule {
            ranges,
            priority,
            action,
        }
    }

    /// Whether the rule matches `key` (every field inside its range).
    #[must_use]
    pub fn matches(&self, key: &FlowKey) -> bool {
        FIELDS
            .iter()
            .zip(&self.ranges)
            .all(|(f, r)| r.contains(f.extract(key)))
    }

    /// Whether this rule's region fully contains `other`'s region.
    #[must_use]
    pub fn covers(&self, other: &[FieldRange; NUM_FIELDS]) -> bool {
        self.ranges.iter().zip(other).all(|(a, b)| a.covers(b))
    }

    /// A miniflow key inside the rule's region (each field at its lower
    /// bound) — useful for generating guaranteed-hit traffic.
    #[must_use]
    pub fn point_key(&self) -> FlowKey {
        let mut bytes = [0u8; MINIFLOW_LEN];
        for (f, r) in FIELDS.iter().zip(&self.ranges) {
            f.write(&mut bytes, r.lo);
        }
        FlowKey::from_bytes(&bytes)
    }

    /// Converts a `(mask, key)` tuple-space rule into range form.
    ///
    /// Returns `None` when the mask is not a per-field prefix (i.e. it
    /// clears bits that are not a contiguous low-order run of some
    /// field) — such masks have no interval equivalent. Every mask
    /// `distinct_masks` generates converts.
    #[must_use]
    pub fn from_masked_key(
        mask: &WildcardMask,
        key: &FlowKey,
        priority: u16,
        action: u64,
    ) -> Option<Self> {
        let mbytes = mask.as_bytes();
        let mut ranges = [FieldRange::exact(0); NUM_FIELDS];
        for (i, f) in FIELDS.iter().enumerate() {
            let max = f.max_value();
            let mval = mbytes[f.offset..f.offset + f.width]
                .iter()
                .fold(0u64, |acc, &b| (acc << 8) | u64::from(b));
            let inv = !mval & max;
            // Prefix masks have all their cleared bits low-order:
            // inv + 1 must be a power of two.
            if inv & (inv + 1) != 0 {
                return None;
            }
            let lo = f.extract(key) & mval;
            ranges[i] = FieldRange { lo, hi: lo | inv };
        }
        Some(RangeRule {
            ranges,
            priority,
            action,
        })
    }

    /// Decomposes the rule into TSS-compatible prefix rules: the
    /// cross-product of each field's maximal aligned-prefix cover.
    /// A `w`-bit interval needs at most `2w - 2` prefixes, so the
    /// product can explode — exactly the TSS weakness range-vector
    /// hashing avoids.
    #[must_use]
    pub fn tss_expansion(&self) -> Vec<PrefixRule> {
        // Per-field prefix lists.
        let per_field: Vec<Vec<(u64, u64)>> = FIELDS
            .iter()
            .zip(&self.ranges)
            .map(|(f, r)| prefix_decompose(r.lo, r.hi, f.width * 8))
            .collect();
        let mut out = Vec::new();
        let mut idx = [0usize; NUM_FIELDS];
        loop {
            let mut mask_bytes = [0u8; 16];
            let mut key_bytes = [0u8; MINIFLOW_LEN];
            let mut region = [FieldRange::exact(0); NUM_FIELDS];
            for (i, f) in FIELDS.iter().enumerate() {
                let (value, fmask) = per_field[i][idx[i]];
                for b in 0..f.width {
                    let shift = 8 * (f.width - 1 - b);
                    mask_bytes[f.offset + b] = ((fmask >> shift) & 0xFF) as u8;
                }
                f.write(&mut key_bytes, value);
                let span = !fmask & f.max_value();
                region[i] = FieldRange {
                    lo: value,
                    hi: value | span,
                };
            }
            out.push(PrefixRule {
                mask: WildcardMask::from_bytes(&mask_bytes),
                key: FlowKey::from_bytes(&key_bytes),
                region,
            });
            // Odometer increment over the per-field lists.
            let mut carry = true;
            for i in (0..NUM_FIELDS).rev() {
                if !carry {
                    break;
                }
                idx[i] += 1;
                if idx[i] < per_field[i].len() {
                    carry = false;
                } else {
                    idx[i] = 0;
                }
            }
            if carry {
                return out;
            }
        }
    }
}

/// One element of a rule's TSS expansion: a `(mask, key)` pair plus the
/// hyperrectangle it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixRule {
    /// The tuple mask.
    pub mask: WildcardMask,
    /// The masked key to install.
    pub key: FlowKey,
    /// The region this prefix covers (for shadow-rule bookkeeping).
    pub region: [FieldRange; NUM_FIELDS],
}

/// Greedy maximal-aligned-prefix cover of `[lo, hi]` over a
/// `width_bits`-bit domain: each element is a `(value, mask)` pair
/// where `mask` has its cleared bits low-order.
///
/// # Panics
///
/// Panics if the bounds exceed the field domain or are inverted.
#[must_use]
pub fn prefix_decompose(lo: u64, hi: u64, width_bits: usize) -> Vec<(u64, u64)> {
    let domain_max = if width_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << width_bits) - 1
    };
    assert!(lo <= hi && hi <= domain_max, "bad range {lo}..={hi}");
    let mut out = Vec::new();
    let mut cur = lo;
    loop {
        // Largest power-of-two block starting at `cur`, aligned to its
        // own size, that stays within `hi`.
        let mut size = 1u64;
        while let Some(next) = size.checked_mul(2) {
            if cur & (next - 1) != 0 || next - 1 > hi - cur {
                break;
            }
            size = next;
        }
        let mask = domain_max & !(size - 1);
        out.push((cur, mask));
        if cur + (size - 1) == hi {
            return out;
        }
        cur += size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::distinct_masks;
    use crate::packet::PacketHeader;

    #[test]
    fn field_layout_matches_miniflow() {
        let pkt = PacketHeader::synthetic(123_456);
        let key = pkt.miniflow();
        assert_eq!(FIELDS[0].extract(&key), u64::from(pkt.src_ip));
        assert_eq!(FIELDS[1].extract(&key), u64::from(pkt.dst_ip));
        assert_eq!(FIELDS[2].extract(&key), u64::from(pkt.src_port));
        assert_eq!(FIELDS[3].extract(&key), u64::from(pkt.dst_port));
        assert_eq!(FIELDS[4].extract(&key), u64::from(pkt.proto));
        assert_eq!(FIELDS[5].extract(&key), u64::from(pkt.in_port));
        assert_eq!(FIELDS[6].extract(&key), u64::from(pkt.vlan));
    }

    #[test]
    fn write_round_trips_extract() {
        let mut bytes = [0u8; MINIFLOW_LEN];
        for (i, f) in FIELDS.iter().enumerate() {
            f.write(&mut bytes, (i as u64 + 1) * 3);
        }
        let key = FlowKey::from_bytes(&bytes);
        for (i, f) in FIELDS.iter().enumerate() {
            assert_eq!(f.extract(&key), (i as u64 + 1) * 3, "{}", f.name);
        }
    }

    #[test]
    fn prefix_decompose_covers_exactly() {
        for &(lo, hi, bits) in &[
            (0u64, 0u64, 16usize),
            (0, 65_535, 16),
            (1_024, 2_047, 16),
            (1_000, 1_999, 16),
            (3, 3, 8),
            (1, 254, 8),
            (7, 8, 4),
        ] {
            let parts = prefix_decompose(lo, hi, bits);
            let max_parts = 2 * bits - 2;
            assert!(
                parts.len() <= max_parts.max(1),
                "{lo}..={hi}: {} parts > 2w-2",
                parts.len()
            );
            // Exhaustively confirm cover and disjointness.
            for v in lo.saturating_sub(1)..=(hi + 1).min((1 << bits) - 1) {
                let n = parts.iter().filter(|(val, mask)| v & mask == *val).count();
                let expect = usize::from(v >= lo && v <= hi);
                assert_eq!(n, expect, "{lo}..={hi} at {v}");
            }
        }
    }

    #[test]
    fn aligned_power_of_two_is_one_prefix() {
        assert_eq!(prefix_decompose(1_024, 2_047, 16).len(), 1);
        assert_eq!(prefix_decompose(0, 65_535, 16).len(), 1);
    }

    #[test]
    fn every_distinct_mask_converts_to_ranges() {
        let pkt = PacketHeader::synthetic(42);
        let key = pkt.miniflow();
        for mask in distinct_masks(24) {
            let rule = RangeRule::from_masked_key(&mask, &key, 1, 2)
                .unwrap_or_else(|| panic!("mask {mask:?} should convert"));
            assert!(rule.matches(&key), "rule must match its source key");
            // The rule matches exactly the keys the mask maps to the
            // same masked key.
            let other = PacketHeader::synthetic(43).miniflow();
            assert_eq!(
                rule.matches(&other),
                mask.apply(&other) == mask.apply(&key),
                "mask {mask:?}"
            );
        }
    }

    #[test]
    fn non_prefix_mask_is_rejected() {
        let mut bytes = [0xFFu8; 16];
        bytes[8] = 0b1010_1010; // non-contiguous clear bits in src_port
        let mask = WildcardMask::from_bytes(&bytes);
        let key = PacketHeader::synthetic(1).miniflow();
        assert!(RangeRule::from_masked_key(&mask, &key, 0, 0).is_none());
    }

    #[test]
    fn tss_expansion_matches_rule_semantics() {
        let mut rule = RangeRule::exact_flow(&PacketHeader::synthetic(5).miniflow(), 3, 9);
        rule.ranges[3] = FieldRange::span(1_000, 1_999); // dst_port
        rule.ranges[4] = FieldRange::any(4); // proto
        let expansion = rule.tss_expansion();
        assert!(expansion.len() > 1, "range must need several prefixes");
        // Sample points inside and outside the region.
        for dport in [999u64, 1_000, 1_500, 1_999, 2_000] {
            let mut arr = [0u8; MINIFLOW_LEN];
            arr.copy_from_slice(rule.point_key().as_bytes());
            FIELDS[3].write(&mut arr, dport);
            let key = FlowKey::from_bytes(&arr);
            let direct = rule.matches(&key);
            let via_prefixes = expansion
                .iter()
                .filter(|p| key.masked(p.mask.as_bytes()) == p.key)
                .count();
            assert_eq!(via_prefixes, usize::from(direct), "dport {dport}");
        }
    }

    #[test]
    fn point_key_lands_inside() {
        let mut rule = RangeRule::exact_flow(&PacketHeader::synthetic(8).miniflow(), 1, 1);
        rule.ranges[2] = FieldRange::span(5_000, 6_000);
        assert!(rule.matches(&rule.point_key()));
    }
}
