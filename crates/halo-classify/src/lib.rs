//! # halo-classify
//!
//! The flow-classification layers of an OVS-style virtual switch
//! (Fig. 2a of the paper):
//!
//! * [`PacketHeader`] / miniflow extraction — packet pre-processing.
//! * [`Emc`] — the Exact Match Cache, one full-key probe, no masking.
//! * [`TupleSpace`] — tuple space search for the MegaFlow layer
//!   ([`SearchMode::FirstMatch`]) and the OpenFlow layer
//!   ([`SearchMode::HighestPriority`]), built on wildcard
//!   [`WildcardMask`]s over cuckoo tables.
//!
//! All tables live in simulated memory, so `halo-cpu` (software) and
//! `halo-accel` (near-cache) can time the identical access streams.
//!
//! # Examples
//!
//! ```
//! use halo_classify::{distinct_masks, Emc, PacketHeader, SearchMode, TupleSpace};
//! use halo_mem::SimMemory;
//!
//! let mut mem = SimMemory::new();
//! let mut emc = Emc::new(&mut mem, 1024);
//! let mut megaflow = TupleSpace::new(&mut mem, distinct_masks(5), 1024,
//!                                    SearchMode::FirstMatch);
//! let pkt = PacketHeader::synthetic(1);
//! megaflow.insert_rule(&mut mem, 2, &pkt.miniflow(), 0, 7).unwrap();
//!
//! // EMC miss -> MegaFlow hit -> promote into the EMC.
//! assert_eq!(emc.lookup(&mut mem, &pkt.miniflow()), None);
//! let hit = megaflow.classify(&mut mem, &pkt.miniflow()).unwrap();
//! emc.insert(&mut mem, &pkt.miniflow(), hit.action);
//! assert_eq!(emc.lookup(&mut mem, &pkt.miniflow()), Some(7));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dtree;
mod emc;
mod mask;
mod packet;
mod range;
mod rvh;
mod tss;

pub use dtree::DecisionTree;
pub use emc::{Emc, EMC_DEFAULT_ENTRIES, EMC_WAYS};
pub use mask::{distinct_masks, WildcardMask};
pub use packet::{PacketHeader, MINIFLOW_LEN};
pub use range::{
    prefix_decompose, FieldRange, FieldSpec, PrefixRule, RangeRule, FIELDS, NUM_FIELDS,
};
pub use rvh::{RvhTable, RVH_VECTORS};
pub use tss::{
    decode_rule, encode_rule, try_encode_rule, ActionRangeError, RuleError, RuleMatch, SearchMode,
    Tuple, TupleSpace,
};
