//! Tuple space search (TSS): the MegaFlow and OpenFlow layers of the
//! OVS datapath (Fig. 2a).
//!
//! Each *tuple* is one wildcard pattern plus a cuckoo hash table of the
//! rules sharing that pattern. Classifying a packet means masking its
//! miniflow with each tuple's pattern and probing that tuple's table:
//!
//! * **MegaFlow** ([`SearchMode::FirstMatch`]) returns at the first
//!   matching tuple;
//! * **OpenFlow** ([`SearchMode::HighestPriority`]) probes every tuple
//!   and keeps the highest-priority match.

use crate::mask::WildcardMask;
use halo_mem::SimMemory;
use halo_tables::{CuckooTable, FlowKey, FlowTable, LookupTrace, TableFullError};

/// Search semantics of a tuple space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Return the first matching tuple (MegaFlow layer).
    FirstMatch,
    /// Probe all tuples; return the highest-priority match (OpenFlow
    /// layer).
    HighestPriority,
}

/// A successful classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleMatch {
    /// Index of the tuple that matched.
    pub tuple: usize,
    /// Rule priority (meaningful under [`SearchMode::HighestPriority`]).
    pub priority: u16,
    /// The rule's action value (48 bits).
    pub action: u64,
}

/// Encodes priority + action into a table value.
#[must_use]
pub fn encode_rule(priority: u16, action: u64) -> u64 {
    assert!(action < (1 << 48), "action must fit 48 bits");
    (u64::from(priority) << 48) | action
}

/// Decodes a table value into `(priority, action)`.
#[must_use]
pub fn decode_rule(value: u64) -> (u16, u64) {
    ((value >> 48) as u16, value & ((1 << 48) - 1))
}

/// One wildcard tuple: a mask plus its rule table. Generic over the
/// table backend (defaulting to the DPDK-style [`CuckooTable`]) so
/// alternative exact-match designs slot in without touching the search
/// logic.
#[derive(Debug)]
pub struct Tuple<T: FlowTable = CuckooTable> {
    mask: WildcardMask,
    table: T,
}

impl<T: FlowTable> Tuple<T> {
    /// Builds a tuple from a mask and a pre-sized rule table.
    #[must_use]
    pub fn from_parts(mask: WildcardMask, table: T) -> Self {
        Tuple { mask, table }
    }

    /// The tuple's wildcard mask.
    #[must_use]
    pub fn mask(&self) -> &WildcardMask {
        &self.mask
    }

    /// The tuple's rule table.
    #[must_use]
    pub fn table(&self) -> &T {
        &self.table
    }

    /// The tuple's rule table, mutably (rule expiry and relocation).
    pub fn table_mut(&mut self) -> &mut T {
        &mut self.table
    }

    /// Number of rules installed in this tuple.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the tuple holds no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// A tuple space: an ordered list of wildcard tuples.
///
/// # Examples
///
/// ```
/// use halo_classify::{distinct_masks, PacketHeader, SearchMode, TupleSpace};
/// use halo_mem::SimMemory;
///
/// let mut mem = SimMemory::new();
/// let mut tss = TupleSpace::new(&mut mem, distinct_masks(2), 1024, SearchMode::FirstMatch);
/// let pkt = PacketHeader::synthetic(7);
/// tss.insert_rule(&mut mem, 1, &pkt.miniflow(), 5, 0xAA).unwrap();
/// let hit = tss.classify(&mut mem, &pkt.miniflow()).unwrap();
/// assert_eq!(hit.tuple, 1);
/// assert_eq!(hit.action, 0xAA);
/// ```
#[derive(Debug)]
pub struct TupleSpace<T: FlowTable = CuckooTable> {
    tuples: Vec<Tuple<T>>,
    mode: SearchMode,
}

impl TupleSpace {
    /// Creates a cuckoo-backed tuple space with one tuple per mask, each
    /// sized for `entries_per_tuple` rules.
    pub fn new(
        mem: &mut SimMemory,
        masks: Vec<WildcardMask>,
        entries_per_tuple: usize,
        mode: SearchMode,
    ) -> Self {
        let tuples = masks
            .into_iter()
            .map(|mask| Tuple {
                mask,
                table: CuckooTable::with_capacity_for(
                    mem,
                    entries_per_tuple,
                    0.85,
                    crate::packet::MINIFLOW_LEN,
                ),
            })
            .collect();
        TupleSpace { tuples, mode }
    }
}

impl<T: FlowTable> TupleSpace<T> {
    /// Assembles a tuple space from pre-built tuples (any [`FlowTable`]
    /// backend), searched in the given order.
    #[must_use]
    pub fn from_tuples(tuples: Vec<Tuple<T>>, mode: SearchMode) -> Self {
        TupleSpace { tuples, mode }
    }

    /// The tuples, in search order.
    #[must_use]
    pub fn tuples(&self) -> &[Tuple<T>] {
        &self.tuples
    }

    /// Search semantics.
    #[must_use]
    pub fn mode(&self) -> SearchMode {
        self.mode
    }

    /// Total rules across tuples.
    #[must_use]
    pub fn total_rules(&self) -> usize {
        self.tuples.iter().map(Tuple::len).sum()
    }

    /// Installs a rule in tuple `tuple_idx`: the rule matches any key
    /// whose masked bytes equal `key & mask`.
    ///
    /// # Errors
    ///
    /// Returns [`TableFullError`] if the tuple's table is full.
    ///
    /// # Panics
    ///
    /// Panics if `tuple_idx` is out of range.
    pub fn insert_rule(
        &mut self,
        mem: &mut SimMemory,
        tuple_idx: usize,
        key: &FlowKey,
        priority: u16,
        action: u64,
    ) -> Result<(), TableFullError> {
        let tuple = &mut self.tuples[tuple_idx];
        let masked = tuple.mask.apply(key);
        tuple
            .table
            .insert(mem, &masked, encode_rule(priority, action))
    }

    /// Removes the rule matching `key & mask` from tuple `tuple_idx`
    /// (flow expiry under churn). Returns the removed rule's
    /// `(priority, action)`, or `None` if no such rule was installed.
    ///
    /// # Panics
    ///
    /// Panics if `tuple_idx` is out of range.
    pub fn remove_rule(
        &mut self,
        mem: &mut SimMemory,
        tuple_idx: usize,
        key: &FlowKey,
    ) -> Option<(u16, u64)> {
        let tuple = &mut self.tuples[tuple_idx];
        let masked = tuple.mask.apply(key);
        tuple.table.remove(mem, &masked).map(decode_rule)
    }

    /// Functional classification.
    #[must_use]
    pub fn classify(&self, mem: &SimMemory, key: &FlowKey) -> Option<RuleMatch> {
        self.classify_traced(mem, key, false).0
    }

    /// Classification returning both the result and the per-tuple lookup
    /// traces actually performed (in probe order). Under
    /// [`SearchMode::FirstMatch`] probing stops at the first hit; under
    /// [`SearchMode::HighestPriority`] every tuple is probed.
    #[must_use]
    pub fn classify_traced(
        &self,
        mem: &SimMemory,
        key: &FlowKey,
        software_locking: bool,
    ) -> (Option<RuleMatch>, Vec<(usize, LookupTrace)>) {
        let mut probes = Vec::with_capacity(self.tuples.len());
        let mut best: Option<RuleMatch> = None;
        for (i, tuple) in self.tuples.iter().enumerate() {
            let masked = tuple.mask.apply(key);
            let tr = tuple.table.lookup_traced(mem, &masked, software_locking);
            let result = tr.result;
            probes.push((i, tr));
            if let Some(v) = result {
                let (priority, action) = decode_rule(v);
                let m = RuleMatch {
                    tuple: i,
                    priority,
                    action,
                };
                match self.mode {
                    SearchMode::FirstMatch => return (Some(m), probes),
                    SearchMode::HighestPriority => {
                        if best.is_none_or(|b| m.priority > b.priority) {
                            best = Some(m);
                        }
                    }
                }
            }
        }
        (best, probes)
    }

    /// Reference classification by linear scan over every tuple (no hash
    /// tables): the oracle for property tests.
    #[must_use]
    pub fn classify_linear(&self, mem: &SimMemory, key: &FlowKey) -> Option<RuleMatch> {
        let mut best: Option<RuleMatch> = None;
        for (i, tuple) in self.tuples.iter().enumerate() {
            let masked = tuple.mask.apply(key);
            if let Some(v) = tuple.table.lookup(mem, &masked) {
                let (priority, action) = decode_rule(v);
                let m = RuleMatch {
                    tuple: i,
                    priority,
                    action,
                };
                match self.mode {
                    SearchMode::FirstMatch => return Some(m),
                    SearchMode::HighestPriority => {
                        if best.is_none_or(|b| m.priority > b.priority) {
                            best = Some(m);
                        }
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::distinct_masks;
    use crate::packet::PacketHeader;

    fn key(id: u64) -> FlowKey {
        PacketHeader::synthetic(id).miniflow()
    }

    #[test]
    fn rule_encoding_roundtrip() {
        for (p, a) in [(0u16, 0u64), (9, 0xABCD), (u16::MAX, (1 << 48) - 1)] {
            assert_eq!(decode_rule(encode_rule(p, a)), (p, a));
        }
    }

    #[test]
    fn first_match_returns_earliest_tuple() {
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(&mut mem, distinct_masks(3), 256, SearchMode::FirstMatch);
        let k = key(7);
        // Install the same flow in tuples 1 and 2.
        tss.insert_rule(&mut mem, 1, &k, 1, 100).unwrap();
        tss.insert_rule(&mut mem, 2, &k, 9, 200).unwrap();
        let m = tss.classify(&mem, &k).unwrap();
        assert_eq!(m.tuple, 1, "MegaFlow stops at the first match");
        assert_eq!(m.action, 100);
    }

    #[test]
    fn highest_priority_searches_all() {
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(
            &mut mem,
            distinct_masks(3),
            256,
            SearchMode::HighestPriority,
        );
        let k = key(7);
        tss.insert_rule(&mut mem, 1, &k, 1, 100).unwrap();
        tss.insert_rule(&mut mem, 2, &k, 9, 200).unwrap();
        let m = tss.classify(&mem, &k).unwrap();
        assert_eq!(m.tuple, 2, "OpenFlow picks the highest priority");
        assert_eq!(m.action, 200);
    }

    #[test]
    fn wildcard_rule_catches_many_flows() {
        let mut mem = SimMemory::new();
        let masks = vec![WildcardMask::exact().any_src_port().any_dst_port()];
        let mut tss = TupleSpace::new(&mut mem, masks, 256, SearchMode::FirstMatch);
        let base = PacketHeader::synthetic(3);
        tss.insert_rule(&mut mem, 0, &base.miniflow(), 0, 42)
            .unwrap();
        // Same 5-tuple except ports: still matches.
        let mut other = base;
        other.src_port = base.src_port.wrapping_add(100);
        other.dst_port = base.dst_port.wrapping_add(100);
        let m = tss.classify(&mem, &other.miniflow()).unwrap();
        assert_eq!(m.action, 42);
    }

    #[test]
    fn miss_probes_every_tuple() {
        let mut mem = SimMemory::new();
        let tss = TupleSpace::new(&mut mem, distinct_masks(5), 256, SearchMode::FirstMatch);
        let (m, probes) = tss.classify_traced(&mem, &key(1), false);
        assert!(m.is_none());
        assert_eq!(probes.len(), 5);
    }

    #[test]
    fn first_match_stops_probing_early() {
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(&mut mem, distinct_masks(5), 256, SearchMode::FirstMatch);
        let k = key(7);
        tss.insert_rule(&mut mem, 0, &k, 0, 1).unwrap();
        let (_, probes) = tss.classify_traced(&mem, &k, false);
        assert_eq!(probes.len(), 1);
    }

    #[test]
    fn linear_scan_agrees_with_hashed_search() {
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(
            &mut mem,
            distinct_masks(8),
            512,
            SearchMode::HighestPriority,
        );
        for id in 0..200u64 {
            let tuple = (id % 8) as usize;
            tss.insert_rule(&mut mem, tuple, &key(id), (id % 16) as u16, id)
                .unwrap();
        }
        for id in 0..300u64 {
            let k = key(id);
            assert_eq!(
                tss.classify(&mem, &k),
                tss.classify_linear(&mem, &k),
                "divergence at id {id}"
            );
        }
    }

    #[test]
    fn remove_rule_roundtrips_and_misses_cleanly() {
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(&mut mem, distinct_masks(3), 256, SearchMode::FirstMatch);
        let k = key(7);
        tss.insert_rule(&mut mem, 1, &k, 5, 100).unwrap();
        assert_eq!(tss.total_rules(), 1);
        assert_eq!(tss.remove_rule(&mut mem, 1, &k), Some((5, 100)));
        assert_eq!(tss.total_rules(), 0);
        assert!(tss.classify(&mem, &k).is_none(), "expired rule hit");
        assert_eq!(tss.remove_rule(&mut mem, 1, &k), None, "double expiry");
        // Removal is per-tuple: the same key in another tuple survives.
        tss.insert_rule(&mut mem, 0, &k, 1, 11).unwrap();
        tss.insert_rule(&mut mem, 2, &k, 2, 22).unwrap();
        assert_eq!(tss.remove_rule(&mut mem, 0, &k), Some((1, 11)));
        assert_eq!(tss.classify(&mem, &k).unwrap().action, 22);
    }

    /// The tuple space is generic over its table backend: the SFH
    /// baseline drops into the MegaFlow slot and classifies identically
    /// to the cuckoo default on the same rule set.
    #[test]
    fn sfh_backend_classifies_like_cuckoo() {
        use halo_tables::SfhTable;
        let mut mem = SimMemory::new();
        let mut cuckoo = TupleSpace::new(&mut mem, distinct_masks(3), 256, SearchMode::FirstMatch);
        let tuples = distinct_masks(3)
            .into_iter()
            .map(|mask| {
                Tuple::from_parts(
                    mask,
                    SfhTable::with_capacity_for(&mut mem, 256, crate::packet::MINIFLOW_LEN),
                )
            })
            .collect();
        let mut sfh: TupleSpace<SfhTable> = TupleSpace::from_tuples(tuples, SearchMode::FirstMatch);
        for id in 0..60u64 {
            let tuple = (id % 3) as usize;
            cuckoo
                .insert_rule(&mut mem, tuple, &key(id), 0, id)
                .unwrap();
            sfh.insert_rule(&mut mem, tuple, &key(id), 0, id).unwrap();
        }
        for id in 0..90u64 {
            assert_eq!(
                cuckoo.classify(&mem, &key(id)),
                sfh.classify(&mem, &key(id)),
                "backends diverged at id {id}"
            );
        }
    }

    #[test]
    fn total_rules_counts_across_tuples() {
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(&mut mem, distinct_masks(4), 256, SearchMode::FirstMatch);
        for id in 0..40u64 {
            tss.insert_rule(&mut mem, (id % 4) as usize, &key(id), 0, id)
                .unwrap();
        }
        // Wildcard masks can merge distinct flows into one rule, so the
        // total is at most 40 but must be positive.
        let total = tss.total_rules();
        assert!(total > 0 && total <= 40);
        assert!(!tss.tuples().is_empty());
    }
}
