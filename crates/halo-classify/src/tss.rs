//! Tuple space search (TSS): the MegaFlow and OpenFlow layers of the
//! OVS datapath (Fig. 2a).
//!
//! Each *tuple* is one wildcard pattern plus a cuckoo hash table of the
//! rules sharing that pattern. Classifying a packet means masking its
//! miniflow with each tuple's pattern and probing that tuple's table:
//!
//! * **MegaFlow** ([`SearchMode::FirstMatch`]) returns at the first
//!   matching tuple;
//! * **OpenFlow** ([`SearchMode::HighestPriority`]) probes every tuple
//!   and keeps the highest-priority match.

use crate::mask::WildcardMask;
use halo_mem::SimMemory;
use halo_tables::{CuckooTable, FlowKey, FlowTable, LookupTrace, TableFullError};

/// Search semantics of a tuple space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Return the first matching tuple (MegaFlow layer).
    FirstMatch,
    /// Probe all tuples; return the highest-priority match (OpenFlow
    /// layer).
    ///
    /// Priority ties are broken deterministically toward the *lowest
    /// tuple index* ([`RuleMatch::beats`]), independent of probe order.
    /// The tie-break is part of the search contract: alternative
    /// wildcard backends that probe in a different order must reproduce
    /// the same decision, or backend comparisons diverge on ties.
    HighestPriority,
}

/// A successful classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleMatch {
    /// Index of the tuple that matched (for non-TSS wildcard backends:
    /// the probe slot that produced the match).
    pub tuple: usize,
    /// Rule priority (meaningful under [`SearchMode::HighestPriority`]).
    pub priority: u16,
    /// The rule's action value (48 bits).
    pub action: u64,
}

impl RuleMatch {
    /// The deterministic [`SearchMode::HighestPriority`] ordering:
    /// `self` displaces `incumbent` iff it has strictly higher
    /// priority, or equal priority and a lower tuple index — i.e. the
    /// winner is max by (priority desc, tuple index asc), regardless of
    /// the order the tuples were probed in.
    #[must_use]
    pub fn beats(&self, incumbent: &RuleMatch) -> bool {
        self.priority > incumbent.priority
            || (self.priority == incumbent.priority && self.tuple < incumbent.tuple)
    }
}

/// The action value `action` does not fit the 48-bit action field of an
/// encoded rule (the upper 16 bits hold the priority).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActionRangeError {
    /// The out-of-range action.
    pub action: u64,
}

impl std::fmt::Display for ActionRangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "action {:#x} does not fit in 48 bits", self.action)
    }
}

impl std::error::Error for ActionRangeError {}

/// Why a rule could not be installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleError {
    /// The action value does not fit in 48 bits.
    ActionRange(ActionRangeError),
    /// The tuple's table cannot place the masked key.
    Full(TableFullError),
}

impl std::fmt::Display for RuleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleError::ActionRange(e) => e.fmt(f),
            RuleError::Full(_) => write!(f, "tuple table full"),
        }
    }
}

impl std::error::Error for RuleError {}

impl From<ActionRangeError> for RuleError {
    fn from(e: ActionRangeError) -> Self {
        RuleError::ActionRange(e)
    }
}

impl From<TableFullError> for RuleError {
    fn from(e: TableFullError) -> Self {
        RuleError::Full(e)
    }
}

/// Encodes priority + action into a table value, reporting oversized
/// actions as a typed error instead of aborting the datapath.
///
/// # Errors
///
/// Returns [`ActionRangeError`] if `action` needs more than 48 bits.
pub fn try_encode_rule(priority: u16, action: u64) -> Result<u64, ActionRangeError> {
    if action >= (1 << 48) {
        return Err(ActionRangeError { action });
    }
    Ok((u64::from(priority) << 48) | action)
}

/// Encodes priority + action into a table value.
///
/// # Panics
///
/// Panics if `action` does not fit in 48 bits; fallible callers (rule
/// installation paths) should go through [`try_encode_rule`].
#[must_use]
pub fn encode_rule(priority: u16, action: u64) -> u64 {
    try_encode_rule(priority, action).unwrap_or_else(|e| panic!("{e}"))
}

/// Decodes a table value into `(priority, action)`.
#[must_use]
pub fn decode_rule(value: u64) -> (u16, u64) {
    ((value >> 48) as u16, value & ((1 << 48) - 1))
}

/// One wildcard tuple: a mask plus its rule table. Generic over the
/// table backend (defaulting to the DPDK-style [`CuckooTable`]) so
/// alternative exact-match designs slot in without touching the search
/// logic.
#[derive(Debug)]
pub struct Tuple<T: FlowTable = CuckooTable> {
    mask: WildcardMask,
    table: T,
}

impl<T: FlowTable> Tuple<T> {
    /// Builds a tuple from a mask and a pre-sized rule table.
    #[must_use]
    pub fn from_parts(mask: WildcardMask, table: T) -> Self {
        Tuple { mask, table }
    }

    /// The tuple's wildcard mask.
    #[must_use]
    pub fn mask(&self) -> &WildcardMask {
        &self.mask
    }

    /// The tuple's rule table.
    #[must_use]
    pub fn table(&self) -> &T {
        &self.table
    }

    /// The tuple's rule table, mutably (rule expiry and relocation).
    pub fn table_mut(&mut self) -> &mut T {
        &mut self.table
    }

    /// Number of rules installed in this tuple.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the tuple holds no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// A tuple space: an ordered list of wildcard tuples.
///
/// # Examples
///
/// ```
/// use halo_classify::{distinct_masks, PacketHeader, SearchMode, TupleSpace};
/// use halo_mem::SimMemory;
///
/// let mut mem = SimMemory::new();
/// let mut tss = TupleSpace::new(&mut mem, distinct_masks(2), 1024, SearchMode::FirstMatch);
/// let pkt = PacketHeader::synthetic(7);
/// tss.insert_rule(&mut mem, 1, &pkt.miniflow(), 5, 0xAA).unwrap();
/// let hit = tss.classify(&mut mem, &pkt.miniflow()).unwrap();
/// assert_eq!(hit.tuple, 1);
/// assert_eq!(hit.action, 0xAA);
/// ```
#[derive(Debug)]
pub struct TupleSpace<T: FlowTable = CuckooTable> {
    tuples: Vec<Tuple<T>>,
    mode: SearchMode,
}

impl TupleSpace {
    /// Creates a cuckoo-backed tuple space with one tuple per mask, each
    /// sized for `entries_per_tuple` rules.
    pub fn new(
        mem: &mut SimMemory,
        masks: Vec<WildcardMask>,
        entries_per_tuple: usize,
        mode: SearchMode,
    ) -> Self {
        let tuples = masks
            .into_iter()
            .map(|mask| Tuple {
                mask,
                table: CuckooTable::with_capacity_for(
                    mem,
                    entries_per_tuple,
                    0.85,
                    crate::packet::MINIFLOW_LEN,
                ),
            })
            .collect();
        TupleSpace { tuples, mode }
    }
}

impl<T: FlowTable> TupleSpace<T> {
    /// Assembles a tuple space from pre-built tuples (any [`FlowTable`]
    /// backend), searched in the given order.
    #[must_use]
    pub fn from_tuples(tuples: Vec<Tuple<T>>, mode: SearchMode) -> Self {
        TupleSpace { tuples, mode }
    }

    /// The tuples, in search order.
    #[must_use]
    pub fn tuples(&self) -> &[Tuple<T>] {
        &self.tuples
    }

    /// Search semantics.
    #[must_use]
    pub fn mode(&self) -> SearchMode {
        self.mode
    }

    /// Total rules across tuples.
    #[must_use]
    pub fn total_rules(&self) -> usize {
        self.tuples.iter().map(Tuple::len).sum()
    }

    /// Appends a pre-built tuple to the search order, returning its
    /// index. This is how range-capable frontends grow the space one
    /// tuple per newly-seen mask, the way OVS creates a MegaFlow tuple
    /// on first use of a wildcard pattern.
    pub fn push_tuple(&mut self, tuple: Tuple<T>) -> usize {
        self.tuples.push(tuple);
        self.tuples.len() - 1
    }

    /// Index of the tuple carrying exactly `mask`, if one exists.
    #[must_use]
    pub fn tuple_with_mask(&self, mask: &WildcardMask) -> Option<usize> {
        self.tuples.iter().position(|t| t.mask() == mask)
    }

    /// Installs a rule in tuple `tuple_idx`: the rule matches any key
    /// whose masked bytes equal `key & mask`. If a rule for the same
    /// masked key already exists it is overwritten **and reported**:
    /// the replaced rule's `(priority, action)` comes back as
    /// `Ok(Some(..))`, so churn accounting and differential oracles
    /// observe the replacement instead of silently losing a rule.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError::ActionRange`] if `action` needs more than
    /// 48 bits, [`RuleError::Full`] if the tuple's table is full. The
    /// space is unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics if `tuple_idx` is out of range.
    pub fn insert_rule(
        &mut self,
        mem: &mut SimMemory,
        tuple_idx: usize,
        key: &FlowKey,
        priority: u16,
        action: u64,
    ) -> Result<Option<(u16, u64)>, RuleError> {
        let value = try_encode_rule(priority, action)?;
        let tuple = &mut self.tuples[tuple_idx];
        let masked = tuple.mask.apply(key);
        let replaced = tuple.table.lookup(mem, &masked).map(decode_rule);
        tuple.table.insert(mem, &masked, value)?;
        Ok(replaced)
    }

    /// Removes the rule matching `key & mask` from tuple `tuple_idx`
    /// (flow expiry under churn). Returns the removed rule's
    /// `(priority, action)`, or `None` if no such rule was installed.
    ///
    /// # Panics
    ///
    /// Panics if `tuple_idx` is out of range.
    pub fn remove_rule(
        &mut self,
        mem: &mut SimMemory,
        tuple_idx: usize,
        key: &FlowKey,
    ) -> Option<(u16, u64)> {
        let tuple = &mut self.tuples[tuple_idx];
        let masked = tuple.mask.apply(key);
        tuple.table.remove(mem, &masked).map(decode_rule)
    }

    /// Functional classification.
    #[must_use]
    pub fn classify(&self, mem: &SimMemory, key: &FlowKey) -> Option<RuleMatch> {
        self.classify_traced(mem, key, false).0
    }

    /// Classification returning both the result and the per-tuple lookup
    /// traces actually performed (in probe order). Under
    /// [`SearchMode::FirstMatch`] probing stops at the first hit; under
    /// [`SearchMode::HighestPriority`] every tuple is probed.
    #[must_use]
    pub fn classify_traced(
        &self,
        mem: &SimMemory,
        key: &FlowKey,
        software_locking: bool,
    ) -> (Option<RuleMatch>, Vec<(usize, LookupTrace)>) {
        let mut probes = Vec::with_capacity(self.tuples.len());
        let mut best: Option<RuleMatch> = None;
        for (i, tuple) in self.tuples.iter().enumerate() {
            let masked = tuple.mask.apply(key);
            let tr = tuple.table.lookup_traced(mem, &masked, software_locking);
            let result = tr.result;
            probes.push((i, tr));
            if let Some(v) = result {
                let (priority, action) = decode_rule(v);
                let m = RuleMatch {
                    tuple: i,
                    priority,
                    action,
                };
                match self.mode {
                    SearchMode::FirstMatch => return (Some(m), probes),
                    SearchMode::HighestPriority => {
                        // Explicit deterministic tie-break: (priority
                        // desc, tuple index asc), not probe order.
                        if best.is_none_or(|b| m.beats(&b)) {
                            best = Some(m);
                        }
                    }
                }
            }
        }
        (best, probes)
    }

    /// Reference classification by linear scan over every tuple (no hash
    /// tables): the oracle for property tests.
    #[must_use]
    pub fn classify_linear(&self, mem: &SimMemory, key: &FlowKey) -> Option<RuleMatch> {
        let mut best: Option<RuleMatch> = None;
        for (i, tuple) in self.tuples.iter().enumerate() {
            let masked = tuple.mask.apply(key);
            if let Some(v) = tuple.table.lookup(mem, &masked) {
                let (priority, action) = decode_rule(v);
                let m = RuleMatch {
                    tuple: i,
                    priority,
                    action,
                };
                match self.mode {
                    SearchMode::FirstMatch => return Some(m),
                    SearchMode::HighestPriority => {
                        // Same explicit tie-break as the hashed search.
                        if best.is_none_or(|b| m.beats(&b)) {
                            best = Some(m);
                        }
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::distinct_masks;
    use crate::packet::PacketHeader;

    fn key(id: u64) -> FlowKey {
        PacketHeader::synthetic(id).miniflow()
    }

    #[test]
    fn rule_encoding_roundtrip() {
        for (p, a) in [(0u16, 0u64), (9, 0xABCD), (u16::MAX, (1 << 48) - 1)] {
            assert_eq!(decode_rule(encode_rule(p, a)), (p, a));
        }
    }

    #[test]
    fn first_match_returns_earliest_tuple() {
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(&mut mem, distinct_masks(3), 256, SearchMode::FirstMatch);
        let k = key(7);
        // Install the same flow in tuples 1 and 2.
        tss.insert_rule(&mut mem, 1, &k, 1, 100).unwrap();
        tss.insert_rule(&mut mem, 2, &k, 9, 200).unwrap();
        let m = tss.classify(&mem, &k).unwrap();
        assert_eq!(m.tuple, 1, "MegaFlow stops at the first match");
        assert_eq!(m.action, 100);
    }

    #[test]
    fn highest_priority_searches_all() {
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(
            &mut mem,
            distinct_masks(3),
            256,
            SearchMode::HighestPriority,
        );
        let k = key(7);
        tss.insert_rule(&mut mem, 1, &k, 1, 100).unwrap();
        tss.insert_rule(&mut mem, 2, &k, 9, 200).unwrap();
        let m = tss.classify(&mem, &k).unwrap();
        assert_eq!(m.tuple, 2, "OpenFlow picks the highest priority");
        assert_eq!(m.action, 200);
    }

    #[test]
    fn wildcard_rule_catches_many_flows() {
        let mut mem = SimMemory::new();
        let masks = vec![WildcardMask::exact().any_src_port().any_dst_port()];
        let mut tss = TupleSpace::new(&mut mem, masks, 256, SearchMode::FirstMatch);
        let base = PacketHeader::synthetic(3);
        tss.insert_rule(&mut mem, 0, &base.miniflow(), 0, 42)
            .unwrap();
        // Same 5-tuple except ports: still matches.
        let mut other = base;
        other.src_port = base.src_port.wrapping_add(100);
        other.dst_port = base.dst_port.wrapping_add(100);
        let m = tss.classify(&mem, &other.miniflow()).unwrap();
        assert_eq!(m.action, 42);
    }

    #[test]
    fn miss_probes_every_tuple() {
        let mut mem = SimMemory::new();
        let tss = TupleSpace::new(&mut mem, distinct_masks(5), 256, SearchMode::FirstMatch);
        let (m, probes) = tss.classify_traced(&mem, &key(1), false);
        assert!(m.is_none());
        assert_eq!(probes.len(), 5);
    }

    #[test]
    fn first_match_stops_probing_early() {
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(&mut mem, distinct_masks(5), 256, SearchMode::FirstMatch);
        let k = key(7);
        tss.insert_rule(&mut mem, 0, &k, 0, 1).unwrap();
        let (_, probes) = tss.classify_traced(&mem, &k, false);
        assert_eq!(probes.len(), 1);
    }

    #[test]
    fn linear_scan_agrees_with_hashed_search() {
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(
            &mut mem,
            distinct_masks(8),
            512,
            SearchMode::HighestPriority,
        );
        for id in 0..200u64 {
            let tuple = (id % 8) as usize;
            tss.insert_rule(&mut mem, tuple, &key(id), (id % 16) as u16, id)
                .unwrap();
        }
        for id in 0..300u64 {
            let k = key(id);
            assert_eq!(
                tss.classify(&mem, &k),
                tss.classify_linear(&mem, &k),
                "divergence at id {id}"
            );
        }
    }

    #[test]
    fn remove_rule_roundtrips_and_misses_cleanly() {
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(&mut mem, distinct_masks(3), 256, SearchMode::FirstMatch);
        let k = key(7);
        tss.insert_rule(&mut mem, 1, &k, 5, 100).unwrap();
        assert_eq!(tss.total_rules(), 1);
        assert_eq!(tss.remove_rule(&mut mem, 1, &k), Some((5, 100)));
        assert_eq!(tss.total_rules(), 0);
        assert!(tss.classify(&mem, &k).is_none(), "expired rule hit");
        assert_eq!(tss.remove_rule(&mut mem, 1, &k), None, "double expiry");
        // Removal is per-tuple: the same key in another tuple survives.
        tss.insert_rule(&mut mem, 0, &k, 1, 11).unwrap();
        tss.insert_rule(&mut mem, 2, &k, 2, 22).unwrap();
        assert_eq!(tss.remove_rule(&mut mem, 0, &k), Some((1, 11)));
        assert_eq!(tss.classify(&mem, &k).unwrap().action, 22);
    }

    /// The tuple space is generic over its table backend: the SFH
    /// baseline drops into the MegaFlow slot and classifies identically
    /// to the cuckoo default on the same rule set.
    #[test]
    fn sfh_backend_classifies_like_cuckoo() {
        use halo_tables::SfhTable;
        let mut mem = SimMemory::new();
        let mut cuckoo = TupleSpace::new(&mut mem, distinct_masks(3), 256, SearchMode::FirstMatch);
        let tuples = distinct_masks(3)
            .into_iter()
            .map(|mask| {
                Tuple::from_parts(
                    mask,
                    SfhTable::with_capacity_for(&mut mem, 256, crate::packet::MINIFLOW_LEN),
                )
            })
            .collect();
        let mut sfh: TupleSpace<SfhTable> = TupleSpace::from_tuples(tuples, SearchMode::FirstMatch);
        for id in 0..60u64 {
            let tuple = (id % 3) as usize;
            cuckoo
                .insert_rule(&mut mem, tuple, &key(id), 0, id)
                .unwrap();
            sfh.insert_rule(&mut mem, tuple, &key(id), 0, id).unwrap();
        }
        for id in 0..90u64 {
            assert_eq!(
                cuckoo.classify(&mem, &key(id)),
                sfh.classify(&mem, &key(id)),
                "backends diverged at id {id}"
            );
        }
    }

    /// Re-inserting a rule whose masked key collides with an installed
    /// rule overwrites it — and the replacement is *reported*, not
    /// swallowed: churn accounting must see the evicted rule.
    #[test]
    fn insert_reports_masked_key_replacement() {
        let mut mem = SimMemory::new();
        let masks = vec![WildcardMask::exact().any_src_port()];
        let mut tss = TupleSpace::new(&mut mem, masks, 256, SearchMode::FirstMatch);
        let base = PacketHeader::synthetic(11);
        let mut other = base;
        other.src_port = base.src_port.wrapping_add(77);
        // Fresh insert: nothing replaced.
        assert_eq!(
            tss.insert_rule(&mut mem, 0, &base.miniflow(), 4, 100)
                .unwrap(),
            None
        );
        // Distinct header, same masked key: in-place overwrite, and the
        // old (priority, action) comes back.
        assert_eq!(
            tss.insert_rule(&mut mem, 0, &other.miniflow(), 9, 200)
                .unwrap(),
            Some((4, 100))
        );
        assert_eq!(tss.total_rules(), 1, "replacement must not grow the space");
        assert_eq!(tss.classify(&mem, &base.miniflow()).unwrap().action, 200);
    }

    /// A churn-style insert/remove/re-insert cycle over one masked key:
    /// every transition's return value reflects what was really there.
    #[test]
    fn replacement_is_observable_under_churn() {
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(&mut mem, distinct_masks(2), 256, SearchMode::FirstMatch);
        let k = key(3);
        for round in 0..5u64 {
            let expect_prev = if round == 0 {
                None
            } else {
                Some(((round - 1) as u16, round - 1))
            };
            assert_eq!(
                tss.insert_rule(&mut mem, 1, &k, round as u16, round)
                    .unwrap(),
                expect_prev,
                "round {round}"
            );
        }
        assert_eq!(tss.remove_rule(&mut mem, 1, &k), Some((4, 4)));
        assert_eq!(tss.insert_rule(&mut mem, 1, &k, 0, 9).unwrap(), None);
    }

    /// Equal-priority rules resolve to the lowest tuple index — pinned
    /// so a backend probing in another order cannot legally differ.
    #[test]
    fn equal_priority_tie_breaks_to_lowest_tuple() {
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(
            &mut mem,
            distinct_masks(4),
            256,
            SearchMode::HighestPriority,
        );
        let k = key(7);
        // Insert in descending tuple order so insertion order cannot
        // accidentally produce the right answer.
        tss.insert_rule(&mut mem, 3, &k, 5, 300).unwrap();
        tss.insert_rule(&mut mem, 1, &k, 5, 100).unwrap();
        tss.insert_rule(&mut mem, 2, &k, 5, 200).unwrap();
        let m = tss.classify(&mem, &k).unwrap();
        assert_eq!((m.tuple, m.action), (1, 100), "lowest tuple wins ties");
        assert_eq!(tss.classify_linear(&mem, &k), Some(m), "oracle agrees");
        // And a strictly higher priority still beats a lower tuple.
        tss.insert_rule(&mut mem, 2, &k, 6, 999).unwrap();
        assert_eq!(tss.classify(&mem, &k).unwrap().action, 999);
    }

    /// `RuleMatch::beats` is exactly (priority desc, tuple asc).
    #[test]
    fn beats_orders_by_priority_then_tuple() {
        let m = |tuple, priority| RuleMatch {
            tuple,
            priority,
            action: 0,
        };
        assert!(m(5, 9).beats(&m(0, 8)));
        assert!(!m(0, 8).beats(&m(5, 9)));
        assert!(m(1, 7).beats(&m(2, 7)));
        assert!(!m(2, 7).beats(&m(1, 7)));
        assert!(!m(2, 7).beats(&m(2, 7)), "a match never beats itself");
    }

    /// Oversized actions surface as a typed error through `insert_rule`
    /// instead of aborting, and the boundary values behave.
    #[test]
    fn action_range_is_a_typed_error() {
        assert_eq!(
            try_encode_rule(1, (1 << 48) - 1),
            Ok((1 << 48) | ((1 << 48) - 1))
        );
        assert_eq!(
            try_encode_rule(1, 1 << 48),
            Err(ActionRangeError { action: 1 << 48 })
        );
        assert_eq!(
            try_encode_rule(0, u64::MAX),
            Err(ActionRangeError { action: u64::MAX })
        );
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(&mut mem, distinct_masks(2), 256, SearchMode::FirstMatch);
        let k = key(1);
        assert_eq!(
            tss.insert_rule(&mut mem, 0, &k, 1, 1 << 48),
            Err(RuleError::ActionRange(ActionRangeError { action: 1 << 48 }))
        );
        assert_eq!(tss.total_rules(), 0, "failed insert must not install");
        tss.insert_rule(&mut mem, 0, &k, 1, (1 << 48) - 1).unwrap();
        assert_eq!(tss.classify(&mem, &k).unwrap().action, (1 << 48) - 1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn infallible_encode_still_panics() {
        let _ = encode_rule(0, 1 << 48);
    }

    #[test]
    fn push_tuple_extends_search_order() {
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(&mut mem, distinct_masks(2), 64, SearchMode::HighestPriority);
        let mask = WildcardMask::exact().any_proto();
        assert_eq!(tss.tuple_with_mask(&mask), None);
        let table = CuckooTable::with_capacity_for(&mut mem, 64, 0.85, crate::packet::MINIFLOW_LEN);
        let idx = tss.push_tuple(Tuple::from_parts(mask.clone(), table));
        assert_eq!(idx, 2);
        assert_eq!(tss.tuple_with_mask(&mask), Some(idx));
        let k = key(9);
        tss.insert_rule(&mut mem, idx, &k, 3, 33).unwrap();
        assert_eq!(tss.classify(&mem, &k).unwrap().tuple, idx);
    }

    #[test]
    fn total_rules_counts_across_tuples() {
        let mut mem = SimMemory::new();
        let mut tss = TupleSpace::new(&mut mem, distinct_masks(4), 256, SearchMode::FirstMatch);
        for id in 0..40u64 {
            tss.insert_rule(&mut mem, (id % 4) as usize, &key(id), 0, id)
                .unwrap();
        }
        // Wildcard masks can merge distinct flows into one rule, so the
        // total is at most 40 but must be positive.
        let total = tss.total_rules();
        assert!(total > 0 && total <= 40);
        assert!(!tss.tuples().is_empty());
    }
}
