//! Range-vector hashing: hash-probe wildcard classification that stays
//! cheap on range-heavy rulesets (after RVH, arXiv:1909.07159).
//!
//! Tuple space search needs one hash probe *per distinct mask*, and a
//! range rule expands into many masks (`RangeRule::tss_expansion`), so
//! ACL-style rulesets degrade to dozens of probes per packet. RVH
//! instead partitions the miniflow fields into a small fixed set of
//! *vectors*. A rule is anchored at the first vector whose fields it
//! pins exactly; the anchored fields hash into that vector's *marker
//! table* (an ordinary cuckoo table mapping vector-key → candidate
//! list), and the rule's remaining fields are range-checked only for
//! the few candidates the marker yields. A classification therefore
//! probes exactly [`RVH_VECTORS`] marker buckets — independent of how
//! many masks or ranges the ruleset uses — plus one key-value line per
//! surviving candidate.
//!
//! Rules that pin no vector exactly (ranges on every field group) fall
//! into the final *residual* vector, whose marker key is empty: its
//! candidate list is scanned linearly, preserving correctness at the
//! cost of that list's length. Real ACLs pin at least the protocol
//! byte, so the residual stays short.
//!
//! Matches are resolved on (priority desc, insertion-sequence asc), the
//! same deterministic contract the tuple space pins, so differential
//! drivers can compare backends on rulesets with unique priorities.

use crate::mask::WildcardMask;
use crate::packet::MINIFLOW_LEN;
use crate::range::{FieldRange, RangeRule, FIELDS, NUM_FIELDS};
use crate::tss::{try_encode_rule, RuleError, RuleMatch};
use halo_mem::{Addr, SimMemory, CACHE_LINE};
use halo_tables::{CuckooTable, FlowKey, LookupTrace, TraceStep};

/// Number of hash vectors (probes per classification).
pub const RVH_VECTORS: usize = 4;

/// Field groups per vector, indexed into [`FIELDS`]. The last group is
/// empty: the residual vector for rules exact in no complete group.
const VECTOR_FIELDS: [&[usize]; RVH_VECTORS] = [
    &[0, 1],    // src_ip, dst_ip
    &[2, 3],    // src_port, dst_port
    &[4, 5, 6], // proto, in_port, vlan
    &[],        // residual
];

/// A rule slot: the rule plus its insertion sequence (tie-break key).
#[derive(Debug, Clone, Copy)]
struct StoredRule {
    rule: RangeRule,
    seq: u64,
}

/// One hash vector: the byte mask selecting its fields, the marker
/// table, and the candidate lists markers point into.
#[derive(Debug)]
struct RvhVector {
    fields: &'static [usize],
    mask: WildcardMask,
    table: CuckooTable,
    /// `lists[marker_value]` = indices into `RvhTable::rules`.
    lists: Vec<Vec<usize>>,
    free_lists: Vec<usize>,
}

impl RvhVector {
    fn new(mem: &mut SimMemory, fields: &'static [usize], rule_capacity: usize) -> Self {
        let mut bytes = [0u8; 16];
        for &fi in fields {
            let f = FIELDS[fi];
            for b in &mut bytes[f.offset..f.offset + f.width] {
                *b = 0xFF;
            }
        }
        RvhVector {
            fields,
            mask: WildcardMask::from_bytes(&bytes),
            table: CuckooTable::with_capacity_for(mem, rule_capacity.max(8), 0.85, MINIFLOW_LEN),
            lists: Vec::new(),
            free_lists: Vec::new(),
        }
    }

    /// The marker key for `ranges` anchored here: each group field's
    /// exact value written into a zeroed miniflow.
    fn marker_key(&self, ranges: &[FieldRange; NUM_FIELDS]) -> FlowKey {
        let mut bytes = [0u8; MINIFLOW_LEN];
        for &fi in self.fields {
            FIELDS[fi].write(&mut bytes, ranges[fi].lo);
        }
        FlowKey::from_bytes(&bytes)
    }

    /// Whether a rule with these ranges can anchor here: every group
    /// field pinned to a single value. Vacuously true for the residual.
    fn anchors(&self, ranges: &[FieldRange; NUM_FIELDS]) -> bool {
        self.fields.iter().all(|&fi| ranges[fi].is_exact())
    }
}

/// A range-vector-hash wildcard table over simulated memory.
///
/// # Examples
///
/// ```
/// use halo_classify::{FieldRange, PacketHeader, RangeRule, RvhTable};
/// use halo_mem::SimMemory;
///
/// let mut mem = SimMemory::new();
/// let mut rvh = RvhTable::with_capacity(&mut mem, 1024);
/// let pkt = PacketHeader::synthetic(7);
/// let mut rule = RangeRule::exact_flow(&pkt.miniflow(), 5, 99);
/// rule.ranges[3] = FieldRange::span(0, 65_535); // any dst_port
/// rvh.insert(&mut mem, &rule).unwrap();
/// assert_eq!(rvh.classify(&mem, &pkt.miniflow()).unwrap().action, 99);
/// ```
#[derive(Debug)]
pub struct RvhTable {
    vectors: [RvhVector; RVH_VECTORS],
    rules: Vec<Option<StoredRule>>,
    free_rules: Vec<usize>,
    /// One simulated cache line per rule slot: the candidate's stored
    /// ranges, fetched before the range comparison.
    rule_lines: Vec<Addr>,
    next_seq: u64,
    live: usize,
}

impl RvhTable {
    /// Builds an RVH table whose marker tables are sized for
    /// `rule_capacity` rules each.
    #[must_use]
    pub fn with_capacity(mem: &mut SimMemory, rule_capacity: usize) -> Self {
        RvhTable {
            vectors: VECTOR_FIELDS.map(|fields| RvhVector::new(mem, fields, rule_capacity)),
            rules: Vec::new(),
            free_rules: Vec::new(),
            rule_lines: Vec::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Number of installed rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no rules are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Marker probes per classification (constant: one per vector).
    #[must_use]
    pub fn probes(&self) -> usize {
        RVH_VECTORS
    }

    /// The vector index a rule with these ranges anchors at.
    fn anchor(&self, ranges: &[FieldRange; NUM_FIELDS]) -> usize {
        self.vectors
            .iter()
            .position(|v| v.anchors(ranges))
            .expect("residual vector anchors everything")
    }

    /// The slot index of the rule with exactly these ranges, if any.
    fn find(&self, ranges: &[FieldRange; NUM_FIELDS]) -> Option<usize> {
        self.rules
            .iter()
            .position(|s| s.is_some_and(|s| s.rule.ranges == *ranges))
    }

    /// Installs `rule`, returning the `(priority, action)` of the rule
    /// with identical ranges it replaced, if any. Replacement keeps the
    /// incumbent's insertion sequence, mirroring in-place update in the
    /// tuple space.
    ///
    /// # Errors
    ///
    /// [`RuleError::ActionRange`] if the action exceeds 48 bits (the
    /// table is unchanged); [`RuleError::Full`] if the anchor vector's
    /// marker table cannot place the rule's vector key.
    pub fn insert(
        &mut self,
        mem: &mut SimMemory,
        rule: &RangeRule,
    ) -> Result<Option<(u16, u64)>, RuleError> {
        // Same 48-bit action domain as the tuple space encoders.
        let _ = try_encode_rule(rule.priority, rule.action)?;
        if let Some(slot) = self.find(&rule.ranges) {
            let old = self.rules[slot].as_mut().expect("found slot is live");
            let replaced = (old.rule.priority, old.rule.action);
            old.rule = *rule;
            return Ok(Some(replaced));
        }
        let vec_idx = self.anchor(&rule.ranges);
        let marker = self.vectors[vec_idx].marker_key(&rule.ranges);
        // Resolve (or create) the candidate list before touching the
        // rule store, so a full marker table leaves us unchanged.
        let list_id = match self.vectors[vec_idx].table.lookup(mem, &marker) {
            Some(id) => id as usize,
            None => {
                let v = &mut self.vectors[vec_idx];
                let id = v.free_lists.pop().unwrap_or_else(|| {
                    v.lists.push(Vec::new());
                    v.lists.len() - 1
                });
                if let Err(e) = v.table.insert(mem, &marker, id as u64) {
                    if v.lists[id].is_empty() {
                        v.free_lists.push(id);
                    }
                    return Err(RuleError::Full(e));
                }
                id
            }
        };
        let slot = self.free_rules.pop().unwrap_or_else(|| {
            self.rules.push(None);
            self.rule_lines.push(mem.alloc_lines(CACHE_LINE));
            self.rules.len() - 1
        });
        let seq = self.next_seq;
        self.next_seq += 1;
        self.rules[slot] = Some(StoredRule { rule: *rule, seq });
        self.vectors[vec_idx].lists[list_id].push(slot);
        self.live += 1;
        Ok(None)
    }

    /// Removes the rule with exactly these ranges, returning its
    /// `(priority, action)` if it was installed.
    pub fn remove(
        &mut self,
        mem: &mut SimMemory,
        ranges: &[FieldRange; NUM_FIELDS],
    ) -> Option<(u16, u64)> {
        let slot = self.find(ranges)?;
        let stored = self.rules[slot].take().expect("found slot is live");
        let vec_idx = self.anchor(ranges);
        let marker = self.vectors[vec_idx].marker_key(ranges);
        let v = &mut self.vectors[vec_idx];
        let list_id = v.table.lookup(mem, &marker).expect("marker for live rule") as usize;
        v.lists[list_id].retain(|&s| s != slot);
        if v.lists[list_id].is_empty() {
            v.table.remove(mem, &marker);
            v.free_lists.push(list_id);
        }
        self.free_rules.push(slot);
        self.live -= 1;
        Some((stored.rule.priority, stored.rule.action))
    }

    /// Functional classification (no trace).
    #[must_use]
    pub fn classify(&self, mem: &SimMemory, key: &FlowKey) -> Option<RuleMatch> {
        self.classify_traced(mem, key, false).0
    }

    /// Classification with per-probe [`LookupTrace`]s: one marker-table
    /// probe per vector, each extended with a [`TraceStep::LoadKv`] +
    /// [`TraceStep::CompareKey`] per candidate rule range-checked.
    /// Winner on (priority desc, insertion seq asc); the returned
    /// [`RuleMatch::tuple`] is the winning *vector* (probe slot) index.
    #[must_use]
    pub fn classify_traced(
        &self,
        mem: &SimMemory,
        key: &FlowKey,
        software_locking: bool,
    ) -> (Option<RuleMatch>, Vec<(usize, LookupTrace)>) {
        let mut probes = Vec::with_capacity(RVH_VECTORS);
        let mut best: Option<(RuleMatch, u64)> = None;
        for (vi, v) in self.vectors.iter().enumerate() {
            let masked = v.mask.apply(key);
            let mut trace = v.table.lookup_traced(mem, &masked, software_locking);
            if let Some(list_id) = trace.result {
                for &slot in &v.lists[list_id as usize] {
                    // Candidate fetch + range comparison, priced like a
                    // kv-line visit in the exact tables.
                    trace.steps.push(TraceStep::LoadKv(self.rule_lines[slot]));
                    trace.steps.push(TraceStep::CompareKey);
                    let stored = self.rules[slot].expect("listed slot is live");
                    if !stored.rule.matches(key) {
                        continue;
                    }
                    let better = best.as_ref().is_none_or(|(b, bseq)| {
                        stored.rule.priority > b.priority
                            || (stored.rule.priority == b.priority && stored.seq < *bseq)
                    });
                    if better {
                        best = Some((
                            RuleMatch {
                                tuple: vi,
                                priority: stored.rule.priority,
                                action: stored.rule.action,
                            },
                            stored.seq,
                        ));
                    }
                }
            }
            // The marker value is internal; the probe's functional
            // result is whether this vector produced the current best.
            trace.result = None;
            probes.push((vi, trace));
        }
        if let Some((m, _)) = &best {
            let encoded = (u64::from(m.priority) << 48) | m.action;
            probes[m.tuple].1.result = Some(encoded);
        }
        (best.map(|(m, _)| m), probes)
    }

    /// Metadata-line address of vector `probe`'s marker table.
    #[must_use]
    pub fn probe_meta_addr(&self, probe: usize) -> Option<Addr> {
        self.vectors.get(probe).map(|v| v.table.meta_addr())
    }

    /// Version-counter address of vector `probe`'s marker table.
    #[must_use]
    pub fn probe_version_addr(&self, probe: usize) -> Option<Addr> {
        self.vectors.get(probe).map(|v| v.table.version_addr())
    }

    /// Every simulated-memory line the table occupies: marker tables
    /// plus the live rule lines (footprint accounting / LLC warming).
    #[must_use]
    pub fn memory_lines(&self) -> Vec<Addr> {
        let mut lines: Vec<Addr> = self
            .vectors
            .iter()
            .flat_map(|v| v.table.all_lines().collect::<Vec<_>>())
            .collect();
        for (slot, r) in self.rules.iter().enumerate() {
            if r.is_some() {
                lines.push(self.rule_lines[slot]);
            }
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketHeader;

    fn port_range_rule(id: u64, lo: u64, hi: u64, priority: u16, action: u64) -> RangeRule {
        let mut rule =
            RangeRule::exact_flow(&PacketHeader::synthetic(id).miniflow(), priority, action);
        rule.ranges[3] = FieldRange::span(lo, hi);
        rule
    }

    #[test]
    fn exact_rules_round_trip() {
        let mut mem = SimMemory::new();
        let mut rvh = RvhTable::with_capacity(&mut mem, 256);
        for id in 0..100u64 {
            let key = PacketHeader::synthetic(id).miniflow();
            let rule = RangeRule::exact_flow(&key, id as u16, id);
            assert_eq!(rvh.insert(&mut mem, &rule).unwrap(), None);
        }
        assert_eq!(rvh.len(), 100);
        for id in 0..100u64 {
            let key = PacketHeader::synthetic(id).miniflow();
            let m = rvh.classify(&mem, &key).unwrap();
            assert_eq!((m.priority, m.action), (id as u16, id));
        }
        assert_eq!(
            rvh.classify(&mem, &PacketHeader::synthetic(500).miniflow()),
            None
        );
    }

    #[test]
    fn range_rules_match_their_interval() {
        let mut mem = SimMemory::new();
        let mut rvh = RvhTable::with_capacity(&mut mem, 64);
        let rule = port_range_rule(3, 1_000, 1_999, 7, 42);
        rvh.insert(&mut mem, &rule).unwrap();
        for (dport, hit) in [
            (999u64, false),
            (1_000, true),
            (1_500, true),
            (1_999, true),
            (2_000, false),
        ] {
            let mut bytes = [0u8; MINIFLOW_LEN];
            bytes.copy_from_slice(rule.point_key().as_bytes());
            FIELDS[3].write(&mut bytes, dport);
            let key = FlowKey::from_bytes(&bytes);
            assert_eq!(rvh.classify(&mem, &key).is_some(), hit, "dport {dport}");
        }
    }

    #[test]
    fn replacement_and_removal_are_observable() {
        let mut mem = SimMemory::new();
        let mut rvh = RvhTable::with_capacity(&mut mem, 64);
        let rule = port_range_rule(9, 80, 443, 3, 30);
        assert_eq!(rvh.insert(&mut mem, &rule).unwrap(), None);
        let mut update = rule;
        update.priority = 5;
        update.action = 50;
        assert_eq!(rvh.insert(&mut mem, &update).unwrap(), Some((3, 30)));
        assert_eq!(rvh.len(), 1);
        assert_eq!(rvh.remove(&mut mem, &rule.ranges), Some((5, 50)));
        assert_eq!(rvh.remove(&mut mem, &rule.ranges), None);
        assert!(rvh.is_empty());
        assert_eq!(rvh.classify(&mem, &rule.point_key()), None);
    }

    #[test]
    fn priority_then_sequence_breaks_ties() {
        let mut mem = SimMemory::new();
        let mut rvh = RvhTable::with_capacity(&mut mem, 64);
        // Two overlapping rules with equal priority: first inserted
        // wins. A third with higher priority beats both.
        let wide = port_range_rule(4, 0, 65_535, 2, 100);
        let mut narrow = wide;
        narrow.ranges[3] = FieldRange::span(0, 1_023);
        narrow.action = 200;
        rvh.insert(&mut mem, &wide).unwrap();
        rvh.insert(&mut mem, &narrow).unwrap();
        let mut key_bytes = [0u8; MINIFLOW_LEN];
        key_bytes.copy_from_slice(wide.point_key().as_bytes());
        FIELDS[3].write(&mut key_bytes, 500);
        let key = FlowKey::from_bytes(&key_bytes);
        assert_eq!(
            rvh.classify(&mem, &key).unwrap().action,
            100,
            "first in wins tie"
        );
        let mut high = narrow;
        high.ranges[3] = FieldRange::span(400, 600);
        high.priority = 9;
        high.action = 300;
        rvh.insert(&mut mem, &high).unwrap();
        assert_eq!(rvh.classify(&mem, &key).unwrap().action, 300);
    }

    #[test]
    fn residual_vector_catches_all_range_rules() {
        let mut mem = SimMemory::new();
        let mut rvh = RvhTable::with_capacity(&mut mem, 64);
        // Ranges on every field group: anchors nowhere but the residual.
        let mut rule = RangeRule::exact_flow(&PacketHeader::synthetic(1).miniflow(), 1, 11);
        rule.ranges[0] = FieldRange::span(0, u64::from(u32::MAX));
        rule.ranges[3] = FieldRange::span(0, 100);
        rule.ranges[4] = FieldRange::span(0, 255);
        assert_eq!(rvh.anchor(&rule.ranges), RVH_VECTORS - 1);
        rvh.insert(&mut mem, &rule).unwrap();
        let mut bytes = [0u8; MINIFLOW_LEN];
        bytes.copy_from_slice(rule.point_key().as_bytes());
        FIELDS[0].write(&mut bytes, 0xDEAD_BEEF);
        FIELDS[4].write(&mut bytes, 6);
        let key = FlowKey::from_bytes(&bytes);
        assert_eq!(rvh.classify(&mem, &key).unwrap().action, 11);
    }

    #[test]
    fn probe_count_is_constant() {
        let mut mem = SimMemory::new();
        let mut rvh = RvhTable::with_capacity(&mut mem, 256);
        for id in 0..50 {
            rvh.insert(&mut mem, &port_range_rule(id, 0, 1_000 + id, id as u16, id))
                .unwrap();
        }
        let key = PacketHeader::synthetic(3).miniflow();
        let (_, probes) = rvh.classify_traced(&mem, &key, false);
        assert_eq!(probes.len(), RVH_VECTORS);
        assert_eq!(rvh.probes(), RVH_VECTORS);
        for (i, (vi, _)) in probes.iter().enumerate() {
            assert_eq!(*vi, i);
        }
    }

    #[test]
    fn oversized_action_is_rejected_unchanged() {
        let mut mem = SimMemory::new();
        let mut rvh = RvhTable::with_capacity(&mut mem, 64);
        let mut rule = port_range_rule(2, 0, 10, 1, 1 << 48);
        assert!(matches!(
            rvh.insert(&mut mem, &rule),
            Err(RuleError::ActionRange(_))
        ));
        assert!(rvh.is_empty());
        rule.action = (1 << 48) - 1;
        rvh.insert(&mut mem, &rule).unwrap();
        assert_eq!(rvh.len(), 1);
    }

    #[test]
    fn traced_candidates_touch_rule_lines() {
        let mut mem = SimMemory::new();
        let mut rvh = RvhTable::with_capacity(&mut mem, 64);
        let rule = port_range_rule(6, 0, 9_999, 4, 44);
        rvh.insert(&mut mem, &rule).unwrap();
        let (m, probes) = rvh.classify_traced(&mem, &rule.point_key(), false);
        assert_eq!(m.unwrap().action, 44);
        let kv_loads: usize = probes
            .iter()
            .flat_map(|(_, t)| &t.steps)
            .filter(|s| matches!(s, TraceStep::LoadKv(_)))
            .count();
        assert!(kv_loads >= 1, "candidate fetch must be priced");
        assert!(!rvh.memory_lines().is_empty());
    }
}
