//! Wildcard masks over miniflow keys.
//!
//! A MegaFlow tuple groups rules that share a wildcarding pattern; the
//! pattern is a byte-wise AND mask applied to the miniflow before the
//! exact-match lookup into that tuple's hash table.

use crate::packet::MINIFLOW_LEN;
use halo_tables::FlowKey;
use std::fmt;

/// A byte-granular wildcard mask over the [`MINIFLOW_LEN`]-byte key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WildcardMask {
    bytes: [u8; MINIFLOW_LEN],
}

impl WildcardMask {
    /// A mask matching every bit (exact match).
    #[must_use]
    pub fn exact() -> Self {
        WildcardMask {
            bytes: [0xFF; MINIFLOW_LEN],
        }
    }

    /// A mask from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not [`MINIFLOW_LEN`] long.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), MINIFLOW_LEN, "mask length");
        let mut m = [0u8; MINIFLOW_LEN];
        m.copy_from_slice(bytes);
        WildcardMask { bytes: m }
    }

    /// Builder: wildcard the source IP's low `n` bytes (keep a prefix).
    #[must_use]
    pub fn src_prefix(mut self, keep_bytes: usize) -> Self {
        for i in keep_bytes.min(4)..4 {
            self.bytes[i] = 0;
        }
        self
    }

    /// Builder: wildcard the destination IP's low bytes.
    #[must_use]
    pub fn dst_prefix(mut self, keep_bytes: usize) -> Self {
        for i in (4 + keep_bytes.min(4))..8 {
            self.bytes[i] = 0;
        }
        self
    }

    /// Builder: wildcard the source port.
    #[must_use]
    pub fn any_src_port(mut self) -> Self {
        self.bytes[8] = 0;
        self.bytes[9] = 0;
        self
    }

    /// Builder: wildcard the destination port.
    #[must_use]
    pub fn any_dst_port(mut self) -> Self {
        self.bytes[10] = 0;
        self.bytes[11] = 0;
        self
    }

    /// Builder: wildcard the protocol byte.
    #[must_use]
    pub fn any_proto(mut self) -> Self {
        self.bytes[12] = 0;
        self
    }

    /// Builder: wildcard the ingress port.
    #[must_use]
    pub fn any_in_port(mut self) -> Self {
        self.bytes[13] = 0;
        self
    }

    /// The raw mask bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Applies the mask to a miniflow key.
    ///
    /// # Panics
    ///
    /// Panics if `key` is shorter than the mask.
    #[must_use]
    pub fn apply(&self, key: &FlowKey) -> FlowKey {
        key.masked(&self.bytes)
    }

    /// Number of fully wildcarded bytes (a coarse specificity measure:
    /// more wildcarded bytes = less specific).
    #[must_use]
    pub fn wildcarded_bytes(&self) -> usize {
        self.bytes.iter().filter(|&&b| b == 0).count()
    }
}

impl Default for WildcardMask {
    fn default() -> Self {
        WildcardMask::exact()
    }
}

impl fmt::Display for WildcardMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bytes {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// A library of distinct wildcard patterns, used to generate the 5–20
/// tuple configurations of §5.2 / Fig. 11. Pattern `i` differs from all
/// others, so each induces its own MegaFlow tuple.
#[must_use]
pub fn distinct_masks(n: usize) -> Vec<WildcardMask> {
    let generators: Vec<fn() -> WildcardMask> = vec![
        WildcardMask::exact,
        || WildcardMask::exact().any_src_port(),
        || WildcardMask::exact().any_dst_port(),
        || WildcardMask::exact().any_src_port().any_dst_port(),
        || WildcardMask::exact().src_prefix(3),
        || WildcardMask::exact().dst_prefix(3),
        || WildcardMask::exact().src_prefix(2),
        || WildcardMask::exact().dst_prefix(2),
        || WildcardMask::exact().src_prefix(3).any_src_port(),
        || WildcardMask::exact().dst_prefix(3).any_dst_port(),
        || WildcardMask::exact().src_prefix(2).any_proto(),
        || WildcardMask::exact().dst_prefix(2).any_proto(),
        || WildcardMask::exact().src_prefix(1),
        || WildcardMask::exact().dst_prefix(1),
        || WildcardMask::exact().src_prefix(1).any_src_port(),
        || WildcardMask::exact().dst_prefix(1).any_dst_port(),
        || WildcardMask::exact().any_in_port(),
        || WildcardMask::exact().any_in_port().any_src_port(),
        || WildcardMask::exact().any_in_port().any_dst_port(),
        || WildcardMask::exact().any_in_port().any_proto(),
        || WildcardMask::exact().src_prefix(2).dst_prefix(2),
        || WildcardMask::exact().src_prefix(3).dst_prefix(3),
        || WildcardMask::exact().src_prefix(2).any_src_port(),
        || WildcardMask::exact().dst_prefix(2).any_dst_port(),
    ];
    assert!(n <= generators.len(), "at most {} masks", generators.len());
    generators[..n].iter().map(|g| g()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketHeader;

    #[test]
    fn exact_mask_is_identity() {
        let k = PacketHeader::synthetic(1).miniflow();
        assert_eq!(WildcardMask::exact().apply(&k), k);
        assert_eq!(WildcardMask::exact().wildcarded_bytes(), 0);
    }

    #[test]
    fn port_wildcard_merges_flows() {
        let mask = WildcardMask::exact().any_src_port();
        let mut a = PacketHeader::synthetic(1);
        let mut b = a;
        a.src_port = 1000;
        b.src_port = 2000;
        assert_ne!(a.miniflow(), b.miniflow());
        assert_eq!(mask.apply(&a.miniflow()), mask.apply(&b.miniflow()));
    }

    #[test]
    fn prefix_wildcard_keeps_prefix() {
        let mask = WildcardMask::exact().src_prefix(2);
        let h = PacketHeader {
            src_ip: 0x0A0B_0C0D,
            ..PacketHeader::synthetic(0)
        };
        let masked = mask.apply(&h.miniflow());
        assert_eq!(&masked.as_bytes()[0..4], &[0x0A, 0x0B, 0, 0]);
    }

    #[test]
    fn distinct_masks_are_distinct() {
        use std::collections::HashSet;
        for n in [5usize, 10, 15, 20, 24] {
            let masks = distinct_masks(n);
            let set: HashSet<_> = masks.iter().cloned().collect();
            assert_eq!(set.len(), n, "duplicates among {n} masks");
        }
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_masks_panics() {
        let _ = distinct_masks(100);
    }

    #[test]
    fn display_is_hex() {
        let s = WildcardMask::exact().to_string();
        assert_eq!(s.len(), MINIFLOW_LEN * 2);
        assert!(s.starts_with("ff"));
    }
}
