//! Tree-index lookup: the paper's §4.8 extension beyond hash tables.
//!
//! "Halo could also benefit other lookup operations against other data
//! structures such as tree [45, 51, 78] ... Halo accelerator can be
//! used to conduct the comparison with the nodes in the tree."
//!
//! This module provides a balanced binary search tree over flow keys,
//! laid out in simulated memory (two 32-byte nodes per cache line), with
//! traced lookups: every node visit is a dependent load plus a key
//! comparison — the pointer-chasing pattern that near-cache execution
//! shortens at every step.

use halo_mem::{Addr, SimMemory, CACHE_LINE};
use halo_tables::{FlowKey, LookupTrace, TraceStep};

/// Bytes per tree node: 16-byte key + left/right child indices + action.
const NODE_SIZE: u64 = 32;

/// Sentinel child index meaning "no child".
const NIL: u32 = u32::MAX;

/// A balanced binary search tree over fixed-width keys in simulated
/// memory (a Masstree/ART-style index stand-in, §4.8).
///
/// # Examples
///
/// ```
/// use halo_classify::DecisionTree;
/// use halo_mem::SimMemory;
/// use halo_tables::FlowKey;
///
/// let mut mem = SimMemory::new();
/// let entries: Vec<(FlowKey, u64)> =
///     (0..100).map(|i| (FlowKey::synthetic(i, 16), i * 2)).collect();
/// let tree = DecisionTree::build(&mut mem, &entries);
/// assert_eq!(tree.lookup(&mut mem, &FlowKey::synthetic(7, 16)), Some(14));
/// assert_eq!(tree.lookup(&mut mem, &FlowKey::synthetic(500, 16)), None);
/// ```
#[derive(Debug)]
pub struct DecisionTree {
    base: Addr,
    root: u32,
    len: usize,
    key_len: usize,
    depth: usize,
}

impl DecisionTree {
    /// Builds a balanced tree from `entries` (duplicate keys keep the
    /// last value). Keys must share one length of at most 16 bytes.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty, keys exceed 16 bytes, or lengths
    /// differ.
    pub fn build(mem: &mut SimMemory, entries: &[(FlowKey, u64)]) -> Self {
        assert!(!entries.is_empty(), "empty tree");
        let key_len = entries[0].0.len();
        assert!(key_len <= 16, "tree keys are at most 16 bytes");
        let mut sorted: Vec<(FlowKey, u64)> = entries.to_vec();
        for (k, _) in &sorted {
            assert_eq!(k.len(), key_len, "mixed key lengths");
        }
        sorted.sort_by(|a, b| a.0.as_bytes().cmp(b.0.as_bytes()));
        sorted.dedup_by(|a, b| {
            // `dedup_by` removes `a` (the later element) when true and
            // keeps `b`; copy the later value onto the survivor so the
            // last write wins.
            if a.0 == b.0 {
                b.1 = a.1;
                true
            } else {
                false
            }
        });
        let n = sorted.len();
        let base = mem.alloc_lines((n as u64 * NODE_SIZE).max(CACHE_LINE));

        // Write nodes in sorted order; build a balanced BST by index.
        for (i, (k, v)) in sorted.iter().enumerate() {
            let a = base + i as u64 * NODE_SIZE;
            mem.write_bytes(a, k.as_bytes());
            mem.write_u64(a + 24, *v);
            // children filled below
            mem.write_u32(a + 16, NIL);
            mem.write_u32(a + 20, NIL);
        }
        fn link(
            mem: &mut SimMemory,
            base: Addr,
            lo: usize,
            hi: usize,
            depth: &mut usize,
            d: usize,
        ) -> u32 {
            if lo >= hi {
                return NIL;
            }
            *depth = (*depth).max(d + 1);
            let mid = lo + (hi - lo) / 2;
            let left = link(mem, base, lo, mid, depth, d + 1);
            let right = link(mem, base, mid + 1, hi, depth, d + 1);
            let a = base + mid as u64 * NODE_SIZE;
            mem.write_u32(a + 16, left);
            mem.write_u32(a + 20, right);
            mid as u32
        }
        let mut depth = 0;
        let root = link(mem, base, 0, n, &mut depth, 0);
        DecisionTree {
            base,
            root,
            len: n,
            key_len,
            depth,
        }
    }

    /// Number of keys stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty (never: construction requires entries).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Tree height in nodes.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The tree's base address (its "table address" for HALO dispatch).
    #[must_use]
    pub fn base_addr(&self) -> Addr {
        self.base
    }

    fn node_addr(&self, idx: u32) -> Addr {
        self.base + u64::from(idx) * NODE_SIZE
    }

    fn node_key(&self, mem: &mut SimMemory, idx: u32) -> FlowKey {
        let mut buf = vec![0u8; self.key_len];
        mem.read_bytes(self.node_addr(idx), &mut buf);
        FlowKey::from_bytes(&buf)
    }

    /// Functional lookup.
    #[must_use]
    pub fn lookup(&self, mem: &mut SimMemory, key: &FlowKey) -> Option<u64> {
        self.lookup_traced(mem, key).result
    }

    /// Lookup with the recorded node-visit trace: a strictly dependent
    /// chain of `load node -> compare key` steps.
    #[must_use]
    pub fn lookup_traced(&self, mem: &mut SimMemory, key: &FlowKey) -> LookupTrace {
        assert_eq!(key.len(), self.key_len, "key length mismatch");
        let mut steps = Vec::with_capacity(2 * self.depth);
        let mut cur = self.root;
        let mut result = None;
        while cur != NIL {
            let a = self.node_addr(cur);
            steps.push(TraceStep::LoadKv(a));
            steps.push(TraceStep::CompareKey);
            let nk = self.node_key(mem, cur);
            match key.as_bytes().cmp(nk.as_bytes()) {
                std::cmp::Ordering::Equal => {
                    result = Some(mem.read_u64(a + 24));
                    break;
                }
                std::cmp::Ordering::Less => {
                    cur = mem.read_u32(a + 16);
                }
                std::cmp::Ordering::Greater => {
                    cur = mem.read_u32(a + 20);
                }
            }
        }
        LookupTrace { result, steps }
    }

    /// All cache lines of the node array (for warming).
    pub fn all_lines(&self) -> impl Iterator<Item = Addr> + '_ {
        let lines = (self.len as u64 * NODE_SIZE).div_ceil(CACHE_LINE);
        (0..lines).map(move |i| self.base + i * CACHE_LINE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(n: u64) -> Vec<(FlowKey, u64)> {
        (0..n)
            .map(|i| (FlowKey::synthetic(i, 16), i + 100))
            .collect()
    }

    #[test]
    fn build_and_lookup_all() {
        let mut mem = SimMemory::new();
        let e = entries(500);
        let tree = DecisionTree::build(&mut mem, &e);
        assert_eq!(tree.len(), 500);
        for (k, v) in &e {
            assert_eq!(tree.lookup(&mut mem, k), Some(*v), "lost {k}");
        }
        assert_eq!(tree.lookup(&mut mem, &FlowKey::synthetic(10_000, 16)), None);
    }

    #[test]
    fn balanced_depth_is_logarithmic() {
        let mut mem = SimMemory::new();
        let tree = DecisionTree::build(&mut mem, &entries(1024));
        assert!(tree.depth() <= 11, "depth {} for 1024 keys", tree.depth());
    }

    #[test]
    fn duplicate_keys_keep_last_value() {
        let mut mem = SimMemory::new();
        let k = FlowKey::synthetic(1, 16);
        let tree = DecisionTree::build(&mut mem, &[(k, 1), (k, 2)]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.lookup(&mut mem, &k), Some(2));
    }

    #[test]
    fn trace_is_a_dependent_chain_of_node_visits() {
        let mut mem = SimMemory::new();
        let e = entries(255);
        let tree = DecisionTree::build(&mut mem, &e);
        let tr = tree.lookup_traced(&mut mem, &e[17].0);
        assert_eq!(tr.result, Some(117));
        let loads = tr.memory_steps();
        assert!(loads >= 1 && loads <= tree.depth(), "visits {loads}");
        // Steps alternate load / compare.
        for pair in tr.steps.chunks(2) {
            assert!(matches!(pair[0], TraceStep::LoadKv(_)));
            if pair.len() > 1 {
                assert_eq!(pair[1], TraceStep::CompareKey);
            }
        }
    }

    #[test]
    fn single_entry_tree() {
        let mut mem = SimMemory::new();
        let k = FlowKey::synthetic(9, 16);
        let tree = DecisionTree::build(&mut mem, &[(k, 55)]);
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.lookup(&mut mem, &k), Some(55));
        assert!(!tree.is_empty());
    }
}
