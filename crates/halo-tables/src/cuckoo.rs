//! A DPDK-`rte_hash`-style cuckoo hash table over simulated memory.
//!
//! Two hash functions map each key to two candidate buckets; inserts may
//! displace residents along a breadth-first cuckoo path (so a failed
//! insert never loses resident keys); lookups probe at most two bucket
//! lines plus the matching key-value slot — the access pattern whose
//! LLC-friendliness motivates HALO (§3.3).

use crate::hash::{bucket_pair, hash_key, signature, SEED_PRIMARY};
use crate::key::FlowKey;
use crate::layout::{allocate_table, TableMeta, ENTRIES_PER_BUCKET};
use crate::path::find_displacement_path;
use crate::trace::{LookupTrace, TraceStep};
use halo_mem::{Addr, SimMemory};
use std::fmt;

/// Maximum breadth-first nodes explored when hunting a cuckoo path.
const BFS_LIMIT: usize = 4096;

/// Error returned when an insert cannot find a cuckoo path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFullError;

impl fmt::Display for TableFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no cuckoo path to a free slot")
    }
}

impl std::error::Error for TableFullError {}

/// A cuckoo relocation caught between its two bucket writes: the entry
/// has been *copied* into the alternative bucket but not yet cleared
/// from the source (the duplicate-then-delete ordering of Fig. 7, which
/// keeps the key findable at every instant). Obtained from
/// [`CuckooTable::cuckoo_move_begin`]; finish with
/// [`CuckooTable::cuckoo_move_commit`] or roll back with
/// [`CuckooTable::cuckoo_move_abort`].
///
/// While a move is pending only lookups may run against the table —
/// writers must be held off, exactly the exclusion the HALO hardware
/// lock bit provides (§4.4).
#[derive(Debug, Clone, Copy)]
#[must_use = "a pending move must be committed or aborted"]
pub struct PendingMove {
    src: (u64, usize),
    dst: (u64, usize),
}

/// A cuckoo hash table handle.
///
/// The table's bytes live in a [`SimMemory`]; this handle holds the
/// layout plus control-plane state (the free-slot list), mirroring how
/// DPDK keeps its slot ring outside the lookup-critical structures.
///
/// # Examples
///
/// ```
/// use halo_mem::SimMemory;
/// use halo_tables::{CuckooTable, FlowKey};
///
/// let mut mem = SimMemory::new();
/// let mut t = CuckooTable::create(&mut mem, 1024, 13);
/// let k = FlowKey::synthetic(1, 13);
/// t.insert(&mut mem, &k, 0xAB).unwrap();
/// assert_eq!(t.lookup(&mut mem, &k), Some(0xAB));
/// ```
#[derive(Debug)]
pub struct CuckooTable {
    meta_addr: Addr,
    meta: TableMeta,
    /// Optimistic-lock version counter line (software locking model).
    version_addr: Addr,
    free: Vec<u32>,
    len: usize,
    moves_in_flight: usize,
}

impl CuckooTable {
    /// Creates a table with `buckets` buckets (power of two) for
    /// `key_len`-byte keys. Capacity is `buckets * 8` entries.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is not a power of two or `key_len` is out of
    /// range.
    pub fn create(mem: &mut SimMemory, buckets: u64, key_len: usize) -> Self {
        let (meta_addr, meta) = allocate_table(mem, buckets, key_len);
        let version_addr = mem.alloc_lines(64);
        let slots = (buckets as usize) * ENTRIES_PER_BUCKET;
        // Hand out low indices first: keeps the hot end of the kv array
        // compact, as DPDK's ring does in practice.
        let free = (0..slots as u32).rev().collect();
        CuckooTable {
            meta_addr,
            meta,
            version_addr,
            free,
            len: 0,
            moves_in_flight: 0,
        }
    }

    /// Sizes a table for `flows` entries at `occupancy` (e.g. 0.9) and
    /// creates it.
    ///
    /// # Panics
    ///
    /// Panics if `occupancy` is not in `(0, 1]`.
    pub fn with_capacity_for(
        mem: &mut SimMemory,
        flows: usize,
        occupancy: f64,
        key_len: usize,
    ) -> Self {
        assert!(occupancy > 0.0 && occupancy <= 1.0);
        let slots_needed = (flows as f64 / occupancy).ceil() as u64;
        let buckets = (slots_needed / ENTRIES_PER_BUCKET as u64)
            .max(1)
            .next_power_of_two();
        CuckooTable::create(mem, buckets, key_len)
    }

    /// The table's metadata-line address (what the `RAX` implicit operand
    /// holds when issuing HALO lookup instructions).
    #[must_use]
    pub fn meta_addr(&self) -> Addr {
        self.meta_addr
    }

    /// The table layout.
    #[must_use]
    pub fn meta(&self) -> &TableMeta {
        &self.meta
    }

    /// Address of the optimistic-lock version counter.
    #[must_use]
    pub fn version_addr(&self) -> Addr {
        self.version_addr
    }

    /// Number of installed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total entry capacity (`buckets * 8`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.meta.buckets as usize * ENTRIES_PER_BUCKET
    }

    /// Current occupancy in `[0, 1]`.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    /// Bytes the table occupies in simulated memory.
    #[must_use]
    pub fn footprint(&self) -> u64 {
        self.meta.footprint()
    }

    /// Number of unclaimed key-value slots (`len + free_slots ==
    /// capacity` is an audited invariant).
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Two-phase cuckoo moves currently between `begin` and
    /// `commit`/`abort`; each one leaves a sanctioned duplicate bucket
    /// entry that the auditor accounts for.
    #[must_use]
    pub fn moves_in_flight(&self) -> usize {
        self.moves_in_flight
    }

    fn check_key(&self, key: &FlowKey) {
        assert_eq!(key.len(), self.meta.key_len as usize, "key length mismatch");
    }

    /// Inserts or updates `key -> value`.
    ///
    /// # Errors
    ///
    /// Returns [`TableFullError`] if no cuckoo path to a free slot exists
    /// within the search limit; the table is unchanged in that case.
    pub fn insert(
        &mut self,
        mem: &mut SimMemory,
        key: &FlowKey,
        value: u64,
    ) -> Result<(), TableFullError> {
        self.check_key(key);
        let (b1, b2) = bucket_pair(key, self.meta.buckets);
        let sig = signature(hash_key(key, SEED_PRIMARY));

        // Update in place if present.
        for b in [b1, b2] {
            for e in 0..ENTRIES_PER_BUCKET {
                let (s, idx) = self.meta.read_entry(mem, b, e);
                if s == sig && self.meta.read_kv_key(mem, idx) == *key {
                    self.meta.write_kv_value(mem, idx, value);
                    return Ok(());
                }
            }
        }

        // Claim a kv slot and write the key/value.
        let Some(kv_idx) = self.free.pop() else {
            return Err(TableFullError);
        };

        // Direct placement into a free entry of either bucket.
        for b in [b1, b2] {
            for e in 0..ENTRIES_PER_BUCKET {
                let (s, _) = self.meta.read_entry(mem, b, e);
                if s == 0 {
                    self.meta.write_kv(mem, kv_idx, key, value);
                    self.meta.write_entry(mem, b, e, sig, kv_idx);
                    self.bump_version(mem);
                    self.len += 1;
                    return Ok(());
                }
            }
        }

        // Both buckets full: breadth-first search for a displacement path
        // starting from b1's entries (DPDK's approach), so that a failed
        // search leaves the table untouched.
        match self.find_cuckoo_path(mem, b1) {
            Some(path) => {
                self.shift_along_path(mem, &path);
                // The first entry of the path is now free.
                let (b, e) = path[0];
                self.meta.write_kv(mem, kv_idx, key, value);
                self.meta.write_entry(mem, b, e, sig, kv_idx);
                self.bump_version(mem);
                self.len += 1;
                Ok(())
            }
            None => {
                self.free.push(kv_idx);
                Err(TableFullError)
            }
        }
    }

    /// BFS over bucket entries (see [`find_displacement_path`]); first
    /// element of the returned chain is the slot that will be freed for
    /// the new key.
    fn find_cuckoo_path(&self, mem: &mut SimMemory, start: u64) -> Option<Vec<(u64, usize)>> {
        find_displacement_path(&self.meta, mem, start, BFS_LIMIT)
    }

    /// Shifts residents backward along `path`, leaving `path[0]` empty.
    /// `path` is `[(b0,e0), ..., (bk,ek)]` where `(bk,ek)` is free.
    fn shift_along_path(&self, mem: &mut SimMemory, path: &[(u64, usize)]) {
        for w in (1..path.len()).rev() {
            let (dst_b, dst_e) = path[w];
            let (src_b, src_e) = path[w - 1];
            let (s, idx) = self.meta.read_entry(mem, src_b, src_e);
            debug_assert_ne!(s, 0, "shifting an empty entry");
            self.meta.write_entry(mem, dst_b, dst_e, s, idx);
            self.meta.clear_entry(mem, src_b, src_e);
        }
    }

    fn bump_version(&self, mem: &mut SimMemory) {
        // Wrapping: optimistic-lock readers compare for *change*, not
        // order, so rolling over from u64::MAX to 0 is correct (and must
        // not panic in debug builds).
        let v = mem.read_u64(self.version_addr);
        mem.write_u64(self.version_addr, v.wrapping_add(1));
    }

    /// Functional lookup.
    #[must_use]
    pub fn lookup(&self, mem: &SimMemory, key: &FlowKey) -> Option<u64> {
        self.lookup_traced(mem, key, false).result
    }

    /// Lookup that also records the memory/compute steps taken.
    ///
    /// With `software_locking`, the trace includes the optimistic-lock
    /// version reads a software implementation performs (§3.4); the
    /// HALO accelerator path omits them (the lock bit replaces them).
    #[must_use]
    pub fn lookup_traced(
        &self,
        mem: &SimMemory,
        key: &FlowKey,
        software_locking: bool,
    ) -> LookupTrace {
        self.check_key(key);
        let mut steps = Vec::with_capacity(12);
        steps.push(TraceStep::LoadMeta(self.meta_addr));
        if software_locking {
            steps.push(TraceStep::SoftLock(self.version_addr));
        }
        steps.push(TraceStep::Hash);
        let (b1, b2) = bucket_pair(key, self.meta.buckets);
        let sig = signature(hash_key(key, SEED_PRIMARY));

        let mut result = None;
        'outer: for b in [b1, b2] {
            steps.push(TraceStep::LoadBucket(self.meta.bucket_addr(b)));
            steps.push(TraceStep::CompareSigs);
            for e in 0..ENTRIES_PER_BUCKET {
                let (s, idx) = self.meta.read_entry(mem, b, e);
                if s == sig {
                    let kv = self.meta.kv_addr(idx);
                    steps.push(TraceStep::LoadKv(kv));
                    if self.meta.kv_slot > 64 {
                        steps.push(TraceStep::LoadKv(kv + 64));
                    }
                    steps.push(TraceStep::CompareKey);
                    if self.meta.read_kv_key(mem, idx) == *key {
                        result = Some(self.meta.read_kv_value(mem, idx));
                        break 'outer;
                    }
                }
            }
        }
        if software_locking {
            // Re-validate the version counter after the read.
            steps.push(TraceStep::SoftLock(self.version_addr));
        }
        LookupTrace { result, steps }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, mem: &mut SimMemory, key: &FlowKey) -> Option<u64> {
        self.check_key(key);
        let (b1, b2) = bucket_pair(key, self.meta.buckets);
        let sig = signature(hash_key(key, SEED_PRIMARY));
        for b in [b1, b2] {
            for e in 0..ENTRIES_PER_BUCKET {
                let (s, idx) = self.meta.read_entry(mem, b, e);
                if s == sig && self.meta.read_kv_key(mem, idx) == *key {
                    let v = self.meta.read_kv_value(mem, idx);
                    self.meta.clear_entry(mem, b, e);
                    self.meta.clear_kv(mem, idx);
                    self.free.push(idx);
                    self.len -= 1;
                    self.bump_version(mem);
                    return Some(v);
                }
            }
        }
        None
    }

    /// Performs one "cuckoo move": relocates `key`'s bucket entry to its
    /// alternative bucket if that bucket has a free entry. Models the
    /// concurrent-writer behaviour of Fig. 7. Returns `true` on success.
    pub fn cuckoo_move(&mut self, mem: &mut SimMemory, key: &FlowKey) -> bool {
        self.check_key(key);
        let (b1, b2) = bucket_pair(key, self.meta.buckets);
        let sig = signature(hash_key(key, SEED_PRIMARY));
        for (b, alt) in [(b1, b2), (b2, b1)] {
            for e in 0..ENTRIES_PER_BUCKET {
                let (s, idx) = self.meta.read_entry(mem, b, e);
                if s == sig && self.meta.read_kv_key(mem, idx) == *key {
                    for ae in 0..ENTRIES_PER_BUCKET {
                        let (as_, _) = self.meta.read_entry(mem, alt, ae);
                        if as_ == 0 {
                            self.meta.write_entry(mem, alt, ae, s, idx);
                            self.meta.clear_entry(mem, b, e);
                            self.bump_version(mem);
                            return true;
                        }
                    }
                    return false;
                }
            }
        }
        false
    }

    /// Starts a two-phase cuckoo move: *copies* `key`'s bucket entry to a
    /// free slot of its alternative bucket without clearing the source,
    /// so a preempted mover leaves the key findable through either entry
    /// (both reference the same key-value slot). Returns `None` if the
    /// key is absent or the alternative bucket is full.
    ///
    /// The returned [`PendingMove`] must be passed to
    /// [`cuckoo_move_commit`](Self::cuckoo_move_commit) or
    /// [`cuckoo_move_abort`](Self::cuckoo_move_abort); until then only
    /// lookups may run against the table (the hardware lock bit is what
    /// enforces this exclusion on real HALO).
    pub fn cuckoo_move_begin(&mut self, mem: &mut SimMemory, key: &FlowKey) -> Option<PendingMove> {
        self.check_key(key);
        let (b1, b2) = bucket_pair(key, self.meta.buckets);
        let sig = signature(hash_key(key, SEED_PRIMARY));
        for (b, alt) in [(b1, b2), (b2, b1)] {
            for e in 0..ENTRIES_PER_BUCKET {
                let (s, idx) = self.meta.read_entry(mem, b, e);
                if s == sig && self.meta.read_kv_key(mem, idx) == *key {
                    for ae in 0..ENTRIES_PER_BUCKET {
                        let (as_, _) = self.meta.read_entry(mem, alt, ae);
                        if as_ == 0 {
                            self.meta.write_entry(mem, alt, ae, s, idx);
                            self.moves_in_flight += 1;
                            return Some(PendingMove {
                                src: (b, e),
                                dst: (alt, ae),
                            });
                        }
                    }
                    return None;
                }
            }
        }
        None
    }

    /// Completes a two-phase move: clears the source entry, leaving only
    /// the relocated copy.
    pub fn cuckoo_move_commit(&mut self, mem: &mut SimMemory, mv: PendingMove) {
        self.meta.clear_entry(mem, mv.src.0, mv.src.1);
        self.bump_version(mem);
        self.moves_in_flight -= 1;
    }

    /// Rolls a two-phase move back: clears the destination copy, leaving
    /// the entry where it started.
    pub fn cuckoo_move_abort(&mut self, mem: &mut SimMemory, mv: PendingMove) {
        self.meta.clear_entry(mem, mv.dst.0, mv.dst.1);
        self.moves_in_flight -= 1;
    }

    /// All addresses of lines an ideal prefetcher would warm for this
    /// table: metadata, every bucket line, every kv line.
    pub fn all_lines(&self) -> impl Iterator<Item = Addr> + '_ {
        let meta = self.meta_addr;
        let version = self.version_addr;
        let buckets = (0..self.meta.buckets).map(move |b| self.meta.bucket_addr(b));
        let kv_lines = self.meta.buckets * ENTRIES_PER_BUCKET as u64 * u64::from(self.meta.kv_slot)
            / halo_mem::CACHE_LINE;
        let kv = (0..kv_lines).map(move |i| self.meta.kv_base + i * halo_mem::CACHE_LINE);
        [meta, version].into_iter().chain(buckets).chain(kv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(buckets: u64) -> (SimMemory, CuckooTable) {
        let mut mem = SimMemory::new();
        let t = CuckooTable::create(&mut mem, buckets, 13);
        (mem, t)
    }

    #[test]
    fn insert_lookup_remove() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        assert_eq!(t.lookup(&mem, &k), None);
        t.insert(&mut mem, &k, 99).unwrap();
        assert_eq!(t.lookup(&mem, &k), Some(99));
        assert_eq!(t.remove(&mut mem, &k), Some(99));
        assert_eq!(t.lookup(&mem, &k), None);
        assert!(t.is_empty());
    }

    #[test]
    fn update_in_place() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        t.insert(&mut mem, &k, 1).unwrap();
        t.insert(&mut mem, &k, 2).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&mem, &k), Some(2));
    }

    #[test]
    fn fills_to_high_occupancy() {
        let (mut mem, mut t) = setup(128); // 1024 slots
        let mut inserted = 0;
        for id in 0..1024u64 {
            if t.insert(&mut mem, &FlowKey::synthetic(id, 13), id).is_ok() {
                inserted += 1;
            } else {
                break;
            }
        }
        // Cuckoo hashing reaches ~95%+ utilization (§3.3 of the paper).
        assert!(
            inserted >= 960,
            "cuckoo should achieve >=93.75% fill, got {inserted}/1024"
        );
        // Everything inserted must still be findable.
        for id in 0..inserted as u64 {
            assert_eq!(
                t.lookup(&mem, &FlowKey::synthetic(id, 13)),
                Some(id),
                "lost key {id}"
            );
        }
    }

    #[test]
    fn failed_insert_preserves_table() {
        let (mut mem, mut t) = setup(2); // 16 slots
        let mut stored = Vec::new();
        for id in 0..64u64 {
            let k = FlowKey::synthetic(id, 13);
            if t.insert(&mut mem, &k, id).is_ok() {
                stored.push((k, id));
            }
        }
        for (k, v) in &stored {
            assert_eq!(t.lookup(&mem, k), Some(*v));
        }
        assert_eq!(t.len(), stored.len());
    }

    #[test]
    fn trace_shape_matches_algorithm() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        t.insert(&mut mem, &k, 7).unwrap();
        let tr = t.lookup_traced(&mem, &k, false);
        assert_eq!(tr.result, Some(7));
        assert!(matches!(tr.steps[0], TraceStep::LoadMeta(_)));
        assert!(tr.steps.contains(&TraceStep::Hash));
        let buckets = tr
            .steps
            .iter()
            .filter(|s| matches!(s, TraceStep::LoadBucket(_)))
            .count();
        assert!((1..=2).contains(&buckets));
        assert!(tr.steps.iter().any(|s| matches!(s, TraceStep::LoadKv(_))));
    }

    #[test]
    fn software_locking_adds_version_reads() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        t.insert(&mut mem, &k, 7).unwrap();
        let tr = t.lookup_traced(&mem, &k, true);
        let locks = tr
            .steps
            .iter()
            .filter(|s| matches!(s, TraceStep::SoftLock(_)))
            .count();
        assert_eq!(locks, 2);
    }

    #[test]
    fn miss_trace_probes_both_buckets() {
        let (mem, t) = setup(64);
        let tr = t.lookup_traced(&mem, &FlowKey::synthetic(1, 13), false);
        assert_eq!(tr.result, None);
        let buckets = tr
            .steps
            .iter()
            .filter(|s| matches!(s, TraceStep::LoadBucket(_)))
            .count();
        assert_eq!(buckets, 2);
    }

    #[test]
    fn cuckoo_move_relocates_entry() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        t.insert(&mut mem, &k, 7).unwrap();
        assert!(t.cuckoo_move(&mut mem, &k));
        // Still findable after relocation.
        assert_eq!(t.lookup(&mem, &k), Some(7));
        // And can be moved back.
        assert!(t.cuckoo_move(&mut mem, &k));
        assert_eq!(t.lookup(&mem, &k), Some(7));
    }

    /// Regression: remove followed by re-insert of the same key must
    /// round-trip `len()`/`occupancy()` exactly — no slot leak through
    /// the free list or the length bookkeeping.
    #[test]
    fn remove_reinsert_round_trips_len_and_occupancy() {
        let (mut mem, mut t) = setup(64);
        for id in 0..100u64 {
            t.insert(&mut mem, &FlowKey::synthetic(id, 13), id).unwrap();
        }
        let (len0, occ0, free0) = (t.len(), t.occupancy(), t.free_slots());
        for _ in 0..3 {
            for id in 0..100u64 {
                let k = FlowKey::synthetic(id, 13);
                assert_eq!(t.remove(&mut mem, &k), Some(id));
                t.insert(&mut mem, &k, id).unwrap();
            }
        }
        assert_eq!(t.len(), len0, "len leaked across remove/re-insert");
        assert_eq!(t.occupancy(), occ0, "occupancy leaked");
        assert_eq!(t.free_slots(), free0, "free list leaked");
        assert_eq!(t.len() + t.free_slots(), t.capacity());
        for id in 0..100u64 {
            assert_eq!(t.lookup(&mem, &FlowKey::synthetic(id, 13)), Some(id));
        }
    }

    /// The optimistic-lock version counter wraps at u64::MAX instead of
    /// panicking (readers compare for change, not order).
    #[test]
    fn version_counter_wraps_at_max() {
        let (mut mem, mut t) = setup(64);
        mem.write_u64(t.version_addr(), u64::MAX);
        t.insert(&mut mem, &FlowKey::synthetic(1, 13), 1).unwrap();
        assert_eq!(mem.read_u64(t.version_addr()), 0, "version must wrap");
        // Writes keep bumping past the wrap.
        t.remove(&mut mem, &FlowKey::synthetic(1, 13)).unwrap();
        assert_eq!(mem.read_u64(t.version_addr()), 1);
    }

    #[test]
    fn two_phase_move_keeps_key_findable_throughout() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        t.insert(&mut mem, &k, 7).unwrap();
        let mv = t.cuckoo_move_begin(&mut mem, &k).expect("alt bucket free");
        // Mid-move: duplicate entry pending, key still resolves.
        assert_eq!(t.moves_in_flight(), 1);
        assert_eq!(t.lookup(&mem, &k), Some(7));
        t.cuckoo_move_commit(&mut mem, mv);
        assert_eq!(t.moves_in_flight(), 0);
        assert_eq!(t.lookup(&mem, &k), Some(7));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn two_phase_move_abort_restores_original_placement() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        t.insert(&mut mem, &k, 7).unwrap();
        let mv = t.cuckoo_move_begin(&mut mem, &k).expect("alt bucket free");
        t.cuckoo_move_abort(&mut mem, mv);
        assert_eq!(t.moves_in_flight(), 0);
        assert_eq!(t.lookup(&mem, &k), Some(7));
        assert_eq!(t.len(), 1);
        // A full one-shot move still works afterwards.
        assert!(t.cuckoo_move(&mut mem, &k));
        assert_eq!(t.lookup(&mem, &k), Some(7));
    }

    #[test]
    fn with_capacity_sizes_table() {
        let mut mem = SimMemory::new();
        let t = CuckooTable::with_capacity_for(&mut mem, 1000, 0.9, 13);
        assert!(t.capacity() >= 1112);
        assert!(t.capacity() <= 4096, "not absurdly oversized");
    }

    #[test]
    fn version_bumps_on_writes() {
        let (mut mem, mut t) = setup(64);
        let v0 = mem.read_u64(t.version_addr());
        t.insert(&mut mem, &FlowKey::synthetic(1, 13), 1).unwrap();
        let v1 = mem.read_u64(t.version_addr());
        assert!(v1 > v0);
    }

    #[test]
    fn long_keys_supported() {
        let mut mem = SimMemory::new();
        let mut t = CuckooTable::create(&mut mem, 64, 64);
        let k = FlowKey::synthetic(9, 64);
        t.insert(&mut mem, &k, 123).unwrap();
        let tr = t.lookup_traced(&mem, &k, false);
        assert_eq!(tr.result, Some(123));
        // 128-byte kv slots need two kv line loads.
        let kv_loads = tr
            .steps
            .iter()
            .filter(|s| matches!(s, TraceStep::LoadKv(_)))
            .count();
        assert!(kv_loads >= 2);
    }
}
