//! Breadth-first cuckoo displacement-path search, shared by the
//! [`CuckooTable`](crate::CuckooTable) baseline and the
//! [`CuckooPlusPlusTable`](crate::CuckooPlusPlusTable) variant.
//!
//! The search itself only reads bucket entries and resident keys; what
//! differs between backends is the bookkeeping applied while *shifting*
//! residents along the found path (Cuckoo++ additionally maintains its
//! per-bucket presence filters), so the shift loops stay in the
//! backends.

use crate::hash::bucket_pair;
use crate::layout::{TableMeta, ENTRIES_PER_BUCKET};
use halo_mem::SimMemory;
use std::collections::VecDeque;

/// BFS over bucket entries: find a chain `(b1,e1) <- ... <- (bk,ek)`
/// where the last entry's resident can move to a bucket with a free
/// slot. Returns the chain (first element is the slot that will be
/// freed for the new key, last element is the currently-free entry),
/// or `None` once more than `limit` nodes have been explored.
pub(crate) fn find_displacement_path(
    meta: &TableMeta,
    mem: &mut SimMemory,
    start: u64,
    limit: usize,
) -> Option<Vec<(u64, usize)>> {
    #[derive(Clone, Copy)]
    struct Node {
        bucket: u64,
        entry: usize,
        parent: i32,
    }
    let mut nodes: Vec<Node> = Vec::with_capacity(256);
    let mut queue: VecDeque<i32> = VecDeque::new();
    for e in 0..ENTRIES_PER_BUCKET {
        nodes.push(Node {
            bucket: start,
            entry: e,
            parent: -1,
        });
        queue.push_back(nodes.len() as i32 - 1);
    }
    while let Some(ni) = queue.pop_front() {
        if nodes.len() > limit {
            return None;
        }
        let node = nodes[ni as usize];
        let (_, idx) = meta.read_entry(mem, node.bucket, node.entry);
        let resident = meta.read_kv_key(mem, idx);
        let (r1, r2) = bucket_pair(&resident, meta.buckets);
        let alt = if r1 == node.bucket { r2 } else { r1 };
        // Does the alternative bucket have a free entry?
        for e in 0..ENTRIES_PER_BUCKET {
            let (s, _) = meta.read_entry(mem, alt, e);
            if s == 0 {
                // Reconstruct path: from this node back to the root.
                let mut path = vec![(alt, e)];
                let mut cur = ni;
                while cur >= 0 {
                    let n = nodes[cur as usize];
                    path.push((n.bucket, n.entry));
                    cur = n.parent;
                }
                path.reverse(); // root .. alt-free-slot
                return Some(path);
            }
        }
        // Enqueue the alternative bucket's entries.
        for e in 0..ENTRIES_PER_BUCKET {
            nodes.push(Node {
                bucket: alt,
                entry: e,
                parent: ni,
            });
            queue.push_back(nodes.len() as i32 - 1);
        }
    }
    None
}
