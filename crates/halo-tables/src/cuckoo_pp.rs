//! Cuckoo++ (Le Scouarnec): a cuckoo hash table whose buckets carry a
//! small *presence filter* that kills the secondary-bucket probe on
//! most negative lookups.
//!
//! The baseline [`CuckooTable`](crate::CuckooTable) probes **two**
//! bucket lines on every miss (each key has two candidate buckets).
//! Cuckoo++ observes that a key is only ever stored in its secondary
//! bucket when its primary overflowed, which is rare; each primary
//! bucket therefore keeps a 16-slot counting filter of the keys it has
//! *displaced* into their secondary bucket. A lookup probes the primary
//! bucket, and consults the filter — which lives in the **same cache
//! line**, in the 16 bytes the DPDK layout leaves unused — before
//! deciding whether the secondary probe is needed. A negative lookup
//! whose filter slot is zero finishes after a single bucket load.
//!
//! The filter counts (rather than sets bits) so removals and cuckoo
//! displacements stay exact: every transition of a key between its
//! primary and secondary bucket adjusts the counter under the key's
//! primary bucket, including mid-path BFS shifts and the two-phase
//! move protocol (increment/decrement at `begin`, reverse on `abort`,
//! nothing at `commit` — safe because a pending move keeps a copy in
//! the bucket the lookup probes first).

use crate::cuckoo::TableFullError;
use crate::hash::{bucket_pair, hash_key, signature, SEED_PRIMARY};
use crate::key::FlowKey;
use crate::layout::{allocate_table, TableMeta, ENTRIES_PER_BUCKET};
use crate::path::find_displacement_path;
use crate::trace::{LookupTrace, TraceStep};
use halo_mem::{Addr, SimMemory};

/// Maximum breadth-first nodes explored when hunting a cuckoo path.
const BFS_LIMIT: usize = 4096;

/// Byte offset of the presence filter inside a bucket line: the DPDK
/// layout uses bytes `0..16` for signatures and `16..48` for kv
/// indices, leaving `48..64` free.
pub const FILTER_OFF: u64 = 48;

/// Counting slots per bucket filter (one byte each).
pub const FILTER_SLOTS: usize = 16;

/// A Cuckoo++ relocation caught between its two bucket writes, exactly
/// like [`PendingMove`](crate::PendingMove) but carrying the presence
/// filter adjustment that was applied at `begin` so `abort` can reverse
/// it. While a move is pending only lookups may run against the table.
#[derive(Debug, Clone, Copy)]
#[must_use = "a pending move must be committed or aborted"]
pub struct PendingMovePp {
    src: (u64, usize),
    dst: (u64, usize),
    /// Primary bucket and filter slot of the moving key.
    filter: (u64, usize),
    /// Filter delta applied at `begin` (+1 for primary->secondary,
    /// -1 for secondary->primary); `abort` applies the negation.
    applied: i8,
}

/// A cuckoo hash table with per-bucket counting presence filters
/// (Cuckoo++).
///
/// Layout, hashing, and displacement are identical to
/// [`CuckooTable`](crate::CuckooTable); the only addition is the
/// 16-byte filter in each bucket line and the bookkeeping that keeps it
/// exact across inserts, removes, BFS shifts, and two-phase moves.
///
/// # Examples
///
/// ```
/// use halo_mem::SimMemory;
/// use halo_tables::{CuckooPlusPlusTable, FlowKey, TraceStep};
///
/// let mut mem = SimMemory::new();
/// let mut t = CuckooPlusPlusTable::create(&mut mem, 1024, 13);
/// let k = FlowKey::synthetic(1, 13);
/// t.insert(&mut mem, &k, 0xAB).unwrap();
/// assert_eq!(t.lookup(&mut mem, &k), Some(0xAB));
/// // A negative lookup in an empty-filter bucket loads ONE bucket line.
/// let miss = t.lookup_traced(&mut mem, &FlowKey::synthetic(2, 13), false);
/// let loads = miss.steps.iter().filter(|s| matches!(s, TraceStep::LoadBucket(_))).count();
/// assert_eq!(loads, 1);
/// ```
#[derive(Debug)]
pub struct CuckooPlusPlusTable {
    meta_addr: Addr,
    meta: TableMeta,
    /// Optimistic-lock version counter line (software locking model).
    version_addr: Addr,
    free: Vec<u32>,
    len: usize,
    moves_in_flight: usize,
}

impl CuckooPlusPlusTable {
    /// Creates a table with `buckets` buckets (power of two) for
    /// `key_len`-byte keys. Capacity is `buckets * 8` entries.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is not a power of two or `key_len` is out of
    /// range.
    pub fn create(mem: &mut SimMemory, buckets: u64, key_len: usize) -> Self {
        let (meta_addr, meta) = allocate_table(mem, buckets, key_len);
        let version_addr = mem.alloc_lines(64);
        let slots = (buckets as usize) * ENTRIES_PER_BUCKET;
        let free = (0..slots as u32).rev().collect();
        CuckooPlusPlusTable {
            meta_addr,
            meta,
            version_addr,
            free,
            len: 0,
            moves_in_flight: 0,
        }
    }

    /// Sizes a table for `flows` entries at `occupancy` and creates it.
    ///
    /// # Panics
    ///
    /// Panics if `occupancy` is not in `(0, 1]`.
    pub fn with_capacity_for(
        mem: &mut SimMemory,
        flows: usize,
        occupancy: f64,
        key_len: usize,
    ) -> Self {
        assert!(occupancy > 0.0 && occupancy <= 1.0);
        let slots_needed = (flows as f64 / occupancy).ceil() as u64;
        let buckets = (slots_needed / ENTRIES_PER_BUCKET as u64)
            .max(1)
            .next_power_of_two();
        CuckooPlusPlusTable::create(mem, buckets, key_len)
    }

    /// The table's metadata-line address.
    #[must_use]
    pub fn meta_addr(&self) -> Addr {
        self.meta_addr
    }

    /// The table layout.
    #[must_use]
    pub fn meta(&self) -> &TableMeta {
        &self.meta
    }

    /// Address of the optimistic-lock version counter.
    #[must_use]
    pub fn version_addr(&self) -> Addr {
        self.version_addr
    }

    /// Number of installed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total entry capacity (`buckets * 8`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.meta.buckets as usize * ENTRIES_PER_BUCKET
    }

    /// Current occupancy in `[0, 1]`.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    /// Number of unclaimed key-value slots (`len + free_slots ==
    /// capacity` is an audited invariant).
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Two-phase moves currently between `begin` and `commit`/`abort`.
    #[must_use]
    pub fn moves_in_flight(&self) -> usize {
        self.moves_in_flight
    }

    /// Filter slot a key hashes to within its primary bucket's filter
    /// (bits 32..36 of the primary hash: independent of the bucket
    /// index bits and of the signature bits).
    #[must_use]
    pub fn filter_index(key: &FlowKey) -> usize {
        ((hash_key(key, SEED_PRIMARY) >> 32) & 0xF) as usize
    }

    /// Reads filter slot `fi` of bucket `b` — the number of keys with
    /// primary bucket `b` and filter index `fi` currently stored in
    /// their secondary bucket (exposed for the invariant auditor).
    #[must_use]
    pub fn filter_count(&self, mem: &SimMemory, b: u64, fi: usize) -> u8 {
        debug_assert!(fi < FILTER_SLOTS);
        mem.read_u8(self.meta.bucket_addr(b) + FILTER_OFF + fi as u64)
    }

    fn filter_adjust(&self, mem: &mut SimMemory, b: u64, fi: usize, delta: i8) {
        let a = self.meta.bucket_addr(b) + FILTER_OFF + fi as u64;
        let c = mem.read_u8(a);
        let next = if delta > 0 {
            assert!(c < u8::MAX, "presence filter counter overflow");
            c + 1
        } else {
            assert!(c > 0, "presence filter counter underflow");
            c - 1
        };
        mem.write_u8(a, next);
    }

    fn check_key(&self, key: &FlowKey) {
        assert_eq!(key.len(), self.meta.key_len as usize, "key length mismatch");
    }

    fn bump_version(&self, mem: &mut SimMemory) {
        let v = mem.read_u64(self.version_addr);
        mem.write_u64(self.version_addr, v.wrapping_add(1));
    }

    /// Inserts or updates `key -> value`.
    ///
    /// # Errors
    ///
    /// Returns [`TableFullError`] if no cuckoo path to a free slot
    /// exists within the search limit; the table is unchanged.
    pub fn insert(
        &mut self,
        mem: &mut SimMemory,
        key: &FlowKey,
        value: u64,
    ) -> Result<(), TableFullError> {
        self.check_key(key);
        let (b1, b2) = bucket_pair(key, self.meta.buckets);
        let sig = signature(hash_key(key, SEED_PRIMARY));
        let fi = Self::filter_index(key);

        // Update in place if present.
        for b in [b1, b2] {
            for e in 0..ENTRIES_PER_BUCKET {
                let (s, idx) = self.meta.read_entry(mem, b, e);
                if s == sig && self.meta.read_kv_key(mem, idx) == *key {
                    self.meta.write_kv_value(mem, idx, value);
                    return Ok(());
                }
            }
        }

        let Some(kv_idx) = self.free.pop() else {
            return Err(TableFullError);
        };

        // Direct placement: primary first (keeps the filter empty),
        // secondary second (registers the displacement in the filter).
        for b in [b1, b2] {
            for e in 0..ENTRIES_PER_BUCKET {
                let (s, _) = self.meta.read_entry(mem, b, e);
                if s == 0 {
                    self.meta.write_kv(mem, kv_idx, key, value);
                    self.meta.write_entry(mem, b, e, sig, kv_idx);
                    if b == b2 {
                        self.filter_adjust(mem, b1, fi, 1);
                    }
                    self.bump_version(mem);
                    self.len += 1;
                    return Ok(());
                }
            }
        }

        // Both buckets full: BFS for a displacement path rooted at b1,
        // so the new key always lands in its primary bucket and the
        // filter only changes for the shifted residents.
        match find_displacement_path(&self.meta, mem, b1, BFS_LIMIT) {
            Some(path) => {
                self.shift_along_path(mem, &path);
                let (b, e) = path[0];
                debug_assert_eq!(b, b1, "BFS roots at the primary bucket");
                self.meta.write_kv(mem, kv_idx, key, value);
                self.meta.write_entry(mem, b, e, sig, kv_idx);
                self.bump_version(mem);
                self.len += 1;
                Ok(())
            }
            None => {
                self.free.push(kv_idx);
                Err(TableFullError)
            }
        }
    }

    /// Shifts residents backward along `path`, leaving `path[0]` empty
    /// and adjusting each shifted resident's presence-filter slot: a
    /// shift into its secondary bucket registers the displacement, a
    /// shift back into its primary clears it.
    fn shift_along_path(&self, mem: &mut SimMemory, path: &[(u64, usize)]) {
        for w in (1..path.len()).rev() {
            let (dst_b, dst_e) = path[w];
            let (src_b, src_e) = path[w - 1];
            let (s, idx) = self.meta.read_entry(mem, src_b, src_e);
            debug_assert_ne!(s, 0, "shifting an empty entry");
            let resident = self.meta.read_kv_key(mem, idx);
            let (r1, _) = bucket_pair(&resident, self.meta.buckets);
            let rfi = Self::filter_index(&resident);
            self.meta.write_entry(mem, dst_b, dst_e, s, idx);
            self.meta.clear_entry(mem, src_b, src_e);
            if dst_b == r1 {
                self.filter_adjust(mem, r1, rfi, -1);
            } else {
                self.filter_adjust(mem, r1, rfi, 1);
            }
        }
    }

    /// Functional lookup.
    #[must_use]
    pub fn lookup(&self, mem: &SimMemory, key: &FlowKey) -> Option<u64> {
        self.lookup_traced(mem, key, false).result
    }

    /// Lookup recording the ordered memory/compute steps taken.
    ///
    /// Probes the primary bucket, then consults its presence filter —
    /// one extra `CompareSigs` compute step, **no** extra memory step,
    /// because the filter shares the already-loaded bucket line — and
    /// only probes the secondary bucket when the filter slot is
    /// nonzero.
    #[must_use]
    pub fn lookup_traced(
        &self,
        mem: &SimMemory,
        key: &FlowKey,
        software_locking: bool,
    ) -> LookupTrace {
        self.check_key(key);
        let mut steps = Vec::with_capacity(12);
        steps.push(TraceStep::LoadMeta(self.meta_addr));
        if software_locking {
            steps.push(TraceStep::SoftLock(self.version_addr));
        }
        steps.push(TraceStep::Hash);
        let (b1, b2) = bucket_pair(key, self.meta.buckets);
        let sig = signature(hash_key(key, SEED_PRIMARY));

        let scan = |b: u64, steps: &mut Vec<TraceStep>, mem: &SimMemory| {
            steps.push(TraceStep::LoadBucket(self.meta.bucket_addr(b)));
            steps.push(TraceStep::CompareSigs);
            for e in 0..ENTRIES_PER_BUCKET {
                let (s, idx) = self.meta.read_entry(mem, b, e);
                if s == sig {
                    let kv = self.meta.kv_addr(idx);
                    steps.push(TraceStep::LoadKv(kv));
                    if self.meta.kv_slot > 64 {
                        steps.push(TraceStep::LoadKv(kv + 64));
                    }
                    steps.push(TraceStep::CompareKey);
                    if self.meta.read_kv_key(mem, idx) == *key {
                        return Some(self.meta.read_kv_value(mem, idx));
                    }
                }
            }
            None
        };

        let mut result = scan(b1, &mut steps, mem);
        if result.is_none() {
            // Filter probe: same cache line as b1, compute only.
            steps.push(TraceStep::CompareSigs);
            if self.filter_count(mem, b1, Self::filter_index(key)) > 0 {
                result = scan(b2, &mut steps, mem);
            }
        }
        if software_locking {
            steps.push(TraceStep::SoftLock(self.version_addr));
        }
        LookupTrace { result, steps }
    }

    /// Removes `key`, returning its value if present. A removal from
    /// the secondary bucket decrements the primary bucket's filter slot
    /// so later negative lookups return to a single probe.
    pub fn remove(&mut self, mem: &mut SimMemory, key: &FlowKey) -> Option<u64> {
        self.check_key(key);
        let (b1, b2) = bucket_pair(key, self.meta.buckets);
        let sig = signature(hash_key(key, SEED_PRIMARY));
        for b in [b1, b2] {
            for e in 0..ENTRIES_PER_BUCKET {
                let (s, idx) = self.meta.read_entry(mem, b, e);
                if s == sig && self.meta.read_kv_key(mem, idx) == *key {
                    let v = self.meta.read_kv_value(mem, idx);
                    self.meta.clear_entry(mem, b, e);
                    self.meta.clear_kv(mem, idx);
                    if b == b2 {
                        self.filter_adjust(mem, b1, Self::filter_index(key), -1);
                    }
                    self.free.push(idx);
                    self.len -= 1;
                    self.bump_version(mem);
                    return Some(v);
                }
            }
        }
        None
    }

    /// Performs one "cuckoo move": relocates `key`'s bucket entry to
    /// its alternative bucket if that bucket has a free entry,
    /// adjusting the filter in the same step. Returns `true` on
    /// success.
    pub fn cuckoo_move(&mut self, mem: &mut SimMemory, key: &FlowKey) -> bool {
        match self.cuckoo_move_begin(mem, key) {
            Some(mv) => {
                self.cuckoo_move_commit(mem, mv);
                true
            }
            None => false,
        }
    }

    /// Starts a two-phase cuckoo move: *copies* `key`'s bucket entry to
    /// a free slot of its alternative bucket without clearing the
    /// source, and applies the filter adjustment immediately — safe in
    /// both directions because a lookup always probes the primary
    /// bucket (where a copy exists throughout a primary→secondary
    /// window) before consulting the filter, and a secondary→primary
    /// window keeps a copy in the primary bucket which the lookup finds
    /// without the filter's help. Returns `None` if the key is absent
    /// or the alternative bucket is full.
    pub fn cuckoo_move_begin(
        &mut self,
        mem: &mut SimMemory,
        key: &FlowKey,
    ) -> Option<PendingMovePp> {
        self.check_key(key);
        let (b1, b2) = bucket_pair(key, self.meta.buckets);
        let sig = signature(hash_key(key, SEED_PRIMARY));
        let fi = Self::filter_index(key);
        for (b, alt) in [(b1, b2), (b2, b1)] {
            for e in 0..ENTRIES_PER_BUCKET {
                let (s, idx) = self.meta.read_entry(mem, b, e);
                if s == sig && self.meta.read_kv_key(mem, idx) == *key {
                    for ae in 0..ENTRIES_PER_BUCKET {
                        let (as_, _) = self.meta.read_entry(mem, alt, ae);
                        if as_ == 0 {
                            self.meta.write_entry(mem, alt, ae, s, idx);
                            let applied: i8 = if b == b1 { 1 } else { -1 };
                            self.filter_adjust(mem, b1, fi, applied);
                            self.moves_in_flight += 1;
                            return Some(PendingMovePp {
                                src: (b, e),
                                dst: (alt, ae),
                                filter: (b1, fi),
                                applied,
                            });
                        }
                    }
                    return None;
                }
            }
        }
        None
    }

    /// Completes a two-phase move: clears the source entry. The filter
    /// already reflects the final placement (adjusted at `begin`).
    pub fn cuckoo_move_commit(&mut self, mem: &mut SimMemory, mv: PendingMovePp) {
        self.meta.clear_entry(mem, mv.src.0, mv.src.1);
        self.bump_version(mem);
        self.moves_in_flight -= 1;
    }

    /// Rolls a two-phase move back: clears the destination copy and
    /// reverses the filter adjustment applied at `begin`.
    pub fn cuckoo_move_abort(&mut self, mem: &mut SimMemory, mv: PendingMovePp) {
        self.meta.clear_entry(mem, mv.dst.0, mv.dst.1);
        self.filter_adjust(mem, mv.filter.0, mv.filter.1, -mv.applied);
        self.moves_in_flight -= 1;
    }

    /// All addresses of lines an ideal prefetcher would warm for this
    /// table: metadata, every bucket line (filters included — same
    /// lines), every kv line.
    pub fn all_lines(&self) -> impl Iterator<Item = Addr> + '_ {
        let meta = self.meta_addr;
        let version = self.version_addr;
        let buckets = (0..self.meta.buckets).map(move |b| self.meta.bucket_addr(b));
        let kv_lines = self.meta.buckets * ENTRIES_PER_BUCKET as u64 * u64::from(self.meta.kv_slot)
            / halo_mem::CACHE_LINE;
        let kv = (0..kv_lines).map(move |i| self.meta.kv_base + i * halo_mem::CACHE_LINE);
        [meta, version].into_iter().chain(buckets).chain(kv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(buckets: u64) -> (SimMemory, CuckooPlusPlusTable) {
        let mut mem = SimMemory::new();
        let t = CuckooPlusPlusTable::create(&mut mem, buckets, 13);
        (mem, t)
    }

    fn bucket_loads(tr: &LookupTrace) -> usize {
        tr.steps
            .iter()
            .filter(|s| matches!(s, TraceStep::LoadBucket(_)))
            .count()
    }

    /// Synthetic keys whose primary bucket equals `b` under `buckets`.
    fn keys_with_primary(b: u64, buckets: u64, n: usize) -> Vec<FlowKey> {
        let mut out = Vec::new();
        let mut id = 0u64;
        while out.len() < n {
            let k = FlowKey::synthetic(id, 13);
            if bucket_pair(&k, buckets).0 == b {
                out.push(k);
            }
            id += 1;
            assert!(id < 1_000_000, "key search diverged");
        }
        out
    }

    #[test]
    fn insert_lookup_remove() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        assert_eq!(t.lookup(&mem, &k), None);
        t.insert(&mut mem, &k, 99).unwrap();
        assert_eq!(t.lookup(&mem, &k), Some(99));
        assert_eq!(t.remove(&mut mem, &k), Some(99));
        assert_eq!(t.lookup(&mem, &k), None);
        assert!(t.is_empty());
    }

    /// The headline property: a negative lookup against an untouched
    /// filter slot loads exactly one bucket line (the baseline always
    /// loads two on a miss).
    #[test]
    fn negative_lookup_is_single_probe() {
        let (mut mem, mut t) = setup(64);
        for id in 0..100u64 {
            t.insert(&mut mem, &FlowKey::synthetic(id, 13), id).unwrap();
        }
        // At 100/512 fill no bucket overflows, so every filter is empty
        // and every miss is a single probe.
        for id in 1000..1100u64 {
            let tr = t.lookup_traced(&mem, &FlowKey::synthetic(id, 13), false);
            assert_eq!(tr.result, None);
            assert_eq!(bucket_loads(&tr), 1, "miss probed the secondary bucket");
        }
    }

    /// A key stored in its secondary bucket stays findable (the filter
    /// steers the lookup to the second probe).
    #[test]
    fn displaced_key_found_through_filter() {
        let buckets = 64;
        let (mut mem, mut t) = setup(buckets);
        let keys = keys_with_primary(7, buckets, ENTRIES_PER_BUCKET + 1);
        for (i, k) in keys.iter().enumerate() {
            t.insert(&mut mem, k, i as u64).unwrap();
        }
        // Bucket 7 overflowed: at least one of the keys took a second
        // probe, and all remain findable.
        let mut second_probes = 0;
        for (i, k) in keys.iter().enumerate() {
            let tr = t.lookup_traced(&mem, k, false);
            assert_eq!(tr.result, Some(i as u64), "lost key {i}");
            if bucket_loads(&tr) == 2 {
                second_probes += 1;
            }
        }
        assert!(second_probes >= 1, "no key was displaced to secondary");
    }

    /// Satellite regression: removing a displaced key must clear its
    /// presence-filter slot, so negative lookups hashing to that slot
    /// return to a single probe.
    #[test]
    fn remove_clears_filter_for_negative_lookups() {
        let buckets = 64;
        let (mut mem, mut t) = setup(buckets);
        let keys = keys_with_primary(7, buckets, ENTRIES_PER_BUCKET + 4);
        let (fillers, displaced) = keys.split_at(ENTRIES_PER_BUCKET);
        for k in fillers {
            t.insert(&mut mem, k, 1).unwrap();
        }
        for k in displaced {
            t.insert(&mut mem, k, 2).unwrap();
        }
        // Each displaced key's own (absent-twin) filter slot is hot:
        // removing the key must cool it again.
        for k in displaced {
            let fi = CuckooPlusPlusTable::filter_index(k);
            assert!(t.filter_count(&mem, 7, fi) > 0, "filter never set");
            assert_eq!(t.remove(&mut mem, k), Some(2));
        }
        for fi in 0..FILTER_SLOTS {
            assert_eq!(
                t.filter_count(&mem, 7, fi),
                0,
                "filter slot {fi} left hot after removes"
            );
        }
        // And a re-insert round trip keeps the filter exact.
        for k in displaced {
            t.insert(&mut mem, k, 3).unwrap();
            assert_eq!(t.remove(&mut mem, k), Some(3));
        }
        for k in displaced {
            let tr = t.lookup_traced(&mem, k, false);
            assert_eq!(tr.result, None);
            assert_eq!(bucket_loads(&tr), 1, "negative lookup stayed double-probe");
        }
    }

    /// BFS displacement paths (inserts into full bucket pairs) keep the
    /// filter exact: everything stays findable and fully removing the
    /// table empties every filter slot.
    #[test]
    fn fills_to_high_occupancy_with_exact_filters() {
        let (mut mem, mut t) = setup(128); // 1024 slots
        let mut stored = Vec::new();
        for id in 0..1024u64 {
            if t.insert(&mut mem, &FlowKey::synthetic(id, 13), id).is_ok() {
                stored.push(id);
            } else {
                break;
            }
        }
        assert!(stored.len() >= 960, "fill degraded: {}/1024", stored.len());
        for &id in &stored {
            assert_eq!(
                t.lookup(&mem, &FlowKey::synthetic(id, 13)),
                Some(id),
                "lost key {id}"
            );
        }
        for &id in &stored {
            assert_eq!(t.remove(&mut mem, &FlowKey::synthetic(id, 13)), Some(id));
        }
        for b in 0..128u64 {
            for fi in 0..FILTER_SLOTS {
                assert_eq!(
                    t.filter_count(&mem, b, fi),
                    0,
                    "bucket {b} slot {fi} hot after draining the table"
                );
            }
        }
    }

    #[test]
    fn two_phase_move_keeps_key_findable_throughout() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        t.insert(&mut mem, &k, 7).unwrap();
        let mv = t.cuckoo_move_begin(&mut mem, &k).expect("alt bucket free");
        assert_eq!(t.moves_in_flight(), 1);
        assert_eq!(t.lookup(&mem, &k), Some(7));
        t.cuckoo_move_commit(&mut mem, mv);
        assert_eq!(t.moves_in_flight(), 0);
        assert_eq!(t.lookup(&mem, &k), Some(7));
        // The key now sits in its secondary bucket; the filter steers.
        let tr = t.lookup_traced(&mem, &k, false);
        assert_eq!(bucket_loads(&tr), 2);
        // Move back home: the filter must cool again.
        assert!(t.cuckoo_move(&mut mem, &k));
        let (b1, _) = bucket_pair(&k, 64);
        assert_eq!(
            t.filter_count(&mem, b1, CuckooPlusPlusTable::filter_index(&k)),
            0
        );
    }

    #[test]
    fn two_phase_move_abort_restores_filter() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        let (b1, _) = bucket_pair(&k, 64);
        let fi = CuckooPlusPlusTable::filter_index(&k);
        t.insert(&mut mem, &k, 7).unwrap();
        // Abort a primary->secondary move: filter returns to 0.
        let mv = t.cuckoo_move_begin(&mut mem, &k).expect("alt bucket free");
        assert_eq!(t.filter_count(&mem, b1, fi), 1, "begin must register");
        assert_eq!(t.lookup(&mem, &k), Some(7), "findable mid-move");
        t.cuckoo_move_abort(&mut mem, mv);
        assert_eq!(t.filter_count(&mem, b1, fi), 0, "abort must reverse");
        assert_eq!(t.lookup(&mem, &k), Some(7));
        // Abort a secondary->primary move: filter returns to 1.
        assert!(t.cuckoo_move(&mut mem, &k)); // now in secondary
        let mv = t.cuckoo_move_begin(&mut mem, &k).expect("home bucket free");
        assert_eq!(t.filter_count(&mem, b1, fi), 0, "begin must deregister");
        assert_eq!(t.lookup(&mem, &k), Some(7), "findable mid-move");
        t.cuckoo_move_abort(&mut mem, mv);
        assert_eq!(t.filter_count(&mem, b1, fi), 1, "abort must re-register");
        assert_eq!(t.lookup(&mem, &k), Some(7));
        assert_eq!(t.moves_in_flight(), 0);
    }

    #[test]
    fn update_in_place_leaves_filter_untouched() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        t.insert(&mut mem, &k, 1).unwrap();
        t.insert(&mut mem, &k, 2).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&mem, &k), Some(2));
        let (b1, _) = bucket_pair(&k, 64);
        assert_eq!(
            t.filter_count(&mem, b1, CuckooPlusPlusTable::filter_index(&k)),
            0
        );
    }

    #[test]
    fn software_locking_adds_version_reads() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        t.insert(&mut mem, &k, 7).unwrap();
        let tr = t.lookup_traced(&mem, &k, true);
        let locks = tr
            .steps
            .iter()
            .filter(|s| matches!(s, TraceStep::SoftLock(_)))
            .count();
        assert_eq!(locks, 2);
    }
}
