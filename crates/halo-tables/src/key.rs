//! Flow keys: the byte strings looked up in flow tables.
//!
//! The paper sweeps packet-header keys from 4 to 64 bytes (§3.4), with
//! the common case being the 5-tuple of an IPv4 packet (13 bytes).

use std::fmt;

/// Maximum supported key length in bytes.
pub const MAX_KEY_LEN: usize = 64;

/// A fixed-capacity flow key (packet-header bytes).
///
/// # Examples
///
/// ```
/// use halo_tables::FlowKey;
///
/// let k = FlowKey::from_bytes(&[1, 2, 3, 4]);
/// assert_eq!(k.len(), 4);
/// assert_eq!(k.as_bytes(), &[1, 2, 3, 4]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowKey {
    bytes: [u8; MAX_KEY_LEN],
    len: u8,
}

impl FlowKey {
    /// Builds a key from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > MAX_KEY_LEN` or `bytes` is empty.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(!bytes.is_empty(), "empty flow key");
        assert!(bytes.len() <= MAX_KEY_LEN, "flow key too long");
        let mut k = FlowKey {
            bytes: [0; MAX_KEY_LEN],
            len: bytes.len() as u8,
        };
        k.bytes[..bytes.len()].copy_from_slice(bytes);
        k
    }

    /// Builds a `len`-byte key whose content encodes `id` (useful for
    /// synthetic workloads: distinct ids give distinct keys).
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or greater than [`MAX_KEY_LEN`].
    #[must_use]
    pub fn synthetic(id: u64, len: usize) -> Self {
        assert!(len > 0 && len <= MAX_KEY_LEN);
        let mut bytes = [0u8; MAX_KEY_LEN];
        // Spread the id across the key with distinct per-chunk mixing so
        // short keys still differ.
        let mut x = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ id;
        for chunk in bytes[..len].chunks_mut(8) {
            let src = x.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&src[..n]);
            x = x.rotate_left(23).wrapping_add(id | 1);
        }
        // Guarantee injectivity for ids < 2^32 even for 4-byte keys by
        // storing the low id bits verbatim.
        let direct = (id as u32).to_le_bytes();
        let n = len.min(4);
        bytes[..n].copy_from_slice(&direct[..n]);
        FlowKey {
            bytes,
            len: len as u8,
        }
    }

    /// A 13-byte IPv4 5-tuple key.
    #[must_use]
    pub fn five_tuple(src: u32, dst: u32, sport: u16, dport: u16, proto: u8) -> Self {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&src.to_be_bytes());
        b[4..8].copy_from_slice(&dst.to_be_bytes());
        b[8..10].copy_from_slice(&sport.to_be_bytes());
        b[10..12].copy_from_slice(&dport.to_be_bytes());
        b[12] = proto;
        FlowKey::from_bytes(&b)
    }

    /// Key length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always false: keys are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The key bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// A key of the same bytes masked by `mask` (bitwise AND, as used by
    /// wildcard tuple matching). `mask` must be at least as long as the
    /// key; extra mask bytes are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `mask` is shorter than the key.
    #[must_use]
    pub fn masked(&self, mask: &[u8]) -> FlowKey {
        assert!(mask.len() >= self.len(), "mask shorter than key");
        let mut out = *self;
        for (b, m) in out.bytes[..self.len as usize].iter_mut().zip(mask) {
            *b &= m;
        }
        out
    }
}

impl fmt::Debug for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FlowKey(")?;
        for b in self.as_bytes() {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_roundtrip() {
        let k = FlowKey::from_bytes(&[9, 8, 7]);
        assert_eq!(k.as_bytes(), &[9, 8, 7]);
        assert_eq!(k.len(), 3);
        assert!(!k.is_empty());
    }

    #[test]
    fn synthetic_keys_distinct() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..10_000u64 {
            assert!(seen.insert(FlowKey::synthetic(id, 13)), "dup at {id}");
        }
    }

    #[test]
    fn synthetic_short_keys_distinct() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..10_000u64 {
            assert!(seen.insert(FlowKey::synthetic(id, 4)), "dup at {id}");
        }
    }

    #[test]
    fn five_tuple_layout() {
        let k = FlowKey::five_tuple(0x0a000001, 0x0a000002, 80, 443, 6);
        assert_eq!(k.len(), 13);
        assert_eq!(&k.as_bytes()[0..4], &[0x0a, 0, 0, 1]);
        assert_eq!(k.as_bytes()[12], 6);
    }

    #[test]
    fn masked_zeroes_wildcarded_bytes() {
        let k = FlowKey::from_bytes(&[0xff, 0xff, 0xff, 0xff]);
        let m = k.masked(&[0xff, 0x00, 0xf0, 0xff]);
        assert_eq!(m.as_bytes(), &[0xff, 0x00, 0xf0, 0xff]);
    }

    #[test]
    fn debug_is_hex() {
        let k = FlowKey::from_bytes(&[0xab, 0x01]);
        assert_eq!(format!("{k:?}"), "FlowKey(ab01)");
    }

    #[test]
    #[should_panic(expected = "flow key too long")]
    fn oversized_key_panics() {
        let _ = FlowKey::from_bytes(&[0u8; 65]);
    }
}
