//! Lookup traces: the shared vocabulary between table implementations
//! and execution engines.
//!
//! A *trace* is the ordered list of memory touches and compute stages a
//! lookup performs. The software core model (`halo-cpu`) prices a trace
//! as x86 micro-ops; the HALO accelerator (`halo-accel`) prices the same
//! trace as scoreboard operations against its local LLC slice. Using one
//! vocabulary guarantees both engines see identical memory behaviour.

use halo_mem::Addr;

/// One step of a hash-table lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStep {
    /// Fetch the lookup key itself (packet header bytes).
    LoadKey(Addr),
    /// Fetch the table metadata line.
    LoadMeta(Addr),
    /// Run the hash unit / software hash chain over the key.
    Hash,
    /// Fetch one bucket line.
    LoadBucket(Addr),
    /// Compare the 8 signatures of a fetched bucket.
    CompareSigs,
    /// Fetch (part of) a key-value slot.
    LoadKv(Addr),
    /// Compare the full key bytes.
    CompareKey,
    /// Acquire/verify the optimistic software lock (version counter
    /// read). Only emitted by the software path.
    SoftLock(Addr),
    /// Store of the lookup result to a destination address (non-blocking
    /// accelerator mode).
    StoreResult(Addr),
}

impl TraceStep {
    /// The memory address this step touches, if it is a memory step.
    #[must_use]
    pub fn addr(&self) -> Option<Addr> {
        match *self {
            TraceStep::LoadKey(a)
            | TraceStep::LoadMeta(a)
            | TraceStep::LoadBucket(a)
            | TraceStep::LoadKv(a)
            | TraceStep::SoftLock(a)
            | TraceStep::StoreResult(a) => Some(a),
            TraceStep::Hash | TraceStep::CompareSigs | TraceStep::CompareKey => None,
        }
    }

    /// Whether this is a pure compute step.
    #[must_use]
    pub fn is_compute(&self) -> bool {
        self.addr().is_none()
    }
}

/// A completed lookup: its functional result plus the steps taken.
#[derive(Debug, Clone)]
pub struct LookupTrace {
    /// The value found, if any.
    pub result: Option<u64>,
    /// Ordered steps (each step depends on the previous compute stage;
    /// bucket loads for the two cuckoo buckets are independent of each
    /// other once the hash is known).
    pub steps: Vec<TraceStep>,
}

impl LookupTrace {
    /// Number of memory-touching steps.
    #[must_use]
    pub fn memory_steps(&self) -> usize {
        self.steps.iter().filter(|s| !s.is_compute()).count()
    }

    /// Addresses of all memory steps in order.
    pub fn addresses(&self) -> impl Iterator<Item = Addr> + '_ {
        self.steps.iter().filter_map(TraceStep::addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_classification() {
        assert!(TraceStep::Hash.is_compute());
        assert!(TraceStep::CompareSigs.is_compute());
        assert_eq!(TraceStep::LoadBucket(Addr(64)).addr(), Some(Addr(64)));
        assert_eq!(TraceStep::Hash.addr(), None);
    }

    #[test]
    fn trace_counts_memory_steps() {
        let t = LookupTrace {
            result: Some(1),
            steps: vec![
                TraceStep::LoadKey(Addr(64)),
                TraceStep::Hash,
                TraceStep::LoadBucket(Addr(128)),
                TraceStep::CompareSigs,
                TraceStep::LoadKv(Addr(256)),
                TraceStep::CompareKey,
            ],
        };
        assert_eq!(t.memory_steps(), 3);
        assert_eq!(t.addresses().count(), 3);
    }
}
