//! On-"chip" memory layout of a flow hash table (DPDK `rte_hash` style).
//!
//! ```text
//! metadata line (64 B)    bucket array                 key-value array
//! +------------------+    +--------------------+      +----------------+
//! | buckets, keylen, |    | bucket 0   (64 B)  |      | slot 0         |
//! | bucket_base,     |    |  8 x sig (u16)     |      |  key bytes     |
//! | kv_base, ...     |    |  8 x kv index (u32)|      |  value (u64)   |
//! +------------------+    | bucket 1 ...       |      | slot 1 ...     |
//! ```
//!
//! Each bucket occupies exactly one cache line (§2.2 of the paper); the
//! signature is a 16-bit hash digest and the index points into the
//! key-value array, which stores the full key and the attached value.

use crate::key::FlowKey;
use halo_mem::{Addr, SimMemory, CACHE_LINE};

/// Entries per bucket (8-way set-associative buckets, the DPDK default
/// the paper evaluates).
pub const ENTRIES_PER_BUCKET: usize = 8;

/// Byte offset of the kv-index array inside a bucket line.
const BUCKET_IDX_OFF: u64 = 16;

/// Table metadata as stored in (and read back from) the metadata line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableMeta {
    /// Number of buckets (power of two).
    pub buckets: u64,
    /// Key length in bytes.
    pub key_len: u32,
    /// Size of one key-value slot in bytes (64 or 128).
    pub kv_slot: u32,
    /// Base address of the bucket array.
    pub bucket_base: Addr,
    /// Base address of the key-value array.
    pub kv_base: Addr,
}

impl TableMeta {
    /// Serializes into the metadata line at `addr`.
    pub fn store(&self, mem: &mut SimMemory, addr: Addr) {
        mem.write_u64(addr, self.buckets);
        mem.write_u32(addr + 8, self.key_len);
        mem.write_u32(addr + 12, self.kv_slot);
        mem.write_u64(addr + 16, self.bucket_base.0);
        mem.write_u64(addr + 24, self.kv_base.0);
    }

    /// Deserializes from the metadata line at `addr`.
    #[must_use]
    pub fn load(mem: &SimMemory, addr: Addr) -> TableMeta {
        TableMeta {
            buckets: mem.read_u64(addr),
            key_len: mem.read_u32(addr + 8),
            kv_slot: mem.read_u32(addr + 12),
            bucket_base: Addr(mem.read_u64(addr + 16)),
            kv_base: Addr(mem.read_u64(addr + 24)),
        }
    }

    /// Key-value slot size for a given key length.
    #[must_use]
    pub fn kv_slot_for(key_len: usize) -> u32 {
        if key_len <= 48 {
            64
        } else {
            128
        }
    }

    /// Address of bucket `b`.
    #[must_use]
    pub fn bucket_addr(&self, b: u64) -> Addr {
        debug_assert!(b < self.buckets);
        self.bucket_base + b * CACHE_LINE
    }

    /// Address of key-value slot `idx`.
    #[must_use]
    pub fn kv_addr(&self, idx: u32) -> Addr {
        self.kv_base + u64::from(idx) * u64::from(self.kv_slot)
    }

    /// Addresses of one bucket entry's signature and kv-index fields.
    #[must_use]
    pub fn entry_addrs(&self, b: u64, e: usize) -> (Addr, Addr) {
        let base = self.bucket_addr(b);
        (
            base + (e as u64) * 2,
            base + BUCKET_IDX_OFF + (e as u64) * 4,
        )
    }

    /// Reads bucket entry `e` of bucket `b`: `(signature, kv index)`.
    /// A zero signature means the entry is empty.
    #[must_use]
    pub fn read_entry(&self, mem: &SimMemory, b: u64, e: usize) -> (u16, u32) {
        let (sa, ia) = self.entry_addrs(b, e);
        (mem.read_u16(sa), mem.read_u32(ia))
    }

    /// Writes bucket entry `e` of bucket `b`.
    pub fn write_entry(&self, mem: &mut SimMemory, b: u64, e: usize, sig: u16, idx: u32) {
        let (sa, ia) = self.entry_addrs(b, e);
        mem.write_u16(sa, sig);
        mem.write_u32(ia, idx);
    }

    /// Clears bucket entry `e` of bucket `b`.
    pub fn clear_entry(&self, mem: &mut SimMemory, b: u64, e: usize) {
        self.write_entry(mem, b, e, 0, 0);
    }

    /// Writes key-value slot `idx`.
    pub fn write_kv(&self, mem: &mut SimMemory, idx: u32, key: &FlowKey, value: u64) {
        let a = self.kv_addr(idx);
        mem.write_bytes(a, key.as_bytes());
        mem.write_u64(a + (u64::from(self.kv_slot) - 16), value);
        mem.write_u8(a + (u64::from(self.kv_slot) - 8), 1); // occupied
    }

    /// Reads the key stored in slot `idx`.
    #[must_use]
    pub fn read_kv_key(&self, mem: &SimMemory, idx: u32) -> FlowKey {
        let a = self.kv_addr(idx);
        let mut buf = vec![0u8; self.key_len as usize];
        mem.read_bytes(a, &mut buf);
        FlowKey::from_bytes(&buf)
    }

    /// Reads the value stored in slot `idx`.
    #[must_use]
    pub fn read_kv_value(&self, mem: &SimMemory, idx: u32) -> u64 {
        mem.read_u64(self.kv_addr(idx) + (u64::from(self.kv_slot) - 16))
    }

    /// Updates just the value of slot `idx`.
    pub fn write_kv_value(&self, mem: &mut SimMemory, idx: u32, value: u64) {
        mem.write_u64(self.kv_addr(idx) + (u64::from(self.kv_slot) - 16), value);
    }

    /// Clears slot `idx`'s occupied flag.
    pub fn clear_kv(&self, mem: &mut SimMemory, idx: u32) {
        mem.write_u8(self.kv_addr(idx) + (u64::from(self.kv_slot) - 8), 0);
    }

    /// Total bytes occupied by the table (metadata + buckets + kv array).
    #[must_use]
    pub fn footprint(&self) -> u64 {
        CACHE_LINE
            + self.buckets * CACHE_LINE
            + self.buckets * ENTRIES_PER_BUCKET as u64 * u64::from(self.kv_slot)
    }
}

/// Allocates a table layout in `mem` and returns its metadata (already
/// stored at `meta_addr`).
///
/// # Panics
///
/// Panics if `buckets` is not a power of two or `key_len` exceeds
/// [`crate::MAX_KEY_LEN`].
pub fn allocate_table(mem: &mut SimMemory, buckets: u64, key_len: usize) -> (Addr, TableMeta) {
    assert!(buckets.is_power_of_two(), "bucket count must be 2^n");
    assert!(key_len <= crate::MAX_KEY_LEN);
    let meta_addr = mem.alloc_lines(CACHE_LINE);
    let bucket_base = mem.alloc_lines(buckets * CACHE_LINE);
    let kv_slot = TableMeta::kv_slot_for(key_len);
    let slots = buckets * ENTRIES_PER_BUCKET as u64;
    let kv_base = mem.alloc_lines(slots * u64::from(kv_slot));
    let meta = TableMeta {
        buckets,
        key_len: key_len as u32,
        kv_slot,
        bucket_base,
        kv_base,
    };
    meta.store(mem, meta_addr);
    (meta_addr, meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_roundtrip() {
        let mut mem = SimMemory::new();
        let (addr, meta) = allocate_table(&mut mem, 64, 13);
        let back = TableMeta::load(&mem, addr);
        assert_eq!(meta, back);
    }

    #[test]
    fn bucket_is_one_line() {
        let mut mem = SimMemory::new();
        let (_, meta) = allocate_table(&mut mem, 8, 13);
        let a = meta.bucket_addr(0);
        let b = meta.bucket_addr(1);
        assert_eq!(b.0 - a.0, CACHE_LINE);
        assert_eq!(a.line_offset(), 0);
    }

    #[test]
    fn entry_roundtrip() {
        let mut mem = SimMemory::new();
        let (_, meta) = allocate_table(&mut mem, 8, 13);
        meta.write_entry(&mut mem, 3, 5, 0xBEEF, 42);
        assert_eq!(meta.read_entry(&mem, 3, 5), (0xBEEF, 42));
        meta.clear_entry(&mut mem, 3, 5);
        assert_eq!(meta.read_entry(&mem, 3, 5), (0, 0));
    }

    #[test]
    fn entries_do_not_overlap() {
        let mut mem = SimMemory::new();
        let (_, meta) = allocate_table(&mut mem, 8, 13);
        for e in 0..ENTRIES_PER_BUCKET {
            meta.write_entry(&mut mem, 0, e, 100 + e as u16, 200 + e as u32);
        }
        for e in 0..ENTRIES_PER_BUCKET {
            assert_eq!(
                meta.read_entry(&mem, 0, e),
                (100 + e as u16, 200 + e as u32)
            );
        }
    }

    #[test]
    fn kv_roundtrip_short_key() {
        let mut mem = SimMemory::new();
        let (_, meta) = allocate_table(&mut mem, 8, 13);
        let k = FlowKey::synthetic(7, 13);
        meta.write_kv(&mut mem, 9, &k, 0xDEAD);
        assert_eq!(meta.read_kv_key(&mem, 9), k);
        assert_eq!(meta.read_kv_value(&mem, 9), 0xDEAD);
    }

    #[test]
    fn kv_roundtrip_long_key_uses_two_lines() {
        let mut mem = SimMemory::new();
        let (_, meta) = allocate_table(&mut mem, 8, 64);
        assert_eq!(meta.kv_slot, 128);
        let k = FlowKey::synthetic(1234, 64);
        meta.write_kv(&mut mem, 3, &k, 55);
        assert_eq!(meta.read_kv_key(&mem, 3), k);
        assert_eq!(meta.read_kv_value(&mem, 3), 55);
    }

    #[test]
    fn footprint_accounts_all_arrays() {
        let mut mem = SimMemory::new();
        let (_, meta) = allocate_table(&mut mem, 1024, 13);
        // 64 + 1024*64 + 8192*64
        assert_eq!(meta.footprint(), 64 + 65536 + 524_288);
    }
}
