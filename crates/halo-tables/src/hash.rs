//! Hash functions used by the flow tables and by the HALO hash unit.
//!
//! The accelerator's hash unit (Fig. 6) is built from multiply, shift,
//! and XOR stages; we use the same primitive mix so the software and
//! hardware paths compute identical values.

use crate::key::FlowKey;

/// A 64-bit key hash parameterized by a seed (distinct seeds give the
/// two independent cuckoo hash functions).
#[must_use]
pub fn hash_key(key: &FlowKey, seed: u64) -> u64 {
    let mut h = seed ^ 0x51_7C_C1_B7_27_22_0A_95;
    for chunk in key.as_bytes().chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        let v = u64::from_le_bytes(buf);
        // MUL / XOR / shift stages, mirroring the hash-unit datapath.
        h ^= v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = h.rotate_left(27).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        h ^= h >> 29;
    }
    h ^= key.len() as u64;
    h ^= h >> 32;
    h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    h ^ (h >> 32)
}

/// Seeds for the primary and alternative cuckoo hash functions.
pub const SEED_PRIMARY: u64 = 0x5EED_0001;
/// Seed of the secondary (alternative-bucket) hash function.
pub const SEED_SECONDARY: u64 = 0x5EED_0002;

/// The 16-bit signature stored in a bucket entry (derived from the
/// primary hash, as in DPDK `rte_hash`). Never zero: zero marks an empty
/// entry slot.
#[must_use]
pub fn signature(primary_hash: u64) -> u16 {
    let s = (primary_hash >> 48) as u16;
    if s == 0 {
        1
    } else {
        s
    }
}

/// Bucket index pair for a key under cuckoo hashing with `buckets`
/// buckets (power of two).
#[must_use]
pub fn bucket_pair(key: &FlowKey, buckets: u64) -> (u64, u64) {
    debug_assert!(buckets.is_power_of_two());
    let h1 = hash_key(key, SEED_PRIMARY);
    let b1 = h1 & (buckets - 1);
    // DPDK derives the alternative index from the signature; we use an
    // independent hash for better spread, same contract: alt(alt(x)) == x
    // is not required, only that both indexes are recoverable from the key.
    let h2 = hash_key(key, SEED_SECONDARY);
    let mut b2 = h2 & (buckets - 1);
    if b2 == b1 {
        b2 = (b1 + 1) & (buckets - 1);
    }
    (b1, b2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let k = FlowKey::synthetic(42, 13);
        assert_eq!(hash_key(&k, 1), hash_key(&k, 1));
        assert_ne!(hash_key(&k, 1), hash_key(&k, 2));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        for id in 0..50_000u64 {
            set.insert(hash_key(&FlowKey::synthetic(id, 13), SEED_PRIMARY));
        }
        assert!(set.len() > 49_990, "too many 64-bit collisions");
    }

    #[test]
    fn signature_never_zero() {
        for h in [0u64, 1, u64::MAX, 0x0000_FFFF_FFFF_FFFF] {
            assert_ne!(signature(h), 0);
        }
    }

    #[test]
    fn bucket_pair_distinct_and_bounded() {
        for id in 0..10_000u64 {
            let k = FlowKey::synthetic(id, 13);
            let (b1, b2) = bucket_pair(&k, 1024);
            assert!(b1 < 1024 && b2 < 1024);
            assert_ne!(b1, b2);
        }
    }

    #[test]
    fn buckets_spread_uniformly() {
        let n = 64u64;
        let mut counts = vec![0u32; n as usize];
        for id in 0..64_000u64 {
            let (b1, _) = bucket_pair(&FlowKey::synthetic(id, 13), n);
            counts[b1 as usize] += 1;
        }
        for &c in &counts {
            assert!((600..1500).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn key_length_affects_hash() {
        let a = FlowKey::from_bytes(&[1, 2, 3, 0]);
        let b = FlowKey::from_bytes(&[1, 2, 3]);
        assert_ne!(hash_key(&a, SEED_PRIMARY), hash_key(&b, SEED_PRIMARY));
    }
}
