//! EMOMA (Pontarelli, Reviriego, Mitzenmacher: "EMOMA: Exact Match in
//! One Memory Access"): a cuckoo hash table steered by an **on-chip
//! counting Bloom filter** so that every lookup — hit or miss — reads
//! exactly one bucket line from memory.
//!
//! The trick: maintain the invariant that a key stored in its
//! *secondary* bucket is always CBF-positive and a key stored in its
//! *primary* bucket is always CBF-negative. A lookup then queries the
//! filter (small enough to live in SRAM next to the core, so it costs
//! compute but **no** memory access) and probes only the bucket the
//! filter selects. False positives never produce wrong results — they
//! only steer an absent key's probe to its secondary bucket, which
//! misses there just the same.
//!
//! Keeping the invariant is the hard part, and is where the
//! *displacement bookkeeping* lives:
//!
//! * storing a key in its secondary bucket increments its filter
//!   counters; any counter crossing 0→1 can flip other primary-resident
//!   keys to CBF-positive, and those must be **cascade-relocated** to
//!   their secondary buckets (the table tracks primary residents per
//!   counter to find them);
//! * removing a secondary-resident key decrements its counters — never
//!   below zero, because counting (not bit-setting) makes each
//!   resident's contribution explicit;
//! * a failed insert rolls the whole cascade back through an undo log,
//!   so the table is never left mid-displacement.
//!
//! The structure mirrors [`CuckooTable`](crate::CuckooTable) in memory
//! (same DPDK bucket/kv layout, so HALO's accelerator dispatch works
//! unchanged); only the steering filter and its control-plane shadow
//! state are new.

use crate::cuckoo::TableFullError;
use crate::hash::{bucket_pair, hash_key, signature, SEED_PRIMARY};
use crate::key::FlowKey;
use crate::layout::{allocate_table, TableMeta, ENTRIES_PER_BUCKET};
use crate::trace::{LookupTrace, TraceStep};
use halo_mem::{Addr, SimMemory};

/// Seeds of the two counting-Bloom-filter hash functions.
const CBF_SEED_A: u64 = 0x5EED_00CB;
const CBF_SEED_B: u64 = 0x5EED_00CC;

/// On-chip filter counters per bucket (the paper sizes the CBF at a few
/// bits per table entry; 32 u16 counters per 8-entry bucket keeps the
/// false-positive — and therefore cascade — rate low).
const CBF_PER_BUCKET: usize = 32;

/// Relocation budget per mutating operation: every cascade step (one
/// key displaced to its secondary bucket) consumes one unit; exhausting
/// the budget fails the insert, which then rolls back cleanly.
const MAX_CASCADE_STEPS: usize = 128;

/// Slot residency values tracked in the control-plane shadow array.
const RES_FREE: u8 = 0;
const RES_PRIMARY: u8 = 1;
const RES_SECONDARY: u8 = 2;

/// One reversible effect of an in-progress insert/displacement, kept in
/// an undo log so a failed cascade restores the exact prior state.
#[derive(Debug, Clone, Copy)]
enum Undo {
    /// A bucket entry was overwritten; holds the previous contents.
    Entry {
        b: u64,
        e: usize,
        sig: u16,
        idx: u32,
    },
    /// A CBF counter was incremented.
    CbfInc { i: usize },
    /// `slot` was appended to `tracked[i]`.
    TrackAdd { i: usize, slot: u32 },
    /// One occurrence of `slot` was removed from `tracked[i]`.
    TrackRemove { i: usize, slot: u32 },
    /// A slot's residency changed; holds the previous value.
    Residency { slot: u32, prev: u8 },
    /// A kv slot was claimed from the free list.
    Claim { slot: u32 },
}

/// A two-phase EMOMA relocation between `begin` and `commit`/`abort`.
///
/// As with [`PendingMove`](crate::PendingMove), the entry is *copied*
/// to the destination bucket first and the steering filter is adjusted
/// at `begin`, so the (single!) bucket the filter steers lookups to
/// always holds the key. Only lookups may run while a move is pending.
#[derive(Debug, Clone, Copy)]
#[must_use = "a pending move must be committed or aborted"]
pub struct EmomaPendingMove {
    src: (u64, usize),
    dst: (u64, usize),
    slot: u32,
    /// Direction: `true` for primary→secondary.
    to_secondary: bool,
}

/// A counting-Bloom-filter-steered cuckoo hash table (EMOMA).
///
/// # Examples
///
/// ```
/// use halo_mem::SimMemory;
/// use halo_tables::{EmomaTable, FlowKey, TraceStep};
///
/// let mut mem = SimMemory::new();
/// let mut t = EmomaTable::create(&mut mem, 1024, 13);
/// let k = FlowKey::synthetic(1, 13);
/// t.insert(&mut mem, &k, 0xAB).unwrap();
/// let tr = t.lookup_traced(&mut mem, &k, false);
/// assert_eq!(tr.result, Some(0xAB));
/// // Exactly ONE bucket line is read — the EMOMA property.
/// let loads = tr.steps.iter().filter(|s| matches!(s, TraceStep::LoadBucket(_))).count();
/// assert_eq!(loads, 1);
/// ```
#[derive(Debug)]
pub struct EmomaTable {
    meta_addr: Addr,
    meta: TableMeta,
    /// Optimistic-lock version counter line (software locking model).
    version_addr: Addr,
    free: Vec<u32>,
    len: usize,
    /// The on-chip counting Bloom filter. Deliberately **not** placed
    /// in simulated memory: the paper's point is that the filter is
    /// small enough for SRAM, so querying it costs no memory access.
    cbf: Vec<u16>,
    /// Control plane: kv slots of *primary*-resident keys, per CBF
    /// counter they hash to — the candidates that must be re-checked
    /// (and possibly cascade-relocated) when that counter crosses 0→1.
    tracked: Vec<Vec<u32>>,
    /// Control plane: residency of each kv slot (free/primary/secondary).
    residency: Vec<u8>,
    moves_in_flight: usize,
}

impl EmomaTable {
    /// Creates a table with `buckets` buckets (power of two) for
    /// `key_len`-byte keys. Capacity is `buckets * 8` entries.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is not a power of two or `key_len` is out of
    /// range.
    pub fn create(mem: &mut SimMemory, buckets: u64, key_len: usize) -> Self {
        let (meta_addr, meta) = allocate_table(mem, buckets, key_len);
        let version_addr = mem.alloc_lines(64);
        let slots = (buckets as usize) * ENTRIES_PER_BUCKET;
        let free = (0..slots as u32).rev().collect();
        let cbf_len = (buckets as usize) * CBF_PER_BUCKET;
        EmomaTable {
            meta_addr,
            meta,
            version_addr,
            free,
            len: 0,
            cbf: vec![0; cbf_len],
            tracked: vec![Vec::new(); cbf_len],
            residency: vec![RES_FREE; slots],
            moves_in_flight: 0,
        }
    }

    /// Sizes a table for `flows` entries at `occupancy` and creates it.
    ///
    /// # Panics
    ///
    /// Panics if `occupancy` is not in `(0, 1]`.
    pub fn with_capacity_for(
        mem: &mut SimMemory,
        flows: usize,
        occupancy: f64,
        key_len: usize,
    ) -> Self {
        assert!(occupancy > 0.0 && occupancy <= 1.0);
        let slots_needed = (flows as f64 / occupancy).ceil() as u64;
        let buckets = (slots_needed / ENTRIES_PER_BUCKET as u64)
            .max(1)
            .next_power_of_two();
        EmomaTable::create(mem, buckets, key_len)
    }

    /// The table's metadata-line address.
    #[must_use]
    pub fn meta_addr(&self) -> Addr {
        self.meta_addr
    }

    /// The table layout.
    #[must_use]
    pub fn meta(&self) -> &TableMeta {
        &self.meta
    }

    /// Address of the optimistic-lock version counter.
    #[must_use]
    pub fn version_addr(&self) -> Addr {
        self.version_addr
    }

    /// Number of installed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total entry capacity (`buckets * 8`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.meta.buckets as usize * ENTRIES_PER_BUCKET
    }

    /// Current occupancy in `[0, 1]`.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    /// Number of unclaimed key-value slots (`len + free_slots ==
    /// capacity` is an audited invariant).
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Two-phase moves currently between `begin` and `commit`/`abort`.
    #[must_use]
    pub fn moves_in_flight(&self) -> usize {
        self.moves_in_flight
    }

    /// The key's two counting-Bloom-filter counter indices (equal
    /// indices are possible and handled consistently on both the
    /// increment and decrement side).
    #[must_use]
    pub fn cbf_indices(&self, key: &FlowKey) -> [usize; 2] {
        let mask = self.cbf.len() - 1;
        [
            (hash_key(key, CBF_SEED_A) as usize) & mask,
            (hash_key(key, CBF_SEED_B) as usize) & mask,
        ]
    }

    /// Whether the filter steers this key to its secondary bucket
    /// (all of its counters nonzero).
    #[must_use]
    pub fn cbf_positive(&self, key: &FlowKey) -> bool {
        self.cbf_indices(key).iter().all(|&i| self.cbf[i] > 0)
    }

    /// Read-only view of the filter counters (for the invariant
    /// auditor and the displacement-storm tests).
    #[must_use]
    pub fn cbf_counters(&self) -> &[u16] {
        &self.cbf
    }

    /// Residency of kv slot `slot`: 0 free, 1 primary bucket, 2
    /// secondary bucket (audit hook; mirrors what a bucket scan would
    /// derive).
    #[must_use]
    pub fn slot_residency(&self, slot: u32) -> u8 {
        self.residency[slot as usize]
    }

    /// Primary-resident kv slots tracked under CBF counter `i` (audit
    /// hook; each slot appears once per index that maps to `i`).
    #[must_use]
    pub fn tracked_slots(&self, i: usize) -> &[u32] {
        &self.tracked[i]
    }

    fn check_key(&self, key: &FlowKey) {
        assert_eq!(key.len(), self.meta.key_len as usize, "key length mismatch");
    }

    fn bump_version(&self, mem: &mut SimMemory) {
        let v = mem.read_u64(self.version_addr);
        mem.write_u64(self.version_addr, v.wrapping_add(1));
    }

    /// Bucket the filter steers this key's single probe to.
    fn steer(&self, key: &FlowKey) -> u64 {
        let (b1, b2) = bucket_pair(key, self.meta.buckets);
        if self.cbf_positive(key) {
            b2
        } else {
            b1
        }
    }

    fn free_entry(&self, mem: &mut SimMemory, b: u64) -> Option<usize> {
        (0..ENTRIES_PER_BUCKET).find(|&e| self.meta.read_entry(mem, b, e).0 == 0)
    }

    // ---- logged primitive mutations -------------------------------

    fn set_entry(
        &mut self,
        mem: &mut SimMemory,
        b: u64,
        e: usize,
        sig: u16,
        idx: u32,
        ops: &mut Vec<Undo>,
    ) {
        let (ps, pi) = self.meta.read_entry(mem, b, e);
        ops.push(Undo::Entry {
            b,
            e,
            sig: ps,
            idx: pi,
        });
        self.meta.write_entry(mem, b, e, sig, idx);
    }

    fn clear_entry_logged(&mut self, mem: &mut SimMemory, b: u64, e: usize, ops: &mut Vec<Undo>) {
        let (ps, pi) = self.meta.read_entry(mem, b, e);
        ops.push(Undo::Entry {
            b,
            e,
            sig: ps,
            idx: pi,
        });
        self.meta.clear_entry(mem, b, e);
    }

    fn set_residency(&mut self, slot: u32, r: u8, ops: &mut Vec<Undo>) {
        ops.push(Undo::Residency {
            slot,
            prev: self.residency[slot as usize],
        });
        self.residency[slot as usize] = r;
    }

    fn track_add(&mut self, key: &FlowKey, slot: u32, ops: &mut Vec<Undo>) {
        for i in self.cbf_indices(key) {
            self.tracked[i].push(slot);
            ops.push(Undo::TrackAdd { i, slot });
        }
    }

    fn track_remove(&mut self, key: &FlowKey, slot: u32, ops: &mut Vec<Undo>) {
        for i in self.cbf_indices(key) {
            let pos = self.tracked[i]
                .iter()
                .rposition(|&s| s == slot)
                .expect("tracked entry present for primary-resident key");
            self.tracked[i].remove(pos);
            ops.push(Undo::TrackRemove { i, slot });
        }
    }

    /// Undoes every op past `mark`, newest first.
    fn rollback_to(&mut self, mem: &mut SimMemory, ops: &mut Vec<Undo>, mark: usize) {
        while ops.len() > mark {
            match ops.pop().expect("ops non-empty above mark") {
                Undo::Entry { b, e, sig, idx } => self.meta.write_entry(mem, b, e, sig, idx),
                Undo::CbfInc { i } => {
                    debug_assert!(self.cbf[i] > 0);
                    self.cbf[i] -= 1;
                }
                Undo::TrackAdd { i, slot } => {
                    let pos = self.tracked[i]
                        .iter()
                        .rposition(|&s| s == slot)
                        .expect("undoing a recorded track add");
                    self.tracked[i].remove(pos);
                }
                Undo::TrackRemove { i, slot } => self.tracked[i].push(slot),
                Undo::Residency { slot, prev } => self.residency[slot as usize] = prev,
                Undo::Claim { slot } => {
                    self.meta.clear_kv(mem, slot);
                    self.free.push(slot);
                }
            }
        }
    }

    // ---- displacement machinery -----------------------------------

    /// Raises the filter for `key` (its displacement into the secondary
    /// bucket), then cascade-relocates every primary-resident key a
    /// 0→1 counter transition flipped to CBF-positive.
    fn cbf_raise(
        &mut self,
        mem: &mut SimMemory,
        key: &FlowKey,
        ops: &mut Vec<Undo>,
        budget: &mut usize,
    ) -> Result<(), TableFullError> {
        let mut newly_hot = Vec::new();
        for i in self.cbf_indices(key) {
            if self.cbf[i] == 0 {
                newly_hot.push(i);
            }
            assert!(self.cbf[i] < u16::MAX, "CBF counter overflow");
            self.cbf[i] += 1;
            ops.push(Undo::CbfInc { i });
        }
        for i in newly_hot {
            // Snapshot: relocations mutate tracked[i] while we scan.
            let candidates: Vec<u32> = self.tracked[i].clone();
            for slot in candidates {
                if self.residency[slot as usize] != RES_PRIMARY {
                    continue; // already cascaded away (or removed twin)
                }
                let k = self.meta.read_kv_key(mem, slot);
                if self.cbf_positive(&k) {
                    self.displace_to_secondary(mem, slot, ops, budget)?;
                }
            }
        }
        Ok(())
    }

    /// Lowers the filter for `key` (it no longer lives in its secondary
    /// bucket). Decrements never need fixups: a counter dropping to
    /// zero can only flip *primary*-resident keys to negative — the
    /// steering they already need — while every secondary-resident
    /// key's counters stay positive through its own contribution.
    fn cbf_lower(&mut self, key: &FlowKey) {
        for i in self.cbf_indices(key) {
            assert!(self.cbf[i] > 0, "CBF counter underflow");
            self.cbf[i] -= 1;
        }
    }

    /// Raw re-increment used when rolling back a tentative
    /// [`cbf_lower`] — restores the exact prior counters, so no 0→1
    /// fixups can be needed.
    fn cbf_raise_raw(&mut self, key: &FlowKey) {
        for i in self.cbf_indices(key) {
            assert!(self.cbf[i] < u16::MAX, "CBF counter overflow");
            self.cbf[i] += 1;
        }
    }

    /// Relocates the primary-resident key in kv `slot` to its secondary
    /// bucket (duplicate-then-delete), raising the filter and cascading
    /// further relocations as needed.
    fn displace_to_secondary(
        &mut self,
        mem: &mut SimMemory,
        slot: u32,
        ops: &mut Vec<Undo>,
        budget: &mut usize,
    ) -> Result<(), TableFullError> {
        if *budget == 0 {
            return Err(TableFullError);
        }
        *budget -= 1;
        let key = self.meta.read_kv_key(mem, slot);
        let (k1, k2) = bucket_pair(&key, self.meta.buckets);
        let e1 = (0..ENTRIES_PER_BUCKET)
            .find(|&e| {
                self.meta.read_entry(mem, k1, e).1 == slot && {
                    self.meta.read_entry(mem, k1, e).0 != 0
                }
            })
            .expect("primary-resident slot has a primary bucket entry");
        self.make_room(mem, k2, ops, budget)?;
        let e2 = self
            .free_entry(mem, k2)
            .expect("make_room produced a free entry");
        let (sig, _) = self.meta.read_entry(mem, k1, e1);
        self.set_entry(mem, k2, e2, sig, slot, ops);
        self.clear_entry_logged(mem, k1, e1, ops);
        self.set_residency(slot, RES_SECONDARY, ops);
        self.track_remove(&key, slot, ops);
        self.cbf_raise(mem, &key, ops, budget)
    }

    /// Ensures bucket `b` has a free entry, relocating one of its
    /// primary-resident keys to its secondary bucket if necessary.
    /// Each candidate attempt is scoped: a failed cascade is rolled
    /// back before the next candidate is tried.
    fn make_room(
        &mut self,
        mem: &mut SimMemory,
        b: u64,
        ops: &mut Vec<Undo>,
        budget: &mut usize,
    ) -> Result<(), TableFullError> {
        if self.free_entry(mem, b).is_some() {
            return Ok(());
        }
        for e in 0..ENTRIES_PER_BUCKET {
            let (s, idx) = self.meta.read_entry(mem, b, e);
            if s == 0 || self.residency[idx as usize] != RES_PRIMARY {
                continue;
            }
            let mark = ops.len();
            match self.displace_to_secondary(mem, idx, ops, budget) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    self.rollback_to(mem, ops, mark);
                    if *budget == 0 {
                        return Err(e);
                    }
                }
            }
        }
        Err(TableFullError)
    }

    // ---- public operations ----------------------------------------

    /// Inserts or updates `key -> value`.
    ///
    /// # Errors
    ///
    /// Returns [`TableFullError`] when no placement satisfying the
    /// steering invariant exists within the cascade budget. The insert
    /// itself is rolled back completely; relocations attempted by
    /// nested scopes may persist, but every one of them leaves the
    /// table fully consistent (keys findable, filter exact).
    pub fn insert(
        &mut self,
        mem: &mut SimMemory,
        key: &FlowKey,
        value: u64,
    ) -> Result<(), TableFullError> {
        self.check_key(key);
        let sig = signature(hash_key(key, SEED_PRIMARY));
        // Update in place if present: the steering invariant makes the
        // steered bucket the only place the key can live.
        let b = self.steer(key);
        for e in 0..ENTRIES_PER_BUCKET {
            let (s, idx) = self.meta.read_entry(mem, b, e);
            if s == sig && self.meta.read_kv_key(mem, idx) == *key {
                self.meta.write_kv_value(mem, idx, value);
                return Ok(());
            }
        }

        let mut ops = Vec::new();
        let mut budget = MAX_CASCADE_STEPS;
        match self.insert_new(mem, key, value, sig, &mut ops, &mut budget) {
            Ok(()) => {
                self.len += 1;
                self.bump_version(mem);
                Ok(())
            }
            Err(e) => {
                self.rollback_to(mem, &mut ops, 0);
                Err(e)
            }
        }
    }

    fn insert_new(
        &mut self,
        mem: &mut SimMemory,
        key: &FlowKey,
        value: u64,
        sig: u16,
        ops: &mut Vec<Undo>,
        budget: &mut usize,
    ) -> Result<(), TableFullError> {
        let (b1, b2) = bucket_pair(key, self.meta.buckets);
        let Some(slot) = self.free.pop() else {
            return Err(TableFullError);
        };
        ops.push(Undo::Claim { slot });
        self.meta.write_kv(mem, slot, key, value);

        // Preferred placement: the primary bucket, iff the key is
        // CBF-negative (keeping the filter cold keeps future cascades
        // rare). Try to open a primary slot by relocating one of its
        // residents; that can flip our key positive, in which case we
        // fall through to the secondary path.
        if !self.cbf_positive(key) {
            let mark = ops.len();
            let roomed =
                self.free_entry(mem, b1).is_some() || self.make_room(mem, b1, ops, budget).is_ok();
            if roomed && !self.cbf_positive(key) {
                let e = self
                    .free_entry(mem, b1)
                    .expect("primary bucket has a free entry");
                self.set_entry(mem, b1, e, sig, slot, ops);
                self.set_residency(slot, RES_PRIMARY, ops);
                self.track_add(key, slot, ops);
                return Ok(());
            }
            if !roomed {
                self.rollback_to(mem, ops, mark);
            }
        }

        // Secondary placement: room in b2, then raise the filter (with
        // its cascade of fixups) so the steering finds the key there.
        self.make_room(mem, b2, ops, budget)?;
        let e = self
            .free_entry(mem, b2)
            .expect("make_room produced a free entry");
        self.set_entry(mem, b2, e, sig, slot, ops);
        self.set_residency(slot, RES_SECONDARY, ops);
        self.cbf_raise(mem, key, ops, budget)
    }

    /// Functional lookup.
    #[must_use]
    pub fn lookup(&self, mem: &SimMemory, key: &FlowKey) -> Option<u64> {
        self.lookup_traced(mem, key, false).result
    }

    /// Lookup recording the ordered memory/compute steps taken: one
    /// extra `Hash` compute step for the on-chip filter query, then
    /// exactly **one** `LoadBucket` — the bucket the filter steers to.
    #[must_use]
    pub fn lookup_traced(
        &self,
        mem: &SimMemory,
        key: &FlowKey,
        software_locking: bool,
    ) -> LookupTrace {
        self.check_key(key);
        let mut steps = Vec::with_capacity(10);
        steps.push(TraceStep::LoadMeta(self.meta_addr));
        if software_locking {
            steps.push(TraceStep::SoftLock(self.version_addr));
        }
        steps.push(TraceStep::Hash);
        // The CBF query: two more hash computations against SRAM-held
        // counters — compute cost, no memory step.
        steps.push(TraceStep::Hash);
        let sig = signature(hash_key(key, SEED_PRIMARY));
        let b = self.steer(key);

        let mut result = None;
        steps.push(TraceStep::LoadBucket(self.meta.bucket_addr(b)));
        steps.push(TraceStep::CompareSigs);
        for e in 0..ENTRIES_PER_BUCKET {
            let (s, idx) = self.meta.read_entry(mem, b, e);
            if s == sig {
                let kv = self.meta.kv_addr(idx);
                steps.push(TraceStep::LoadKv(kv));
                if self.meta.kv_slot > 64 {
                    steps.push(TraceStep::LoadKv(kv + 64));
                }
                steps.push(TraceStep::CompareKey);
                if self.meta.read_kv_key(mem, idx) == *key {
                    result = Some(self.meta.read_kv_value(mem, idx));
                    break;
                }
            }
        }
        if software_locking {
            steps.push(TraceStep::SoftLock(self.version_addr));
        }
        LookupTrace { result, steps }
    }

    /// Removes `key`, returning its value if present. A removal from
    /// the secondary bucket decrements the key's filter counters
    /// (asserting they never underflow); a removal from the primary
    /// bucket drops the slot from the cascade-tracking lists.
    pub fn remove(&mut self, mem: &mut SimMemory, key: &FlowKey) -> Option<u64> {
        self.check_key(key);
        let sig = signature(hash_key(key, SEED_PRIMARY));
        let b = self.steer(key);
        for e in 0..ENTRIES_PER_BUCKET {
            let (s, idx) = self.meta.read_entry(mem, b, e);
            if s == sig && self.meta.read_kv_key(mem, idx) == *key {
                let v = self.meta.read_kv_value(mem, idx);
                self.meta.clear_entry(mem, b, e);
                self.meta.clear_kv(mem, idx);
                match self.residency[idx as usize] {
                    RES_SECONDARY => self.cbf_lower(key),
                    RES_PRIMARY => {
                        let mut scratch = Vec::new();
                        self.track_remove(key, idx, &mut scratch);
                    }
                    r => panic!("removing a slot with residency {r}"),
                }
                self.residency[idx as usize] = RES_FREE;
                self.free.push(idx);
                self.len -= 1;
                self.bump_version(mem);
                return Some(v);
            }
        }
        None
    }

    /// One-shot displacement of `key` to its other bucket (two-phase
    /// `begin` + `commit`). Returns `true` on success; `false` when the
    /// key is absent, the target bucket is full, or — for a
    /// secondary→primary move — other keys keep its filter counters
    /// positive, which would strand it if it moved home.
    pub fn displace(&mut self, mem: &mut SimMemory, key: &FlowKey) -> bool {
        match self.move_begin(mem, key) {
            Some(mv) => {
                self.move_commit(mem, mv);
                true
            }
            None => false,
        }
    }

    /// Starts a two-phase move of `key` to its other bucket, adjusting
    /// the steering filter at `begin` so the steered probe finds the
    /// destination copy throughout the window. Returns `None` when the
    /// move is impossible (absent key, full target bucket, steering
    /// would strand the key, or the fixup cascade failed).
    pub fn move_begin(&mut self, mem: &mut SimMemory, key: &FlowKey) -> Option<EmomaPendingMove> {
        self.check_key(key);
        let sig = signature(hash_key(key, SEED_PRIMARY));
        let (b1, b2) = bucket_pair(key, self.meta.buckets);
        let b = self.steer(key);
        let found = (0..ENTRIES_PER_BUCKET).find(|&e| {
            let (s, idx) = self.meta.read_entry(mem, b, e);
            s == sig && self.meta.read_kv_key(mem, idx) == *key
        })?;
        let (_, slot) = self.meta.read_entry(mem, b, found);

        if self.residency[slot as usize] == RES_PRIMARY {
            // primary→secondary: copy out, raise the filter (cascading
            // fixups run inside the begin, scoped so failure undoes
            // everything and refuses the move).
            let ae = self.free_entry(mem, b2)?;
            let mut ops = Vec::new();
            let mut budget = MAX_CASCADE_STEPS;
            self.set_entry(mem, b2, ae, sig, slot, &mut ops);
            self.set_residency(slot, RES_SECONDARY, &mut ops);
            self.track_remove(key, slot, &mut ops);
            if self.cbf_raise(mem, key, &mut ops, &mut budget).is_err() {
                self.rollback_to(mem, &mut ops, 0);
                return None;
            }
            self.moves_in_flight += 1;
            Some(EmomaPendingMove {
                src: (b1, found),
                dst: (b2, ae),
                slot,
                to_secondary: true,
            })
        } else {
            // secondary→primary: only possible if lowering our own
            // contribution turns the filter negative (otherwise the
            // steering would keep reading b2 after the move — the key
            // would be stranded).
            self.cbf_lower(key);
            if self.cbf_positive(key) {
                self.cbf_raise_raw(key);
                return None;
            }
            let Some(ae) = self.free_entry(mem, b1) else {
                self.cbf_raise_raw(key);
                return None;
            };
            self.meta.write_entry(mem, b1, ae, sig, slot);
            self.residency[slot as usize] = RES_PRIMARY;
            let mut scratch = Vec::new();
            self.track_add(key, slot, &mut scratch);
            self.moves_in_flight += 1;
            Some(EmomaPendingMove {
                src: (b2, found),
                dst: (b1, ae),
                slot,
                to_secondary: false,
            })
        }
    }

    /// Completes a two-phase move: clears the source entry (the filter
    /// and control-plane state already reflect the destination).
    pub fn move_commit(&mut self, mem: &mut SimMemory, mv: EmomaPendingMove) {
        self.meta.clear_entry(mem, mv.src.0, mv.src.1);
        self.bump_version(mem);
        self.moves_in_flight -= 1;
    }

    /// Rolls a two-phase move back: clears the destination copy and
    /// reverses the steering adjustments. If fixup relocations during a
    /// primary→secondary `begin` left the key's counters positive,
    /// restoring it to the primary bucket would strand it — the abort
    /// then *completes* the move instead (the key stays findable in its
    /// secondary bucket; the table remains fully consistent either
    /// way). Valid only if no inserts/removes ran during the window,
    /// the same exclusion the hardware lock bit provides.
    pub fn move_abort(&mut self, mem: &mut SimMemory, mv: EmomaPendingMove) {
        let key = self.meta.read_kv_key(mem, mv.slot);
        if mv.to_secondary {
            self.cbf_lower(&key);
            if self.cbf_positive(&key) {
                // Other contributions keep the steering on b2: finish
                // the move rather than strand the key in b1.
                self.cbf_raise_raw(&key);
                self.meta.clear_entry(mem, mv.src.0, mv.src.1);
                self.bump_version(mem);
                self.moves_in_flight -= 1;
                return;
            }
            self.meta.clear_entry(mem, mv.dst.0, mv.dst.1);
            self.residency[mv.slot as usize] = RES_PRIMARY;
            let mut scratch = Vec::new();
            self.track_add(&key, mv.slot, &mut scratch);
        } else {
            self.meta.clear_entry(mem, mv.dst.0, mv.dst.1);
            self.residency[mv.slot as usize] = RES_SECONDARY;
            let mut scratch = Vec::new();
            self.track_remove(&key, mv.slot, &mut scratch);
            self.cbf_raise_raw(&key);
        }
        self.moves_in_flight -= 1;
    }

    /// All addresses of lines an ideal prefetcher would warm: metadata,
    /// every bucket line, every kv line. The CBF is on-chip and has no
    /// memory lines.
    pub fn all_lines(&self) -> impl Iterator<Item = Addr> + '_ {
        let meta = self.meta_addr;
        let version = self.version_addr;
        let buckets = (0..self.meta.buckets).map(move |b| self.meta.bucket_addr(b));
        let kv_lines = self.meta.buckets * ENTRIES_PER_BUCKET as u64 * u64::from(self.meta.kv_slot)
            / halo_mem::CACHE_LINE;
        let kv = (0..kv_lines).map(move |i| self.meta.kv_base + i * halo_mem::CACHE_LINE);
        [meta, version].into_iter().chain(buckets).chain(kv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(buckets: u64) -> (SimMemory, EmomaTable) {
        let mut mem = SimMemory::new();
        let t = EmomaTable::create(&mut mem, buckets, 13);
        (mem, t)
    }

    fn bucket_loads(tr: &LookupTrace) -> usize {
        tr.steps
            .iter()
            .filter(|s| matches!(s, TraceStep::LoadBucket(_)))
            .count()
    }

    /// Recomputes the expected CBF from the table's residency state and
    /// cross-checks every counter (the control-plane ground truth the
    /// halo-check auditor also verifies).
    fn check_filter_exact(t: &EmomaTable, mem: &mut SimMemory) {
        let mut expect = vec![0u16; t.cbf_counters().len()];
        for b in 0..t.meta().buckets {
            for e in 0..ENTRIES_PER_BUCKET {
                let (s, idx) = t.meta().read_entry(mem, b, e);
                if s != 0 && t.slot_residency(idx) == RES_SECONDARY {
                    let k = t.meta().read_kv_key(mem, idx);
                    for i in t.cbf_indices(&k) {
                        expect[i] += 1;
                    }
                }
            }
        }
        assert_eq!(t.cbf_counters(), &expect[..], "CBF diverged from contents");
    }

    #[test]
    fn insert_lookup_remove() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        assert_eq!(t.lookup(&mem, &k), None);
        t.insert(&mut mem, &k, 99).unwrap();
        assert_eq!(t.lookup(&mem, &k), Some(99));
        assert_eq!(t.remove(&mut mem, &k), Some(99));
        assert_eq!(t.lookup(&mem, &k), None);
        assert!(t.is_empty());
        check_filter_exact(&t, &mut mem);
    }

    /// The headline property: EVERY lookup — hit, miss, displaced key —
    /// loads exactly one bucket line.
    #[test]
    fn every_lookup_is_one_bucket_access() {
        let (mut mem, mut t) = setup(64); // 512 slots
        for id in 0..400u64 {
            t.insert(&mut mem, &FlowKey::synthetic(id, 13), id).unwrap();
        }
        for id in 0..400u64 {
            let tr = t.lookup_traced(&mem, &FlowKey::synthetic(id, 13), false);
            assert_eq!(tr.result, Some(id), "lost key {id}");
            assert_eq!(
                bucket_loads(&tr),
                1,
                "hit took {} probes",
                bucket_loads(&tr)
            );
        }
        for id in 1000..1200u64 {
            let tr = t.lookup_traced(&mem, &FlowKey::synthetic(id, 13), false);
            assert_eq!(tr.result, None);
            assert_eq!(
                bucket_loads(&tr),
                1,
                "miss took {} probes",
                bucket_loads(&tr)
            );
        }
        check_filter_exact(&t, &mut mem);
    }

    #[test]
    fn update_in_place() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        t.insert(&mut mem, &k, 1).unwrap();
        t.insert(&mut mem, &k, 2).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&mem, &k), Some(2));
    }

    #[test]
    fn fills_to_reasonable_occupancy() {
        let (mut mem, mut t) = setup(128); // 1024 slots
        let mut stored = Vec::new();
        for id in 0..1024u64 {
            if t.insert(&mut mem, &FlowKey::synthetic(id, 13), id).is_ok() {
                stored.push(id);
            }
        }
        // EMOMA trades some fill capability for single-access lookups
        // (the steering invariant constrains placement); the paper still
        // reaches high occupancy and so must we.
        assert!(stored.len() >= 768, "fill degraded: {}/1024", stored.len());
        for &id in &stored {
            let tr = t.lookup_traced(&mem, &FlowKey::synthetic(id, 13), false);
            assert_eq!(tr.result, Some(id), "lost key {id}");
            assert_eq!(bucket_loads(&tr), 1);
        }
        check_filter_exact(&t, &mut mem);
        assert_eq!(t.len() + t.free_slots(), t.capacity());
    }

    #[test]
    fn failed_insert_rolls_back_cleanly() {
        let (mut mem, mut t) = setup(2); // 16 slots
        let mut stored = Vec::new();
        let mut failures = 0;
        for id in 0..64u64 {
            let k = FlowKey::synthetic(id, 13);
            if t.insert(&mut mem, &k, id).is_ok() {
                stored.push((k, id));
            } else {
                failures += 1;
                assert_eq!(t.lookup(&mem, &k), None, "failed insert left the key");
            }
        }
        assert!(failures > 0, "tiny table never filled");
        for (k, v) in &stored {
            assert_eq!(t.lookup(&mem, k), Some(*v));
        }
        assert_eq!(t.len(), stored.len());
        assert_eq!(t.len() + t.free_slots(), t.capacity());
        check_filter_exact(&t, &mut mem);
    }

    /// Satellite regression: a forced displacement storm — keys shoved
    /// to their secondary buckets and back, interleaved with
    /// remove/re-insert churn — must never underflow a CBF counter
    /// (the decrements assert) nor strand a key unreachable, and the
    /// filter must equal its recomputation from scratch at every step.
    #[test]
    fn displacement_storm_never_underflows_or_strands() {
        use crate::hash::bucket_pair as bp;
        let buckets = 32;
        let (mut mem, mut t) = setup(buckets); // 256 slots
        let n = 160u64;
        for id in 0..n {
            t.insert(&mut mem, &FlowKey::synthetic(id, 13), id).unwrap();
        }
        let mut displaced = 0u32;
        let mut returned = 0u32;
        for round in 0..6u64 {
            for id in 0..n {
                let k = FlowKey::synthetic(id, 13);
                // Force a displacement in whichever direction is open.
                let (b1, _) = bp(&k, buckets);
                let was_primary = {
                    let tr = t.lookup_traced(&mem, &k, false);
                    match tr
                        .steps
                        .iter()
                        .find(|s| matches!(s, TraceStep::LoadBucket(_)))
                    {
                        Some(TraceStep::LoadBucket(a)) => *a == t.meta().bucket_addr(b1),
                        _ => unreachable!(),
                    }
                };
                if t.displace(&mut mem, &k) {
                    if was_primary {
                        displaced += 1;
                    } else {
                        returned += 1;
                    }
                }
                // Churn: every third key also remove/re-inserts.
                if (id + round) % 3 == 0 {
                    assert_eq!(t.remove(&mut mem, &k), Some(id), "strand at {id}");
                    t.insert(&mut mem, &k, id).unwrap();
                }
            }
            // Every key findable in one access, filter exact.
            for id in 0..n {
                let tr = t.lookup_traced(&mem, &FlowKey::synthetic(id, 13), false);
                assert_eq!(tr.result, Some(id), "stranded key {id} round {round}");
                assert_eq!(bucket_loads(&tr), 1);
            }
            check_filter_exact(&t, &mut mem);
        }
        assert!(displaced > 0, "storm never displaced a key");
        assert!(returned > 0, "storm never returned a key home");
        // Drain: decrements all the way down, no underflow.
        for id in 0..n {
            assert_eq!(t.remove(&mut mem, &FlowKey::synthetic(id, 13)), Some(id));
        }
        assert!(
            t.cbf_counters().iter().all(|&c| c == 0),
            "filter not drained"
        );
        assert_eq!(t.len(), 0);
        assert_eq!(t.free_slots(), t.capacity());
    }

    #[test]
    fn two_phase_move_keeps_key_findable_throughout() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        t.insert(&mut mem, &k, 7).unwrap();
        let mv = t.move_begin(&mut mem, &k).expect("move possible");
        assert_eq!(t.moves_in_flight(), 1);
        let tr = t.lookup_traced(&mem, &k, false);
        assert_eq!(tr.result, Some(7), "mid-move lookup failed");
        assert_eq!(bucket_loads(&tr), 1, "mid-move lookup not single-access");
        t.move_commit(&mut mem, mv);
        assert_eq!(t.moves_in_flight(), 0);
        assert_eq!(t.lookup(&mem, &k), Some(7));
        check_filter_exact(&t, &mut mem);
    }

    #[test]
    fn two_phase_move_abort_restores_state() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        t.insert(&mut mem, &k, 7).unwrap();
        let before: Vec<u16> = t.cbf_counters().to_vec();
        let mv = t.move_begin(&mut mem, &k).expect("move possible");
        assert_eq!(t.lookup(&mem, &k), Some(7));
        t.move_abort(&mut mem, mv);
        assert_eq!(t.moves_in_flight(), 0);
        assert_eq!(t.lookup(&mem, &k), Some(7));
        assert_eq!(t.cbf_counters(), &before[..], "abort did not restore CBF");
        check_filter_exact(&t, &mut mem);
        // Round trip: displace then move home then abort that too.
        assert!(t.displace(&mut mem, &k));
        let mv = t.move_begin(&mut mem, &k).expect("move home possible");
        t.move_abort(&mut mem, mv);
        assert_eq!(t.lookup(&mem, &k), Some(7));
        check_filter_exact(&t, &mut mem);
    }

    #[test]
    fn software_locking_adds_version_reads() {
        let (mut mem, mut t) = setup(64);
        let k = FlowKey::synthetic(5, 13);
        t.insert(&mut mem, &k, 7).unwrap();
        let tr = t.lookup_traced(&mem, &k, true);
        let locks = tr
            .steps
            .iter()
            .filter(|s| matches!(s, TraceStep::SoftLock(_)))
            .count();
        assert_eq!(locks, 2);
    }
}
